(* Tests for Pdf_circuit: gate semantics, builder, .bench IO, stats. *)

module Bit = Pdf_values.Bit
module Gate = Pdf_circuit.Gate
module Circuit = Pdf_circuit.Circuit
module Builder = Pdf_circuit.Builder
module Bench_io = Pdf_circuit.Bench_io
module Stats = Pdf_circuit.Stats

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let bit = Alcotest.testable Bit.pp Bit.equal

let all_bits = [ Bit.Zero; Bit.One; Bit.X ]

(* ------------------------------------------------------------------ *)
(* Gate                                                                 *)
(* ------------------------------------------------------------------ *)

let test_gate_names () =
  List.iter
    (fun k ->
      check
        Alcotest.(option (Alcotest.testable Gate.pp ( = )))
        "name roundtrip" (Some k)
        (Gate.kind_of_name (Gate.kind_name k)))
    Gate.all_kinds;
  check Alcotest.bool "lowercase accepted" true
    (Gate.kind_of_name "nand" = Some Gate.Nand);
  check Alcotest.bool "BUF alias" true (Gate.kind_of_name "BUF" = Some Gate.Buff);
  check Alcotest.bool "INV alias" true (Gate.kind_of_name "INV" = Some Gate.Not);
  check Alcotest.bool "junk rejected" true (Gate.kind_of_name "FOO" = None)

let test_gate_controlling () =
  check Alcotest.(option bool) "and" (Some false) (Gate.controlling Gate.And);
  check Alcotest.(option bool) "nand" (Some false) (Gate.controlling Gate.Nand);
  check Alcotest.(option bool) "or" (Some true) (Gate.controlling Gate.Or);
  check Alcotest.(option bool) "nor" (Some true) (Gate.controlling Gate.Nor);
  check Alcotest.(option bool) "xor" None (Gate.controlling Gate.Xor);
  check Alcotest.(option bool) "not" None (Gate.controlling Gate.Not)

let test_gate_inverting () =
  check Alcotest.bool "nand" true (Gate.inverting Gate.Nand);
  check Alcotest.bool "nor" true (Gate.inverting Gate.Nor);
  check Alcotest.bool "not" true (Gate.inverting Gate.Not);
  check Alcotest.bool "xnor" true (Gate.inverting Gate.Xnor);
  check Alcotest.bool "and" false (Gate.inverting Gate.And);
  check Alcotest.bool "buff" false (Gate.inverting Gate.Buff)

let bool_eval kind bools =
  let to_bit = Array.map Bit.of_bool in
  Bit.to_bool (Gate.eval kind (to_bit bools))

let test_gate_eval_two_valued () =
  (* Exhaustive 2-input truth tables for every binary kind. *)
  let expect kind a b =
    match kind with
    | Gate.And -> a && b
    | Gate.Nand -> not (a && b)
    | Gate.Or -> a || b
    | Gate.Nor -> not (a || b)
    | Gate.Xor -> a <> b
    | Gate.Xnor -> a = b
    | Gate.Not | Gate.Buff -> assert false
  in
  List.iter
    (fun kind ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              check
                Alcotest.(option bool)
                (Gate.kind_name kind) (Some (expect kind a b))
                (bool_eval kind [| a; b |]))
            [ false; true ])
        [ false; true ])
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ]

let test_gate_eval_unary () =
  check Alcotest.(option bool) "not" (Some false) (bool_eval Gate.Not [| true |]);
  check Alcotest.(option bool) "buff" (Some true) (bool_eval Gate.Buff [| true |])

let test_gate_eval_three_input () =
  check bit "and3 with 0" Bit.Zero
    (Gate.eval Gate.And [| Bit.One; Bit.Zero; Bit.One |]);
  check bit "or3 all 0" Bit.Zero
    (Gate.eval Gate.Or [| Bit.Zero; Bit.Zero; Bit.Zero |]);
  check bit "xor3 parity" Bit.One
    (Gate.eval Gate.Xor [| Bit.One; Bit.One; Bit.One |]);
  check bit "nand3 x dominated" Bit.One
    (Gate.eval Gate.Nand [| Bit.X; Bit.Zero; Bit.One |])

let test_gate_eval_arity_errors () =
  Alcotest.check_raises "not with 2 inputs"
    (Invalid_argument "Gate.eval: too many inputs for NOT") (fun () ->
      ignore (Gate.eval Gate.Not [| Bit.One; Bit.Zero |]));
  Alcotest.check_raises "and with 1 input"
    (Invalid_argument "Gate.eval: too few inputs for AND") (fun () ->
      ignore (Gate.eval Gate.And [| Bit.One |]))

(* eval2 agrees with eval on binary kinds. *)
let prop_eval2_agrees =
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair
          (oneofl [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ])
          (pair (oneofl all_bits) (oneofl all_bits)))
  in
  QCheck.Test.make ~name:"eval2 agrees with eval" ~count:200 arb
    (fun (kind, (a, b)) ->
      Bit.equal (Gate.eval2 kind a b) (Gate.eval kind [| a; b |]))

(* The controlling value forces the output regardless of other inputs. *)
let prop_controlling_forces =
  let arb =
    QCheck.make
      QCheck.Gen.(
        pair
          (oneofl [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor ])
          (pair (oneofl all_bits) (oneofl all_bits)))
  in
  QCheck.Test.make ~name:"controlling value forces output" ~count:200 arb
    (fun (kind, (a, b)) ->
      let cv = Bit.of_bool (Option.get (Gate.controlling kind)) in
      let out = Gate.eval kind [| cv; a; b |] in
      let forced =
        if Gate.inverting kind then Bit.not_ cv else cv
      in
      Bit.equal out forced)

(* ------------------------------------------------------------------ *)
(* Builder                                                              *)
(* ------------------------------------------------------------------ *)

let build_simple () =
  let b = Builder.create "t" in
  Builder.add_pi b "a";
  Builder.add_pi b "b";
  Builder.add_po b "y";
  Builder.add_gate b ~out:"y" Gate.And [ "a"; "b" ];
  Builder.finish_exn b

let test_builder_simple () =
  let c = build_simple () in
  check Alcotest.int "pis" 2 c.Circuit.num_pis;
  check Alcotest.int "gates" 1 (Circuit.num_gates c);
  check Alcotest.int "pos" 1 (Circuit.num_pos c);
  check Alcotest.(result unit string) "validates" (Ok ()) (Circuit.validate c)

let test_builder_out_of_order () =
  (* Definitions arrive bottom-up; builder must topologically sort. *)
  let b = Builder.create "t" in
  Builder.add_po b "z";
  Builder.add_gate b ~out:"z" Gate.Or [ "y"; "a" ];
  Builder.add_gate b ~out:"y" Gate.Not [ "a" ];
  Builder.add_pi b "a";
  let c = Builder.finish_exn b in
  check Alcotest.(result unit string) "validates" (Ok ()) (Circuit.validate c);
  (* y (gate) must come before z in the gate array. *)
  let y = Option.get (Circuit.find_net c "y") in
  let z = Option.get (Circuit.find_net c "z") in
  check Alcotest.bool "topological" true (y < z)

let expect_error name setup expected =
  let b = Builder.create name in
  setup b;
  match Builder.finish b with
  | Ok _ -> Alcotest.failf "%s: expected error" name
  | Error e -> check Alcotest.string name expected (Builder.error_to_string e)

let test_builder_undriven () =
  expect_error "undriven"
    (fun b ->
      Builder.add_pi b "a";
      Builder.add_po b "y";
      Builder.add_gate b ~out:"y" Gate.And [ "a"; "ghost" ])
    "net used but never driven: ghost"

let test_builder_duplicate_driver () =
  expect_error "duplicate"
    (fun b ->
      Builder.add_pi b "a";
      Builder.add_po b "y";
      Builder.add_gate b ~out:"y" Gate.Not [ "a" ];
      Builder.add_gate b ~out:"y" Gate.Buff [ "a" ])
    "net driven more than once: y"

let test_builder_cycle () =
  let b = Builder.create "t" in
  Builder.add_pi b "a";
  Builder.add_po b "y";
  Builder.add_gate b ~out:"y" Gate.And [ "a"; "z" ];
  Builder.add_gate b ~out:"z" Gate.Not [ "y" ];
  match Builder.finish b with
  | Ok _ -> Alcotest.fail "expected cycle error"
  | Error (Builder.Combinational_cycle _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Builder.error_to_string e)

let test_builder_no_outputs () =
  expect_error "no outputs"
    (fun b -> Builder.add_pi b "a")
    "circuit has no primary outputs"

let test_builder_unknown_output () =
  expect_error "unknown output"
    (fun b ->
      Builder.add_pi b "a";
      Builder.add_po b "nowhere")
    "declared output is not a net: nowhere"

let test_builder_bad_arity () =
  expect_error "bad arity"
    (fun b ->
      Builder.add_pi b "a";
      Builder.add_po b "y";
      Builder.add_gate b ~out:"y" Gate.Not [ "a"; "a" ])
    "gate y: NOT cannot take 2 input(s)"

let test_builder_pi_as_po () =
  let b = Builder.create "t" in
  Builder.add_pi b "a";
  Builder.add_po b "a";
  let c = Builder.finish_exn b in
  check Alcotest.bool "PI can be PO" true c.Circuit.is_po.(0)

let test_builder_fanout_tables () =
  let c = build_simple () in
  check Alcotest.int "a feeds one gate" 1 (Circuit.fanout_count c 0);
  check Alcotest.int "y feeds nothing" 0
    (Circuit.fanout_count c (Circuit.net_of_gate c 0))

(* ------------------------------------------------------------------ *)
(* Bench IO                                                             *)
(* ------------------------------------------------------------------ *)

let test_bench_roundtrip () =
  let c = Pdf_synth.Iscas.c17 () in
  let text = Bench_io.to_string c in
  match Bench_io.parse_string ~name:"c17" text with
  | Error e -> Alcotest.failf "reparse failed: %s" (Bench_io.error_to_string e)
  | Ok c2 ->
    check Alcotest.int "pis" c.Circuit.num_pis c2.Circuit.num_pis;
    check Alcotest.int "gates" (Circuit.num_gates c) (Circuit.num_gates c2);
    check Alcotest.int "pos" (Circuit.num_pos c) (Circuit.num_pos c2);
    (* Same logic: exhaustively compare all 32 input combinations. *)
    for v = 0 to 31 do
      let pis = Array.init 5 (fun i -> (v lsr i) land 1 = 1) in
      let o1 = Pdf_sim.Logic_sim.simulate_bool c pis in
      let o2 = Pdf_sim.Logic_sim.simulate_bool c2 pis in
      Array.iteri
        (fun j po ->
          check Alcotest.bool "same output" o1.(po) o2.(c2.Circuit.pos.(j)))
        c.Circuit.pos
    done

let test_bench_s27_extraction () =
  let c = Pdf_synth.Iscas.s27 () in
  (* 4 PIs + 3 DFF outputs; 1 PO + 3 DFF inputs. *)
  check Alcotest.int "pis" 7 c.Circuit.num_pis;
  check Alcotest.int "pos" 4 (Circuit.num_pos c);
  check Alcotest.int "gates" 10 (Circuit.num_gates c);
  check Alcotest.bool "G5 is pseudo PI" true
    (match Circuit.find_net c "G5" with
    | Some n -> Circuit.is_pi c n
    | None -> false);
  check Alcotest.bool "G10 is pseudo PO" true
    (match Circuit.find_net c "G10" with
    | Some n -> c.Circuit.is_po.(n)
    | None -> false)

let test_bench_comments_and_blanks () =
  let text = "# hello\n\nINPUT(a)\n  # indented comment\nOUTPUT(y)\ny = NOT(a) # trailing\n" in
  match Bench_io.parse_string ~name:"t" text with
  | Ok c -> check Alcotest.int "one gate" 1 (Circuit.num_gates c)
  | Error e -> Alcotest.failf "parse failed: %s" (Bench_io.error_to_string e)

let test_bench_parse_errors () =
  let bad text =
    match Bench_io.parse_string ~name:"t" text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error _ -> ()
  in
  bad "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
  bad "INPUT(a\n";
  bad "INPUT(a)\nOUTPUT(y)\ny = DFF(a, b)\n";
  bad "WIBBLE(a)\n";
  bad "INPUT(a, b)\n"

let test_bench_dff_chain () =
  (* A DFF feeding a DFF: both extracted. *)
  let text =
    "INPUT(a)\nOUTPUT(y)\nq1 = DFF(a)\nq2 = DFF(q1)\ny = AND(q1, q2)\n"
  in
  match Bench_io.parse_string ~name:"t" text with
  | Ok c ->
    check Alcotest.int "pis" 3 c.Circuit.num_pis;
    (* y plus the two DFF data inputs (a and q1). *)
    check Alcotest.int "pos" 3 (Circuit.num_pos c)
  | Error e -> Alcotest.failf "parse failed: %s" (Bench_io.error_to_string e)


let prop_bench_roundtrip_random =
  QCheck.Test.make ~name:"bench roundtrip preserves structure and logic"
    ~count:25
    (QCheck.make (QCheck.Gen.int_range 0 100_000))
    (fun seed ->
      let params =
        { Pdf_synth.Generators.num_pis = 6; num_gates = 30; window = 15;
          max_fanout = 3; reuse_pct = 10; restart_pct = 5; fanin3_pct = 15;
          inverter_pct = 25; po_taps = 2 }
      in
      let c = Pdf_synth.Generators.random_dag ~name:"rt" ~seed params in
      match Bench_io.parse_string ~name:"rt" (Bench_io.to_string c) with
      | Error _ -> false
      | Ok c2 ->
        c.Circuit.num_pis = c2.Circuit.num_pis
        && Circuit.num_gates c = Circuit.num_gates c2
        && Circuit.num_pos c = Circuit.num_pos c2
        &&
        (* Compare responses on a few random input vectors. *)
        let rng = Pdf_util.Rng.create seed in
        let ok = ref true in
        for _ = 1 to 10 do
          let pis =
            Array.init c.Circuit.num_pis (fun _ -> Pdf_util.Rng.bool rng)
          in
          let v1 = Pdf_sim.Logic_sim.simulate_bool c pis in
          let v2 = Pdf_sim.Logic_sim.simulate_bool c2 pis in
          Array.iteri
            (fun j po ->
              if v1.(po) <> v2.(c2.Circuit.pos.(j)) then ok := false)
            c.Circuit.pos
        done;
        !ok)


(* ------------------------------------------------------------------ *)
(* Verilog IO                                                           *)
(* ------------------------------------------------------------------ *)

module Verilog_io = Pdf_circuit.Verilog_io

let same_logic c c2 rng_seed rounds =
  let rng = Pdf_util.Rng.create rng_seed in
  let ok = ref true in
  for _ = 1 to rounds do
    let pis = Array.init c.Circuit.num_pis (fun _ -> Pdf_util.Rng.bool rng) in
    let v1 = Pdf_sim.Logic_sim.simulate_bool c pis in
    let v2 = Pdf_sim.Logic_sim.simulate_bool c2 pis in
    Array.iteri
      (fun j po -> if v1.(po) <> v2.(c2.Circuit.pos.(j)) then ok := false)
      c.Circuit.pos
  done;
  !ok

let test_verilog_roundtrip () =
  List.iter
    (fun c ->
      let text = Verilog_io.to_string c in
      match Verilog_io.parse_string ~name:c.Circuit.name text with
      | Error e ->
        Alcotest.failf "%s: %s" c.Circuit.name (Verilog_io.error_to_string e)
      | Ok c2 ->
        check Alcotest.int "pis" c.Circuit.num_pis c2.Circuit.num_pis;
        check Alcotest.int "pos" (Circuit.num_pos c) (Circuit.num_pos c2);
        check Alcotest.bool "same logic" true (same_logic c c2 55 20))
    [ Pdf_synth.Iscas.s27 (); Pdf_synth.Iscas.c17 ();
      Pdf_synth.Generators.ripple_adder ~bits:4 ]

let test_verilog_parse_basic () =
  let text =
    "// a tiny netlist\n\
     module top (a, b, y);\n\
     \  input a, b;  /* two inputs */\n\
     \  output y;\n\
     \  wire n1;\n\
     \  nand g1 (n1, a, b);\n\
     \  not (y, n1);\n\
     endmodule\n"
  in
  match Verilog_io.parse_string ~name:"x" text with
  | Error e -> Alcotest.failf "parse: %s" (Verilog_io.error_to_string e)
  | Ok c ->
    check Alcotest.int "pis" 2 c.Circuit.num_pis;
    check Alcotest.int "gates" 2 (Circuit.num_gates c);
    check Alcotest.string "module name wins" "top" c.Circuit.name;
    (* y = not (nand a b) = and *)
    let out = Pdf_sim.Logic_sim.simulate_bool c [| true; true |] in
    check Alcotest.bool "logic" true out.(c.Circuit.pos.(0))

let test_verilog_parse_errors () =
  let bad text =
    match Verilog_io.parse_string ~name:"t" text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error _ -> ()
  in
  bad "module m (a); input a; assign y = a; endmodule";
  bad "input a;";
  bad "module m (a); input a; output y; frob g (y, a); endmodule";
  bad "module m (a); input a; output y; not (y, a) endmodule";
  bad "module m (a); input a; output y; not (); endmodule";
  bad "module m (a); /* unterminated"

let test_verilog_bench_agree () =
  (* The two writers describe the same circuit. *)
  let c = Pdf_synth.Iscas.s27 () in
  let via_bench =
    match Bench_io.parse_string ~name:"s27" (Bench_io.to_string c) with
    | Ok x -> x
    | Error _ -> Alcotest.fail "bench reparse"
  in
  let via_verilog =
    match Verilog_io.parse_string ~name:"s27" (Verilog_io.to_string c) with
    | Ok x -> x
    | Error _ -> Alcotest.fail "verilog reparse"
  in
  check Alcotest.bool "same logic" true (same_logic via_bench via_verilog 99 30)

(* ------------------------------------------------------------------ *)
(* Stats and validate over all profiles                                 *)
(* ------------------------------------------------------------------ *)

let test_profiles_validate () =
  List.iter
    (fun p ->
      let c = Pdf_synth.Profiles.circuit p in
      match Circuit.validate c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" p.Pdf_synth.Profiles.name e)
    Pdf_synth.Profiles.all

let test_stats_s27 () =
  let s = Stats.compute (Pdf_synth.Iscas.s27 ()) in
  check Alcotest.int "pis" 7 s.Stats.num_pis;
  check Alcotest.int "gates" 10 s.Stats.num_gates;
  check Alcotest.int "depth" 6 s.Stats.depth;
  check Alcotest.int "fanout stems" 4 s.Stats.num_fanout_stems;
  let total_hist = List.fold_left (fun a (_, n) -> a + n) 0 s.Stats.gate_histogram in
  check Alcotest.int "histogram covers all gates" s.Stats.num_gates total_hist

let () =
  Alcotest.run "pdf_circuit"
    [
      ( "gate",
        [
          Alcotest.test_case "names" `Quick test_gate_names;
          Alcotest.test_case "controlling" `Quick test_gate_controlling;
          Alcotest.test_case "inverting" `Quick test_gate_inverting;
          Alcotest.test_case "two-valued eval" `Quick test_gate_eval_two_valued;
          Alcotest.test_case "unary eval" `Quick test_gate_eval_unary;
          Alcotest.test_case "three-input eval" `Quick test_gate_eval_three_input;
          Alcotest.test_case "arity errors" `Quick test_gate_eval_arity_errors;
          qcheck prop_eval2_agrees;
          qcheck prop_controlling_forces;
        ] );
      ( "builder",
        [
          Alcotest.test_case "simple" `Quick test_builder_simple;
          Alcotest.test_case "out of order" `Quick test_builder_out_of_order;
          Alcotest.test_case "undriven" `Quick test_builder_undriven;
          Alcotest.test_case "duplicate driver" `Quick test_builder_duplicate_driver;
          Alcotest.test_case "cycle" `Quick test_builder_cycle;
          Alcotest.test_case "no outputs" `Quick test_builder_no_outputs;
          Alcotest.test_case "unknown output" `Quick test_builder_unknown_output;
          Alcotest.test_case "bad arity" `Quick test_builder_bad_arity;
          Alcotest.test_case "PI as PO" `Quick test_builder_pi_as_po;
          Alcotest.test_case "fanout tables" `Quick test_builder_fanout_tables;
        ] );
      ( "bench_io",
        [
          Alcotest.test_case "roundtrip c17" `Quick test_bench_roundtrip;
          Alcotest.test_case "s27 extraction" `Quick test_bench_s27_extraction;
          Alcotest.test_case "comments and blanks" `Quick test_bench_comments_and_blanks;
          Alcotest.test_case "parse errors" `Quick test_bench_parse_errors;
          Alcotest.test_case "dff chain" `Quick test_bench_dff_chain;
          qcheck prop_bench_roundtrip_random;
        ] );
      ( "verilog_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_verilog_roundtrip;
          Alcotest.test_case "parse basic" `Quick test_verilog_parse_basic;
          Alcotest.test_case "parse errors" `Quick test_verilog_parse_errors;
          Alcotest.test_case "bench and verilog agree" `Quick
            test_verilog_bench_agree;
        ] );
      ( "stats",
        [
          Alcotest.test_case "profiles validate" `Slow test_profiles_validate;
          Alcotest.test_case "s27 stats" `Quick test_stats_s27;
        ] );
    ]
