(* Tests for Pdf_util: seeded RNG, binary heap, table rendering. *)

module Rng = Pdf_util.Rng
module Heap = Pdf_util.Heap
module Table = Pdf_util.Table

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Rng                                                                  *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next a) (Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.next a) (Rng.next b)) then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next a) (Rng.next b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let child = Rng.split a in
  (* The child must not replay the parent's stream. *)
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Rng.next a) (Rng.next child)) then differs := true
  done;
  check Alcotest.bool "split diverges" true !differs

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_bad_bound () =
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 1) 0))

let test_rng_int_covers () =
  let rng = Rng.create 5 in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Rng.int rng 4) <- true
  done;
  check Alcotest.bool "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_bool_balance () =
  let rng = Rng.create 11 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool rng then incr trues
  done;
  check Alcotest.bool "roughly balanced" true (!trues > 350 && !trues < 650)

let test_rng_float_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

(* ------------------------------------------------------------------ *)
(* Heap                                                                 *)
(* ------------------------------------------------------------------ *)

let test_heap_empty () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  check Alcotest.bool "is_empty" true (Heap.is_empty h);
  check Alcotest.(option int) "pop" None (Heap.pop h);
  check Alcotest.(option int) "peek" None (Heap.peek h)

let test_heap_sorts () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check
    Alcotest.(list int)
    "ascending" [ 1; 1; 2; 4; 5; 5; 6; 9 ] (drain [])

let test_heap_max_mode () =
  let h = Heap.create ~leq:(fun a b -> a >= b) in
  List.iter (Heap.push h) [ 3; 7; 2 ];
  check Alcotest.(option int) "max first" (Some 7) (Heap.pop h)

let test_heap_peek_stable () =
  let h = Heap.create ~leq:(fun a b -> a <= b) in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  check Alcotest.(option int) "peek" (Some 1) (Heap.peek h);
  check Alcotest.int "peek does not remove" 3 (Heap.length h)

let test_heap_pop_while () =
  let h = Heap.create ~leq:(fun (a, _) (b, _) -> a <= b) in
  List.iter (Heap.push h) [ (1, false); (2, true); (3, false); (4, true) ];
  (* Skip entries whose flag is false (stale). *)
  let fresh = Heap.pop_while h (fun (_, alive) -> not alive) in
  check
    Alcotest.(option (pair int bool))
    "first fresh" (Some (2, true)) fresh

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~leq:(fun a b -> a <= b) in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let prop_heap_length =
  QCheck.Test.make ~name:"heap length tracks pushes" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~leq:(fun a b -> a <= b) in
      List.iter (Heap.push h) xs;
      Heap.length h = List.length xs)

(* ------------------------------------------------------------------ *)
(* Table                                                                *)
(* ------------------------------------------------------------------ *)

let test_table_renders () =
  let t = Table.create ~title:"demo" [ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_int_row t "beta" [ 42 ];
  let s = Table.render t in
  check Alcotest.bool "title present" true
    (String.length s > 4 && String.sub s 0 4 = "demo");
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "row alpha" true (has "alpha");
  check Alcotest.bool "row beta" true (has "beta");
  check Alcotest.bool "int cell" true (has "42")

let test_table_alignment () =
  let t = Table.create [ ("h", Table.Right) ] in
  Table.add_row t [ "1" ];
  Table.add_row t [ "100" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (* All data lines padded to the same width. *)
  (match lines with
  | _header :: _rule :: a :: b :: _ ->
    check Alcotest.int "same width" (String.length a) (String.length b)
  | _ -> Alcotest.fail "unexpected shape");
  ()

let test_table_bad_row () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Table.add_row: cell count does not match column count")
    (fun () -> Table.add_row t [ "only-one" ])


(* ------------------------------------------------------------------ *)
(* Csv                                                                  *)
(* ------------------------------------------------------------------ *)

module Csv = Pdf_util.Csv

let test_csv_render () =
  let c = Csv.create ~header:[ "a"; "b" ] in
  Csv.add_row c [ "1"; "2" ];
  Csv.add_row c [ "x"; "y" ];
  check Alcotest.string "render" "a,b\n1,2\nx,y\n" (Csv.render c)

let test_csv_quoting () =
  check Alcotest.string "comma" "\"a,b\"" (Csv.escape "a,b");
  check Alcotest.string "quote" "\"say \"\"hi\"\"\"" (Csv.escape "say \"hi\"");
  check Alcotest.string "newline" "\"a\nb\"" (Csv.escape "a\nb");
  check Alcotest.string "plain untouched" "plain" (Csv.escape "plain")

let test_csv_row_width () =
  let c = Csv.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "width"
    (Invalid_argument "Csv.add_row: row width does not match header")
    (fun () -> Csv.add_row c [ "only" ])

let test_csv_of_table () =
  let t = Table.create [ ("name", Table.Left); ("n", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta"; "2" ];
  let c = Csv.of_table t in
  check Alcotest.string "roundtrip" "name,n\nalpha,1\nbeta,2\n" (Csv.render c)

let test_csv_write_file () =
  let c = Csv.create ~header:[ "k"; "v" ] in
  Csv.add_row c [ "x"; "1" ];
  let path = Filename.temp_file "pdfenrich" ".csv" in
  Csv.write_file c path;
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  check Alcotest.string "file contents" (Csv.render c) contents

let prop_csv_no_bare_specials =
  QCheck.Test.make ~name:"rendered rows parse back to the same cell count"
    ~count:200
    QCheck.(list_of_size (Gen.int_range 1 5) (string_gen_of_size (Gen.int_range 0 10) Gen.printable))
    (fun cells ->
      (* Render one row and check the quoted fields balance. *)
      let c = Csv.create ~header:(List.map (fun _ -> "h") cells) in
      Csv.add_row c cells;
      let rendered = Csv.render c in
      (* A small parser: skip the header line, then count unquoted commas
         over the rest (quoted fields may span physical lines). *)
      (match String.index_opt rendered '\n' with
      | None -> false
      | Some header_end ->
        let data =
          String.sub rendered (header_end + 1)
            (String.length rendered - header_end - 2)
        in
        let in_quotes = ref false and fields = ref 1 in
        String.iter
          (fun ch ->
            if ch = '"' then in_quotes := not !in_quotes
            else if ch = ',' && not !in_quotes then incr fields)
          data;
        !fields = List.length cells))

let () =
  Alcotest.run "pdf_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_bad_bound;
          Alcotest.test_case "int covers residues" `Quick test_rng_int_covers;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balance;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        ] );
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "max mode" `Quick test_heap_max_mode;
          Alcotest.test_case "peek stable" `Quick test_heap_peek_stable;
          Alcotest.test_case "pop_while skips stale" `Quick test_heap_pop_while;
          qcheck prop_heap_sorts;
          qcheck prop_heap_length;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "bad row" `Quick test_table_bad_row;
        ] );
      ( "csv",
        [
          Alcotest.test_case "render" `Quick test_csv_render;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "row width" `Quick test_csv_row_width;
          Alcotest.test_case "of_table" `Quick test_csv_of_table;
          Alcotest.test_case "write file" `Quick test_csv_write_file;
          qcheck prop_csv_no_bare_specials;
        ] );
    ]
