test/test_core.ml: Alcotest Array Fun List Option Pdf_circuit Pdf_core Pdf_faults Pdf_paths Pdf_sim Pdf_synth Pdf_util Pdf_values Printf QCheck QCheck_alcotest String
