test/test_paths.ml: Alcotest Array Gen Hashtbl List Option Pdf_circuit Pdf_paths Pdf_synth Pdf_util Printf QCheck QCheck_alcotest
