test/test_sim.ml: Alcotest Array List Option Pdf_circuit Pdf_faults Pdf_paths Pdf_sim Pdf_synth Pdf_util Pdf_values QCheck QCheck_alcotest
