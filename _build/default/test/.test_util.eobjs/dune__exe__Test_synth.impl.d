test/test_synth.ml: Alcotest Array Fun List Option Pdf_circuit Pdf_paths Pdf_sim Pdf_synth Printf QCheck QCheck_alcotest String
