test/test_circuit.ml: Alcotest Array List Option Pdf_circuit Pdf_sim Pdf_synth Pdf_util Pdf_values QCheck QCheck_alcotest
