test/test_experiments.ml: Alcotest Float List Option Pdf_experiments Pdf_synth String
