test/test_values.ml: Alcotest Gen List Option Pdf_values QCheck QCheck_alcotest String
