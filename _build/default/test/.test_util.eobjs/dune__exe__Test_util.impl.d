test/test_util.ml: Alcotest Array Filename Fun Gen Int64 List Pdf_util QCheck QCheck_alcotest String Sys
