test/test_faults.ml: Alcotest Array Hashtbl List Option Pdf_circuit Pdf_core Pdf_faults Pdf_paths Pdf_sim Pdf_synth Pdf_util Pdf_values QCheck QCheck_alcotest
