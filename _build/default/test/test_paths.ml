(* Tests for Pdf_paths: paths, delay models, distance, bounded
   enumeration, histograms. *)

module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate
module Builder = Pdf_circuit.Builder
module Path = Pdf_paths.Path
module Delay_model = Pdf_paths.Delay_model
module Distance = Pdf_paths.Distance
module Enumerate = Pdf_paths.Enumerate
module Histogram = Pdf_paths.Histogram

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let s27 = Pdf_synth.Iscas.s27 ()
let c17 = Pdf_synth.Iscas.c17 ()

let hop_into c gate_out prev =
  let net name = Option.get (Circuit.find_net c name) in
  match Circuit.gate_of_net c (net gate_out) with
  | None -> assert false
  | Some g ->
    let fanins = (c : Circuit.t).gates.(g).Circuit.fanins in
    let pin = ref (-1) in
    Array.iteri (fun i f -> if f = net prev then pin := i) fanins;
    assert (!pin >= 0);
    { Path.gate = g; pin = !pin }

let s27_path names =
  match names with
  | [] -> assert false
  | src :: rest ->
    let p = ref (Path.source_only (Option.get (Circuit.find_net s27 src))) in
    let prev = ref src in
    List.iter
      (fun n ->
        p := Path.extend !p (hop_into s27 n !prev);
        prev := n)
      rest;
    !p

(* ------------------------------------------------------------------ *)
(* Path                                                                 *)
(* ------------------------------------------------------------------ *)

let test_path_basics () =
  let p = s27_path [ "G1"; "G12"; "G13" ] in
  check Alcotest.bool "well formed" true (Path.well_formed s27 p);
  check Alcotest.bool "complete (G13 is pseudo-PO)" true (Path.is_complete s27 p);
  check Alcotest.int "last net" (Option.get (Circuit.find_net s27 "G13"))
    (Path.last_net s27 p);
  check
    Alcotest.(list int)
    "nets"
    [ Option.get (Circuit.find_net s27 "G1");
      Option.get (Circuit.find_net s27 "G12");
      Option.get (Circuit.find_net s27 "G13") ]
    (Path.nets s27 p);
  check Alcotest.string "to_string" "(G1,G12,G13)" (Path.to_string s27 p)

let test_path_num_lines_counts_branches () =
  (* G12 fans out to G15 and G13, so leaving G12 crosses a branch line. *)
  let p = s27_path [ "G1"; "G12"; "G13" ] in
  check Alcotest.int "lines" 4 (Path.num_lines s27 p);
  (* G16 has a single consumer: no branch line. *)
  let q = s27_path [ "G3"; "G16"; "G9" ] in
  check Alcotest.int "lines (no branch)" 3 (Path.num_lines s27 q)

let test_path_source_only () =
  let p = Path.source_only 0 in
  check Alcotest.bool "well formed" true (Path.well_formed s27 p);
  check Alcotest.int "one line" 1 (Path.num_lines s27 p);
  check Alcotest.bool "incomplete" false (Path.is_complete s27 p)

let test_path_ill_formed () =
  (* A hop whose pin does not read the previous net. *)
  let p = s27_path [ "G1"; "G12" ] in
  let bogus = Path.extend p { Path.gate = 0; pin = 0 } in
  check Alcotest.bool "ill formed" false (Path.well_formed s27 bogus);
  (* A path starting at a non-PI net. *)
  let internal = Option.get (Circuit.find_net s27 "G12") in
  check Alcotest.bool "non-PI source" false
    (Path.well_formed s27 (Path.source_only internal))

let test_path_compare_equal () =
  let p = s27_path [ "G1"; "G12"; "G13" ] in
  let q = s27_path [ "G1"; "G12"; "G15" ] in
  check Alcotest.bool "equal self" true (Path.equal p p);
  check Alcotest.bool "not equal" false (Path.equal p q);
  check Alcotest.bool "compare consistent" true
    (Path.compare p q <> 0 && Path.compare p p = 0)

(* ------------------------------------------------------------------ *)
(* Delay models and distance                                            *)
(* ------------------------------------------------------------------ *)

let test_delay_models () =
  let p = s27_path [ "G1"; "G12"; "G13" ] in
  let lines = Delay_model.lines s27 in
  check Alcotest.int "lines model = num_lines" (Path.num_lines s27 p)
    (Delay_model.length lines s27 p);
  let gates = Delay_model.unit_gates s27 in
  check Alcotest.int "unit gates = nets" 3 (Delay_model.length gates s27 p)

let test_delay_model_per_kind () =
  let m =
    Delay_model.per_kind s27 ~pi_weight:0 ~branch_weight:0 (fun kind ->
        match kind with Gate.Not | Gate.Buff -> 1 | _ -> 2)
  in
  (* G12 is a NOR (2), G13 a NAND (2); source weight 0. *)
  let p = s27_path [ "G1"; "G12"; "G13" ] in
  check Alcotest.int "per kind" 4 (Delay_model.length m s27 p)

let test_delay_model_random_deterministic () =
  let m1 = Delay_model.random s27 (Pdf_util.Rng.create 5) ~min:1 ~max:4 in
  let m2 = Delay_model.random s27 (Pdf_util.Rng.create 5) ~min:1 ~max:4 in
  check Alcotest.bool "same seed same weights" true
    (m1.Delay_model.stem = m2.Delay_model.stem);
  Array.iter
    (fun w -> if w < 1 || w > 4 then Alcotest.failf "weight out of range %d" w)
    m1.Delay_model.stem

(* Brute-force all paths from a net to the POs (tiny circuits only). *)
let all_suffix_lengths c model net =
  let rec go net =
    let here = if (c : Circuit.t).is_po.(net) then [ 0 ] else [] in
    let via =
      Array.to_list c.Circuit.fanouts.(net)
      |> List.concat_map (fun (g, _) ->
             let out = Circuit.net_of_gate c g in
             List.map
               (fun d ->
                 Delay_model.branch_cost model c net
                 + model.Delay_model.stem.(out) + d)
               (go out))
    in
    here @ via
  in
  go net

let test_distance_matches_brute_force () =
  List.iter
    (fun c ->
      let model = Delay_model.lines c in
      let d = Distance.compute c model in
      for net = 0 to Circuit.num_nets c - 1 do
        let expected =
          match all_suffix_lengths c model net with
          | [] -> Distance.unreachable
          | ls -> List.fold_left max min_int ls
        in
        check Alcotest.int
          (Printf.sprintf "d(%s)" (Circuit.net_name c net))
          expected d.(net)
      done)
    [ s27; c17 ]

let test_len_bound () =
  let model = Delay_model.lines s27 in
  let d = Distance.compute s27 model in
  let p = s27_path [ "G1"; "G12" ] in
  let len = Delay_model.length model s27 p in
  (* Longest completion through G12: via G15, G9, G11 and a final branch. *)
  let bound = Distance.len_bound d s27 p len in
  (* Must be at least the length of the known completion (G1,G12,G15,G9,G11,G17): *)
  let full = s27_path [ "G1"; "G12"; "G15"; "G9"; "G11"; "G17" ] in
  check Alcotest.bool "bound covers completion" true
    (bound >= Delay_model.length model s27 full)

(* ------------------------------------------------------------------ *)
(* Enumeration                                                          *)
(* ------------------------------------------------------------------ *)

let test_enumerate_s27_unbounded () =
  let model = Delay_model.lines s27 in
  let r = Enumerate.enumerate s27 model ~max_paths:1000 in
  (* s27's combinational logic has exactly 28 complete paths. *)
  check Alcotest.int "total paths" 28 (List.length r.Enumerate.paths);
  check Alcotest.int "no evictions" 0 r.Enumerate.evicted;
  List.iter
    (fun (p, len) ->
      check Alcotest.bool "well formed" true (Path.well_formed s27 p);
      check Alcotest.bool "complete" true (Path.is_complete s27 p);
      check Alcotest.int "length consistent" (Delay_model.length model s27 p) len)
    r.Enumerate.paths

let test_enumerate_sorted_desc () =
  let model = Delay_model.lines s27 in
  let r = Enumerate.enumerate s27 model ~max_paths:1000 in
  let lens = List.map snd r.Enumerate.paths in
  check Alcotest.bool "descending" true
    (List.for_all2 (fun a b -> a >= b)
       (List.filteri (fun i _ -> i < List.length lens - 1) lens)
       (List.tl lens))

let test_enumerate_no_duplicates () =
  let model = Delay_model.lines s27 in
  let r = Enumerate.enumerate s27 model ~max_paths:1000 in
  let sorted = List.sort Path.compare (List.map fst r.Enumerate.paths) in
  let rec dup = function
    | a :: (b :: _ as rest) -> Path.equal a b || dup rest
    | [ _ ] | [] -> false
  in
  check Alcotest.bool "no duplicates" false (dup sorted)

let test_enumerate_bounded_keeps_longest () =
  let model = Delay_model.lines s27 in
  let full = Enumerate.enumerate s27 model ~max_paths:1000 in
  let bounded = Enumerate.enumerate s27 model ~max_paths:12 in
  (* The longest path of the full enumeration must survive the bound. *)
  let (longest, longest_len), _ =
    (List.hd full.Enumerate.paths, ())
  in
  check Alcotest.bool "longest survives" true
    (List.exists
       (fun (p, len) -> len = longest_len && Path.equal p longest)
       bounded.Enumerate.paths);
  check Alcotest.bool "bound respected" true
    (List.length bounded.Enumerate.paths <= 12)

let test_enumerate_simple_vs_distance_top () =
  let model = Delay_model.lines s27 in
  let a = Enumerate.enumerate ~mode:Enumerate.Simple s27 model ~max_paths:20 in
  let b = Enumerate.enumerate s27 model ~max_paths:20 in
  (* Both modes must find the same longest paths (the four length-10 ones). *)
  let top r =
    List.filter (fun (_, l) -> l = 10) r.Enumerate.paths
    |> List.map fst |> List.sort Path.compare
  in
  check Alcotest.int "same number of longest" (List.length (top a))
    (List.length (top b));
  List.iter2
    (fun p q -> check Alcotest.bool "same longest paths" true (Path.equal p q))
    (top a) (top b)

let test_enumerate_truncation () =
  let model = Delay_model.lines s27 in
  let r = Enumerate.enumerate ~max_steps:3 s27 model ~max_paths:1000 in
  check Alcotest.bool "truncated" true r.Enumerate.truncated

let test_enumerate_events_recorded () =
  let model = Delay_model.lines s27 in
  let r =
    Enumerate.enumerate ~mode:Enumerate.Simple ~record_events:true s27 model
      ~max_paths:20
  in
  let completions =
    List.length
      (List.filter
         (function Enumerate.Completed _ -> true | Enumerate.Evicted _ -> false)
         r.Enumerate.events)
  in
  let evictions =
    List.length
      (List.filter
         (function Enumerate.Evicted _ -> true | Enumerate.Completed _ -> false)
         r.Enumerate.events)
  in
  check Alcotest.int "completions = final + evicted completes" completions
    (List.length r.Enumerate.paths + evictions);
  check Alcotest.int "evictions counted" r.Enumerate.evicted evictions

let test_enumerate_bad_bound () =
  let model = Delay_model.lines s27 in
  Alcotest.check_raises "bound" (Invalid_argument "Enumerate.enumerate: max_paths <= 0")
    (fun () -> ignore (Enumerate.enumerate s27 model ~max_paths:0))

(* Property over random circuits: every enumerated path is well-formed,
   complete, correctly measured, and within the bound. *)
let prop_enumerate_invariants =
  let arb = QCheck.make (QCheck.Gen.int_range 0 10_000) in
  QCheck.Test.make ~name:"enumeration invariants on random DAGs" ~count:20 arb
    (fun seed ->
      let params =
        { Pdf_synth.Generators.num_pis = 8; num_gates = 40; window = 20;
          max_fanout = 3; reuse_pct = 10; restart_pct = 5; fanin3_pct = 10;
          inverter_pct = 25; po_taps = 2 }
      in
      let c = Pdf_synth.Generators.random_dag ~name:"rand" ~seed params in
      let model = Delay_model.lines c in
      let r = Enumerate.enumerate c model ~max_paths:50 in
      List.for_all
        (fun (p, len) ->
          Path.well_formed c p && Path.is_complete c p
          && Delay_model.length model c p = len)
        r.Enumerate.paths)

(* ------------------------------------------------------------------ *)
(* Histogram                                                            *)
(* ------------------------------------------------------------------ *)

let test_histogram_basics () =
  let h = Histogram.of_lengths [ 5; 5; 3; 7; 3; 3 ] in
  (match h with
  | [ a; b; c ] ->
    check Alcotest.int "rank0 len" 7 a.Histogram.length;
    check Alcotest.int "rank0 count" 1 a.Histogram.count;
    check Alcotest.int "rank0 cumulative" 1 a.Histogram.cumulative;
    check Alcotest.int "rank1 len" 5 b.Histogram.length;
    check Alcotest.int "rank1 cumulative" 3 b.Histogram.cumulative;
    check Alcotest.int "rank2 len" 3 c.Histogram.length;
    check Alcotest.int "rank2 cumulative" 6 c.Histogram.cumulative
  | _ -> Alcotest.failf "expected 3 rows, got %d" (List.length h));
  check Alcotest.(option int) "i0 for threshold 2" (Some 1)
    (Histogram.select_i0 h ~threshold:2);
  check Alcotest.(option int) "i0 for threshold 6" (Some 2)
    (Histogram.select_i0 h ~threshold:6);
  check Alcotest.(option int) "unreachable threshold" None
    (Histogram.select_i0 h ~threshold:7);
  check Alcotest.int "cutoff" 5 (Histogram.cutoff_length h ~rank:1)

let test_histogram_empty () =
  check Alcotest.int "empty" 0 (List.length (Histogram.of_lengths []))

let prop_histogram_invariants =
  QCheck.Test.make ~name:"histogram counts and cumulative sums" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 1 50))
    (fun lengths ->
      let h = Histogram.of_lengths lengths in
      let total = List.fold_left (fun a r -> a + r.Histogram.count) 0 h in
      let last_cum =
        match List.rev h with r :: _ -> r.Histogram.cumulative | [] -> 0
      in
      let decreasing =
        let rec go = function
          | a :: (b :: _ as rest) ->
            a.Histogram.length > b.Histogram.length
            && a.Histogram.cumulative < b.Histogram.cumulative
            && go rest
          | [ _ ] | [] -> true
        in
        go h
      in
      total = List.length lengths && last_cum = total && decreasing)

let prop_histogram_i0_minimal =
  QCheck.Test.make ~name:"select_i0 is the minimal adequate rank" ~count:200
    QCheck.(
      pair (list_of_size (Gen.int_range 1 60) (int_range 1 30)) (int_range 1 40))
    (fun (lengths, threshold) ->
      let h = Histogram.of_lengths lengths in
      match Histogram.select_i0 h ~threshold with
      | None -> List.length lengths < threshold
      | Some i0 ->
        let cum rank =
          match List.find_opt (fun r -> r.Histogram.rank = rank) h with
          | Some r -> r.Histogram.cumulative
          | None -> max_int
        in
        cum i0 >= threshold && (i0 = 0 || cum (i0 - 1) < threshold))


(* ------------------------------------------------------------------ *)
(* Count                                                                *)
(* ------------------------------------------------------------------ *)

let test_count_total_matches_enumeration () =
  List.iter
    (fun c ->
      let model = Delay_model.lines c in
      let r = Enumerate.enumerate c model ~max_paths:100_000 in
      check Alcotest.int
        (Printf.sprintf "total paths of %s" c.Circuit.name)
        (List.length r.Enumerate.paths)
        (int_of_float (Pdf_paths.Count.total c)))
    [ s27; c17;
      Pdf_synth.Generators.ripple_adder ~bits:4;
      Pdf_synth.Generators.mux_cascade ~selects:3 ]

let test_count_through_po_cone () =
  (* paths through a PI = number of complete paths starting there. *)
  let model = Delay_model.lines s27 in
  let r = Enumerate.enumerate s27 model ~max_paths:100_000 in
  let through = Pdf_paths.Count.through s27 in
  for pi = 0 to s27.Circuit.num_pis - 1 do
    let expected =
      List.length
        (List.filter (fun (p, _) -> p.Path.source = pi) r.Enumerate.paths)
    in
    check Alcotest.int
      (Printf.sprintf "paths through PI %s" (Circuit.net_name s27 pi))
      expected
      (int_of_float through.(pi))
  done

let test_count_to_from_consistency () =
  (* to_net of a PI is 1; from_net of a fanout-free PO is 1. *)
  let into = Pdf_paths.Count.to_net s27 in
  let from = Pdf_paths.Count.from_net s27 in
  for pi = 0 to s27.Circuit.num_pis - 1 do
    check Alcotest.int "to_net PI" 1 (int_of_float into.(pi))
  done;
  let g17 = Option.get (Circuit.find_net s27 "G17") in
  check Alcotest.int "from_net sink PO" 1 (int_of_float from.(g17))

let test_count_longest () =
  let model = Delay_model.lines s27 in
  let r = Enumerate.enumerate s27 model ~max_paths:100_000 in
  let max_len = List.fold_left (fun a (_, l) -> max a l) 0 r.Enumerate.paths in
  let n_max =
    List.length (List.filter (fun (_, l) -> l = max_len) r.Enumerate.paths)
  in
  let len, count = Pdf_paths.Count.longest s27 model in
  check Alcotest.int "longest length" max_len len;
  check Alcotest.int "longest count" n_max (int_of_float count)

let prop_count_agrees_with_enumeration =
  QCheck.Test.make ~name:"count agrees with enumeration on random DAGs"
    ~count:20
    (QCheck.make (QCheck.Gen.int_range 0 10_000))
    (fun seed ->
      let params =
        { Pdf_synth.Generators.num_pis = 6; num_gates = 25; window = 12;
          max_fanout = 3; reuse_pct = 15; restart_pct = 0; fanin3_pct = 10;
          inverter_pct = 20; po_taps = 2 }
      in
      let c = Pdf_synth.Generators.random_dag ~name:"rand" ~seed params in
      let model = Delay_model.lines c in
      let r = Enumerate.enumerate c model ~max_paths:100_000 in
      (not r.Enumerate.truncated) && r.Enumerate.evicted = 0
      && List.length r.Enumerate.paths = int_of_float (Pdf_paths.Count.total c))


(* ------------------------------------------------------------------ *)
(* STA                                                                  *)
(* ------------------------------------------------------------------ *)

module Sta = Pdf_paths.Sta

let test_sta_critical_period () =
  let model = Delay_model.lines s27 in
  let sta = Sta.compute s27 model in
  (* Default period = critical delay = longest path length. *)
  let len, _ = Pdf_paths.Count.longest s27 model in
  check Alcotest.int "period" len sta.Sta.period;
  (* Minimum slack is exactly zero. *)
  let min_slack =
    Array.fold_left
      (fun acc s -> if s <> max_int then min acc s else acc)
      max_int sta.Sta.slack
  in
  check Alcotest.int "min slack" 0 min_slack

let test_sta_critical_nets_are_on_longest_paths () =
  let model = Delay_model.lines s27 in
  let sta = Sta.compute s27 model in
  let r = Enumerate.enumerate s27 model ~max_paths:100 in
  let len, _ = Pdf_paths.Count.longest s27 model in
  let on_longest = Hashtbl.create 32 in
  List.iter
    (fun (p, l) ->
      if l = len then
        List.iter (fun net -> Hashtbl.replace on_longest net ()) (Path.nets s27 p))
    r.Enumerate.paths;
  (* Every critical net lies on some longest path, and vice versa. *)
  List.iter
    (fun net ->
      check Alcotest.bool
        (Printf.sprintf "critical net %s on a longest path"
           (Circuit.net_name s27 net))
        true
        (Hashtbl.mem on_longest net))
    (Sta.critical_nets sta);
  Hashtbl.iter
    (fun net () ->
      check Alcotest.bool "longest-path net is critical" true
        (Sta.net_on_critical_path sta net))
    on_longest

let test_sta_arrival_matches_path_lengths () =
  (* arrival(net) is the max length over enumerated partial paths ending
     at the net: check at the POs using complete paths. *)
  let model = Delay_model.lines s27 in
  let sta = Sta.compute s27 model in
  let r = Enumerate.enumerate s27 model ~max_paths:100 in
  Array.iter
    (fun po ->
      let longest_into =
        List.fold_left
          (fun acc (p, l) -> if Path.last_net s27 p = po then max acc l else acc)
          0 r.Enumerate.paths
      in
      if longest_into > 0 then
        check Alcotest.int
          (Printf.sprintf "arrival at %s" (Circuit.net_name s27 po))
          longest_into sta.Sta.arrival.(po))
    s27.Circuit.pos

let test_sta_explicit_period () =
  let model = Delay_model.lines s27 in
  let sta = Sta.compute ~period:20 s27 model in
  check Alcotest.int "period respected" 20 sta.Sta.period;
  (* With a relaxed period nothing is critical. *)
  check Alcotest.int "no critical nets" 0 (List.length (Sta.critical_nets sta));
  let p = s27_path [ "G1"; "G12"; "G13" ] in
  check Alcotest.int "path slack" (20 - Path.num_lines s27 p)
    (Sta.path_slack sta s27 model p)

let () =
  Alcotest.run "pdf_paths"
    [
      ( "path",
        [
          Alcotest.test_case "basics" `Quick test_path_basics;
          Alcotest.test_case "num_lines counts branches" `Quick
            test_path_num_lines_counts_branches;
          Alcotest.test_case "source only" `Quick test_path_source_only;
          Alcotest.test_case "ill formed" `Quick test_path_ill_formed;
          Alcotest.test_case "compare/equal" `Quick test_path_compare_equal;
        ] );
      ( "delay_distance",
        [
          Alcotest.test_case "delay models" `Quick test_delay_models;
          Alcotest.test_case "per kind model" `Quick test_delay_model_per_kind;
          Alcotest.test_case "random model deterministic" `Quick
            test_delay_model_random_deterministic;
          Alcotest.test_case "distance matches brute force" `Quick
            test_distance_matches_brute_force;
          Alcotest.test_case "len bound" `Quick test_len_bound;
        ] );
      ( "enumerate",
        [
          Alcotest.test_case "s27 unbounded" `Quick test_enumerate_s27_unbounded;
          Alcotest.test_case "sorted descending" `Quick test_enumerate_sorted_desc;
          Alcotest.test_case "no duplicates" `Quick test_enumerate_no_duplicates;
          Alcotest.test_case "bounded keeps longest" `Quick
            test_enumerate_bounded_keeps_longest;
          Alcotest.test_case "simple vs distance agree on top" `Quick
            test_enumerate_simple_vs_distance_top;
          Alcotest.test_case "truncation flag" `Quick test_enumerate_truncation;
          Alcotest.test_case "events recorded" `Quick test_enumerate_events_recorded;
          Alcotest.test_case "bad bound" `Quick test_enumerate_bad_bound;
          qcheck prop_enumerate_invariants;
        ] );
      ( "sta",
        [
          Alcotest.test_case "critical period" `Quick test_sta_critical_period;
          Alcotest.test_case "critical nets on longest paths" `Quick
            test_sta_critical_nets_are_on_longest_paths;
          Alcotest.test_case "arrival matches path lengths" `Quick
            test_sta_arrival_matches_path_lengths;
          Alcotest.test_case "explicit period" `Quick test_sta_explicit_period;
        ] );
      ( "count",
        [
          Alcotest.test_case "total matches enumeration" `Quick
            test_count_total_matches_enumeration;
          Alcotest.test_case "through PI cone" `Quick test_count_through_po_cone;
          Alcotest.test_case "to/from consistency" `Quick
            test_count_to_from_consistency;
          Alcotest.test_case "longest" `Quick test_count_longest;
          qcheck prop_count_agrees_with_enumeration;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_histogram_basics;
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          qcheck prop_histogram_invariants;
          qcheck prop_histogram_i0_minimal;
        ] );
    ]
