(* Tests for Pdf_faults: fault model, robust conditions A(p),
   undetectability filters, target-set selection. *)

module Bit = Pdf_values.Bit
module Req = Pdf_values.Req
module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate
module Builder = Pdf_circuit.Builder
module Path = Pdf_paths.Path
module Delay_model = Pdf_paths.Delay_model
module Fault = Pdf_faults.Fault
module Robust = Pdf_faults.Robust
module Undetectable = Pdf_faults.Undetectable
module Target_sets = Pdf_faults.Target_sets

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let s27 = Pdf_synth.Iscas.s27 ()

let req_testable = Alcotest.testable Req.pp Req.equal

let net c name = Option.get (Circuit.find_net c name)

let hop_into c gate_out prev =
  match Circuit.gate_of_net c (net c gate_out) with
  | None -> assert false
  | Some g ->
    let fanins = (c : Circuit.t).gates.(g).Circuit.fanins in
    let pin = ref (-1) in
    Array.iteri (fun i f -> if f = net c prev then pin := i) fanins;
    assert (!pin >= 0);
    { Path.gate = g; pin = !pin }

let mk_path c names =
  match names with
  | [] -> assert false
  | src :: rest ->
    let p = ref (Path.source_only (net c src)) in
    let prev = ref src in
    List.iter
      (fun n ->
        p := Path.extend !p (hop_into c n !prev);
        prev := n)
      rest;
    !p

(* A little gate-chain circuit for direction-by-direction checks:
   y1 = AND(a, s1); y2 = OR(y1, s2); y3 = NAND(y2, s3); out = NOR(y3, s4) *)
let chain =
  let b = Builder.create "chain" in
  List.iter (Builder.add_pi b) [ "a"; "s1"; "s2"; "s3"; "s4" ];
  Builder.add_po b "out";
  Builder.add_gate b ~out:"y1" Gate.And [ "a"; "s1" ];
  Builder.add_gate b ~out:"y2" Gate.Or [ "y1"; "s2" ];
  Builder.add_gate b ~out:"y3" Gate.Nand [ "y2"; "s3" ];
  Builder.add_gate b ~out:"out" Gate.Nor [ "y3"; "s4" ];
  Builder.finish_exn b

let chain_path = mk_path chain [ "a"; "y1"; "y2"; "y3"; "out" ]

(* ------------------------------------------------------------------ *)
(* Fault                                                                *)
(* ------------------------------------------------------------------ *)

let test_fault_both () =
  match Fault.both chain_path with
  | [ r; f ] ->
    check Alcotest.bool "rising first" true (r.Fault.dir = Fault.Rising);
    check Alcotest.bool "falling second" true (f.Fault.dir = Fault.Falling);
    check Alcotest.bool "distinct" false (Fault.equal r f);
    check Alcotest.bool "same path" true (Path.equal r.Fault.path f.Fault.path)
  | _ -> Alcotest.fail "both should return two faults"

let test_fault_to_string () =
  let f = Fault.rising chain_path in
  check Alcotest.string "render" "slow-to-rise (a,y1,y2,y3,out)"
    (Fault.to_string chain f)

(* ------------------------------------------------------------------ *)
(* Robust conditions                                                    *)
(* ------------------------------------------------------------------ *)

(* Hand-derived conditions for the rising fault on (a,y1,y2,y3,out):
   - source a: 0x1
   - AND y1, on-path rising (ends non-controlling 1): side s1 needs final 1
   - OR y2, on-path rising at y1 (ends controlling 1): side s2 stable 0
   - NAND y3, on-path rising at y2 (ends controlling... NAND cv=0, rising
     ends at 1 = non-controlling): side s3 final 1; output falls
   - NOR out, on-path falling at y3 (NOR cv=1, falling ends at 0 =
     non-controlling): side s4 final 0 *)
let test_robust_rising_chain () =
  let f = Fault.rising chain_path in
  let reqs = Option.get (Robust.conditions chain f) in
  let expect name r =
    match List.assoc_opt (net chain name) reqs with
    | Some actual -> check req_testable name r actual
    | None -> Alcotest.failf "missing requirement on %s" name
  in
  check Alcotest.int "req count" 5 (List.length reqs);
  expect "a" Req.rising;
  expect "s1" (Req.final true);
  expect "s2" (Req.stable false);
  expect "s3" (Req.final true);
  expect "s4" (Req.final false)

(* Falling fault: every condition flips class. *)
let test_robust_falling_chain () =
  let f = Fault.falling chain_path in
  let reqs = Option.get (Robust.conditions chain f) in
  let expect name r =
    match List.assoc_opt (net chain name) reqs with
    | Some actual -> check req_testable name r actual
    | None -> Alcotest.failf "missing requirement on %s" name
  in
  expect "a" Req.falling;
  expect "s1" (Req.stable true);
  (* AND: falling ends controlling *)
  expect "s2" (Req.final false);
  expect "s3" (Req.stable true);
  (* NAND: falling at y2 ends controlling 0 *)
  expect "s4" (Req.stable false)
(* NOR: rising at y3 ends controlling 1 *)

let test_robust_output_direction () =
  (* Two inversions along the chain (NAND, NOR): direction is preserved. *)
  check Alcotest.bool "rising out" true
    (Robust.output_direction chain (Fault.rising chain_path) = Fault.Rising);
  (* One inversion: path (a,y1,y2,y3). *)
  let p3 = mk_path chain [ "a"; "y1"; "y2"; "y3" ] in
  check Alcotest.bool "falling at y3" true
    (Robust.output_direction chain (Fault.rising p3) = Fault.Falling)

let test_robust_paper_example () =
  (* The paper's s27 example: slow-to-rise through G12 (NOR) observed at
     G13 (NAND): side G7 stable 0, side G2 hazard-free 1. *)
  let f = Fault.rising (mk_path s27 [ "G1"; "G12"; "G13" ]) in
  let reqs = Option.get (Robust.conditions s27 f) in
  let expect name r =
    check req_testable name r (List.assoc (net s27 name) reqs)
  in
  expect "G1" Req.rising;
  expect "G7" (Req.stable false);
  expect "G2" (Req.stable true)

let test_robust_merges_repeated_lines () =
  (* A circuit where one side input feeds two gates of the path with
     compatible requirements: out1 = OR(a, s); out2 = OR(out1, s).
     Rising on (a,out1,out2): s must be stable 0 at both gates; merged to
     a single entry. *)
  let b = Builder.create "share" in
  List.iter (Builder.add_pi b) [ "a"; "s" ];
  Builder.add_po b "out2";
  Builder.add_gate b ~out:"out1" Gate.Or [ "a"; "s" ];
  Builder.add_gate b ~out:"out2" Gate.Or [ "out1"; "s" ];
  let c = Builder.finish_exn b in
  let f = Fault.rising (mk_path c [ "a"; "out1"; "out2" ]) in
  let raw = Robust.raw_conditions c f in
  check Alcotest.int "raw has two entries for s" 2
    (List.length (List.filter (fun (n, _) -> n = net c "s") raw));
  let merged = Option.get (Robust.conditions c f) in
  check Alcotest.int "merged has one entry for s" 1
    (List.length (List.filter (fun (n, _) -> n = net c "s") merged))

let test_robust_direct_conflict () =
  (* One side input needed stable 0 by an OR gate and stable 1 by an AND
     gate on the same path: and1 = AND(a, s); or1 = OR(and1, s).
     Falling on (a,and1,or1): AND side s stable 1; OR side: falling ends
     non-controlling 0 -> final 0... use rising to get the conflict:
     rising at a -> AND side s final 1; rising at and1 into OR (ends
     controlling 1) -> side s stable 0.  final1 vs stable0 conflict. *)
  let b = Builder.create "clash" in
  List.iter (Builder.add_pi b) [ "a"; "s" ];
  Builder.add_po b "or1";
  Builder.add_gate b ~out:"and1" Gate.And [ "a"; "s" ];
  Builder.add_gate b ~out:"or1" Gate.Or [ "and1"; "s" ];
  let c = Builder.finish_exn b in
  let f = Fault.rising (mk_path c [ "a"; "and1"; "or1" ]) in
  check Alcotest.bool "direct conflict" true (Robust.conditions c f = None);
  check Alcotest.bool "classified" true
    (Undetectable.classify c f = Undetectable.Direct_conflict)

let test_robust_xor_side_stable_zero () =
  let b = Builder.create "x" in
  List.iter (Builder.add_pi b) [ "a"; "s" ];
  Builder.add_po b "y";
  Builder.add_gate b ~out:"y" Gate.Xor [ "a"; "s" ];
  let c = Builder.finish_exn b in
  let f = Fault.rising (mk_path c [ "a"; "y" ]) in
  let reqs = Option.get (Robust.conditions c f) in
  check req_testable "xor side" (Req.stable false)
    (List.assoc (net c "s") reqs);
  (* XOR with a stable-0 side preserves direction; XNOR inverts. *)
  check Alcotest.bool "xor preserves" true
    (Robust.output_direction c f = Fault.Rising)

let test_robust_not_buff_no_sides () =
  let b = Builder.create "inv" in
  Builder.add_pi b "a";
  Builder.add_po b "y";
  Builder.add_gate b ~out:"n" Gate.Not [ "a" ];
  Builder.add_gate b ~out:"y" Gate.Buff [ "n" ];
  let c = Builder.finish_exn b in
  let f = Fault.rising (mk_path c [ "a"; "n"; "y" ]) in
  let reqs = Option.get (Robust.conditions c f) in
  check Alcotest.int "only the source condition" 1 (List.length reqs);
  check Alcotest.bool "inverted once" true
    (Robust.output_direction c f = Fault.Falling)

let test_merge_into () =
  let acc = Hashtbl.create 8 in
  check Alcotest.bool "first merge" true
    (Robust.merge_into acc [ (0, Req.rising); (1, Req.stable false) ]);
  check Alcotest.bool "compatible merge" true
    (Robust.merge_into acc [ (1, Req.final false) ]);
  (* Conflict leaves the accumulator untouched. *)
  let before = Hashtbl.length acc in
  check Alcotest.bool "conflicting merge fails" false
    (Robust.merge_into acc [ (2, Req.final true); (1, Req.stable true) ]);
  check Alcotest.int "unchanged on failure" before (Hashtbl.length acc);
  check Alcotest.bool "net 2 not added" true (Hashtbl.find_opt acc 2 = None)

(* Property: A(p) of a random s27 fault never constrains on-path internal
   nets except via side-input occurrences, and always contains the source
   transition. *)
let prop_conditions_contain_source =
  let model = Delay_model.lines s27 in
  let r = Pdf_paths.Enumerate.enumerate s27 model ~max_paths:100 in
  let all_faults =
    Array.of_list
      (List.concat_map (fun (p, _) -> Fault.both p) r.Pdf_paths.Enumerate.paths)
  in
  QCheck.Test.make ~name:"A(p) pins the source transition" ~count:100
    (QCheck.make (QCheck.Gen.int_bound (Array.length all_faults - 1)))
    (fun i ->
      let f = all_faults.(i) in
      match Robust.conditions s27 f with
      | None -> true
      | Some reqs -> (
        match List.assoc_opt f.Fault.path.Path.source reqs with
        | None -> false
        | Some r ->
          let expected =
            match f.Fault.dir with
            | Fault.Rising -> Req.rising
            | Fault.Falling -> Req.falling
          in
          (* The source may carry extra pinned components if it also
             appears as a side input; it must at least imply the
             transition. *)
          (match Req.merge r expected with
          | Some merged -> Req.equal merged r
          | None -> false)))


(* First-principles validation of the robust conditions: over every pair
   of controlled gate kinds and both fault directions, build the chain
   a -> g1 -> g2 -> out with one side input per gate, and check that every
   two-pattern test satisfying A(p) physically detects the slowed path
   under MANY different delay assignments to the rest of the circuit —
   the defining property of a robust test. *)
let test_robust_conditions_first_principles () =
  let kinds = [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor ] in
  List.iter
    (fun k1 ->
      List.iter
        (fun k2 ->
          let b = Builder.create "pair" in
          List.iter (Builder.add_pi b) [ "a"; "s1"; "s2" ];
          Builder.add_po b "out";
          Builder.add_gate b ~out:"y" k1 [ "a"; "s1" ];
          Builder.add_gate b ~out:"out" k2 [ "y"; "s2" ];
          let c = Builder.finish_exn b in
          let path = mk_path c [ "a"; "y"; "out" ] in
          List.iter
            (fun dir ->
              let fault = { Fault.path; dir } in
              match Robust.conditions c fault with
              | None -> () (* undetectable chain, nothing to check *)
              | Some reqs ->
                (* Try every two-pattern test over the 3 inputs. *)
                for v1 = 0 to 7 do
                  for v3 = 0 to 7 do
                    let bits v = Array.init 3 (fun i -> (v lsr i) land 1 = 1) in
                    let t = Pdf_core.Test_pair.create (bits v1) (bits v3) in
                    if Pdf_core.Test_pair.satisfies c t reqs then begin
                      (* Robustness: detection must hold for every delay
                         model we throw at the rest of the circuit. *)
                      for seed = 1 to 6 do
                        let model =
                          Delay_model.random c (Pdf_util.Rng.create seed)
                            ~min:1 ~max:5
                        in
                        let period =
                          Pdf_core.Timing.nominal_period c model
                        in
                        let slack =
                          period - Delay_model.length model c path
                        in
                        let inject =
                          { Pdf_core.Timing.path; extra = slack + 1 }
                        in
                        if
                          not
                            (Pdf_core.Timing.detects c model
                               ~t_sample:period ~inject t)
                        then
                          Alcotest.failf
                            "robust test failed physically: %s %s/%s test %s \
                             seed %d"
                            (Fault.direction_name dir) (Gate.kind_name k1)
                            (Gate.kind_name k2)
                            (Pdf_core.Test_pair.to_string t)
                            seed
                      done
                    end
                  done
                done)
            [ Fault.Rising; Fault.Falling ])
        kinds)
    kinds

(* ------------------------------------------------------------------ *)
(* Undetectable filter                                                  *)
(* ------------------------------------------------------------------ *)

let test_filter_counts () =
  let model = Delay_model.lines s27 in
  let r = Pdf_paths.Enumerate.enumerate s27 model ~max_paths:1000 in
  let faults =
    List.concat_map (fun (p, _) -> Fault.both p) r.Pdf_paths.Enumerate.paths
  in
  let kept, stats = Undetectable.filter s27 faults in
  check Alcotest.int "kept matches list" (List.length kept) stats.Undetectable.kept;
  check Alcotest.int "partition"
    (List.length faults)
    (stats.Undetectable.kept + stats.Undetectable.direct_conflicts
   + stats.Undetectable.implication_conflicts);
  (* Every kept fault classifies as maybe-detectable. *)
  List.iter
    (fun f ->
      check Alcotest.bool "kept is maybe-detectable" true
        (Undetectable.classify s27 f = Undetectable.Maybe_detectable))
    kept

let test_filter_soundness_s27 () =
  (* Soundness: a fault removed by the filter must have no robust test.
     Exhaustive check over all 2^14 two-pattern input pairs of s27. *)
  let model = Delay_model.lines s27 in
  let r = Pdf_paths.Enumerate.enumerate s27 model ~max_paths:60 in
  let faults =
    List.concat_map (fun (p, _) -> Fault.both p) r.Pdf_paths.Enumerate.paths
  in
  let removed =
    List.filter
      (fun f -> Undetectable.classify s27 f <> Undetectable.Maybe_detectable)
      faults
  in
  let detectable f =
    match Robust.conditions s27 f with
    | None -> false
    | Some reqs ->
      let found = ref false in
      for a = 0 to 127 do
        for b = 0 to 127 do
          if not !found then begin
            let v1 = Array.init 7 (fun i -> Bit.of_bool ((a lsr i) land 1 = 1)) in
            let v3 = Array.init 7 (fun i -> Bit.of_bool ((b lsr i) land 1 = 1)) in
            let pairs =
              Array.init 7 (fun i ->
                  { Pdf_sim.Two_pattern.b1 = v1.(i); b3 = v3.(i) })
            in
            let triples = Pdf_sim.Two_pattern.simulate s27 pairs in
            if Pdf_sim.Two_pattern.satisfies triples reqs then found := true
          end
        done
      done;
      !found
  in
  List.iter
    (fun f ->
      if detectable f then
        Alcotest.failf "filter removed detectable fault %s"
          (Fault.to_string s27 f))
    removed

(* ------------------------------------------------------------------ *)
(* Target sets                                                          *)
(* ------------------------------------------------------------------ *)

let test_target_sets_partition () =
  let model = Delay_model.lines s27 in
  let ts = Target_sets.build s27 model ~n_p:40 ~n_p0:10 in
  let p = ts.Target_sets.p and p0 = ts.Target_sets.p0 and p1 = ts.Target_sets.p1 in
  check Alcotest.int "partition" (List.length p)
    (List.length p0 + List.length p1);
  List.iter
    (fun (e : Target_sets.entry) ->
      check Alcotest.bool "P0 length >= cutoff" true
        (e.Target_sets.length >= ts.Target_sets.cutoff_length))
    p0;
  List.iter
    (fun (e : Target_sets.entry) ->
      check Alcotest.bool "P1 length < cutoff" true
        (e.Target_sets.length < ts.Target_sets.cutoff_length))
    p1;
  check Alcotest.bool "P0 at least threshold (when feasible)" true
    (List.length p0 >= min 10 (List.length p));
  (* P sorted by decreasing length. *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Target_sets.length >= b.Target_sets.length && sorted rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "sorted" true (sorted p)

let test_target_sets_includes_longest () =
  let model = Delay_model.lines s27 in
  let ts = Target_sets.build s27 model ~n_p:40 ~n_p0:10 in
  (* Both faults of every longest path must be in P0. *)
  let longest =
    match ts.Target_sets.p with e :: _ -> e.Target_sets.length | [] -> 0
  in
  List.iter
    (fun (e : Target_sets.entry) ->
      if e.Target_sets.length = longest then
        check Alcotest.bool "longest in P0" true
          (List.exists
             (fun (e0 : Target_sets.entry) ->
               Fault.equal e0.Target_sets.fault e.Target_sets.fault)
             ts.Target_sets.p0))
    ts.Target_sets.p

let test_target_sets_small_threshold () =
  let model = Delay_model.lines s27 in
  (* Threshold bigger than everything: all faults end up in P0. *)
  let ts = Target_sets.build s27 model ~n_p:40 ~n_p0:10_000 in
  check Alcotest.int "P1 empty" 0 (List.length ts.Target_sets.p1)

let test_target_sets_bad_args () =
  let model = Delay_model.lines s27 in
  Alcotest.check_raises "n_p" (Invalid_argument "Target_sets.build: n_p < 2")
    (fun () -> ignore (Target_sets.build s27 model ~n_p:1 ~n_p0:1))

let test_target_sets_paper_scale () =
  (* The paper's constants must be usable end-to-end on a real profile:
     enumeration and selection at N_P = 10000 / N_P0 = 1000. *)
  let profile = Option.get (Pdf_synth.Profiles.find "b03") in
  let c = Pdf_synth.Profiles.circuit profile in
  let model = Pdf_paths.Delay_model.lines c in
  let ts =
    Target_sets.build c model ~n_p:Target_sets.paper_n_p
      ~n_p0:Target_sets.paper_n_p0
  in
  check Alcotest.bool "P bounded" true
    (List.length ts.Target_sets.p <= Target_sets.paper_n_p);
  check Alcotest.bool "P0 meets threshold when P is large enough" true
    (List.length ts.Target_sets.p0 >= min Target_sets.paper_n_p0
                                        (List.length ts.Target_sets.p));
  check Alcotest.bool "not truncated" false
    ts.Target_sets.enumeration.Pdf_paths.Enumerate.truncated

let test_target_sets_constants () =
  check Alcotest.int "N_P" 10_000 Target_sets.paper_n_p;
  check Alcotest.int "N_P0" 1_000 Target_sets.paper_n_p0


(* ------------------------------------------------------------------ *)
(* Non-robust criterion                                                 *)
(* ------------------------------------------------------------------ *)

let test_non_robust_weaker () =
  (* Non-robust side conditions never pin the middle component, and every
     requirement set a robust test satisfies is also satisfied
     non-robustly (robust => non-robust). *)
  let f = Fault.rising chain_path in
  let robust = Option.get (Robust.conditions chain f) in
  let nonrobust =
    Option.get (Robust.conditions ~criterion:Robust.Non_robust chain f)
  in
  List.iter
    (fun (n, r) ->
      if n <> chain_path.Path.source then begin
        check Alcotest.bool "middle unpinned" true (r.Req.r2 = Req.Any);
        check Alcotest.bool "initial unpinned" true (r.Req.r1 = Req.Any)
      end)
    nonrobust;
  (* Every non-robust requirement is implied by the robust one. *)
  List.iter
    (fun (n, nr) ->
      match List.assoc_opt n robust with
      | None -> Alcotest.failf "net %d missing from robust set" n
      | Some r -> (
        match Req.merge r nr with
        | Some merged -> check req_testable "robust implies non-robust" r merged
        | None -> Alcotest.fail "robust conflicts with non-robust"))
    nonrobust

let test_non_robust_detects_more () =
  (* The direct-conflict example becomes detectable non-robustly: the OR
     side wants stable 0 robustly but only final 0 non-robustly, which no
     longer clashes with the AND side's final 1... on the same net it
     still clashes (xx1 vs xx0).  Check instead that non-robust keeps at
     least as many faults on s27. *)
  let model = Pdf_paths.Delay_model.lines s27 in
  let r = Pdf_paths.Enumerate.enumerate s27 model ~max_paths:60 in
  let faults =
    List.concat_map (fun (p, _) -> Fault.both p) r.Pdf_paths.Enumerate.paths
  in
  let _, rob = Undetectable.filter s27 faults in
  let _, non = Undetectable.filter ~criterion:Robust.Non_robust s27 faults in
  check Alcotest.bool "non-robust keeps at least as many" true
    (non.Undetectable.kept >= rob.Undetectable.kept)

(* ------------------------------------------------------------------ *)
(* Multi-set split                                                      *)
(* ------------------------------------------------------------------ *)

let test_split_multi_partition () =
  let model = Pdf_paths.Delay_model.lines s27 in
  let ts = Target_sets.build s27 model ~n_p:60 ~n_p0:8 in
  let slices = Target_sets.split_multi ts ~thresholds:[ 8; 20 ] in
  check Alcotest.int "three slices" 3 (List.length slices);
  let total = List.fold_left (fun a s -> a + List.length s) 0 slices in
  check Alcotest.int "partition" (List.length ts.Target_sets.p) total;
  (match slices with
  | [ s0; s1; s2 ] ->
    check Alcotest.bool "first slice adequate" true (List.length s0 >= min 8 total);
    (* Slices are ordered by length: min of earlier >= max of later. *)
    let min_len s =
      List.fold_left (fun a (e : Target_sets.entry) -> min a e.Target_sets.length)
        max_int s
    in
    let max_len s =
      List.fold_left (fun a (e : Target_sets.entry) -> max a e.Target_sets.length)
        min_int s
    in
    if s1 <> [] then
      check Alcotest.bool "s0 longer than s1" true (min_len s0 > max_len s1);
    if s2 <> [] then
      check Alcotest.bool "s1 longer than s2" true
        (s1 = [] || min_len s1 > max_len s2)
  | _ -> Alcotest.fail "expected three slices");
  (* First slice must agree with the two-way P0 when thresholds match. *)
  let slices2 = Target_sets.split_multi ts ~thresholds:[ 8 ] in
  (match slices2 with
  | [ s0; s1 ] ->
    check Alcotest.int "s0 = P0" (List.length ts.Target_sets.p0) (List.length s0);
    check Alcotest.int "s1 = P1" (List.length ts.Target_sets.p1) (List.length s1)
  | _ -> Alcotest.fail "expected two slices")

let test_split_multi_bad_thresholds () =
  let model = Pdf_paths.Delay_model.lines s27 in
  let ts = Target_sets.build s27 model ~n_p:60 ~n_p0:8 in
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Target_sets.split_multi: thresholds must increase")
    (fun () -> ignore (Target_sets.split_multi ts ~thresholds:[ 10; 10 ]))

let test_split_multi_huge_threshold () =
  let model = Pdf_paths.Delay_model.lines s27 in
  let ts = Target_sets.build s27 model ~n_p:60 ~n_p0:8 in
  match Target_sets.split_multi ts ~thresholds:[ 100_000 ] with
  | [ s0; s1 ] ->
    check Alcotest.int "everything in first slice"
      (List.length ts.Target_sets.p) (List.length s0);
    check Alcotest.int "second empty" 0 (List.length s1)
  | _ -> Alcotest.fail "expected two slices"

let () =
  Alcotest.run "pdf_faults"
    [
      ( "fault",
        [
          Alcotest.test_case "both" `Quick test_fault_both;
          Alcotest.test_case "to_string" `Quick test_fault_to_string;
        ] );
      ( "robust",
        [
          Alcotest.test_case "rising chain" `Quick test_robust_rising_chain;
          Alcotest.test_case "falling chain" `Quick test_robust_falling_chain;
          Alcotest.test_case "output direction" `Quick test_robust_output_direction;
          Alcotest.test_case "paper example (s27)" `Quick test_robust_paper_example;
          Alcotest.test_case "merges repeated lines" `Quick
            test_robust_merges_repeated_lines;
          Alcotest.test_case "direct conflict" `Quick test_robust_direct_conflict;
          Alcotest.test_case "xor side stable zero" `Quick
            test_robust_xor_side_stable_zero;
          Alcotest.test_case "not/buff no sides" `Quick test_robust_not_buff_no_sides;
          Alcotest.test_case "merge_into" `Quick test_merge_into;
          qcheck prop_conditions_contain_source;
          Alcotest.test_case "first principles (all gate pairs)" `Slow
            test_robust_conditions_first_principles;
        ] );
      ( "undetectable",
        [
          Alcotest.test_case "filter counts" `Quick test_filter_counts;
          Alcotest.test_case "filter soundness (exhaustive s27)" `Slow
            test_filter_soundness_s27;
        ] );
      ( "criterion",
        [
          Alcotest.test_case "non-robust weaker" `Quick test_non_robust_weaker;
          Alcotest.test_case "non-robust detects more" `Quick
            test_non_robust_detects_more;
        ] );
      ( "split_multi",
        [
          Alcotest.test_case "partition" `Quick test_split_multi_partition;
          Alcotest.test_case "bad thresholds" `Quick test_split_multi_bad_thresholds;
          Alcotest.test_case "huge threshold" `Quick test_split_multi_huge_threshold;
        ] );
      ( "target_sets",
        [
          Alcotest.test_case "partition" `Quick test_target_sets_partition;
          Alcotest.test_case "includes longest" `Quick
            test_target_sets_includes_longest;
          Alcotest.test_case "huge threshold" `Quick test_target_sets_small_threshold;
          Alcotest.test_case "bad args" `Quick test_target_sets_bad_args;
          Alcotest.test_case "paper scale" `Slow test_target_sets_paper_scale;
          Alcotest.test_case "paper constants" `Quick test_target_sets_constants;
        ] );
    ]
