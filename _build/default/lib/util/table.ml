type align = Left | Right

type t = {
  title : string option;
  columns : (string * align) list;
  mutable rows : string list list; (* reversed *)
}

let create ?title columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count does not match column count";
  t.rows <- cells :: t.rows

let add_int_row t label ints =
  add_row t (label :: List.map string_of_int ints)

let headers t = List.map fst t.columns

let rows t = List.rev t.rows

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let fmt_line cells =
    let parts =
      List.map2
        (fun (cell, (_, align)) width -> pad align width cell)
        (List.combine cells t.columns)
        widths
    in
    String.concat " | " parts
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (fmt_line headers);
  Buffer.add_char buf '\n';
  let total =
    List.fold_left ( + ) 0 widths + (3 * (List.length widths - 1))
  in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (fmt_line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t)
