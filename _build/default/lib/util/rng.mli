(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component of the library (circuit generation, random
    value selection during justification) draws from an explicit [Rng.t] so
    that experiments reproduce bit-for-bit from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val split : t -> t
(** Derive an independent child generator; the parent advances. *)
