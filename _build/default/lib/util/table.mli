(** Plain-text table rendering for experiment reports.

    Produces aligned, pipe-separated tables similar in spirit to the tables
    of the paper, suitable for terminal output and for EXPERIMENTS.md. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val add_int_row : t -> string -> int list -> unit
(** [add_int_row t label ints] appends [label] followed by the integers. *)

val headers : t -> string list

val rows : t -> string list list
(** In insertion order. *)

val render : t -> string
(** Render the table with aligned columns. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
