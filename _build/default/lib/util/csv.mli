(** Minimal CSV writing (RFC 4180 quoting) for experiment exports. *)

type t

val create : header:string list -> t

val add_row : t -> string list -> unit
(** Must match the header width. *)

val of_table : Table.t -> t
(** Reuse a text table's header and rows. *)

val render : t -> string

val write_file : t -> string -> unit

val escape : string -> string
(** Quote a single field if it contains commas, quotes or newlines. *)
