lib/util/rng.mli:
