lib/util/csv.mli: Table
