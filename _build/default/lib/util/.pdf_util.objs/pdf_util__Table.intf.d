lib/util/table.mli:
