lib/util/heap.mli:
