(** Mutable binary heap with a caller-supplied ordering.

    Used with lazy deletion by the path enumerator: stale entries stay in
    the heap and are skipped by the caller on pop. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [leq a b] means [a] has priority at least as high as [b] (pops
    first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the highest-priority element. *)

val peek : 'a t -> 'a option

val pop_while : 'a t -> ('a -> bool) -> 'a option
(** [pop_while t stale] pops and discards elements while [stale] holds,
    returning the first fresh element (popped), if any. *)
