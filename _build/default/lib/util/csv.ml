type t = {
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~header = { header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Csv.add_row: row width does not match header";
  t.rows <- row :: t.rows

let of_table table =
  let t = create ~header:(Table.headers table) in
  List.iter (add_row t) (Table.rows table);
  t

let needs_quoting s =
  String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n' || ch = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf ch)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render t =
  let line cells = String.concat "," (List.map escape cells) in
  String.concat "\n" (line t.header :: List.rev_map line t.rows) ^ "\n"

let write_file t path =
  let oc = open_out path in
  output_string oc (render t);
  close_out oc
