type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable data : 'a array;
  mutable size : int;
}

let create ~leq = { leq; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let data = Array.make ncap x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    not (t.leq t.data.(parent) t.data.(!i))
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(parent) in
    t.data.(parent) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := parent
  done

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let best = ref !i in
    if l < t.size && not (t.leq t.data.(!best) t.data.(l)) then best := l;
    if r < t.size && not (t.leq t.data.(!best) t.data.(r)) then best := r;
    if !best = !i then continue := false
    else begin
      let tmp = t.data.(!best) in
      t.data.(!best) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := !best
    end
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    sift_down t;
    Some top
  end

let peek t = if t.size = 0 then None else Some t.data.(0)

let rec pop_while t stale =
  match pop t with
  | None -> None
  | Some x -> if stale x then pop_while t stale else Some x
