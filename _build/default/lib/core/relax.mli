(** Test relaxation: turn specified input bits back into don't-cares.

    The justification engine emits fully specified two-pattern tests; for
    low-power test application or opportunistic merging it is useful to
    know which bits actually matter.  [relax] greedily replaces bits with
    [X] while the test still {e provably} detects all the given faults —
    provably, because three-valued simulation is monotone: if the partial
    test satisfies a requirement set with definite values, then so does
    every completion of it. *)

type relaxed = {
  v1 : Pdf_values.Bit.t array;
  v3 : Pdf_values.Bit.t array;
  freed : int;  (** bits turned into don't-cares *)
}

val relax :
  Pdf_circuit.Circuit.t ->
  Test_pair.t ->
  keep:(int * Pdf_values.Req.t) list list ->
  relaxed
(** [keep] lists the condition sets (one per fault) the relaxed test must
    go on satisfying; bits are scanned in a fixed order, so the result is
    deterministic.  If the original test does not satisfy some set in
    [keep], that set is ignored (it cannot be preserved). *)

val completion : relaxed -> fill:bool -> Test_pair.t
(** Replace every don't-care with [fill]. *)

val specified_bits : relaxed -> int
