(** Coverage accounting and reporting.

    Summarises a detection flag vector (from {!Atpg} or {!Fault_sim})
    per path-length, the axis that matters for delay-test quality: the
    enrichment procedure's benefit shows up as higher coverage on the
    next-to-longest lengths. *)

type bucket = {
  length : int;
  total : int;
  detected : int;
}

type t = {
  buckets : bucket list;  (** longest first *)
  total : int;
  detected : int;
}

val of_flags : Fault_sim.prepared array -> bool array -> t
(** Group by exact path length. *)

val percentage : t -> float
(** Overall detected/total in percent (0 when the fault set is empty). *)

val to_table : ?label:string -> t -> Pdf_util.Table.t
(** Render one coverage column. *)

val comparison_table :
  labels:string list -> t list -> Pdf_util.Table.t
(** Render several coverage results side by side (same fault universe);
    used to contrast basic vs enriched coverage per length. *)
