(** Robust fault simulation for path delay faults.

    A two-pattern test robustly detects a fault iff the simulated line
    values satisfy the fault's condition set [A(p)] — detection checking
    is therefore a per-fault scan over one whole-circuit simulation. *)

type prepared = {
  id : int;
  fault : Pdf_faults.Fault.t;
  length : int;  (** path length under the experiment's delay model *)
  reqs : (int * Pdf_values.Req.t) list;  (** merged [A(p)] *)
}

val prepare :
  ?criterion:Pdf_faults.Robust.criterion ->
  Pdf_circuit.Circuit.t ->
  Pdf_faults.Target_sets.entry list ->
  prepared array
(** Precompute merged conditions; ids are array indices.  Entries whose
    conditions conflict directly (undetectable) are dropped — {!Pdf_faults.Target_sets}
    already filters them, so this is normally the identity. *)

val detects_values :
  Pdf_values.Triple.t array -> prepared -> bool
(** Check one fault against an existing simulation result. *)

val detected_by_test :
  Pdf_circuit.Circuit.t -> Test_pair.t -> prepared array -> bool array
(** One simulation, then all faults checked. *)

val detected_by_tests :
  Pdf_circuit.Circuit.t -> Test_pair.t list -> prepared array -> bool array
(** Union over a whole test set. *)

val count : bool array -> int
