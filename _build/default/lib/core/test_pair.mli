(** A fully specified two-pattern test.

    The simulation-based justification procedure of the paper always
    produces fully specified tests, so the test type carries plain
    Booleans: [v1] is the first pattern, [v3] the second. *)

type t = { v1 : bool array; v3 : bool array }

val create : bool array -> bool array -> t
(** Arrays must have equal length (one entry per PI). *)

val pi_pairs : t -> Pdf_sim.Two_pattern.pi_pair array

val simulate : Pdf_circuit.Circuit.t -> t -> Pdf_values.Triple.t array
(** Per-net value triples under this test. *)

val satisfies :
  Pdf_circuit.Circuit.t -> t -> (int * Pdf_values.Req.t) list -> bool
(** Does this test assign all the given values — i.e. robustly detect the
    fault(s) whose conditions they are?  (Convenience wrapper; batch fault
    simulation should reuse one {!simulate} result.) *)

val equal : t -> t -> bool

val to_string : t -> string
(** ["0110/1010"]-style rendering (first pattern / second pattern). *)
