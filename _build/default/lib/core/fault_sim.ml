module Req = Pdf_values.Req
module Fault = Pdf_faults.Fault
module Robust = Pdf_faults.Robust
module Target_sets = Pdf_faults.Target_sets

type prepared = {
  id : int;
  fault : Fault.t;
  length : int;
  reqs : (int * Req.t) list;
}

let prepare ?(criterion = Robust.Robust) c entries =
  let prepared =
    List.filter_map
      (fun (e : Target_sets.entry) ->
        match Robust.conditions ~criterion c e.Target_sets.fault with
        | Some reqs ->
          Some (fun id ->
              { id; fault = e.Target_sets.fault; length = e.Target_sets.length;
                reqs })
        | None -> None)
      entries
  in
  Array.of_list (List.mapi (fun id make -> make id) prepared)

let detects_values values p =
  List.for_all (fun (net, req) -> Req.satisfied_by values.(net) req) p.reqs

let detected_by_test c test faults =
  let values = Test_pair.simulate c test in
  Array.map (fun p -> detects_values values p) faults

let detected_by_tests c tests faults =
  let detected = Array.make (Array.length faults) false in
  List.iter
    (fun test ->
      let values = Test_pair.simulate c test in
      Array.iteri
        (fun i p ->
          if (not detected.(i)) && detects_values values p then
            detected.(i) <- true)
        faults)
    tests;
  detected

let count detected =
  Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected
