module Bit = Pdf_values.Bit
module Two_pattern = Pdf_sim.Two_pattern

type t = { v1 : bool array; v3 : bool array }

let create v1 v3 =
  if Array.length v1 <> Array.length v3 then
    invalid_arg "Test_pair.create: pattern lengths differ";
  { v1; v3 }

let pi_pairs t =
  Array.init (Array.length t.v1) (fun i ->
      { Two_pattern.b1 = Bit.of_bool t.v1.(i); b3 = Bit.of_bool t.v3.(i) })

let simulate c t = Two_pattern.simulate c (pi_pairs t)

let satisfies c t reqs = Two_pattern.satisfies (simulate c t) reqs

let equal a b = a.v1 = b.v1 && a.v3 = b.v3

let pattern_string p =
  String.init (Array.length p) (fun i -> if p.(i) then '1' else '0')

let to_string t = pattern_string t.v1 ^ "/" ^ pattern_string t.v3
