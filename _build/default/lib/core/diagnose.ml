module Robust = Pdf_faults.Robust

type verdict = {
  fault_id : int;
  explained : int;
  maybe_explained : int;
  unexplained : int;
}

let dictionary c tests faults =
  List.map (fun t -> Fault_sim.detected_by_test c t faults) tests
  |> Array.of_list

(* The weak dictionary: non-robust sensitization of the same faults. *)
let weak_dictionary c tests (faults : Fault_sim.prepared array) =
  let weak_reqs =
    Array.map
      (fun (p : Fault_sim.prepared) ->
        Robust.conditions ~criterion:Robust.Non_robust c
          p.Fault_sim.fault)
      faults
  in
  List.map
    (fun t ->
      let values = Test_pair.simulate c t in
      Array.map
        (fun reqs ->
          match reqs with
          | None -> false
          | Some reqs ->
            List.for_all
              (fun (net, req) ->
                Pdf_values.Req.satisfied_by values.(net) req)
              reqs)
        weak_reqs)
    tests
  |> Array.of_list

let diagnose c tests faults ~observed =
  if List.length observed <> List.length tests then
    invalid_arg "Diagnose.diagnose: observed/test length mismatch";
  let strong = dictionary c tests faults in
  let weak = weak_dictionary c tests faults in
  let observed = Array.of_list observed in
  let num_failures =
    Array.fold_left (fun a f -> if f then a + 1 else a) 0 observed
  in
  let verdicts = ref [] in
  Array.iteri
    (fun fault_id _ ->
      let eliminated = ref false in
      let explained = ref 0 and maybe = ref 0 in
      Array.iteri
        (fun t failed ->
          if strong.(t).(fault_id) then
            if failed then begin
              incr explained;
              incr maybe
            end
            else eliminated := true
          else if weak.(t).(fault_id) && failed then incr maybe)
        observed;
      if (not !eliminated) && (num_failures = 0 || !maybe > 0) then
        verdicts :=
          {
            fault_id;
            explained = !explained;
            maybe_explained = !maybe;
            unexplained = num_failures - !maybe;
          }
          :: !verdicts)
    faults;
  List.sort
    (fun a b ->
      if a.maybe_explained <> b.maybe_explained then
        Int.compare b.maybe_explained a.maybe_explained
      else if a.unexplained <> b.unexplained then
        Int.compare a.unexplained b.unexplained
      else if a.explained <> b.explained then
        Int.compare b.explained a.explained
      else Int.compare a.fault_id b.fault_id)
    !verdicts
