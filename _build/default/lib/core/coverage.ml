type bucket = { length : int; total : int; detected : int }

type t = { buckets : bucket list; total : int; detected : int }

let of_flags (faults : Fault_sim.prepared array) flags =
  if Array.length faults <> Array.length flags then
    invalid_arg "Coverage.of_flags: length mismatch";
  let tbl = Hashtbl.create 32 in
  Array.iteri
    (fun i (p : Fault_sim.prepared) ->
      let total, detected =
        match Hashtbl.find_opt tbl p.Fault_sim.length with
        | Some (t, d) -> (t, d)
        | None -> (0, 0)
      in
      Hashtbl.replace tbl p.Fault_sim.length
        (total + 1, if flags.(i) then detected + 1 else detected))
    faults;
  let buckets =
    Hashtbl.fold
      (fun length (total, detected) acc -> { length; total; detected } :: acc)
      tbl []
    |> List.sort (fun a b -> Int.compare b.length a.length)
  in
  {
    buckets;
    total = Array.length faults;
    detected = Fault_sim.count flags;
  }

let percentage t =
  if t.total = 0 then 0.
  else 100. *. float_of_int t.detected /. float_of_int t.total

let to_table ?(label = "detected") t =
  let open Pdf_util.Table in
  let table =
    create [ ("length", Right); ("faults", Right); (label, Right) ]
  in
  List.iter
    (fun b ->
      add_row table
        [ string_of_int b.length; string_of_int b.total;
          string_of_int b.detected ])
    t.buckets;
  add_row table
    [ "all"; string_of_int t.total; string_of_int t.detected ];
  table

let comparison_table ~labels results =
  if List.length labels <> List.length results then
    invalid_arg "Coverage.comparison_table: labels/results mismatch";
  let open Pdf_util.Table in
  let table =
    create
      (("length", Right) :: ("faults", Right)
      :: List.map (fun l -> (l, Right)) labels)
  in
  let lengths =
    match results with
    | [] -> []
    | first :: _ -> List.map (fun b -> (b.length, b.total)) first.buckets
  in
  let detected_at result length =
    match List.find_opt (fun b -> b.length = length) result.buckets with
    | Some b -> string_of_int b.detected
    | None -> "-"
  in
  List.iter
    (fun (length, total) ->
      add_row table
        (string_of_int length :: string_of_int total
        :: List.map (fun r -> detected_at r length) results))
    lengths;
  add_row table
    ("all"
    :: (match results with r :: _ -> string_of_int r.total | [] -> "0")
    :: List.map (fun r -> string_of_int r.detected) results);
  table
