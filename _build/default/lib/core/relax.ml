module Bit = Pdf_values.Bit
module Two_pattern = Pdf_sim.Two_pattern

type relaxed = {
  v1 : Bit.t array;
  v3 : Bit.t array;
  freed : int;
}

let pairs_of v1 v3 =
  Array.init (Array.length v1) (fun i ->
      { Two_pattern.b1 = v1.(i); b3 = v3.(i) })

let relax c (test : Test_pair.t) ~keep =
  let v1 = Array.map Bit.of_bool test.Test_pair.v1 in
  let v3 = Array.map Bit.of_bool test.Test_pair.v3 in
  let satisfied_sets values =
    List.map (fun reqs -> Two_pattern.satisfies values reqs) keep
  in
  (* Only preserve what the original test actually achieves. *)
  let baseline = satisfied_sets (Two_pattern.simulate c (pairs_of v1 v3)) in
  let still_fine values =
    List.for_all2
      (fun was is -> (not was) || is)
      baseline
      (satisfied_sets values)
  in
  let freed = ref 0 in
  for i = 0 to Array.length v1 - 1 do
    List.iter
      (fun pattern ->
        let arr = if pattern = 1 then v1 else v3 in
        let saved = arr.(i) in
        arr.(i) <- Bit.X;
        let values = Two_pattern.simulate c (pairs_of v1 v3) in
        if still_fine values then incr freed else arr.(i) <- saved)
      [ 1; 3 ]
  done;
  { v1; v3; freed = !freed }

let completion r ~fill =
  let concrete arr =
    Array.map
      (fun b -> match Bit.to_bool b with Some v -> v | None -> fill)
      arr
  in
  Test_pair.create (concrete r.v1) (concrete r.v3)

let specified_bits r =
  let count arr =
    Array.fold_left (fun a b -> if Bit.is_definite b then a + 1 else a) 0 arr
  in
  count r.v1 + count r.v3
