module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate
module Path = Pdf_paths.Path
module Delay_model = Pdf_paths.Delay_model
module Heap = Pdf_util.Heap

type waveform = {
  initial : bool;
  changes : (int * bool) list;
}

type result = {
  waveforms : waveform array;
  settle_time : int;
}

type injection = {
  path : Path.t;
  extra : int;
}

type event = { time : int; net : int; value : bool; seq : int }

let max_events = 2_000_000

(* Two-valued gate evaluation over the current net values. *)
let eval_gate (current : bool array) (g : Circuit.gate) =
  let fanins = g.Circuit.fanins in
  match g.Circuit.kind with
  | Gate.Not -> not current.(fanins.(0))
  | Gate.Buff -> current.(fanins.(0))
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    let op =
      match g.Circuit.kind with
      | Gate.And | Gate.Nand -> ( && )
      | Gate.Or | Gate.Nor -> ( || )
      | Gate.Xor | Gate.Xnor | Gate.Not | Gate.Buff -> ( <> )
    in
    let acc = ref current.(fanins.(0)) in
    for i = 1 to Array.length fanins - 1 do
      acc := op !acc current.(fanins.(i))
    done;
    if Gate.inverting g.Circuit.kind then not !acc else !acc

let injected_pins inject =
  let tbl = Hashtbl.create 16 in
  (match inject with
  | None -> ()
  | Some { path; extra } ->
    Array.iter
      (fun (h : Path.hop) ->
        Hashtbl.replace tbl (h.Path.gate, h.Path.pin) extra)
      path.Path.hops);
  tbl

let simulate ?inject c (model : Delay_model.t) (test : Test_pair.t) =
  let n = Circuit.num_nets c in
  let extra_at = injected_pins inject in
  let source_extra =
    match inject with
    | Some { path; extra } -> Some (path.Path.source, extra)
    | None -> None
  in
  (* Settle the first pattern. *)
  let current = Pdf_sim.Logic_sim.simulate_bool c test.Test_pair.v1 in
  let initial = Array.copy current in
  let changes = Array.make n [] in
  let settle = ref 0 in
  let queue =
    Heap.create ~leq:(fun a b ->
        a.time < b.time || (a.time = b.time && a.seq <= b.seq))
  in
  let seq = ref 0 in
  let push time net value =
    incr seq;
    Heap.push queue { time; net; value; seq = !seq }
  in
  (* Launch the second pattern: a changing input arrives after its own
     stem delay (plus the injected source slowdown for the faulty run). *)
  for pi = 0 to c.Circuit.num_pis - 1 do
    if test.Test_pair.v1.(pi) <> test.Test_pair.v3.(pi) then begin
      let extra =
        match source_extra with
        | Some (src, e) when src = pi -> e
        | Some _ | None -> 0
      in
      push (model.Delay_model.stem.(pi) + extra) pi test.Test_pair.v3.(pi)
    end
  done;
  let processed = ref 0 in
  let rec drain () =
    match Heap.pop queue with
    | None -> ()
    | Some ev ->
      incr processed;
      if !processed > max_events then
        failwith "Timing.simulate: event budget exceeded";
      if current.(ev.net) <> ev.value then begin
        current.(ev.net) <- ev.value;
        changes.(ev.net) <- (ev.time, ev.value) :: changes.(ev.net);
        if ev.time > !settle then settle := ev.time;
        Array.iter
          (fun (g, pin) ->
            let out = Circuit.net_of_gate c g in
            let v = eval_gate current c.Circuit.gates.(g) in
            let extra =
              match Hashtbl.find_opt extra_at (g, pin) with
              | Some e -> e
              | None -> 0
            in
            let delay =
              Delay_model.branch_cost model c ev.net
              + model.Delay_model.stem.(out) + extra
            in
            push (ev.time + delay) out v)
          c.Circuit.fanouts.(ev.net)
      end;
      drain ()
  in
  drain ();
  let waveforms =
    Array.init n (fun net ->
        { initial = initial.(net); changes = List.rev changes.(net) })
  in
  { waveforms; settle_time = !settle }

let value_at w t =
  List.fold_left
    (fun acc (time, value) -> if time <= t then value else acc)
    w.initial w.changes

let final_value w =
  match List.rev w.changes with (_, v) :: _ -> v | [] -> w.initial

let detects c model ~t_sample ~inject test =
  let fault_free = simulate c model test in
  let faulty = simulate ~inject c model test in
  Array.exists
    (fun po ->
      let expected = final_value fault_free.waveforms.(po) in
      let sampled = value_at faulty.waveforms.(po) t_sample in
      sampled <> expected)
    c.Circuit.pos

let nominal_period c model = fst (Pdf_paths.Count.longest c model)
