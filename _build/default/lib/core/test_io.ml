type parse_error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

let to_string tests =
  String.concat "" (List.map (fun t -> Test_pair.to_string t ^ "\n") tests)

let parse_pattern lineno s =
  if String.exists (fun ch -> ch <> '0' && ch <> '1') s then
    Error { line = lineno; message = "patterns must be over {0,1}" }
  else Ok (Array.init (String.length s) (fun i -> s.[i] = '1'))

let of_string ~num_pis text =
  let exception Fail of parse_error in
  try
    let tests = ref [] in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let line =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        let line = String.trim line in
        if line <> "" then
          match String.split_on_char '/' line with
          | [ a; b ] -> (
            match parse_pattern lineno a, parse_pattern lineno b with
            | Ok v1, Ok v3 ->
              if Array.length v1 <> num_pis || Array.length v3 <> num_pis
              then
                raise
                  (Fail
                     {
                       line = lineno;
                       message =
                         Printf.sprintf "expected %d bits per pattern" num_pis;
                     })
              else tests := Test_pair.create v1 v3 :: !tests
            | Error e, _ | _, Error e -> raise (Fail e))
          | _ ->
            raise
              (Fail { line = lineno; message = "expected exactly one '/'" }))
      (String.split_on_char '\n' text);
    Ok (List.rev !tests)
  with Fail e -> Error e

let write_file tests path =
  let oc = open_out path in
  output_string oc (to_string tests);
  close_out oc

let read_file ~num_pis path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  of_string ~num_pis text
