lib/core/relax.mli: Pdf_circuit Pdf_values Test_pair
