lib/core/diagnose.ml: Array Fault_sim Int List Pdf_faults Pdf_values Test_pair
