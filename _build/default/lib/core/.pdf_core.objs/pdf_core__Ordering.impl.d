lib/core/ordering.ml: String
