lib/core/test_pair.mli: Pdf_circuit Pdf_sim Pdf_values
