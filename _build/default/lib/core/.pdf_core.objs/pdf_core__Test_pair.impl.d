lib/core/test_pair.ml: Array Pdf_sim Pdf_values String
