lib/core/static_compaction.ml: Array Fault_sim List
