lib/core/fault_sim.mli: Pdf_circuit Pdf_faults Pdf_values Test_pair
