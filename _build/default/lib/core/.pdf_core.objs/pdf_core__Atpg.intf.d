lib/core/atpg.mli: Fault_sim Ordering Pdf_circuit Test_pair
