lib/core/diagnose.mli: Fault_sim Pdf_circuit Test_pair
