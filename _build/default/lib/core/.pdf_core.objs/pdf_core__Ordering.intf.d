lib/core/ordering.mli:
