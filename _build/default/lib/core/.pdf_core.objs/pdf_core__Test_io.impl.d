lib/core/test_io.ml: Array List Printf String Test_pair
