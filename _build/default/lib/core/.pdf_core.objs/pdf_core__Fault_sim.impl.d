lib/core/fault_sim.ml: Array List Pdf_faults Pdf_values Test_pair
