lib/core/justify.mli: Pdf_circuit Pdf_util Pdf_values Test_pair
