lib/core/atpg.ml: Array Fault_sim Hashtbl Int Justify List Ordering Pdf_circuit Pdf_sim Pdf_util Pdf_values Sys Test_pair
