lib/core/static_compaction.mli: Fault_sim Pdf_circuit Test_pair
