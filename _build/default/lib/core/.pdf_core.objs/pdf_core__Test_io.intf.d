lib/core/test_io.mli: Test_pair
