lib/core/timing.mli: Pdf_circuit Pdf_paths Test_pair
