lib/core/coverage.mli: Fault_sim Pdf_util
