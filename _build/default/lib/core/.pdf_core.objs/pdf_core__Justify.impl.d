lib/core/justify.ml: Array Hashtbl List Pdf_circuit Pdf_sim Pdf_util Pdf_values Test_pair
