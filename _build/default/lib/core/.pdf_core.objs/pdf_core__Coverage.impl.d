lib/core/coverage.ml: Array Fault_sim Hashtbl Int List Pdf_util
