lib/core/timing.ml: Array Hashtbl List Pdf_circuit Pdf_paths Pdf_sim Pdf_util Test_pair
