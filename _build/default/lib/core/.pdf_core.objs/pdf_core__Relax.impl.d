lib/core/relax.ml: Array List Pdf_sim Pdf_values Test_pair
