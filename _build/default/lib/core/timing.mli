(** Event-driven timing simulation of two-pattern tests.

    This is the physical ground truth behind the whole path-delay-fault
    theory: gates have real delays, the first pattern settles, the second
    pattern is launched at time 0, signals ripple with transport delays,
    and the circuit is sampled at the clock period [t_sample].  A path
    delay fault is {e injected} as extra delay on every gate along a
    path; a test detects the fault iff some primary output samples a
    value different from the fault-free settled response.

    Gate delays are taken from a {!Pdf_paths.Delay_model}: the delay of a
    gate is the stem weight of its output net, and leaving a stem with
    fanout adds that stem's branch weight — matching the path-length
    metric used by the enumeration, so the nominal critical delay equals
    the length of the longest path. *)

type waveform = {
  initial : bool;  (** settled value under the first pattern *)
  changes : (int * bool) list;  (** (time, new value), increasing times *)
}

type result = {
  waveforms : waveform array;  (** per net *)
  settle_time : int;  (** time of the last change anywhere *)
}

type injection = {
  path : Pdf_paths.Path.t;
  extra : int;  (** additional delay added to every gate along the path *)
}

val simulate :
  ?inject:injection ->
  Pdf_circuit.Circuit.t ->
  Pdf_paths.Delay_model.t ->
  Test_pair.t ->
  result
(** Settle the first pattern, launch the second at time 0, run to
    quiescence.  Inputs are fully specified, so every waveform is
    definite. *)

val value_at : waveform -> int -> bool
(** Sampled value at a time (changes at exactly [t] are visible). *)

val final_value : waveform -> bool

val detects :
  Pdf_circuit.Circuit.t ->
  Pdf_paths.Delay_model.t ->
  t_sample:int ->
  inject:injection ->
  Test_pair.t ->
  bool
(** Physical detection check: simulate fault-free and faulty circuits;
    [true] iff some primary output's sampled value under the fault
    differs from the fault-free settled response. *)

val nominal_period : Pdf_circuit.Circuit.t -> Pdf_paths.Delay_model.t -> int
(** The fault-free critical delay: the longest complete-path length under
    the model (the natural clock period for {!detects}). *)
