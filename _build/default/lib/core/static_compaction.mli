(** Static (post-generation) test-set compaction.

    Both passes preserve the exact set of detected faults; they only drop
    tests whose detections are covered by the rest of the set.  The paper
    relies on dynamic compaction alone — these are classic complements
    used as an ablation (bench section E3). *)

val reverse_order :
  Pdf_circuit.Circuit.t ->
  Fault_sim.prepared array ->
  Test_pair.t list ->
  Test_pair.t list
(** The classic reverse-order pass: walk the tests from last to first and
    keep a test only if it detects some fault no already-kept test
    detects.  Later tests of a dynamically compacted set tend to be the
    specialised ones, so scanning in reverse drops the early, now
    redundant tests.  Order of the survivors follows the original set. *)

val greedy_cover :
  Pdf_circuit.Circuit.t ->
  Fault_sim.prepared array ->
  Test_pair.t list ->
  Test_pair.t list
(** Greedy set-cover minimisation: repeatedly keep the test detecting the
    most still-uncovered faults.  Usually stronger than {!reverse_order},
    at the cost of computing the full detection matrix up front. *)

val coverage_preserved :
  Pdf_circuit.Circuit.t ->
  Fault_sim.prepared array ->
  original:Test_pair.t list ->
  compacted:Test_pair.t list ->
  bool
(** Check (by fault simulation) that the compacted set detects exactly
    the faults the original set detects — used by tests and benches. *)
