(** Reading and writing two-pattern test sets.

    The format is one test per line, the two patterns separated by a
    slash, MSB-to-LSB in primary-input declaration order — e.g.
    ["0110100/1010110"].  Blank lines and [#] comments are ignored. *)

type parse_error = { line : int; message : string }

val error_to_string : parse_error -> string

val to_string : Test_pair.t list -> string

val of_string :
  num_pis:int -> string -> (Test_pair.t list, parse_error) result

val write_file : Test_pair.t list -> string -> unit

val read_file :
  num_pis:int -> string -> (Test_pair.t list, parse_error) result
