type t = Uncompacted | Arbitrary | Length_based | Value_based

let name = function
  | Uncompacted -> "uncomp"
  | Arbitrary -> "arbit"
  | Length_based -> "length"
  | Value_based -> "values"

let of_name s =
  match String.lowercase_ascii s with
  | "uncomp" | "uncompacted" -> Some Uncompacted
  | "arbit" | "arbitrary" -> Some Arbitrary
  | "length" | "length-based" -> Some Length_based
  | "values" | "value-based" -> Some Value_based
  | _ -> None

let all = [ Uncompacted; Arbitrary; Length_based; Value_based ]
