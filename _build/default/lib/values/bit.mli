(** Three-valued logic bit: [Zero], [One], or unknown [X].

    This is the value domain of every simulation component in the library.
    [X] reads as "unknown / possibly either" — in the middle component of a
    two-pattern simulation it additionally reads as "may glitch". *)

type t = Zero | One | X

val of_bool : bool -> t

val to_bool : t -> bool option
(** [Some b] for a definite value, [None] for [X]. *)

val equal : t -> t -> bool

val is_definite : t -> bool

val not_ : t -> t

val and_ : t -> t -> t
(** Kleene conjunction: [Zero] dominates, [X] otherwise unless both [One]. *)

val or_ : t -> t -> t

val xor : t -> t -> t

val char : t -> char
(** ['0'], ['1'] or ['x']. *)

val of_char : char -> t option
(** Inverse of {!char}; accepts ['X'] too. *)

val pp : Format.formatter -> t -> unit
