type t = { v1 : Bit.t; v2 : Bit.t; v3 : Bit.t }

let make v1 v2 v3 = { v1; v2; v3 }

let stable b =
  let v = Bit.of_bool b in
  { v1 = v; v2 = v; v3 = v }

let rising = { v1 = Bit.Zero; v2 = Bit.X; v3 = Bit.One }

let falling = { v1 = Bit.One; v2 = Bit.X; v3 = Bit.Zero }

let unknown = { v1 = Bit.X; v2 = Bit.X; v3 = Bit.X }

let equal a b =
  Bit.equal a.v1 b.v1 && Bit.equal a.v2 b.v2 && Bit.equal a.v3 b.v3

let is_stable t =
  Bit.is_definite t.v1 && Bit.equal t.v1 t.v2 && Bit.equal t.v2 t.v3

let has_transition t =
  match Bit.to_bool t.v1, Bit.to_bool t.v3 with
  | Some a, Some b -> a <> b
  | (Some _ | None), _ -> false

let of_string s =
  if String.length s <> 3 then None
  else
    match Bit.of_char s.[0], Bit.of_char s.[1], Bit.of_char s.[2] with
    | Some v1, Some v2, Some v3 -> Some { v1; v2; v3 }
    | _, _, _ -> None

let to_string t =
  let b = Bytes.create 3 in
  Bytes.set b 0 (Bit.char t.v1);
  Bytes.set b 1 (Bit.char t.v2);
  Bytes.set b 2 (Bit.char t.v3);
  Bytes.to_string b

let pp ppf t = Format.pp_print_string ppf (to_string t)
