(** Requirement placed on a circuit line by a set of target faults.

    The set [A(p)] of the paper is a collection of (line, requirement)
    pairs.  Each requirement constrains the three components of the line's
    value triple independently: a component is either unconstrained ([Any])
    or pinned to a Boolean ([Must]).

    The paper writes requirements in the same [a1 a2 a3] notation as
    simulated values, with [x] meaning "unconstrained":
    - stable 0 is [000] (hazard-free zero — middle component pinned);
    - a final-value constraint is [xx0] / [xx1];
    - the source transition of a slow-to-rise fault is [0x1]. *)

type component = Any | Must of bool

type t = { r1 : component; r2 : component; r3 : component }

val any : t
(** No constraint at all. *)

val stable : bool -> t
(** Hazard-free constant: [000] or [111]. *)

val final : bool -> t
(** Constrains only the second pattern: [xx0] or [xx1]. *)

val initial : bool -> t
(** Constrains only the first pattern: [0xx] or [1xx]. *)

val rising : t
(** [0x1] — slow-to-rise source transition. *)

val falling : t
(** [1x0]. *)

val equal : t -> t -> bool

val is_any : t -> bool

val merge : t -> t -> t option
(** Componentwise intersection; [None] if some component is pinned to both
    [0] and [1] — a direct conflict. *)

val satisfied_by : Triple.t -> t -> bool
(** A simulated triple satisfies a requirement iff every [Must b] component
    has the definite simulated value [b].  An [X] simulated value does not
    satisfy a pinned component (it could glitch / differ). *)

val compatible_bit : Bit.t -> component -> bool
(** [false] only when the simulated bit is definite and contradicts a
    pinned component — used for early conflict detection during search. *)

val count_pinned : t -> int
(** Number of [Must] components — the value-count used by the value-based
    secondary-target heuristic (size of [Delta]). *)

val of_string : string -> t option
(** Parse ["0x1"]-style notation, [x] meaning [Any]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
