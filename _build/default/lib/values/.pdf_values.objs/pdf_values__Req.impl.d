lib/values/req.ml: Bit Bytes Format String Triple
