lib/values/triple.ml: Bit Bytes Format String
