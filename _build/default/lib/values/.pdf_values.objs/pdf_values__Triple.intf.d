lib/values/triple.mli: Bit Format
