lib/values/bit.mli: Format
