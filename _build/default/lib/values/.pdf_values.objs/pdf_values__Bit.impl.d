lib/values/bit.ml: Format
