lib/values/req.mli: Bit Format Triple
