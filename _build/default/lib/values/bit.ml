type t = Zero | One | X

let of_bool b = if b then One else Zero

let to_bool = function Zero -> Some false | One -> Some true | X -> None

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let is_definite = function Zero | One -> true | X -> false

let not_ = function Zero -> One | One -> Zero | X -> X

let and_ a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | X), (One | X) -> X

let or_ a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | X), (Zero | X) -> X

let xor a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One

let char = function Zero -> '0' | One -> '1' | X -> 'x'

let of_char = function
  | '0' -> Some Zero
  | '1' -> Some One
  | 'x' | 'X' -> Some X
  | _ -> None

let pp ppf t = Format.pp_print_char ppf (char t)
