(** Simulated value of a circuit line under a two-pattern test.

    Following the paper's notation, a line carries a triple
    [a1 a2 a3] where [a1] is the value under the first pattern, [a3] the
    value under the second pattern, and [a2] the intermediate value.  A
    stable value has [a1 = a2 = a3]; a rising transition is [0x1]; a falling
    transition is [1x0].  An [X] in the middle component means the line may
    glitch between the two patterns. *)

type t = { v1 : Bit.t; v2 : Bit.t; v3 : Bit.t }

val make : Bit.t -> Bit.t -> Bit.t -> t

val stable : bool -> t
(** [000] or [111]. *)

val rising : t
(** [0x1]. *)

val falling : t
(** [1x0]. *)

val unknown : t
(** [xxx]. *)

val equal : t -> t -> bool

val is_stable : t -> bool
(** Definite and hazard-free: all three components equal and definite. *)

val has_transition : t -> bool
(** Definite initial and final values that differ. *)

val of_string : string -> t option
(** Parse a three-character string such as ["0x1"]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
