type component = Any | Must of bool

type t = { r1 : component; r2 : component; r3 : component }

let any = { r1 = Any; r2 = Any; r3 = Any }

let stable b = { r1 = Must b; r2 = Must b; r3 = Must b }

let final b = { r1 = Any; r2 = Any; r3 = Must b }

let initial b = { r1 = Must b; r2 = Any; r3 = Any }

let rising = { r1 = Must false; r2 = Any; r3 = Must true }

let falling = { r1 = Must true; r2 = Any; r3 = Must false }

let component_equal a b =
  match a, b with
  | Any, Any -> true
  | Must x, Must y -> x = y
  | (Any | Must _), _ -> false

let equal a b =
  component_equal a.r1 b.r1 && component_equal a.r2 b.r2
  && component_equal a.r3 b.r3

let is_any t = equal t any

let merge_component a b =
  match a, b with
  | Any, c | c, Any -> Some c
  | Must x, Must y -> if x = y then Some (Must x) else None

let merge a b =
  match
    merge_component a.r1 b.r1, merge_component a.r2 b.r2,
    merge_component a.r3 b.r3
  with
  | Some r1, Some r2, Some r3 -> Some { r1; r2; r3 }
  | _, _, _ -> None

let component_satisfied bit c =
  match c with
  | Any -> true
  | Must b -> Bit.equal bit (Bit.of_bool b)

let satisfied_by (triple : Triple.t) t =
  component_satisfied triple.Triple.v1 t.r1
  && component_satisfied triple.Triple.v2 t.r2
  && component_satisfied triple.Triple.v3 t.r3

let compatible_bit bit c =
  match c, bit with
  | Any, _ -> true
  | Must _, Bit.X -> true
  | Must b, (Bit.Zero | Bit.One) -> Bit.equal bit (Bit.of_bool b)

let count_pinned t =
  let one = function Any -> 0 | Must _ -> 1 in
  one t.r1 + one t.r2 + one t.r3

let component_of_char = function
  | '0' -> Some (Must false)
  | '1' -> Some (Must true)
  | 'x' | 'X' -> Some Any
  | _ -> None

let of_string s =
  if String.length s <> 3 then None
  else
    match
      component_of_char s.[0], component_of_char s.[1],
      component_of_char s.[2]
    with
    | Some r1, Some r2, Some r3 -> Some { r1; r2; r3 }
    | _, _, _ -> None

let component_char = function
  | Any -> 'x'
  | Must false -> '0'
  | Must true -> '1'

let to_string t =
  let b = Bytes.create 3 in
  Bytes.set b 0 (component_char t.r1);
  Bytes.set b 1 (component_char t.r2);
  Bytes.set b 2 (component_char t.r3);
  Bytes.to_string b

let pp ppf t = Format.pp_print_string ppf (to_string t)
