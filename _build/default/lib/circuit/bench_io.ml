type parse_error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

exception Err of parse_error

let fail line fmt = Printf.ksprintf (fun message -> raise (Err { line; message })) fmt

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

(* Recognize "HEAD(arg1, arg2, ...)" and return (HEAD, args). *)
let parse_call lineno s =
  match String.index_opt s '(' with
  | None -> fail lineno "expected '(' in %s" s
  | Some open_paren ->
    if s.[String.length s - 1] <> ')' then fail lineno "missing ')' in %s" s;
    let head = strip (String.sub s 0 open_paren) in
    let args_str =
      String.sub s (open_paren + 1) (String.length s - open_paren - 2)
    in
    let args =
      if strip args_str = "" then []
      else List.map strip (String.split_on_char ',' args_str)
    in
    (head, args)

let parse_string ~name text =
  try
    let builder = Builder.create name in
    let dff_count = ref 0 in
    let lines = String.split_on_char '\n' text in
    List.iteri
      (fun idx raw ->
        let lineno = idx + 1 in
        let line =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        let line = strip line in
        if line <> "" then
          match String.index_opt line '=' with
          | None -> (
            let head, args = parse_call lineno line in
            match String.uppercase_ascii head, args with
            | "INPUT", [ n ] -> Builder.add_pi builder n
            | "OUTPUT", [ n ] -> Builder.add_po builder n
            | ("INPUT" | "OUTPUT"), _ ->
              fail lineno "INPUT/OUTPUT take exactly one net"
            | _, _ -> fail lineno "unknown directive %s" head)
          | Some eq ->
            let out = strip (String.sub line 0 eq) in
            let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
            let head, args = parse_call lineno rhs in
            if String.uppercase_ascii head = "DFF" then (
              match args with
              | [ data ] ->
                incr dff_count;
                (* Combinational extraction: the DFF's output is driven by
                   the environment (pseudo-PI) and its data input must be
                   observable (pseudo-PO). *)
                Builder.add_pi builder out;
                Builder.add_po builder data
              | _ -> fail lineno "DFF takes exactly one input")
            else
              match Gate.kind_of_name head with
              | None -> fail lineno "unknown gate kind %s" head
              | Some kind -> Builder.add_gate builder ~out kind args)
      lines;
    match Builder.finish builder with
    | Ok c -> Ok c
    | Error e -> Error { line = 0; message = Builder.error_to_string e }
  with Err e -> Error e

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse_string ~name text

let to_string (c : Circuit.t) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "# %s\n" c.name;
  for pi = 0 to c.num_pis - 1 do
    Printf.bprintf buf "INPUT(%s)\n" c.net_names.(pi)
  done;
  Array.iter (fun po -> Printf.bprintf buf "OUTPUT(%s)\n" c.net_names.(po)) c.pos;
  Array.iteri
    (fun i (g : Circuit.gate) ->
      let out = Circuit.net_of_gate c i in
      let fanins =
        Array.to_list g.fanins |> List.map (fun f -> c.net_names.(f))
      in
      Printf.bprintf buf "%s = %s(%s)\n" c.net_names.(out)
        (Gate.kind_name g.kind)
        (String.concat ", " fanins))
    c.gates;
  Buffer.contents buf
