lib/circuit/circuit.ml: Array Gate Hashtbl List Printf
