lib/circuit/builder.mli: Circuit Gate
