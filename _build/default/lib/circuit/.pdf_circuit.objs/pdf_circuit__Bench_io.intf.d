lib/circuit/bench_io.mli: Circuit
