lib/circuit/circuit.mli: Gate Hashtbl
