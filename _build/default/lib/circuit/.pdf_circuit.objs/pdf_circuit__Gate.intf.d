lib/circuit/gate.mli: Format Pdf_values
