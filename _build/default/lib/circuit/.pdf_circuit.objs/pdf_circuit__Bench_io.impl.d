lib/circuit/bench_io.ml: Array Buffer Builder Circuit Filename Gate List Printf String
