lib/circuit/gate.ml: Array Format Pdf_values String
