lib/circuit/builder.ml: Array Circuit Gate Hashtbl List Printf String
