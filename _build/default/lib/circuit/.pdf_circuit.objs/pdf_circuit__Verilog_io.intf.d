lib/circuit/verilog_io.mli: Circuit
