lib/circuit/stats.mli: Circuit Format Gate
