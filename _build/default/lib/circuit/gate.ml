module Bit = Pdf_values.Bit

type kind = And | Nand | Or | Nor | Not | Buff | Xor | Xnor

let kind_name = function
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Not -> "NOT"
  | Buff -> "BUFF"
  | Xor -> "XOR"
  | Xnor -> "XNOR"

let kind_of_name s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "NOT" | "INV" -> Some Not
  | "BUFF" | "BUF" -> Some Buff
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | _ -> None

let controlling = function
  | And | Nand -> Some false
  | Or | Nor -> Some true
  | Not | Buff | Xor | Xnor -> None

let inverting = function
  | Nand | Nor | Not | Xnor -> true
  | And | Or | Buff | Xor -> false

let min_arity = function
  | Not | Buff -> 1
  | And | Nand | Or | Nor | Xor | Xnor -> 2

let max_arity = function
  | Not | Buff -> Some 1
  | And | Nand | Or | Nor | Xor | Xnor -> None

let check_arity kind n =
  if n < min_arity kind then
    invalid_arg ("Gate.eval: too few inputs for " ^ kind_name kind);
  match max_arity kind with
  | Some m when n > m ->
    invalid_arg ("Gate.eval: too many inputs for " ^ kind_name kind)
  | Some _ | None -> ()

let fold_inputs f init (inputs : Bit.t array) =
  let acc = ref init in
  for i = 0 to Array.length inputs - 1 do
    acc := f !acc inputs.(i)
  done;
  !acc

let eval kind inputs =
  check_arity kind (Array.length inputs);
  match kind with
  | Buff -> inputs.(0)
  | Not -> Bit.not_ inputs.(0)
  | And -> fold_inputs Bit.and_ Bit.One inputs
  | Nand -> Bit.not_ (fold_inputs Bit.and_ Bit.One inputs)
  | Or -> fold_inputs Bit.or_ Bit.Zero inputs
  | Nor -> Bit.not_ (fold_inputs Bit.or_ Bit.Zero inputs)
  | Xor -> fold_inputs Bit.xor Bit.Zero inputs
  | Xnor -> Bit.not_ (fold_inputs Bit.xor Bit.Zero inputs)

let eval2 kind a b =
  match kind with
  | And -> Bit.and_ a b
  | Nand -> Bit.not_ (Bit.and_ a b)
  | Or -> Bit.or_ a b
  | Nor -> Bit.not_ (Bit.or_ a b)
  | Xor -> Bit.xor a b
  | Xnor -> Bit.not_ (Bit.xor a b)
  | Not | Buff -> invalid_arg "Gate.eval2: unary kind"

let all_kinds = [ And; Nand; Or; Nor; Not; Buff; Xor; Xnor ]

let pp ppf kind = Format.pp_print_string ppf (kind_name kind)
