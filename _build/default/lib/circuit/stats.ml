type t = {
  num_pis : int;
  num_pos : int;
  num_gates : int;
  num_nets : int;
  depth : int;
  max_fanout : int;
  num_fanout_stems : int;
  gate_histogram : (Gate.kind * int) list;
}

let compute (c : Circuit.t) =
  let max_fanout = ref 0 and stems = ref 0 in
  Array.iter
    (fun fo ->
      let n = Array.length fo in
      if n > !max_fanout then max_fanout := n;
      if n > 1 then incr stems)
    c.fanouts;
  let histogram =
    List.filter_map
      (fun kind ->
        let n =
          Array.fold_left
            (fun acc (g : Circuit.gate) -> if g.kind = kind then acc + 1 else acc)
            0 c.gates
        in
        if n = 0 then None else Some (kind, n))
      Gate.all_kinds
  in
  {
    num_pis = c.num_pis;
    num_pos = Circuit.num_pos c;
    num_gates = Circuit.num_gates c;
    num_nets = Circuit.num_nets c;
    depth = Circuit.depth c;
    max_fanout = !max_fanout;
    num_fanout_stems = !stems;
    gate_histogram = histogram;
  }

let to_string t =
  let hist =
    t.gate_histogram
    |> List.map (fun (kind, n) -> Printf.sprintf "%s:%d" (Gate.kind_name kind) n)
    |> String.concat " "
  in
  Printf.sprintf
    "PIs=%d POs=%d gates=%d nets=%d depth=%d max_fanout=%d fanout_stems=%d [%s]"
    t.num_pis t.num_pos t.num_gates t.num_nets t.depth t.max_fanout
    t.num_fanout_stems hist

let pp ppf t = Format.pp_print_string ppf (to_string t)
