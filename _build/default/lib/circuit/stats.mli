(** Structural statistics of a circuit. *)

type t = {
  num_pis : int;
  num_pos : int;
  num_gates : int;
  num_nets : int;
  depth : int;  (** maximum logic level *)
  max_fanout : int;
  num_fanout_stems : int;  (** nets with fanout > 1 *)
  gate_histogram : (Gate.kind * int) list;
}

val compute : Circuit.t -> t

val to_string : t -> string

val pp : Format.formatter -> t -> unit
