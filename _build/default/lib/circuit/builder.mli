(** Circuit construction with validation.

    Definitions may arrive in any order (as in a [.bench] file); [finish]
    topologically sorts the gates and reports structural errors. *)

type t

type error =
  | Undriven_net of string  (** used but never defined as PI or gate output *)
  | Duplicate_driver of string
  | Combinational_cycle of string list  (** one cycle, as net names *)
  | Bad_arity of string * Gate.kind * int
  | No_outputs
  | Unknown_output of string

val error_to_string : error -> string

val create : string -> t
(** [create name] starts an empty builder. *)

val add_pi : t -> string -> unit

val add_po : t -> string -> unit
(** Declare a net as primary output; the net may be defined later. *)

val add_gate : t -> out:string -> Gate.kind -> string list -> unit
(** [add_gate t ~out kind fanins]. *)

val finish : t -> (Circuit.t, error) result

val finish_exn : t -> Circuit.t
(** Raises [Failure] with {!error_to_string} on error. *)
