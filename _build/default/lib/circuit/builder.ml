type pending_gate = { out_name : string; kind : Gate.kind; fanin_names : string list }

type t = {
  name : string;
  mutable pis : string list; (* reversed *)
  mutable pos : string list; (* reversed *)
  mutable pending : pending_gate list; (* reversed *)
}

type error =
  | Undriven_net of string
  | Duplicate_driver of string
  | Combinational_cycle of string list
  | Bad_arity of string * Gate.kind * int
  | No_outputs
  | Unknown_output of string

let error_to_string = function
  | Undriven_net n -> "net used but never driven: " ^ n
  | Duplicate_driver n -> "net driven more than once: " ^ n
  | Combinational_cycle ns ->
    "combinational cycle through: " ^ String.concat " -> " ns
  | Bad_arity (out, kind, n) ->
    Printf.sprintf "gate %s: %s cannot take %d input(s)" out
      (Gate.kind_name kind) n
  | No_outputs -> "circuit has no primary outputs"
  | Unknown_output n -> "declared output is not a net: " ^ n

let create name = { name; pis = []; pos = []; pending = [] }

let add_pi t name = t.pis <- name :: t.pis

let add_po t name = t.pos <- name :: t.pos

let add_gate t ~out kind fanins =
  t.pending <- { out_name = out; kind; fanin_names = fanins } :: t.pending

exception Err of error

let check_arity g =
  let n = List.length g.fanin_names in
  let bad =
    n < Gate.min_arity g.kind
    || match Gate.max_arity g.kind with Some m -> n > m | None -> false
  in
  if bad then raise (Err (Bad_arity (g.out_name, g.kind, n)))

(* Depth-first topological sort over gate definitions, detecting cycles and
   undriven nets.  [state]: 0 unvisited, 1 on stack, 2 done. *)
let finish t =
  try
    let pis = List.rev t.pis in
    let pos = List.rev t.pos in
    let pending = List.rev t.pending in
    if pos = [] then raise (Err No_outputs);
    List.iter check_arity pending;
    let gate_by_out = Hashtbl.create 64 in
    let pi_set = Hashtbl.create 16 in
    List.iter (fun p -> Hashtbl.replace pi_set p ()) pis;
    List.iter
      (fun g ->
        if Hashtbl.mem gate_by_out g.out_name || Hashtbl.mem pi_set g.out_name
        then raise (Err (Duplicate_driver g.out_name));
        Hashtbl.replace gate_by_out g.out_name g)
      pending;
    let state = Hashtbl.create 64 in
    let order = ref [] in
    let rec visit stack name =
      if Hashtbl.mem pi_set name then ()
      else
        match Hashtbl.find_opt gate_by_out name with
        | None -> raise (Err (Undriven_net name))
        | Some g -> (
          match Hashtbl.find_opt state name with
          | Some 2 -> ()
          | Some _ ->
            let cycle =
              let rec take acc = function
                | [] -> List.rev acc
                | n :: _ when n = name -> List.rev (n :: acc)
                | n :: rest -> take (n :: acc) rest
              in
              take [] (name :: stack)
            in
            raise (Err (Combinational_cycle cycle))
          | None ->
            Hashtbl.replace state name 1;
            List.iter (visit (name :: stack)) g.fanin_names;
            Hashtbl.replace state name 2;
            order := g :: !order)
    in
    (* Visit from POs first so output cones come early, then sweep the rest
       so gates feeding nothing are still included. *)
    List.iter
      (fun po ->
        if not (Hashtbl.mem pi_set po || Hashtbl.mem gate_by_out po) then
          raise (Err (Unknown_output po));
        visit [] po)
      pos;
    List.iter (fun g -> visit [] g.out_name) pending;
    let gates_sorted = List.rev !order in
    let num_pis = List.length pis in
    let net_index = Hashtbl.create 64 in
    List.iteri (fun i p -> Hashtbl.replace net_index p i) pis;
    List.iteri
      (fun i g -> Hashtbl.replace net_index g.out_name (num_pis + i))
      gates_sorted;
    let gates =
      Array.of_list
        (List.map
           (fun g ->
             let fanins =
               Array.of_list
                 (List.map (fun n -> Hashtbl.find net_index n) g.fanin_names)
             in
             { Circuit.kind = g.kind; fanins })
           gates_sorted)
    in
    let net_names =
      Array.of_list (pis @ List.map (fun g -> g.out_name) gates_sorted)
    in
    let pos_arr =
      Array.of_list (List.map (fun p -> Hashtbl.find net_index p) pos)
    in
    Ok
      (Circuit.unsafe_make ~name:t.name ~num_pis ~gates ~pos:pos_arr
         ~net_names)
  with Err e -> Error e

let finish_exn t =
  match finish t with
  | Ok c -> c
  | Error e -> failwith ("Builder.finish: " ^ error_to_string e)
