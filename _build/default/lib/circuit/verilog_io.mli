(** Reader/writer for a structural Verilog subset.

    The accepted subset is what gate-level ATPG netlists use: one module
    with [input]/[output]/[wire] declarations and primitive gate
    instantiations —

    {v
    module top (a, b, y);
      input a, b;
      output y;
      wire n1;
      nand g1 (n1, a, b);
      not  g2 (y, n1);
    endmodule
    v}

    Primitive connection order is output first, then inputs (standard
    Verilog).  [buf] maps to BUFF.  Unsupported constructs (assign,
    always, vectors, parameters) are reported as parse errors. *)

type parse_error = { line : int; message : string }

val error_to_string : parse_error -> string

val parse_string : name:string -> string -> (Circuit.t, parse_error) result
(** [name] is used only if the module header cannot supply one. *)

val parse_file : string -> (Circuit.t, parse_error) result

val to_string : Circuit.t -> string
(** Emit the circuit as a structural Verilog module. *)
