(** Reader/writer for the ISCAS [.bench] netlist format.

    Sequential circuits are handled the way delay-fault ATPG tools handle
    them: the combinational logic is extracted by turning every DFF output
    into a pseudo primary input and every DFF data input into a pseudo
    primary output (full-scan assumption, as in the paper which considers
    "the combinational logic of ISCAS-89 benchmark circuits"). *)

type parse_error = { line : int; message : string }

val parse_string : name:string -> string -> (Circuit.t, parse_error) result
(** Parse [.bench] text: [INPUT(n)], [OUTPUT(n)], [n = KIND(a, b, ...)],
    [#] comments.  [KIND = DFF] triggers the combinational extraction. *)

val parse_file : string -> (Circuit.t, parse_error) result
(** [parse_file path]; the circuit name is the file's basename without
    extension. *)

val to_string : Circuit.t -> string
(** Emit a (purely combinational) [.bench] description. *)

val error_to_string : parse_error -> string
