(** Gate kinds and their logic/structural properties.

    The vocabulary is the ISCAS-89 [.bench] gate set (AND, NAND, OR, NOR,
    NOT, BUFF) extended with XOR/XNOR. *)

type kind = And | Nand | Or | Nor | Not | Buff | Xor | Xnor

val kind_name : kind -> string
(** Upper-case [.bench] mnemonic, e.g. ["NAND"]. *)

val kind_of_name : string -> kind option
(** Case-insensitive parse of the mnemonic ("BUF" also accepted). *)

val controlling : kind -> bool option
(** The controlling input value: [Some false] for AND/NAND, [Some true] for
    OR/NOR, [None] for the other kinds (no single controlling value). *)

val inverting : kind -> bool
(** Whether a transition on one input (with all side inputs at
    non-controlling values, or at stable 0 for XOR/XNOR) appears inverted
    at the output: true for NAND/NOR/NOT/XNOR. *)

val min_arity : kind -> int

val max_arity : kind -> int option
(** [None] means unbounded. *)

val eval : kind -> Pdf_values.Bit.t array -> Pdf_values.Bit.t
(** Three-valued evaluation.  Raises [Invalid_argument] on an arity
    violation. *)

val eval2 : kind -> Pdf_values.Bit.t -> Pdf_values.Bit.t -> Pdf_values.Bit.t
(** Two-input special case (allocation free). *)

val all_kinds : kind list

val pp : Format.formatter -> kind -> unit
