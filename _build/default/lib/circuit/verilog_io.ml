type parse_error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

exception Err of parse_error

let fail line fmt = Printf.ksprintf (fun message -> raise (Err { line; message })) fmt

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Semi

(* Tokenize, stripping // and /* */ comments, tracking line numbers. *)
let tokenize text =
  let tokens = ref [] in
  let n = String.length text in
  let line = ref 1 in
  let i = ref 0 in
  let is_ident_char ch =
    (ch >= 'a' && ch <= 'z')
    || (ch >= 'A' && ch <= 'Z')
    || (ch >= '0' && ch <= '9')
    || ch = '_' || ch = '$'
  in
  while !i < n do
    let ch = text.[!i] in
    if ch = '\n' then begin
      incr line;
      incr i
    end
    else if ch = ' ' || ch = '\t' || ch = '\r' then incr i
    else if ch = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if ch = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if text.[!i] = '\n' then incr line;
        if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail !line "unterminated comment"
    end
    else if ch = '(' then (tokens := (Lparen, !line) :: !tokens; incr i)
    else if ch = ')' then (tokens := (Rparen, !line) :: !tokens; incr i)
    else if ch = ',' then (tokens := (Comma, !line) :: !tokens; incr i)
    else if ch = ';' then (tokens := (Semi, !line) :: !tokens; incr i)
    else if is_ident_char ch then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      tokens := (Ident (String.sub text start (!i - start)), !line) :: !tokens
    end
    else fail !line "unexpected character %C" ch
  done;
  List.rev !tokens

(* Split the token stream into ';'-terminated statements; [endmodule]
   stands alone without a semicolon. *)
let statements tokens =
  let rec go current acc = function
    | [] ->
      if current = [] then List.rev acc
      else
        let line = match current with (_, l) :: _ -> l | [] -> 0 in
        fail line "missing ';' at end of input"
    | (Semi, _) :: rest -> go [] (List.rev current :: acc) rest
    | ((Ident "endmodule", line) as tok) :: rest ->
      if current <> [] then fail line "missing ';' before endmodule";
      go [] ([ tok ] :: acc) rest
    | tok :: rest -> go (tok :: current) acc rest
  in
  go [] [] tokens

let idents_of line toks =
  List.map
    (fun (tok, l) ->
      match tok with
      | Ident s -> s
      | Lparen | Rparen | Comma -> fail l "expected identifier"
      | Semi -> fail line "unexpected ';'")
    (List.filter (fun (tok, _) -> tok <> Comma) toks)

(* Parse "( a , b , c )" returning the names. *)
let parse_port_list line toks =
  match toks with
  | (Lparen, _) :: rest -> (
    let rec take acc = function
      | [ (Rparen, _) ] -> List.rev acc
      | (Ident s, _) :: rest -> take (s :: acc) rest
      | (Comma, _) :: rest -> take acc rest
      | _ -> fail line "malformed connection list"
    in
    match rest with [] -> fail line "empty connection list" | _ -> take [] rest)
  | _ -> fail line "expected '('"

let parse_string ~name text =
  try
    let stmts = statements (tokenize text) in
    let builder_name = ref name in
    let b = ref None in
    let get_builder line =
      match !b with
      | Some builder -> builder
      | None -> fail line "statement outside module"
    in
    List.iter
      (fun stmt ->
        match stmt with
        | [] -> ()
        | (Ident "module", line) :: rest -> (
          if !b <> None then fail line "nested module";
          match rest with
          | (Ident mod_name, _) :: _ ->
            builder_name := mod_name;
            b := Some (Builder.create mod_name)
          | _ -> fail line "expected module name")
        | [ (Ident "endmodule", _) ] -> ()
        | (Ident "input", line) :: rest ->
          List.iter (Builder.add_pi (get_builder line)) (idents_of line rest)
        | (Ident "output", line) :: rest ->
          List.iter (Builder.add_po (get_builder line)) (idents_of line rest)
        | (Ident "wire", _) :: _ -> ()
        | (Ident prim, line) :: rest -> (
          let kind =
            match String.lowercase_ascii prim with
            | "and" -> Gate.And
            | "nand" -> Gate.Nand
            | "or" -> Gate.Or
            | "nor" -> Gate.Nor
            | "not" -> Gate.Not
            | "buf" -> Gate.Buff
            | "xor" -> Gate.Xor
            | "xnor" -> Gate.Xnor
            | other -> fail line "unsupported construct %S" other
          in
          (* Optional instance name before the connection list. *)
          let conn_tokens =
            match rest with
            | (Ident _, _) :: ((Lparen, _) :: _ as conn) -> conn
            | (Lparen, _) :: _ -> rest
            | _ -> fail line "expected connection list"
          in
          match parse_port_list line conn_tokens with
          | out :: (_ :: _ as inputs) ->
            Builder.add_gate (get_builder line) ~out kind inputs
          | _ -> fail line "primitive needs an output and at least one input")
        | (tok, line) :: _ ->
          ignore tok;
          fail line "unexpected statement")
      stmts;
    match !b with
    | None -> Error { line = 1; message = "no module found" }
    | Some builder -> (
      match Builder.finish builder with
      | Ok c -> Ok c
      | Error e -> Error { line = 0; message = Builder.error_to_string e })
  with Err e -> Error e

let parse_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  parse_string ~name text

let prim_name = function
  | Gate.And -> "and"
  | Gate.Nand -> "nand"
  | Gate.Or -> "or"
  | Gate.Nor -> "nor"
  | Gate.Not -> "not"
  | Gate.Buff -> "buf"
  | Gate.Xor -> "xor"
  | Gate.Xnor -> "xnor"

let to_string (c : Circuit.t) =
  let buf = Buffer.create 1024 in
  let pis = List.init c.num_pis (fun i -> c.net_names.(i)) in
  let pos = Array.to_list (Array.map (fun po -> c.net_names.(po)) c.pos) in
  (* A PI that is also a PO needs a buffer to a distinct output port. *)
  let aliased =
    List.filter (fun po -> List.mem po pis) pos
  in
  let out_port po = if List.mem po aliased then po ^ "_out" else po in
  Printf.bprintf buf "module %s (%s);\n" c.name
    (String.concat ", " (pis @ List.map out_port pos));
  Printf.bprintf buf "  input %s;\n" (String.concat ", " pis);
  Printf.bprintf buf "  output %s;\n"
    (String.concat ", " (List.map out_port pos));
  let wires =
    Array.to_list c.gates
    |> List.mapi (fun i (_ : Circuit.gate) -> Circuit.net_of_gate c i)
    |> List.filter (fun net -> not c.is_po.(net))
    |> List.map (fun net -> c.net_names.(net))
  in
  if wires <> [] then
    Printf.bprintf buf "  wire %s;\n" (String.concat ", " wires);
  Array.iteri
    (fun i (g : Circuit.gate) ->
      let out = Circuit.net_of_gate c i in
      let conns =
        c.net_names.(out)
        :: (Array.to_list g.fanins |> List.map (fun f -> c.net_names.(f)))
      in
      Printf.bprintf buf "  %s g%d (%s);\n" (prim_name g.kind) i
        (String.concat ", " conns))
    c.gates;
  List.iter
    (fun po -> Printf.bprintf buf "  buf b_%s (%s, %s);\n" po (out_port po) po)
    aliased;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf
