module Table = Pdf_util.Table
module Delay_model = Pdf_paths.Delay_model
module Robust = Pdf_faults.Robust
module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Atpg = Pdf_core.Atpg
module Static = Pdf_core.Static_compaction
module Profiles = Pdf_synth.Profiles

let estimation_error ?(seed = Workload.default_seed) scale ~noises profiles =
  let table =
    Table.create
      ~title:
        "E1: coverage of the TRUE critical faults under delay-estimation \
         error"
      (("circuit", Table.Left) :: Estimation_error.table_header)
  in
  List.iter
    (fun profile ->
      List.iter
        (fun noise_pct ->
          let r = Estimation_error.run ~seed ~noise_pct scale profile in
          Table.add_row table
            (profile.Profiles.name :: Estimation_error.to_row r))
        noises)
    profiles;
  Table.render table

(* Contiguous id ranges of the slices of P (P is sorted by decreasing
   length and the slices are length-prefixes). *)
let slice_ids slices =
  let _, ranges =
    List.fold_left
      (fun (offset, acc) slice ->
        let len = List.length slice in
        (offset + len, List.init len (fun i -> offset + i) :: acc))
      (0, []) slices
  in
  List.rev ranges

let multiset ?(seed = Workload.default_seed) (scale : Workload.scale) profiles
    =
  let table =
    Table.create
      ~title:"E2: two vs three sets of target faults (value-based enrichment)"
      [
        ("circuit", Table.Left); ("sets", Table.Right); ("|P0|", Table.Right);
        ("P0 det", Table.Right); ("P det", Table.Right);
        ("P total", Table.Right); ("tests", Table.Right);
      ]
  in
  List.iter
    (fun profile ->
      let c = Profiles.circuit profile in
      let model = Delay_model.lines c in
      let ts =
        Target_sets.build c model ~n_p:scale.Workload.n_p
          ~n_p0:scale.Workload.n_p0
      in
      let faults = Fault_sim.prepare c ts.Target_sets.p in
      let n = Array.length faults in
      let n0 = List.length ts.Target_sets.p0 in
      let two_pools =
        [ List.init n0 (fun i -> i);
          List.init (n - n0) (fun i -> n0 + i) ]
      in
      let three_pools =
        slice_ids
          (Target_sets.split_multi ts
             ~thresholds:
               [ scale.Workload.n_p0; 3 * scale.Workload.n_p0 ])
      in
      List.iter
        (fun (label, pools) ->
          let res = Atpg.enrich_multi c ~seed ~faults ~pools in
          let first = match pools with p :: _ -> p | [] -> [] in
          Table.add_row table
            [
              profile.Profiles.name; label;
              string_of_int (List.length first);
              string_of_int (Atpg.count_detected res ~ids:first);
              string_of_int (Fault_sim.count res.Atpg.detected);
              string_of_int n;
              string_of_int (List.length res.Atpg.tests);
            ])
        [ ("2", two_pools); ("3", three_pools) ])
    profiles;
  Table.render table

let static_compaction ?(seed = Workload.default_seed)
    (scale : Workload.scale) profiles =
  let table =
    Table.create
      ~title:"E3: static compaction on top of dynamic compaction"
      [
        ("circuit", Table.Left); ("set", Table.Left); ("tests", Table.Right);
        ("reverse", Table.Right); ("greedy", Table.Right);
        ("coverage kept", Table.Left);
      ]
  in
  List.iter
    (fun profile ->
      let c = Profiles.circuit profile in
      let model = Delay_model.lines c in
      let ts =
        Target_sets.build c model ~n_p:scale.Workload.n_p
          ~n_p0:scale.Workload.n_p0
      in
      let faults = Fault_sim.prepare c ts.Target_sets.p in
      let n0 = List.length ts.Target_sets.p0 in
      let p0 = List.init n0 (fun i -> i) in
      let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
      let faults0 = Array.of_list (List.map (fun i -> faults.(i)) p0) in
      let basic =
        Atpg.basic c
          { Atpg.ordering = Pdf_core.Ordering.Value_based; seed }
          ~faults:faults0
      in
      let enriched = Atpg.enrich c ~seed ~faults ~p0 ~p1 in
      List.iter
        (fun (label, tests, universe) ->
          let reverse = Static.reverse_order c universe tests in
          let greedy = Static.greedy_cover c universe tests in
          let ok =
            Static.coverage_preserved c universe ~original:tests
              ~compacted:reverse
            && Static.coverage_preserved c universe ~original:tests
                 ~compacted:greedy
          in
          Table.add_row table
            [
              profile.Profiles.name; label;
              string_of_int (List.length tests);
              string_of_int (List.length reverse);
              string_of_int (List.length greedy);
              (if ok then "yes" else "NO");
            ])
        [
          ("basic/P0", basic.Atpg.tests, faults0);
          ("enriched/P", enriched.Atpg.tests, faults);
        ])
    profiles;
  Table.render table

let criterion ?(seed = Workload.default_seed) (scale : Workload.scale)
    profiles =
  let table =
    Table.create
      ~title:"E4: robust vs non-robust sensitization"
      [
        ("circuit", Table.Left); ("criterion", Table.Left);
        ("|P|", Table.Right); ("|P0|", Table.Right);
        ("P0 det", Table.Right); ("P det", Table.Right);
        ("tests", Table.Right);
      ]
  in
  List.iter
    (fun profile ->
      let c = Profiles.circuit profile in
      let model = Delay_model.lines c in
      List.iter
        (fun (label, crit) ->
          let ts =
            Target_sets.build ~criterion:crit c model
              ~n_p:scale.Workload.n_p ~n_p0:scale.Workload.n_p0
          in
          let faults =
            Fault_sim.prepare ~criterion:crit c ts.Target_sets.p
          in
          let n = Array.length faults in
          let n0 = List.length ts.Target_sets.p0 in
          let p0 = List.init n0 (fun i -> i) in
          let p1 = List.init (n - n0) (fun i -> n0 + i) in
          let res = Atpg.enrich c ~seed ~faults ~p0 ~p1 in
          Table.add_row table
            [
              profile.Profiles.name; label; string_of_int n;
              string_of_int n0;
              string_of_int (Atpg.count_detected res ~ids:p0);
              string_of_int (Fault_sim.count res.Atpg.detected);
              string_of_int (List.length res.Atpg.tests);
            ])
        [ ("robust", Robust.Robust); ("non-robust", Robust.Non_robust) ])
    profiles;
  Table.render table

let justifier ?(seed = Workload.default_seed) (scale : Workload.scale)
    profiles =
  let table =
    Table.create
      ~title:
        "E5: simulation-based vs branch-and-bound justification (per P0 \
         fault)"
      [
        ("circuit", Table.Left); ("faults", Table.Right);
        ("sim finds", Table.Right); ("bnb finds", Table.Right);
        ("sim misses, bnb finds", Table.Right);
        ("proved untestable", Table.Right); ("gave up", Table.Right);
      ]
  in
  List.iter
    (fun profile ->
      let c = Profiles.circuit profile in
      let model = Delay_model.lines c in
      let ts =
        Target_sets.build c model ~n_p:scale.Workload.n_p
          ~n_p0:scale.Workload.n_p0
      in
      let faults = Fault_sim.prepare c ts.Target_sets.p0 in
      let engine = Pdf_core.Justify.create c in
      let rng = Pdf_util.Rng.create seed in
      let sim_finds = ref 0 and bnb_finds = ref 0 in
      let rescued = ref 0 and unsat = ref 0 and gave_up = ref 0 in
      Array.iter
        (fun (p : Fault_sim.prepared) ->
          let sim =
            Pdf_core.Justify.run engine ~rng ~reqs:p.Fault_sim.reqs
          in
          if sim <> None then incr sim_finds;
          match
            Pdf_core.Justify.run_complete engine ~reqs:p.Fault_sim.reqs
          with
          | Pdf_core.Justify.Found _ ->
            incr bnb_finds;
            if sim = None then incr rescued
          | Pdf_core.Justify.Proved_unsatisfiable -> incr unsat
          | Pdf_core.Justify.Gave_up -> incr gave_up)
        faults;
      Table.add_row table
        [
          profile.Profiles.name;
          string_of_int (Array.length faults);
          string_of_int !sim_finds;
          string_of_int !bnb_finds;
          string_of_int !rescued;
          string_of_int !unsat;
          string_of_int !gave_up;
        ])
    profiles;
  Table.render table

let scaling ?(seed = Workload.default_seed) (scale : Workload.scale) ~n_p0s
    profile =
  let table =
    Table.create
      ~title:"E6: sweeping the N_P0 effort knob (value-based enrichment)"
      [
        ("circuit", Table.Left); ("N_P0", Table.Right); ("|P0|", Table.Right);
        ("P0 det", Table.Right); ("P det", Table.Right);
        ("P total", Table.Right); ("tests", Table.Right);
      ]
  in
  let c = Profiles.circuit profile in
  let model = Delay_model.lines c in
  List.iter
    (fun n_p0 ->
      let ts = Target_sets.build c model ~n_p:scale.Workload.n_p ~n_p0 in
      let faults = Fault_sim.prepare c ts.Target_sets.p in
      let n = Array.length faults in
      let n0 = List.length ts.Target_sets.p0 in
      let p0 = List.init n0 (fun i -> i) in
      let p1 = List.init (n - n0) (fun i -> n0 + i) in
      let res = Atpg.enrich c ~seed ~faults ~p0 ~p1 in
      Table.add_row table
        [
          profile.Profiles.name; string_of_int n_p0; string_of_int n0;
          string_of_int (Atpg.count_detected res ~ids:p0);
          string_of_int (Fault_sim.count res.Atpg.detected);
          string_of_int n;
          string_of_int (List.length res.Atpg.tests);
        ])
    n_p0s;
  Table.render table
