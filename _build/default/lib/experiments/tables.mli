(** Reproduction of every table in the paper.

    Each function renders the measured counterpart of one paper table;
    {!paper_reference} renders the published numbers for side-by-side
    reading.  Tables 3-7 consume the {!Runner.circuit_run} records so one
    expensive run per circuit feeds all of them. *)

val table1 : unit -> string
(** Paper Table 1 / Figure 1: the bounded enumeration walkthrough on the
    genuine s27, with the eviction events and the final path set, plus the
    [A(p)] of the paper's running example fault. *)

val table2 : Workload.scale -> string
(** Paper Table 2: [L_i] and [N_p(L_i)] for the 20 longest path lengths of
    the s1423 look-alike. *)

val table3 : Runner.circuit_run list -> string
(** Detected faults of [P0] under the four heuristics. *)

val table4 : Runner.circuit_run list -> string
(** Test counts under the four heuristics. *)

val table5 : Runner.circuit_run list -> string
(** Faults of [P0 u P1] detected accidentally by the basic test sets. *)

val table6 : Runner.circuit_run list -> string
(** The enrichment procedure (11 rows, including resynthesized
    stand-ins). *)

val table7 : Runner.circuit_run list -> string
(** Run-time ratios enrich/basic. *)

val paper_reference : unit -> string
(** The published values of Tables 2-7, rendered for comparison. *)

val csv_exports :
  table_runs:Runner.circuit_run list ->
  enrich_runs:Runner.circuit_run list ->
  (string * Pdf_util.Csv.t) list
(** Measured Tables 3-7 as [(file stem, csv)] pairs; [enrich_runs] is the
    eleven-row list for Table 6. *)
