lib/experiments/runner.mli: Pdf_core Pdf_paths Pdf_synth Workload
