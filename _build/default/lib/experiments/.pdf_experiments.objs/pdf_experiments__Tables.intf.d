lib/experiments/tables.mli: Pdf_util Runner Workload
