lib/experiments/ablations.ml: Array Estimation_error List Pdf_core Pdf_faults Pdf_paths Pdf_synth Pdf_util Workload
