lib/experiments/tables.ml: Array Buffer List Paper_data Pdf_circuit Pdf_core Pdf_faults Pdf_paths Pdf_synth Pdf_util Pdf_values Printf Runner Workload
