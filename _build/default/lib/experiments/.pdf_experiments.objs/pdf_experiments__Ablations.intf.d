lib/experiments/ablations.mli: Pdf_synth Workload
