lib/experiments/estimation_error.ml: Array Hashtbl List Pdf_circuit Pdf_core Pdf_faults Pdf_paths Pdf_synth Pdf_util Printf Workload
