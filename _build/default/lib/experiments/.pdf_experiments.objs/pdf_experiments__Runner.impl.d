lib/experiments/runner.ml: Array Float List Pdf_core Pdf_faults Pdf_paths Pdf_synth Workload
