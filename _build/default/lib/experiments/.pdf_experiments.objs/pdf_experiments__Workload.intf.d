lib/experiments/workload.mli:
