lib/experiments/workload.ml: String
