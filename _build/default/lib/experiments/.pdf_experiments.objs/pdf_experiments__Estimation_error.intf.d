lib/experiments/estimation_error.mli: Pdf_synth Pdf_util Workload
