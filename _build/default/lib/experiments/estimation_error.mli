(** The motivation experiment (paper, Section 1).

    The paper argues for targeting next-to-longest paths because "paths
    that appear to be shorter may actually be longer than the longest
    paths if the procedure used for estimating path length is
    inaccurate".  This experiment makes that argument measurable:

    + build [P0]/[P1] and both test sets under the {e nominal} delay
      model (the paper's line count);
    + perturb every stem/branch weight by up to [noise_pct] percent —
      the {e true} delays the estimator got wrong;
    + find the faults of the truly longest paths under the perturbed
      model (same [N_P0] rule), and fault-simulate both test sets on
      them.

    Enrichment should recover most of the true-critical faults that the
    estimation error pushed into [P1]. *)

type t = {
  noise_pct : int;
  true_critical_total : int;
      (** detectable faults on the truly longest paths *)
  in_nominal_p0 : int;  (** of those, how many the estimator kept in P0 *)
  in_nominal_p1 : int;  (** how many fell to P1 — enrichment's territory *)
  outside_p : int;  (** how many were not even enumerated nominally *)
  basic_covered : int;  (** true-critical faults detected by the basic set *)
  enriched_covered : int;
  basic_tests : int;
  enrich_tests : int;
}

val run :
  ?seed:int ->
  noise_pct:int ->
  Workload.scale ->
  Pdf_synth.Profiles.t ->
  t

val to_row : t -> string list
(** [circuit-independent cells]: noise, true-critical, in-P0/in-P1/missed,
    basic and enriched coverage with test counts. *)

val table_header : (string * Pdf_util.Table.align) list
