type basic_row = {
  circuit : string;
  i0 : int;
  p0_faults : int;
  detected : int * int * int * int;
  tests : int * int * int * int;
}

let tables_3_4 =
  [
    { circuit = "s641"; i0 = 57; p0_faults = 1057;
      detected = (915, 915, 915, 915); tests = (471, 135, 130, 129) };
    { circuit = "s953"; i0 = 15; p0_faults = 1236;
      detected = (1231, 1231, 1231, 1231); tests = (581, 308, 303, 312) };
    { circuit = "s1196"; i0 = 13; p0_faults = 1033;
      detected = (572, 572, 572, 572); tests = (329, 175, 172, 175) };
    { circuit = "s1423"; i0 = 17; p0_faults = 1116;
      detected = (929, 931, 932, 924); tests = (495, 332, 335, 324) };
    { circuit = "s1488"; i0 = 10; p0_faults = 1184;
      detected = (1148, 1148, 1148, 1148); tests = (464, 321, 321, 317) };
    { circuit = "b03"; i0 = 8; p0_faults = 1006;
      detected = (869, 869, 869, 869); tests = (299, 90, 88, 96) };
    { circuit = "b04"; i0 = 5; p0_faults = 1606;
      detected = (458, 456, 461, 456); tests = (457, 301, 304, 302) };
    { circuit = "b09"; i0 = 1; p0_faults = 1432;
      detected = (944, 944, 944, 944); tests = (406, 147, 147, 158) };
  ]

type sim_row = {
  circuit : string;
  p_faults : int;
  detected : int * int * int * int;
}

let table_5 =
  [
    { circuit = "s641"; p_faults = 2127; detected = (1452, 1436, 1417, 1420) };
    { circuit = "s953"; p_faults = 2312; detected = (1830, 1759, 1781, 1778) };
    { circuit = "s1196"; p_faults = 4527; detected = (1414, 1338, 1312, 1341) };
    { circuit = "s1423"; p_faults = 1314; detected = (1013, 1019, 1017, 1007) };
    { circuit = "s1488"; p_faults = 1918; detected = (1697, 1641, 1651, 1654) };
    { circuit = "b03"; p_faults = 1450; detected = (1057, 1038, 1035, 1025) };
    { circuit = "b04"; p_faults = 8370; detected = (936, 935, 941, 936) };
    { circuit = "b09"; p_faults = 2207; detected = (1160, 1160, 1160, 1160) };
  ]

type enrich_row = {
  circuit : string;
  i0 : int;
  p0_total : int;
  p0_detected : int;
  p_total : int;
  p_detected : int;
  tests : int;
}

let table_6 =
  [
    { circuit = "s641"; i0 = 57; p0_total = 1057; p0_detected = 915;
      p_total = 2127; p_detected = 1815; tests = 127 };
    { circuit = "s953"; i0 = 15; p0_total = 1236; p0_detected = 1231;
      p_total = 2312; p_detected = 2063; tests = 315 };
    { circuit = "s1196"; i0 = 13; p0_total = 1033; p0_detected = 572;
      p_total = 4527; p_detected = 1932; tests = 174 };
    { circuit = "s1423"; i0 = 17; p0_total = 1116; p0_detected = 934;
      p_total = 1314; p_detected = 1039; tests = 332 };
    { circuit = "s1488"; i0 = 10; p0_total = 1184; p0_detected = 1148;
      p_total = 1918; p_detected = 1746; tests = 317 };
    { circuit = "b03"; i0 = 8; p0_total = 1006; p0_detected = 869;
      p_total = 1450; p_detected = 1178; tests = 95 };
    { circuit = "b04"; i0 = 5; p0_total = 1606; p0_detected = 459;
      p_total = 8370; p_detected = 1485; tests = 303 };
    { circuit = "b09"; i0 = 1; p0_total = 1432; p0_detected = 944;
      p_total = 2207; p_detected = 1301; tests = 150 };
    { circuit = "s1423*"; i0 = 24; p0_total = 1061; p0_detected = 982;
      p_total = 1593; p_detected = 1227; tests = 267 };
    { circuit = "s5378*"; i0 = 3; p0_total = 1028; p0_detected = 913;
      p_total = 8537; p_detected = 5469; tests = 441 };
    { circuit = "s9234*"; i0 = 7; p0_total = 1158; p0_detected = 1158;
      p_total = 9344; p_detected = 1465; tests = 824 };
  ]

let table_7 =
  [
    ("s641", 1.10); ("s953", 1.56); ("s1196", 2.51); ("s1423", 0.94);
    ("s1488", 1.22); ("b03", 1.13); ("b04", 1.13); ("b09", 1.60);
  ]

let table_2 =
  [
    (96, 4); (95, 12); (94, 22); (93, 36); (92, 54); (91, 84); (90, 118);
    (89, 160); (88, 208); (87, 256); (86, 314); (85, 378); (84, 458);
    (83, 556); (82, 668); (81, 799); (80, 934); (79, 1116); (78, 1314);
    (77, 1538);
  ]
