module Delay_model = Pdf_paths.Delay_model
module Fault = Pdf_faults.Fault
module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Atpg = Pdf_core.Atpg
module Rng = Pdf_util.Rng

type t = {
  noise_pct : int;
  true_critical_total : int;
  in_nominal_p0 : int;
  in_nominal_p1 : int;
  outside_p : int;
  basic_covered : int;
  enriched_covered : int;
  basic_tests : int;
  enrich_tests : int;
}

(* Scale the nominal line-count weights by 100 and perturb them the way a
   real estimate is wrong: a systematic per-gate-kind bias (the estimator
   mischaracterised a cell) plus independent per-line jitter (layout).
   Both components are +/- [noise_pct]/2 percent; per-line jitter alone
   would average out over long paths.  Scaling is order-preserving, so
   zero noise reproduces the nominal path order exactly. *)
let perturbed_model c rng ~noise_pct nominal =
  let half = noise_pct / 2 in
  let swing amplitude =
    if amplitude = 0 then 0 else -amplitude + Rng.int rng (2 * amplitude + 1)
  in
  let kind_bias =
    List.map
      (fun kind -> (kind, swing half))
      Pdf_circuit.Gate.all_kinds
  in
  let pi_bias = swing half in
  let perturb net w =
    let base = 100 * w in
    let bias =
      match Pdf_circuit.Circuit.gate_of_net c net with
      | None -> pi_bias
      | Some g ->
        List.assoc
          (c : Pdf_circuit.Circuit.t).gates.(g).Pdf_circuit.Circuit.kind
          kind_bias
    in
    let jitter = swing (base * half / 100) in
    max 1 (base + (base * bias / 100) + jitter)
  in
  {
    Delay_model.stem = Array.mapi perturb nominal.Delay_model.stem;
    branch = Array.mapi perturb nominal.Delay_model.branch;
  }

let fault_key (f : Fault.t) = (f.Fault.dir, f.Fault.path)

let run ?(seed = Workload.default_seed) ~noise_pct (scale : Workload.scale)
    profile =
  let c = Pdf_synth.Profiles.circuit profile in
  let nominal = Delay_model.lines c in
  let rng = Rng.create (seed lxor 0xe57e) in
  let true_model = perturbed_model c rng ~noise_pct nominal in
  (* Nominal flow: target sets and both test sets. *)
  let ts =
    Target_sets.build c nominal ~n_p:scale.Workload.n_p
      ~n_p0:scale.Workload.n_p0
  in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  let n0 = List.length ts.Target_sets.p0 in
  let p0 = List.init n0 (fun i -> i) in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let faults0 = Array.of_list (List.map (fun i -> faults.(i)) p0) in
  let basic =
    Atpg.basic c
      { Atpg.ordering = Pdf_core.Ordering.Value_based; seed }
      ~faults:faults0
  in
  let enriched = Atpg.enrich c ~seed ~faults ~p0 ~p1 in
  (* The truth: the critical faults under the perturbed delays. *)
  let true_ts =
    Target_sets.build c true_model ~n_p:scale.Workload.n_p
      ~n_p0:scale.Workload.n_p0
  in
  let true_critical = Fault_sim.prepare c true_ts.Target_sets.p0 in
  (* Where did the estimator put them? *)
  let nominal_set = Hashtbl.create 256 in
  List.iteri
    (fun i (e : Target_sets.entry) ->
      Hashtbl.replace nominal_set (fault_key e.Target_sets.fault)
        (if i < n0 then `P0 else `P1))
    (ts.Target_sets.p0 @ ts.Target_sets.p1);
  let in_p0 = ref 0 and in_p1 = ref 0 and outside = ref 0 in
  Array.iter
    (fun (p : Fault_sim.prepared) ->
      match Hashtbl.find_opt nominal_set (fault_key p.Fault_sim.fault) with
      | Some `P0 -> incr in_p0
      | Some `P1 -> incr in_p1
      | None -> incr outside)
    true_critical;
  let covered_by tests =
    Fault_sim.count (Fault_sim.detected_by_tests c tests true_critical)
  in
  {
    noise_pct;
    true_critical_total = Array.length true_critical;
    in_nominal_p0 = !in_p0;
    in_nominal_p1 = !in_p1;
    outside_p = !outside;
    basic_covered = covered_by basic.Atpg.tests;
    enriched_covered = covered_by enriched.Atpg.tests;
    basic_tests = List.length basic.Atpg.tests;
    enrich_tests = List.length enriched.Atpg.tests;
  }

let to_row t =
  [
    string_of_int t.noise_pct ^ "%";
    string_of_int t.true_critical_total;
    string_of_int t.in_nominal_p0;
    string_of_int t.in_nominal_p1;
    string_of_int t.outside_p;
    Printf.sprintf "%d (%d tests)" t.basic_covered t.basic_tests;
    Printf.sprintf "%d (%d tests)" t.enriched_covered t.enrich_tests;
  ]

let table_header =
  let open Pdf_util.Table in
  [
    ("noise", Right); ("true-critical", Right); ("in P0", Right);
    ("in P1", Right); ("missed", Right); ("basic covers", Right);
    ("enriched covers", Right);
  ]
