(** Experiment workload parameters.

    The paper uses [N_P = 10000] and [N_P0 = 1000].  Because our substrate
    regenerates every table on a laptop, the default scale divides both by
    five — the paper itself presents them as effort-bound tunables.  The
    scale in force is recorded in every report. *)

type scale = {
  label : string;
  n_p : int;  (** [N_P]: fault budget for [P] during enumeration *)
  n_p0 : int;  (** [N_P0]: minimum size of [P0] *)
}

val small : scale
(** [N_P = 2000], [N_P0 = 200] — minutes for the full table suite. *)

val paper : scale
(** [N_P = 10000], [N_P0 = 1000] — the paper's constants. *)

val of_label : string -> scale option

val default_seed : int
