(** The numbers published in the paper's tables, embedded for side-by-side
    comparison with our measurements (EXPERIMENTS.md).

    All values are transcribed from Pomeranz & Reddy, DATE 2002. *)

type basic_row = {
  circuit : string;
  i0 : int;
  p0_faults : int;
  detected : int * int * int * int;  (** uncomp, arbit, length, values *)
  tests : int * int * int * int;
}

val tables_3_4 : basic_row list
(** Tables 3 and 4: basic test generation over [P0]. *)

type sim_row = {
  circuit : string;
  p_faults : int;  (** [|P0 u P1|] *)
  detected : int * int * int * int;
}

val table_5 : sim_row list
(** Table 5: faults of [P0 u P1] detected accidentally by the basic test
    sets. *)

type enrich_row = {
  circuit : string;
  i0 : int;
  p0_total : int;
  p0_detected : int;
  p_total : int;
  p_detected : int;
  tests : int;
}

val table_6 : enrich_row list
(** Table 6: the proposed enrichment procedure (includes the resynthesized
    circuits, marked with a [*]). *)

val table_7 : (string * float) list
(** Table 7: run-time ratio enrich/basic per circuit. *)

val table_2 : (int * int) list
(** Table 2: [(L_i, N_p(L_i))] for the 20 longest path lengths of s1423. *)
