type scale = {
  label : string;
  n_p : int;
  n_p0 : int;
}

let small = { label = "small"; n_p = 2000; n_p0 = 200 }

let paper = { label = "paper"; n_p = 10_000; n_p0 = 1_000 }

let of_label s =
  match String.lowercase_ascii s with
  | "small" -> Some small
  | "paper" -> Some paper
  | _ -> None

let default_seed = 2002
