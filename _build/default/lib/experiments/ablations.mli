(** Ablation experiments beyond the paper's tables (bench sections E1-E4).

    - {b E1} quantifies the paper's motivation: under a perturbed "true"
      delay model, how many truly critical faults does each test set
      cover?
    - {b E2} exercises the multi-set generalisation the paper mentions
      (three target sets instead of two).
    - {b E3} stacks static compaction on top of dynamic compaction.
    - {b E4} swaps the robust sensitization criterion for the classic
      non-robust one.
    - {b E5} contrasts the simulation-based justifier with the complete
      branch-and-bound one.
    - {b E6} sweeps [N_P0], the effort knob the paper leaves to the
      implementer. *)

val estimation_error :
  ?seed:int ->
  Workload.scale ->
  noises:int list ->
  Pdf_synth.Profiles.t list ->
  string

val multiset :
  ?seed:int -> Workload.scale -> Pdf_synth.Profiles.t list -> string
(** Two-set vs three-set enrichment: coverage per set and test counts. *)

val static_compaction :
  ?seed:int -> Workload.scale -> Pdf_synth.Profiles.t list -> string
(** Reverse-order and greedy-cover passes over the basic and enriched
    test sets; coverage is checked preserved. *)

val criterion :
  ?seed:int -> Workload.scale -> Pdf_synth.Profiles.t list -> string
(** Robust vs non-robust sensitization: detectable fault counts, coverage
    and test counts. *)

val justifier :
  ?seed:int -> Workload.scale -> Pdf_synth.Profiles.t list -> string
(** {b E5}: simulation-based vs branch-and-bound justification per P0
    fault — the paper notes branch-and-bound removes the random-selection
    variations.  Reports how many faults each resolves, including faults
    the randomized search misses and faults proved untestable. *)

val scaling :
  ?seed:int ->
  Workload.scale ->
  n_p0s:int list ->
  Pdf_synth.Profiles.t ->
  string
(** {b E6}: enrichment under several [N_P0] settings on one circuit —
    larger first sets buy more mandatory coverage at more tests, while
    the [P1] top-up keeps total coverage high throughout. *)
