(** Two-pattern (delay-test) simulation.

    Each primary input carries a pair of values [(beta1, beta3)] — its value
    under the first and second pattern.  Component 2 (the intermediate
    value) of a PI is its common value when [beta1 = beta3] is definite, and
    [X] otherwise.  Components are simulated independently in three-valued
    logic; an internal net's intermediate value is therefore [X] whenever
    the line could glitch — the classical conservative hazard semantics.
    A (line, requirement) pair from an [A(p)] set is satisfied exactly when
    the simulated triple matches every pinned component. *)

type pi_pair = { b1 : Pdf_values.Bit.t; b3 : Pdf_values.Bit.t }

val simulate :
  Pdf_circuit.Circuit.t -> pi_pair array -> Pdf_values.Triple.t array
(** Per-net triples for the given (possibly partial) PI assignment. *)

val middle_of_pair : Pdf_values.Bit.t -> Pdf_values.Bit.t -> Pdf_values.Bit.t
(** The intermediate value a PI presents: its common definite value, else
    [X]. *)

val satisfies :
  Pdf_values.Triple.t array -> (int * Pdf_values.Req.t) list -> bool
(** Do the simulated values meet every requirement (pinned components must
    be definite and equal)? *)

val first_violation :
  Pdf_values.Triple.t array ->
  (int * Pdf_values.Req.t) list ->
  (int * Pdf_values.Req.t) option
(** The first unmet requirement, for diagnostics. *)
