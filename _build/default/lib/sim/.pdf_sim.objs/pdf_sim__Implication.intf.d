lib/sim/implication.mli: Pdf_circuit Pdf_values
