lib/sim/logic_sim.mli: Pdf_circuit Pdf_values
