lib/sim/two_pattern.mli: Pdf_circuit Pdf_values
