lib/sim/two_pattern.ml: Array List Logic_sim Pdf_circuit Pdf_values
