lib/sim/logic_sim.ml: Array Pdf_circuit Pdf_values
