lib/sim/implication.ml: Array List Pdf_circuit Pdf_values
