(** Single-pattern logic simulation over three-valued logic. *)

val simulate :
  Pdf_circuit.Circuit.t -> Pdf_values.Bit.t array -> Pdf_values.Bit.t array
(** [simulate c pis] evaluates the whole circuit in one levelised pass.
    [pis] must have length [c.num_pis]; the result has one value per net
    (PIs first). *)

val simulate_bool : Pdf_circuit.Circuit.t -> bool array -> bool array
(** Fully specified two-valued convenience wrapper. *)

val outputs : Pdf_circuit.Circuit.t -> 'a array -> 'a array
(** Project a per-net array onto the primary outputs. *)
