module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Req = Pdf_values.Req
module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate

type outcome =
  | Consistent of Triple.t array
  | Conflict of { net : int; component : int }

exception Stop of int * int (* net, component *)

type state = {
  circuit : Circuit.t;
  layers : Bit.t array array; (* layers.(k) for component k+1 *)
  mutable changed : bool;
}

let assign st ~component ~net value =
  let layer = st.layers.(component - 1) in
  match layer.(net), value with
  | Bit.X, (Bit.Zero | Bit.One) ->
    layer.(net) <- value;
    st.changed <- true
  | (Bit.Zero | Bit.One | Bit.X), Bit.X -> ()
  | old, v -> if not (Bit.equal old v) then raise (Stop (net, component))

(* Forward + backward rules for one gate on one layer. *)
let imply_gate st ~component gate_index =
  let c = st.circuit in
  let layer = st.layers.(component - 1) in
  let g = c.Circuit.gates.(gate_index) in
  let out = Circuit.net_of_gate c gate_index in
  let fanins = g.Circuit.fanins in
  let n = Array.length fanins in
  match g.Circuit.kind with
  | Gate.Buff -> (
    assign st ~component ~net:out layer.(fanins.(0));
    match layer.(out) with
    | (Bit.Zero | Bit.One) as v -> assign st ~component ~net:fanins.(0) v
    | Bit.X -> ())
  | Gate.Not -> (
    assign st ~component ~net:out (Bit.not_ layer.(fanins.(0)));
    match layer.(out) with
    | (Bit.Zero | Bit.One) as v ->
      assign st ~component ~net:fanins.(0) (Bit.not_ v)
    | Bit.X -> ())
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor -> (
    let cv =
      match Gate.controlling g.Circuit.kind with
      | Some b -> Bit.of_bool b
      | None -> assert false
    in
    let ncv = Bit.not_ cv in
    let inv = Gate.inverting g.Circuit.kind in
    let apply_inv v = if inv then Bit.not_ v else v in
    let out_controlled = apply_inv cv and out_all_nc = apply_inv ncv in
    (* Forward. *)
    let any_cv = ref false and all_ncv = ref true in
    for i = 0 to n - 1 do
      let v = layer.(fanins.(i)) in
      if Bit.equal v cv then any_cv := true;
      if not (Bit.equal v ncv) then all_ncv := false
    done;
    if !any_cv then assign st ~component ~net:out out_controlled
    else if !all_ncv then assign st ~component ~net:out out_all_nc;
    (* Backward. *)
    match layer.(out) with
    | Bit.X -> ()
    | v when Bit.equal v out_all_nc ->
      for i = 0 to n - 1 do
        assign st ~component ~net:fanins.(i) ncv
      done
    | _ ->
      (* Output is controlled: if exactly one input is unknown and every
         other input is non-controlling, the unknown one must be
         controlling. *)
      let unknown = ref (-1) and count = ref 0 and rest_nc = ref true in
      for i = 0 to n - 1 do
        match layer.(fanins.(i)) with
        | Bit.X ->
          incr count;
          unknown := fanins.(i)
        | v -> if not (Bit.equal v ncv) then rest_nc := false
      done;
      if !count = 1 && !rest_nc then assign st ~component ~net:!unknown cv
      else if !count = 0 && !rest_nc then
        (* all inputs non-controlling but output controlled *)
        raise (Stop (out, component)))
  | Gate.Xor | Gate.Xnor ->
    let inv = Gate.inverting g.Circuit.kind in
    let apply_inv v = if inv then Bit.not_ v else v in
    (* Forward. *)
    let acc = ref Bit.Zero in
    for i = 0 to n - 1 do
      acc := Bit.xor !acc layer.(fanins.(i))
    done;
    assign st ~component ~net:out (apply_inv !acc);
    (* Backward: output and all-but-one inputs known. *)
    (match layer.(out) with
    | Bit.X -> ()
    | out_v ->
      let unknown = ref (-1) and count = ref 0 and acc = ref Bit.Zero in
      for i = 0 to n - 1 do
        match layer.(fanins.(i)) with
        | Bit.X ->
          incr count;
          unknown := fanins.(i)
        | v -> acc := Bit.xor !acc v
      done;
      if !count = 1 then
        assign st ~component ~net:!unknown (Bit.xor (apply_inv out_v) !acc))

(* Coupling between layers: a definite intermediate value forces the same
   end values anywhere; stable end values force the intermediate value on
   PIs only. *)
let imply_coupling st =
  let c = st.circuit in
  let l1 = st.layers.(0) and l2 = st.layers.(1) and l3 = st.layers.(2) in
  for net = 0 to Circuit.num_nets c - 1 do
    (match l2.(net) with
    | (Bit.Zero | Bit.One) as v ->
      assign st ~component:1 ~net v;
      assign st ~component:3 ~net v
    | Bit.X -> ());
    if Circuit.is_pi c net then
      match l1.(net), l3.(net) with
      | (Bit.Zero | Bit.One), (Bit.Zero | Bit.One)
        when Bit.equal l1.(net) l3.(net) ->
        assign st ~component:2 ~net l1.(net)
      | (Bit.Zero | Bit.One | Bit.X), (Bit.Zero | Bit.One | Bit.X) -> ()
  done

let seed st reqs =
  let comp_value = function
    | Req.Any -> Bit.X
    | Req.Must b -> Bit.of_bool b
  in
  List.iter
    (fun (net, (r : Req.t)) ->
      assign st ~component:1 ~net (comp_value r.Req.r1);
      assign st ~component:2 ~net (comp_value r.Req.r2);
      assign st ~component:3 ~net (comp_value r.Req.r3))
    reqs

let infer c reqs =
  let n = Circuit.num_nets c in
  let st =
    { circuit = c; layers = Array.init 3 (fun _ -> Array.make n Bit.X); changed = false }
  in
  try
    seed st reqs;
    st.changed <- true;
    while st.changed do
      st.changed <- false;
      for gate_index = 0 to Circuit.num_gates c - 1 do
        imply_gate st ~component:1 gate_index;
        imply_gate st ~component:2 gate_index;
        imply_gate st ~component:3 gate_index
      done;
      imply_coupling st
    done;
    Consistent
      (Array.init n (fun net ->
           Triple.make st.layers.(0).(net) st.layers.(1).(net)
             st.layers.(2).(net)))
  with Stop (net, component) -> Conflict { net; component }

let consistent c reqs =
  match infer c reqs with Consistent _ -> true | Conflict _ -> false
