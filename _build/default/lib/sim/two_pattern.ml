module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Req = Pdf_values.Req
module Circuit = Pdf_circuit.Circuit

type pi_pair = { b1 : Bit.t; b3 : Bit.t }

let middle_of_pair b1 b3 =
  match b1, b3 with
  | Bit.Zero, Bit.Zero -> Bit.Zero
  | Bit.One, Bit.One -> Bit.One
  | (Bit.Zero | Bit.One | Bit.X), (Bit.Zero | Bit.One | Bit.X) -> Bit.X

let simulate c (pis : pi_pair array) =
  if Array.length pis <> c.Circuit.num_pis then
    invalid_arg "Two_pattern.simulate: wrong number of PI pairs";
  let v1 = Logic_sim.simulate c (Array.map (fun p -> p.b1) pis) in
  let v3 = Logic_sim.simulate c (Array.map (fun p -> p.b3) pis) in
  let v2 =
    Logic_sim.simulate c (Array.map (fun p -> middle_of_pair p.b1 p.b3) pis)
  in
  Array.init (Circuit.num_nets c) (fun net ->
      Triple.make v1.(net) v2.(net) v3.(net))

let satisfies values reqs =
  List.for_all (fun (net, req) -> Req.satisfied_by values.(net) req) reqs

let first_violation values reqs =
  List.find_opt
    (fun (net, req) -> not (Req.satisfied_by values.(net) req))
    reqs
