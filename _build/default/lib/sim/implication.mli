(** Forward/backward implication of requirement values.

    Used to eliminate undetectable faults: the values of [A(p)] are seeded
    on circuit lines and implied through the circuit; if the implication
    process assigns conflicting values to some line, the fault is
    undetectable (paper, Section 3.1, elimination type 2).

    Each of the three triple components is implied as an independent
    three-valued layer with the standard D-algorithm style rules
    (controlling-value forward rules, last-unjustified-input backward
    rules).  The layers are coupled by two sound rules:
    - on any net, a definite intermediate value implies the same initial
      and final values;
    - on a primary input, equal definite initial and final values imply the
      same intermediate value (a stable input cannot glitch). *)

type outcome =
  | Consistent of Pdf_values.Triple.t array
      (** fixpoint reached; per-net implied values (X = unknown) *)
  | Conflict of { net : int; component : int }
      (** some line was assigned both 0 and 1; [component] is 1, 2 or 3 *)

val infer :
  Pdf_circuit.Circuit.t -> (int * Pdf_values.Req.t) list -> outcome
(** Seed the requirements and run implications to fixpoint. *)

val consistent :
  Pdf_circuit.Circuit.t -> (int * Pdf_values.Req.t) list -> bool
(** [true] iff {!infer} reaches a fixpoint without conflict. *)
