module Path = Pdf_paths.Path

type direction = Rising | Falling

type t = { path : Path.t; dir : direction }

let rising path = { path; dir = Rising }

let falling path = { path; dir = Falling }

let both path = [ rising path; falling path ]

let equal a b = a.dir = b.dir && Path.equal a.path b.path

let compare a b =
  let c = Stdlib.compare a.dir b.dir in
  if c <> 0 then c else Path.compare a.path b.path

let direction_name = function
  | Rising -> "slow-to-rise"
  | Falling -> "slow-to-fall"

let to_string c t =
  Printf.sprintf "%s %s" (direction_name t.dir) (Path.to_string c t.path)
