(** Robust sensitization conditions [A(p)] (paper, Section 2.1).

    A two-pattern test robustly detects a path delay fault iff it assigns:
    - the fault's transition to the path source ([0x1] for slow-to-rise),
    - at every gate along the path, the robust off-path (side input)
      condition: when the on-path transition ends at the gate's
      {e controlling} value the side inputs must hold the non-controlling
      value hazard-free through both patterns (e.g. [000]); when it ends at
      the {e non-controlling} value the side inputs only need the
      non-controlling value under the second pattern ([xx0] / [xx1]).

    XOR/XNOR gates have no controlling value; we use the standard
    restriction that side inputs be hazard-free stable, canonically at 0
    (documented substitution — the benchmark gate set has no XOR). *)

type criterion =
  | Robust
      (** the paper's setting: hazard-free side inputs where needed *)
  | Non_robust
      (** classic weaker conditions: every side input only needs the
          non-controlling value under the second pattern — detection is
          then conditional on no other path being slow *)

val raw_conditions :
  ?criterion:criterion ->
  Pdf_circuit.Circuit.t ->
  Fault.t ->
  (int * Pdf_values.Req.t) list
(** One entry per constraint occurrence: the source transition first, then
    one entry per off-path input in path order.  A net may appear several
    times.  Default criterion is {!Robust}. *)

val conditions :
  ?criterion:criterion ->
  Pdf_circuit.Circuit.t ->
  Fault.t ->
  (int * Pdf_values.Req.t) list option
(** {!raw_conditions} merged per net; [None] when two occurrences conflict
    directly — the fault is undetectable (elimination type 1 of the
    paper). *)

val merge_into :
  (int, Pdf_values.Req.t) Hashtbl.t ->
  (int * Pdf_values.Req.t) list ->
  bool
(** Destructively merge requirements into an accumulated set (the
    [union of A(p_j)] of a test under construction); on direct conflict the
    table is left unchanged and [false] is returned. *)

val output_direction : Pdf_circuit.Circuit.t -> Fault.t -> Fault.direction
(** Transition direction observed at the path's final net (source direction
    composed with the path's inversion parity). *)
