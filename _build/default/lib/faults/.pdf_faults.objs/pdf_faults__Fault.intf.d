lib/faults/fault.mli: Pdf_circuit Pdf_paths
