lib/faults/target_sets.ml: Fault Hashtbl Int List Pdf_paths Robust Undetectable
