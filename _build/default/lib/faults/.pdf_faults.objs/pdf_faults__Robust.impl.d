lib/faults/robust.ml: Array Fault Hashtbl Int List Pdf_circuit Pdf_paths Pdf_values
