lib/faults/undetectable.ml: List Pdf_sim Robust
