lib/faults/fault.ml: Pdf_paths Printf Stdlib
