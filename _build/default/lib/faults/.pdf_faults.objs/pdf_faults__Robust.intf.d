lib/faults/robust.mli: Fault Hashtbl Pdf_circuit Pdf_values
