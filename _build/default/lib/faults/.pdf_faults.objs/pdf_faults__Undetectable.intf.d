lib/faults/undetectable.mli: Fault Pdf_circuit Robust
