lib/faults/target_sets.mli: Fault Pdf_circuit Pdf_paths Robust Undetectable
