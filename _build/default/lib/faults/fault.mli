(** Path delay faults.

    A fault is a physical path together with the transition launched at its
    source: {!Rising} is the slow-to-rise fault (the propagated [0 -> 1]
    transition arrives late), {!Falling} the slow-to-fall fault. *)

type direction = Rising | Falling

type t = { path : Pdf_paths.Path.t; dir : direction }

val rising : Pdf_paths.Path.t -> t

val falling : Pdf_paths.Path.t -> t

val both : Pdf_paths.Path.t -> t list
(** The two faults of a path, rising first. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val direction_name : direction -> string
(** ["slow-to-rise"] or ["slow-to-fall"]. *)

val to_string : Pdf_circuit.Circuit.t -> t -> string
