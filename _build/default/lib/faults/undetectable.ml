module Implication = Pdf_sim.Implication

type verdict =
  | Maybe_detectable
  | Direct_conflict
  | Implication_conflict of { net : int; component : int }

let classify ?(criterion = Robust.Robust) c fault =
  match Robust.conditions ~criterion c fault with
  | None -> Direct_conflict
  | Some reqs -> (
    match Implication.infer c reqs with
    | Implication.Consistent _ -> Maybe_detectable
    | Implication.Conflict { net; component } ->
      Implication_conflict { net; component })

type stats = {
  kept : int;
  direct_conflicts : int;
  implication_conflicts : int;
}

let filter ?(criterion = Robust.Robust) c faults =
  let direct = ref 0 and implied = ref 0 in
  let kept =
    List.filter
      (fun f ->
        match classify ~criterion c f with
        | Maybe_detectable -> true
        | Direct_conflict ->
          incr direct;
          false
        | Implication_conflict _ ->
          incr implied;
          false)
      faults
  in
  ( kept,
    {
      kept = List.length kept;
      direct_conflicts = !direct;
      implication_conflicts = !implied;
    } )
