module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate
module Req = Pdf_values.Req
module Path = Pdf_paths.Path

type criterion = Robust | Non_robust

let flip = function Fault.Rising -> Fault.Falling | Fault.Falling -> Fault.Rising

let source_req = function
  | Fault.Rising -> Req.rising
  | Fault.Falling -> Req.falling

(* Off-path requirement at a gate with controlling value [cv], given the
   on-path transition direction arriving at the gate.  Robust tests need
   a hazard-free non-controlling side when the transition ends at the
   controlling value; non-robust tests always settle for the second
   pattern alone. *)
let side_req ~criterion ~cv dir =
  match criterion with
  | Non_robust -> Req.final (not cv)
  | Robust ->
    let final_is_controlling =
      match dir with Fault.Rising -> cv | Fault.Falling -> not cv
    in
    if final_is_controlling then Req.stable (not cv) else Req.final (not cv)

let raw_conditions ?(criterion = Robust) c (fault : Fault.t) =
  let reqs = ref [ (fault.Fault.path.Path.source, source_req fault.Fault.dir) ] in
  let dir = ref fault.Fault.dir in
  Array.iter
    (fun (h : Path.hop) ->
      let g = (c : Circuit.t).gates.(h.Path.gate) in
      let fanins = g.Circuit.fanins in
      (match g.Circuit.kind with
      | Gate.Not | Gate.Buff -> ()
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
        let cv =
          match Gate.controlling g.Circuit.kind with
          | Some b -> b
          | None -> assert false
        in
        let req = side_req ~criterion ~cv !dir in
        Array.iteri
          (fun pin fanin ->
            if pin <> h.Path.pin then reqs := (fanin, req) :: !reqs)
          fanins
      | Gate.Xor | Gate.Xnor ->
        Array.iteri
          (fun pin fanin ->
            if pin <> h.Path.pin then reqs := (fanin, Req.stable false) :: !reqs)
          fanins);
      if Gate.inverting g.Circuit.kind then dir := flip !dir)
    fault.Fault.path.Path.hops;
  List.rev !reqs

let merge_into acc reqs =
  (* Two-phase: validate against current contents first so a conflict
     leaves [acc] untouched. *)
  let merged =
    List.fold_left
      (fun merged_opt (net, req) ->
        match merged_opt with
        | None -> None
        | Some merged ->
          let current =
            match List.assoc_opt net merged with
            | Some r -> r
            | None -> (
              match Hashtbl.find_opt acc net with
              | Some r -> r
              | None -> Req.any)
          in
          (match Req.merge current req with
          | Some r -> Some ((net, r) :: List.remove_assoc net merged)
          | None -> None))
      (Some []) reqs
  in
  match merged with
  | None -> false
  | Some merged ->
    List.iter (fun (net, req) -> Hashtbl.replace acc net req) merged;
    true

let conditions ?(criterion = Robust) c fault =
  let raw = raw_conditions ~criterion c fault in
  let acc = Hashtbl.create 16 in
  if merge_into acc raw then
    Some (Hashtbl.fold (fun net req l -> (net, req) :: l) acc []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b))
  else None

let output_direction c (fault : Fault.t) =
  Array.fold_left
    (fun dir (h : Path.hop) ->
      if Gate.inverting (c : Circuit.t).gates.(h.Path.gate).Circuit.kind then
        flip dir
      else dir)
    fault.Fault.dir fault.Fault.path.Path.hops
