(** Static timing analysis over a delay model.

    Classic longest-path arrival/required/slack computation.  A net's
    {e arrival} time is the length of the longest partial path from any
    primary input to (and including) the net; its {e required} time is
    the clock period minus the longest suffix to any primary output; the
    {e slack} is their difference.  Nets with zero slack (at the period
    equal to the critical delay) are exactly the nets on critical paths —
    the lines whose faults the paper's [P0] targets. *)

type t = {
  period : int;  (** the period used for required times *)
  arrival : int array;  (** per net; {!unreached} if no PI reaches it *)
  required : int array;  (** per net; {!unreached} if no PO is reachable *)
  slack : int array;  (** [required - arrival]; meaningless if unreached *)
}

val unreached : int
(** Sentinel ([Pdf_paths.Distance.unreachable]). *)

val compute : ?period:int -> Pdf_circuit.Circuit.t -> Delay_model.t -> t
(** [period] defaults to the critical delay, making the minimum slack
    exactly 0. *)

val critical_nets : t -> int list
(** Nets with slack [<= 0] (on paths at least as long as the period). *)

val net_on_critical_path : t -> int -> bool

val path_slack : t -> Pdf_circuit.Circuit.t -> Delay_model.t -> Path.t -> int
(** Slack of one complete path: [period - length]. *)
