(** Distance of every line from the primary outputs (paper, Figure 2).

    [d(g)] is the maximum added length of any path suffix starting after
    net [g]; the maximum length of a path having prefix [p] is
    [len(p) = length(p) + d(last net of p)].  Nets from which no primary
    output is reachable get {!unreachable}. *)

val unreachable : int
(** A large negative sentinel; any arithmetic on it stays clearly
    negative. *)

val compute : Pdf_circuit.Circuit.t -> Delay_model.t -> int array
(** One reverse-topological pass. *)

val len_bound : int array -> Pdf_circuit.Circuit.t -> Path.t -> int -> int
(** [len_bound d c p length] = [length + d(last net)], the [len(p)] of the
    paper ([length] is the already-known length of [p]). *)
