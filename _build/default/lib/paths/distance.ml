module Circuit = Pdf_circuit.Circuit

let unreachable = min_int / 4

let compute (c : Circuit.t) (model : Delay_model.t) =
  let n = Circuit.num_nets c in
  let d = Array.make n unreachable in
  (* Net indices are topological, so a single descending sweep sees every
     consumer (whose output net index is larger) before its producer. *)
  for net = n - 1 downto 0 do
    let best = ref (if c.is_po.(net) then 0 else unreachable) in
    Array.iter
      (fun (g, _pin) ->
        let out = Circuit.net_of_gate c g in
        if d.(out) > unreachable then begin
          let via =
            Delay_model.branch_cost model c net + model.Delay_model.stem.(out)
            + d.(out)
          in
          if via > !best then best := via
        end)
      c.fanouts.(net);
    d.(net) <- !best
  done;
  d

let len_bound d c p length =
  let last = Path.last_net c p in
  if d.(last) <= unreachable then unreachable else length + d.(last)
