module Circuit = Pdf_circuit.Circuit

type t = {
  period : int;
  arrival : int array;
  required : int array;
  slack : int array;
}

let unreached = Distance.unreachable

(* Longest arrival: the dual of Distance.compute — a forward pass in
   topological order, accounting for branch weights on multi-fanout
   stems the same way path lengths do. *)
let arrivals (c : Circuit.t) (model : Delay_model.t) =
  let n = Circuit.num_nets c in
  let arrival = Array.make n unreached in
  for pi = 0 to c.num_pis - 1 do
    arrival.(pi) <- model.Delay_model.stem.(pi)
  done;
  Array.iteri
    (fun g (gate : Circuit.gate) ->
      let out = Circuit.net_of_gate c g in
      let best = ref unreached in
      Array.iter
        (fun fanin ->
          if arrival.(fanin) > unreached then begin
            let via =
              arrival.(fanin)
              + Delay_model.branch_cost model c fanin
              + model.Delay_model.stem.(out)
            in
            if via > !best then best := via
          end)
        gate.Circuit.fanins;
      arrival.(out) <- !best)
    c.gates;
  arrival

let compute ?period (c : Circuit.t) model =
  let arrival = arrivals c model in
  let suffix = Distance.compute c model in
  let critical =
    let best = ref 0 in
    Array.iteri
      (fun net a ->
        if a > unreached && suffix.(net) > unreached && a + suffix.(net) > !best
        then best := a + suffix.(net))
      arrival;
    !best
  in
  let period = match period with Some p -> p | None -> critical in
  let n = Circuit.num_nets c in
  let required =
    Array.init n (fun net ->
        if suffix.(net) <= unreached then unreached
        else period - suffix.(net))
  in
  let slack =
    Array.init n (fun net ->
        if arrival.(net) <= unreached || required.(net) <= unreached then
          max_int
        else required.(net) - arrival.(net))
  in
  { period; arrival; required; slack }

let critical_nets t =
  let nets = ref [] in
  Array.iteri
    (fun net s -> if s <> max_int && s <= 0 then nets := net :: !nets)
    t.slack;
  List.rev !nets

let net_on_critical_path t net = t.slack.(net) <> max_int && t.slack.(net) <= 0

let path_slack t c model p = t.period - Delay_model.length model c p
