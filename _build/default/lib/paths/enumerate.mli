(** Bounded enumeration of the longest circuit paths (paper, Section 3.1).

    Paths grow from the primary inputs towards the primary outputs.  The
    working set [P] holds complete and partial paths; whenever it reaches
    [max_paths] entries, the least promising entries are evicted:

    - {!Simple} mode (the paper's procedure for circuits with moderate
      numbers of paths): the first partial path in list order is extended;
      only the shortest {e complete} paths are evicted, never partial
      paths and never the longest complete paths.  This is the procedure
      traced on s27 in the paper's Table 1.
    - {!Distance_pruned} mode (the extension for large circuits): every
      path [p] carries [len(p) = length(p) + d(last line)], the length of
      the longest possible completion.  The partial path with maximum
      [len] is always extended first, and entries with minimum [len] —
      partial or complete — are evicted until the bound is met or all
      remaining entries share the maximum [len].

    A path reaching a primary output is recorded as complete; if the same
    net also feeds further logic (a pseudo primary output of extracted
    sequential logic), enumeration additionally continues through it. *)

type mode = Simple | Distance_pruned

type event =
  | Completed of Path.t * int  (** complete path recorded, with length *)
  | Evicted of Path.t * int * bool  (** evicted path, length, was-complete *)

type result = {
  paths : (Path.t * int) list;
      (** complete paths with lengths, longest first *)
  steps : int;  (** extension steps performed *)
  evicted : int;
  truncated : bool;  (** stopped by the [max_steps] safety bound *)
  events : event list;  (** in order, only when [record_events] *)
}

val enumerate :
  ?mode:mode ->
  ?record_events:bool ->
  ?max_steps:int ->
  Pdf_circuit.Circuit.t ->
  Delay_model.t ->
  max_paths:int ->
  result
(** [enumerate c model ~max_paths].  Default mode is {!Distance_pruned};
    default [max_steps] is [100 * max_paths + 10_000]. *)
