module Circuit = Pdf_circuit.Circuit

type t = { stem : int array; branch : int array }

let lines c =
  let n = Circuit.num_nets c in
  { stem = Array.make n 1; branch = Array.make n 1 }

let unit_gates c =
  let n = Circuit.num_nets c in
  { stem = Array.make n 1; branch = Array.make n 0 }

let per_kind (c : Circuit.t) ~pi_weight ~branch_weight kind_weight =
  let n = Circuit.num_nets c in
  let stem =
    Array.init n (fun net ->
        match Circuit.gate_of_net c net with
        | None -> pi_weight
        | Some g -> kind_weight c.gates.(g).Circuit.kind)
  in
  { stem; branch = Array.make n branch_weight }

let random c rng ~min ~max =
  if max < min then invalid_arg "Delay_model.random: max < min";
  let n = Circuit.num_nets c in
  let stem = Array.init n (fun _ -> min + Pdf_util.Rng.int rng (max - min + 1)) in
  { stem; branch = Array.make n 0 }

let branch_cost t c net =
  if Circuit.fanout_count c net > 1 then t.branch.(net) else 0

let length t c (p : Path.t) =
  let total = ref t.stem.(p.Path.source) in
  let prev = ref p.Path.source in
  Array.iter
    (fun (h : Path.hop) ->
      total := !total + branch_cost t c !prev;
      let out = Circuit.net_of_gate c h.Path.gate in
      total := !total + t.stem.(out);
      prev := out)
    p.Path.hops;
  !total
