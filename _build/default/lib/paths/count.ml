module Circuit = Pdf_circuit.Circuit

let from_net (c : Circuit.t) =
  let n = Circuit.num_nets c in
  let counts = Array.make n 0. in
  for net = n - 1 downto 0 do
    let total = ref (if c.is_po.(net) then 1. else 0.) in
    Array.iter
      (fun (g, _pin) -> total := !total +. counts.(Circuit.net_of_gate c g))
      c.fanouts.(net);
    counts.(net) <- !total
  done;
  counts

let to_net (c : Circuit.t) =
  let n = Circuit.num_nets c in
  let counts = Array.make n 0. in
  for net = 0 to n - 1 do
    match Circuit.gate_of_net c net with
    | None -> counts.(net) <- 1.
    | Some g ->
      let total = ref 0. in
      Array.iter
        (fun fanin -> total := !total +. counts.(fanin))
        c.gates.(g).Circuit.fanins;
      counts.(net) <- !total
  done;
  counts

let total c =
  let from = from_net c in
  let sum = ref 0. in
  for pi = 0 to c.Circuit.num_pis - 1 do
    sum := !sum +. from.(pi)
  done;
  !sum

let through c =
  let from = from_net c and into = to_net c in
  Array.init (Circuit.num_nets c) (fun net -> from.(net) *. into.(net))

(* Longest-length DP over suffixes: for each net, the maximum suffix
   length and the number of suffixes achieving it. *)
let longest (c : Circuit.t) (model : Delay_model.t) =
  let n = Circuit.num_nets c in
  let best = Array.make n Distance.unreachable in
  let count = Array.make n 0. in
  for net = n - 1 downto 0 do
    let b = ref (if c.is_po.(net) then 0 else Distance.unreachable) in
    let k = ref (if c.is_po.(net) then 1. else 0.) in
    Array.iter
      (fun (g, _pin) ->
        let out = Circuit.net_of_gate c g in
        if best.(out) > Distance.unreachable then begin
          let via =
            Delay_model.branch_cost model c net + model.Delay_model.stem.(out)
            + best.(out)
          in
          if via > !b then begin
            b := via;
            k := count.(out)
          end
          else if via = !b then k := !k +. count.(out)
        end)
      c.fanouts.(net);
    best.(net) <- !b;
    count.(net) <- !k
  done;
  let overall = ref Distance.unreachable and paths = ref 0. in
  for pi = 0 to c.Circuit.num_pis - 1 do
    if best.(pi) > Distance.unreachable then begin
      let len = model.Delay_model.stem.(pi) + best.(pi) in
      if len > !overall then begin
        overall := len;
        paths := count.(pi)
      end
      else if len = !overall then paths := !paths +. count.(pi)
    end
  done;
  if !overall <= Distance.unreachable then (0, 0.) else (!overall, !paths)
