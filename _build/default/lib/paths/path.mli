(** Physical circuit paths.

    A path starts at a primary input and advances through gates; each hop
    names the gate entered and the input pin used (the fanout branch, in
    the paper's line terminology).  A path is complete when its last net is
    a primary output. *)

type hop = { gate : int; pin : int }

type t = { source : int; hops : hop array }

val source_only : int -> t

val extend : t -> hop -> t

val last_net : Pdf_circuit.Circuit.t -> t -> int

val nets : Pdf_circuit.Circuit.t -> t -> int list
(** All nets along the path, source first. *)

val num_lines : Pdf_circuit.Circuit.t -> t -> int
(** Lines in the paper's sense: one per net, plus one per traversed fanout
    branch (a stem with fanout greater than one adds a branch line). *)

val is_complete : Pdf_circuit.Circuit.t -> t -> bool

val well_formed : Pdf_circuit.Circuit.t -> t -> bool
(** The source is a PI and each hop's pin actually reads the previous
    net. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : Pdf_circuit.Circuit.t -> t -> string
(** Net names separated by commas, e.g. ["(G0,G14,G10)"]. *)
