(** Path-length histograms: the quantities [n_p(L_i)] and [N_p(L_i)] of the
    paper (Section 3.1, Table 2). *)

type row = {
  rank : int;  (** [i] — 0 for the longest length *)
  length : int;  (** [L_i] *)
  count : int;  (** [n_p(L_i)] — items of exactly this length *)
  cumulative : int;  (** [N_p(L_i)] — items of this length or longer *)
}

type t = row list
(** Rows in decreasing length order. *)

val of_lengths : int list -> t
(** Build from one length per item (paths or faults — the caller chooses
    the granularity). *)

val select_i0 : t -> threshold:int -> int option
(** The smallest rank [i0] with [N_p(L_{i0}) >= threshold] — the paper's
    rule for sizing [P0] with [threshold = N_P0].  [None] if even the full
    set is smaller than [threshold]. *)

val cutoff_length : t -> rank:int -> int
(** [L_rank].  Raises [Invalid_argument] if out of range. *)

val to_table : ?max_rows:int -> t -> Pdf_util.Table.t
(** Render like the paper's Table 2 ([i], [L_i], [N_p(L_i)]). *)
