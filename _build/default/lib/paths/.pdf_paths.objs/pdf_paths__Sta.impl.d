lib/paths/sta.ml: Array Delay_model Distance List Pdf_circuit
