lib/paths/delay_model.mli: Path Pdf_circuit Pdf_util
