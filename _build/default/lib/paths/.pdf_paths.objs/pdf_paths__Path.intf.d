lib/paths/path.mli: Pdf_circuit
