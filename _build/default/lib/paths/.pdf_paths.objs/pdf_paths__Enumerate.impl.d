lib/paths/enumerate.ml: Array Delay_model Distance Int List Path Pdf_circuit Pdf_util
