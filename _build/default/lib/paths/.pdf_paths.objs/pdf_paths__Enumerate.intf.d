lib/paths/enumerate.mli: Delay_model Path Pdf_circuit
