lib/paths/delay_model.ml: Array Path Pdf_circuit Pdf_util
