lib/paths/histogram.ml: Hashtbl Int List Option Pdf_util
