lib/paths/count.mli: Delay_model Pdf_circuit
