lib/paths/count.ml: Array Delay_model Distance Pdf_circuit
