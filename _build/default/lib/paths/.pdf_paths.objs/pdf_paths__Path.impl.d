lib/paths/path.ml: Array Int List Pdf_circuit String
