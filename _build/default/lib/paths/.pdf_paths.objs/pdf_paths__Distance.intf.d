lib/paths/distance.mli: Delay_model Path Pdf_circuit
