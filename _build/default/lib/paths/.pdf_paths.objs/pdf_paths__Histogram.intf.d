lib/paths/histogram.mli: Pdf_util
