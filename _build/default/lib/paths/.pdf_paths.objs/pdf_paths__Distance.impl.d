lib/paths/distance.ml: Array Delay_model Path Pdf_circuit
