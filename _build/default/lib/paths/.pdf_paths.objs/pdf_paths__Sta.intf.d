lib/paths/sta.mli: Delay_model Path Pdf_circuit
