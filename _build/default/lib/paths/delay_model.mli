(** Path delay models.

    A model assigns an integer weight to every stem (net) and to every
    fanout branch.  The length of a path is the sum of the stem weights of
    its nets plus the branch weight of every traversed stem whose fanout
    exceeds one.  The paper's model — "the delay of a path is equal to the
    number of lines along the path" — is {!lines} (all weights 1).  Other
    models let us exercise the enumeration under non-uniform delays. *)

type t = { stem : int array; branch : int array }

val lines : Pdf_circuit.Circuit.t -> t
(** Paper model: every stem and every branch is one line. *)

val unit_gates : Pdf_circuit.Circuit.t -> t
(** Stems weigh 1, branches are free: the length is the number of nets. *)

val per_kind :
  Pdf_circuit.Circuit.t ->
  pi_weight:int ->
  branch_weight:int ->
  (Pdf_circuit.Gate.kind -> int) ->
  t
(** Weight each gate output by its kind (e.g. heavier XOR). *)

val random :
  Pdf_circuit.Circuit.t -> Pdf_util.Rng.t -> min:int -> max:int -> t
(** Uniform random stem weights in [\[min, max\]], branch weights 0 — models
    an inaccurate/extracted delay estimate, the situation that motivates
    enriching with next-to-longest paths. *)

val length : t -> Pdf_circuit.Circuit.t -> Path.t -> int

val branch_cost : t -> Pdf_circuit.Circuit.t -> int -> int
(** Cost of leaving net [n] towards any consumer: its branch weight when
    the fanout exceeds one, else 0. *)
