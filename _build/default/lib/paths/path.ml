module Circuit = Pdf_circuit.Circuit

type hop = { gate : int; pin : int }

type t = { source : int; hops : hop array }

let source_only source = { source; hops = [||] }

let extend t hop = { t with hops = Array.append t.hops [| hop |] }

let last_net c t =
  let n = Array.length t.hops in
  if n = 0 then t.source else Circuit.net_of_gate c t.hops.(n - 1).gate

let nets c t =
  t.source :: (Array.to_list t.hops |> List.map (fun h -> Circuit.net_of_gate c h.gate))

let num_lines c t =
  let lines = ref 1 in
  let prev = ref t.source in
  Array.iter
    (fun h ->
      if Circuit.fanout_count c !prev > 1 then incr lines;
      incr lines;
      prev := Circuit.net_of_gate c h.gate)
    t.hops;
  !lines

let is_complete c t = (c : Circuit.t).is_po.(last_net c t)

let well_formed c t =
  Circuit.is_pi c t.source
  &&
  let prev = ref t.source and ok = ref true in
  Array.iter
    (fun h ->
      let gates = (c : Circuit.t).gates in
      if h.gate < 0 || h.gate >= Array.length gates then ok := false
      else begin
        let fanins = gates.(h.gate).Circuit.fanins in
        if h.pin < 0 || h.pin >= Array.length fanins || fanins.(h.pin) <> !prev
        then ok := false
        else prev := Circuit.net_of_gate c h.gate
      end)
    t.hops;
  !ok

let equal a b =
  a.source = b.source
  && Array.length a.hops = Array.length b.hops
  && Array.for_all2 (fun x y -> x.gate = y.gate && x.pin = y.pin) a.hops b.hops

let compare a b =
  let c = Int.compare a.source b.source in
  if c <> 0 then c
  else
    let la = Array.length a.hops and lb = Array.length b.hops in
    let rec go i =
      if i >= la || i >= lb then Int.compare la lb
      else
        let c = Int.compare a.hops.(i).gate b.hops.(i).gate in
        if c <> 0 then c
        else
          let c = Int.compare a.hops.(i).pin b.hops.(i).pin in
          if c <> 0 then c else go (i + 1)
    in
    go 0

let to_string c t =
  "(" ^ String.concat "," (List.map (Circuit.net_name c) (nets c t)) ^ ")"
