type row = { rank : int; length : int; count : int; cumulative : int }

type t = row list

let of_lengths lengths =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun l ->
      Hashtbl.replace tbl l (1 + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
    lengths;
  let distinct =
    Hashtbl.fold (fun l c acc -> (l, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
  in
  let _, rows =
    List.fold_left
      (fun (cum, rows) (length, count) ->
        let cumulative = cum + count in
        ( cumulative,
          { rank = List.length rows; length; count; cumulative } :: rows ))
      (0, []) distinct
  in
  List.rev rows

let select_i0 t ~threshold =
  List.find_opt (fun r -> r.cumulative >= threshold) t
  |> Option.map (fun r -> r.rank)

let cutoff_length t ~rank =
  match List.find_opt (fun r -> r.rank = rank) t with
  | Some r -> r.length
  | None -> invalid_arg "Histogram.cutoff_length: rank out of range"

let to_table ?max_rows t =
  let open Pdf_util.Table in
  let table =
    create [ ("i", Right); ("L_i", Right); ("n_p(L_i)", Right); ("N_p(L_i)", Right) ]
  in
  let rows =
    match max_rows with
    | None -> t
    | Some n -> List.filteri (fun i _ -> i < n) t
  in
  List.iter
    (fun r ->
      add_row table
        [ string_of_int r.rank; string_of_int r.length; string_of_int r.count;
          string_of_int r.cumulative ])
    rows;
  table
