(** Non-enumerative path counting.

    Practical circuits can have far too many paths to enumerate (the
    paper's reference [2] estimates coverage without enumeration); these
    dynamic programs count them exactly in one pass each.  Counts are
    returned as floats because path counts grow exponentially — beyond
    2^53 they become approximate, which is fine for reporting and for
    sizing [N_P]. *)

val total : Pdf_circuit.Circuit.t -> float
(** Number of complete paths (PI to PO). *)

val from_net : Pdf_circuit.Circuit.t -> float array
(** Per net: number of path suffixes from the net to any PO (1 for a PO
    with no fanout; a PO that feeds further logic counts both itself and
    its continuations). *)

val to_net : Pdf_circuit.Circuit.t -> float array
(** Per net: number of path prefixes from any PI to the net. *)

val through : Pdf_circuit.Circuit.t -> float array
(** Per net: number of complete paths passing through (or starting/ending
    at) the net — the product of {!to_net} and {!from_net}. *)

val longest : Pdf_circuit.Circuit.t -> Delay_model.t -> int * float
(** [(length, count)] of the longest paths under the model: the maximum
    complete-path length and how many paths achieve it.  [(0, 0.)] when
    the circuit has no complete path. *)
