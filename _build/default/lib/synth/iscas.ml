let s27_bench =
  "# s27 (ISCAS-89)\n\
   INPUT(G0)\n\
   INPUT(G1)\n\
   INPUT(G2)\n\
   INPUT(G3)\n\
   OUTPUT(G17)\n\
   G5 = DFF(G10)\n\
   G6 = DFF(G11)\n\
   G7 = DFF(G13)\n\
   G14 = NOT(G0)\n\
   G17 = NOT(G11)\n\
   G8 = AND(G14, G6)\n\
   G15 = OR(G12, G8)\n\
   G16 = OR(G3, G8)\n\
   G9 = NAND(G16, G15)\n\
   G10 = NOR(G14, G11)\n\
   G11 = NOR(G5, G9)\n\
   G12 = NOR(G1, G7)\n\
   G13 = NAND(G2, G12)\n"

let c17_bench =
  "# c17 (ISCAS-85)\n\
   INPUT(N1)\n\
   INPUT(N2)\n\
   INPUT(N3)\n\
   INPUT(N6)\n\
   INPUT(N7)\n\
   OUTPUT(N22)\n\
   OUTPUT(N23)\n\
   N10 = NAND(N1, N3)\n\
   N11 = NAND(N3, N6)\n\
   N16 = NAND(N2, N11)\n\
   N19 = NAND(N11, N7)\n\
   N22 = NAND(N10, N16)\n\
   N23 = NAND(N16, N19)\n"

let parse name text =
  match Pdf_circuit.Bench_io.parse_string ~name text with
  | Ok c -> c
  | Error e ->
    failwith
      (Printf.sprintf "embedded netlist %s: %s" name
         (Pdf_circuit.Bench_io.error_to_string e))

let s27 () = parse "s27" s27_bench

let c17 () = parse "c17" c17_bench
