(** Embedded genuine benchmark netlists.

    [s27] is printed in the paper itself (Figure 1) and is the canonical
    ISCAS-89 example; [c17] is the smallest ISCAS-85 circuit.  Both are
    public-domain teaching netlists.  The sequential [s27] is delivered as
    its combinational logic (DFF outputs become pseudo-PIs, DFF inputs
    pseudo-POs), exactly the form the paper works on. *)

val s27 : unit -> Pdf_circuit.Circuit.t
(** 7 combinational inputs (4 PIs + 3 flip-flop outputs), 4 outputs
    (1 PO + 3 flip-flop inputs), 10 gates. *)

val s27_bench : string
(** The raw [.bench] text. *)

val c17 : unit -> Pdf_circuit.Circuit.t

val c17_bench : string
