lib/synth/profiles.mli: Lazy Pdf_circuit
