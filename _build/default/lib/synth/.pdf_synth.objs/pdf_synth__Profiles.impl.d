lib/synth/profiles.ml: Generators Iscas Lazy List Pdf_circuit
