lib/synth/iscas.ml: Pdf_circuit Printf
