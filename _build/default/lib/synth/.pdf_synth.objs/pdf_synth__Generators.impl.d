lib/synth/generators.ml: Array Fun List Pdf_circuit Pdf_util Printf
