lib/synth/iscas.mli: Pdf_circuit
