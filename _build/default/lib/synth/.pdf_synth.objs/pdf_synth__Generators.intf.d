lib/synth/generators.mli: Pdf_circuit
