(* Compare the paper's four compaction heuristics (Tables 3 and 4 flavour)
   on one circuit profile: same target faults, four orderings, watch the
   test count drop while coverage stays put.

   Run with: dune exec examples/heuristics_compare.exe [-- PROFILE] *)

module Ordering = Pdf_core.Ordering
module Atpg = Pdf_core.Atpg
module Fault_sim = Pdf_core.Fault_sim
module Target_sets = Pdf_faults.Target_sets

let () =
  let profile_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "b09" in
  let profile =
    match Pdf_synth.Profiles.find profile_name with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown profile %s\n" profile_name;
      exit 1
  in
  let c = Pdf_synth.Profiles.circuit profile in
  Printf.printf "circuit %s: %s\n\n" profile_name
    (Pdf_circuit.Stats.to_string (Pdf_circuit.Stats.compute c));
  let model = Pdf_paths.Delay_model.lines c in
  let ts = Target_sets.build c model ~n_p:1000 ~n_p0:100 in
  let faults = Fault_sim.prepare c ts.Target_sets.p0 in
  Printf.printf "target set P0: %d faults on paths of length >= %d\n\n"
    (Array.length faults) ts.Target_sets.cutoff_length;
  let table =
    Pdf_util.Table.create
      ~title:"basic test generation under the four heuristics"
      [
        ("heuristic", Pdf_util.Table.Left);
        ("detected", Pdf_util.Table.Right);
        ("tests", Pdf_util.Table.Right);
        ("aborted", Pdf_util.Table.Right);
        ("time (s)", Pdf_util.Table.Right);
      ]
  in
  List.iter
    (fun ordering ->
      let res = Atpg.basic c { Atpg.ordering; seed = 11 } ~faults in
      Pdf_util.Table.add_row table
        [
          Ordering.name ordering;
          string_of_int (Fault_sim.count res.Atpg.detected);
          string_of_int (List.length res.Atpg.tests);
          string_of_int res.Atpg.primary_aborts;
          Printf.sprintf "%.2f" res.Atpg.runtime_s;
        ])
    Ordering.all;
  Pdf_util.Table.print table;
  print_endline
    "\nAll heuristics detect (almost) the same faults; dynamic compaction\n\
     cuts the test count by 2-3x, and the value-based order tends to edge\n\
     out the others — the paper selects it for the enrichment procedure."
