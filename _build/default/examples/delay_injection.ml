(* Physical validation of robust tests with the event-driven timing
   simulator: inject a distributed delay fault on a path, clock the
   circuit at its nominal critical period, and watch the faulty response
   get caught (or slip through when the fault does not consume the slack).

   Run with: dune exec examples/delay_injection.exe *)

module Fault = Pdf_faults.Fault
module Fault_sim = Pdf_core.Fault_sim
module Justify = Pdf_core.Justify
module Timing = Pdf_core.Timing
module Test_pair = Pdf_core.Test_pair

let () =
  let c = Pdf_synth.Iscas.s27 () in
  let model = Pdf_paths.Delay_model.lines c in
  let period = Timing.nominal_period c model in
  Printf.printf
    "circuit s27: nominal critical delay (clock period) = %d units\n\n" period;

  (* Take the longest-path faults and justify a robust test for each. *)
  let ts = Pdf_faults.Target_sets.build c model ~n_p:60 ~n_p0:10 in
  let faults = Fault_sim.prepare c ts.Pdf_faults.Target_sets.p in
  let engine = Justify.create c in
  let rng = Pdf_util.Rng.create 7 in

  let demo (p : Fault_sim.prepared) =
    match Justify.run engine ~rng ~reqs:p.Fault_sim.reqs with
    | None -> ()
    | Some test ->
      let slack = period - p.Fault_sim.length in
      Printf.printf "fault: %s (path length %d, slack %d)\n"
        (Fault.to_string c p.Fault_sim.fault)
        p.Fault_sim.length slack;
      Printf.printf "  robust test: %s\n" (Test_pair.to_string test);
      List.iter
        (fun extra ->
          let inject =
            { Timing.path = p.Fault_sim.fault.Fault.path; extra }
          in
          let caught =
            Timing.detects c model ~t_sample:period ~inject test
          in
          let faulty = Timing.simulate ~inject c model test in
          Printf.printf
            "  +%d delay per segment: settles at t=%-3d -> %s\n" extra
            faulty.Timing.settle_time
            (if caught then "DETECTED at the outputs"
             else "not detected (still meets timing)"))
        [ 0; slack / 2; slack + 1 ];
      print_newline ()
  in
  (* One fault on a longest path (zero slack) and one on a short path. *)
  let by_length field =
    Array.to_list faults
    |> List.sort (fun (a : Fault_sim.prepared) b ->
           field a.Fault_sim.length b.Fault_sim.length)
  in
  (match by_length (fun a b -> Int.compare b a) with
  | longest :: _ -> demo longest
  | [] -> ());
  (match by_length Int.compare with
  | shortest :: _ -> demo shortest
  | [] -> ());

  print_endline
    "A fault is physically detected exactly when the injected delay\n\
     consumes the path's slack — which is why the paper targets the\n\
     longest paths first, and why the next-to-longest paths (P1) matter\n\
     as soon as the delay estimate is off."
