(* Quickstart: load a circuit, pick target faults, generate an enriched
   test set, and fault-simulate it — the full pipeline in ~40 lines.

   Run with: dune exec examples/quickstart.exe *)

module Circuit = Pdf_circuit.Circuit
module Delay_model = Pdf_paths.Delay_model
module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Atpg = Pdf_core.Atpg
module Test_pair = Pdf_core.Test_pair

let () =
  (* 1. A circuit: the s27 of the paper's Figure 1 (or parse your own
     .bench file with Pdf_circuit.Bench_io.parse_file). *)
  let c = Pdf_synth.Iscas.s27 () in
  Printf.printf "circuit %s: %s\n\n" c.Circuit.name
    (Pdf_circuit.Stats.to_string (Pdf_circuit.Stats.compute c));

  (* 2. Target faults: enumerate the longest paths under the paper's
     line-counting delay model and split them into the critical set P0
     and the next-to-longest set P1. *)
  let model = Delay_model.lines c in
  let ts = Target_sets.build c model ~n_p:40 ~n_p0:10 in
  Printf.printf "P0: %d faults on paths of length >= %d; P1: %d faults\n\n"
    (List.length ts.Target_sets.p0)
    ts.Target_sets.cutoff_length
    (List.length ts.Target_sets.p1);

  (* 3. Enriched test generation: P0 faults determine the test count,
     P1 faults ride along for free. *)
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  let n0 = List.length ts.Target_sets.p0 in
  let p0 = List.init n0 (fun i -> i) in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let result = Atpg.enrich c ~seed:42 ~faults ~p0 ~p1 in

  Printf.printf "generated %d two-pattern tests:\n"
    (List.length result.Atpg.tests);
  List.iteri
    (fun i t -> Printf.printf "  t%-2d  %s\n" i (Test_pair.to_string t))
    result.Atpg.tests;

  (* 4. Coverage accounting. *)
  Printf.printf
    "\ndetected: %d/%d of P0, %d/%d of P0 u P1\n"
    (Atpg.count_detected result ~ids:p0)
    n0
    (Fault_sim.count result.Atpg.detected)
    (Array.length faults)
