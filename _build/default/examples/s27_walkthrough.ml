(* The paper's running example on the genuine s27 (Figure 1 / Table 1):

   - bounded path enumeration with N_P = 20 paths in the paper's "simple"
     mode, showing the eviction of the shortest complete paths;
   - the robust condition set A(p) of the example fault (the slow-to-rise
     fault on the path the paper labels (2,9,10,15));
   - a two-pattern test justified for it, and the check that the test
     indeed assigns all of A(p).

   Run with: dune exec examples/s27_walkthrough.exe *)

module Circuit = Pdf_circuit.Circuit
module Path = Pdf_paths.Path
module Enumerate = Pdf_paths.Enumerate
module Fault = Pdf_faults.Fault
module Robust = Pdf_faults.Robust
module Justify = Pdf_core.Justify
module Test_pair = Pdf_core.Test_pair

let () =
  let c = Pdf_synth.Iscas.s27 () in
  print_endline "=== s27 netlist (combinational logic) ===";
  print_string (Pdf_circuit.Bench_io.to_string c);

  print_endline "\n=== bounded enumeration, N_P = 20 paths, simple mode ===";
  let model = Pdf_paths.Delay_model.lines c in
  let r =
    Enumerate.enumerate ~mode:Enumerate.Simple ~record_events:true c model
      ~max_paths:20
  in
  List.iter
    (fun ev ->
      match ev with
      | Enumerate.Evicted (p, len, _) ->
        Printf.printf "evicted shortest complete path %s (length %d)\n"
          (Path.to_string c p) len
      | Enumerate.Completed _ -> ())
    r.Enumerate.events;
  Printf.printf "final: %d complete paths, lengths %d..%d\n"
    (List.length r.Enumerate.paths)
    (List.fold_left (fun a (_, l) -> min a l) max_int r.Enumerate.paths)
    (List.fold_left (fun a (_, l) -> max a l) 0 r.Enumerate.paths);

  print_endline "\n=== the example fault and its A(p) ===";
  (* The paper's path (2,9,10,15): source input G1, through NOR gate G12,
     observed at pseudo primary output G13 (a flip-flop data input). *)
  let net name =
    match Circuit.find_net c name with Some n -> n | None -> assert false
  in
  let hop_into gate_out prev =
    match Circuit.gate_of_net c (net gate_out) with
    | None -> assert false
    | Some g ->
      let fanins = c.Circuit.gates.(g).Circuit.fanins in
      let pin = ref (-1) in
      Array.iteri (fun i f -> if f = net prev then pin := i) fanins;
      { Path.gate = g; pin = !pin }
  in
  let path =
    Path.extend
      (Path.extend (Path.source_only (net "G1")) (hop_into "G12" "G1"))
      (hop_into "G13" "G12")
  in
  let fault = Fault.rising path in
  Printf.printf "fault: %s\n" (Fault.to_string c fault);
  let reqs =
    match Robust.conditions c fault with
    | Some reqs -> reqs
    | None -> failwith "example fault should be detectable"
  in
  List.iter
    (fun (n, req) ->
      Printf.printf "  line %-4s must carry %s\n" (Circuit.net_name c n)
        (Pdf_values.Req.to_string req))
    reqs;
  print_endline
    "  (source transition 0x1 on G1; stable 0 on the NOR side input G7\n\
    \   because the on-path transition ends at the controlling value; a\n\
    \   hazard-free 1 on the NAND side input G2.)";

  print_endline "\n=== justifying a two-pattern test for it ===";
  let engine = Justify.create c in
  let rng = Pdf_util.Rng.create 7 in
  match Justify.run engine ~rng ~reqs with
  | None -> print_endline "no test found (unexpected)"
  | Some t ->
    Printf.printf "test %s (inputs %s)\n" (Test_pair.to_string t)
      (String.concat ","
         (List.map (Circuit.net_name c) (Circuit.pis c)));
    let values = Test_pair.simulate c t in
    List.iter
      (fun (n, req) ->
        Printf.printf "  %-4s simulates to %s, requirement %s: %s\n"
          (Circuit.net_name c n)
          (Pdf_values.Triple.to_string values.(n))
          (Pdf_values.Req.to_string req)
          (if Pdf_values.Req.satisfied_by values.(n) req then "ok"
           else "VIOLATED"))
      reqs;
    Printf.printf "robustly detected: %b\n" (Test_pair.satisfies c t reqs)
