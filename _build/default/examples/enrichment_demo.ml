(* The paper's headline experiment (Tables 5 and 6 flavour) on one
   profile: generate a compact test set for P0 alone, count how many
   next-to-longest-path faults (P1) it detects *accidentally*, then run
   the enrichment procedure and show that explicitly targeting P1 as
   secondary faults detects far more of them with no extra tests.

   Run with: dune exec examples/enrichment_demo.exe [-- PROFILE] *)

module Ordering = Pdf_core.Ordering
module Atpg = Pdf_core.Atpg
module Fault_sim = Pdf_core.Fault_sim
module Target_sets = Pdf_faults.Target_sets

let () =
  let profile_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "s641" in
  let profile =
    match Pdf_synth.Profiles.find profile_name with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown profile %s\n" profile_name;
      exit 1
  in
  let c = Pdf_synth.Profiles.circuit profile in
  let model = Pdf_paths.Delay_model.lines c in
  let ts = Target_sets.build c model ~n_p:1000 ~n_p0:100 in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  let n = Array.length faults in
  let n0 = List.length ts.Target_sets.p0 in
  let p0 = List.init n0 (fun i -> i) in
  let p1 = List.init (n - n0) (fun i -> n0 + i) in
  Printf.printf "circuit %s: |P0| = %d (length >= %d), |P1| = %d\n\n"
    profile_name n0 ts.Target_sets.cutoff_length (n - n0);

  (* Basic: target P0 only, then fault-simulate P0 u P1 under its tests. *)
  let faults0 = Array.of_list (List.map (fun i -> faults.(i)) p0) in
  let basic =
    Atpg.basic c { Atpg.ordering = Ordering.Value_based; seed = 11 }
      ~faults:faults0
  in
  let accidental = Fault_sim.detected_by_tests c basic.Atpg.tests faults in
  let acc_p1 =
    List.fold_left (fun k i -> if accidental.(i) then k + 1 else k) 0 p1
  in
  Printf.printf
    "basic (P0 only):   %3d tests, %3d/%d of P0, accidentally %3d/%d of P1\n"
    (List.length basic.Atpg.tests)
    (Fault_sim.count basic.Atpg.detected)
    n0 acc_p1 (n - n0);

  (* Enrichment: same primaries, P1 as extra secondary targets. *)
  let enriched = Atpg.enrich c ~seed:11 ~faults ~p0 ~p1 in
  let enr_p1 =
    List.fold_left
      (fun k i -> if enriched.Atpg.detected.(i) then k + 1 else k)
      0 p1
  in
  Printf.printf
    "enriched (P0,P1):  %3d tests, %3d/%d of P0, explicitly    %3d/%d of P1\n"
    (List.length enriched.Atpg.tests)
    (Atpg.count_detected enriched ~ids:p0)
    n0 enr_p1 (n - n0);

  Printf.printf
    "\nP1 coverage improvement at (essentially) unchanged test count: %d -> %d\n"
    acc_p1 enr_p1
