examples/enrichment_demo.mli:
