examples/heuristics_compare.mli:
