examples/quickstart.ml: Array List Pdf_circuit Pdf_core Pdf_faults Pdf_paths Pdf_synth Printf
