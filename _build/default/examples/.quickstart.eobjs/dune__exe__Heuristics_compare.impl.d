examples/heuristics_compare.ml: Array List Pdf_circuit Pdf_core Pdf_faults Pdf_paths Pdf_synth Pdf_util Printf Sys
