examples/s27_walkthrough.ml: Array List Pdf_circuit Pdf_core Pdf_faults Pdf_paths Pdf_synth Pdf_util Pdf_values Printf String
