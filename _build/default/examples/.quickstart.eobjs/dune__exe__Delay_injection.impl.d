examples/delay_injection.ml: Array Int List Pdf_core Pdf_faults Pdf_paths Pdf_synth Pdf_util Printf
