examples/delay_injection.mli:
