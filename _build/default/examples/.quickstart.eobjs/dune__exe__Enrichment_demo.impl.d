examples/enrichment_demo.ml: Array List Pdf_core Pdf_faults Pdf_paths Pdf_synth Printf Sys
