examples/quickstart.mli:
