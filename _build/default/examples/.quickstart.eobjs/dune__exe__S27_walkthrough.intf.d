examples/s27_walkthrough.mli:
