(* Tests for Pdf_obs: metrics registry semantics (counters, gauges,
   histograms, snapshot/reset, export), nested span tracing, and the
   determinism guard — instrumentation must not change ATPG results. *)

module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span
module Log = Pdf_obs.Log

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Metrics: counters                                                   *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c" in
  check Alcotest.int "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "incr + add" 5 (Metrics.value c)

let test_counter_get_or_create () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r "c" in
  Metrics.incr a;
  let b = Metrics.counter ~registry:r "c" in
  (* Same name resolves to the same counter instance. *)
  Metrics.incr b;
  check Alcotest.int "shared instance" 2 (Metrics.value a)

let test_counter_monotonic () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c" in
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: counters are monotonic") (fun () ->
      Metrics.add c (-1))

let test_kind_clash () =
  let r = Metrics.create () in
  let _ = Metrics.counter ~registry:r "m" in
  (try
     ignore (Metrics.gauge ~registry:r "m");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Metrics: gauges and histograms                                      *)
(* ------------------------------------------------------------------ *)

let test_gauge () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "g" in
  check (Alcotest.float 0.) "zero" 0. (Metrics.gauge_value g);
  Metrics.set g 2.5;
  check (Alcotest.float 0.) "set" 2.5 (Metrics.gauge_value g);
  Metrics.set_int g 7;
  check (Alcotest.float 0.) "set_int" 7. (Metrics.gauge_value g)

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.; 2. |] "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 5.0 ];
  match Metrics.snapshot ~registry:r () with
  | [ ("h", Metrics.Histogram_v d) ] ->
    check Alcotest.(array int) "bucket counts" [| 2; 1; 1 |] d.Metrics.counts;
    check Alcotest.int "total" 4 d.Metrics.total;
    check (Alcotest.float 1e-9) "sum" 8.0 d.Metrics.sum
  | _ -> Alcotest.fail "unexpected snapshot shape"

let test_histogram_validation () =
  let r = Metrics.create () in
  (try
     ignore (Metrics.histogram ~registry:r ~buckets:[| 2.; 1. |] "h");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let _ = Metrics.histogram ~registry:r ~buckets:[| 1.; 2. |] "h2" in
  (* Re-registration with different buckets is refused. *)
  (try
     ignore (Metrics.histogram ~registry:r ~buckets:[| 3. |] "h2");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Metrics: snapshot, reset, export                                    *)
(* ------------------------------------------------------------------ *)

let test_snapshot_sorted_and_reset () =
  let r = Metrics.create () in
  let b = Metrics.counter ~registry:r "b" in
  let a = Metrics.counter ~registry:r "a" in
  let g = Metrics.gauge ~registry:r "z" in
  Metrics.incr b;
  Metrics.incr a;
  Metrics.set g 3.;
  (match Metrics.snapshot ~registry:r () with
  | [ ("a", Metrics.Counter_v 1); ("b", Metrics.Counter_v 1);
      ("z", Metrics.Gauge_v 3.) ] ->
    ()
  | _ -> Alcotest.fail "snapshot not sorted or wrong values");
  Metrics.reset ~registry:r ();
  check Alcotest.int "counter reset" 0 (Metrics.value a);
  check (Alcotest.float 0.) "gauge reset" 0. (Metrics.gauge_value g);
  (* Registrations survive a reset. *)
  check Alcotest.int "still registered" 3
    (List.length (Metrics.snapshot ~registry:r ()))

let test_csv_export () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "runs" in
  Metrics.add c 42;
  let csv = Pdf_util.Csv.render (Metrics.to_csv ~registry:r ()) in
  check Alcotest.bool "header" true
    (String.length csv >= 25 && String.sub csv 0 25 = "metric,kind,value,detail\n");
  let contains_line l =
    List.mem l (String.split_on_char '\n' csv)
  in
  check Alcotest.bool "counter row" true (contains_line "runs,counter,42,")

let test_jsonl_export () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter ~registry:r "x") 7;
  Metrics.set (Metrics.gauge ~registry:r "y") 1.5;
  let path = Filename.temp_file "pdf_obs" ".jsonl" in
  Metrics.write_jsonl ~registry:r path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check Alcotest.int "one line per metric" 2 (List.length lines);
  check Alcotest.string "counter json"
    "{\"metric\":\"x\",\"kind\":\"counter\",\"value\":7}" (List.nth lines 0);
  check Alcotest.string "gauge json"
    "{\"metric\":\"y\",\"kind\":\"gauge\",\"value\":1.5}" (List.nth lines 1)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let with_recording_sink f =
  let records = ref [] in
  Span.set_sink (Span.Emit (fun r -> records := r :: !records));
  Fun.protect ~finally:(fun () -> Span.set_sink Span.Null) f;
  List.rev !records

let test_span_nesting () =
  let records =
    with_recording_sink (fun () ->
        Span.with_ "outer" (fun () ->
            Span.with_ "inner" (fun () -> Sys.opaque_identity (ignore 0));
            Span.with_ "inner" (fun () -> Sys.opaque_identity (ignore 1))))
  in
  (* Children complete (and are emitted) before their parent. *)
  check Alcotest.(list string) "emit order"
    [ "inner"; "inner"; "outer" ]
    (List.map (fun r -> r.Span.name) records);
  check Alcotest.(list int) "depths" [ 1; 1; 0 ]
    (List.map (fun r -> r.Span.depth) records);
  let outer = List.nth records 2 in
  let inner_total =
    List.fold_left
      (fun acc (r : Span.record) ->
        if r.Span.name = "inner" then acc +. r.Span.wall_s else acc)
      0. records
  in
  (* Self time excludes child spans. *)
  check Alcotest.bool "self <= wall" true
    (outer.Span.self_s <= outer.Span.wall_s +. 1e-9);
  check Alcotest.bool "self excludes children" true
    (outer.Span.self_s <= outer.Span.wall_s -. inner_total +. 1e-6)

let test_span_exception () =
  let records =
    with_recording_sink (fun () ->
        (try Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
        Span.with_ "after" (fun () -> ()))
  in
  check Alcotest.(list string) "emitted despite exception"
    [ "boom"; "after" ]
    (List.map (fun r -> r.Span.name) records);
  (* The stack recovered: the follow-up span is top-level again. *)
  check Alcotest.int "depth recovered" 0 (List.nth records 1).Span.depth

let test_span_null_sink_passthrough () =
  Span.set_sink Span.Null;
  check Alcotest.int "result passes through" 7 (Span.with_ "x" (fun () -> 7))

let test_agg () =
  let agg = Span.agg () in
  Span.set_sink (Span.agg_sink agg);
  Fun.protect
    ~finally:(fun () -> Span.set_sink Span.Null)
    (fun () ->
      Span.with_ "a" (fun () -> Span.with_ "b" (fun () -> ()));
      Span.with_ "b" (fun () -> ()));
  let rows = Span.agg_rows agg in
  check Alcotest.int "two names" 2 (List.length rows);
  let b = List.find (fun r -> r.Span.row_name = "b") rows in
  check Alcotest.int "b count" 2 b.Span.count;
  (* Self-time totals never double count nested spans. *)
  let total = Span.agg_self_total agg in
  let sum_wall_top =
    List.fold_left
      (fun acc (r : Span.agg_row) ->
        if r.Span.row_name = "a" then acc +. r.Span.total_s else acc)
      0. rows
  in
  check Alcotest.bool "self total sane" true (total >= sum_wall_top -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_levels () =
  let saved = Log.level () in
  Fun.protect
    ~finally:(fun () -> Log.set_level saved)
    (fun () ->
      Log.set_level Log.Warn;
      check Alcotest.bool "debug off" false (Log.enabled Log.Debug);
      check Alcotest.bool "error on" true (Log.enabled Log.Error);
      Log.set_level Log.Quiet;
      check Alcotest.bool "quiet mutes errors" false (Log.enabled Log.Error);
      check Alcotest.bool "quiet never logs" false (Log.enabled Log.Quiet))

let test_log_of_string () =
  check Alcotest.bool "debug parses" true
    (Log.of_string "debug" = Some Log.Debug);
  check Alcotest.bool "unknown rejected" true (Log.of_string "chatty" = None)

(* ------------------------------------------------------------------ *)
(* Chrome trace exporter                                               *)
(* ------------------------------------------------------------------ *)

module Trace = Pdf_obs.Trace

let with_trace_collector f =
  let coll = Trace.collector () in
  Span.set_sink (Trace.sink coll);
  Fun.protect ~finally:(fun () -> Span.set_sink Span.Null) f;
  coll

let count_sub hay sub =
  let lh = String.length hay and ls = String.length sub in
  let n = ref 0 and i = ref 0 in
  while !i + ls <= lh do
    if String.sub hay !i ls = sub then begin
      incr n;
      i := !i + ls
    end
    else incr i
  done;
  !n

let test_trace_multi_track () =
  (* A 3-way barrier inside each task forces all three pool domains
     (submitter + 2 workers) to each run exactly one of the three tasks,
     so the trace deterministically carries one track per domain. *)
  let m = Mutex.create () and cv = Condition.create () in
  let arrived = ref 0 in
  let barrier () =
    Mutex.lock m;
    incr arrived;
    if !arrived >= 3 then Condition.broadcast cv
    else
      while !arrived < 3 do
        Condition.wait cv m
      done;
    Mutex.unlock m
  in
  let coll =
    with_trace_collector (fun () ->
        Pdf_par.Pool.with_pool ~jobs:3 (fun pool ->
            ignore
              (Pdf_par.Pool.map pool
                 (fun i ->
                   Span.with_ "pool-task" (fun () ->
                       Span.with_ "task-inner" barrier;
                       i * 2))
                 [ 0; 1; 2 ])))
  in
  check Alcotest.int "two spans per task" 6 (Trace.size coll);
  let events = Trace.sorted_events coll in
  let tracks =
    List.sort_uniq compare (List.map (fun e -> e.Trace.track) events)
  in
  check Alcotest.(list int) "one track per pool domain" [ 0; 1; 2 ] tracks;
  List.iter
    (fun tr ->
      let evs = List.filter (fun e -> e.Trace.track = tr) events in
      (* B/E streams are balanced and well nested per track... *)
      let depth =
        List.fold_left
          (fun d e ->
            match e.Trace.ph with
            | Trace.B -> d + 1
            | Trace.E ->
              check Alcotest.bool "E has a matching B" true (d > 0);
              d - 1)
          0 evs
      in
      check Alcotest.int "balanced B/E" 0 depth;
      (* ...and timestamps never go backwards within a track. *)
      ignore
        (List.fold_left
           (fun last e ->
             check Alcotest.bool "monotonic timestamps" true
               (e.Trace.ts_us >= last);
             e.Trace.ts_us)
           neg_infinity evs))
    tracks

let test_trace_json_shape () =
  let coll =
    with_trace_collector (fun () ->
        Span.with_ "alpha" (fun () ->
            Span.with_ "beta\"quoted" (fun () -> ())))
  in
  let json = Trace.to_json ~process_name:"unit" coll in
  (* Structural validity: braces/brackets balance outside string
     literals and every string closes. *)
  let depth = ref 0 and in_str = ref false and esc = ref false in
  let ok = ref true in
  String.iter
    (fun ch ->
      if !in_str then
        if !esc then esc := false
        else if ch = '\\' then esc := true
        else if ch = '"' then in_str := false
        else ()
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    json;
  check Alcotest.bool "brackets balance" true
    (!ok && !depth = 0 && not !in_str);
  check Alcotest.int "one traceEvents array" 1 (count_sub json "\"traceEvents\"");
  check Alcotest.int "two B events" 2 (count_sub json "\"ph\":\"B\"");
  check Alcotest.int "balanced E events" 2 (count_sub json "\"ph\":\"E\"");
  check Alcotest.bool "process metadata" true
    (count_sub json "process_name" >= 1);
  check Alcotest.bool "track metadata" true
    (count_sub json "thread_name" >= 1);
  check Alcotest.int "span names JSON-escaped" 2
    (count_sub json "beta\\\"quoted")

(* ------------------------------------------------------------------ *)
(* Histogram cumulative encoding + Prometheus exporter                 *)
(* ------------------------------------------------------------------ *)

module Prom = Pdf_obs.Prom

let test_histogram_cumulative () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.; 2. |] "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 5.0 ];
  match Metrics.snapshot ~registry:r () with
  | [ ("h", Metrics.Histogram_v d) ] ->
    check
      Alcotest.(list (pair (option (float 0.)) int))
      "cumulative counts closed by +Inf"
      [ (Some 1., 2); (Some 2., 3); (None, 4) ]
      (Metrics.cumulative d);
    check Alcotest.string "+Inf label" "+Inf" (Metrics.bound_label None)
  | _ -> Alcotest.fail "unexpected snapshot shape"

let test_prom_render () =
  check Alcotest.string "sanitize" "pdf_justify_runs"
    (Prom.sanitize "justify.runs");
  let r = Metrics.create () in
  Metrics.add (Metrics.counter ~registry:r "justify.runs") 3;
  Metrics.set (Metrics.gauge ~registry:r "atpg.progress") 1.5;
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.; 2. |] "depth" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 5.0 ];
  let lines = String.split_on_char '\n' (Prom.render ~registry:r ()) in
  let has l = check Alcotest.bool l true (List.mem l lines) in
  has "# TYPE pdf_justify_runs_total counter";
  has "pdf_justify_runs_total 3";
  has "# TYPE pdf_atpg_progress gauge";
  has "pdf_atpg_progress 1.5";
  has "# TYPE pdf_depth histogram";
  has "pdf_depth_bucket{le=\"1\"} 2";
  has "pdf_depth_bucket{le=\"2\"} 3";
  has "pdf_depth_bucket{le=\"+Inf\"} 4";
  has "pdf_depth_sum 8";
  has "pdf_depth_count 4"

let test_prom_periodic_flush () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "flips" in
  Metrics.add c 1;
  let path = Filename.temp_file "pdf_prom" ".prom" in
  (try
     ignore
       (Prom.start_periodic_flush ~registry:r ~period_s:0. path
         : unit -> unit);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let stop = Prom.start_periodic_flush ~registry:r ~period_s:0.01 path in
  Metrics.add c 41;
  stop ();
  stop ();
  (* stopping twice is harmless *)
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove path;
  (* The stop thunk performs a final write, so the file reflects the
     end state regardless of how many periods elapsed. *)
  check Alcotest.bool "final flush" true
    (List.mem "pdf_flips_total 42" (String.split_on_char '\n' text))

(* ------------------------------------------------------------------ *)
(* Provenance ledger                                                   *)
(* ------------------------------------------------------------------ *)

module Ledger = Pdf_obs.Ledger

let test_ledger_append_order_and_queries () =
  let l = Ledger.create () in
  Ledger.record l ~kind:"fault" [ ("id", Ledger.I 0); ("name", Ledger.S "a") ];
  Ledger.record l ~kind:"test" [ ("id", Ledger.I 1) ];
  Ledger.record l ~kind:"fault" [ ("id", Ledger.I 1); ("name", Ledger.S "b") ];
  check Alcotest.int "size" 3 (Ledger.size l);
  check
    Alcotest.(list string)
    "append order preserved" [ "fault"; "test"; "fault" ]
    (List.map (fun r -> r.Ledger.kind) (Ledger.records l));
  let hits =
    Ledger.find l ~kind:"fault" (fun r -> Ledger.get_int r "id" = Some 1)
  in
  check Alcotest.int "find filters by kind and predicate" 1 (List.length hits);
  let r = List.hd hits in
  check (Alcotest.option Alcotest.string) "get_string" (Some "b")
    (Ledger.get_string r "name");
  check (Alcotest.option Alcotest.int) "get_int refuses wrong type" None
    (Ledger.get_int r "name");
  check (Alcotest.option Alcotest.string) "absent field" None
    (Ledger.get_string r "missing")

let test_ledger_jsonl () =
  let l = Ledger.create () in
  Ledger.record l ~kind:"note"
    [
      ("msg", Ledger.S "say \"hi\"\n");
      ("n", Ledger.I (-3));
      ("ok", Ledger.B true);
      ("xs", Ledger.L [ Ledger.I 1; Ledger.O [ ("k", Ledger.S "v") ] ]);
    ];
  check Alcotest.string "kind first, strings escaped"
    "{\"kind\":\"note\",\"msg\":\"say \\\"hi\\\"\\n\",\"n\":-3,\"ok\":true,\"xs\":[1,{\"k\":\"v\"}]}\n"
    (Ledger.to_jsonl l)

(* ------------------------------------------------------------------ *)
(* Determinism guard: instrumentation must not change results          *)
(* ------------------------------------------------------------------ *)

let s27 = Pdf_synth.Iscas.s27 ()

let enrich_result () =
  let module Target_sets = Pdf_faults.Target_sets in
  let module Fault_sim = Pdf_core.Fault_sim in
  let module Atpg = Pdf_core.Atpg in
  let ts =
    Target_sets.build s27 (Pdf_paths.Delay_model.lines s27) ~n_p:40 ~n_p0:10
  in
  let faults = Fault_sim.prepare s27 ts.Target_sets.p in
  let n0 = List.length ts.Target_sets.p0 in
  let p0 = List.init n0 Fun.id in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let res = Atpg.enrich s27 ~seed:2002 ~faults ~p0 ~p1 in
  ( List.map Pdf_core.Test_pair.to_string res.Atpg.tests,
    Array.to_list res.Atpg.detected )

let test_null_sink_determinism () =
  (* The same seeded run must be bit-identical whether tracing is off
     (null sink), recording, or aggregating — spans and counters must not
     touch the algorithm. *)
  Span.set_sink Span.Null;
  let base = enrich_result () in
  let under_recording_sink =
    let result = ref None in
    let records =
      with_recording_sink (fun () -> result := Some (enrich_result ()))
    in
    check Alcotest.bool "spans fired" true (List.length records > 0);
    Option.get !result
  in
  let agg = Span.agg () in
  Span.set_sink (Span.agg_sink agg);
  let under_agg_sink =
    Fun.protect ~finally:(fun () -> Span.set_sink Span.Null) enrich_result
  in
  check Alcotest.(pair (list string) (list bool)) "recording sink identical"
    base under_recording_sink;
  check Alcotest.(pair (list string) (list bool)) "aggregating sink identical"
    base under_agg_sink

let test_counters_deterministic () =
  (* Two identical seeded runs advance the candidate-evaluation counter by
     exactly the same amount (guards the delta accumulator rewrite). *)
  Span.set_sink Span.Null;
  let evals = Metrics.counter "atpg.delta_evals" in
  let v0 = Metrics.value evals in
  let r1 = enrich_result () in
  let v1 = Metrics.value evals in
  let r2 = enrich_result () in
  let v2 = Metrics.value evals in
  check Alcotest.(pair (list string) (list bool)) "same results" r1 r2;
  check Alcotest.int "same delta evaluations" (v1 - v0) (v2 - v1);
  check Alcotest.bool "counter advanced" true (v1 > v0)

(* ------------------------------------------------------------------ *)
(* Provenance: ledger determinism, explain and report                  *)
(* ------------------------------------------------------------------ *)

module Provenance = Pdf_experiments.Provenance

(* The explain/why goldens below pin simulation-engine effort numbers,
   so the fixture requests that backend explicitly (the default follows
   PDF_JUSTIFY, which CI sweeps). *)
let s27_provenance =
  lazy
    (Provenance.build ~n_p:40 ~n_p0:10 ~seed:2002 ~justify:Pdf_core.Justify.Sim
       s27)

let test_ledger_packed_scalar_identical () =
  (* DESIGN.md §9: the ledger is part of the §7.3/§8.3 determinism
     contract — scalar and word-packed simulation must produce the same
     bytes.  (CI additionally diffs --jobs 1 vs 4.) *)
  let module Fault_sim = Pdf_core.Fault_sim in
  let saved = Fault_sim.packed_enabled () in
  Fun.protect
    ~finally:(fun () -> Fault_sim.set_packed saved)
    (fun () ->
      let build () =
        let p = Provenance.build ~n_p:40 ~n_p0:10 ~seed:2002 s27 in
        Pdf_obs.Ledger.to_jsonl p.Provenance.ledger
      in
      Fault_sim.set_packed false;
      let scalar = build () in
      Fault_sim.set_packed true;
      let packed = build () in
      check Alcotest.bool "ledger non-empty" true (String.length scalar > 0);
      check Alcotest.string "byte-identical scalar vs packed" scalar packed)

let test_explain_golden () =
  let p = Lazy.force s27_provenance in
  match Provenance.explain p "3" with
  | Error e -> Alcotest.fail e
  | Ok text ->
    check Alcotest.string "explain fault 3 on s27"
      "fault #3: slow-to-rise (G0,G14,G8,G15,G9,G11,G10)\n\
      \  detected by test 1, via folded\n\
      \  test 1: primary slow-to-rise (G0,G14,G8,G15,G9,G11,G17), pattern \
       0001010/1101010\n\
      \  6 secondary fold(s) into this test\n\
      \  this fault folded at step 3 (free)\n\
      \  justification effort: 2 runs, 80 trials, 0 backtracks\n"
      text

let test_explain_unknown () =
  let p = Lazy.force s27_provenance in
  match Provenance.explain p "no-such-net" with
  | Error _ -> ()
  | Ok text -> Alcotest.fail ("expected Error, got: " ^ text)

let test_report_consistent () =
  let p = Lazy.force s27_provenance in
  let rep = Provenance.report p in
  let contains sub =
    let lh = String.length rep and ls = String.length sub in
    let rec at i = i + ls <= lh && (String.sub rep i ls = sub || at (i + 1)) in
    at 0
  in
  (* Every enumerated fault ends with exactly one disposition. *)
  check Alcotest.bool "consistency line" true
    (contains "consistent (each fault has exactly one disposition)");
  check Alcotest.bool "not flagged inconsistent" false
    (contains "INCONSISTENT");
  check Alcotest.bool "disposition summary present" true
    (contains "detected via folding")

(* ------------------------------------------------------------------ *)
(* Attribution: sheet algebra, profile determinism, why forensics      *)
(* ------------------------------------------------------------------ *)

module Attrib = Pdf_obs.Attrib
module Hotspots = Pdf_experiments.Hotspots
module Wsim = Pdf_bitsim.Wsim

let contains s sub =
  let ls = String.length s and lu = String.length sub in
  let rec at i = i + lu <= ls && (String.sub s i lu = sub || at (i + 1)) in
  at 0

let test_attrib_sheet_ops () =
  let store = Attrib.create ~nets:4 in
  let s1 = Attrib.fresh store in
  s1.Attrib.trials.(1) <- 3;
  s1.Attrib.t_trials <- 3;
  s1.Attrib.inc_resims.(2) <- 5;
  s1.Attrib.t_inc_resims <- 5;
  let s2 = Attrib.fresh store in
  s2.Attrib.trials.(1) <- 2;
  s2.Attrib.t_trials <- 2;
  s2.Attrib.conflicts.(0) <- 1;
  s2.Attrib.t_conflicts <- 1;
  Attrib.merge store s1;
  Attrib.merge store s2;
  let m = Attrib.snapshot store in
  check Alcotest.int "merged per-net trials" 5 m.Attrib.trials.(1);
  check Alcotest.int "merged trial total" 5 m.Attrib.t_trials;
  check Alcotest.int "merged conflicts" 1 m.Attrib.conflicts.(0);
  check Alcotest.int "merged inc total" 5 m.Attrib.t_inc_resims;
  (* Semantic totals exclude the engine-variant incremental counter. *)
  check Alcotest.int "inc_resims not semantic" 0 (Attrib.semantic_total m 2);
  check Alcotest.int "semantic per-net" 5 (Attrib.semantic_total m 1);
  check Alcotest.int "semantic grand total" 6 (Attrib.grand_total m);
  (* Snapshots are copies: later merges don't mutate them. *)
  let s3 = Attrib.fresh store in
  s3.Attrib.trials.(1) <- 10;
  s3.Attrib.t_trials <- 10;
  Attrib.merge store s3;
  check Alcotest.int "snapshot unaffected by later merge" 5
    m.Attrib.trials.(1)

(* DESIGN.md §14: the exported profile carries only semantic effort, so
   its bytes must survive any (jobs, incremental-engine) combination. *)
let test_profile_grid_identical () =
  let saved_jobs = Pdf_par.Pool.default_jobs () in
  let saved_inc = Wsim.incsim_enabled () in
  Fun.protect
    ~finally:(fun () ->
      Pdf_par.Pool.set_default_jobs saved_jobs;
      Wsim.set_incsim saved_inc)
  @@ fun () ->
  let outputs =
    List.concat_map
      (fun jobs ->
        List.map
          (fun inc ->
            Pdf_par.Pool.set_default_jobs jobs;
            Wsim.set_incsim inc;
            let p = Hotspots.profile ~n_p:40 ~n_p0:10 ~seed:2002 s27 in
            (Hotspots.render p, Hotspots.to_json p))
          [ false; true ])
      [ 1; 4 ]
  in
  match outputs with
  | [] -> assert false
  | (r0, j0) :: rest ->
    check Alcotest.bool "render non-empty" true (String.length r0 > 0);
    check Alcotest.bool "json carries the schema id" true
      (contains j0 "\"schema\": \"pdf-profile-report/1\"");
    List.iteri
      (fun i (r, j) ->
        check Alcotest.string
          (Printf.sprintf "render %d byte-identical" (i + 1))
          r0 r;
        check Alcotest.string
          (Printf.sprintf "json %d byte-identical" (i + 1))
          j0 j)
      rest

let test_profile_conservation () =
  let p = Hotspots.profile ~n_p:40 ~n_p0:10 ~seed:2002 s27 in
  let levels = Hotspots.per_level p in
  check Alcotest.int "per-level histogram sums to the grand total"
    (Attrib.grand_total p.Hotspots.sheet)
    (Array.fold_left ( + ) 0 levels);
  check Alcotest.bool "some effort was charged" true
    (Attrib.grand_total p.Hotspots.sheet > 0);
  let hot = Hotspots.top ~k:3 p in
  check Alcotest.bool "top-3 is at most 3" true (List.length hot <= 3);
  List.iter
    (fun (h : Hotspots.hot) ->
      check Alcotest.int "row total matches the sheet" h.Hotspots.total
        (Attrib.semantic_total p.Hotspots.sheet h.Hotspots.net))
    hot

let test_profile_counter_track () =
  let p = Hotspots.profile ~n_p:40 ~n_p0:10 ~seed:2002 s27 in
  let coll = Trace.collector () in
  Hotspots.counter_track p coll;
  let json = Trace.to_json ~process_name:"unit" coll in
  check Alcotest.bool "trace has counter events" true
    (contains json "\"ph\":\"C\"");
  check Alcotest.bool "counter track is named" true
    (contains json "s27 effort/level")

(* The ledger's per-fault effort records partition the run's global
   justification counters: every search targeted exactly one fault. *)
let test_effort_conservation () =
  let p = Lazy.force s27_provenance in
  let faults =
    Pdf_obs.Ledger.find p.Provenance.ledger ~kind:"fault" (fun _ -> true)
  in
  let sum k =
    List.fold_left
      (fun acc r ->
        acc
        +
        match Pdf_obs.Ledger.field r "effort" with
        | Some (Pdf_obs.Ledger.O kvs) -> (
          match List.assoc_opt k kvs with
          | Some (Pdf_obs.Ledger.I i) -> i
          | _ -> 0)
        | _ -> 0)
      0 faults
  in
  check Alcotest.int "per-fault runs sum to the run total"
    p.Provenance.result.Pdf_core.Atpg.justification_runs (sum "runs");
  check Alcotest.int "per-fault trials sum to the run total"
    p.Provenance.result.Pdf_core.Atpg.justification_trials (sum "trials")

let test_why_golden () =
  let p = Lazy.force s27_provenance in
  (match Provenance.why p "0" with
  | Error e -> Alcotest.fail e
  | Ok text ->
    check Alcotest.string "why fault 0 on s27 (forensics present)"
      "fault #0: slow-to-rise (G0,G14,G8,G16,G9,G11,G17)\n\
      \  detected by test 0, via primary\n\
      \  test 0: primary slow-to-rise (G0,G14,G8,G16,G9,G11,G17), pattern \
       0001010/1000010\n\
      \  4 secondary fold(s) into this test\n\
      \  this fault folded at step 1 (free)\n\
      \  justification effort: 2 runs, 66 trials, 0 backtracks\n\
      \  justification effort charged to this fault: 1 run(s), 36 trials, \
       0 backtracks, 52 resim gate evals\n\
      \  last requirement conflict: net G15 (id 11, level 3); deepest \
       conflict at level 3\n"
      text);
  match Provenance.why p "3" with
  | Error e -> Alcotest.fail e
  | Ok text ->
    check Alcotest.string "why fault 3 on s27 (never targeted)"
      "fault #3: slow-to-rise (G0,G14,G8,G15,G9,G11,G10)\n\
      \  detected by test 1, via folded\n\
      \  test 1: primary slow-to-rise (G0,G14,G8,G15,G9,G11,G17), pattern \
       0001010/1101010\n\
      \  6 secondary fold(s) into this test\n\
      \  this fault folded at step 3 (free)\n\
      \  justification effort: 2 runs, 80 trials, 0 backtracks\n\
      \  no justification search ever targeted this fault\n"
      text

let test_why_unknown () =
  let p = Lazy.force s27_provenance in
  match Provenance.why p "no-such-net" with
  | Error _ -> ()
  | Ok text -> Alcotest.fail ("expected Error, got: " ^ text)

let test_report_breakdown () =
  let p = Lazy.force s27_provenance in
  let rep = Provenance.report p in
  check Alcotest.bool "abort/reject breakdown present" true
    (contains rep "abort/reject breakdown");
  check Alcotest.bool "median column present" true
    (contains rep "med j.trials")

let () =
  Alcotest.run "pdf_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "get or create" `Quick test_counter_get_or_create;
          Alcotest.test_case "monotonic" `Quick test_counter_monotonic;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick
            test_histogram_validation;
          Alcotest.test_case "snapshot + reset" `Quick
            test_snapshot_sorted_and_reset;
          Alcotest.test_case "csv export" `Quick test_csv_export;
          Alcotest.test_case "jsonl export" `Quick test_jsonl_export;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "null sink passthrough" `Quick
            test_span_null_sink_passthrough;
          Alcotest.test_case "aggregation" `Quick test_agg;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels" `Quick test_log_levels;
          Alcotest.test_case "of_string" `Quick test_log_of_string;
        ] );
      ( "trace",
        [
          Alcotest.test_case "one track per pool domain" `Quick
            test_trace_multi_track;
          Alcotest.test_case "json shape" `Quick test_trace_json_shape;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "histogram cumulative" `Quick
            test_histogram_cumulative;
          Alcotest.test_case "render" `Quick test_prom_render;
          Alcotest.test_case "periodic flush" `Quick test_prom_periodic_flush;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "append order + queries" `Quick
            test_ledger_append_order_and_queries;
          Alcotest.test_case "jsonl encoding" `Quick test_ledger_jsonl;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "null sink identical results" `Quick
            test_null_sink_determinism;
          Alcotest.test_case "counters deterministic" `Quick
            test_counters_deterministic;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "ledger packed = scalar" `Quick
            test_ledger_packed_scalar_identical;
          Alcotest.test_case "explain golden" `Quick test_explain_golden;
          Alcotest.test_case "explain unknown query" `Quick
            test_explain_unknown;
          Alcotest.test_case "report consistency" `Quick
            test_report_consistent;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "sheet algebra" `Quick test_attrib_sheet_ops;
          Alcotest.test_case "profile identical across jobs x engine"
            `Quick test_profile_grid_identical;
          Alcotest.test_case "profile conservation" `Quick
            test_profile_conservation;
          Alcotest.test_case "profile counter track" `Quick
            test_profile_counter_track;
          Alcotest.test_case "ledger effort conservation" `Quick
            test_effort_conservation;
          Alcotest.test_case "why golden" `Quick test_why_golden;
          Alcotest.test_case "why unknown query" `Quick test_why_unknown;
          Alcotest.test_case "report abort breakdown" `Quick
            test_report_breakdown;
        ] );
    ]
