(* Tests for Pdf_obs: metrics registry semantics (counters, gauges,
   histograms, snapshot/reset, export), nested span tracing, and the
   determinism guard — instrumentation must not change ATPG results. *)

module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span
module Log = Pdf_obs.Log

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Metrics: counters                                                   *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c" in
  check Alcotest.int "starts at zero" 0 (Metrics.value c);
  Metrics.incr c;
  Metrics.add c 4;
  check Alcotest.int "incr + add" 5 (Metrics.value c)

let test_counter_get_or_create () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r "c" in
  Metrics.incr a;
  let b = Metrics.counter ~registry:r "c" in
  (* Same name resolves to the same counter instance. *)
  Metrics.incr b;
  check Alcotest.int "shared instance" 2 (Metrics.value a)

let test_counter_monotonic () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "c" in
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: counters are monotonic") (fun () ->
      Metrics.add c (-1))

let test_kind_clash () =
  let r = Metrics.create () in
  let _ = Metrics.counter ~registry:r "m" in
  (try
     ignore (Metrics.gauge ~registry:r "m");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Metrics: gauges and histograms                                      *)
(* ------------------------------------------------------------------ *)

let test_gauge () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "g" in
  check (Alcotest.float 0.) "zero" 0. (Metrics.gauge_value g);
  Metrics.set g 2.5;
  check (Alcotest.float 0.) "set" 2.5 (Metrics.gauge_value g);
  Metrics.set_int g 7;
  check (Alcotest.float 0.) "set_int" 7. (Metrics.gauge_value g)

let test_histogram_buckets () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.; 2. |] "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 5.0 ];
  match Metrics.snapshot ~registry:r () with
  | [ ("h", Metrics.Histogram_v d) ] ->
    check Alcotest.(array int) "bucket counts" [| 2; 1; 1 |] d.Metrics.counts;
    check Alcotest.int "total" 4 d.Metrics.total;
    check (Alcotest.float 1e-9) "sum" 8.0 d.Metrics.sum
  | _ -> Alcotest.fail "unexpected snapshot shape"

let test_histogram_validation () =
  let r = Metrics.create () in
  (try
     ignore (Metrics.histogram ~registry:r ~buckets:[| 2.; 1. |] "h");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let _ = Metrics.histogram ~registry:r ~buckets:[| 1.; 2. |] "h2" in
  (* Re-registration with different buckets is refused. *)
  (try
     ignore (Metrics.histogram ~registry:r ~buckets:[| 3. |] "h2");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Metrics: snapshot, reset, export                                    *)
(* ------------------------------------------------------------------ *)

let test_snapshot_sorted_and_reset () =
  let r = Metrics.create () in
  let b = Metrics.counter ~registry:r "b" in
  let a = Metrics.counter ~registry:r "a" in
  let g = Metrics.gauge ~registry:r "z" in
  Metrics.incr b;
  Metrics.incr a;
  Metrics.set g 3.;
  (match Metrics.snapshot ~registry:r () with
  | [ ("a", Metrics.Counter_v 1); ("b", Metrics.Counter_v 1);
      ("z", Metrics.Gauge_v 3.) ] ->
    ()
  | _ -> Alcotest.fail "snapshot not sorted or wrong values");
  Metrics.reset ~registry:r ();
  check Alcotest.int "counter reset" 0 (Metrics.value a);
  check (Alcotest.float 0.) "gauge reset" 0. (Metrics.gauge_value g);
  (* Registrations survive a reset. *)
  check Alcotest.int "still registered" 3
    (List.length (Metrics.snapshot ~registry:r ()))

let test_csv_export () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "runs" in
  Metrics.add c 42;
  let csv = Pdf_util.Csv.render (Metrics.to_csv ~registry:r ()) in
  check Alcotest.bool "header" true
    (String.length csv >= 25 && String.sub csv 0 25 = "metric,kind,value,detail\n");
  let contains_line l =
    List.mem l (String.split_on_char '\n' csv)
  in
  check Alcotest.bool "counter row" true (contains_line "runs,counter,42,")

let test_jsonl_export () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter ~registry:r "x") 7;
  Metrics.set (Metrics.gauge ~registry:r "y") 1.5;
  let path = Filename.temp_file "pdf_obs" ".jsonl" in
  Metrics.write_jsonl ~registry:r path;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove path;
  let lines = List.rev !lines in
  check Alcotest.int "one line per metric" 2 (List.length lines);
  check Alcotest.string "counter json"
    "{\"metric\":\"x\",\"kind\":\"counter\",\"value\":7}" (List.nth lines 0);
  check Alcotest.string "gauge json"
    "{\"metric\":\"y\",\"kind\":\"gauge\",\"value\":1.5}" (List.nth lines 1)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let with_recording_sink f =
  let records = ref [] in
  Span.set_sink (Span.Emit (fun r -> records := r :: !records));
  Fun.protect ~finally:(fun () -> Span.set_sink Span.Null) f;
  List.rev !records

let test_span_nesting () =
  let records =
    with_recording_sink (fun () ->
        Span.with_ "outer" (fun () ->
            Span.with_ "inner" (fun () -> Sys.opaque_identity (ignore 0));
            Span.with_ "inner" (fun () -> Sys.opaque_identity (ignore 1))))
  in
  (* Children complete (and are emitted) before their parent. *)
  check Alcotest.(list string) "emit order"
    [ "inner"; "inner"; "outer" ]
    (List.map (fun r -> r.Span.name) records);
  check Alcotest.(list int) "depths" [ 1; 1; 0 ]
    (List.map (fun r -> r.Span.depth) records);
  let outer = List.nth records 2 in
  let inner_total =
    List.fold_left
      (fun acc (r : Span.record) ->
        if r.Span.name = "inner" then acc +. r.Span.wall_s else acc)
      0. records
  in
  (* Self time excludes child spans. *)
  check Alcotest.bool "self <= wall" true
    (outer.Span.self_s <= outer.Span.wall_s +. 1e-9);
  check Alcotest.bool "self excludes children" true
    (outer.Span.self_s <= outer.Span.wall_s -. inner_total +. 1e-6)

let test_span_exception () =
  let records =
    with_recording_sink (fun () ->
        (try Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
        Span.with_ "after" (fun () -> ()))
  in
  check Alcotest.(list string) "emitted despite exception"
    [ "boom"; "after" ]
    (List.map (fun r -> r.Span.name) records);
  (* The stack recovered: the follow-up span is top-level again. *)
  check Alcotest.int "depth recovered" 0 (List.nth records 1).Span.depth

let test_span_null_sink_passthrough () =
  Span.set_sink Span.Null;
  check Alcotest.int "result passes through" 7 (Span.with_ "x" (fun () -> 7))

let test_agg () =
  let agg = Span.agg () in
  Span.set_sink (Span.agg_sink agg);
  Fun.protect
    ~finally:(fun () -> Span.set_sink Span.Null)
    (fun () ->
      Span.with_ "a" (fun () -> Span.with_ "b" (fun () -> ()));
      Span.with_ "b" (fun () -> ()));
  let rows = Span.agg_rows agg in
  check Alcotest.int "two names" 2 (List.length rows);
  let b = List.find (fun r -> r.Span.row_name = "b") rows in
  check Alcotest.int "b count" 2 b.Span.count;
  (* Self-time totals never double count nested spans. *)
  let total = Span.agg_self_total agg in
  let sum_wall_top =
    List.fold_left
      (fun acc (r : Span.agg_row) ->
        if r.Span.row_name = "a" then acc +. r.Span.total_s else acc)
      0. rows
  in
  check Alcotest.bool "self total sane" true (total >= sum_wall_top -. 1e-6)

(* ------------------------------------------------------------------ *)
(* Log                                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_levels () =
  let saved = Log.level () in
  Fun.protect
    ~finally:(fun () -> Log.set_level saved)
    (fun () ->
      Log.set_level Log.Warn;
      check Alcotest.bool "debug off" false (Log.enabled Log.Debug);
      check Alcotest.bool "error on" true (Log.enabled Log.Error);
      Log.set_level Log.Quiet;
      check Alcotest.bool "quiet mutes errors" false (Log.enabled Log.Error);
      check Alcotest.bool "quiet never logs" false (Log.enabled Log.Quiet))

let test_log_of_string () =
  check Alcotest.bool "debug parses" true
    (Log.of_string "debug" = Some Log.Debug);
  check Alcotest.bool "unknown rejected" true (Log.of_string "chatty" = None)

(* ------------------------------------------------------------------ *)
(* Determinism guard: instrumentation must not change results          *)
(* ------------------------------------------------------------------ *)

let s27 = Pdf_synth.Iscas.s27 ()

let enrich_result () =
  let module Target_sets = Pdf_faults.Target_sets in
  let module Fault_sim = Pdf_core.Fault_sim in
  let module Atpg = Pdf_core.Atpg in
  let ts =
    Target_sets.build s27 (Pdf_paths.Delay_model.lines s27) ~n_p:40 ~n_p0:10
  in
  let faults = Fault_sim.prepare s27 ts.Target_sets.p in
  let n0 = List.length ts.Target_sets.p0 in
  let p0 = List.init n0 Fun.id in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let res = Atpg.enrich s27 ~seed:2002 ~faults ~p0 ~p1 in
  ( List.map Pdf_core.Test_pair.to_string res.Atpg.tests,
    Array.to_list res.Atpg.detected )

let test_null_sink_determinism () =
  (* The same seeded run must be bit-identical whether tracing is off
     (null sink), recording, or aggregating — spans and counters must not
     touch the algorithm. *)
  Span.set_sink Span.Null;
  let base = enrich_result () in
  let under_recording_sink =
    let result = ref None in
    let records =
      with_recording_sink (fun () -> result := Some (enrich_result ()))
    in
    check Alcotest.bool "spans fired" true (List.length records > 0);
    Option.get !result
  in
  let agg = Span.agg () in
  Span.set_sink (Span.agg_sink agg);
  let under_agg_sink =
    Fun.protect ~finally:(fun () -> Span.set_sink Span.Null) enrich_result
  in
  check Alcotest.(pair (list string) (list bool)) "recording sink identical"
    base under_recording_sink;
  check Alcotest.(pair (list string) (list bool)) "aggregating sink identical"
    base under_agg_sink

let test_counters_deterministic () =
  (* Two identical seeded runs advance the candidate-evaluation counter by
     exactly the same amount (guards the delta accumulator rewrite). *)
  Span.set_sink Span.Null;
  let evals = Metrics.counter "atpg.delta_evals" in
  let v0 = Metrics.value evals in
  let r1 = enrich_result () in
  let v1 = Metrics.value evals in
  let r2 = enrich_result () in
  let v2 = Metrics.value evals in
  check Alcotest.(pair (list string) (list bool)) "same results" r1 r2;
  check Alcotest.int "same delta evaluations" (v1 - v0) (v2 - v1);
  check Alcotest.bool "counter advanced" true (v1 > v0)

let () =
  Alcotest.run "pdf_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "get or create" `Quick test_counter_get_or_create;
          Alcotest.test_case "monotonic" `Quick test_counter_monotonic;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick
            test_histogram_validation;
          Alcotest.test_case "snapshot + reset" `Quick
            test_snapshot_sorted_and_reset;
          Alcotest.test_case "csv export" `Quick test_csv_export;
          Alcotest.test_case "jsonl export" `Quick test_jsonl_export;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "null sink passthrough" `Quick
            test_span_null_sink_passthrough;
          Alcotest.test_case "aggregation" `Quick test_agg;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels" `Quick test_log_levels;
          Alcotest.test_case "of_string" `Quick test_log_of_string;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "null sink identical results" `Quick
            test_null_sink_determinism;
          Alcotest.test_case "counters deterministic" `Quick
            test_counters_deterministic;
        ] );
    ]
