(* Tests for Pdf_experiments: embedded paper data, workload scales, the
   per-circuit runner (integration) and table rendering. *)

module Paper_data = Pdf_experiments.Paper_data
module Workload = Pdf_experiments.Workload
module Runner = Pdf_experiments.Runner
module Tables = Pdf_experiments.Tables
module Profiles = Pdf_synth.Profiles

let check = Alcotest.check

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Paper data sanity                                                    *)
(* ------------------------------------------------------------------ *)

let test_paper_table2_monotone () =
  let rec go = function
    | (l1, n1) :: ((l2, n2) :: _ as rest) ->
      check Alcotest.bool "lengths strictly decrease" true (l1 > l2);
      check Alcotest.bool "cumulative strictly increases" true (n1 < n2);
      go rest
    | [ _ ] | [] -> ()
  in
  go Paper_data.table_2;
  check Alcotest.int "20 rows" 20 (List.length Paper_data.table_2);
  (* The two values quoted in the paper's text. *)
  check Alcotest.bool "L0 = 96 with 4 faults" true
    (List.hd Paper_data.table_2 = (96, 4))

let test_paper_tables_shape () =
  check Alcotest.int "tables 3/4: 8 circuits" 8 (List.length Paper_data.tables_3_4);
  check Alcotest.int "table 5: 8 circuits" 8 (List.length Paper_data.table_5);
  check Alcotest.int "table 6: 11 rows" 11 (List.length Paper_data.table_6);
  check Alcotest.int "table 7: 8 rows" 8 (List.length Paper_data.table_7)

let test_paper_detected_within_totals () =
  List.iter
    (fun (r : Paper_data.basic_row) ->
      let a, b, c, d = r.Paper_data.detected in
      List.iter
        (fun v ->
          check Alcotest.bool "detected <= total" true
            (v <= r.Paper_data.p0_faults))
        [ a; b; c; d ])
    Paper_data.tables_3_4;
  List.iter
    (fun (r : Paper_data.enrich_row) ->
      check Alcotest.bool "P0 det <= P0" true
        (r.Paper_data.p0_detected <= r.Paper_data.p0_total);
      check Alcotest.bool "P det <= P" true
        (r.Paper_data.p_detected <= r.Paper_data.p_total);
      check Alcotest.bool "P0 subset of P" true
        (r.Paper_data.p0_total <= r.Paper_data.p_total))
    Paper_data.table_6

let test_paper_enrichment_never_fewer () =
  (* The paper's headline: enrichment detects at least as many P0 u P1
     faults as the best basic heuristic, at comparable test counts. *)
  List.iter
    (fun (r6 : Paper_data.enrich_row) ->
      match
        List.find_opt
          (fun (r5 : Paper_data.sim_row) ->
            r5.Paper_data.circuit = r6.Paper_data.circuit)
          Paper_data.table_5
      with
      | None -> ()
      | Some r5 ->
        let a, b, c, d = r5.Paper_data.detected in
        let best = max (max a b) (max c d) in
        check Alcotest.bool
          (r6.Paper_data.circuit ^ ": enrichment beats accidental")
          true
          (r6.Paper_data.p_detected >= best))
    Paper_data.table_6

(* ------------------------------------------------------------------ *)
(* Workload                                                             *)
(* ------------------------------------------------------------------ *)

let test_workload_scales () =
  check Alcotest.int "paper N_P" 10_000 Workload.paper.Workload.n_p;
  check Alcotest.int "paper N_P0" 1_000 Workload.paper.Workload.n_p0;
  check Alcotest.bool "small is smaller" true
    (Workload.small.Workload.n_p < Workload.paper.Workload.n_p);
  check Alcotest.bool "labels roundtrip" true
    (Workload.of_label "small" = Some Workload.small
    && Workload.of_label "PAPER" = Some Workload.paper
    && Workload.of_label "huge" = None)

(* ------------------------------------------------------------------ *)
(* Runner (integration, on the tiny genuine s27)                        *)
(* ------------------------------------------------------------------ *)

let tiny_scale = { Workload.label = "tiny"; n_p = 40; n_p0 = 10 }

let s27_profile = Option.get (Profiles.find "s27")

let run = Runner.run ~seed:3 tiny_scale s27_profile

let test_runner_shape () =
  check Alcotest.int "four basic runs" 4 (List.length run.Runner.basics);
  check Alcotest.bool "P0 nonempty" true (run.Runner.p0_total > 0);
  check Alcotest.bool "P0 <= P" true (run.Runner.p0_total <= run.Runner.p_total)

let test_runner_coverage_bounds () =
  List.iter
    (fun (b : Runner.basic_run) ->
      check Alcotest.bool "P0 detected bounded" true
        (b.Runner.p0_detected <= run.Runner.p0_total);
      check Alcotest.bool "P detected bounded" true
        (b.Runner.p_detected <= run.Runner.p_total);
      check Alcotest.bool "P detect >= P0 detect" true
        (b.Runner.p_detected >= b.Runner.p0_detected);
      check Alcotest.bool "tests positive" true (b.Runner.tests > 0))
    run.Runner.basics;
  check Alcotest.bool "enrich bounded" true
    (run.Runner.enrich_p_detected <= run.Runner.p_total)

let test_runner_enrichment_dominates () =
  (* On s27 enrichment reaches full coverage of P0 u P1. *)
  List.iter
    (fun (b : Runner.basic_run) ->
      check Alcotest.bool "enrichment >= accidental" true
        (run.Runner.enrich_p_detected >= b.Runner.p_detected))
    run.Runner.basics

let test_runner_without_basics () =
  let r = Runner.run ~seed:3 ~with_basics:false tiny_scale s27_profile in
  check Alcotest.int "only value-based run" 1 (List.length r.Runner.basics);
  check Alcotest.bool "ratio finite" true
    (match Runner.ratio r with Some x -> x >= 0. | None -> true)

(* ------------------------------------------------------------------ *)
(* Table rendering                                                      *)
(* ------------------------------------------------------------------ *)

let test_table1_renders () =
  let s = Tables.table1 () in
  check Alcotest.bool "mentions final set" true (contains s "final set");
  check Alcotest.bool "shows A(p)" true (contains s "A(p)");
  check Alcotest.bool "shows the source transition" true (contains s "0x1");
  check Alcotest.bool "shows eviction" true (contains s "evicted")

let test_tables_render_runs () =
  let runs = [ run ] in
  let t3 = Tables.table3 runs and t4 = Tables.table4 runs in
  let t5 = Tables.table5 runs and t6 = Tables.table6 runs in
  let t7 = Tables.table7 runs in
  List.iter
    (fun (name, s) ->
      check Alcotest.bool (name ^ " mentions s27") true (contains s "s27");
      check Alcotest.bool (name ^ " nonempty") true (String.length s > 40))
    [ ("t3", t3); ("t4", t4); ("t5", t5); ("t6", t6); ("t7", t7) ];
  List.iter
    (fun h ->
      check Alcotest.bool ("t3 has column " ^ h) true (contains t3 h))
    [ "uncomp"; "arbit"; "length"; "values" ]

let test_paper_reference_renders () =
  let s = Tables.paper_reference () in
  List.iter
    (fun needle ->
      check Alcotest.bool ("mentions " ^ needle) true (contains s needle))
    [ "s641"; "s9234*"; "1538"; "Paper Table 7" ]


(* ------------------------------------------------------------------ *)
(* Estimation error and ablations                                       *)
(* ------------------------------------------------------------------ *)

module Estimation_error = Pdf_experiments.Estimation_error
module Ablations = Pdf_experiments.Ablations

let test_estimation_error_zero_noise () =
  (* Zero noise scales all weights by 100: path order is unchanged, so
     every true-critical fault sits in the nominal P0. *)
  let r = Estimation_error.run ~seed:3 ~noise_pct:0 tiny_scale s27_profile in
  check Alcotest.int "none misplaced" 0 r.Estimation_error.in_nominal_p1;
  check Alcotest.int "none missed" 0 r.Estimation_error.outside_p;
  check Alcotest.int "classification covers all"
    r.Estimation_error.true_critical_total
    (r.Estimation_error.in_nominal_p0 + r.Estimation_error.in_nominal_p1
   + r.Estimation_error.outside_p)

let test_estimation_error_bounds () =
  let r = Estimation_error.run ~seed:3 ~noise_pct:30 tiny_scale s27_profile in
  check Alcotest.bool "basic covers within total" true
    (r.Estimation_error.basic_covered <= r.Estimation_error.true_critical_total);
  check Alcotest.bool "enriched covers within total" true
    (r.Estimation_error.enriched_covered
    <= r.Estimation_error.true_critical_total);
  check Alcotest.int "classification covers all"
    r.Estimation_error.true_critical_total
    (r.Estimation_error.in_nominal_p0 + r.Estimation_error.in_nominal_p1
   + r.Estimation_error.outside_p);
  check Alcotest.int "row has as many cells as headers"
    (List.length Estimation_error.table_header)
    (List.length (Estimation_error.to_row r))

let test_ablation_tables_render () =
  let checks =
    [
      ("E1", Ablations.estimation_error ~seed:3 tiny_scale ~noises:[ 10 ]
               [ s27_profile ]);
      ("E2", Ablations.multiset ~seed:3 tiny_scale [ s27_profile ]);
      ("E3", Ablations.static_compaction ~seed:3 tiny_scale [ s27_profile ]);
      ("E4", Ablations.criterion ~seed:3 tiny_scale [ s27_profile ]);
    ]
  in
  List.iter
    (fun (name, s) ->
      check Alcotest.bool (name ^ " mentions s27") true (contains s "s27");
      check Alcotest.bool (name ^ " non-trivial") true (String.length s > 60))
    checks

let test_ablation_scaling_monotone () =
  (* Larger N_P0 never shrinks the first target set. *)
  let s =
    Ablations.scaling ~seed:3 tiny_scale ~n_p0s:[ 5; 10; 20 ] s27_profile
  in
  check Alcotest.bool "renders" true (contains s "N_P0");
  (* Parse the |P0| column values and check monotonicity. *)
  let rows =
    String.split_on_char '\n' s
    |> List.filter (fun l -> contains l "s27")
  in
  let p0_sizes =
    List.map
      (fun row ->
        match String.split_on_char '|' row with
        | _ :: _ :: p0 :: _ -> int_of_string (String.trim p0)
        | _ -> Alcotest.fail "unexpected row shape")
      rows
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "P0 grows with N_P0" true (monotone p0_sizes)

let test_ablation_static_compaction_safe () =
  (* The E3 table itself asserts coverage preservation; it must not
     contain a "NO" cell. *)
  let s = Ablations.static_compaction ~seed:3 tiny_scale [ s27_profile ] in
  check Alcotest.bool "coverage preserved everywhere" false (contains s "NO")

let () =
  Alcotest.run "pdf_experiments"
    [
      ( "paper_data",
        [
          Alcotest.test_case "table 2 monotone" `Quick test_paper_table2_monotone;
          Alcotest.test_case "table shapes" `Quick test_paper_tables_shape;
          Alcotest.test_case "detected within totals" `Quick
            test_paper_detected_within_totals;
          Alcotest.test_case "enrichment dominates (published)" `Quick
            test_paper_enrichment_never_fewer;
        ] );
      ( "workload",
        [ Alcotest.test_case "scales" `Quick test_workload_scales ] );
      ( "runner",
        [
          Alcotest.test_case "shape" `Quick test_runner_shape;
          Alcotest.test_case "coverage bounds" `Quick test_runner_coverage_bounds;
          Alcotest.test_case "enrichment dominates (measured)" `Quick
            test_runner_enrichment_dominates;
          Alcotest.test_case "without basics" `Quick test_runner_without_basics;
        ] );
      ( "tables",
        [
          Alcotest.test_case "table 1 renders" `Quick test_table1_renders;
          Alcotest.test_case "tables render runs" `Quick test_tables_render_runs;
          Alcotest.test_case "paper reference renders" `Quick
            test_paper_reference_renders;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "zero noise" `Quick test_estimation_error_zero_noise;
          Alcotest.test_case "estimation error bounds" `Quick
            test_estimation_error_bounds;
          Alcotest.test_case "ablation tables render" `Quick
            test_ablation_tables_render;
          Alcotest.test_case "static compaction safe" `Quick
            test_ablation_static_compaction_safe;
          Alcotest.test_case "scaling sweep monotone" `Quick
            test_ablation_scaling_monotone;
        ] );
    ]
