(* Tests for Pdf_sim: logic simulation, two-pattern simulation, and the
   implication engine (checked against brute force on small circuits). *)

module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Req = Pdf_values.Req
module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate
module Builder = Pdf_circuit.Builder
module Logic_sim = Pdf_sim.Logic_sim
module Two_pattern = Pdf_sim.Two_pattern
module Implication = Pdf_sim.Implication

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let bit = Alcotest.testable Bit.pp Bit.equal

let c17 = Pdf_synth.Iscas.c17 ()
let s27 = Pdf_synth.Iscas.s27 ()

(* Reference model of c17 (from the netlist). *)
let c17_reference n1 n2 n3 n6 n7 =
  let nand a b = not (a && b) in
  let n10 = nand n1 n3 and n11 = nand n3 n6 in
  let n16 = nand n2 n11 and n19 = nand n11 n7 in
  (nand n10 n16, nand n16 n19)

let test_logic_sim_c17_exhaustive () =
  for v = 0 to 31 do
    let b i = (v lsr i) land 1 = 1 in
    let pis = [| b 0; b 1; b 2; b 3; b 4 |] in
    let values = Logic_sim.simulate_bool c17 pis in
    let e22, e23 = c17_reference (b 0) (b 1) (b 2) (b 3) (b 4) in
    check Alcotest.bool "N22" e22 values.(c17.Circuit.pos.(0));
    check Alcotest.bool "N23" e23 values.(c17.Circuit.pos.(1))
  done

let test_logic_sim_x_inputs () =
  (* All-X inputs leave every gate output X in c17 (no constant logic). *)
  let values = Logic_sim.simulate c17 (Array.make 5 Bit.X) in
  Array.iter (fun po -> check bit "X out" Bit.X values.(po)) c17.Circuit.pos

let test_logic_sim_partial_definite () =
  (* N3=0 forces N10 = N11 = 1 regardless of the other inputs. *)
  let pis = Array.make 5 Bit.X in
  pis.(2) <- Bit.Zero;
  (* N3 is the third declared input *)
  let values = Logic_sim.simulate c17 pis in
  let n10 = Option.get (Circuit.find_net c17 "N10") in
  let n11 = Option.get (Circuit.find_net c17 "N11") in
  check bit "N10 forced" Bit.One values.(n10);
  check bit "N11 forced" Bit.One values.(n11)

let test_logic_sim_wrong_arity () =
  Alcotest.check_raises "wrong PI count"
    (Invalid_argument "Logic_sim.simulate: wrong number of PI values")
    (fun () -> ignore (Logic_sim.simulate c17 (Array.make 3 Bit.X)))

(* Monotonicity: refining X inputs to definite values never changes an
   already-definite internal value. *)
let prop_logic_sim_monotone =
  let gen =
    QCheck.Gen.(
      pair
        (array_size (return 5) (oneofl [ Bit.Zero; Bit.One; Bit.X ]))
        (array_size (return 5) bool))
  in
  QCheck.Test.make ~name:"three-valued sim is monotone" ~count:300
    (QCheck.make gen)
    (fun (partial, refinement) ->
      let refined =
        Array.mapi
          (fun i v ->
            match v with
            | Bit.X -> Bit.of_bool refinement.(i)
            | (Bit.Zero | Bit.One) as d -> d)
          partial
      in
      let v1 = Logic_sim.simulate c17 partial in
      let v2 = Logic_sim.simulate c17 refined in
      Array.for_all2
        (fun a b -> (not (Bit.is_definite a)) || Bit.equal a b)
        v1 v2)

(* ------------------------------------------------------------------ *)
(* Two-pattern simulation                                               *)
(* ------------------------------------------------------------------ *)

let pairs_of v1 v3 =
  Array.init (Array.length v1) (fun i ->
      { Two_pattern.b1 = v1.(i); b3 = v3.(i) })

let test_two_pattern_ends_match_single () =
  let rng = Pdf_util.Rng.create 123 in
  for _ = 1 to 50 do
    let v1 = Array.init 5 (fun _ -> Bit.of_bool (Pdf_util.Rng.bool rng)) in
    let v3 = Array.init 5 (fun _ -> Bit.of_bool (Pdf_util.Rng.bool rng)) in
    let triples = Two_pattern.simulate c17 (pairs_of v1 v3) in
    let s1 = Logic_sim.simulate c17 v1 in
    let s3 = Logic_sim.simulate c17 v3 in
    Array.iteri
      (fun net t ->
        check bit "v1 component" s1.(net) t.Triple.v1;
        check bit "v3 component" s3.(net) t.Triple.v3)
      triples
  done

let test_two_pattern_stable_inputs_stable_everywhere () =
  let v = Array.init 5 (fun i -> Bit.of_bool (i mod 2 = 0)) in
  let triples = Two_pattern.simulate c17 (pairs_of v v) in
  Array.iter
    (fun t -> check Alcotest.bool "stable" true (Triple.is_stable t))
    triples

let test_two_pattern_middle_x_on_change () =
  let v1 = Array.make 5 Bit.Zero and v3 = Array.make 5 Bit.One in
  let triples = Two_pattern.simulate c17 (pairs_of v1 v3) in
  (* Every changing PI must carry an X middle value. *)
  for pi = 0 to 4 do
    check bit "middle x" Bit.X triples.(pi).Triple.v2
  done

let test_middle_of_pair () =
  check bit "stable 0" Bit.Zero (Two_pattern.middle_of_pair Bit.Zero Bit.Zero);
  check bit "stable 1" Bit.One (Two_pattern.middle_of_pair Bit.One Bit.One);
  check bit "changing" Bit.X (Two_pattern.middle_of_pair Bit.Zero Bit.One);
  check bit "half specified" Bit.X (Two_pattern.middle_of_pair Bit.X Bit.One)

let test_satisfies_and_violation () =
  let v = Array.make 5 Bit.One in
  let triples = Two_pattern.simulate c17 (pairs_of v v) in
  let n10 = Option.get (Circuit.find_net c17 "N10") in
  (* N10 = NAND(1,1) = 0 stable. *)
  check Alcotest.bool "satisfied" true
    (Two_pattern.satisfies triples [ (n10, Req.stable false) ]);
  check Alcotest.bool "violated" false
    (Two_pattern.satisfies triples [ (n10, Req.stable true) ]);
  match Two_pattern.first_violation triples [ (n10, Req.final true) ] with
  | Some (net, _) -> check Alcotest.int "violating net" n10 net
  | None -> Alcotest.fail "expected a violation"

(* The middle component is conservative: if it is definite, then the value
   is also the v1/v3 value (no glitch possible). *)
let prop_two_pattern_middle_conservative =
  let gen =
    QCheck.Gen.(pair (array_size (return 5) bool) (array_size (return 5) bool))
  in
  QCheck.Test.make ~name:"definite middle implies stable ends" ~count:300
    (QCheck.make gen)
    (fun (b1, b3) ->
      let v1 = Array.map Bit.of_bool b1 and v3 = Array.map Bit.of_bool b3 in
      let triples = Two_pattern.simulate c17 (pairs_of v1 v3) in
      Array.for_all
        (fun t ->
          (not (Bit.is_definite t.Triple.v2))
          || (Bit.equal t.Triple.v1 t.Triple.v2
              && Bit.equal t.Triple.v2 t.Triple.v3))
        triples)

(* ------------------------------------------------------------------ *)
(* Implication                                                          *)
(* ------------------------------------------------------------------ *)

(* Brute-force satisfiability is shared with the fuzz harness: the same
   enumeration the differential oracles use (Pdf_check.Oracle) backs the
   implication soundness check here. *)
let brute_force_satisfiable reqs =
  Pdf_check.Oracle.brute_force_satisfiable c17 reqs

let test_brute_force_partial_reqs_both_polarities () =
  (* Requirement sets that leave components unconstrained ([X] in the
     requirement), in both polarities: the brute-force witness must
     exist and really satisfy the set. *)
  let n10 = Option.get (Circuit.find_net c17 "N10") in
  let n22 = Option.get (Circuit.find_net c17 "N22") in
  List.iter
    (fun (label, reqs) ->
      match Pdf_check.Oracle.brute_force c17 reqs with
      | None -> Alcotest.failf "%s: no witness found" label
      | Some t ->
        check Alcotest.bool
          (Printf.sprintf "%s: witness satisfies" label)
          true
          (Pdf_core.Test_pair.satisfies c17 t reqs))
    [
      ("initial 0", [ (n10, Req.initial false) ]);
      ("initial 1", [ (n10, Req.initial true) ]);
      ("final 0", [ (n10, Req.final false) ]);
      ("final 1", [ (n10, Req.final true) ]);
      ("rising", [ (n10, Req.rising) ]);
      ("falling", [ (n10, Req.falling) ]);
      ( "mixed polarities",
        [ (n10, Req.initial true); (n22, Req.final false) ] );
      ( "opposite transitions",
        [ (n10, Req.rising); (n22, Req.falling) ] );
    ]

let test_brute_force_unsatisfiable () =
  (* A direct contradiction has no witness, whichever polarity is
     pinned first. *)
  let n10 = Option.get (Circuit.find_net c17 "N10") in
  List.iter
    (fun (label, reqs) ->
      check Alcotest.bool label false
        (Pdf_check.Oracle.brute_force_satisfiable c17 reqs))
    [
      ("0 and 1", [ (n10, Req.stable false); (n10, Req.stable true) ]);
      ("1 and 0", [ (n10, Req.stable true); (n10, Req.stable false) ]);
      ( "rise and fall",
        [ (n10, Req.rising); (n10, Req.falling) ] );
    ]

let test_implication_soundness_c17 () =
  (* If implication reports a conflict, the requirements really are
     unsatisfiable.  Probe many random requirement sets. *)
  let rng = Pdf_util.Rng.create 77 in
  let kinds = [| Req.stable false; Req.stable true; Req.final false;
                 Req.final true; Req.rising; Req.falling |] in
  let num_nets = Circuit.num_nets c17 in
  for _ = 1 to 200 do
    let n_reqs = 1 + Pdf_util.Rng.int rng 3 in
    let reqs =
      List.init n_reqs (fun _ ->
          ( Pdf_util.Rng.int rng num_nets,
            kinds.(Pdf_util.Rng.int rng (Array.length kinds)) ))
    in
    match Implication.infer c17 reqs with
    | Implication.Consistent _ -> ()
    | Implication.Conflict _ ->
      if brute_force_satisfiable reqs then
        Alcotest.failf "implication claimed conflict on satisfiable reqs"
  done

let test_implication_detects_direct_conflict () =
  let n10 = Option.get (Circuit.find_net c17 "N10") in
  match
    Implication.infer c17 [ (n10, Req.stable true); (n10, Req.stable false) ]
  with
  | Implication.Conflict _ -> ()
  | Implication.Consistent _ -> Alcotest.fail "expected conflict"

let test_implication_forward_backward () =
  (* Requiring N22 = stable 0 forces N10 = N16 = stable 1 (NAND backward),
     which in turn forces N1 = N3 = stable... N10 = NAND(N1,N3) = 1 does
     not pin its inputs.  But N16 = 1 and N22 = 0 pin nothing more; check
     the forced values only. *)
  let n22 = Option.get (Circuit.find_net c17 "N22") in
  let n10 = Option.get (Circuit.find_net c17 "N10") in
  let n16 = Option.get (Circuit.find_net c17 "N16") in
  match Implication.infer c17 [ (n22, Req.stable false) ] with
  | Implication.Conflict _ -> Alcotest.fail "unexpected conflict"
  | Implication.Consistent values ->
    check bit "N10 v2 forced to 1" Bit.One values.(n10).Triple.v2;
    check bit "N16 v2 forced to 1" Bit.One values.(n16).Triple.v2;
    check bit "N10 v1 forced too" Bit.One values.(n10).Triple.v1

let test_implication_pi_coupling () =
  (* A stable requirement on a PI's middle value pins both patterns. *)
  let n1 = Option.get (Circuit.find_net c17 "N1") in
  match
    Implication.infer c17
      [ (n1, { Req.r1 = Req.Any; r2 = Req.Must true; r3 = Req.Any }) ]
  with
  | Implication.Conflict _ -> Alcotest.fail "unexpected conflict"
  | Implication.Consistent values ->
    check bit "v1 pinned" Bit.One values.(n1).Triple.v1;
    check bit "v3 pinned" Bit.One values.(n1).Triple.v3

let test_implication_transition_vs_stable () =
  (* Asking a PI to both rise and stay stable is a conflict found through
     the PI coupling rule. *)
  let n1 = Option.get (Circuit.find_net c17 "N1") in
  match
    Implication.infer c17 [ (n1, Req.rising); (n1, Req.stable true) ]
  with
  | Implication.Conflict _ -> ()
  | Implication.Consistent _ -> Alcotest.fail "expected conflict"

let test_implication_consistent_helper () =
  let n22 = Option.get (Circuit.find_net c17 "N22") in
  check Alcotest.bool "consistent" true
    (Implication.consistent c17 [ (n22, Req.final true) ]);
  let n1 = Option.get (Circuit.find_net c17 "N1") in
  check Alcotest.bool "inconsistent" false
    (Implication.consistent c17 [ (n1, Req.rising); (n1, Req.falling) ])

(* Completeness-ish sanity on s27: the robust conditions of every fault
   kept by the undetectability filter must be implication-consistent (by
   construction of the filter), and a justified test must satisfy them. *)
let test_implication_agrees_with_filter () =
  let model = Pdf_paths.Delay_model.lines s27 in
  let r = Pdf_paths.Enumerate.enumerate s27 model ~max_paths:50 in
  let faults =
    List.concat_map (fun (p, _) -> Pdf_faults.Fault.both p) r.Pdf_paths.Enumerate.paths
  in
  List.iter
    (fun f ->
      match Pdf_faults.Robust.conditions s27 f with
      | None -> ()
      | Some reqs ->
        let filter_says =
          Pdf_faults.Undetectable.classify s27 f = Pdf_faults.Undetectable.Maybe_detectable
        in
        let implication_says = Implication.consistent s27 reqs in
        check Alcotest.bool "filter = implication on merged conditions"
          implication_says filter_says)
    faults

let () =
  Alcotest.run "pdf_sim"
    [
      ( "logic_sim",
        [
          Alcotest.test_case "c17 exhaustive" `Quick test_logic_sim_c17_exhaustive;
          Alcotest.test_case "x inputs" `Quick test_logic_sim_x_inputs;
          Alcotest.test_case "partial definite" `Quick test_logic_sim_partial_definite;
          Alcotest.test_case "wrong arity" `Quick test_logic_sim_wrong_arity;
          qcheck prop_logic_sim_monotone;
        ] );
      ( "two_pattern",
        [
          Alcotest.test_case "ends match single-pattern sims" `Quick
            test_two_pattern_ends_match_single;
          Alcotest.test_case "stable inputs stay stable" `Quick
            test_two_pattern_stable_inputs_stable_everywhere;
          Alcotest.test_case "middle x on change" `Quick
            test_two_pattern_middle_x_on_change;
          Alcotest.test_case "middle_of_pair" `Quick test_middle_of_pair;
          Alcotest.test_case "satisfies / first_violation" `Quick
            test_satisfies_and_violation;
          qcheck prop_two_pattern_middle_conservative;
        ] );
      ( "implication",
        [
          Alcotest.test_case "brute-force witnesses, both polarities" `Quick
            test_brute_force_partial_reqs_both_polarities;
          Alcotest.test_case "brute-force unsatisfiable" `Quick
            test_brute_force_unsatisfiable;
          Alcotest.test_case "soundness vs brute force (c17)" `Slow
            test_implication_soundness_c17;
          Alcotest.test_case "direct conflict" `Quick
            test_implication_detects_direct_conflict;
          Alcotest.test_case "forward/backward" `Quick
            test_implication_forward_backward;
          Alcotest.test_case "PI coupling" `Quick test_implication_pi_coupling;
          Alcotest.test_case "transition vs stable" `Quick
            test_implication_transition_vs_stable;
          Alcotest.test_case "consistent helper" `Quick
            test_implication_consistent_helper;
          Alcotest.test_case "agrees with undetectability filter" `Quick
            test_implication_agrees_with_filter;
        ] );
    ]
