(* Tests for Pdf_synth: embedded netlists, structured generators (checked
   against arithmetic reference models), random DAGs, profiles. *)

module Circuit = Pdf_circuit.Circuit
module Logic_sim = Pdf_sim.Logic_sim
module Generators = Pdf_synth.Generators
module Profiles = Pdf_synth.Profiles
module Iscas = Pdf_synth.Iscas

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Embedded netlists                                                    *)
(* ------------------------------------------------------------------ *)

let test_s27_structure () =
  let c = Iscas.s27 () in
  check Alcotest.int "pis" 7 c.Circuit.num_pis;
  check Alcotest.int "pos" 4 (Circuit.num_pos c);
  check Alcotest.int "gates" 10 (Circuit.num_gates c);
  check Alcotest.(result unit string) "valid" (Ok ()) (Circuit.validate c)

let test_c17_structure () =
  let c = Iscas.c17 () in
  check Alcotest.int "pis" 5 c.Circuit.num_pis;
  check Alcotest.int "pos" 2 (Circuit.num_pos c);
  check Alcotest.int "gates" 6 (Circuit.num_gates c);
  (* All NAND. *)
  Array.iter
    (fun (g : Circuit.gate) ->
      check Alcotest.bool "nand" true (g.Circuit.kind = Pdf_circuit.Gate.Nand))
    c.Circuit.gates

let test_s27_g17_function () =
  (* G17 = NOT(G11) with G11 = NOR(G5, G9): check one corner. *)
  let c = Iscas.s27 () in
  let g5 = Option.get (Circuit.find_net c "G5") in
  let g17 = Option.get (Circuit.find_net c "G17") in
  let pis = Array.make 7 false in
  pis.(g5) <- true;
  (* G5=1 forces G11=0 hence G17=1. *)
  let values = Logic_sim.simulate_bool c pis in
  check Alcotest.bool "G17" true values.(g17)

(* ------------------------------------------------------------------ *)
(* Structured generators vs reference models                            *)
(* ------------------------------------------------------------------ *)

let test_ripple_adder_structure () =
  let c = Generators.ripple_adder ~bits:4 in
  check Alcotest.int "pis" 9 c.Circuit.num_pis;
  check Alcotest.int "pos" 5 (Circuit.num_pos c);
  check Alcotest.(result unit string) "valid" (Ok ()) (Circuit.validate c)

let prop_ripple_adder_adds =
  QCheck.Test.make ~name:"ripple adder computes a + b + cin" ~count:200
    QCheck.(triple (int_bound 255) (int_bound 255) bool)
    (fun (a, b, cin) ->
      let bits = 8 in
      let c = Generators.ripple_adder ~bits in
      let pis = Array.make c.Circuit.num_pis false in
      for i = 0 to bits - 1 do
        let ai = Option.get (Circuit.find_net c (Printf.sprintf "a%d" i)) in
        let bi = Option.get (Circuit.find_net c (Printf.sprintf "b%d" i)) in
        pis.(ai) <- (a lsr i) land 1 = 1;
        pis.(bi) <- (b lsr i) land 1 = 1
      done;
      let ci = Option.get (Circuit.find_net c "cin") in
      pis.(ci) <- cin;
      let values = Logic_sim.simulate_bool c pis in
      let sum = ref 0 in
      for i = 0 to bits - 1 do
        let si = Option.get (Circuit.find_net c (Printf.sprintf "s%d" i)) in
        if values.(si) then sum := !sum lor (1 lsl i)
      done;
      let cout =
        values.(Option.get (Circuit.find_net c (Printf.sprintf "c%d" (bits - 1))))
      in
      let total = !sum lor (if cout then 1 lsl bits else 0) in
      total = a + b + if cin then 1 else 0)

let prop_mux_selects =
  QCheck.Test.make ~name:"mux cascade selects the addressed input" ~count:100
    QCheck.(pair (int_bound 15) (int_bound 65535))
    (fun (sel, data) ->
      let c = Generators.mux_cascade ~selects:4 in
      let pis = Array.make c.Circuit.num_pis false in
      for i = 0 to 15 do
        let d = Option.get (Circuit.find_net c (Printf.sprintf "d%d" i)) in
        pis.(d) <- (data lsr i) land 1 = 1
      done;
      for i = 0 to 3 do
        let s = Option.get (Circuit.find_net c (Printf.sprintf "sel%d" i)) in
        pis.(s) <- (sel lsr i) land 1 = 1
      done;
      let values = Logic_sim.simulate_bool c pis in
      let out = values.(c.Circuit.pos.(0)) in
      out = ((data lsr sel) land 1 = 1))

let prop_parity_tree =
  QCheck.Test.make ~name:"parity tree computes xor of inputs" ~count:100
    QCheck.(int_bound 65535)
    (fun data ->
      let c = Generators.parity_tree ~width:16 in
      let pis =
        Array.init c.Circuit.num_pis (fun i -> (data lsr i) land 1 = 1)
      in
      let values = Logic_sim.simulate_bool c pis in
      let expected =
        let rec popcount v = if v = 0 then 0 else (v land 1) + popcount (v lsr 1) in
        popcount data mod 2 = 1
      in
      values.(c.Circuit.pos.(0)) = expected)

let prop_comparator =
  QCheck.Test.make ~name:"comparator computes eq and gt" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let bits = 8 in
      let c = Generators.comparator ~bits in
      let pis = Array.make c.Circuit.num_pis false in
      for i = 0 to bits - 1 do
        let ai = Option.get (Circuit.find_net c (Printf.sprintf "a%d" i)) in
        let bi = Option.get (Circuit.find_net c (Printf.sprintf "b%d" i)) in
        pis.(ai) <- (a lsr i) land 1 = 1;
        pis.(bi) <- (b lsr i) land 1 = 1
      done;
      let values = Logic_sim.simulate_bool c pis in
      let eq = values.(c.Circuit.pos.(0)) and gt = values.(c.Circuit.pos.(1)) in
      eq = (a = b) && gt = (a > b))


let prop_decoder =
  QCheck.Test.make ~name:"decoder is one-hot at the addressed output"
    ~count:100
    QCheck.(int_bound 15)
    (fun v ->
      let c = Generators.decoder ~bits:4 in
      let pis =
        Array.init c.Circuit.num_pis (fun i -> (v lsr i) land 1 = 1)
      in
      let values = Logic_sim.simulate_bool c pis in
      Array.to_list c.Circuit.pos
      |> List.for_all (fun po ->
             let name = Circuit.net_name c po in
             let idx = int_of_string (String.sub name 1 (String.length name - 1)) in
             values.(po) = (idx = v)))

let prop_priority_encoder =
  QCheck.Test.make ~name:"priority encoder grants the highest set bit"
    ~count:200
    QCheck.(int_bound 255)
    (fun v ->
      let width = 8 in
      let c = Generators.priority_encoder ~width in
      let pis = Array.make c.Circuit.num_pis false in
      for i = 0 to width - 1 do
        let x = Option.get (Circuit.find_net c (Printf.sprintf "x%d" i)) in
        pis.(x) <- (v lsr i) land 1 = 1
      done;
      let values = Logic_sim.simulate_bool c pis in
      let highest =
        let rec go i = if i < 0 then None else if (v lsr i) land 1 = 1 then Some i else go (i - 1) in
        go (width - 1)
      in
      let grants_ok =
        List.init width (fun i ->
            let g = Option.get (Circuit.find_net c (Printf.sprintf "g%d" i)) in
            values.(g) = (highest = Some i))
        |> List.for_all Fun.id
      in
      let valid = Option.get (Circuit.find_net c "valid") in
      grants_ok && values.(valid) = (v <> 0))

let prop_barrel_shifter =
  QCheck.Test.make ~name:"barrel shifter shifts left by the select amount"
    ~count:200
    QCheck.(pair (int_bound 255) (int_bound 7))
    (fun (data, shift) ->
      let selects = 3 in
      let width = 8 in
      let c = Generators.barrel_shifter ~selects in
      let pis = Array.make c.Circuit.num_pis false in
      for i = 0 to width - 1 do
        let d = Option.get (Circuit.find_net c (Printf.sprintf "d%d" i)) in
        pis.(d) <- (data lsr i) land 1 = 1
      done;
      for s = 0 to selects - 1 do
        let sh = Option.get (Circuit.find_net c (Printf.sprintf "sh%d" s)) in
        pis.(sh) <- (shift lsr s) land 1 = 1
      done;
      (* fill input held at 0 *)
      let values = Logic_sim.simulate_bool c pis in
      let got = ref 0 in
      Array.iteri
        (fun idx po -> if values.(po) then got := !got lor (1 lsl idx))
        c.Circuit.pos;
      !got = (data lsl shift) land 0xff)

let prop_array_multiplier =
  QCheck.Test.make ~name:"array multiplier computes a * b" ~count:200
    QCheck.(pair (int_bound 63) (int_bound 63))
    (fun (a, b) ->
      let bits = 6 in
      let c = Generators.array_multiplier ~bits in
      let pis = Array.make c.Circuit.num_pis false in
      for i = 0 to bits - 1 do
        let ai = Option.get (Circuit.find_net c (Printf.sprintf "a%d" i)) in
        let bi = Option.get (Circuit.find_net c (Printf.sprintf "b%d" i)) in
        pis.(ai) <- (a lsr i) land 1 = 1;
        pis.(bi) <- (b lsr i) land 1 = 1
      done;
      let values = Logic_sim.simulate_bool c pis in
      let product = ref 0 in
      Array.iter
        (fun po ->
          let name = Circuit.net_name c po in
          let k = int_of_string (String.sub name 1 (String.length name - 1)) in
          if values.(po) then product := !product lor (1 lsl k))
        c.Circuit.pos;
      !product = a * b)

let test_new_generators_validate () =
  List.iter
    (fun c ->
      match Circuit.validate c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" c.Circuit.name e)
    [ Generators.decoder ~bits:3; Generators.priority_encoder ~width:6;
      Generators.barrel_shifter ~selects:3; Generators.array_multiplier ~bits:4 ]

let test_generator_bad_args () =
  Alcotest.check_raises "adder bits"
    (Invalid_argument "Generators.ripple_adder: bits < 1") (fun () ->
      ignore (Generators.ripple_adder ~bits:0));
  Alcotest.check_raises "parity width"
    (Invalid_argument "Generators.parity_tree: width < 2") (fun () ->
      ignore (Generators.parity_tree ~width:1));
  Alcotest.check_raises "mux selects"
    (Invalid_argument "Generators.mux_cascade: selects out of range") (fun () ->
      ignore (Generators.mux_cascade ~selects:0))

(* ------------------------------------------------------------------ *)
(* Random DAGs                                                          *)
(* ------------------------------------------------------------------ *)

let dag_params =
  { Generators.num_pis = 10; num_gates = 60; window = 30; max_fanout = 3;
    reuse_pct = 10; restart_pct = 5; fanin3_pct = 10; inverter_pct = 25;
    po_taps = 3 }

let test_random_dag_reproducible () =
  let a = Generators.random_dag ~name:"r" ~seed:7 dag_params in
  let b = Generators.random_dag ~name:"r" ~seed:7 dag_params in
  check Alcotest.string "same netlist"
    (Pdf_circuit.Bench_io.to_string a)
    (Pdf_circuit.Bench_io.to_string b)

let test_random_dag_seed_matters () =
  let a = Generators.random_dag ~name:"r" ~seed:7 dag_params in
  let b = Generators.random_dag ~name:"r" ~seed:8 dag_params in
  check Alcotest.bool "different netlists" false
    (Pdf_circuit.Bench_io.to_string a = Pdf_circuit.Bench_io.to_string b)

let test_random_dag_no_dangling () =
  let c = Generators.random_dag ~name:"r" ~seed:11 dag_params in
  (* Every gate output either feeds another gate or is a primary output. *)
  for g = 0 to Circuit.num_gates c - 1 do
    let out = Circuit.net_of_gate c g in
    check Alcotest.bool "no dangling net" true
      (Circuit.fanout_count c out > 0 || c.Circuit.is_po.(out))
  done

let test_random_dag_validates () =
  for seed = 0 to 20 do
    let c = Generators.random_dag ~name:"r" ~seed dag_params in
    match Circuit.validate c with
    | Ok () -> ()
    | Error e -> Alcotest.failf "seed %d: %s" seed e
  done

let test_random_dag_bad_params () =
  (* Each degenerate field is rejected up front with a message naming
     the field, instead of looping or failing deep inside the builder. *)
  List.iter
    (fun (label, params, message) ->
      Alcotest.check_raises label
        (Invalid_argument ("Generators.random_dag: " ^ message))
        (fun () -> ignore (Generators.random_dag ~name:"r" ~seed:0 params)))
    [
      ( "one pi", { dag_params with Generators.num_pis = 1 },
        "num_pis must be >= 2 (got 1)" );
      ( "zero pis", { dag_params with Generators.num_pis = 0 },
        "num_pis must be >= 2 (got 0)" );
      ( "zero gates", { dag_params with Generators.num_gates = 0 },
        "num_gates must be >= 1 (got 0)" );
      ( "window zero", { dag_params with Generators.window = 0 },
        "window must be >= 2 (got 0)" );
      ( "window one", { dag_params with Generators.window = 1 },
        "window must be >= 2 (got 1)" );
      ( "fanout zero", { dag_params with Generators.max_fanout = 0 },
        "max_fanout must be >= 1 (got 0)" );
      ( "reuse pct", { dag_params with Generators.reuse_pct = 101 },
        "reuse_pct must be in 0..100 (got 101)" );
      ( "restart pct", { dag_params with Generators.restart_pct = -1 },
        "restart_pct must be in 0..100 (got -1)" );
      ( "fanin3 pct", { dag_params with Generators.fanin3_pct = 200 },
        "fanin3_pct must be in 0..100 (got 200)" );
      ( "inverter pct", { dag_params with Generators.inverter_pct = -5 },
        "inverter_pct must be in 0..100 (got -5)" );
      ( "negative taps", { dag_params with Generators.po_taps = -1 },
        "po_taps must be >= 0 (got -1)" );
    ]

let test_random_dag_boundary_params_ok () =
  (* The smallest legal parameter set builds and validates. *)
  let p =
    { Generators.num_pis = 2; num_gates = 1; window = 2; max_fanout = 1;
      reuse_pct = 0; restart_pct = 100; fanin3_pct = 0; inverter_pct = 0;
      po_taps = 0 }
  in
  let c = Generators.random_dag ~name:"tiny" ~seed:3 p in
  check Alcotest.(result unit string) "valid" (Ok ()) (Circuit.validate c);
  check Alcotest.int "one gate" 1 (Circuit.num_gates c)

(* ------------------------------------------------------------------ *)
(* Profiles                                                             *)
(* ------------------------------------------------------------------ *)

let test_profiles_find () =
  List.iter
    (fun name ->
      check Alcotest.bool name true (Profiles.find name <> None))
    [ "s641"; "s953"; "s1196"; "s1423"; "s1488"; "b03"; "b04"; "b09";
      "s1423*"; "s5378*"; "s9234*"; "s27"; "c17"; "rca16"; "mux64"; "cmp16";
      "parity32" ];
  check Alcotest.bool "unknown" true (Profiles.find "nonesuch" = None)

let test_profiles_rows () =
  check Alcotest.int "eight table rows" 8 (List.length Profiles.table_rows);
  check Alcotest.int "three star rows" 3 (List.length Profiles.star_rows);
  check Alcotest.int "eleven enrichment rows" 11
    (List.length Profiles.enrichment_rows)

let test_profiles_have_enough_paths () =
  (* Each table-row profile must offer at least 900 complete paths, the
     paper's pre-condition (">= 1000 paths" at full scale). *)
  List.iter
    (fun p ->
      let c = Profiles.circuit p in
      let model = Pdf_paths.Delay_model.lines c in
      let r = Pdf_paths.Enumerate.enumerate c model ~max_paths:1000 in
      let n = List.length r.Pdf_paths.Enumerate.paths in
      if n < 900 then
        Alcotest.failf "%s has only %d paths" p.Profiles.name n)
    Profiles.enrichment_rows

let test_profiles_lazy_cached () =
  let p = Option.get (Profiles.find "s641") in
  let a = Profiles.circuit p and b = Profiles.circuit p in
  check Alcotest.bool "same instance" true (a == b)

let () =
  Alcotest.run "pdf_synth"
    [
      ( "iscas",
        [
          Alcotest.test_case "s27 structure" `Quick test_s27_structure;
          Alcotest.test_case "c17 structure" `Quick test_c17_structure;
          Alcotest.test_case "s27 G17 function" `Quick test_s27_g17_function;
        ] );
      ( "structured",
        [
          Alcotest.test_case "adder structure" `Quick test_ripple_adder_structure;
          qcheck prop_ripple_adder_adds;
          qcheck prop_mux_selects;
          qcheck prop_parity_tree;
          qcheck prop_comparator;
          qcheck prop_decoder;
          qcheck prop_priority_encoder;
          qcheck prop_barrel_shifter;
          qcheck prop_array_multiplier;
          Alcotest.test_case "new generators validate" `Quick
            test_new_generators_validate;
          Alcotest.test_case "bad args" `Quick test_generator_bad_args;
        ] );
      ( "random_dag",
        [
          Alcotest.test_case "reproducible" `Quick test_random_dag_reproducible;
          Alcotest.test_case "seed matters" `Quick test_random_dag_seed_matters;
          Alcotest.test_case "no dangling nets" `Quick test_random_dag_no_dangling;
          Alcotest.test_case "validates" `Quick test_random_dag_validates;
          Alcotest.test_case "bad params" `Quick test_random_dag_bad_params;
          Alcotest.test_case "boundary params" `Quick
            test_random_dag_boundary_params_ok;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "find" `Quick test_profiles_find;
          Alcotest.test_case "rows" `Quick test_profiles_rows;
          Alcotest.test_case "enough paths" `Slow test_profiles_have_enough_paths;
          Alcotest.test_case "lazy cached" `Quick test_profiles_lazy_cached;
        ] );
    ]
