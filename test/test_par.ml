(* Tests for Pdf_par: ordered results, exception propagation, nested
   use, and the end-to-end determinism contract — a circuit run under
   jobs=4 must equal the same run under jobs=1 (tests, fault counts and
   the metrics snapshot alike). *)

module Pool = Pdf_par.Pool
module Metrics = Pdf_obs.Metrics
module Ordering = Pdf_core.Ordering
module Atpg = Pdf_core.Atpg
module Fault_sim = Pdf_core.Fault_sim
module Target_sets = Pdf_faults.Target_sets
module Delay_model = Pdf_paths.Delay_model
module Runner = Pdf_experiments.Runner
module Workload = Pdf_experiments.Workload
module Profiles = Pdf_synth.Profiles

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pool basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_map_ordering () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  check Alcotest.int "jobs" 4 (Pool.jobs pool);
  let xs = List.init 100 Fun.id in
  check
    Alcotest.(list int)
    "map preserves order" (List.map (fun x -> x * x) xs)
    (Pool.map pool (fun x -> x * x) xs);
  let a = Array.init 257 (fun i -> i - 128) in
  check
    Alcotest.(array int)
    "map_array preserves order"
    (Array.map (fun x -> (2 * x) + 1) a)
    (Pool.map_array pool (fun x -> (2 * x) + 1) a);
  check Alcotest.(list int) "empty input" [] (Pool.map pool (fun x -> x) []);
  check Alcotest.(list int) "singleton" [ 7 ] (Pool.map pool (fun x -> x) [ 7 ])

let test_sequential_pool () =
  (* jobs = 1 never spawns a domain and runs in submission order. *)
  Pool.with_pool ~jobs:1 @@ fun pool ->
  let order = ref [] in
  let r =
    Pool.map pool
      (fun i ->
        order := i :: !order;
        i)
      [ 1; 2; 3 ]
  in
  check Alcotest.(list int) "results" [ 1; 2; 3 ] r;
  check Alcotest.(list int) "ran in order" [ 3; 2; 1 ] !order

let test_exception_propagation () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  (* Two tasks fail; the recorded failure must be the smallest index
     (deterministic whatever the worker schedule). *)
  let attempt () =
    Pool.map pool
      (fun i -> if i = 3 || i = 7 then failwith (Printf.sprintf "boom %d" i) else i)
      (List.init 10 Fun.id)
  in
  (match attempt () with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> check Alcotest.string "smallest index" "boom 3" msg);
  (* The pool survives a failed batch and keeps working. *)
  check
    Alcotest.(list int)
    "pool usable after failure" [ 0; 2; 4 ]
    (Pool.map pool (fun i -> 2 * i) [ 0; 1; 2 ])

let test_nested_use () =
  (* A task that maps on its own pool must not deadlock: inner maps run
     inline on the calling domain. *)
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let r =
    Pool.map pool
      (fun i -> List.fold_left ( + ) 0 (Pool.map pool (fun j -> i * j) [ 1; 2; 3 ]))
      (List.init 8 Fun.id)
  in
  check Alcotest.(list int) "nested results"
    (List.init 8 (fun i -> 6 * i))
    r

let test_default_pool_env () =
  (* set_default_jobs reconfigures the process pool; default () reuses it. *)
  Pool.set_default_jobs 2;
  let p = Pool.default () in
  check Alcotest.int "configured jobs" 2 (Pool.jobs p);
  check Alcotest.bool "same pool" true (p == Pool.default ());
  Pool.set_default_jobs 1;
  check Alcotest.int "back to sequential" 1 (Pool.jobs (Pool.default ()))

(* ------------------------------------------------------------------ *)
(* Determinism: parallel fault simulation and circuit runs              *)
(* ------------------------------------------------------------------ *)

let s27_profile =
  match Profiles.find "s27" with Some p -> p | None -> assert false

let tiny_scale = { Workload.label = "tiny"; n_p = 40; n_p0 = 10 }

let test_faultsim_chunked () =
  let c = Profiles.circuit s27_profile in
  let ts = Target_sets.build c (Delay_model.lines c) ~n_p:40 ~n_p0:10 in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  let n0 = List.length ts.Target_sets.p0 in
  let faults0 = Array.of_list (List.filteri (fun i _ -> i < n0)
                                 (Array.to_list faults)) in
  let res = Atpg.basic c { Atpg.ordering = Ordering.Value_based; seed = 3 }
      ~faults:faults0 in
  let seq =
    Pool.with_pool ~jobs:1 (fun pool ->
        Fault_sim.detected_by_tests ~pool c res.Atpg.tests faults)
  in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        Fault_sim.detected_by_tests ~pool c res.Atpg.tests faults)
  in
  check Alcotest.(array bool) "chunked = sequential" seq par

(* Everything about a circuit run except wall-clock times. *)
let fingerprint (r : Runner.circuit_run) =
  let basic (b : Runner.basic_run) =
    Printf.sprintf "%s:%d/%d/%d" (Ordering.name b.ordering) b.p0_detected
      b.tests b.p_detected
  in
  Printf.sprintf "i0=%d cut=%d P=%d P0=%d basics=[%s] enrich=%d/%d/%d aborts=%d"
    r.i0 r.cutoff_length r.p_total r.p0_total
    (String.concat " " (List.map basic r.basics))
    r.enrich_p0_detected r.enrich_p_detected r.enrich_tests r.enrich_aborts

let test_runner_determinism () =
  let run jobs =
    Metrics.reset ();
    let fp =
      Pool.with_pool ~jobs (fun pool ->
          fingerprint (Runner.run ~pool ~seed:3 tiny_scale s27_profile))
    in
    (fp, Metrics.snapshot ())
  in
  let fp1, snap1 = run 1 in
  let fp4, snap4 = run 4 in
  check Alcotest.string "circuit run identical" fp1 fp4;
  check Alcotest.int "same metric set" (List.length snap1) (List.length snap4);
  List.iter2
    (fun (name1, v1) (name4, v4) ->
      check Alcotest.string "metric name" name1 name4;
      check Alcotest.bool (Printf.sprintf "metric %s equal" name1) true
        (v1 = v4))
    snap1 snap4

let () =
  Alcotest.run "pdf_par"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "sequential pool" `Quick test_sequential_pool;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested use" `Quick test_nested_use;
          Alcotest.test_case "default pool" `Quick test_default_pool_env;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "chunked fault simulation" `Quick
            test_faultsim_chunked;
          Alcotest.test_case "jobs=1 vs jobs=4 circuit run" `Quick
            test_runner_determinism;
        ] );
    ]
