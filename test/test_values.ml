(* Tests for Pdf_values: three-valued bits, triples, requirement lattice. *)

module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Req = Pdf_values.Req

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let bit = Alcotest.testable Bit.pp Bit.equal
let triple_t = Alcotest.testable Triple.pp Triple.equal
let req = Alcotest.testable Req.pp Req.equal

let all_bits = [ Bit.Zero; Bit.One; Bit.X ]

let bit_gen = QCheck.Gen.oneofl all_bits
let arb_bit = QCheck.make ~print:(fun b -> String.make 1 (Bit.char b)) bit_gen

(* ------------------------------------------------------------------ *)
(* Bit                                                                  *)
(* ------------------------------------------------------------------ *)

let test_bit_of_bool () =
  check bit "true" Bit.One (Bit.of_bool true);
  check bit "false" Bit.Zero (Bit.of_bool false)

let test_bit_to_bool () =
  check Alcotest.(option bool) "one" (Some true) (Bit.to_bool Bit.One);
  check Alcotest.(option bool) "zero" (Some false) (Bit.to_bool Bit.Zero);
  check Alcotest.(option bool) "x" None (Bit.to_bool Bit.X)

let test_bit_not () =
  check bit "not 0" Bit.One (Bit.not_ Bit.Zero);
  check bit "not 1" Bit.Zero (Bit.not_ Bit.One);
  check bit "not x" Bit.X (Bit.not_ Bit.X)

let test_bit_and_truth_table () =
  let t a b e = check bit "and" e (Bit.and_ a b) in
  t Bit.Zero Bit.Zero Bit.Zero;
  t Bit.Zero Bit.One Bit.Zero;
  t Bit.Zero Bit.X Bit.Zero;
  t Bit.One Bit.Zero Bit.Zero;
  t Bit.One Bit.One Bit.One;
  t Bit.One Bit.X Bit.X;
  t Bit.X Bit.Zero Bit.Zero;
  t Bit.X Bit.One Bit.X;
  t Bit.X Bit.X Bit.X

let test_bit_or_truth_table () =
  let t a b e = check bit "or" e (Bit.or_ a b) in
  t Bit.Zero Bit.Zero Bit.Zero;
  t Bit.Zero Bit.One Bit.One;
  t Bit.Zero Bit.X Bit.X;
  t Bit.One Bit.X Bit.One;
  t Bit.X Bit.X Bit.X

let test_bit_xor_truth_table () =
  let t a b e = check bit "xor" e (Bit.xor a b) in
  t Bit.Zero Bit.Zero Bit.Zero;
  t Bit.Zero Bit.One Bit.One;
  t Bit.One Bit.One Bit.Zero;
  t Bit.X Bit.Zero Bit.X;
  t Bit.One Bit.X Bit.X

let test_bit_char_roundtrip () =
  List.iter
    (fun b ->
      check Alcotest.(option (Alcotest.testable Bit.pp Bit.equal)) "roundtrip"
        (Some b)
        (Bit.of_char (Bit.char b)))
    all_bits;
  check Alcotest.(option bit) "X uppercase" (Some Bit.X) (Bit.of_char 'X');
  check Alcotest.(option bit) "garbage" None (Bit.of_char '?')

(* Kleene logic laws, checked over the whole (tiny) domain. *)
let prop_bit_de_morgan =
  QCheck.Test.make ~name:"De Morgan: not (a and b) = not a or not b"
    ~count:100
    QCheck.(pair arb_bit arb_bit)
    (fun (a, b) ->
      Bit.equal (Bit.not_ (Bit.and_ a b)) (Bit.or_ (Bit.not_ a) (Bit.not_ b)))

let prop_bit_commutative =
  QCheck.Test.make ~name:"and/or commutative" ~count:100
    QCheck.(pair arb_bit arb_bit)
    (fun (a, b) ->
      Bit.equal (Bit.and_ a b) (Bit.and_ b a)
      && Bit.equal (Bit.or_ a b) (Bit.or_ b a))

let prop_bit_associative =
  QCheck.Test.make ~name:"and/or associative" ~count:100
    QCheck.(triple arb_bit arb_bit arb_bit)
    (fun (a, b, c) ->
      Bit.equal (Bit.and_ a (Bit.and_ b c)) (Bit.and_ (Bit.and_ a b) c)
      && Bit.equal (Bit.or_ a (Bit.or_ b c)) (Bit.or_ (Bit.or_ a b) c))

(* Monotonicity w.r.t. the information order (X below 0 and 1): refining
   an X input never flips a definite output. *)
let refines a b =
  match a, b with
  | Bit.X, _ -> true
  | _, _ -> Bit.equal a b

let prop_bit_monotone =
  QCheck.Test.make ~name:"and/or/xor monotone in information order"
    ~count:200
    QCheck.(pair (pair arb_bit arb_bit) (pair arb_bit arb_bit))
    (fun ((a, b), (a', b')) ->
      QCheck.assume (refines a a' && refines b b');
      refines (Bit.and_ a b) (Bit.and_ a' b')
      && refines (Bit.or_ a b) (Bit.or_ a' b')
      && refines (Bit.xor a b) (Bit.xor a' b'))

(* ------------------------------------------------------------------ *)
(* Triple                                                               *)
(* ------------------------------------------------------------------ *)

let test_triple_constants () =
  check triple_t "stable0" (Triple.make Bit.Zero Bit.Zero Bit.Zero)
    (Triple.stable false);
  check triple_t "stable1" (Triple.make Bit.One Bit.One Bit.One)
    (Triple.stable true);
  check triple_t "rising" (Triple.make Bit.Zero Bit.X Bit.One) Triple.rising;
  check triple_t "falling" (Triple.make Bit.One Bit.X Bit.Zero) Triple.falling

let test_triple_predicates () =
  check Alcotest.bool "stable is stable" true (Triple.is_stable (Triple.stable true));
  check Alcotest.bool "rising not stable" false (Triple.is_stable Triple.rising);
  check Alcotest.bool "rising transitions" true (Triple.has_transition Triple.rising);
  check Alcotest.bool "stable no transition" false
    (Triple.has_transition (Triple.stable false));
  check Alcotest.bool "unknown no transition" false
    (Triple.has_transition Triple.unknown)

let test_triple_string_roundtrip () =
  List.iter
    (fun s ->
      match Triple.of_string s with
      | Some t -> check Alcotest.string "roundtrip" s (Triple.to_string t)
      | None -> Alcotest.failf "failed to parse %s" s)
    [ "000"; "111"; "0x1"; "1x0"; "xxx"; "01x"; "x10" ];
  check Alcotest.(option triple_t) "bad length" None (Triple.of_string "01");
  check Alcotest.(option triple_t) "bad char" None (Triple.of_string "0?1")

(* ------------------------------------------------------------------ *)
(* Req                                                                  *)
(* ------------------------------------------------------------------ *)

let test_req_constants () =
  check req "stable0" (Option.get (Req.of_string "000")) (Req.stable false);
  check req "final1" (Option.get (Req.of_string "xx1")) (Req.final true);
  check req "initial0" (Option.get (Req.of_string "0xx")) (Req.initial false);
  check req "rising" (Option.get (Req.of_string "0x1")) Req.rising;
  check req "falling" (Option.get (Req.of_string "1x0")) Req.falling;
  check Alcotest.bool "any" true (Req.is_any Req.any)

let test_req_merge () =
  let m a b = Req.merge (Option.get (Req.of_string a)) (Option.get (Req.of_string b)) in
  (match m "0x1" "xx1" with
  | Some r -> check Alcotest.string "merge compatible" "0x1" (Req.to_string r)
  | None -> Alcotest.fail "merge should succeed");
  check Alcotest.bool "conflict" true (m "000" "xx1" = None);
  check Alcotest.bool "conflict first" true (m "1xx" "0xx" = None);
  (match m "0xx" "x1x" with
  | Some r -> check Alcotest.string "componentwise" "01x" (Req.to_string r)
  | None -> Alcotest.fail "merge should succeed")

let test_req_satisfied_by () =
  let sat t r =
    Req.satisfied_by (Option.get (Triple.of_string t)) (Option.get (Req.of_string r))
  in
  check Alcotest.bool "exact stable" true (sat "000" "000");
  check Alcotest.bool "x in sim violates pinned middle" false (sat "0x0" "000");
  check Alcotest.bool "final only" true (sat "1x0" "xx0");
  check Alcotest.bool "wrong final" false (sat "0x1" "xx0");
  check Alcotest.bool "anything satisfies any" true (sat "xxx" "xxx");
  check Alcotest.bool "rising satisfies rising" true (sat "0x1" "0x1");
  check Alcotest.bool "rising with settled middle" true (sat "011" "0x1")

let test_req_compatible_bit () =
  check Alcotest.bool "x compatible with Must" true
    (Req.compatible_bit Bit.X (Req.Must true));
  check Alcotest.bool "definite matches" true
    (Req.compatible_bit Bit.One (Req.Must true));
  check Alcotest.bool "definite contradicts" false
    (Req.compatible_bit Bit.Zero (Req.Must true));
  check Alcotest.bool "any always" true (Req.compatible_bit Bit.Zero Req.Any)

let test_req_count_pinned () =
  let count s = Req.count_pinned (Option.get (Req.of_string s)) in
  check Alcotest.int "000" 3 (count "000");
  check Alcotest.int "xx1" 1 (count "xx1");
  check Alcotest.int "0x1" 2 (count "0x1");
  check Alcotest.int "xxx" 0 (count "xxx")

let arb_req =
  let component =
    QCheck.Gen.oneofl [ Req.Any; Req.Must false; Req.Must true ]
  in
  QCheck.make ~print:Req.to_string
    QCheck.Gen.(
      map3 (fun r1 r2 r3 -> { Req.r1; r2; r3 }) component component component)

let prop_req_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:300
    QCheck.(pair arb_req arb_req)
    (fun (a, b) ->
      match Req.merge a b, Req.merge b a with
      | Some x, Some y -> Req.equal x y
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_req_merge_idempotent =
  QCheck.Test.make ~name:"merge idempotent" ~count:100 arb_req (fun a ->
      match Req.merge a a with Some x -> Req.equal x a | None -> false)

let prop_req_merge_any_identity =
  QCheck.Test.make ~name:"any is the merge identity" ~count:100 arb_req
    (fun a ->
      match Req.merge a Req.any with Some x -> Req.equal x a | None -> false)

let prop_req_merge_strengthens =
  QCheck.Test.make ~name:"a triple satisfying a merge satisfies both parts"
    ~count:500
    QCheck.(
      triple arb_req arb_req
        (make
           Gen.(
             map3 Triple.make (oneofl all_bits) (oneofl all_bits)
               (oneofl all_bits))))
    (fun (a, b, t) ->
      match Req.merge a b with
      | None -> true
      | Some m ->
        (* satisfied(m) <=> satisfied(a) && satisfied(b) *)
        Req.satisfied_by t m = (Req.satisfied_by t a && Req.satisfied_by t b))

(* ------------------------------------------------------------------ *)
(* Word                                                                 *)
(* ------------------------------------------------------------------ *)

module Word = Pdf_values.Word

let word_t = Alcotest.testable Word.pp Word.equal

let test_word_lane_mask () =
  check Alcotest.int "0" 0 (Word.lane_mask 0);
  check Alcotest.int "1" 1 (Word.lane_mask 1);
  check Alcotest.int "5" 31 (Word.lane_mask 5);
  check Alcotest.int "63" (-1) (Word.lane_mask 63);
  Alcotest.check_raises "64" (Invalid_argument "Word.lane_mask: lane count")
    (fun () -> ignore (Word.lane_mask 64))

let test_word_get_set_roundtrip () =
  List.iter
    (fun v ->
      for lane = 0 to Word.lanes - 1 do
        let w = Word.set Word.all_x lane v in
        check bit "set/get" v (Word.get w lane);
        check Alcotest.bool "valid" true (Word.valid w)
      done)
    all_bits

let test_word_splat () =
  List.iter
    (fun v ->
      let w = Word.splat v in
      check Alcotest.bool "valid" true (Word.valid w);
      for lane = 0 to Word.lanes - 1 do
        check bit "splat lane" v (Word.get w lane)
      done)
    all_bits

let test_word_of_to_bits () =
  let a = [| Bit.Zero; Bit.One; Bit.X; Bit.One; Bit.Zero |] in
  let w = Word.of_bits a in
  check Alcotest.(array (testable Bit.pp Bit.equal)) "roundtrip" a
    (Word.to_bits 5 w);
  check word_t "repack" w (Word.of_bits (Word.to_bits 5 w));
  check bit "beyond packed count is X" Bit.X (Word.get w 5)

let test_word_popcount () =
  check Alcotest.int "empty" 0 (Word.popcount 0);
  check Alcotest.int "one" 1 (Word.popcount 16);
  check Alcotest.int "full" 63 (Word.popcount (Word.lane_mask 63))

(* Every word gate operation equals the Bit truth table on each lane. *)
let arb_word_pair =
  let gen =
    QCheck.Gen.(
      pair
        (array_size (return Word.lanes) bit_gen)
        (array_size (return Word.lanes) bit_gen))
  in
  QCheck.make gen

let lanewise_op name wop bop =
  QCheck.Test.make ~name ~count:200 arb_word_pair (fun (a, b) ->
      let w = wop (Word.of_bits a) (Word.of_bits b) in
      Word.valid w
      && Array.for_all
           (fun lane -> Bit.equal (bop a.(lane) b.(lane)) (Word.get w lane))
           (Array.init Word.lanes Fun.id))

let prop_word_and = lanewise_op "word and = bit and per lane" Word.and_ Bit.and_
let prop_word_or = lanewise_op "word or = bit or per lane" Word.or_ Bit.or_
let prop_word_xor = lanewise_op "word xor = bit xor per lane" Word.xor Bit.xor

let prop_word_middle =
  lanewise_op "word middle = middle_of_pair per lane" Word.middle
    (fun a b ->
      match (a, b) with
      | Bit.Zero, Bit.Zero -> Bit.Zero
      | Bit.One, Bit.One -> Bit.One
      | _ -> Bit.X)

let prop_word_not =
  QCheck.Test.make ~name:"word not = bit not per lane" ~count:200
    (QCheck.make QCheck.Gen.(array_size (return Word.lanes) bit_gen))
    (fun a ->
      let w = Word.not_ (Word.of_bits a) in
      Word.valid w
      && Array.for_all
           (fun lane -> Bit.equal (Bit.not_ a.(lane)) (Word.get w lane))
           (Array.init Word.lanes Fun.id))

let prop_word_not_involutive =
  QCheck.Test.make ~name:"word not involutive" ~count:200
    (QCheck.make QCheck.Gen.(array_size (return Word.lanes) bit_gen))
    (fun a ->
      let w = Word.of_bits a in
      Word.equal w (Word.not_ (Word.not_ w)))

let () =
  Alcotest.run "pdf_values"
    [
      ( "bit",
        [
          Alcotest.test_case "of_bool" `Quick test_bit_of_bool;
          Alcotest.test_case "to_bool" `Quick test_bit_to_bool;
          Alcotest.test_case "not" `Quick test_bit_not;
          Alcotest.test_case "and truth table" `Quick test_bit_and_truth_table;
          Alcotest.test_case "or truth table" `Quick test_bit_or_truth_table;
          Alcotest.test_case "xor truth table" `Quick test_bit_xor_truth_table;
          Alcotest.test_case "char roundtrip" `Quick test_bit_char_roundtrip;
          qcheck prop_bit_de_morgan;
          qcheck prop_bit_commutative;
          qcheck prop_bit_associative;
          qcheck prop_bit_monotone;
        ] );
      ( "triple",
        [
          Alcotest.test_case "constants" `Quick test_triple_constants;
          Alcotest.test_case "predicates" `Quick test_triple_predicates;
          Alcotest.test_case "string roundtrip" `Quick test_triple_string_roundtrip;
        ] );
      ( "req",
        [
          Alcotest.test_case "constants" `Quick test_req_constants;
          Alcotest.test_case "merge" `Quick test_req_merge;
          Alcotest.test_case "satisfied_by" `Quick test_req_satisfied_by;
          Alcotest.test_case "compatible_bit" `Quick test_req_compatible_bit;
          Alcotest.test_case "count_pinned" `Quick test_req_count_pinned;
          qcheck prop_req_merge_commutative;
          qcheck prop_req_merge_idempotent;
          qcheck prop_req_merge_any_identity;
          qcheck prop_req_merge_strengthens;
        ] );
      ( "word",
        [
          Alcotest.test_case "lane_mask" `Quick test_word_lane_mask;
          Alcotest.test_case "get/set roundtrip" `Quick
            test_word_get_set_roundtrip;
          Alcotest.test_case "splat" `Quick test_word_splat;
          Alcotest.test_case "of_bits/to_bits" `Quick test_word_of_to_bits;
          Alcotest.test_case "popcount" `Quick test_word_popcount;
          qcheck prop_word_and;
          qcheck prop_word_or;
          qcheck prop_word_xor;
          qcheck prop_word_middle;
          qcheck prop_word_not;
          qcheck prop_word_not_involutive;
        ] );
    ]
