(* Tests for Pdf_serve: protocol parsing and framing, the warm-session
   determinism contract (served answers byte-identical to the session
   the batch CLI prints from), cache effectiveness (a second request
   re-parses nothing), and the server loop itself — budgets, error
   codes, /metrics over HTTP and concurrent-client demultiplexing. *)

module Session = Pdf_serve.Session
module Protocol = Pdf_serve.Protocol
module Server = Pdf_serve.Server
module Metrics = Pdf_obs.Metrics
module J = Pdf_obs.Json_text

let check = Alcotest.check

(* Requests below carry no "justify" field, so the server resolves the
   backend via [effective_default_justify] (PDF_JUSTIFY under the CI
   matrix); the reference session must resolve it the same way for the
   byte-diff contract to be meaningful. *)
let params =
  { Session.default_params with Session.n_p = 200; n_p0 = 50; seed = 7;
    justify = Session.effective_default_justify () }

let ok = function
  | Ok (a : Session.answer) -> a
  | Error e -> Alcotest.fail (Session.error_message e)

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_parse_ok () =
  (match Protocol.parse_request "{\"id\":7,\"req\":\"ping\"}" with
  | Ok (7, Protocol.Ping) -> ()
  | _ -> Alcotest.fail "ping did not parse");
  match
    Protocol.parse_request
      "{\"id\":1,\"req\":\"atpg\",\"circuit\":\"s27\",\"n_p\":200,\
       \"n_p0\":50,\"seed\":7,\"ordering\":\"length\",\"relax\":true}"
  with
  | Ok (1, Protocol.Atpg { circuit; params = p; ordering; relax }) ->
    check Alcotest.string "circuit" "s27" circuit;
    check Alcotest.int "n_p" 200 p.Session.n_p;
    check Alcotest.int "n_p0" 50 p.Session.n_p0;
    check Alcotest.int "seed" 7 p.Session.seed;
    check Alcotest.bool "relax" true relax;
    check Alcotest.string "ordering" "length" (Pdf_core.Ordering.name ordering)
  | _ -> Alcotest.fail "atpg did not parse"

let test_parse_defaults () =
  match
    Protocol.parse_request "{\"req\":\"atpg\",\"circuit\":\"s27\"}"
  with
  | Ok (0, Protocol.Atpg { params = p; ordering; relax; _ }) ->
    check Alcotest.int "default n_p" Session.default_params.Session.n_p
      p.Session.n_p;
    check Alcotest.int "default n_p0" Session.default_params.Session.n_p0
      p.Session.n_p0;
    check Alcotest.bool "default relax" false relax;
    check Alcotest.string "default ordering" "values"
      (Pdf_core.Ordering.name ordering)
  | _ -> Alcotest.fail "defaulted atpg did not parse"

let expect_error expected line =
  match Protocol.parse_request line with
  | Error (_, code, _) ->
    check Alcotest.string "error code" expected (Protocol.code_string code)
  | Ok _ -> Alcotest.fail ("expected " ^ expected ^ " for: " ^ line)

let test_parse_errors () =
  expect_error "parse_error" "this is not json";
  expect_error "parse_error" "[1,2,3]";
  expect_error "bad_request" "{\"id\":1}";
  expect_error "bad_request" "{\"id\":1,\"req\":\"bogus\"}";
  (* Unknown and ill-typed fields are rejected, not ignored. *)
  expect_error "bad_params" "{\"req\":\"ping\",\"extra\":1}";
  expect_error "bad_params"
    "{\"req\":\"atpg\",\"circuit\":\"s27\",\"np\":200}";
  expect_error "bad_params" "{\"req\":\"atpg\",\"circuit\":\"s27\",\"n_p\":0}";
  expect_error "bad_params"
    "{\"req\":\"atpg\",\"circuit\":\"s27\",\"n_p\":\"many\"}";
  expect_error "bad_params" "{\"req\":\"atpg\"}";
  expect_error "bad_params"
    "{\"req\":\"explain\",\"circuit\":\"s27\"}";
  expect_error "bad_params" "{\"req\":\"why\",\"circuit\":\"s27\"}";
  expect_error "bad_params"
    "{\"req\":\"why\",\"circuit\":\"s27\",\"query\":\"0\",\"extra\":1}";
  expect_error "bad_params"
    "{\"req\":\"atpg\",\"circuit\":\"s27\",\"criterion\":\"maybe\"}"

let test_frames_round_trip () =
  let chunk = Protocol.chunk_frame ~id:3 ~seq:1 "line one\n\"quoted\"" in
  (match J.parse chunk with
  | Ok v ->
    check Alcotest.string "data survives quoting" "line one\n\"quoted\""
      (Option.get (Option.bind (J.member "data" v) J.to_str))
  | Error msg -> Alcotest.fail msg);
  match J.parse (Protocol.done_frame ~id:3 ~req:"atpg" ~chunks:2 ~bytes:17
                   ~cached:true) with
  | Ok v ->
    check Alcotest.bool "cached flag" true
      (match J.member "cached" v with Some (J.Bool b) -> b | _ -> false)
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Session caches                                                      *)
(* ------------------------------------------------------------------ *)

let compiles () = Metrics.value (Metrics.counter "serve.session.compiles")

let test_second_request_reparses_nothing () =
  let s = Session.create () in
  let before = compiles () in
  let a1 =
    ok (Session.atpg s ~circuit:"s27" ~params
          ~ordering:Pdf_core.Ordering.Value_based ~relax:false)
  in
  let after_first = compiles () in
  check Alcotest.int "first request compiles once" (before + 1) after_first;
  (* Different query kinds against the same circuit and identical
     repeats: zero further parses. *)
  let a2 =
    ok (Session.atpg s ~circuit:"s27" ~params
          ~ordering:Pdf_core.Ordering.Value_based ~relax:false)
  in
  ignore (ok (Session.enrich s ~circuit:"s27" ~params ~coverage:false));
  ignore (ok (Session.report s ~circuit:"s27" ~params));
  check Alcotest.int "no re-parse" after_first (compiles ());
  check Alcotest.bool "first answer is cold" false a1.Session.cached;
  check Alcotest.bool "second answer is warm" true a2.Session.cached;
  check Alcotest.string "warm bytes identical" a1.Session.text a2.Session.text

let test_explain_report_consistent () =
  let s = Session.create () in
  let report = ok (Session.report s ~circuit:"s27" ~params) in
  let explain = ok (Session.explain s ~circuit:"s27" ~params ~query:"0") in
  check Alcotest.bool "report mentions tests"
    true (String.length report.Session.text > 0);
  check Alcotest.bool "explain found fault #0" true
    (String.length explain.Session.text > 0);
  let why = ok (Session.why s ~circuit:"s27" ~params ~query:"0") in
  (* why = explain + the effort/forensics lines: same resolution path,
     strictly more detail. *)
  check Alcotest.bool "why extends explain" true
    (String.length why.Session.text > String.length explain.Session.text);
  (match Session.explain s ~circuit:"s27" ~params ~query:"no-such-net" with
  | Error (Session.No_match _) -> ()
  | _ -> Alcotest.fail "expected No_match");
  (match Session.why s ~circuit:"s27" ~params ~query:"no-such-net" with
  | Error (Session.No_match _) -> ()
  | _ -> Alcotest.fail "expected No_match from why");
  match Session.info s ~circuit:"no-such-circuit" with
  | Error (Session.Unknown_circuit _) -> ()
  | _ -> Alcotest.fail "expected Unknown_circuit"

let test_ledger_matches_provenance () =
  let s = Session.create () in
  let jsonl = ok (Session.ledger_jsonl s ~circuit:"s27" ~params) in
  match Session.provenance s ~circuit:"s27" ~params with
  | Error e -> Alcotest.fail (Session.error_message e)
  | Ok p ->
    check Alcotest.string "ledger bytes match the provenance run"
      (Pdf_obs.Ledger.to_jsonl p.Pdf_experiments.Provenance.ledger)
      jsonl.Session.text

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)
(* ------------------------------------------------------------------ *)

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "pdfatpg_test_%s_%d.sock" name (Unix.getpid ()))

(* Run [f] against a live server on a fresh Unix socket; always sends
   shutdown and joins the server domain. *)
let with_server ?config name f =
  let path = sock_path name in
  let cfg =
    match config with
    | Some c -> { c with Server.bind = Server.Unix_path path }
    | None -> Server.default_config (Server.Unix_path path)
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run ~ready:(fun () -> Atomic.set ready true) cfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    (fd, Unix.in_channel_of_descr fd)
  in
  let send fd line =
    let line = line ^ "\n" in
    let len = String.length line in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write_substring fd line !off (len - !off)
    done
  in
  (* Read frames for one response; returns (payload, done/error frame). *)
  let read_response ic =
    let body = Buffer.create 256 in
    let rec go () =
      let frame = input_line ic in
      let v = Result.get_ok (J.parse frame) in
      match Option.bind (J.member "ev" v) J.to_str with
      | Some "chunk" ->
        Buffer.add_string body
          (Option.get (Option.bind (J.member "data" v) J.to_str));
        go ()
      | Some ("done" | "error") -> (Buffer.contents body, v)
      | _ -> Alcotest.fail ("unexpected frame: " ^ frame)
    in
    go ()
  in
  let request fd ic line =
    send fd line;
    read_response ic
  in
  Fun.protect
    ~finally:(fun () ->
      (try
         let fd, ic = connect () in
         ignore (request fd ic "{\"req\":\"shutdown\"}");
         close_in ic
       with _ -> ());
      Domain.join server)
    (fun () -> f ~connect ~send ~request)

let atpg_line ~id =
  Printf.sprintf
    "{\"id\":%d,\"req\":\"atpg\",\"circuit\":\"s27\",\"n_p\":200,\
     \"n_p0\":50,\"seed\":7}"
    id

let test_served_equals_session () =
  (* The determinism contract: the server's bytes are the session's
     bytes — and the batch CLI prints from the same session layer. *)
  let reference = Session.create () in
  let want_atpg =
    (ok (Session.atpg reference ~circuit:"s27" ~params
           ~ordering:Pdf_core.Ordering.Value_based ~relax:false))
      .Session.text
  in
  let want_report =
    (ok (Session.report reference ~circuit:"s27" ~params)).Session.text
  in
  let want_explain =
    (ok (Session.explain reference ~circuit:"s27" ~params ~query:"0"))
      .Session.text
  in
  let want_why =
    (ok (Session.why reference ~circuit:"s27" ~params ~query:"0"))
      .Session.text
  in
  with_server "bytes" (fun ~connect ~send:_ ~request ->
      let fd, ic = connect () in
      let got_atpg, d1 = request fd ic (atpg_line ~id:1) in
      check Alcotest.string "served atpg bytes" want_atpg got_atpg;
      check Alcotest.bool "cold first answer" false
        (match J.member "cached" d1 with Some (J.Bool b) -> b | _ -> true);
      let got_atpg2, d2 = request fd ic (atpg_line ~id:2) in
      check Alcotest.string "warm atpg bytes" want_atpg got_atpg2;
      check Alcotest.bool "warm second answer" true
        (match J.member "cached" d2 with Some (J.Bool b) -> b | _ -> false);
      let got_report, _ =
        request fd ic
          "{\"id\":3,\"req\":\"report\",\"circuit\":\"s27\",\"n_p\":200,\
           \"n_p0\":50,\"seed\":7}"
      in
      check Alcotest.string "served report bytes" want_report got_report;
      let got_explain, _ =
        request fd ic
          "{\"id\":4,\"req\":\"explain\",\"circuit\":\"s27\",\"query\":\"0\",\
           \"n_p\":200,\"n_p0\":50,\"seed\":7}"
      in
      check Alcotest.string "served explain bytes" want_explain got_explain;
      let got_why, _ =
        request fd ic
          "{\"id\":5,\"req\":\"why\",\"circuit\":\"s27\",\"query\":\"0\",\
           \"n_p\":200,\"n_p0\":50,\"seed\":7}"
      in
      check Alcotest.string "served why bytes" want_why got_why;
      close_in ic)

let test_server_error_codes () =
  let config =
    { (Server.default_config (Server.Unix_path "unused")) with
      Server.max_n_p = 500 }
  in
  with_server ~config "errors" (fun ~connect ~send:_ ~request ->
      let fd, ic = connect () in
      let code frame =
        Option.get (Option.bind (J.member "code" frame) J.to_str)
      in
      let _, e1 =
        request fd ic
          "{\"id\":1,\"req\":\"atpg\",\"circuit\":\"s27\",\"n_p\":501}"
      in
      check Alcotest.string "budget" "budget_exceeded" (code e1);
      let _, e2 =
        request fd ic "{\"id\":2,\"req\":\"info\",\"circuit\":\"nope\"}"
      in
      check Alcotest.string "unknown circuit" "unknown_circuit" (code e2);
      let _, e3 = request fd ic "{\"id\":3,\"req\":\"bogus\"}" in
      check Alcotest.string "unknown kind" "bad_request" (code e3);
      let _, e4 = request fd ic "not json at all" in
      check Alcotest.string "parse error" "parse_error" (code e4);
      close_in ic)

let test_concurrent_clients_demultiplexed () =
  with_server "concurrent" (fun ~connect ~send ~request:_ ->
      (* Four clients, requests interleaved before any response is
         read; each connection must get exactly its own response frames
         (FIFO execution, per-connection delivery, ids echoed). *)
      let clients =
        Array.init 4 (fun i ->
            let fd, ic = connect () in
            (i + 10, fd, ic))
      in
      Array.iter
        (fun (id, fd, _) ->
          if id mod 2 = 0 then send fd (atpg_line ~id)
          else
            send fd
              (Printf.sprintf
                 "{\"id\":%d,\"req\":\"info\",\"circuit\":\"s27\"}" id))
        clients;
      let info_text = ref "" and atpg_text = ref "" in
      Array.iter
        (fun (id, _, ic) ->
          let body = Buffer.create 128 in
          let rec go () =
            let v = Result.get_ok (J.parse (input_line ic)) in
            check Alcotest.int "frame routed to its client" id
              (match J.member "id" v with
              | Some (J.Num f) -> int_of_float f
              | _ -> -1);
            match Option.bind (J.member "ev" v) J.to_str with
            | Some "chunk" ->
              Buffer.add_string body
                (Option.get (Option.bind (J.member "data" v) J.to_str));
              go ()
            | Some "done" -> Buffer.contents body
            | _ -> Alcotest.fail "unexpected frame"
          in
          let text = go () in
          let slot = if id mod 2 = 0 then atpg_text else info_text in
          if !slot = "" then slot := text
          else check Alcotest.string "same answer for same query" !slot text)
        clients;
      check Alcotest.bool "info answered" true (!info_text <> "");
      check Alcotest.bool "atpg answered" true (!atpg_text <> "");
      Array.iter (fun (_, _, ic) -> close_in ic) clients)

let test_metrics_over_http () =
  with_server "metrics" (fun ~connect ~send ~request:_ ->
      let fd, ic = connect () in
      send fd "GET /metrics HTTP/1.0";
      let status = input_line ic in
      check Alcotest.bool "HTTP 200" true
        (String.length status >= 15 && String.sub status 0 15 = "HTTP/1.0 200 OK");
      let body = Buffer.create 1024 in
      (try
         while true do
           Buffer.add_string body (input_line ic);
           Buffer.add_char body '\n'
         done
       with End_of_file -> ());
      let body = Buffer.contents body in
      let has needle =
        let nl = String.length needle and bl = String.length body in
        let rec at i = i + nl <= bl && (String.sub body i nl = needle || at (i + 1)) in
        at 0
      in
      check Alcotest.bool "prometheus payload" true
        (has "pdf_serve_requests_total");
      close_in ic)

let () =
  Alcotest.run "pdf_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "parse ok" `Quick test_parse_ok;
          Alcotest.test_case "parse defaults" `Quick test_parse_defaults;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "frames round-trip" `Quick test_frames_round_trip;
        ] );
      ( "session",
        [
          Alcotest.test_case "second request re-parses nothing" `Quick
            test_second_request_reparses_nothing;
          Alcotest.test_case "explain/report consistency" `Quick
            test_explain_report_consistent;
          Alcotest.test_case "ledger matches provenance" `Quick
            test_ledger_matches_provenance;
        ] );
      ( "server",
        [
          Alcotest.test_case "served bytes = session bytes" `Quick
            test_served_equals_session;
          Alcotest.test_case "error codes" `Quick test_server_error_codes;
          Alcotest.test_case "4 concurrent clients demultiplexed" `Quick
            test_concurrent_clients_demultiplexed;
          Alcotest.test_case "/metrics over HTTP" `Quick test_metrics_over_http;
        ] );
    ]
