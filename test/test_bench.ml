(* Statistical benchmarking core (Pdf_obs.Bstat), the unified benchmark
   report (Pdf_experiments.Benchmark) and the per-domain allocation
   accounting contract of Pdf_obs.Span. *)

module Bstat = Pdf_obs.Bstat
module Json_text = Pdf_obs.Json_text
module Fingerprint = Pdf_obs.Fingerprint
module Span = Pdf_obs.Span
module Benchmark = Pdf_experiments.Benchmark
module Profiles = Pdf_synth.Profiles

let qcheck = QCheck_alcotest.to_alcotest
let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?eps msg expected got =
  if not (feq ?eps expected got) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected got

(* ---------------- Bstat: quantiles and summaries ---------------- *)

let test_quantile () =
  let v = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Bstat.quantile v 0.5);
  check_float "q1" 2. (Bstat.quantile v 0.25);
  check_float "q3" 4. (Bstat.quantile v 0.75);
  check_float "min" 1. (Bstat.quantile v 0.);
  check_float "max" 5. (Bstat.quantile v 1.);
  (* Linear interpolation between order statistics. *)
  check_float "interpolated" 1.5 (Bstat.quantile [| 1.; 2. |] 0.5);
  check_float "singleton" 7. (Bstat.quantile [| 7. |] 0.9)

let test_summarize_known () =
  let s = Bstat.summarize [| 5.; 1.; 3.; 2.; 4. |] in
  Alcotest.(check int) "n_raw" 5 s.Bstat.n_raw;
  Alcotest.(check int) "outliers" 0 s.Bstat.outliers;
  check_float "median" 3. s.Bstat.median_s;
  check_float "mean" 3. s.Bstat.mean_s;
  check_float "min" 1. s.Bstat.min_s;
  check_float "max" 5. s.Bstat.max_s;
  check_float "q1" 2. s.Bstat.q1_s;
  check_float "q3" 4. s.Bstat.q3_s;
  check_float "iqr" 2. s.Bstat.iqr_s;
  check_float "stddev" (sqrt 2.) s.Bstat.stddev_s

let test_summarize_rejects_outlier () =
  (* Fences on the raw vector: q1 = 2, q3 = 4, so the upper Tukey fence
     is 4 + 1.5*2 = 7 and the 100 sample is rejected; the remaining
     statistics are computed on [1;2;3;4]. *)
  let s = Bstat.summarize [| 1.; 2.; 3.; 4.; 100. |] in
  Alcotest.(check int) "outliers" 1 s.Bstat.outliers;
  check_float "median after rejection" 2.5 s.Bstat.median_s;
  check_float "max after rejection" 4. s.Bstat.max_s

let test_summarize_constant () =
  let s = Bstat.summarize (Array.make 6 0.25) in
  Alcotest.(check int) "outliers" 0 s.Bstat.outliers;
  check_float "median" 0.25 s.Bstat.median_s;
  check_float "iqr" 0. s.Bstat.iqr_s;
  check_float "noise" 0. (Bstat.noise_pct s)

let test_summarize_does_not_mutate () =
  let v = [| 3.; 1.; 2. |] in
  ignore (Bstat.summarize v : Bstat.summary);
  Alcotest.(check bool) "input untouched" true (v = [| 3.; 1.; 2. |])

let test_summarize_empty () =
  Alcotest.check_raises "empty vector"
    (Invalid_argument "Bstat.summarize: empty sample vector") (fun () ->
      ignore (Bstat.summarize [||] : Bstat.summary))

(* ---------------- Bstat: measurement ---------------- *)

let test_measure_shape () =
  let runs = ref 0 in
  let m = Bstat.measure ~warmup:2 ~repeat:4 ~min_sample_s:0. (fun () -> incr runs) in
  Alcotest.(check int) "samples" 4 (Array.length m.Bstat.samples);
  Alcotest.(check int) "iters (no calibration)" 1 m.Bstat.iters;
  (* warmup + repeat * iters executions *)
  Alcotest.(check int) "executions" 6 !runs;
  Array.iter
    (fun s -> Alcotest.(check bool) "sample >= 0" true (s >= 0.))
    m.Bstat.samples;
  Alcotest.(check bool) "gc counters >= 0" true
    (m.Bstat.gc.Bstat.minor_collections >= 0
    && m.Bstat.gc.Bstat.major_collections >= 0
    && m.Bstat.gc.Bstat.promoted_words >= 0.
    && m.Bstat.gc.Bstat.top_heap_words > 0)

let test_measure_calibrates () =
  (* A near-instant thunk must get a calibrated inner loop well above
     one iteration when a minimum sample duration is requested. *)
  let m = Bstat.measure ~warmup:0 ~repeat:2 ~min_sample_s:0.001 (fun () -> ()) in
  Alcotest.(check bool) "iters > 1" true (m.Bstat.iters > 1)

let test_measure_validates () =
  Alcotest.check_raises "repeat < 1"
    (Invalid_argument "Bstat.measure: repeat < 1") (fun () ->
      ignore (Bstat.measure ~repeat:0 (fun () -> ()) : Bstat.measurement))

(* ---------------- Bstat: comparator ---------------- *)

let summary_of samples = Bstat.summarize samples

let test_compare_identical_is_same () =
  let s = summary_of [| 1.0; 1.1; 0.9; 1.05; 0.95 |] in
  (match Bstat.compare_medians ~baseline:s ~current:s () with
  | Bstat.Same -> ()
  | v -> Alcotest.failf "expected same, got %s" (Bstat.verdict_to_string v));
  match
    Bstat.compare_medians ~min_effect_pct:0. ~baseline:s ~current:s ()
  with
  | Bstat.Same -> ()
  | v ->
    Alcotest.failf "expected same at zero effect floor, got %s"
      (Bstat.verdict_to_string v)

let test_compare_shift_is_directional () =
  let base = summary_of [| 1.0; 1.01; 0.99; 1.0; 1.0 |] in
  let slower = summary_of [| 2.0; 2.02; 1.98; 2.0; 2.0 |] in
  (match Bstat.compare_medians ~baseline:base ~current:slower () with
  | Bstat.Slower pct -> check_float ~eps:1e-6 "slowdown pct" 100. pct
  | v -> Alcotest.failf "expected slower, got %s" (Bstat.verdict_to_string v));
  match Bstat.compare_medians ~baseline:slower ~current:base () with
  | Bstat.Faster pct -> check_float ~eps:1e-6 "speedup pct" 50. pct
  | v -> Alcotest.failf "expected faster, got %s" (Bstat.verdict_to_string v)

let test_compare_noise_band_suppresses () =
  (* A 20% shift inside a 50% noise band is not a verdict; the same
     shift on quiet samples is. *)
  let noisy = summary_of [| 1.0; 0.75; 1.25; 0.8; 1.2 |] in
  Alcotest.(check bool) "setup: really noisy" true
    (Bstat.noise_pct noisy > 20.);
  let shifted =
    summary_of (Array.map (fun s -> s *. 1.2) [| 1.0; 0.75; 1.25; 0.8; 1.2 |])
  in
  (match Bstat.compare_medians ~baseline:noisy ~current:shifted () with
  | Bstat.Same -> ()
  | v ->
    Alcotest.failf "noise should suppress the verdict, got %s"
      (Bstat.verdict_to_string v));
  let quiet = summary_of [| 1.0; 1.001; 0.999; 1.0; 1.0 |] in
  let quiet_shifted =
    summary_of (Array.map (fun s -> s *. 1.2) [| 1.0; 1.001; 0.999; 1.0; 1.0 |])
  in
  match Bstat.compare_medians ~baseline:quiet ~current:quiet_shifted () with
  | Bstat.Slower _ -> ()
  | v ->
    Alcotest.failf "quiet shift must be a verdict, got %s"
      (Bstat.verdict_to_string v)

let test_compare_zero_baseline () =
  let zero = summary_of [| 0.; 0.; 0. |] in
  let nonzero = summary_of [| 1.; 1.; 1. |] in
  match Bstat.compare_medians ~baseline:zero ~current:nonzero () with
  | Bstat.Same -> ()
  | v -> Alcotest.failf "zero baseline, got %s" (Bstat.verdict_to_string v)

let positive_samples =
  QCheck.(
    map
      (fun (hd, tl) -> Array.of_list (List.map abs_float (hd :: tl)))
      (pair (float_bound_exclusive 1.0) (small_list (float_bound_exclusive 1.0))))

let prop_same_sample_no_change =
  QCheck.Test.make ~name:"same sample set compares as same" ~count:200
    positive_samples (fun samples ->
      let s = Bstat.summarize samples in
      Bstat.compare_medians ~baseline:s ~current:s () = Bstat.Same)

let prop_large_shift_is_regression =
  QCheck.Test.make ~name:"10x shift on any sample set is a regression"
    ~count:200 positive_samples (fun samples ->
      let base = Bstat.summarize samples in
      QCheck.assume (base.Bstat.median_s > 0.);
      (* Scaling every sample by 10 scales median and IQR together, so
         noise_pct is unchanged and an 900% shift clears any band the
         generator can produce only when noise < 900%. *)
      QCheck.assume (Bstat.noise_pct base < 900.);
      let cur = Bstat.summarize (Array.map (fun s -> s *. 10.) samples) in
      match Bstat.compare_medians ~baseline:base ~current:cur () with
      | Bstat.Slower _ -> true
      | _ -> false)

(* ---------------- Benchmark: schema and determinism ---------------- *)

let tiny_params =
  {
    Benchmark.circuits = [ Option.get (Profiles.find "s27") ];
    n_tests = 8;
    n_p = 20;
    n_p0 = 5;
    seed = 7;
  }

let run_tiny () =
  let suite = Option.get (Benchmark.find_suite "paths") in
  Benchmark.run_suite ~warmup:0 ~repeat:2 ~min_sample_s:0. ~params:tiny_params
    suite

let parse_exn text =
  match Json_text.parse text with
  | Ok v -> v
  | Error msg -> Alcotest.failf "report does not parse: %s" msg

let member_exn name v =
  match Json_text.member name v with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

let test_report_schema () =
  let report = run_tiny () in
  let json = parse_exn (Benchmark.to_json report) in
  (match member_exn "schema" json with
  | Json_text.Str "pdf-bench-report/1" -> ()
  | _ -> Alcotest.fail "schema id");
  let fp = member_exn "fingerprint" json in
  List.iter
    (fun field -> ignore (member_exn field fp : Json_text.v))
    [
      "version"; "git_rev"; "git_dirty"; "ocaml_version"; "hostname";
      "os_type"; "word_size"; "jobs"; "bitsim";
    ];
  let cases =
    match member_exn "cases" json with
    | Json_text.Arr cases -> cases
    | _ -> Alcotest.fail "cases must be an array"
  in
  Alcotest.(check bool) "has cases" true (cases <> []);
  List.iter
    (fun case ->
      let gc = member_exn "gc" case in
      List.iter
        (fun field -> ignore (member_exn field gc : Json_text.v))
        [
          "minor_collections"; "major_collections"; "promoted_words";
          "top_heap_words";
        ];
      ignore (member_exn "throughput" case : Json_text.v);
      ignore (member_exn "median_s" case : Json_text.v);
      ignore (member_exn "samples" case : Json_text.v))
    cases

let test_report_determinism () =
  (* Two runs of the same suite on the same tree must agree on
     everything but timing: stripping the timing-derived fields leaves
     identical documents. *)
  let a = parse_exn (Benchmark.to_json (run_tiny ())) in
  let b = parse_exn (Benchmark.to_json (run_tiny ())) in
  Alcotest.(check bool) "timing fields differ between runs" true (a <> b);
  Alcotest.(check bool) "comparable projections identical" true
    (Benchmark.comparable_projection a = Benchmark.comparable_projection b)

let test_compare_with_baseline_self () =
  let report = run_tiny () in
  let baseline = parse_exn (Benchmark.to_json report) in
  match Benchmark.compare_with_baseline ~max_regress_pct:5. ~baseline report with
  | Error msg -> Alcotest.fail msg
  | Ok cmp ->
    Alcotest.(check int) "all cases matched"
      (List.length report.Benchmark.results)
      (List.length cmp.Benchmark.deltas);
    Alcotest.(check (list string)) "baseline-only" [] cmp.Benchmark.only_in_baseline;
    Alcotest.(check (list string)) "current-only" [] cmp.Benchmark.only_in_current;
    Alcotest.(check int) "no regressions" 0 (List.length cmp.Benchmark.regressions)

let test_compare_with_baseline_regression () =
  let report = run_tiny () in
  (* A baseline that claims every case used to run 10x faster, with no
     noise: the fresh run must regress on every case. *)
  let fast =
    {
      report with
      Benchmark.results =
        List.map
          (fun r ->
            {
              r with
              Benchmark.r_stats =
                {
                  r.Benchmark.r_stats with
                  Bstat.median_s = r.Benchmark.r_stats.Bstat.median_s /. 10.;
                  min_s = r.Benchmark.r_stats.Bstat.min_s /. 10.;
                  iqr_s = 0.;
                };
            })
          report.Benchmark.results;
    }
  in
  let baseline = parse_exn (Benchmark.to_json fast) in
  match Benchmark.compare_with_baseline ~max_regress_pct:5. ~baseline report with
  | Error msg -> Alcotest.fail msg
  | Ok cmp ->
    Alcotest.(check int) "every case regresses"
      (List.length report.Benchmark.results)
      (List.length cmp.Benchmark.regressions)

let test_compare_rejects_garbage () =
  let report = run_tiny () in
  match
    Benchmark.compare_with_baseline ~max_regress_pct:5.
      ~baseline:(parse_exn "{\"schema\": \"something-else\"}")
      report
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a schema-less baseline must be rejected"

let test_fingerprint () =
  let fp = Fingerprint.capture ~jobs:3 ~bitsim:false () in
  Alcotest.(check int) "jobs" 3 fp.Fingerprint.jobs;
  Alcotest.(check bool) "bitsim" false fp.Fingerprint.bitsim;
  Alcotest.(check bool) "word size" true
    (fp.Fingerprint.word_size = Sys.word_size);
  Alcotest.(check string) "ocaml version" Sys.ocaml_version
    fp.Fingerprint.ocaml_version;
  let line = Fingerprint.summary_line fp in
  Alcotest.(check bool) "summary mentions the version" true
    (String.length line >= String.length Fingerprint.version);
  let json = parse_exn (Fingerprint.to_json fp) in
  match Json_text.member "jobs" json with
  | Some (Json_text.Num 3.) -> ()
  | _ -> Alcotest.fail "fingerprint json jobs"

(* ---------------- Span: per-domain allocation accounting ---------------- *)

let test_span_alloc_is_self_domain () =
  (* A jobs:4 pool (submitter + 3 spawned workers) fans out three tasks
     that rendezvous on a start barrier — so they run on three distinct
     domains — and then allocate ~10M words each, but only when running
     on a spawned worker (rank > 0; the submitter drains the queue too,
     and its own allocation legitimately belongs to the span).  At least
     two tasks therefore allocate ~10M words each on foreign domains.
     The enclosing span must account the submitting domain's own
     allocation only: with the old Gc.quick_stat accounting it would be
     charged the workers' >= 20M words. *)
  let worker_words = 10_000_000 in
  let captured = ref None in
  let old_sink = Span.sink () in
  Span.set_sink (Span.Emit (fun r -> captured := Some r));
  Fun.protect
    ~finally:(fun () -> Span.set_sink old_sink)
    (fun () ->
      let started = Atomic.make 0 in
      let foreign =
        Pdf_par.Pool.with_pool ~jobs:4 (fun pool ->
            Span.with_ "fanout" (fun () ->
                Pdf_par.Pool.map pool
                  (fun _ ->
                    Atomic.incr started;
                    while Atomic.get started < 3 do
                      Domain.cpu_relax ()
                    done;
                    if Pdf_par.Pool.worker_rank () = 0 then 0
                    else begin
                      let words = ref 0. in
                      let sink = ref [] in
                      while !words < float_of_int worker_words do
                        sink := (1, 2) :: !sink;
                        words := !words +. 3.;
                        if !words >= 3e6 then sink := []
                      done;
                      ignore (Sys.opaque_identity (List.length !sink));
                      1
                    end)
                  [ 1; 2; 3 ]))
      in
      Alcotest.(check bool) "at least two tasks ran on spawned workers" true
        (List.fold_left ( + ) 0 foreign >= 2));
  match !captured with
  | None -> Alcotest.fail "span record not emitted"
  | Some r ->
    Alcotest.(check bool) "alloc clamped at zero" true (r.Span.alloc_words >= 0.);
    (* Self-domain only: far below the >= 20M words the workers
       allocated.  The submitting domain still allocates a little
       (closures, the result list), so allow a million-word slack. *)
    Alcotest.(check bool)
      (Printf.sprintf "self-domain accounting (got %.0f words)"
         r.Span.alloc_words)
      true
      (r.Span.alloc_words < 1_000_000.)

let () =
  Alcotest.run "pdf_bench"
    [
      ( "bstat-summary",
        [
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "known distribution" `Quick test_summarize_known;
          Alcotest.test_case "outlier rejection" `Quick
            test_summarize_rejects_outlier;
          Alcotest.test_case "constant samples" `Quick test_summarize_constant;
          Alcotest.test_case "input not mutated" `Quick
            test_summarize_does_not_mutate;
          Alcotest.test_case "empty vector" `Quick test_summarize_empty;
        ] );
      ( "bstat-measure",
        [
          Alcotest.test_case "shape" `Quick test_measure_shape;
          Alcotest.test_case "calibration" `Quick test_measure_calibrates;
          Alcotest.test_case "validation" `Quick test_measure_validates;
        ] );
      ( "bstat-compare",
        [
          Alcotest.test_case "identical is same" `Quick
            test_compare_identical_is_same;
          Alcotest.test_case "directional shift" `Quick
            test_compare_shift_is_directional;
          Alcotest.test_case "noise band suppresses" `Quick
            test_compare_noise_band_suppresses;
          Alcotest.test_case "zero baseline" `Quick test_compare_zero_baseline;
          qcheck prop_same_sample_no_change;
          qcheck prop_large_shift_is_regression;
        ] );
      ( "report",
        [
          Alcotest.test_case "unified schema fields" `Quick test_report_schema;
          Alcotest.test_case "determinism modulo timing" `Quick
            test_report_determinism;
          Alcotest.test_case "self-compare is clean" `Quick
            test_compare_with_baseline_self;
          Alcotest.test_case "regression detected" `Quick
            test_compare_with_baseline_regression;
          Alcotest.test_case "garbage baseline rejected" `Quick
            test_compare_rejects_garbage;
          Alcotest.test_case "fingerprint" `Quick test_fingerprint;
        ] );
      ( "span-alloc",
        [
          Alcotest.test_case "3-domain pool, self-domain accounting" `Quick
            test_span_alloc_is_self_domain;
        ] );
    ]
