(* Tests for Pdf_check: the oracle registry, the circuit shrinker and
   the fuzz driver.  The deterministic smoke campaign must stay clean;
   the mutation test proves the harness catches a real (deliberately
   injected) packed-simulator bug and shrinks it to a tiny reproducer. *)

module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate
module Builder = Pdf_circuit.Builder
module Req = Pdf_values.Req
module Wsim = Pdf_bitsim.Wsim
module Test_pair = Pdf_core.Test_pair
module Oracle = Pdf_check.Oracle
module Shrink = Pdf_check.Shrink
module Fuzz = Pdf_check.Fuzz

let check = Alcotest.check

let c17 = Pdf_synth.Iscas.c17 ()

let with_injected_bug f =
  Wsim.set_injected_bug true;
  Fun.protect ~finally:(fun () -> Wsim.set_injected_bug false) f

let with_inc_injected_bug f =
  Wsim.set_inc_injected_bug true;
  Fun.protect ~finally:(fun () -> Wsim.set_inc_injected_bug false) f

let with_podem_injected_bug f =
  Pdf_core.Podem.set_injected_bug true;
  Fun.protect ~finally:(fun () -> Pdf_core.Podem.set_injected_bug false) f

(* A config small enough for CI smoke: a handful of rounds over the
   default grid, no reproducer files. *)
let smoke_config =
  { Fuzz.default_config with Fuzz.seed = 42; rounds = 6; emit = false }

(* ------------------------------------------------------------------ *)
(* Oracle registry and brute force                                      *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  check Alcotest.bool "non-empty" true (Oracle.all <> []);
  let names = Oracle.names () in
  check Alcotest.int "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun n ->
      match Oracle.find n with
      | Some o -> check Alcotest.string "find roundtrip" n o.Oracle.name
      | None -> Alcotest.failf "oracle %s not found" n)
    names;
  check Alcotest.bool "unknown name" true (Oracle.find "nope" = None)

let test_brute_force_finds_witness () =
  let n22 = Option.get (Circuit.find_net c17 "N22") in
  (match Oracle.brute_force c17 [ (n22, Req.rising) ] with
  | None -> Alcotest.fail "no witness for a satisfiable requirement"
  | Some t ->
    check Alcotest.bool "witness satisfies" true
      (Test_pair.satisfies c17 t [ (n22, Req.rising) ]));
  check Alcotest.bool "contradiction unsatisfiable" false
    (Oracle.brute_force_satisfiable c17
       [ (n22, Req.stable true); (n22, Req.stable false) ])

let test_brute_force_pi_cap () =
  let b = Builder.create "wide" in
  for i = 0 to Oracle.max_brute_force_pis do
    Builder.add_pi b (Printf.sprintf "i%d" i)
  done;
  Builder.add_gate b ~out:"o" Gate.Or
    (List.init (Oracle.max_brute_force_pis + 1) (Printf.sprintf "i%d"));
  Builder.add_po b "o";
  let c = Builder.finish_exn b in
  Alcotest.check_raises "cap enforced"
    (Invalid_argument
       (Printf.sprintf "Oracle.brute_force: %d PIs exceeds the %d-PI cap"
          (Oracle.max_brute_force_pis + 1)
          Oracle.max_brute_force_pis))
    (fun () -> ignore (Oracle.brute_force c []))

let test_oracles_pass_on_c17 () =
  List.iter
    (fun (o : Oracle.t) ->
      match Oracle.run o { Oracle.circuit = c17; seed = 7 } with
      | Oracle.Fail m -> Alcotest.failf "oracle %s failed on c17: %s" o.Oracle.name m
      | Oracle.Pass | Oracle.Skip _ -> ())
    Oracle.all

(* ------------------------------------------------------------------ *)
(* Shrinking                                                            *)
(* ------------------------------------------------------------------ *)

let test_shrink_to_property_core () =
  (* Property: the circuit still contains an AND gate.  The shrinker
     must cut c17-plus-extras down to a couple of nets around one. *)
  let b = Builder.create "sh" in
  List.iter (Builder.add_pi b) [ "a"; "b"; "c"; "d" ];
  Builder.add_gate b ~out:"n1" Gate.Nand [ "a"; "b" ];
  Builder.add_gate b ~out:"n2" Gate.And [ "n1"; "c" ];
  Builder.add_gate b ~out:"n3" Gate.Or [ "n2"; "d" ];
  Builder.add_gate b ~out:"n4" Gate.Not [ "n3" ];
  Builder.add_po b "n3";
  Builder.add_po b "n4";
  let c = Builder.finish_exn b in
  let has_and c =
    Array.exists (fun (g : Circuit.gate) -> g.Circuit.kind = Gate.And) c.Circuit.gates
  in
  check Alcotest.bool "property holds initially" true (has_and c);
  let shrunk = Shrink.shrink ~prop:has_and c in
  check Alcotest.bool "property preserved" true (has_and shrunk);
  check Alcotest.bool "strictly smaller" true
    (Shrink.size shrunk < Shrink.size c);
  check Alcotest.int "single gate remains" 1 (Circuit.num_gates shrunk);
  check Alcotest.(result unit string) "valid" (Ok ())
    (Circuit.validate shrunk)

let test_shrink_is_deterministic () =
  let prop c = Circuit.num_gates c >= 2 in
  let c =
    Pdf_synth.Generators.random_dag ~name:"det" ~seed:11
      {
        Pdf_synth.Generators.num_pis = 5;
        num_gates = 20;
        window = 8;
        max_fanout = 3;
        reuse_pct = 10;
        restart_pct = 10;
        fanin3_pct = 20;
        inverter_pct = 25;
        po_taps = 1;
      }
  in
  let a = Shrink.shrink ~prop c in
  let b = Shrink.shrink ~prop c in
  check Alcotest.int "same size" (Shrink.size a) (Shrink.size b);
  check Alcotest.int "two gates" 2 (Circuit.num_gates a);
  check Alcotest.string "same bench text"
    (Pdf_circuit.Bench_io.to_string a)
    (Pdf_circuit.Bench_io.to_string b)

(* ------------------------------------------------------------------ *)
(* Fuzz campaigns                                                       *)
(* ------------------------------------------------------------------ *)

let test_smoke_campaign_clean () =
  let s = Fuzz.run smoke_config in
  check Alcotest.int "all rounds ran" smoke_config.Fuzz.rounds
    s.Fuzz.rounds_run;
  check Alcotest.int "checks = rounds x oracles"
    (smoke_config.Fuzz.rounds * List.length Oracle.all)
    s.Fuzz.checks;
  check Alcotest.int "no violations" 0 (List.length s.Fuzz.violations);
  check Alcotest.bool "some passes" true (s.Fuzz.passes > 0)

let test_campaign_deterministic () =
  let a = Fuzz.run smoke_config in
  let b = Fuzz.run smoke_config in
  check Alcotest.int "passes" a.Fuzz.passes b.Fuzz.passes;
  check Alcotest.int "skips" a.Fuzz.skips b.Fuzz.skips;
  check Alcotest.int "violations"
    (List.length a.Fuzz.violations)
    (List.length b.Fuzz.violations)

let test_campaign_ledger () =
  let mk () =
    let l = Pdf_obs.Ledger.create () in
    ignore (Fuzz.run ~ledger:l smoke_config);
    l
  in
  let a = mk () and b = mk () in
  check Alcotest.string "ledger bytes deterministic"
    (Pdf_obs.Ledger.to_jsonl a) (Pdf_obs.Ledger.to_jsonl b);
  check Alcotest.int "one header"
    1 (List.length (Pdf_obs.Ledger.find a ~kind:"fuzz_run" (fun _ -> true)));
  check Alcotest.int "one record per round" smoke_config.Fuzz.rounds
    (List.length (Pdf_obs.Ledger.find a ~kind:"fuzz_round" (fun _ -> true)))

(* The acceptance-criterion mutation test (DESIGN.md §10): with the
   deliberate packed-simulator bug injected, the differential oracles
   must flag a violation, the shrinker must cut the reproducer down to
   a handful of gates, and the emitted .repro file must replay. *)
let test_mutation_caught_and_shrunk () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pdf_check_mut_%d" (Unix.getpid ()))
  in
  let summary =
    with_injected_bug (fun () ->
        Fuzz.run
          {
            Fuzz.default_config with
            Fuzz.seed = 42;
            rounds = 20;
            out_dir = dir;
            max_violations = 1;
          })
  in
  match summary.Fuzz.violations with
  | [] -> Alcotest.fail "injected packed-simulator bug was not caught"
  | v :: _ ->
    check Alcotest.string "caught by the simulation oracle" "packed-sim"
      v.Fuzz.oracle;
    check Alcotest.bool "shrunk to <= 30 gates" true
      (Circuit.num_gates v.Fuzz.shrunk <= 30);
    check Alcotest.bool "shrunk no larger than original" true
      (Shrink.size v.Fuzz.shrunk <= Shrink.size v.Fuzz.circuit);
    check Alcotest.(result unit string) "shrunk circuit valid" (Ok ())
      (Circuit.validate v.Fuzz.shrunk);
    (match v.Fuzz.files with
    | None -> Alcotest.fail "no reproducer emitted"
    | Some (bench, repro) ->
      check Alcotest.bool "bench exists" true (Sys.file_exists bench);
      (* Replaying with the bug still injected reproduces the failure;
         with the bug fixed the oracle passes again. *)
      (match with_injected_bug (fun () -> Fuzz.replay repro) with
      | Ok (oracle, Oracle.Fail _) ->
        check Alcotest.string "replay runs the same oracle" "packed-sim"
          oracle
      | Ok (_, _) -> Alcotest.fail "replay did not reproduce the failure"
      | Error m -> Alcotest.failf "replay error: %s" m);
      (match Fuzz.replay repro with
      | Ok (_, Oracle.Pass) -> ()
      | Ok (_, Oracle.Fail m) ->
        Alcotest.failf "reproducer fails without the injected bug: %s" m
      | Ok (_, Oracle.Skip m) ->
        Alcotest.failf "reproducer skipped without the injected bug: %s" m
      | Error m -> Alcotest.failf "replay error: %s" m);
      Sys.remove bench;
      Sys.remove repro);
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())

(* Same self-test for the incremental path: the deliberate Wsim.Inc bug
   (a w3-only flip silently dropped) leaves every full-pass engine
   correct, so only the inc-sim oracle can see the divergence.  The
   campaign must catch it there and the shrinker must keep the
   reproducer failing while the full-pass differential oracles pass. *)
let test_inc_mutation_caught_and_shrunk () =
  let summary =
    with_inc_injected_bug (fun () ->
        Fuzz.run
          {
            smoke_config with
            Fuzz.rounds = 20;
            max_violations = 1;
          })
  in
  match summary.Fuzz.violations with
  | [] -> Alcotest.fail "injected incremental-path bug was not caught"
  | v :: _ ->
    check Alcotest.string "caught by the incremental oracle" "inc-sim"
      v.Fuzz.oracle;
    check Alcotest.bool "shrunk to <= 30 gates" true
      (Circuit.num_gates v.Fuzz.shrunk <= 30);
    check Alcotest.bool "shrunk no larger than original" true
      (Shrink.size v.Fuzz.shrunk <= Shrink.size v.Fuzz.circuit);
    check Alcotest.(result unit string) "shrunk circuit valid" (Ok ())
      (Circuit.validate v.Fuzz.shrunk);
    let oracle = Option.get (Oracle.find "inc-sim") in
    let ctx = { Oracle.circuit = v.Fuzz.shrunk; seed = v.Fuzz.oracle_seed } in
    (match with_inc_injected_bug (fun () -> Oracle.run oracle ctx) with
    | Oracle.Fail _ -> ()
    | Oracle.Pass | Oracle.Skip _ ->
      Alcotest.fail "shrunk reproducer no longer fails with the bug");
    (match Oracle.run oracle ctx with
    | Oracle.Pass -> ()
    | Oracle.Fail m ->
      Alcotest.failf "shrunk reproducer fails without the injected bug: %s" m
    | Oracle.Skip m -> Alcotest.failf "reproducer skipped: %s" m)

(* And for the structural justification engine: the deliberate PODEM
   implication bug (a multi-input gate's second-pattern implication
   reading its first fanin's first-pattern value) corrupts the engine's
   view of the circuit self-consistently, so only independent
   re-simulation of its answers — the justify-podem oracle's three-way
   differential — can expose it.  This campaign restricts itself to
   that oracle through the [oracles] filter, which doubles as the
   filter's test. *)
let test_podem_mutation_caught_and_shrunk () =
  let summary =
    with_podem_injected_bug (fun () ->
        Fuzz.run
          {
            smoke_config with
            Fuzz.rounds = 20;
            max_violations = 1;
            oracles = [ "justify-podem" ];
          })
  in
  check Alcotest.bool "filtered campaign ran only one oracle per round" true
    (summary.Fuzz.checks <= 20);
  match summary.Fuzz.violations with
  | [] -> Alcotest.fail "injected PODEM implication bug was not caught"
  | v :: _ ->
    check Alcotest.string "caught by the PODEM oracle" "justify-podem"
      v.Fuzz.oracle;
    check Alcotest.bool "shrunk to <= 30 gates" true
      (Circuit.num_gates v.Fuzz.shrunk <= 30);
    check Alcotest.bool "shrunk no larger than original" true
      (Shrink.size v.Fuzz.shrunk <= Shrink.size v.Fuzz.circuit);
    check Alcotest.(result unit string) "shrunk circuit valid" (Ok ())
      (Circuit.validate v.Fuzz.shrunk);
    let oracle = Option.get (Oracle.find "justify-podem") in
    let ctx = { Oracle.circuit = v.Fuzz.shrunk; seed = v.Fuzz.oracle_seed } in
    (match with_podem_injected_bug (fun () -> Oracle.run oracle ctx) with
    | Oracle.Fail _ -> ()
    | Oracle.Pass | Oracle.Skip _ ->
      Alcotest.fail "shrunk reproducer no longer fails with the bug");
    (match Oracle.run oracle ctx with
    | Oracle.Pass -> ()
    | Oracle.Fail m ->
      Alcotest.failf "shrunk reproducer fails without the injected bug: %s" m
    | Oracle.Skip m -> Alcotest.failf "reproducer skipped: %s" m)

let test_fuzz_unknown_oracle_rejected () =
  Alcotest.check_raises "unknown oracle name"
    (Invalid_argument "Fuzz.run: unknown oracle \"nope\"") (fun () ->
      ignore (Fuzz.run { smoke_config with Fuzz.oracles = [ "nope" ] }))

let test_replay_rejects_garbage () =
  (match Fuzz.replay "/nonexistent/file.repro" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for a missing file");
  let path = Filename.temp_file "pdf_check" ".repro" in
  let oc = open_out path in
  output_string oc "oracle: packed-sim\n";
  close_out oc;
  (match Fuzz.replay path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error for missing fields");
  Sys.remove path

let () =
  Alcotest.run "pdf_check"
    [
      ( "oracle",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "brute force witness" `Quick
            test_brute_force_finds_witness;
          Alcotest.test_case "brute force PI cap" `Quick
            test_brute_force_pi_cap;
          Alcotest.test_case "all oracles pass on c17" `Quick
            test_oracles_pass_on_c17;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "shrinks to property core" `Quick
            test_shrink_to_property_core;
          Alcotest.test_case "deterministic" `Quick
            test_shrink_is_deterministic;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "smoke campaign clean" `Slow
            test_smoke_campaign_clean;
          Alcotest.test_case "campaign deterministic" `Slow
            test_campaign_deterministic;
          Alcotest.test_case "campaign ledger" `Slow test_campaign_ledger;
          Alcotest.test_case "mutation caught and shrunk" `Slow
            test_mutation_caught_and_shrunk;
          Alcotest.test_case "inc mutation caught and shrunk" `Slow
            test_inc_mutation_caught_and_shrunk;
          Alcotest.test_case "podem mutation caught and shrunk" `Slow
            test_podem_mutation_caught_and_shrunk;
          Alcotest.test_case "unknown oracle rejected" `Quick
            test_fuzz_unknown_oracle_rejected;
          Alcotest.test_case "replay rejects garbage" `Quick
            test_replay_rejects_garbage;
        ] );
    ]
