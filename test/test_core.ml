(* Tests for Pdf_core: two-pattern tests, justification, fault simulation,
   compaction orderings, basic ATPG and the enrichment procedure. *)

module Bit = Pdf_values.Bit
module Req = Pdf_values.Req
module Circuit = Pdf_circuit.Circuit
module Delay_model = Pdf_paths.Delay_model
module Fault = Pdf_faults.Fault
module Robust = Pdf_faults.Robust
module Target_sets = Pdf_faults.Target_sets
module Test_pair = Pdf_core.Test_pair
module Justify = Pdf_core.Justify
module Fault_sim = Pdf_core.Fault_sim
module Ordering = Pdf_core.Ordering
module Atpg = Pdf_core.Atpg
module Ledger = Pdf_obs.Ledger
module Rng = Pdf_util.Rng

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let s27 = Pdf_synth.Iscas.s27 ()

let s27_sets = Target_sets.build s27 (Delay_model.lines s27) ~n_p:40 ~n_p0:10
let s27_faults = Fault_sim.prepare s27 s27_sets.Target_sets.p
let s27_n0 = List.length s27_sets.Target_sets.p0
let s27_p0 = List.init s27_n0 (fun i -> i)
let s27_p1 =
  List.init (Array.length s27_faults - s27_n0) (fun i -> s27_n0 + i)

(* ------------------------------------------------------------------ *)
(* Test_pair                                                            *)
(* ------------------------------------------------------------------ *)

let test_pair_basics () =
  let t = Test_pair.create [| true; false |] [| false; false |] in
  check Alcotest.string "render" "10/00" (Test_pair.to_string t);
  check Alcotest.bool "equal self" true (Test_pair.equal t t);
  let u = Test_pair.create [| true; false |] [| false; true |] in
  check Alcotest.bool "not equal" false (Test_pair.equal t u)

let test_pair_length_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Test_pair.create: pattern lengths differ") (fun () ->
      ignore (Test_pair.create [| true |] [| true; false |]))

let test_pair_simulate_matches_two_pattern () =
  let t =
    Test_pair.create
      [| true; false; true; false; true; false; true |]
      [| false; false; true; true; true; false; false |]
  in
  let values = Test_pair.simulate s27 t in
  let direct = Pdf_sim.Two_pattern.simulate s27 (Test_pair.pi_pairs t) in
  Array.iteri
    (fun net v ->
      check Alcotest.bool "same triple" true
        (Pdf_values.Triple.equal v direct.(net)))
    values

(* ------------------------------------------------------------------ *)
(* Justify                                                              *)
(* ------------------------------------------------------------------ *)

let test_justify_every_s27_fault () =
  (* Every fault that survived the undetectability filter must be
     justifiable in this tiny, highly testable circuit — and the returned
     test must satisfy the fault's conditions exactly. *)
  let engine = Justify.create s27 in
  let rng = Rng.create 5 in
  Array.iter
    (fun (p : Fault_sim.prepared) ->
      match Justify.run engine ~rng ~reqs:p.Fault_sim.reqs with
      | None ->
        (* Random decisions may miss; retry a few times before failing. *)
        let retried = ref false in
        for _ = 1 to 20 do
          if not !retried then
            match Justify.run engine ~rng ~reqs:p.Fault_sim.reqs with
            | Some t ->
              retried := true;
              check Alcotest.bool "satisfies" true
                (Test_pair.satisfies s27 t p.Fault_sim.reqs)
            | None -> ()
        done;
        if not !retried then
          Alcotest.failf "no test found for %s"
            (Fault.to_string s27 p.Fault_sim.fault)
      | Some t ->
        check Alcotest.bool "satisfies" true
          (Test_pair.satisfies s27 t p.Fault_sim.reqs))
    s27_faults

let test_justify_direct_conflict_returns_none () =
  let engine = Justify.create s27 in
  let rng = Rng.create 1 in
  check Alcotest.bool "conflicting reqs" true
    (Justify.run engine ~rng ~reqs:[ (0, Req.rising); (0, Req.falling) ] = None)

let test_justify_unsatisfiable_internal () =
  (* G8 = AND(G14, G6) with G14 = NOT(G0): requiring G8 stable 1 and G0
     stable 1 is impossible. *)
  let g8 = Option.get (Circuit.find_net s27 "G8") in
  let g0 = Option.get (Circuit.find_net s27 "G0") in
  let engine = Justify.create s27 in
  let rng = Rng.create 1 in
  check Alcotest.bool "unsatisfiable" true
    (Justify.run engine ~rng
       ~reqs:[ (g8, Req.stable true); (g0, Req.stable true) ]
    = None)

let test_justify_empty_reqs () =
  let engine = Justify.create s27 in
  let rng = Rng.create 1 in
  match Justify.run engine ~rng ~reqs:[] with
  | Some t ->
    check Alcotest.int "full width" s27.Circuit.num_pis
      (Array.length t.Test_pair.v1)
  | None -> Alcotest.fail "empty requirements must be satisfiable"

let test_justify_requirement_on_pi () =
  let engine = Justify.create s27 in
  let rng = Rng.create 1 in
  match Justify.run engine ~rng ~reqs:[ (0, Req.rising) ] with
  | Some t ->
    check Alcotest.bool "pi rises" true
      ((not t.Test_pair.v1.(0)) && t.Test_pair.v3.(0))
  | None -> Alcotest.fail "pi transition must be satisfiable"

let test_justify_counters () =
  let engine = Justify.create s27 in
  let rng = Rng.create 1 in
  let before = Justify.runs engine in
  ignore (Justify.run engine ~rng ~reqs:[]);
  check Alcotest.int "runs counted" (before + 1) (Justify.runs engine);
  check Alcotest.bool "trials monotone" true (Justify.trials engine >= 0)

let test_justify_deterministic_given_seed () =
  let run () =
    let engine = Justify.create s27 in
    let rng = Rng.create 42 in
    Array.map
      (fun (p : Fault_sim.prepared) ->
        match Justify.run engine ~rng ~reqs:p.Fault_sim.reqs with
        | Some t -> Test_pair.to_string t
        | None -> "-")
      s27_faults
  in
  check Alcotest.(array string) "reproducible" (run ()) (run ())

(* Property: on random small DAGs, any test returned by justification
   satisfies the requirements it was asked for. *)
let prop_justify_sound =
  QCheck.Test.make ~name:"justified tests satisfy their requirements"
    ~count:25
    (QCheck.make (QCheck.Gen.int_range 0 100_000))
    (fun seed ->
      let params =
        { Pdf_synth.Generators.num_pis = 6; num_gates = 25; window = 15;
          max_fanout = 3; reuse_pct = 5; restart_pct = 0; fanin3_pct = 10;
          inverter_pct = 25; po_taps = 1 }
      in
      let c = Pdf_synth.Generators.random_dag ~name:"rand" ~seed params in
      let model = Delay_model.lines c in
      let ts = Target_sets.build c model ~n_p:20 ~n_p0:6 in
      let faults = Fault_sim.prepare c ts.Target_sets.p in
      let engine = Justify.create c in
      let rng = Rng.create seed in
      Array.for_all
        (fun (p : Fault_sim.prepared) ->
          match Justify.run engine ~rng ~reqs:p.Fault_sim.reqs with
          | None -> true
          | Some t -> Test_pair.satisfies c t p.Fault_sim.reqs)
        faults)

(* ------------------------------------------------------------------ *)
(* Fault_sim                                                            *)
(* ------------------------------------------------------------------ *)

let test_fault_sim_ids_are_indices () =
  Array.iteri
    (fun i (p : Fault_sim.prepared) -> check Alcotest.int "id" i p.Fault_sim.id)
    s27_faults

let test_fault_sim_matches_satisfies () =
  let t =
    Test_pair.create
      [| true; false; true; false; true; false; true |]
      [| false; true; true; true; false; false; true |]
  in
  let detected = Fault_sim.detected_by_test s27 t s27_faults in
  Array.iteri
    (fun i d ->
      check Alcotest.bool "agrees with satisfies" d
        (Test_pair.satisfies s27 t s27_faults.(i).Fault_sim.reqs))
    detected

let test_fault_sim_union_over_tests () =
  let t1 =
    Test_pair.create (Array.make 7 false) (Array.make 7 true)
  in
  let t2 =
    Test_pair.create (Array.make 7 true) (Array.make 7 false)
  in
  let d1 = Fault_sim.detected_by_test s27 t1 s27_faults in
  let d2 = Fault_sim.detected_by_test s27 t2 s27_faults in
  let both = Fault_sim.detected_by_tests s27 [ t1; t2 ] s27_faults in
  Array.iteri
    (fun i b -> check Alcotest.bool "union" (d1.(i) || d2.(i)) b)
    both

let test_fault_sim_count () =
  check Alcotest.int "count" 2 (Fault_sim.count [| true; false; true |]);
  check Alcotest.int "empty" 0 (Fault_sim.count [||])

(* ------------------------------------------------------------------ *)
(* Ordering                                                             *)
(* ------------------------------------------------------------------ *)

let test_ordering_names () =
  List.iter
    (fun o ->
      check Alcotest.bool "roundtrip" true
        (Ordering.of_name (Ordering.name o) = Some o))
    Ordering.all;
  check Alcotest.bool "long names" true
    (Ordering.of_name "value-based" = Some Ordering.Value_based);
  check Alcotest.bool "unknown" true (Ordering.of_name "zigzag" = None);
  check Alcotest.int "four heuristics" 4 (List.length Ordering.all)

(* Golden regression: pin the exact test-set sizes and folded-secondary
   counts each heuristic produces on s27 (seed 9, all 32 prepared
   faults).  Any change to target ordering, folding or justification
   shows up here before it shows up as a silent quality drift in the
   paper's tables.  Values obtained by running the current engine. *)
let test_ordering_goldens_s27 () =
  let goldens =
    [
      (* ordering, tests, detected, aborts, folded, accidental *)
      (Ordering.Uncompacted, 13, 32, 0, 0, 19);
      (Ordering.Arbitrary, 7, 32, 1, 25, 0);
      (Ordering.Length_based, 7, 32, 0, 25, 0);
      (Ordering.Value_based, 7, 32, 0, 25, 0);
    ]
  in
  List.iter
    (fun (ordering, tests, detected, aborts, folded, accidental) ->
      let name = Ordering.name ordering in
      let l = Ledger.create () in
      (* Pinned numbers are the simulation backend's; request it
         explicitly so the goldens hold under any PDF_JUSTIFY. *)
      let res =
        Atpg.basic ~ledger:l ~justify:Justify.Sim s27
          { Atpg.ordering; seed = 9 } ~faults:s27_faults
      in
      let via v =
        List.length
          (Ledger.find l ~kind:"fault" (fun r ->
               Ledger.get_string r "via" = Some v))
      in
      check Alcotest.int (name ^ " tests") tests (List.length res.Atpg.tests);
      check Alcotest.int (name ^ " detected") detected
        (Fault_sim.count res.Atpg.detected);
      check Alcotest.int (name ^ " aborts") aborts res.Atpg.primary_aborts;
      check Alcotest.int (name ^ " folded secondaries") folded (via "folded");
      check Alcotest.int (name ^ " accidental") accidental (via "accidental");
      (* Default backend: every test record names the simulation engine
         as its winner. *)
      let test_records = Ledger.find l ~kind:"test" (fun _ -> true) in
      check Alcotest.int (name ^ " test records") tests
        (List.length test_records);
      List.iter
        (fun r ->
          check
            Alcotest.(option string)
            (name ^ " engine field") (Some "sim")
            (Ledger.get_string r "engine"))
        test_records)
    goldens

(* ------------------------------------------------------------------ *)
(* Atpg                                                                 *)
(* ------------------------------------------------------------------ *)

let faults0 = Array.of_list (List.map (fun i -> s27_faults.(i)) s27_p0)

let run_basic ordering =
  Atpg.basic s27 { Atpg.ordering; seed = 9 } ~faults:faults0

let test_atpg_detected_flags_sound () =
  (* The detected array must agree with an independent fault simulation of
     the produced test set. *)
  List.iter
    (fun ordering ->
      let res = run_basic ordering in
      let resim = Fault_sim.detected_by_tests s27 res.Atpg.tests faults0 in
      Array.iteri
        (fun i d ->
          check Alcotest.bool
            (Printf.sprintf "%s fault %d" (Ordering.name ordering) i)
            d res.Atpg.detected.(i))
        resim)
    Ordering.all

let test_atpg_every_test_useful () =
  (* Every generated test detects at least one target fault. *)
  let res = run_basic Ordering.Value_based in
  List.iter
    (fun t ->
      let d = Fault_sim.detected_by_test s27 t faults0 in
      check Alcotest.bool "useful test" true (Fault_sim.count d > 0))
    res.Atpg.tests

let test_atpg_compaction_reduces_tests () =
  let uncomp = run_basic Ordering.Uncompacted in
  let values = run_basic Ordering.Value_based in
  check Alcotest.bool "compaction no worse" true
    (List.length values.Atpg.tests <= List.length uncomp.Atpg.tests);
  (* Coverage must be roughly the same (identical on s27). *)
  check Alcotest.int "same coverage"
    (Fault_sim.count uncomp.Atpg.detected)
    (Fault_sim.count values.Atpg.detected)

let test_atpg_deterministic () =
  let a = run_basic Ordering.Value_based in
  let b = run_basic Ordering.Value_based in
  check Alcotest.int "same tests" (List.length a.Atpg.tests)
    (List.length b.Atpg.tests);
  List.iter2
    (fun x y -> check Alcotest.bool "same test vectors" true (Test_pair.equal x y))
    a.Atpg.tests b.Atpg.tests

let test_atpg_tests_bounded_by_primaries () =
  let res = run_basic Ordering.Value_based in
  check Alcotest.bool "tests <= primaries" true
    (List.length res.Atpg.tests <= Array.length faults0)

let test_enrich_detects_p0_like_basic () =
  let basic = run_basic Ordering.Value_based in
  let enrich = Atpg.enrich s27 ~seed:9 ~faults:s27_faults ~p0:s27_p0 ~p1:s27_p1 in
  (* P0 coverage must not degrade (on s27 both reach full coverage). *)
  check Alcotest.bool "P0 coverage at least as good" true
    (Atpg.count_detected enrich ~ids:s27_p0
    >= Fault_sim.count basic.Atpg.detected)

let test_enrich_p1_beats_accidental () =
  let basic = run_basic Ordering.Value_based in
  let accidental = Fault_sim.detected_by_tests s27 basic.Atpg.tests s27_faults in
  let acc_p1 =
    List.fold_left (fun k i -> if accidental.(i) then k + 1 else k) 0 s27_p1
  in
  let enrich = Atpg.enrich s27 ~seed:9 ~faults:s27_faults ~p0:s27_p0 ~p1:s27_p1 in
  let enr_p1 = Atpg.count_detected enrich ~ids:s27_p1 in
  check Alcotest.bool "enrichment >= accidental on P1" true (enr_p1 >= acc_p1)

let test_enrich_flags_sound () =
  let enrich = Atpg.enrich s27 ~seed:9 ~faults:s27_faults ~p0:s27_p0 ~p1:s27_p1 in
  let resim = Fault_sim.detected_by_tests s27 enrich.Atpg.tests s27_faults in
  Array.iteri
    (fun i d -> check Alcotest.bool "flag matches resim" d enrich.Atpg.detected.(i))
    resim

let test_enrich_empty_p1 () =
  let ids = List.init (Array.length faults0) (fun i -> i) in
  let res = Atpg.enrich s27 ~seed:9 ~faults:faults0 ~p0:ids ~p1:[] in
  check Alcotest.bool "works with empty P1" true
    (Fault_sim.count res.Atpg.detected > 0)

let test_count_detected_subsets () =
  let enrich = Atpg.enrich s27 ~seed:9 ~faults:s27_faults ~p0:s27_p0 ~p1:s27_p1 in
  let total = Fault_sim.count enrich.Atpg.detected in
  check Alcotest.int "subset counts add up" total
    (Atpg.count_detected enrich ~ids:s27_p0
    + Atpg.count_detected enrich ~ids:s27_p1)

(* Property on random circuits: ATPG soundness — detected flags always
   re-simulate; no test is useless. *)
let prop_atpg_sound_random =
  QCheck.Test.make ~name:"ATPG soundness on random DAGs" ~count:10
    (QCheck.make (QCheck.Gen.int_range 0 100_000))
    (fun seed ->
      let params =
        { Pdf_synth.Generators.num_pis = 8; num_gates = 40; window = 25;
          max_fanout = 3; reuse_pct = 5; restart_pct = 0; fanin3_pct = 10;
          inverter_pct = 30; po_taps = 1 }
      in
      let c = Pdf_synth.Generators.random_dag ~name:"rand" ~seed params in
      let model = Delay_model.lines c in
      let ts = Target_sets.build c model ~n_p:30 ~n_p0:10 in
      let faults = Fault_sim.prepare c ts.Target_sets.p in
      if Array.length faults = 0 then true
      else begin
        let n0 = min (List.length ts.Target_sets.p0) (Array.length faults) in
        let p0 = List.init n0 (fun i -> i) in
        let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
        let res = Atpg.enrich c ~seed ~faults ~p0 ~p1 in
        let resim = Fault_sim.detected_by_tests c res.Atpg.tests faults in
        resim = res.Atpg.detected
        && List.for_all
             (fun t ->
               Fault_sim.count (Fault_sim.detected_by_test c t faults) > 0)
             res.Atpg.tests
      end)


(* ------------------------------------------------------------------ *)
(* Static compaction                                                    *)
(* ------------------------------------------------------------------ *)

module Static = Pdf_core.Static_compaction

let test_static_reverse_preserves_coverage () =
  let res = run_basic Ordering.Uncompacted in
  let compacted = Static.reverse_order s27 faults0 res.Atpg.tests in
  check Alcotest.bool "coverage preserved" true
    (Static.coverage_preserved s27 faults0 ~original:res.Atpg.tests
       ~compacted);
  check Alcotest.bool "not longer" true
    (List.length compacted <= List.length res.Atpg.tests)

let test_static_greedy_preserves_coverage () =
  let res = run_basic Ordering.Uncompacted in
  let compacted = Static.greedy_cover s27 faults0 res.Atpg.tests in
  check Alcotest.bool "coverage preserved" true
    (Static.coverage_preserved s27 faults0 ~original:res.Atpg.tests
       ~compacted);
  check Alcotest.bool "not longer" true
    (List.length compacted <= List.length res.Atpg.tests)

let test_static_drops_redundant () =
  (* Duplicate the test set: at least half must be dropped. *)
  let res = run_basic Ordering.Value_based in
  let doubled = res.Atpg.tests @ res.Atpg.tests in
  let reverse = Static.reverse_order s27 faults0 doubled in
  let greedy = Static.greedy_cover s27 faults0 doubled in
  check Alcotest.bool "reverse drops duplicates" true
    (List.length reverse <= List.length res.Atpg.tests);
  check Alcotest.bool "greedy drops duplicates" true
    (List.length greedy <= List.length res.Atpg.tests)

let test_static_empty () =
  check Alcotest.int "reverse of empty" 0
    (List.length (Static.reverse_order s27 faults0 []));
  check Alcotest.int "greedy of empty" 0
    (List.length (Static.greedy_cover s27 faults0 []))

(* ------------------------------------------------------------------ *)
(* Coverage                                                             *)
(* ------------------------------------------------------------------ *)

module Coverage = Pdf_core.Coverage

let test_coverage_buckets () =
  let res = run_basic Ordering.Value_based in
  let cov = Coverage.of_flags faults0 res.Atpg.detected in
  check Alcotest.int "total" (Array.length faults0) cov.Coverage.total;
  check Alcotest.int "detected"
    (Fault_sim.count res.Atpg.detected)
    cov.Coverage.detected;
  let bucket_total =
    List.fold_left
      (fun a (b : Coverage.bucket) -> a + b.Coverage.total)
      0 cov.Coverage.buckets
  in
  let bucket_detected =
    List.fold_left
      (fun a (b : Coverage.bucket) -> a + b.Coverage.detected)
      0 cov.Coverage.buckets
  in
  check Alcotest.int "buckets partition totals" cov.Coverage.total bucket_total;
  check Alcotest.int "buckets partition detected" cov.Coverage.detected
    bucket_detected;
  (* Buckets sorted by decreasing length, each within range. *)
  let rec sorted : Coverage.bucket list -> bool = function
    | a :: (b :: _ as rest) ->
      a.Coverage.length > b.Coverage.length && sorted rest
    | [ _ ] | [] -> true
  in
  check Alcotest.bool "sorted" true (sorted cov.Coverage.buckets);
  List.iter
    (fun (b : Coverage.bucket) ->
      check Alcotest.bool "detected <= total" true
        (b.Coverage.detected <= b.Coverage.total))
    cov.Coverage.buckets

let test_coverage_percentage () =
  let all = Coverage.of_flags faults0 (Array.make (Array.length faults0) true) in
  check (Alcotest.float 0.01) "100%%" 100. (Coverage.percentage all);
  let none = Coverage.of_flags faults0 (Array.make (Array.length faults0) false) in
  check (Alcotest.float 0.01) "0%%" 0. (Coverage.percentage none);
  let empty = Coverage.of_flags [||] [||] in
  check (Alcotest.float 0.01) "empty set" 0. (Coverage.percentage empty)

let test_coverage_tables_render () =
  let res = run_basic Ordering.Value_based in
  let cov = Coverage.of_flags faults0 res.Atpg.detected in
  let s = Pdf_util.Table.render (Coverage.to_table cov) in
  check Alcotest.bool "has all row" true
    (let n = String.length s in
     let rec go i = i + 3 <= n && (String.sub s i 3 = "all" || go (i + 1)) in
     go 0);
  let cmp =
    Pdf_util.Table.render
      (Coverage.comparison_table ~labels:[ "a"; "b" ] [ cov; cov ])
  in
  check Alcotest.bool "comparison non-empty" true (String.length cmp > 20)

let test_coverage_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Coverage.of_flags: length mismatch") (fun () ->
      ignore (Coverage.of_flags faults0 [| true |]))

(* ------------------------------------------------------------------ *)
(* Multi-set enrichment                                                 *)
(* ------------------------------------------------------------------ *)

let test_enrich_multi_matches_two_pool () =
  let res2 = Atpg.enrich s27 ~seed:9 ~faults:s27_faults ~p0:s27_p0 ~p1:s27_p1 in
  let multi =
    Atpg.enrich_multi s27 ~seed:9 ~faults:s27_faults
      ~pools:[ s27_p0; s27_p1 ]
  in
  check Alcotest.int "same tests" (List.length res2.Atpg.tests)
    (List.length multi.Atpg.tests);
  check Alcotest.bool "same detection" true
    (res2.Atpg.detected = multi.Atpg.detected)

let test_enrich_multi_three_pools_sound () =
  let k = List.length s27_p1 / 2 in
  let p1a = List.filteri (fun i _ -> i < k) s27_p1 in
  let p1b = List.filteri (fun i _ -> i >= k) s27_p1 in
  let res =
    Atpg.enrich_multi s27 ~seed:9 ~faults:s27_faults ~pools:[ s27_p0; p1a; p1b ]
  in
  let resim = Fault_sim.detected_by_tests s27 res.Atpg.tests s27_faults in
  check Alcotest.bool "flags sound" true (resim = res.Atpg.detected)

let test_enrich_multi_no_pools () =
  Alcotest.check_raises "empty pools"
    (Invalid_argument "Atpg.enrich_multi: no pools") (fun () ->
      ignore (Atpg.enrich_multi s27 ~seed:1 ~faults:s27_faults ~pools:[]))


(* ------------------------------------------------------------------ *)
(* Timing simulation (physical ground truth)                            *)
(* ------------------------------------------------------------------ *)

module Timing = Pdf_core.Timing

let s27_model = Delay_model.lines s27

let test_timing_fault_free_matches_logic () =
  (* Final settled values equal the plain logic simulation of v3. *)
  let t =
    Test_pair.create
      [| true; false; true; false; true; false; true |]
      [| false; true; true; true; false; false; true |]
  in
  let r = Timing.simulate s27 s27_model t in
  let expected = Pdf_sim.Logic_sim.simulate_bool s27 t.Test_pair.v3 in
  Array.iteri
    (fun net w ->
      check Alcotest.bool
        (Printf.sprintf "net %d settles to v3 response" net)
        expected.(net)
        (Timing.final_value w))
    r.Timing.waveforms;
  (* Initial values equal the v1 response. *)
  let initial = Pdf_sim.Logic_sim.simulate_bool s27 t.Test_pair.v1 in
  Array.iteri
    (fun net w -> check Alcotest.bool "initial is v1 response" initial.(net)
        w.Timing.initial)
    r.Timing.waveforms

let test_timing_settle_within_period () =
  (* Fault-free settling never exceeds the nominal critical delay. *)
  let period = Timing.nominal_period s27 s27_model in
  check Alcotest.int "period is the longest path length" 10 period;
  let rng = Rng.create 17 in
  for _ = 1 to 50 do
    let bits () = Array.init 7 (fun _ -> Rng.bool rng) in
    let t = Test_pair.create (bits ()) (bits ()) in
    let r = Timing.simulate s27 s27_model t in
    check Alcotest.bool "settles within period" true
      (r.Timing.settle_time <= period)
  done

let test_timing_stable_inputs_quiet () =
  let v = [| true; false; true; true; false; true; false |] in
  let r = Timing.simulate s27 s27_model (Test_pair.create v v) in
  check Alcotest.int "no events" 0 r.Timing.settle_time;
  Array.iter
    (fun w -> check Alcotest.int "no changes" 0 (List.length w.Timing.changes))
    r.Timing.waveforms

let test_timing_value_at () =
  let w = { Timing.initial = false; changes = [ (3, true); (7, false) ] } in
  check Alcotest.bool "before" false (Timing.value_at w 2);
  check Alcotest.bool "at first change" true (Timing.value_at w 3);
  check Alcotest.bool "between" true (Timing.value_at w 6);
  check Alcotest.bool "after" false (Timing.value_at w 9);
  check Alcotest.bool "final" false (Timing.final_value w)

(* The central physical claim: a robust test detects the injected fault
   whenever the fault consumes the slack, and never "detects" the fault
   when no extra delay is injected. *)
let test_timing_robust_tests_catch_slow_paths () =
  let period = Timing.nominal_period s27 s27_model in
  let engine = Justify.create s27 in
  let rng = Rng.create 5 in
  let checked = ref 0 in
  Array.iter
    (fun (p : Fault_sim.prepared) ->
      match Justify.run engine ~rng ~reqs:p.Fault_sim.reqs with
      | None -> ()
      | Some t ->
        incr checked;
        let slack = period - p.Fault_sim.length in
        let inject =
          { Timing.path = p.Fault_sim.fault.Fault.path; extra = slack + 1 }
        in
        check Alcotest.bool
          (Printf.sprintf "physically detected: %s"
             (Fault.to_string s27 p.Fault_sim.fault))
          true
          (Timing.detects s27 s27_model ~t_sample:period ~inject t);
        check Alcotest.bool "no false positive without extra delay" false
          (Timing.detects s27 s27_model ~t_sample:period
             ~inject:{ inject with Timing.extra = 0 }
             t))
    s27_faults;
  check Alcotest.bool "exercised at least 30 faults" true (!checked >= 30)

let test_timing_small_fault_within_slack_hides () =
  (* A short path with a small injected delay still meets timing: the
     robust test must NOT flag it at the nominal period. *)
  let period = Timing.nominal_period s27 s27_model in
  let short =
    Array.to_list s27_faults
    |> List.filter (fun (p : Fault_sim.prepared) ->
           period - p.Fault_sim.length > 2)
  in
  QCheck.assume (short <> []);
  let engine = Justify.create s27 in
  let rng = Rng.create 6 in
  List.iter
    (fun (p : Fault_sim.prepared) ->
      match Justify.run engine ~rng ~reqs:p.Fault_sim.reqs with
      | None -> ()
      | Some t ->
        let inject =
          { Timing.path = p.Fault_sim.fault.Fault.path; extra = 0 }
        in
        check Alcotest.bool "zero extra is never detected" false
          (Timing.detects s27 s27_model ~t_sample:period ~inject t))
    short


(* ------------------------------------------------------------------ *)
(* Branch-and-bound justification                                       *)
(* ------------------------------------------------------------------ *)

let test_bnb_finds_and_satisfies () =
  let engine = Justify.create s27 in
  Array.iter
    (fun (p : Fault_sim.prepared) ->
      match Justify.run_complete engine ~reqs:p.Fault_sim.reqs with
      | Justify.Found t ->
        check Alcotest.bool "satisfies" true
          (Test_pair.satisfies s27 t p.Fault_sim.reqs)
      | Justify.Proved_unsatisfiable ->
        (* Allowed only if the randomized search also never finds it;
           on s27 everything kept by the filter is testable. *)
        Alcotest.failf "bnb refuted a testable fault: %s"
          (Fault.to_string s27 p.Fault_sim.fault)
      | Justify.Gave_up -> Alcotest.fail "bnb budget too small for s27")
    s27_faults

let test_bnb_deterministic () =
  let engine = Justify.create s27 in
  let show p =
    match Justify.run_complete engine ~reqs:p.Fault_sim.reqs with
    | Justify.Found t -> Test_pair.to_string t
    | Justify.Proved_unsatisfiable -> "unsat"
    | Justify.Gave_up -> "gave-up"
  in
  Array.iter
    (fun p -> check Alcotest.string "same result" (show p) (show p))
    s27_faults

let test_bnb_proves_unsatisfiable () =
  let engine = Justify.create s27 in
  let g8 = Option.get (Circuit.find_net s27 "G8") in
  let g0 = Option.get (Circuit.find_net s27 "G0") in
  check Alcotest.bool "direct conflict" true
    (Justify.run_complete engine ~reqs:[ (0, Req.rising); (0, Req.falling) ]
    = Justify.Proved_unsatisfiable);
  check Alcotest.bool "internal contradiction" true
    (Justify.run_complete engine
       ~reqs:[ (g8, Req.stable true); (g0, Req.stable true) ]
    = Justify.Proved_unsatisfiable)

let test_bnb_at_least_as_strong_as_sim () =
  let engine = Justify.create s27 in
  let rng = Rng.create 77 in
  Array.iter
    (fun (p : Fault_sim.prepared) ->
      let sim = Justify.run engine ~rng ~reqs:p.Fault_sim.reqs in
      match sim, Justify.run_complete engine ~reqs:p.Fault_sim.reqs with
      | Some _, Justify.Proved_unsatisfiable ->
        Alcotest.fail "bnb refuted what sim satisfied"
      | (Some _ | None), (Justify.Found _ | Justify.Proved_unsatisfiable
        | Justify.Gave_up) -> ())
    s27_faults

(* Agreement with exhaustive search on c17: run_complete is a decision
   procedure for requirement satisfiability (given enough budget). *)
let test_bnb_complete_on_c17 () =
  let c17 = Pdf_synth.Iscas.c17 () in
  let engine = Justify.create c17 in
  let rng = Rng.create 123 in
  let kinds = [| Req.stable false; Req.stable true; Req.final false;
                 Req.final true; Req.rising; Req.falling |] in
  let brute reqs =
    let found = ref false in
    for a = 0 to 31 do
      for b = 0 to 31 do
        if not !found then begin
          let bits v = Array.init 5 (fun i -> (v lsr i) land 1 = 1) in
          let t = Test_pair.create (bits a) (bits b) in
          if Test_pair.satisfies c17 t reqs then found := true
        end
      done
    done;
    !found
  in
  for _ = 1 to 100 do
    let n_reqs = 1 + Rng.int rng 3 in
    let reqs =
      List.init n_reqs (fun _ ->
          ( Rng.int rng (Circuit.num_nets c17),
            kinds.(Rng.int rng (Array.length kinds)) ))
    in
    match Justify.run_complete ~max_backtracks:100_000 engine ~reqs with
    | Justify.Found t ->
      check Alcotest.bool "found test satisfies" true
        (Test_pair.satisfies c17 t reqs);
      check Alcotest.bool "brute force agrees satisfiable" true (brute reqs)
    | Justify.Proved_unsatisfiable ->
      check Alcotest.bool "brute force agrees unsatisfiable" false (brute reqs)
    | Justify.Gave_up -> Alcotest.fail "budget exhausted on c17"
  done



(* ------------------------------------------------------------------ *)
(* PODEM structural justification                                       *)
(* ------------------------------------------------------------------ *)

module Podem = Pdf_core.Podem
module Pool = Pdf_par.Pool
module Generators = Pdf_synth.Generators

let test_podem_s27_finds_all () =
  let eng = Podem.create s27 in
  Array.iter
    (fun (p : Fault_sim.prepared) ->
      match Podem.run eng ~reqs:p.Fault_sim.reqs with
      | Podem.Found t ->
        check Alcotest.bool "satisfies" true
          (Test_pair.satisfies s27 t p.Fault_sim.reqs)
      | Podem.Proved_unsatisfiable ->
        Alcotest.failf "podem refuted a testable fault: %s"
          (Fault.to_string s27 p.Fault_sim.fault)
      | Podem.Gave_up -> Alcotest.fail "podem budget too small for s27")
    s27_faults

let test_podem_proves_unsatisfiable () =
  let eng = Podem.create s27 in
  let g8 = Option.get (Circuit.find_net s27 "G8") in
  let g0 = Option.get (Circuit.find_net s27 "G0") in
  check Alcotest.bool "direct conflict" true
    (Podem.run eng ~reqs:[ (0, Req.rising); (0, Req.falling) ]
    = Podem.Proved_unsatisfiable);
  check Alcotest.bool "internal contradiction" true
    (Podem.run eng ~reqs:[ (g8, Req.stable true); (g0, Req.stable true) ]
    = Podem.Proved_unsatisfiable)

let test_podem_deterministic () =
  let show eng (p : Fault_sim.prepared) =
    match Podem.run eng ~reqs:p.Fault_sim.reqs with
    | Podem.Found t -> Test_pair.to_string t
    | Podem.Proved_unsatisfiable -> "unsat"
    | Podem.Gave_up -> "gave-up"
  in
  let a = Podem.create s27 and b = Podem.create s27 in
  Array.iter
    (fun p -> check Alcotest.string "same result" (show a p) (show b p))
    s27_faults

(* Drive a bounded PODEM search by hand through the exposed internals,
   asserting the search-state invariants at every step:

   - the frontier of unsatisfied requirement components is non-empty
     whenever the requirements are unmet and no conflict is implied
     (and empty exactly when they are satisfied);
   - every backtrace lands on an unassigned pattern bit of a cone PI;
   - implication is monotone: a definite implied value never changes
     when a further assignment is added;
   - unassigning the bit and re-implying restores the exact state
     (the engine's backtracking is a true undo). *)
let prop_podem_search_invariants =
  QCheck.Test.make ~name:"PODEM internals: search-state invariants"
    ~count:40
    (QCheck.make (QCheck.Gen.int_range 0 100_000))
    (fun seed ->
      let params =
        { Pdf_synth.Generators.num_pis = 6; num_gates = 25; window = 15;
          max_fanout = 3; reuse_pct = 5; restart_pct = 0; fanin3_pct = 10;
          inverter_pct = 25; po_taps = 1 }
      in
      let c = Generators.random_dag ~name:"rand" ~seed params in
      let model = Delay_model.lines c in
      let ts = Target_sets.build c model ~n_p:12 ~n_p0:4 in
      let faults = Fault_sim.prepare c ts.Target_sets.p in
      let eng = Podem.create c in
      let module I = Podem.Internal in
      let failure = ref None in
      let fail msg = if !failure = None then failure := Some msg in
      let check_fault (p : Fault_sim.prepared) =
        match I.prepare eng ~reqs:p.Fault_sim.reqs with
        | None -> () (* directly conflicting requirement set *)
        | Some st ->
          let continue_ = ref true in
          let steps = ref 0 in
          while !failure = None && !continue_ && !steps < 60 do
            incr steps;
            if I.conflict st <> None then continue_ := false
            else if I.satisfied st then begin
              if I.frontier st <> [] then
                fail "satisfied state has a non-empty frontier";
              continue_ := false
            end
            else begin
              if I.frontier st = [] then
                fail "unmet requirements with an empty frontier";
              match I.objective st with
              | None ->
                fail "no objective despite unmet requirements";
                continue_ := false
              | Some obj -> (
                match I.backtrace st obj with
                | None -> continue_ := false (* frozen objective: refuted *)
                | Some (pi, j, v) ->
                  if not (Array.exists (Int.equal pi) (I.cone_pis st)) then
                    fail "backtrace left the requirement cone";
                  if j <> 1 && j <> 3 then fail "bad pattern index";
                  let before = I.snapshot st in
                  let pos = if j = 1 then pi else c.Circuit.num_pis + 1 + pi in
                  if before.[pos] <> 'x' then
                    fail "backtrace targeted an assigned bit";
                  I.assign st (pi, j, v);
                  I.imply st;
                  let after = I.snapshot st in
                  let bar = String.index before '|' in
                  String.iteri
                    (fun i ch ->
                      if i > bar && (ch = '0' || ch = '1') && after.[i] <> ch
                      then fail "definite implied value changed under refinement")
                    before;
                  I.unassign st (pi, j);
                  I.imply st;
                  if not (String.equal (I.snapshot st) before) then
                    fail "unassign + imply did not restore the state";
                  (* re-apply the decision and keep searching *)
                  I.assign st (pi, j, v);
                  I.imply st)
            end
          done
      in
      Array.iter check_fault faults;
      match !failure with
      | None -> true
      | Some msg -> QCheck.Test.fail_report msg)

(* ------------------------------------------------------------------ *)
(* Engine-level goldens: sim / podem / portfolio                        *)
(* ------------------------------------------------------------------ *)

let enrich_with c ~seed kind ~n_p ~n_p0 =
  let model = Delay_model.lines c in
  let ts = Target_sets.build c model ~n_p ~n_p0 in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  let n0 = min (List.length ts.Target_sets.p0) (Array.length faults) in
  let p0 = List.init n0 Fun.id in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  Atpg.enrich c ~seed ~justify:kind ~faults ~p0 ~p1

(* Fixed-seed circuits drawn from the fuzz harness's deep and reconv
   grids (lib/check/fuzz.ml) where the simulation-based search aborts:
   deep logic stacks up side-input stability conditions, reconvergent
   fanout correlates them.  Golden values pin the exact behaviour of
   each backend; the structural engine must strictly reduce the aborted
   fault count on both — that is the point of having it. *)
let fuzz_base =
  { Pdf_synth.Generators.num_pis = 6; num_gates = 30; window = 12;
    max_fanout = 3; reuse_pct = 10; restart_pct = 10; fanin3_pct = 20;
    inverter_pct = 25; po_taps = 1 }

let deep_circuit =
  Generators.random_dag ~name:"deep7" ~seed:7
    { fuzz_base with Generators.window = 5; restart_pct = 5 }

let reconv_circuit =
  Generators.random_dag ~name:"reconv2" ~seed:2
    { fuzz_base with Generators.reuse_pct = 30; max_fanout = 4 }

let test_engine_goldens () =
  let goldens =
    [
      (* circuit, kind, (tests, detected, aborted primaries) *)
      ("s27", s27, 40, 10, [ (Justify.Sim, (7, 32, 0));
                             (Justify.Podem, (7, 32, 0));
                             (Justify.Portfolio, (7, 32, 0)) ]);
      ("deep", deep_circuit, 240, 40,
       [ (Justify.Sim, (16, 51, 5));
         (Justify.Podem, (17, 55, 3));
         (Justify.Portfolio, (17, 55, 3)) ]);
      ("reconv", reconv_circuit, 240, 40,
       [ (Justify.Sim, (11, 38, 3));
         (Justify.Podem, (13, 40, 1));
         (Justify.Portfolio, (13, 40, 1)) ]);
    ]
  in
  List.iter
    (fun (cname, c, n_p, n_p0, expected) ->
      let sim_aborts = ref 0 in
      List.iter
        (fun (kind, (tests, detected, aborts)) ->
          let label = cname ^ "/" ^ Justify.kind_name kind in
          let res = enrich_with c ~seed:9 kind ~n_p ~n_p0 in
          check Alcotest.int (label ^ " tests") tests
            (List.length res.Atpg.tests);
          check Alcotest.int (label ^ " detected") detected
            (Fault_sim.count res.Atpg.detected);
          check Alcotest.int (label ^ " aborts") aborts res.Atpg.primary_aborts;
          if kind = Justify.Sim then sim_aborts := res.Atpg.primary_aborts
          else if cname <> "s27" then
            (* the acceptance claim: structural search strictly reduces
               aborted faults on the hard profiles *)
            check Alcotest.bool (label ^ " fewer aborts than sim") true
              (res.Atpg.primary_aborts < !sim_aborts))
        expected)
    goldens

let test_portfolio_ledger_jobs_invariant () =
  (* The portfolio races members across the pool, yet the ledger must be
     byte-identical whatever the job count (DESIGN.md §15): members run
     to completion and the winner is picked by fixed priority. *)
  let saved = Pool.default_jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) @@ fun () ->
  let run jobs =
    Pool.set_default_jobs jobs;
    let l = Ledger.create () in
    ignore
      (Atpg.enrich ~ledger:l ~justify:Justify.Portfolio s27 ~seed:9
         ~faults:s27_faults ~p0:s27_p0 ~p1:s27_p1);
    Ledger.to_jsonl l
  in
  let one = run 1 in
  let four = run 4 in
  check Alcotest.bool "ledger bytes identical at --jobs 1 vs 4" true
    (String.equal one four);
  check Alcotest.bool "ledger non-trivial" true (String.length one > 100)

let test_engine_records_name_winner () =
  (* Every test and detected-fault record carries the winning member's
     label; under the pure backends that is the backend's own name. *)
  List.iter
    (fun (kind, allowed) ->
      let l = Ledger.create () in
      ignore
        (Atpg.enrich ~ledger:l ~justify:kind s27 ~seed:9 ~faults:s27_faults
           ~p0:s27_p0 ~p1:s27_p1);
      let engines =
        Ledger.find l ~kind:"test" (fun _ -> true)
        |> List.filter_map (fun r -> Ledger.get_string r "engine")
      in
      check Alcotest.bool
        (Justify.kind_name kind ^ " test records name an engine")
        true
        (engines <> [] && List.for_all (fun e -> List.mem e allowed) engines);
      let run_records =
        Ledger.find l ~kind:"run" (fun r ->
            Ledger.get_string r "justify" = Some (Justify.kind_name kind))
      in
      check Alcotest.int
        (Justify.kind_name kind ^ " run record names the backend")
        1
        (List.length run_records))
    [
      (Justify.Sim, [ "sim" ]);
      (Justify.Podem, [ "podem" ]);
      (Justify.Portfolio, [ "podem"; "sim"; "sim-r1"; "sim-r2" ]);
    ]

(* Cross-validation of the conservative hazard algebra against the
   event-driven ground truth: a definite middle value in the two-pattern
   simulation guarantees a hazard-free line in the timing waveform. *)
let prop_hazard_algebra_sound =
  QCheck.Test.make ~name:"definite v2 implies hazard-free waveform"
    ~count:300
    (QCheck.make (QCheck.Gen.int_range 0 1_000_000))
    (fun seed ->
      let rng = Rng.create seed in
      let bits () = Array.init 7 (fun _ -> Rng.bool rng) in
      let t = Test_pair.create (bits ()) (bits ()) in
      let triples = Test_pair.simulate s27 t in
      let timed = Pdf_core.Timing.simulate s27 s27_model t in
      let ok = ref true in
      Array.iteri
        (fun net (tr : Pdf_values.Triple.t) ->
          let changes = List.length timed.Pdf_core.Timing.waveforms.(net).Pdf_core.Timing.changes in
          match Pdf_values.Bit.to_bool tr.Pdf_values.Triple.v2 with
          | Some _ when Pdf_values.Triple.is_stable tr ->
            (* hazard-free constant: the waveform must be silent *)
            if changes <> 0 then ok := false
          | Some _ ->
            (* hazard-free transition: exactly one change *)
            if changes <> 1 then ok := false
          | None -> ())
        triples;
      !ok)


(* ------------------------------------------------------------------ *)
(* Relaxation                                                           *)
(* ------------------------------------------------------------------ *)

module Relax = Pdf_core.Relax

let test_relax_preserves_detection () =
  (* Relax each enriched test w.r.t. the faults it detects; every
     completion (all-zeros, all-ones fill) must still detect them. *)
  let tests =
    (Atpg.enrich s27 ~seed:9 ~faults:s27_faults ~p0:s27_p0 ~p1:s27_p1)
      .Atpg.tests
  in
  List.iter
    (fun t ->
      let detected = Fault_sim.detected_by_test s27 t s27_faults in
      let keep =
        Array.to_list s27_faults
        |> List.filteri (fun i _ -> detected.(i))
        |> List.map (fun (p : Fault_sim.prepared) -> p.Fault_sim.reqs)
      in
      let r = Relax.relax s27 t ~keep in
      List.iter
        (fun fill ->
          let completed = Relax.completion r ~fill in
          List.iter
            (fun reqs ->
              check Alcotest.bool "completion still detects" true
                (Test_pair.satisfies s27 completed reqs))
            keep)
        [ false; true ])
    tests

let test_relax_frees_bits () =
  (* Keeping a single fault must leave non-cone inputs free. *)
  let p = s27_faults.(0) in
  let engine = Justify.create s27 in
  let rng = Rng.create 3 in
  match Justify.run engine ~rng ~reqs:p.Fault_sim.reqs with
  | None -> Alcotest.fail "fault should be testable"
  | Some t ->
    let r = Relax.relax s27 t ~keep:[ p.Fault_sim.reqs ] in
    check Alcotest.bool "some bits freed" true (r.Relax.freed > 0);
    check Alcotest.int "freed + specified = all bits"
      (2 * s27.Circuit.num_pis)
      (r.Relax.freed + Relax.specified_bits r)

let test_relax_ignores_unsatisfied_sets () =
  (* A requirement set the test never satisfied must not block
     relaxation. *)
  let t = Test_pair.create (Array.make 7 false) (Array.make 7 false) in
  let impossible = [ (0, Req.rising) ] in
  let r = Relax.relax s27 t ~keep:[ impossible ] in
  check Alcotest.int "everything freed" (2 * 7) r.Relax.freed

let test_relax_empty_keep () =
  let t = Test_pair.create (Array.make 7 true) (Array.make 7 false) in
  let r = Relax.relax s27 t ~keep:[] in
  check Alcotest.int "all bits freed" (2 * 7) r.Relax.freed

(* ------------------------------------------------------------------ *)
(* Diagnosis                                                            *)
(* ------------------------------------------------------------------ *)

module Diagnose = Pdf_core.Diagnose

(* Fixed test set for the diagnosis goldens: the simulation backend,
   explicitly, so the end-to-end expectations hold under any
   PDF_JUSTIFY. *)
let s27_enriched_tests =
  (Atpg.enrich s27 ~seed:9 ~justify:Justify.Sim ~faults:s27_faults ~p0:s27_p0
     ~p1:s27_p1)
    .Atpg.tests

let test_diagnose_dictionary_shape () =
  let d = Diagnose.dictionary s27 s27_enriched_tests s27_faults in
  check Alcotest.int "rows = tests" (List.length s27_enriched_tests)
    (Array.length d);
  Array.iter
    (fun row ->
      check Alcotest.int "cols = faults" (Array.length s27_faults)
        (Array.length row))
    d

let test_diagnose_all_pass () =
  (* A fully passing device: every fault robustly covered by the test set
     is eliminated; the survivors are exactly the uncovered ones. *)
  let observed = List.map (fun _ -> false) s27_enriched_tests in
  let verdicts = Diagnose.diagnose s27 s27_enriched_tests s27_faults ~observed in
  let covered =
    Fault_sim.detected_by_tests s27 s27_enriched_tests s27_faults
  in
  List.iter
    (fun (v : Diagnose.verdict) ->
      check Alcotest.bool "survivor is uncovered" false covered.(v.Diagnose.fault_id))
    verdicts;
  check Alcotest.int "survivors = uncovered faults"
    (Array.length s27_faults - Fault_sim.count covered)
    (List.length verdicts)

let test_diagnose_length_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Diagnose.diagnose: observed/test length mismatch")
    (fun () ->
      ignore (Diagnose.diagnose s27 s27_enriched_tests s27_faults ~observed:[]))

(* End-to-end: inject each fault physically, collect the pass/fail
   signature from the timing simulator, and check the diagnosis ranks the
   true fault first (or tied for first). *)
let test_diagnose_end_to_end () =
  let model = Delay_model.lines s27 in
  let period = Pdf_core.Timing.nominal_period s27 model in
  let tests = s27_enriched_tests in
  let tried = ref 0 in
  Array.iteri
    (fun true_id (p : Fault_sim.prepared) ->
      if true_id mod 3 = 0 then begin
        (* sample every third fault to keep the test quick *)
        let slack = period - p.Fault_sim.length in
        let inject =
          { Pdf_core.Timing.path = p.Fault_sim.fault.Fault.path;
            extra = slack + 1 }
        in
        let observed =
          List.map
            (fun t ->
              Pdf_core.Timing.detects s27 model ~t_sample:period ~inject t)
            tests
        in
        if List.exists Fun.id observed then begin
          incr tried;
          let verdicts = Diagnose.diagnose s27 tests s27_faults ~observed in
          (* The true fault must survive... *)
          (match
             List.find_opt
               (fun (v : Diagnose.verdict) -> v.Diagnose.fault_id = true_id)
               verdicts
           with
          | None ->
            Alcotest.failf "true fault eliminated: %s"
              (Fault.to_string s27 p.Fault_sim.fault)
          | Some v ->
            (* ... and be tied with the best explanation count. *)
            let best =
              match verdicts with
              | x :: _ -> x.Diagnose.maybe_explained
              | [] -> 0
            in
            check Alcotest.int
              (Printf.sprintf "true fault explains best (%s)"
                 (Fault.to_string s27 p.Fault_sim.fault))
              best v.Diagnose.maybe_explained)
        end
      end)
    s27_faults;
  check Alcotest.bool "exercised several faults" true (!tried >= 8)

let () =
  Alcotest.run "pdf_core"
    [
      ( "test_pair",
        [
          Alcotest.test_case "basics" `Quick test_pair_basics;
          Alcotest.test_case "length mismatch" `Quick test_pair_length_mismatch;
          Alcotest.test_case "simulate matches two-pattern" `Quick
            test_pair_simulate_matches_two_pattern;
        ] );
      ( "justify",
        [
          Alcotest.test_case "every s27 fault" `Quick test_justify_every_s27_fault;
          Alcotest.test_case "direct conflict" `Quick
            test_justify_direct_conflict_returns_none;
          Alcotest.test_case "unsatisfiable internal" `Quick
            test_justify_unsatisfiable_internal;
          Alcotest.test_case "empty reqs" `Quick test_justify_empty_reqs;
          Alcotest.test_case "requirement on PI" `Quick
            test_justify_requirement_on_pi;
          Alcotest.test_case "counters" `Quick test_justify_counters;
          Alcotest.test_case "deterministic" `Quick
            test_justify_deterministic_given_seed;
          qcheck prop_justify_sound;
        ] );
      ( "fault_sim",
        [
          Alcotest.test_case "ids are indices" `Quick test_fault_sim_ids_are_indices;
          Alcotest.test_case "matches satisfies" `Quick
            test_fault_sim_matches_satisfies;
          Alcotest.test_case "union over tests" `Quick test_fault_sim_union_over_tests;
          Alcotest.test_case "count" `Quick test_fault_sim_count;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "names" `Quick test_ordering_names;
          Alcotest.test_case "s27 goldens" `Quick test_ordering_goldens_s27;
        ] );
      ( "atpg",
        [
          Alcotest.test_case "detected flags sound" `Quick
            test_atpg_detected_flags_sound;
          Alcotest.test_case "every test useful" `Quick test_atpg_every_test_useful;
          Alcotest.test_case "compaction reduces tests" `Quick
            test_atpg_compaction_reduces_tests;
          Alcotest.test_case "deterministic" `Quick test_atpg_deterministic;
          Alcotest.test_case "tests bounded by primaries" `Quick
            test_atpg_tests_bounded_by_primaries;
          Alcotest.test_case "enrich P0 coverage" `Quick
            test_enrich_detects_p0_like_basic;
          Alcotest.test_case "enrich beats accidental P1" `Quick
            test_enrich_p1_beats_accidental;
          Alcotest.test_case "enrich flags sound" `Quick test_enrich_flags_sound;
          Alcotest.test_case "enrich with empty P1" `Quick test_enrich_empty_p1;
          Alcotest.test_case "count_detected subsets" `Quick
            test_count_detected_subsets;
          qcheck prop_atpg_sound_random;
        ] );
      ( "static_compaction",
        [
          Alcotest.test_case "reverse preserves coverage" `Quick
            test_static_reverse_preserves_coverage;
          Alcotest.test_case "greedy preserves coverage" `Quick
            test_static_greedy_preserves_coverage;
          Alcotest.test_case "drops redundant" `Quick test_static_drops_redundant;
          Alcotest.test_case "empty" `Quick test_static_empty;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "buckets" `Quick test_coverage_buckets;
          Alcotest.test_case "percentage" `Quick test_coverage_percentage;
          Alcotest.test_case "tables render" `Quick test_coverage_tables_render;
          Alcotest.test_case "mismatch" `Quick test_coverage_mismatch;
        ] );
      ( "relax",
        [
          Alcotest.test_case "preserves detection" `Quick
            test_relax_preserves_detection;
          Alcotest.test_case "frees bits" `Quick test_relax_frees_bits;
          Alcotest.test_case "ignores unsatisfied sets" `Quick
            test_relax_ignores_unsatisfied_sets;
          Alcotest.test_case "empty keep" `Quick test_relax_empty_keep;
        ] );
      ( "diagnose",
        [
          Alcotest.test_case "dictionary shape" `Quick
            test_diagnose_dictionary_shape;
          Alcotest.test_case "all pass" `Quick test_diagnose_all_pass;
          Alcotest.test_case "length mismatch" `Quick
            test_diagnose_length_mismatch;
          Alcotest.test_case "end to end with timing sim" `Slow
            test_diagnose_end_to_end;
        ] );
      ( "justify_bnb",
        [
          Alcotest.test_case "finds and satisfies" `Quick
            test_bnb_finds_and_satisfies;
          Alcotest.test_case "deterministic" `Quick test_bnb_deterministic;
          Alcotest.test_case "proves unsatisfiable" `Quick
            test_bnb_proves_unsatisfiable;
          Alcotest.test_case "at least as strong as sim" `Quick
            test_bnb_at_least_as_strong_as_sim;
          Alcotest.test_case "complete on c17 (vs brute force)" `Slow
            test_bnb_complete_on_c17;
        ] );
      ( "podem",
        [
          Alcotest.test_case "finds every s27 fault" `Quick
            test_podem_s27_finds_all;
          Alcotest.test_case "proves unsatisfiable" `Quick
            test_podem_proves_unsatisfiable;
          Alcotest.test_case "deterministic" `Quick test_podem_deterministic;
          qcheck prop_podem_search_invariants;
        ] );
      ( "justify_engine",
        [
          Alcotest.test_case "per-backend goldens" `Slow test_engine_goldens;
          Alcotest.test_case "portfolio ledger jobs-invariant" `Quick
            test_portfolio_ledger_jobs_invariant;
          Alcotest.test_case "records name the winner" `Quick
            test_engine_records_name_winner;
        ] );
      ( "timing",
        [
          Alcotest.test_case "fault-free matches logic sim" `Quick
            test_timing_fault_free_matches_logic;
          Alcotest.test_case "settles within period" `Quick
            test_timing_settle_within_period;
          Alcotest.test_case "stable inputs quiet" `Quick
            test_timing_stable_inputs_quiet;
          Alcotest.test_case "value_at" `Quick test_timing_value_at;
          Alcotest.test_case "robust tests catch slow paths" `Quick
            test_timing_robust_tests_catch_slow_paths;
          Alcotest.test_case "within-slack faults hide" `Quick
            test_timing_small_fault_within_slack_hides;
          qcheck prop_hazard_algebra_sound;
        ] );
      ( "enrich_multi",
        [
          Alcotest.test_case "matches two-pool enrich" `Quick
            test_enrich_multi_matches_two_pool;
          Alcotest.test_case "three pools sound" `Quick
            test_enrich_multi_three_pools_sound;
          Alcotest.test_case "no pools" `Quick test_enrich_multi_no_pools;
        ] );
    ]
