(* Tests for Pdf_bitsim and the packed fault-simulation paths: the
   scalar simulator is the reference, and every packed result — planes,
   satisfaction masks, fault masks, detection flags, whole ATPG runs —
   must agree with it bit for bit, for every jobs x engine combination. *)

module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Req = Pdf_values.Req
module Word = Pdf_values.Word
module Circuit = Pdf_circuit.Circuit
module Two_pattern = Pdf_sim.Two_pattern
module Wsim = Pdf_bitsim.Wsim
module Wreq = Pdf_bitsim.Wreq
module Pool = Pdf_par.Pool
module Ordering = Pdf_core.Ordering
module Atpg = Pdf_core.Atpg
module Fault_sim = Pdf_core.Fault_sim
module Test_pair = Pdf_core.Test_pair
module Diagnose = Pdf_core.Diagnose
module Target_sets = Pdf_faults.Target_sets
module Delay_model = Pdf_paths.Delay_model
module Generators = Pdf_synth.Generators
module Profiles = Pdf_synth.Profiles

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let s27 =
  match Profiles.find "s27" with
  | Some p -> Profiles.circuit p
  | None -> assert false

(* Every test here must leave the packed engine in its default state. *)
let with_packed b f =
  let before = Fault_sim.packed_enabled () in
  Fault_sim.set_packed b;
  Fun.protect ~finally:(fun () -> Fault_sim.set_packed before) f

let dag_params =
  { Generators.num_pis = 6; num_gates = 25; window = 15; max_fanout = 3;
    reuse_pct = 5; restart_pct = 0; fanin3_pct = 10; inverter_pct = 25;
    po_taps = 1 }

(* A randomized circuit plus per-lane PI pairs, possibly with X bits. *)
let gen_case =
  QCheck.Gen.(
    int_range 0 100_000 >>= fun seed ->
    int_range 1 Word.lanes >>= fun lanes ->
    let c = Generators.random_dag ~name:"rand" ~seed dag_params in
    let np = c.Circuit.num_pis in
    let bits = oneofl [ Bit.Zero; Bit.One; Bit.X ] in
    pair
      (array_size (return lanes) (array_size (return np) bits))
      (array_size (return lanes) (array_size (return np) bits))
    >>= fun (b1, b3) -> return (seed, lanes, b1, b3))

let arb_case =
  QCheck.make
    ~print:(fun (seed, lanes, _, _) ->
      Printf.sprintf "seed=%d lanes=%d" seed lanes)
    gen_case

let circuit_of_seed seed =
  Generators.random_dag ~name:"rand" ~seed dag_params

let pack_planes c lanes b1 b3 =
  let np = c.Circuit.num_pis in
  let w1 = Array.init np (fun pi -> Word.init lanes (fun l -> b1.(l).(pi))) in
  let w3 = Array.init np (fun pi -> Word.init lanes (fun l -> b3.(l).(pi))) in
  Wsim.simulate c ~w1 ~w3 ~lanes

let scalar_lane c b1 b3 =
  Two_pattern.simulate c
    (Array.init (Array.length b1) (fun pi ->
         { Two_pattern.b1 = b1.(pi); b3 = b3.(pi) }))

(* Packed simulation equals the scalar simulator on every lane, every
   net, every component — including X lanes. *)
let prop_wsim_matches_scalar =
  QCheck.Test.make ~name:"Wsim.simulate = Two_pattern.simulate per lane"
    ~count:60 arb_case
    (fun (seed, lanes, b1, b3) ->
      let c = circuit_of_seed seed in
      let planes = pack_planes c lanes b1 b3 in
      let ok = ref true in
      for l = 0 to lanes - 1 do
        let scalar = scalar_lane c b1.(l) b3.(l) in
        for net = 0 to Circuit.num_nets c - 1 do
          if not (Triple.equal scalar.(net) (Wsim.triple planes ~net ~lane:l))
          then ok := false
        done
      done;
      !ok)

(* Packed requirement checking equals the scalar satisfied_by fold per
   lane, on the real condition sets of the circuit's faults. *)
let prop_satisfied_mask_matches_scalar =
  QCheck.Test.make
    ~name:"Wreq.satisfied_mask = Req.satisfied_by per lane" ~count:40
    arb_case
    (fun (seed, lanes, b1, b3) ->
      let c = circuit_of_seed seed in
      let ts = Target_sets.build c (Delay_model.lines c) ~n_p:15 ~n_p0:5 in
      let faults = Fault_sim.prepare c ts.Target_sets.p in
      let planes = pack_planes c lanes b1 b3 in
      let scalars = Array.init lanes (fun l -> scalar_lane c b1.(l) b3.(l)) in
      Array.for_all
        (fun (p : Fault_sim.prepared) ->
          let m = Wreq.satisfied_mask planes p.Fault_sim.reqs in
          let ok = ref true in
          for l = 0 to lanes - 1 do
            let scalar =
              List.for_all
                (fun (net, req) -> Req.satisfied_by scalars.(l).(net) req)
                p.Fault_sim.reqs
            in
            if scalar <> (m land (1 lsl l) <> 0) then ok := false
          done;
          !ok)
        faults)

(* Fault-lane packing: one scalar simulation checked against 63 packed
   condition sets equals per-fault detects_values. *)
let prop_fault_mask_matches_scalar =
  QCheck.Test.make ~name:"Wreq.fault_mask = detects_values per lane"
    ~count:40
    (QCheck.make
       ~print:(fun (seed, _) -> Printf.sprintf "seed=%d" seed)
       QCheck.Gen.(
         int_range 0 100_000 >>= fun seed ->
         let c = circuit_of_seed seed in
         let np = c.Circuit.num_pis in
         pair (return seed) (pair (array_size (return np) bool)
                               (array_size (return np) bool))))
    (fun (seed, (v1, v3)) ->
      let c = circuit_of_seed seed in
      let ts = Target_sets.build c (Delay_model.lines c) ~n_p:15 ~n_p0:5 in
      let faults = Fault_sim.prepare c ts.Target_sets.p in
      let packs =
        Wreq.pack_faults
          (Array.map (fun p -> p.Fault_sim.reqs) faults)
      in
      let values = Test_pair.simulate c (Test_pair.create v1 v3) in
      Array.for_all
        (fun fp ->
          let m = Wreq.fault_mask fp values in
          let ok = ref true in
          for l = 0 to Wreq.lanes fp - 1 do
            let i = Wreq.base fp + l in
            if
              Fault_sim.detects_values values faults.(i)
              <> (m land (1 lsl l) <> 0)
            then ok := false
          done;
          !ok)
        packs)

(* ------------------------------------------------------------------ *)
(* Incremental simulation: Wsim.Inc / Inc_sim vs the full passes       *)
(* ------------------------------------------------------------------ *)

module Inc_sim = Pdf_core.Inc_sim
module Rng = Pdf_util.Rng

let with_incsim b f =
  let before = Wsim.incsim_enabled () in
  Wsim.set_incsim b;
  Fun.protect ~finally:(fun () -> Wsim.set_incsim before) f

(* Drive one randomized flip sequence over persistent incremental state
   and fail on the first divergence from the full-pass references.
   Step 0 installs fresh words on every PI, step 1 is a zero-flip
   no-op, later steps flip a few random PIs (w1 only, w3 only, or
   both; X lanes included).  The packed planes are compared word for
   word against a from-scratch [Wsim.simulate]; the scalar [Inc_sim]
   state is compared against [Two_pattern.simulate] on lane 0. *)
let check_flip_sequence what c ~seed ~lanes ~steps =
  let rng = Rng.create seed in
  let n = c.Circuit.num_pis in
  let rand_bit () =
    if Rng.int rng 5 = 0 then Bit.X
    else if Rng.bool rng then Bit.One
    else Bit.Zero
  in
  let rand_word () = Word.of_bits (Array.init lanes (fun _ -> rand_bit ())) in
  let w1 = Array.init n (fun _ -> rand_word ()) in
  let w3 = Array.init n (fun _ -> rand_word ()) in
  let inc = Wsim.Inc.create c ~lanes in
  let s = Array.init 3 (fun _ -> Array.make (Circuit.num_nets c) Bit.X) in
  let sinc = Inc_sim.create c ~s in
  for step = 0 to steps - 1 do
    if step >= 2 then begin
      let flips = 1 + Rng.int rng 3 in
      for _ = 1 to flips do
        let pi = Rng.int rng n in
        match Rng.int rng 3 with
        | 0 -> w1.(pi) <- rand_word ()
        | 1 -> w3.(pi) <- rand_word ()
        | _ ->
          w1.(pi) <- rand_word ();
          w3.(pi) <- rand_word ()
      done
    end;
    Wsim.Inc.assign inc ~w1 ~w3;
    let full = Wsim.simulate c ~w1 ~w3 ~lanes in
    let ip = Wsim.Inc.planes inc in
    for net = 0 to Circuit.num_nets c - 1 do
      for comp = 0 to 2 do
        if not (Word.equal (Wsim.word ip ~comp ~net) (Wsim.word full ~comp ~net))
        then
          Alcotest.failf "%s: packed step %d net %d comp %d diverges" what
            step net comp
      done
    done;
    for pi = 0 to n - 1 do
      Inc_sim.set_pi sinc pi ~v1:(Word.get w1.(pi) 0) ~v3:(Word.get w3.(pi) 0)
    done;
    Inc_sim.propagate sinc;
    let pairs =
      Array.init n (fun pi ->
          { Two_pattern.b1 = Word.get w1.(pi) 0; b3 = Word.get w3.(pi) 0 })
    in
    let scalar = Two_pattern.simulate c pairs in
    for net = 0 to Circuit.num_nets c - 1 do
      if
        not
          (Triple.equal scalar.(net)
             (Triple.make s.(0).(net) s.(1).(net) s.(2).(net)))
      then Alcotest.failf "%s: scalar step %d net %d diverges" what step net
    done
  done;
  (* The state did real incremental work: stats must show assigns and,
     past the first full seeding, early stops on unchanged cones. *)
  let st = Wsim.Inc.stats inc in
  check Alcotest.int (what ^ " assigns counted") steps st.Wsim.Inc.assigns

(* Fixed topology grid from tiny to a small huge-tier DAG: depth,
   reconvergence and width all drive different dirty-set shapes. *)
let inc_topologies =
  [
    ("tiny", { dag_params with Generators.num_pis = 4; num_gates = 10; window = 6 });
    ("deep", { dag_params with Generators.num_gates = 40; window = 6; restart_pct = 5 });
    ("reconv", { dag_params with Generators.num_pis = 8; num_gates = 40; reuse_pct = 30; max_fanout = 4 });
    ( "huge-small",
      { dag_params with
        Generators.num_pis = 64;
        num_gates = 2_000;
        window = 200;
        max_fanout = 6;
        po_taps = 4 } );
  ]

let test_inc_flip_sequences () =
  List.iter
    (fun (name, params) ->
      let c = Generators.random_dag ~name ~seed:77 params in
      check_flip_sequence (name ^ "/full-width") c ~seed:1 ~lanes:Word.lanes
        ~steps:10;
      check_flip_sequence (name ^ "/partial-word") c ~seed:2 ~lanes:17
        ~steps:6)
    inc_topologies

(* Randomized circuits and lane counts: the same flip-sequence property
   as a QCheck law over the generator grid. *)
let prop_inc_matches_full =
  QCheck.Test.make ~name:"Wsim.Inc/Inc_sim = full pass over flip sequences"
    ~count:40
    (QCheck.make
       ~print:(fun (seed, lanes) -> Printf.sprintf "seed=%d lanes=%d" seed lanes)
       QCheck.Gen.(pair (int_range 0 100_000) (int_range 1 Word.lanes)))
    (fun (seed, lanes) ->
      let c = circuit_of_seed seed in
      check_flip_sequence "random" c ~seed ~lanes ~steps:8;
      true)

(* Whole enrichment runs are byte-identical with the incremental
   engines on or off, at any jobs count: same tests, same flags, same
   abort counts, same provenance-ledger bytes.  This is the PDF_INCSIM
   escape-hatch contract CI asserts end to end. *)
let test_enrich_incsim_identity () =
  let ts = Target_sets.build s27 (Delay_model.lines s27) ~n_p:40 ~n_p0:10 in
  let faults = Fault_sim.prepare s27 ts.Target_sets.p in
  let n0 = min (List.length ts.Target_sets.p0) (Array.length faults) in
  let p0 = List.init n0 Fun.id in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let run ~incsim ~jobs =
    with_incsim incsim @@ fun () ->
    let before = Pool.default_jobs () in
    Pool.set_default_jobs jobs;
    Fun.protect ~finally:(fun () -> Pool.set_default_jobs before) @@ fun () ->
    let ledger = Pdf_obs.Ledger.create () in
    let res = Atpg.enrich ~ledger s27 ~seed:5 ~faults ~p0 ~p1 in
    (res, Pdf_obs.Ledger.to_jsonl ledger)
  in
  let r_ref, j_ref = run ~incsim:false ~jobs:1 in
  List.iter
    (fun (incsim, jobs) ->
      let r, j = run ~incsim ~jobs in
      let what = Printf.sprintf "incsim=%b jobs=%d" incsim jobs in
      check Alcotest.string (what ^ " ledger bytes") j_ref j;
      check
        Alcotest.(array bool)
        (what ^ " detected") r_ref.Atpg.detected r.Atpg.detected;
      check Alcotest.int (what ^ " aborts") r_ref.Atpg.primary_aborts
        r.Atpg.primary_aborts)
    [ (false, 4); (true, 1); (true, 4) ]

(* ------------------------------------------------------------------ *)
(* Batch entry points: jobs x engine grid                              *)
(* ------------------------------------------------------------------ *)

let random_tests c ~n ~seed =
  let rng = Pdf_util.Rng.create seed in
  List.init n (fun _ ->
      let pat () =
        Array.init c.Circuit.num_pis (fun _ -> Pdf_util.Rng.bool rng)
      in
      Test_pair.create (pat ()) (pat ()))

let s27_workload () =
  let ts = Target_sets.build s27 (Delay_model.lines s27) ~n_p:40 ~n_p0:10 in
  let faults = Fault_sim.prepare s27 ts.Target_sets.p in
  (* Enough tests for two word batches, the second partially filled. *)
  let tests = random_tests s27 ~n:100 ~seed:42 in
  (faults, tests)

let test_detected_by_tests_grid () =
  let faults, tests = s27_workload () in
  let run ~packed ~jobs =
    with_packed packed @@ fun () ->
    Pool.with_pool ~jobs (fun pool ->
        Fault_sim.detected_by_tests ~pool s27 tests faults)
  in
  let reference = run ~packed:false ~jobs:1 in
  List.iter
    (fun (packed, jobs) ->
      check
        Alcotest.(array bool)
        (Printf.sprintf "packed=%b jobs=%d" packed jobs)
        reference
        (run ~packed ~jobs))
    [ (false, 4); (true, 1); (true, 4) ]

let test_detect_matrix_grid () =
  let faults, tests = s27_workload () in
  let run ~packed ~jobs =
    with_packed packed @@ fun () ->
    Pool.with_pool ~jobs (fun pool ->
        Fault_sim.detect_matrix ~pool s27 tests faults)
  in
  let reference = run ~packed:false ~jobs:1 in
  check Alcotest.int "one row per test" (List.length tests)
    (Array.length reference);
  List.iter
    (fun (packed, jobs) ->
      let m = run ~packed ~jobs in
      Array.iteri
        (fun t row ->
          check
            Alcotest.(array bool)
            (Printf.sprintf "row %d packed=%b jobs=%d" t packed jobs)
            reference.(t) row)
        m)
    [ (false, 4); (true, 1); (true, 4) ]

(* Rows of detect_matrix are exactly detected_by_test rows. *)
let test_detect_matrix_vs_single () =
  let faults, tests = s27_workload () in
  let m = Fault_sim.detect_matrix s27 tests faults in
  List.iteri
    (fun t test ->
      check
        Alcotest.(array bool)
        (Printf.sprintf "row %d" t)
        (Fault_sim.detected_by_test s27 test faults)
        m.(t))
    tests

(* The packed ATPG delta scan changes nothing observable: same tests,
   same detection flags, same abort count as the scalar reference. *)
let test_atpg_packed_vs_scalar () =
  let ts = Target_sets.build s27 (Delay_model.lines s27) ~n_p:40 ~n_p0:10 in
  let faults = Fault_sim.prepare s27 ts.Target_sets.p in
  let run packed =
    with_packed packed @@ fun () ->
    Atpg.basic s27
      { Atpg.ordering = Ordering.Value_based; seed = 3 }
      ~faults
  in
  let scalar = run false and packed = run true in
  check Alcotest.int "test count" (List.length scalar.Atpg.tests)
    (List.length packed.Atpg.tests);
  List.iter2
    (fun a b ->
      check Alcotest.string "test" (Test_pair.to_string a)
        (Test_pair.to_string b))
    scalar.Atpg.tests packed.Atpg.tests;
  check
    Alcotest.(array bool)
    "detected" scalar.Atpg.detected packed.Atpg.detected;
  check Alcotest.int "aborts" scalar.Atpg.primary_aborts
    packed.Atpg.primary_aborts

(* Diagnosis dictionaries ride on detect_matrix; both engines agree. *)
let test_dictionaries_packed_vs_scalar () =
  let faults, tests = s27_workload () in
  let run packed =
    with_packed packed @@ fun () ->
    ( Diagnose.dictionary s27 tests faults,
      Diagnose.weak_dictionary s27 tests faults )
  in
  let strong_s, weak_s = run false in
  let strong_p, weak_p = run true in
  Array.iteri
    (fun t row -> check Alcotest.(array bool) "strong row" row strong_p.(t))
    strong_s;
  Array.iteri
    (fun t row -> check Alcotest.(array bool) "weak row" row weak_p.(t))
    weak_s

(* The conditions cache returns exactly what Robust.conditions computes,
   from any domain. *)
let test_conditions_cache () =
  let ts = Target_sets.build s27 (Delay_model.lines s27) ~n_p:40 ~n_p0:10 in
  let entries = ts.Target_sets.p in
  let direct =
    List.map
      (fun (e : Target_sets.entry) ->
        Pdf_faults.Robust.conditions s27 e.Target_sets.fault)
      entries
  in
  let check_all () =
    List.iter2
      (fun (e : Target_sets.entry) expect ->
        check Alcotest.bool "cached = direct" true
          (Fault_sim.conditions s27 e.Target_sets.fault = expect))
      entries direct
  in
  check_all ();
  (* Second pass hits the cache; also exercise it from pool domains. *)
  check_all ();
  Pool.with_pool ~jobs:4 (fun pool ->
      ignore
        (Pool.map pool
           (fun (e : Target_sets.entry) ->
             Fault_sim.conditions s27 e.Target_sets.fault)
           entries))

(* batch_bounds at the word-size boundaries: 0, 1, Word.lanes - 1,
   Word.lanes and Word.lanes + 1 tests (i.e. 0, 1, 62, 63, 64). *)
let test_batch_bounds_edges () =
  check Alcotest.int "word size" 63 Word.lanes;
  let bounds n = Array.to_list (Wsim.batch_bounds n) in
  check
    Alcotest.(list (pair int int))
    "0 tests" [] (bounds 0);
  check
    Alcotest.(list (pair int int))
    "1 test" [ (0, 1) ] (bounds 1);
  check
    Alcotest.(list (pair int int))
    "62 tests" [ (0, 62) ] (bounds 62);
  check
    Alcotest.(list (pair int int))
    "63 tests" [ (0, 63) ] (bounds 63);
  check
    Alcotest.(list (pair int int))
    "64 tests"
    [ (0, 63); (63, 64) ]
    (bounds 64);
  (* Batches always cut at fixed multiples of the word size and cover
     0..n-1 without gaps. *)
  List.iter
    (fun n ->
      let bs = bounds n in
      let covered =
        List.fold_left
          (fun next (lo, hi) ->
            check Alcotest.int "contiguous" next lo;
            check Alcotest.bool "multiple of lanes" true
              (lo mod Word.lanes = 0);
            check Alcotest.bool "non-empty" true (hi > lo);
            hi)
          0 bs
      in
      check Alcotest.int "covers all" n covered)
    [ 1; 62; 63; 64; 125; 126; 127; 200 ]

(* The batch entry points agree with the scalar reference at exactly the
   sizes where the packed path switches on (>= Word.lanes tests) and
   just below it. *)
let test_detection_at_word_boundaries () =
  let faults, all_tests = s27_workload () in
  List.iter
    (fun n ->
      let tests = List.filteri (fun i _ -> i < n) all_tests in
      let packed =
        with_packed true @@ fun () ->
        Fault_sim.detected_by_tests s27 tests faults
      in
      let scalar =
        with_packed false @@ fun () ->
        Fault_sim.detected_by_tests s27 tests faults
      in
      check Alcotest.(array bool)
        (Printf.sprintf "flags at %d tests" n)
        scalar packed)
    [ 0; 1; 62; 63; 64 ]

let () =
  Alcotest.run "pdf_bitsim"
    [
      ( "planes",
        [
          qcheck prop_wsim_matches_scalar;
          qcheck prop_satisfied_mask_matches_scalar;
          qcheck prop_fault_mask_matches_scalar;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "flip sequences on topology grid" `Quick
            test_inc_flip_sequences;
          qcheck prop_inc_matches_full;
          Alcotest.test_case "enrich identity incsim x jobs" `Quick
            test_enrich_incsim_identity;
        ] );
      ( "fault_sim",
        [
          Alcotest.test_case "detected_by_tests jobs x engine" `Quick
            test_detected_by_tests_grid;
          Alcotest.test_case "detect_matrix jobs x engine" `Quick
            test_detect_matrix_grid;
          Alcotest.test_case "detect_matrix = per-test rows" `Quick
            test_detect_matrix_vs_single;
          Alcotest.test_case "conditions cache" `Quick test_conditions_cache;
          Alcotest.test_case "batch_bounds edges" `Quick
            test_batch_bounds_edges;
          Alcotest.test_case "detection at word boundaries" `Quick
            test_detection_at_word_boundaries;
        ] );
      ( "atpg",
        [
          Alcotest.test_case "packed = scalar run" `Quick
            test_atpg_packed_vs_scalar;
          Alcotest.test_case "dictionaries packed = scalar" `Quick
            test_dictionaries_packed_vs_scalar;
        ] );
    ]
