(* pdfatpg: command-line driver for the path-delay-fault test enrichment
   library.  Circuits are named either by a built-in profile (see
   `pdfatpg profiles`) or by a path to an ISCAS .bench file. *)

open Cmdliner

module Circuit = Pdf_circuit.Circuit
module Bench_io = Pdf_circuit.Bench_io
module Stats = Pdf_circuit.Stats
module Delay_model = Pdf_paths.Delay_model
module Enumerate = Pdf_paths.Enumerate
module Path = Pdf_paths.Path
module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Atpg = Pdf_core.Atpg
module Ordering = Pdf_core.Ordering
module Justify = Pdf_core.Justify
module Test_pair = Pdf_core.Test_pair
module Profiles = Pdf_synth.Profiles
module Workload = Pdf_experiments.Workload
module Hotspots = Pdf_experiments.Hotspots
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span
module Log = Pdf_obs.Log
module Session = Pdf_serve.Session
module Server = Pdf_serve.Server

(* The query subcommands (info/atpg/enrich/explain/report) answer
   through the same warm-session layer `pdfatpg serve` uses, so served
   output is byte-identical to batch output by construction (DESIGN.md
   §12.4).  A CLI invocation holds exactly one session. *)
let session = lazy (Session.create ())

(* The span collector obs_setup installs for --trace-out, when one is
   active: subcommands with extra trace content (profile's per-level
   counter track) add their events here so everything lands in the one
   exported file. *)
let trace_collector : Pdf_obs.Trace.t option ref = ref None

let answer_or_die = function
  | Ok (a : Session.answer) -> a
  | Error (Session.Unknown_circuit msg) ->
    prerr_endline msg;
    exit 1
  | Error (Session.No_match msg) ->
    prerr_endline ("pdfatpg: " ^ msg);
    exit 1

let load_circuit name =
  match Profiles.find name with
  | Some p -> Ok (Profiles.circuit p)
  | None ->
    if Sys.file_exists name then
      if Filename.check_suffix name ".v" then
        match Pdf_circuit.Verilog_io.parse_file name with
        | Ok c -> Ok c
        | Error e ->
          Error
            (Printf.sprintf "%s: %s" name
               (Pdf_circuit.Verilog_io.error_to_string e))
      else
        match Bench_io.parse_file name with
        | Ok c -> Ok c
        | Error e ->
          Error (Printf.sprintf "%s: %s" name (Bench_io.error_to_string e))
    else
      Error
        (Printf.sprintf
           "unknown circuit %S (not a profile name or netlist file)" name)

let circuit_arg =
  let doc = "Circuit: a profile name (see $(b,pdfatpg profiles)) or a .bench file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let seed_arg =
  let doc = "Random seed (all randomness in the tool is seeded)." in
  Arg.(value & opt int Workload.default_seed & info [ "seed" ] ~doc)

let n_p_arg =
  let doc = "Fault budget N_P for the enumerated set P." in
  Arg.(value & opt int 2000 & info [ "n-p" ] ~doc)

let n_p0_arg =
  let doc = "Size threshold N_P0 for the first target set P0." in
  Arg.(value & opt int 200 & info [ "n-p0" ] ~doc)

let with_circuit name f =
  match load_circuit name with
  | Ok c -> f c
  | Error msg ->
    prerr_endline msg;
    exit 1

(* Observability and execution options shared by every subcommand:
   --verbose lowers the event-log threshold (also settable via PDF_LOG),
   --metrics-out dumps the metrics registry when the command finishes
   (CSV, or JSON lines when the file name ends in .jsonl), --trace-out
   collects every span into a Chrome trace-event file (also settable via
   PDF_TRACE_OUT; load in Perfetto or chrome://tracing, one track per
   pool domain), --prom-out writes the registry in Prometheus text
   exposition format (also settable via PDF_PROM_OUT; --prom-flush
   rewrites it periodically for watching long runs), --jobs sets the
   degree of parallelism of the process default pool (also settable via
   PDF_JOBS; 1 = fully sequential, the default). *)
let obs_setup =
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write all pipeline metrics to $(docv) on exit (CSV; \
                   JSON lines when $(docv) ends in .jsonl).")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event JSON file of every span to \
                   $(docv) on exit (Perfetto-loadable; one track per \
                   pool domain).  Defaults to $(b,PDF_TRACE_OUT).")
  in
  let prom_out =
    Arg.(value & opt (some string) None
         & info [ "prom-out" ] ~docv:"FILE"
             ~doc:"Write the metrics registry in Prometheus text \
                   exposition format to $(docv) on exit.  Defaults to \
                   $(b,PDF_PROM_OUT).")
  in
  let prom_flush =
    Arg.(value & opt (some float) None
         & info [ "prom-flush" ] ~docv:"SECONDS"
             ~doc:"Rewrite the --prom-out file every $(docv) seconds \
                   while the command runs (for scraping long runs).")
  in
  let verbose =
    Arg.(value & flag_all
         & info [ "v"; "verbose" ]
             ~doc:"Log progress events to stderr (repeat for debug).")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Run independent work (orderings, circuit runs, \
                   fault-simulation chunks) on $(docv) domains.  Results \
                   are deterministic: any $(docv) produces the same \
                   output as 1.  Defaults to $(b,PDF_JOBS) or 1.")
  in
  let setup metrics_out trace_out prom_out prom_flush verbose jobs =
    (match verbose with
    | [] -> ()
    | [ _ ] -> Log.set_level Log.Info
    | _ -> Log.set_level Log.Debug);
    (match jobs with
    | None -> ()
    | Some n when n >= 1 -> Pdf_par.Pool.set_default_jobs n
    | Some n ->
      Printf.eprintf "pdfatpg: --jobs %d is invalid (want >= 1)\n" n;
      exit 2);
    (match metrics_out with
    | None -> ()
    | Some path ->
      at_exit (fun () ->
          try
            if Filename.check_suffix path ".jsonl" then
              Metrics.write_jsonl path
            else Metrics.write_csv path
          with Sys_error msg ->
            Printf.eprintf "pdfatpg: cannot write metrics: %s\n" msg));
    let trace_out =
      match trace_out with
      | Some _ -> trace_out
      | None -> Sys.getenv_opt "PDF_TRACE_OUT"
    in
    (match trace_out with
    | None -> ()
    | Some path ->
      let coll = Pdf_obs.Trace.collector () in
      trace_collector := Some coll;
      (* Tee with whatever sink is already installed (the trace
         subcommand's aggregator) so both keep receiving spans. *)
      Span.set_sink (Span.tee (Span.sink ()) (Pdf_obs.Trace.sink coll));
      at_exit (fun () ->
          try Pdf_obs.Trace.write coll path
          with Sys_error msg ->
            Printf.eprintf "pdfatpg: cannot write trace: %s\n" msg));
    let prom_out =
      match prom_out with
      | Some _ -> prom_out
      | None -> Sys.getenv_opt "PDF_PROM_OUT"
    in
    match (prom_out, prom_flush) with
    | None, None -> ()
    | None, Some _ ->
      Printf.eprintf "pdfatpg: --prom-flush needs --prom-out\n";
      exit 2
    | Some path, flush ->
      (match flush with
      | Some period when period > 0. ->
        let stop =
          Pdf_obs.Prom.start_periodic_flush ~period_s:period path
        in
        at_exit stop (* stop performs the final write *)
      | Some period ->
        Printf.eprintf "pdfatpg: --prom-flush %g is invalid (want > 0)\n"
          period;
        exit 2
      | None ->
        at_exit (fun () ->
            try Pdf_obs.Prom.write path
            with Sys_error msg ->
              Printf.eprintf "pdfatpg: cannot write prometheus file: %s\n"
                msg))
  in
  Term.(const setup $ metrics_out $ trace_out $ prom_out $ prom_flush
        $ verbose $ jobs)

(* ------------------------------------------------------------------ *)

let profiles_cmd =
  let run () =
    let t =
      Pdf_util.Table.create
        [ ("name", Pdf_util.Table.Left); ("description", Pdf_util.Table.Left) ]
    in
    List.iter
      (fun p ->
        Pdf_util.Table.add_row t [ p.Profiles.name; p.Profiles.description ])
      Profiles.all;
    Pdf_util.Table.print t
  in
  Cmd.v (Cmd.info "profiles" ~doc:"List built-in circuit profiles.")
    Term.(const run $ obs_setup)

let info_cmd =
  let run () name =
    let ans = answer_or_die (Session.info (Lazy.force session) ~circuit:name) in
    print_string ans.Session.text
  in
  Cmd.v (Cmd.info "info" ~doc:"Print structural statistics of a circuit.")
    Term.(const run $ obs_setup $ circuit_arg)

let paths_cmd =
  let max_paths =
    Arg.(value & opt int 20 & info [ "max-paths" ] ~doc:"Bound on |P|.")
  in
  let simple =
    Arg.(value & flag & info [ "simple" ]
         ~doc:"Use the simple (moderate-circuit) enumeration mode.")
  in
  let run () name max_paths simple =
    with_circuit name (fun c ->
        let model = Delay_model.lines c in
        let mode =
          if simple then Enumerate.Simple else Enumerate.Distance_pruned
        in
        let r = Enumerate.enumerate ~mode c model ~max_paths in
        Printf.printf
          "%d complete paths (steps=%d evicted=%d truncated=%b)\n"
          (List.length r.Enumerate.paths) r.Enumerate.steps r.Enumerate.evicted
          r.Enumerate.truncated;
        List.iter
          (fun (p, len) ->
            Printf.printf "length %3d  %s\n" len (Path.to_string c p))
          r.Enumerate.paths)
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Enumerate the longest paths of a circuit.")
    Term.(const run $ obs_setup $ circuit_arg $ max_paths $ simple)

let histogram_cmd =
  let run () name n_p n_p0 =
    with_circuit name (fun c ->
        let model = Delay_model.lines c in
        let ts = Target_sets.build c model ~n_p ~n_p0 in
        Printf.printf
          "P=%d faults (undetectable removed: %d direct, %d implication)\n\
           i0=%d, L_i0=%d, |P0|=%d, |P1|=%d\n\n"
          (List.length ts.Target_sets.p)
          ts.Target_sets.undetectable.Pdf_faults.Undetectable.direct_conflicts
          ts.Target_sets.undetectable
            .Pdf_faults.Undetectable.implication_conflicts
          ts.Target_sets.i0 ts.Target_sets.cutoff_length
          (List.length ts.Target_sets.p0)
          (List.length ts.Target_sets.p1);
        Pdf_util.Table.print
          (Pdf_paths.Histogram.to_table ~max_rows:20 ts.Target_sets.histogram))
  in
  Cmd.v
    (Cmd.info "histogram"
       ~doc:"Path-length histogram and P0/P1 selection (paper Table 2).")
    Term.(const run $ obs_setup $ circuit_arg $ n_p_arg $ n_p0_arg)

let criterion_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "robust" -> Ok Pdf_faults.Robust.Robust
        | "nonrobust" | "non-robust" -> Ok Pdf_faults.Robust.Non_robust
        | _ -> Error (`Msg ("unknown criterion " ^ s))),
      fun ppf c ->
        Format.pp_print_string ppf
          (match c with
          | Pdf_faults.Robust.Robust -> "robust"
          | Pdf_faults.Robust.Non_robust -> "nonrobust") )

let criterion_arg =
  let doc = "Sensitization criterion: robust (paper) or nonrobust." in
  Arg.(value & opt criterion_conv Pdf_faults.Robust.Robust
       & info [ "criterion" ] ~doc)

let justify_conv =
  Arg.conv
    ( (fun s ->
        match Justify.kind_of_name s with
        | Some k -> Ok k
        | None -> Error (`Msg ("unknown justify backend " ^ s))),
      fun ppf k -> Format.pp_print_string ppf (Justify.kind_name k) )

let justify_arg =
  let doc =
    "Justification backend: sim (paper), podem (structural) or portfolio \
     (race both plus random restarts across the worker pool).  Defaults \
     to $(b,PDF_JUSTIFY), else sim."
  in
  Arg.(value & opt (some justify_conv) None & info [ "justify" ] ~doc)

(* The flag wins over PDF_JUSTIFY; neither set means the paper's
   simulation engine. *)
let resolve_justify = function
  | Some k -> k
  | None -> Justify.default_kind ()

let ordering_conv =
  Arg.conv
    ( (fun s ->
        match Ordering.of_name s with
        | Some o -> Ok o
        | None -> Error (`Msg ("unknown ordering " ^ s))),
      fun ppf o -> Format.pp_print_string ppf (Ordering.name o) )

let ordering_arg =
  let doc = "Compaction heuristic: uncomp, arbit, length or values." in
  Arg.(value & opt ordering_conv Ordering.Value_based
       & info [ "ordering" ] ~doc)

let dump_arg =
  let doc = "Write the generated tests to $(docv) (one v1/v3 line each)." in
  Arg.(value & opt (some string) None & info [ "dump-tests" ] ~docv:"FILE" ~doc)

let ledger_out_arg =
  let doc =
    "Write the run provenance ledger to $(docv) (JSON lines; one record \
     per generated test and per fault disposition).  Byte-identical \
     across --jobs values and simulation engines."
  in
  Arg.(value & opt (some string) None
       & info [ "ledger-out" ] ~docv:"FILE" ~doc)

let write_ledger path ledger =
  match (path, ledger) with
  | Some path, Some l ->
    Pdf_obs.Ledger.write_jsonl l path;
    Printf.printf "wrote %d ledger records to %s\n" (Pdf_obs.Ledger.size l)
      path
  | _ -> ()

let dump_tests path tests =
  match path with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    List.iter (fun t -> output_string oc (Test_pair.to_string t ^ "\n")) tests;
    close_out oc;
    Printf.printf "wrote %d tests to %s\n" (List.length tests) file

let atpg_cmd =
  let relax_flag =
    Arg.(value & flag
         & info [ "relax" ]
             ~doc:"Report how many input bits the tests actually need \
                   (don't-care extraction).")
  in
  let run () name n_p n_p0 seed ordering criterion justify relax dump
      ledger_out =
    let ledger = Option.map (fun _ -> Pdf_obs.Ledger.create ()) ledger_out in
    let justify = resolve_justify justify in
    let params = { Session.n_p; n_p0; seed; criterion; justify } in
    let ans =
      answer_or_die
        (Session.atpg ?ledger (Lazy.force session) ~circuit:name ~params
           ~ordering ~relax)
    in
    print_string ans.Session.text;
    dump_tests dump ans.Session.tests;
    write_ledger ledger_out ledger
  in
  Cmd.v
    (Cmd.info "atpg"
       ~doc:"Basic test generation for the P0 target faults (paper Sec. 2).")
    Term.(const run $ obs_setup $ circuit_arg $ n_p_arg $ n_p0_arg $ seed_arg
          $ ordering_arg $ criterion_arg $ justify_arg $ relax_flag $ dump_arg
          $ ledger_out_arg)

let enrich_cmd =
  let coverage_flag =
    Arg.(value & flag
         & info [ "coverage" ]
             ~doc:"Print a per-path-length coverage comparison of the basic \
                   and enriched test sets.")
  in
  let run () name n_p n_p0 seed criterion justify coverage dump ledger_out =
    let ledger = Option.map (fun _ -> Pdf_obs.Ledger.create ()) ledger_out in
    let justify = resolve_justify justify in
    let params = { Session.n_p; n_p0; seed; criterion; justify } in
    let ans =
      answer_or_die
        (Session.enrich ?ledger (Lazy.force session) ~circuit:name ~params
           ~coverage)
    in
    print_string ans.Session.text;
    dump_tests dump ans.Session.tests;
    write_ledger ledger_out ledger
  in
  Cmd.v
    (Cmd.info "enrich"
       ~doc:"Test enrichment with target sets P0 and P1 (paper Sec. 3).")
    Term.(const run $ obs_setup $ circuit_arg $ n_p_arg $ n_p0_arg $ seed_arg
          $ criterion_arg $ justify_arg $ coverage_flag $ dump_arg
          $ ledger_out_arg)

let faultsim_cmd =
  let tests_file =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"TESTS" ~doc:"Test file (one v1/v3 line per test).")
  in
  let run () name n_p n_p0 file =
    with_circuit name (fun c ->
        let parse_line lineno line =
          match String.split_on_char '/' (String.trim line) with
          | [ a; b ]
            when String.length a = c.Circuit.num_pis
                 && String.length b = c.Circuit.num_pis ->
            let bits s = Array.init (String.length s) (fun i -> s.[i] = '1') in
            Test_pair.create (bits a) (bits b)
          | _ ->
            Printf.eprintf "%s:%d: malformed test line\n" file lineno;
            exit 1
        in
        let ic = open_in file in
        let tests = ref [] in
        let lineno = ref 0 in
        (try
           while true do
             incr lineno;
             let line = input_line ic in
             if String.trim line <> "" then
               tests := parse_line !lineno line :: !tests
           done
         with End_of_file -> close_in ic);
        let tests = List.rev !tests in
        let model = Delay_model.lines c in
        let ts = Target_sets.build c model ~n_p ~n_p0 in
        let faults = Fault_sim.prepare c ts.Target_sets.p in
        let detected = Fault_sim.detected_by_tests c tests faults in
        let n0 = List.length ts.Target_sets.p0 in
        let count_in lo hi =
          let n = ref 0 in
          Array.iteri (fun i d -> if d && i >= lo && i < hi then incr n) detected;
          !n
        in
        Printf.printf
          "%d tests: detect %d/%d of P0, %d/%d of P1, %d/%d of P0 u P1\n"
          (List.length tests) (count_in 0 n0) n0
          (count_in n0 (Array.length faults))
          (Array.length faults - n0)
          (Fault_sim.count detected) (Array.length faults))
  in
  Cmd.v
    (Cmd.info "faultsim"
       ~doc:"Robust path-delay fault simulation of a test file over P0 u P1.")
    Term.(const run $ obs_setup $ circuit_arg $ n_p_arg $ n_p0_arg $ tests_file)

let gen_cmd =
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output netlist file.")
  in
  let verilog =
    Arg.(value & flag
         & info [ "verilog" ] ~doc:"Emit structural Verilog instead of .bench.")
  in
  let run () name verilog out =
    with_circuit name (fun c ->
        let text =
          if verilog then Pdf_circuit.Verilog_io.to_string c
          else Bench_io.to_string c
        in
        match out with
        | None -> print_string text
        | Some file ->
          let oc = open_out file in
          output_string oc text;
          close_out oc;
          Printf.printf "wrote %s\n" file)
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Emit a circuit (profile or file) as .bench or Verilog text.")
    Term.(const run $ obs_setup $ circuit_arg $ verilog $ out)

let count_cmd =
  let run () name =
    with_circuit name (fun c ->
        let model = Delay_model.lines c in
        let total = Pdf_paths.Count.total c in
        let len, at_longest = Pdf_paths.Count.longest c model in
        Printf.printf
          "%s: %.6g complete paths (%.6g path delay faults)\n\
           longest length %d (lines), %.6g paths at that length\n"
          c.Circuit.name total (2. *. total) len at_longest;
        let through = Pdf_paths.Count.through c in
        let busiest = ref 0 in
        Array.iteri
          (fun net v -> if v > through.(!busiest) then busiest := net)
          through;
        Printf.printf "busiest line: %s with %.6g paths through it\n"
          (Circuit.net_name c !busiest)
          through.(!busiest))
  in
  Cmd.v
    (Cmd.info "count"
       ~doc:"Count paths without enumeration (exact dynamic program).")
    Term.(const run $ obs_setup $ circuit_arg)

let sta_cmd =
  let period_arg =
    Arg.(value & opt (some int) None
         & info [ "period" ] ~docv:"T"
             ~doc:"Clock period (defaults to the critical delay).")
  in
  let run () name period =
    with_circuit name (fun c ->
        let model = Delay_model.lines c in
        let sta =
          match period with
          | Some period -> Pdf_paths.Sta.compute ~period c model
          | None -> Pdf_paths.Sta.compute c model
        in
        let critical = Pdf_paths.Sta.critical_nets sta in
        Printf.printf
          "%s: period %d, %d critical net(s) of %d\n" c.Circuit.name
          sta.Pdf_paths.Sta.period (List.length critical)
          (Circuit.num_nets c);
        (* Slack histogram. *)
        let buckets = Hashtbl.create 32 in
        Array.iter
          (fun s ->
            if s <> max_int then
              Hashtbl.replace buckets s
                (1 + Option.value ~default:0 (Hashtbl.find_opt buckets s)))
          sta.Pdf_paths.Sta.slack;
        let t =
          Pdf_util.Table.create
            [ ("slack", Pdf_util.Table.Right); ("nets", Pdf_util.Table.Right) ]
        in
        Hashtbl.fold (fun s n acc -> (s, n) :: acc) buckets []
        |> List.sort compare
        |> List.iteri (fun i (s, n) ->
               if i < 15 then
                 Pdf_util.Table.add_row t
                   [ string_of_int s; string_of_int n ]);
        Pdf_util.Table.print t)
  in
  Cmd.v
    (Cmd.info "sta"
       ~doc:"Static timing analysis: arrival/required/slack per net.")
    Term.(const run $ obs_setup $ circuit_arg $ period_arg)

let timing_cmd =
  let rank_arg =
    Arg.(value & opt int 0
         & info [ "fault" ] ~docv:"K"
             ~doc:"Rank of the target fault in P (0 = longest path).")
  in
  let extra_arg =
    Arg.(value & opt (some int) None
         & info [ "extra" ] ~docv:"D"
             ~doc:"Injected delay per path segment (default: slack + 1).")
  in
  let run () name n_p n_p0 seed rank extra =
    with_circuit name (fun c ->
        let model = Delay_model.lines c in
        let ts = Target_sets.build c model ~n_p ~n_p0 in
        let faults = Fault_sim.prepare c ts.Target_sets.p in
        if rank < 0 || rank >= Array.length faults then begin
          Printf.eprintf "fault rank out of range (P has %d faults)\n"
            (Array.length faults);
          exit 1
        end;
        let p = faults.(rank) in
        let period = Pdf_core.Timing.nominal_period c model in
        let slack = period - p.Fault_sim.length in
        let extra = match extra with Some e -> e | None -> slack + 1 in
        Printf.printf
          "fault #%d: %s (length %d, slack %d), clock period %d\n" rank
          (Pdf_faults.Fault.to_string c p.Fault_sim.fault)
          p.Fault_sim.length slack period;
        let engine = Pdf_core.Justify.create c in
        let rng = Pdf_util.Rng.create seed in
        match Pdf_core.Justify.run engine ~rng ~reqs:p.Fault_sim.reqs with
        | None -> print_endline "no robust test found"
        | Some t ->
          Printf.printf "robust test: %s\n" (Test_pair.to_string t);
          let inject =
            { Pdf_core.Timing.path = p.Fault_sim.fault.Pdf_faults.Fault.path;
              extra }
          in
          let faulty = Pdf_core.Timing.simulate ~inject c model t in
          Printf.printf
            "with +%d per segment the faulty circuit settles at t=%d: %s\n"
            extra faulty.Pdf_core.Timing.settle_time
            (if
               Pdf_core.Timing.detects c model ~t_sample:period ~inject t
             then "DETECTED"
             else "not detected (fault within slack)"))
  in
  Cmd.v
    (Cmd.info "timing"
       ~doc:"Timing-simulate a robust test against an injected path fault.")
    Term.(const run $ obs_setup $ circuit_arg $ n_p_arg $ n_p0_arg $ seed_arg
          $ rank_arg $ extra_arg)

let diagnose_cmd =
  let rank_arg =
    Arg.(value & opt int 0
         & info [ "fault" ] ~docv:"K"
             ~doc:"Rank in P of the fault to inject as ground truth.")
  in
  let top_arg =
    Arg.(value & opt int 5
         & info [ "top" ] ~docv:"N" ~doc:"Candidates to print.")
  in
  let run () name n_p n_p0 seed rank top =
    with_circuit name (fun c ->
        let model = Delay_model.lines c in
        let ts = Target_sets.build c model ~n_p ~n_p0 in
        let faults = Fault_sim.prepare c ts.Target_sets.p in
        if rank < 0 || rank >= Array.length faults then begin
          Printf.eprintf "fault rank out of range (P has %d faults)\n"
            (Array.length faults);
          exit 1
        end;
        let true_fault = faults.(rank) in
        let n0 = List.length ts.Target_sets.p0 in
        let p0 = List.init n0 (fun i -> i) in
        let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
        let res = Atpg.enrich c ~seed ~faults ~p0 ~p1 in
        let tests = res.Atpg.tests in
        let period = Pdf_core.Timing.nominal_period c model in
        let slack = period - true_fault.Fault_sim.length in
        let inject =
          { Pdf_core.Timing.path =
              true_fault.Fault_sim.fault.Pdf_faults.Fault.path;
            extra = slack + 1 }
        in
        let observed =
          List.map
            (fun t -> Pdf_core.Timing.detects c model ~t_sample:period ~inject t)
            tests
        in
        Printf.printf
          "injected: %s (length %d)\nsignature: %d/%d tests fail\n\n"
          (Pdf_faults.Fault.to_string c true_fault.Fault_sim.fault)
          true_fault.Fault_sim.length
          (List.length (List.filter Fun.id observed))
          (List.length tests);
        let verdicts = Pdf_core.Diagnose.diagnose c tests faults ~observed in
        Printf.printf "%d candidate fault(s); top %d:\n"
          (List.length verdicts) top;
        List.iteri
          (fun i (v : Pdf_core.Diagnose.verdict) ->
            if i < top then
              Printf.printf
                "  %s%s (robustly explains %d, weakly %d, unexplained %d)\n"
                (Pdf_faults.Fault.to_string c
                   faults.(v.Pdf_core.Diagnose.fault_id).Fault_sim.fault)
                (if v.Pdf_core.Diagnose.fault_id = rank then "   <- injected"
                 else "")
                v.Pdf_core.Diagnose.explained
                v.Pdf_core.Diagnose.maybe_explained
                v.Pdf_core.Diagnose.unexplained)
          verdicts)
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:"Inject a fault, capture its pass/fail signature, diagnose it.")
    Term.(const run $ obs_setup $ circuit_arg $ n_p_arg $ n_p0_arg $ seed_arg
          $ rank_arg $ top_arg)

let ablations_cmd =
  let which =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~docv:"EN"
             ~doc:"Run a single ablation: e1..e6.")
  in
  let profiles_arg =
    Arg.(value & opt_all string [ "b09" ]
         & info [ "profile" ] ~docv:"NAME" ~doc:"Profile(s) to run on.")
  in
  let run () which names seed =
    let module Ablations = Pdf_experiments.Ablations in
    let profiles =
      List.map
        (fun n ->
          match Profiles.find n with
          | Some p -> p
          | None ->
            Printf.eprintf "unknown profile %s\n" n;
            exit 1)
        names
    in
    let scale = Workload.small in
    let want label = match which with None -> true | Some w -> w = label in
    if want "e1" then
      print_string
        (Ablations.estimation_error ~seed scale ~noises:[ 20; 50 ] profiles);
    if want "e2" then print_string (Ablations.multiset ~seed scale profiles);
    if want "e3" then
      print_string (Ablations.static_compaction ~seed scale profiles);
    if want "e4" then print_string (Ablations.criterion ~seed scale profiles);
    if want "e5" then print_string (Ablations.justifier ~seed scale profiles);
    if want "e6" then
      List.iter
        (fun p ->
          print_string
            (Ablations.scaling ~seed scale ~n_p0s:[ 100; 200; 400 ] p))
        profiles
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Run the beyond-the-paper ablations (E1-E6).")
    Term.(const run $ obs_setup $ which $ profiles_arg $ seed_arg)

let tables_cmd =
  let scale_conv =
    Arg.conv
      ( (fun s ->
          match Workload.of_label s with
          | Some sc -> Ok sc
          | None -> Error (`Msg ("unknown scale " ^ s))),
        fun ppf (s : Workload.scale) ->
          Format.pp_print_string ppf s.Workload.label )
  in
  let scale_arg =
    Arg.(value & opt scale_conv Workload.small
         & info [ "scale" ] ~doc:"Experiment scale: small or paper.")
  in
  let which =
    Arg.(value & opt (some int) None
         & info [ "table" ] ~docv:"N" ~doc:"Only regenerate table N (1-7).")
  in
  let csv_dir =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR"
             ~doc:"Also write Tables 3-7 as CSV files into $(docv).")
  in
  let run () scale which csv seed =
    let module Tables = Pdf_experiments.Tables in
    let module Runner = Pdf_experiments.Runner in
    let need n =
      match which with None -> true | Some w -> w = n
    in
    if need 1 then print_string (Tables.table1 ());
    if need 2 then print_string (Tables.table2 scale);
    if need 3 || need 4 || need 5 || need 6 || need 7 then begin
      (* Each circuit run is independent (own seed-derived RNGs, own
         justification engine); fan them out across the default pool.
         Pool.map keeps the Profiles.table_rows order, so the rendered
         tables are identical whatever --jobs is. *)
      let pool = Pdf_par.Pool.default () in
      let table_runs =
        Pdf_par.Pool.map pool
          (fun p ->
            Log.raw_line (Printf.sprintf "running %s..." p.Profiles.name);
            Runner.run ~pool ~seed scale p)
          Profiles.table_rows
      in
      let star_runs =
        if need 6 then
          Pdf_par.Pool.map pool
            (fun p ->
              Log.raw_line (Printf.sprintf "running %s..." p.Profiles.name);
              Runner.run ~pool ~seed ~with_basics:false scale p)
            Profiles.star_rows
        else []
      in
      if need 3 then print_string (Tables.table3 table_runs);
      if need 4 then print_string (Tables.table4 table_runs);
      if need 5 then print_string (Tables.table5 table_runs);
      if need 6 then print_string (Tables.table6 (table_runs @ star_runs));
      if need 7 then print_string (Tables.table7 table_runs);
      match csv with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (stem, data) ->
            let path = Filename.concat dir (stem ^ ".csv") in
            Pdf_util.Csv.write_file data path;
            Printf.eprintf "wrote %s\n" path)
          (Tables.csv_exports ~table_runs
             ~enrich_runs:(table_runs @ star_runs))
    end
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables.")
    Term.(const run $ obs_setup $ scale_arg $ which $ csv_dir $ seed_arg)

let explain_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"FAULT"
             ~doc:"Fault id (integer) or a substring of the fault name \
                   (e.g. a net on the path).")
  in
  let run () name query n_p n_p0 seed criterion justify =
    let justify = resolve_justify justify in
    let params = { Session.n_p; n_p0; seed; criterion; justify } in
    let ans =
      answer_or_die
        (Session.explain (Lazy.force session) ~circuit:name ~params ~query)
    in
    print_string ans.Session.text
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Run enrichment with a provenance ledger and explain one \
             fault's disposition: which test detects it (and how it was \
             folded in), or why it was aborted, left uncovered, or \
             eliminated as undetectable.")
    Term.(const run $ obs_setup $ circuit_arg $ query_arg $ n_p_arg
          $ n_p0_arg $ seed_arg $ criterion_arg $ justify_arg)

let why_cmd =
  let query_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"FAULT"
             ~doc:"Fault id (integer) or a substring of the fault name \
                   (e.g. a net on the path).")
  in
  let run () name query n_p n_p0 seed criterion justify =
    let justify = resolve_justify justify in
    let params = { Session.n_p; n_p0; seed; criterion; justify } in
    let ans =
      answer_or_die
        (Session.why (Lazy.force session) ~circuit:name ~params ~query)
    in
    print_string ans.Session.text
  in
  Cmd.v
    (Cmd.info "why"
       ~doc:"Explain one fault's disposition plus the justification \
             effort charged to it (runs, trials, backtracks, resim gate \
             evals) and its abort forensics: the last requirement \
             conflict hit while targeting it and the deepest conflict \
             level reached.")
    Term.(const run $ obs_setup $ circuit_arg $ query_arg $ n_p_arg
          $ n_p0_arg $ seed_arg $ criterion_arg $ justify_arg)

let profile_cmd =
  let top_arg =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"K"
             ~doc:"Number of hot nets in the ranking table.")
  in
  let json_out_arg =
    Arg.(value & opt (some string) None
         & info [ "json-out" ] ~docv:"FILE"
             ~doc:"Also write the profile as a pdf-profile-report/1 JSON \
                   document to $(docv).")
  in
  let run () name n_p n_p0 seed criterion justify top json_out =
    let justify = resolve_justify justify in
    with_circuit name (fun c ->
        let p = Hotspots.profile ~criterion ~n_p ~n_p0 ~seed ~justify c in
        print_string (Hotspots.render ~k:top p);
        (match json_out with
        | None -> ()
        | Some path -> (
          try Hotspots.write_json ~k:top p path
          with Sys_error msg ->
            Printf.eprintf "pdfatpg: cannot write profile JSON: %s\n" msg;
            exit 1));
        (* With --trace-out active, add the per-level effort histogram
           as a Perfetto counter track next to the span timeline. *)
        match !trace_collector with
        | Some coll -> Hotspots.counter_track p coll
        | None -> ())
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run enrichment with per-net effort attribution and print \
             where the justification work went: semantic effort totals, \
             a per-level histogram, and the hottest nets.  Output is \
             byte-identical across --jobs values and the \
             PDF_INCSIM/PDF_BITSIM engine toggles.")
    Term.(const run $ obs_setup $ circuit_arg $ n_p_arg $ n_p0_arg
          $ seed_arg $ criterion_arg $ justify_arg $ top_arg $ json_out_arg)

let report_cmd =
  let run () name n_p n_p0 seed criterion justify ledger_out =
    let justify = resolve_justify justify in
    let params = { Session.n_p; n_p0; seed; criterion; justify } in
    let s = Lazy.force session in
    let ans = answer_or_die (Session.report s ~circuit:name ~params) in
    print_string ans.Session.text;
    match ledger_out with
    | None -> ()
    | Some _ -> (
      (* The provenance cache hands back the same run [report] just
         rendered, so the written ledger matches the printed tables. *)
      match Session.provenance s ~circuit:name ~params with
      | Ok p -> write_ledger ledger_out (Some p.Pdf_experiments.Provenance.ledger)
      | Error e ->
        prerr_endline (Session.error_message e);
        exit 1)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run enrichment with a provenance ledger and print the \
             disposition summary and per-test provenance tables.")
    Term.(const run $ obs_setup $ circuit_arg $ n_p_arg $ n_p0_arg
          $ seed_arg $ criterion_arg $ justify_arg $ ledger_out_arg)

let trace_cmd =
  let run () name n_p n_p0 seed criterion =
    with_circuit name (fun c ->
        (* Aggregate every span fired by the pipeline into one row per
           phase, then compare the instrumented self-time total against
           the independently measured wall clock. *)
        let agg = Span.agg () in
        (* Tee onto any sink obs_setup already installed (--trace-out)
           and restore it afterwards, so this subcommand composes with
           the shared trace exporter. *)
        let prev_sink = Span.sink () in
        Span.set_sink (Span.tee prev_sink (Span.agg_sink agg));
        let t0 = Unix.gettimeofday () in
        let ts, faults, p0, p1, res =
          Span.with_ "total" (fun () ->
              let model = Delay_model.lines c in
              let ts = Target_sets.build ~criterion c model ~n_p ~n_p0 in
              let faults = Fault_sim.prepare ~criterion c ts.Target_sets.p in
              let n0 = List.length ts.Target_sets.p0 in
              let p0 = List.init n0 Fun.id in
              let p1 =
                List.init (Array.length faults - n0) (fun i -> n0 + i)
              in
              let res = Atpg.enrich c ~seed ~faults ~p0 ~p1 in
              (ts, faults, p0, p1, res))
        in
        let wall = Unix.gettimeofday () -. t0 in
        Span.set_sink prev_sink;
        Metrics.set_int (Metrics.gauge "enrich.p0_detected")
          (Atpg.count_detected res ~ids:p0);
        Metrics.set_int (Metrics.gauge "enrich.p1_detected")
          (Atpg.count_detected res ~ids:p1);
        Metrics.set_int (Metrics.gauge "enrich.p_detected")
          (Fault_sim.count res.Atpg.detected);
        Metrics.set_int (Metrics.gauge "enrich.tests")
          (List.length res.Atpg.tests);
        Printf.printf
          "%s: enrichment run, |P0|=%d |P1|=%d, %d/%d detected, %d tests\n\n"
          c.Circuit.name
          (List.length ts.Target_sets.p0)
          (List.length ts.Target_sets.p1)
          (Fault_sim.count res.Atpg.detected)
          (Array.length faults)
          (List.length res.Atpg.tests);
        Pdf_util.Table.print (Span.agg_table ~wall_s:wall agg);
        let covered = Span.agg_self_total agg in
        Printf.printf
          "span self-time total %.3fs of %.3fs wall-clock (%.1f%% covered)\n"
          covered wall
          (if wall > 0. then 100. *. covered /. wall else 0.))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run an enrichment experiment with span tracing enabled and \
             print the per-phase profile (combine with --metrics-out for \
             the full counter dump).")
    Term.(const run $ obs_setup $ circuit_arg $ n_p_arg $ n_p0_arg $ seed_arg
          $ criterion_arg)

let fuzz_cmd =
  let rounds_arg =
    Arg.(value & opt int Pdf_check.Fuzz.default_config.Pdf_check.Fuzz.rounds
         & info [ "rounds" ] ~docv:"N"
             ~doc:"Number of fuzzing rounds (one random circuit each).")
  in
  let profile_arg =
    let doc =
      Printf.sprintf
        "Generator profile: %s.  Each profile is a grid of circuit shapes \
         cycled through round by round."
        (String.concat ", "
           (List.map
              (fun p -> p.Pdf_check.Fuzz.profile_name)
              Pdf_check.Fuzz.profiles))
    in
    Arg.(value & opt string "default" & info [ "profile" ] ~doc)
  in
  let time_budget_arg =
    Arg.(value & opt (some float) None
         & info [ "time-budget" ] ~docv:"SECONDS"
             ~doc:"Stop starting new rounds once $(docv) seconds of \
                   wall-clock have elapsed (for CI budgets).")
  in
  let out_arg =
    Arg.(value & opt string "_fuzz"
         & info [ "out" ] ~docv:"DIR"
             ~doc:"Directory for shrunk reproducers (.bench + .repro \
                   pairs), created on the first violation.")
  in
  let no_emit_flag =
    Arg.(value & flag
         & info [ "no-emit" ]
             ~doc:"Do not write reproducer files for violations.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Instead of fuzzing, re-run the oracle recorded in a \
                   .repro reproducer file and exit 1 if it still fails.")
  in
  let oracle_arg =
    Arg.(value & opt_all string []
         & info [ "oracle" ] ~docv:"NAME"
             ~doc:"Restrict the campaign to this oracle (repeatable); \
                   default is the full registry.")
  in
  let run () seed rounds profile time_budget out no_emit replay oracles
      ledger_out =
    match replay with
    | Some path -> (
      match Pdf_check.Fuzz.replay path with
      | Error msg ->
        prerr_endline msg;
        exit 2
      | Ok (oracle, Pdf_check.Oracle.Pass) ->
        Printf.printf "replay %s: oracle %s passes (violation fixed)\n" path
          oracle
      | Ok (oracle, Pdf_check.Oracle.Skip msg) ->
        Printf.printf "replay %s: oracle %s skipped (%s)\n" path oracle msg
      | Ok (oracle, Pdf_check.Oracle.Fail msg) ->
        Printf.printf "replay %s: oracle %s STILL FAILS\n  %s\n" path oracle
          msg;
        exit 1)
    | None ->
      let profile =
        match Pdf_check.Fuzz.profile_of_name profile with
        | Some p -> p
        | None ->
          prerr_endline
            (Printf.sprintf "unknown profile %S (try %s)" profile
               (String.concat ", "
                  (List.map
                     (fun p -> p.Pdf_check.Fuzz.profile_name)
                     Pdf_check.Fuzz.profiles)));
          exit 2
      in
      let ledger =
        match ledger_out with
        | Some _ -> Some (Pdf_obs.Ledger.create ())
        | None -> None
      in
      List.iter
        (fun n ->
          if Pdf_check.Oracle.find n = None then begin
            prerr_endline
              (Printf.sprintf "unknown oracle %S (try %s)" n
                 (String.concat ", " (Pdf_check.Oracle.names ())));
            exit 2
          end)
        oracles;
      let cfg =
        {
          Pdf_check.Fuzz.default_config with
          Pdf_check.Fuzz.seed;
          rounds;
          profile;
          time_budget_s = time_budget;
          out_dir = out;
          emit = not no_emit;
          oracles;
        }
      in
      let s = Pdf_check.Fuzz.run ?ledger cfg in
      Printf.printf
        "fuzz: %d rounds, %d oracle checks (%d passed, %d skipped), %d \
         violation(s) in %.1fs\n"
        s.Pdf_check.Fuzz.rounds_run s.Pdf_check.Fuzz.checks
        s.Pdf_check.Fuzz.passes s.Pdf_check.Fuzz.skips
        (List.length s.Pdf_check.Fuzz.violations)
        s.Pdf_check.Fuzz.elapsed_s;
      List.iter
        (fun (v : Pdf_check.Fuzz.violation) ->
          Printf.printf
            "  round %d oracle %s: %s\n    shrunk %d -> %d gates%s\n"
            v.Pdf_check.Fuzz.round v.Pdf_check.Fuzz.oracle
            v.Pdf_check.Fuzz.message
            (Circuit.num_gates v.Pdf_check.Fuzz.circuit)
            (Circuit.num_gates v.Pdf_check.Fuzz.shrunk)
            (match v.Pdf_check.Fuzz.files with
            | Some (_, repro) -> Printf.sprintf ", reproducer %s" repro
            | None -> ""))
        s.Pdf_check.Fuzz.violations;
      write_ledger ledger_out ledger;
      if s.Pdf_check.Fuzz.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: run every oracle (packed vs scalar \
             simulation, jobs determinism, justification vs brute force, \
             robust vs timing detection, enrichment invariants) on random \
             circuits and shrink any failure to a minimal reproducer.")
    Term.(const run $ obs_setup $ seed_arg $ rounds_arg $ profile_arg
          $ time_budget_arg $ out_arg $ no_emit_flag $ replay_arg
          $ oracle_arg $ ledger_out_arg)

let bench_cmd =
  let suite_arg =
    Arg.(value & opt (some string) None
         & info [ "suite" ] ~docv:"NAME"
             ~doc:"Benchmark suite to run (see $(b,--list)).")
  in
  let list_flag =
    Arg.(value & flag
         & info [ "list" ] ~doc:"List the available suites and exit.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Write the report as JSON (unified pdf-bench-report/1 \
                   schema: fingerprint, GC telemetry, throughput).")
  in
  let compare_arg =
    Arg.(value & opt (some string) None
         & info [ "compare" ] ~docv:"BASELINE"
             ~doc:"Compare against a baseline report written by a previous \
                   $(b,--out); exit 1 on a statistically significant \
                   regression.")
  in
  let max_regress_arg =
    Arg.(value & opt float 10.
         & info [ "max-regress" ] ~docv:"PCT"
             ~doc:"Minimum median slowdown (percent) that counts as a \
                   regression; the slowdown must also clear the noise band \
                   of the two runs.")
  in
  let warmup_arg =
    Arg.(value & opt int 1
         & info [ "warmup" ] ~docv:"N" ~doc:"Untimed warmup executions.")
  in
  let repeat_arg =
    Arg.(value & opt int 10
         & info [ "repeat" ] ~docv:"N" ~doc:"Timed repetitions per case.")
  in
  let min_sample_arg =
    Arg.(value & opt float 0.05
         & info [ "min-sample" ] ~docv:"SECONDS"
             ~doc:"Auto-calibrate the inner loop so each sample lasts at \
                   least this long (0 disables calibration).")
  in
  let circuits_arg =
    Arg.(value & opt string ""
         & info [ "circuits" ] ~docv:"NAMES"
             ~doc:"Comma-separated profile names (default: the suite's \
                   smoke set b03,b09,s641).")
  in
  let tests_arg =
    Arg.(value & opt int Pdf_experiments.Benchmark.default_params
                   .Pdf_experiments.Benchmark.n_tests
         & info [ "tests" ] ~docv:"N"
             ~doc:"Random two-pattern tests for simulation workloads.")
  in
  let bench_n_p_arg =
    Arg.(value & opt int Pdf_experiments.Benchmark.default_params
                   .Pdf_experiments.Benchmark.n_p
         & info [ "n-p" ] ~docv:"N" ~doc:"Fault budget N_P.")
  in
  let bench_n_p0_arg =
    Arg.(value & opt int Pdf_experiments.Benchmark.default_params
                   .Pdf_experiments.Benchmark.n_p0
         & info [ "n-p0" ] ~docv:"N" ~doc:"Primary-set threshold N_P0.")
  in
  let run () suite list out compare max_regress warmup repeat min_sample
      circuits tests n_p n_p0 seed =
    let module Benchmark = Pdf_experiments.Benchmark in
    if list then begin
      let t =
        Pdf_util.Table.create
          [ ("suite", Pdf_util.Table.Left);
            ("description", Pdf_util.Table.Left) ]
      in
      List.iter
        (fun s ->
          Pdf_util.Table.add_row t
            [ s.Benchmark.suite_name; s.Benchmark.suite_doc ])
        Benchmark.suites;
      Pdf_util.Table.print t
    end
    else begin
      let suite =
        match suite with
        | None ->
          Printf.eprintf
            "pdfatpg: bench needs --suite NAME (try --list)\n";
          exit 2
        | Some name -> (
          match Benchmark.find_suite name with
          | Some s -> s
          | None ->
            Printf.eprintf
              "pdfatpg: unknown suite %S (try --list)\n" name;
            exit 2)
      in
      let circuits =
        match Benchmark.profiles_of_spec circuits with
        | Ok l -> l
        | Error msg ->
          Printf.eprintf "pdfatpg: %s\n" msg;
          exit 2
      in
      let params =
        {
          Benchmark.circuits;
          n_tests = tests;
          n_p;
          n_p0;
          seed;
        }
      in
      let report =
        try
          Benchmark.run_suite ~warmup ~repeat ~min_sample_s:min_sample
            ~params ~progress:Log.raw_line suite
        with Failure msg ->
          Printf.eprintf "pdfatpg: bench: %s\n" msg;
          exit 1
      in
      Printf.printf "suite %s on %s\n\n" report.Benchmark.suite
        (Pdf_obs.Fingerprint.summary_line report.Benchmark.fingerprint);
      Pdf_util.Table.print (Benchmark.to_table report);
      (match out with
      | None -> ()
      | Some path ->
        Benchmark.write_report report path;
        Printf.printf "wrote %s\n" path);
      match compare with
      | None -> ()
      | Some path -> (
        match Pdf_obs.Json_text.parse_file path with
        | Error msg ->
          Printf.eprintf "pdfatpg: cannot read baseline %s: %s\n" path msg;
          exit 2
        | Ok baseline -> (
          (* Surface environment drift: a slower median on a different
             machine / engine / job count is drift, not a code
             regression — the gate still fires, but the output says
             what changed. *)
          (match
             Pdf_obs.Json_text.member "fingerprint" baseline
           with
          | Some fp ->
            let field name to_s =
              Option.map to_s (Pdf_obs.Json_text.member name fp)
            in
            let cur = report.Benchmark.fingerprint in
            let note name base cur =
              if base <> cur then
                Printf.printf
                  "note: fingerprint mismatch on %s (baseline %s, \
                   current %s)\n"
                  name base cur
            in
            let str v =
              Option.value ~default:"?" (Pdf_obs.Json_text.to_str v)
            in
            let any v =
              match v with
              | Pdf_obs.Json_text.Bool b -> string_of_bool b
              | Pdf_obs.Json_text.Num f -> Pdf_obs.Json_text.float f
              | v -> str v
            in
            (match field "hostname" str with
            | Some h -> note "hostname" h cur.Pdf_obs.Fingerprint.hostname
            | None -> ());
            (match field "bitsim" any with
            | Some b ->
              note "bitsim" b
                (string_of_bool cur.Pdf_obs.Fingerprint.bitsim)
            | None -> ());
            (match field "jobs" any with
            | Some j ->
              note "jobs" j (string_of_int cur.Pdf_obs.Fingerprint.jobs)
            | None -> ())
          | None -> ());
          match
            Benchmark.compare_with_baseline ~max_regress_pct:max_regress
              ~baseline report
          with
          | Error msg ->
            Printf.eprintf "pdfatpg: %s\n" msg;
            exit 2
          | Ok cmp ->
            Printf.printf "\ncompared against %s (max regress %.0f%%):\n\n"
              path max_regress;
            Pdf_util.Table.print (Benchmark.comparison_table cmp);
            List.iter
              (fun name ->
                Printf.printf "note: baseline-only case skipped: %s\n" name)
              cmp.Benchmark.only_in_baseline;
            List.iter
              (fun name ->
                Printf.printf "note: no baseline for new case: %s\n" name)
              cmp.Benchmark.only_in_current;
            if cmp.Benchmark.regressions <> [] then begin
              List.iter
                (fun (d : Benchmark.delta) ->
                  match d.Benchmark.verdict with
                  | Pdf_obs.Bstat.Slower pct ->
                    Printf.printf
                      "REGRESSION: %s is %.1f%% slower than baseline \
                       (%.3e s -> %.3e s, noise %.1f%%/%.1f%%)\n"
                      d.Benchmark.d_case pct d.Benchmark.base_median_s
                      d.Benchmark.cur_median_s d.Benchmark.base_noise_pct
                      d.Benchmark.cur_noise_pct
                  | _ -> ())
                cmp.Benchmark.regressions;
              exit 1
            end
            else Printf.printf "no significant regression\n"))
    end
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run a statistical benchmark suite (warmup, calibrated \
             repetitions, IQR outlier rejection, GC and throughput \
             telemetry); write the unified BENCH JSON report and/or gate \
             against a baseline (exit 1 on significant regression).")
    Term.(const run $ obs_setup $ suite_arg $ list_flag $ out_arg
          $ compare_arg $ max_regress_arg $ warmup_arg $ repeat_arg
          $ min_sample_arg $ circuits_arg $ tests_arg $ bench_n_p_arg
          $ bench_n_p0_arg $ seed_arg)

let serve_cmd =
  let unix_arg =
    Arg.(value & opt (some string) None
         & info [ "unix" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at $(docv) (unlinked on \
                   startup and shutdown).")
  in
  let tcp_arg =
    Arg.(value & opt (some string) None
         & info [ "tcp" ] ~docv:"HOST:PORT"
             ~doc:"Listen on a TCP socket, e.g. 127.0.0.1:7333.")
  in
  let max_clients_arg =
    Arg.(value & opt int 64
         & info [ "max-clients" ] ~docv:"N"
             ~doc:"Concurrent connections; excess connections get a \
                   $(b,busy) error frame.")
  in
  let max_line_arg =
    Arg.(value & opt int (1024 * 1024)
         & info [ "max-line-bytes" ] ~docv:"BYTES"
             ~doc:"Longest accepted request line ($(b,line_too_long)).")
  in
  let max_n_p_serve_arg =
    Arg.(value & opt int 20000
         & info [ "max-n-p" ] ~docv:"N"
             ~doc:"Per-request cap on n_p ($(b,budget_exceeded)).")
  in
  let max_n_p0_serve_arg =
    Arg.(value & opt int 2000
         & info [ "max-n-p0" ] ~docv:"N"
             ~doc:"Per-request cap on n_p0 ($(b,budget_exceeded)).")
  in
  let chunk_arg =
    Arg.(value & opt int 8192
         & info [ "chunk" ] ~docv:"BYTES"
             ~doc:"Answer-streaming slice size per chunk frame.")
  in
  let run () unix tcp max_clients max_line_bytes max_n_p max_n_p0 chunk
      justify =
    (match justify with
    | Some k -> Session.set_default_justify k
    | None -> ());
    let usage () =
      Printf.eprintf "pdfatpg: serve needs --unix PATH or --tcp HOST:PORT\n";
      exit 2
    in
    let bind =
      match (unix, tcp) with
      | Some path, None -> Server.Unix_path path
      | None, Some spec -> (
        match String.rindex_opt spec ':' with
        | None ->
          Printf.eprintf "pdfatpg: invalid --tcp %S (want HOST:PORT)\n" spec;
          exit 2
        | Some i -> (
          let host = String.sub spec 0 i in
          let host = if host = "" then "127.0.0.1" else host in
          match
            int_of_string_opt
              (String.sub spec (i + 1) (String.length spec - i - 1))
          with
          | Some port -> Server.Tcp (host, port)
          | None ->
            Printf.eprintf "pdfatpg: invalid --tcp port in %S\n" spec;
            exit 2))
      | Some _, Some _ ->
        Printf.eprintf "pdfatpg: choose one of --unix and --tcp\n";
        exit 2
      | None, None -> usage ()
    in
    let cfg =
      {
        (Server.default_config bind) with
        Server.max_clients;
        max_line_bytes;
        max_n_p;
        max_n_p0;
        chunk_bytes = chunk;
      }
    in
    Server.run
      ~ready:(fun () ->
        Printf.printf "pdfatpg: serving protocol %d on %s\n%!"
          Pdf_serve.Protocol.protocol_version
          (Server.bind_to_string bind))
      cfg
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve ATPG queries over a Unix or TCP socket with warm \
             circuit sessions: parse, levelize and analyze each circuit \
             once, then answer atpg/enrich/explain/report/ledger requests \
             from the session caches.  Line-delimited JSON protocol (see \
             PROTOCOL.md); a $(b,GET /metrics) line gets the live \
             Prometheus registry; a $(b,shutdown) request stops the \
             server.")
    Term.(const run $ obs_setup $ unix_arg $ tcp_arg $ max_clients_arg
          $ max_line_arg $ max_n_p_serve_arg $ max_n_p0_serve_arg
          $ chunk_arg $ justify_arg)

let version_cmd =
  let run () =
    let fp =
      Pdf_obs.Fingerprint.capture ~jobs:(Pdf_par.Pool.default_jobs ())
        ~bitsim:(Fault_sim.packed_enabled ()) ()
    in
    let t =
      Pdf_util.Table.create
        [ ("field", Pdf_util.Table.Left); ("value", Pdf_util.Table.Left) ]
    in
    List.iter
      (fun (k, v) -> Pdf_util.Table.add_row t [ k; v ])
      (Pdf_obs.Fingerprint.to_table_lines fp);
    Pdf_util.Table.print t
  in
  Cmd.v
    (Cmd.info "version"
       ~doc:"Print the full environment fingerprint (library version, git \
             revision, OCaml version, host, word size, jobs, simulation \
             engine) — the same record every benchmark report embeds.")
    Term.(const run $ obs_setup)

let () =
  let doc = "Path delay fault test generation with multiple sets of target faults." in
  let version =
    Pdf_obs.Fingerprint.summary_line (Pdf_obs.Fingerprint.capture ())
  in
  let info = Cmd.info "pdfatpg" ~version ~doc in
  let group =
    Cmd.group info
      [
        profiles_cmd; info_cmd; paths_cmd; histogram_cmd; count_cmd;
        sta_cmd; atpg_cmd; enrich_cmd; faultsim_cmd; gen_cmd; timing_cmd;
        diagnose_cmd; tables_cmd; ablations_cmd; trace_cmd; explain_cmd;
        why_cmd; profile_cmd; report_cmd; fuzz_cmd; bench_cmd; serve_cmd;
        version_cmd;
      ]
  in
  exit (Cmd.eval group)
