(* Serve-mode load generator (DESIGN.md §12.6).

   Measures the value of warm circuit sessions by timing the same ATPG
   query in four configurations:

     cold_session     a fresh Session per request — parse, levelize,
                      target-set construction, fault preparation and the
                      ATPG run are all paid per request (what a batch
                      CLI invocation pays, minus process startup);
     warm_answer      one shared session, identical request — served
                      from the answer cache;
     warm_analysis    one shared session, rotating seed — the answer
                      cache misses but the compiled circuit and the
                      (criterion, n_p, n_p0) analysis are reused, so
                      only the ATPG run itself is paid;
     socket_round_trip the warm_answer request through a live
                      `pdfatpg serve` instance over a Unix socket,
                      including JSON framing and scheduling.

   All timing goes through Pdf_obs.Bstat and the JSON result is a
   unified pdf-bench-report/1 file (suite "serve"), so the report
   carries the same fingerprint, GC and throughput fields as every
   other BENCH_*.json.  Sustained request throughput is the
   requests_per_s figure of each case.

   Exits non-zero when the warm-vs-cold median speedup falls below
   --min-speedup (default 5x), or when the served answer bytes differ
   from the in-process session's answer (the determinism contract). *)

module Bstat = Pdf_obs.Bstat
module Benchmark = Pdf_experiments.Benchmark
module Profiles = Pdf_synth.Profiles
module Session = Pdf_serve.Session
module Server = Pdf_serve.Server
module J = Pdf_obs.Json_text

let usage = "serve_bench [--circuit NAME] [--n-p N] [--n-p0 N] [--repeat N] \
             [--out FILE] [--min-speedup X]"

let circuit_name = ref "b09"
let n_p = ref 400
let n_p0 = ref 80
let repeat = ref 5
let out_path = ref "BENCH_serve.json"
let min_speedup = ref 5.0
let seed = ref 2002

let () =
  Arg.parse
    [
      ("--circuit", Arg.Set_string circuit_name, "Profile to run (default b09)");
      ("--n-p", Arg.Set_int n_p, "Fault budget N_P (default 400)");
      ("--n-p0", Arg.Set_int n_p0, "Threshold N_P0 (default 80)");
      ("--repeat", Arg.Set_int repeat, "Timed repetitions (default 5)");
      ("--seed", Arg.Set_int seed, "ATPG seed (default 2002)");
      ("--out", Arg.Set_string out_path, "JSON result file");
      ( "--min-speedup",
        Arg.Set_float min_speedup,
        "Fail below this warm-vs-cold median speedup (default 5.0)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage

(* Send one request line and read frames until the response closes;
   returns the reassembled chunk payload. *)
let round_trip fd ic line =
  let line = line ^ "\n" in
  let len = String.length line in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd line !off (len - !off)
  done;
  let body = Buffer.create 256 in
  let rec read () =
    let frame = input_line ic in
    match J.parse frame with
    | Error msg -> failwith ("serve_bench: bad frame: " ^ msg)
    | Ok v -> (
      match Option.bind (J.member "ev" v) J.to_str with
      | Some "chunk" ->
        (match Option.bind (J.member "data" v) J.to_str with
        | Some data -> Buffer.add_string body data
        | None -> failwith "serve_bench: chunk frame without data");
        read ()
      | Some "done" -> Buffer.contents body
      | Some "error" -> failwith ("serve_bench: error frame: " ^ frame)
      | _ -> failwith ("serve_bench: unknown frame: " ^ frame))
  in
  read ()

let () =
  let profile =
    match Benchmark.profiles_of_spec !circuit_name with
    | Ok [ p ] -> p
    | Ok _ ->
      Printf.eprintf "exactly one --circuit expected\n";
      exit 2
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let circuit = profile.Profiles.name in
  let params =
    { Session.default_params with Session.n_p = !n_p; n_p0 = !n_p0;
      seed = !seed }
  in
  let query s ~params =
    match
      Session.atpg s ~circuit ~params ~ordering:Pdf_core.Ordering.Value_based
        ~relax:false
    with
    | Ok a -> a
    | Error e -> failwith (Session.error_message e)
  in
  (* cold: a fresh session pays the whole pipeline per request. *)
  let cold_meas =
    Bstat.measure ~warmup:1 ~repeat:!repeat ~min_sample_s:0. (fun () ->
        ignore (query (Session.create ()) ~params : Session.answer))
  in
  let cold_stats = Bstat.summarize cold_meas.Bstat.samples in
  (* warm: the shared session answers the identical request from its
     answer cache (the warmup execution primes it). *)
  let warm_session = Session.create () in
  let warm_text = (query warm_session ~params).Session.text in
  let warm_meas =
    Bstat.measure ~warmup:1 ~repeat:!repeat ~min_sample_s:0.01 (fun () ->
        ignore (query warm_session ~params : Session.answer))
  in
  let warm_stats = Bstat.summarize warm_meas.Bstat.samples in
  (* warm_analysis: a fresh seed per request defeats the answer cache but
     reuses the compiled circuit and analysis. *)
  let next_seed = ref (!seed + 1_000_000) in
  let analysis_meas =
    Bstat.measure ~warmup:1 ~repeat:!repeat ~min_sample_s:0. (fun () ->
        incr next_seed;
        ignore
          (query warm_session ~params:{ params with Session.seed = !next_seed }
            : Session.answer))
  in
  let analysis_stats = Bstat.summarize analysis_meas.Bstat.samples in
  (* socket: the same warm request through a live server. *)
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pdfatpg_serve_bench_%d.sock" (Unix.getpid ()))
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Server.run
          ~ready:(fun () -> Atomic.set ready true)
          (Server.default_config (Server.Unix_path path)))
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let atpg_line =
    Printf.sprintf
      "{\"id\":1,\"req\":\"atpg\",\"circuit\":%s,\"n_p\":%d,\"n_p0\":%d,\"seed\":%d}"
      (J.quote circuit) !n_p !n_p0 !seed
  in
  let served_text = round_trip fd ic atpg_line in
  let socket_meas =
    Bstat.measure ~warmup:1 ~repeat:!repeat ~min_sample_s:0.01 (fun () ->
        ignore (round_trip fd ic atpg_line : string))
  in
  let socket_stats = Bstat.summarize socket_meas.Bstat.samples in
  ignore (round_trip fd ic "{\"id\":2,\"req\":\"shutdown\"}" : string);
  Domain.join server;
  close_in ic;
  (* Report. *)
  let case name meas stats =
    {
      Benchmark.r_case = name;
      r_units = [ ("requests", 1.) ];
      r_meas = meas;
      r_stats = stats;
    }
  in
  let report =
    {
      Benchmark.suite = "serve";
      fingerprint =
        Pdf_obs.Fingerprint.capture
          ~bitsim:(Pdf_core.Fault_sim.packed_enabled ()) ();
      warmup = 1;
      repeat = !repeat;
      min_sample_s = 0.;
      params =
        {
          Benchmark.circuits = [ profile ];
          n_tests = 0;
          n_p = !n_p;
          n_p0 = !n_p0;
          seed = !seed;
        };
      results =
        [
          case (circuit ^ "/cold_session") cold_meas cold_stats;
          case (circuit ^ "/warm_answer") warm_meas warm_stats;
          case (circuit ^ "/warm_analysis") analysis_meas analysis_stats;
          case (circuit ^ "/socket_round_trip") socket_meas socket_stats;
        ];
    }
  in
  Benchmark.write_report report !out_path;
  let speedup =
    if warm_stats.Bstat.median_s > 0. then
      cold_stats.Bstat.median_s /. warm_stats.Bstat.median_s
    else infinity
  in
  let rps s = if s.Bstat.median_s > 0. then 1. /. s.Bstat.median_s else 0. in
  Printf.printf
    "cold %.6fs  warm %.6fs  warm_analysis %.6fs  socket %.6fs (medians)\n\
     sustained: %.0f warm req/s in-process, %.0f req/s over the socket\n\
     warm-vs-cold speedup %.1fx\n"
    cold_stats.Bstat.median_s warm_stats.Bstat.median_s
    analysis_stats.Bstat.median_s socket_stats.Bstat.median_s
    (rps warm_stats) (rps socket_stats) speedup;
  if served_text <> warm_text then begin
    Printf.eprintf
      "FAIL: served answer differs from the in-process session answer\n";
    exit 1
  end;
  if speedup < !min_speedup then begin
    Printf.eprintf "FAIL: warm-vs-cold speedup %.1fx below the %.1fx budget\n"
      speedup !min_speedup;
    exit 1
  end
  else
    Printf.printf "OK: warm-vs-cold speedup %.1fx >= %.1fx budget\n" speedup
      !min_speedup
