(* Benchmark harness: regenerates every table of the paper (Tables 1-7;
   the two figures are the s27 schematic — embedded — and the d(g)
   illustration implemented by Pdf_paths.Distance) and then runs one
   Bechamel micro-benchmark per table, measuring that table's core
   computational kernel.

   Scale selection: PDF_SCALE=paper uses the paper's constants
   (N_P = 10000, N_P0 = 1000); the default "small" scale divides both by
   five so the suite completes in minutes.  PDF_SEED overrides the seed.
   PDF_JOBS=N fans the per-circuit runs of Tables 3-7 out over N domains
   (results are identical to PDF_JOBS=1; progress lines go to stderr so
   stdout stays deterministic).  PDF_TRACE=1 enables span tracing and
   prints a per-table phase profile at the end. *)

module Experiments = Pdf_experiments
module Runner = Experiments.Runner
module Tables = Experiments.Tables
module Workload = Experiments.Workload
module Profiles = Pdf_synth.Profiles
module Span = Pdf_obs.Span

let scale =
  match Sys.getenv_opt "PDF_SCALE" with
  | Some label -> (
    match Workload.of_label label with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown PDF_SCALE %S (use small|paper)\n" label;
      exit 2)
  | None -> Workload.small

let seed =
  match Sys.getenv_opt "PDF_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some v -> v
    | None ->
      Printf.eprintf "invalid PDF_SEED %S (expected an integer)\n" s;
      exit 2)
  | None -> Workload.default_seed

let trace_agg =
  match Sys.getenv_opt "PDF_TRACE" with
  | Some ("1" | "true" | "yes") ->
    let agg = Span.agg () in
    Span.set_sink (Span.agg_sink agg);
    Some agg
  | Some _ | None -> None

let hr title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let pool = Pdf_par.Pool.default ()

let () =
  Printf.printf
    "Test enrichment for path delay faults - table regeneration\n\
     scale=%s (N_P=%d, N_P0=%d) seed=%d jobs=%d\n"
    scale.Workload.label scale.Workload.n_p scale.Workload.n_p0 seed
    (Pdf_par.Pool.jobs pool)

let () =
  hr "Table 1 / Figure 1 (s27 walkthrough)";
  Span.with_ "table1" (fun () -> print_string (Tables.table1 ()));
  hr "Table 2 (path-length histogram)";
  Span.with_ "table2" (fun () -> print_string (Tables.table2 scale))

(* One full experiment run per circuit feeds Tables 3-7.  The runs are
   independent, so they fan out across the pool; progress goes to stderr
   through the log's serialised writer (line order may vary, lines never
   interleave) while stdout stays byte-identical to PDF_JOBS=1 because
   Pool.map returns results in Profiles.table_rows order. *)
let table_runs =
  Span.with_ "tables3-7.runs" (fun () ->
      Pdf_par.Pool.map pool
        (fun profile ->
          Pdf_obs.Log.raw_line
            (Printf.sprintf "running %s..." profile.Profiles.name);
          Runner.run ~pool ~seed scale profile)
        Profiles.table_rows)

let star_runs =
  Span.with_ "table6.star_runs" (fun () ->
      Pdf_par.Pool.map pool
        (fun profile ->
          Pdf_obs.Log.raw_line
            (Printf.sprintf "running %s..." profile.Profiles.name);
          Runner.run ~pool ~seed ~with_basics:false scale profile)
        Profiles.star_rows)

let () =
  hr "Table 3 (P0 detected, basic procedure)";
  print_string (Tables.table3 table_runs);
  hr "Table 4 (test counts, basic procedure)";
  print_string (Tables.table4 table_runs);
  hr "Table 5 (accidental detection of P0 u P1)";
  print_string (Tables.table5 table_runs);
  hr "Table 6 (test enrichment)";
  print_string (Tables.table6 (table_runs @ star_runs));
  hr "Table 7 (run-time ratios)";
  print_string (Tables.table7 table_runs);
  hr "Paper reference values";
  print_string (Tables.paper_reference ())

(* Ablations beyond the paper (DESIGN.md section 5, EXPERIMENTS.md). *)
let profile name =
  match Profiles.find name with Some p -> p | None -> assert false

let () =
  let module Ablations = Experiments.Ablations in
  Span.with_ "ablations" @@ fun () ->
  hr "E1 (delay-estimation error: the paper's motivation)";
  print_string
    (Ablations.estimation_error ~seed scale ~noises:[ 20; 50 ]
       [ profile "s641"; profile "b09" ]);
  hr "E2 (two vs three target sets)";
  print_string (Ablations.multiset ~seed scale [ profile "s641" ]);
  hr "E3 (static compaction on top)";
  print_string
    (Ablations.static_compaction ~seed scale [ profile "b03"; profile "b09" ]);
  hr "E4 (robust vs non-robust sensitization)";
  print_string
    (Ablations.criterion ~seed scale [ profile "b09"; profile "s1196" ]);
  hr "E5 (simulation-based vs branch-and-bound justification)";
  print_string
    (Ablations.justifier ~seed scale [ profile "b09"; profile "s1196" ]);
  hr "E6 (sweeping the N_P0 effort knob)";
  print_string
    (Ablations.scaling ~seed scale ~n_p0s:[ 100; 200; 400 ] (profile "b09"))

(* Micro-benchmarks: one kernel per table, measured by the shared
   statistical harness (Pdf_obs.Bstat via the "kernels" suite of
   Pdf_experiments.Benchmark — the same workloads `pdfatpg bench
   --suite kernels` runs and gates in CI). *)

let () =
  hr "Micro-benchmarks (one kernel per table)";
  let module Benchmark = Experiments.Benchmark in
  let suite =
    match Benchmark.find_suite "kernels" with
    | Some s -> s
    | None -> assert false
  in
  let report =
    Span.with_ "kernels" (fun () ->
        Benchmark.run_suite ~progress:Pdf_obs.Log.raw_line suite)
  in
  Pdf_util.Table.print (Benchmark.to_table report)

(* Phase profile of the whole suite (PDF_TRACE=1). *)
let () =
  match trace_agg with
  | None -> ()
  | Some agg ->
    Span.set_sink Span.Null;
    hr "Phase-span profile (PDF_TRACE)";
    Pdf_util.Table.print (Span.agg_table agg);
    Printf.printf "span self-time total %.3fs\n" (Span.agg_self_total agg)
