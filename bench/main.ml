(* Benchmark harness: regenerates every table of the paper (Tables 1-7;
   the two figures are the s27 schematic — embedded — and the d(g)
   illustration implemented by Pdf_paths.Distance) and then runs one
   Bechamel micro-benchmark per table, measuring that table's core
   computational kernel.

   Scale selection: PDF_SCALE=paper uses the paper's constants
   (N_P = 10000, N_P0 = 1000); the default "small" scale divides both by
   five so the suite completes in minutes.  PDF_SEED overrides the seed.
   PDF_JOBS=N fans the per-circuit runs of Tables 3-7 out over N domains
   (results are identical to PDF_JOBS=1; progress lines go to stderr so
   stdout stays deterministic).  PDF_TRACE=1 enables span tracing and
   prints a per-table phase profile at the end. *)

module Experiments = Pdf_experiments
module Runner = Experiments.Runner
module Tables = Experiments.Tables
module Workload = Experiments.Workload
module Profiles = Pdf_synth.Profiles
module Span = Pdf_obs.Span

let scale =
  match Sys.getenv_opt "PDF_SCALE" with
  | Some label -> (
    match Workload.of_label label with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown PDF_SCALE %S (use small|paper)\n" label;
      exit 2)
  | None -> Workload.small

let seed =
  match Sys.getenv_opt "PDF_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some v -> v
    | None ->
      Printf.eprintf "invalid PDF_SEED %S (expected an integer)\n" s;
      exit 2)
  | None -> Workload.default_seed

let trace_agg =
  match Sys.getenv_opt "PDF_TRACE" with
  | Some ("1" | "true" | "yes") ->
    let agg = Span.agg () in
    Span.set_sink (Span.agg_sink agg);
    Some agg
  | Some _ | None -> None

let hr title =
  Printf.printf "\n%s\n%s\n\n" title (String.make (String.length title) '=')

let pool = Pdf_par.Pool.default ()

let () =
  Printf.printf
    "Test enrichment for path delay faults - table regeneration\n\
     scale=%s (N_P=%d, N_P0=%d) seed=%d jobs=%d\n"
    scale.Workload.label scale.Workload.n_p scale.Workload.n_p0 seed
    (Pdf_par.Pool.jobs pool)

let () =
  hr "Table 1 / Figure 1 (s27 walkthrough)";
  Span.with_ "table1" (fun () -> print_string (Tables.table1 ()));
  hr "Table 2 (path-length histogram)";
  Span.with_ "table2" (fun () -> print_string (Tables.table2 scale))

(* One full experiment run per circuit feeds Tables 3-7.  The runs are
   independent, so they fan out across the pool; progress goes to stderr
   through the log's serialised writer (line order may vary, lines never
   interleave) while stdout stays byte-identical to PDF_JOBS=1 because
   Pool.map returns results in Profiles.table_rows order. *)
let table_runs =
  Span.with_ "tables3-7.runs" (fun () ->
      Pdf_par.Pool.map pool
        (fun profile ->
          Pdf_obs.Log.raw_line
            (Printf.sprintf "running %s..." profile.Profiles.name);
          Runner.run ~pool ~seed scale profile)
        Profiles.table_rows)

let star_runs =
  Span.with_ "table6.star_runs" (fun () ->
      Pdf_par.Pool.map pool
        (fun profile ->
          Pdf_obs.Log.raw_line
            (Printf.sprintf "running %s..." profile.Profiles.name);
          Runner.run ~pool ~seed ~with_basics:false scale profile)
        Profiles.star_rows)

let () =
  hr "Table 3 (P0 detected, basic procedure)";
  print_string (Tables.table3 table_runs);
  hr "Table 4 (test counts, basic procedure)";
  print_string (Tables.table4 table_runs);
  hr "Table 5 (accidental detection of P0 u P1)";
  print_string (Tables.table5 table_runs);
  hr "Table 6 (test enrichment)";
  print_string (Tables.table6 (table_runs @ star_runs));
  hr "Table 7 (run-time ratios)";
  print_string (Tables.table7 table_runs);
  hr "Paper reference values";
  print_string (Tables.paper_reference ())

(* Ablations beyond the paper (DESIGN.md section 5, EXPERIMENTS.md). *)
let profile name =
  match Profiles.find name with Some p -> p | None -> assert false

let () =
  let module Ablations = Experiments.Ablations in
  Span.with_ "ablations" @@ fun () ->
  hr "E1 (delay-estimation error: the paper's motivation)";
  print_string
    (Ablations.estimation_error ~seed scale ~noises:[ 20; 50 ]
       [ profile "s641"; profile "b09" ]);
  hr "E2 (two vs three target sets)";
  print_string (Ablations.multiset ~seed scale [ profile "s641" ]);
  hr "E3 (static compaction on top)";
  print_string
    (Ablations.static_compaction ~seed scale [ profile "b03"; profile "b09" ]);
  hr "E4 (robust vs non-robust sensitization)";
  print_string
    (Ablations.criterion ~seed scale [ profile "b09"; profile "s1196" ]);
  hr "E5 (simulation-based vs branch-and-bound justification)";
  print_string
    (Ablations.justifier ~seed scale [ profile "b09"; profile "s1196" ]);
  hr "E6 (sweeping the N_P0 effort knob)";
  print_string
    (Ablations.scaling ~seed scale ~n_p0s:[ 100; 200; 400 ] (profile "b09"))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table, measuring the    *)
(* kernel that dominates the table's regeneration.                      *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

type setup = {
  s27 : Pdf_circuit.Circuit.t;
  big : Pdf_circuit.Circuit.t;
  target_sets : Pdf_faults.Target_sets.t;
  faults : Pdf_core.Fault_sim.prepared array;
  engine : Pdf_core.Justify.t;
  rng : Pdf_util.Rng.t;
  test : Pdf_core.Test_pair.t;
}

let bench_setup =
  lazy
    (let s27 = Pdf_synth.Iscas.s27 () in
     let profile =
       match Profiles.find "s953" with Some p -> p | None -> assert false
     in
     let big = Profiles.circuit profile in
     let model = Pdf_paths.Delay_model.lines big in
     let target_sets =
       Pdf_faults.Target_sets.build big model ~n_p:400 ~n_p0:50
     in
     let faults =
       Pdf_core.Fault_sim.prepare big target_sets.Pdf_faults.Target_sets.p
     in
     let engine = Pdf_core.Justify.create big in
     let rng = Pdf_util.Rng.create 99 in
     let test =
       match
         Pdf_core.Justify.run engine ~rng
           ~reqs:faults.(0).Pdf_core.Fault_sim.reqs
       with
       | Some t -> t
       | None ->
         Pdf_core.Test_pair.create
           (Array.make big.Pdf_circuit.Circuit.num_pis false)
           (Array.make big.Pdf_circuit.Circuit.num_pis false)
     in
     { s27; big; target_sets; faults; engine; rng; test })

(* Table 4 kernel: one value-based secondary scan step — merge every
   candidate's conditions against an accumulated requirement set. *)
let delta_scan setup =
  let acc = Hashtbl.create 64 in
  List.iter
    (fun (net, req) -> Hashtbl.replace acc net req)
    setup.faults.(0).Pdf_core.Fault_sim.reqs;
  Array.fold_left
    (fun count (p : Pdf_core.Fault_sim.prepared) ->
      let compatible =
        List.for_all
          (fun (net, req) ->
            match Hashtbl.find_opt acc net with
            | None -> true
            | Some cur -> Option.is_some (Pdf_values.Req.merge cur req))
          p.Pdf_core.Fault_sim.reqs
      in
      if compatible then count + 1 else count)
    0 setup.faults

let tests =
  let s = bench_setup in
  Test.make_grouped ~name:"tables"
    [
      (* Table 1: bounded enumeration on s27. *)
      Test.make ~name:"t1_enumerate_s27"
        (Staged.stage (fun () ->
             let setup = Lazy.force s in
             let model = Pdf_paths.Delay_model.lines setup.s27 in
             Pdf_paths.Enumerate.enumerate ~mode:Pdf_paths.Enumerate.Simple
               setup.s27 model ~max_paths:20));
      (* Table 2: histogram construction over P. *)
      Test.make ~name:"t2_histogram"
        (Staged.stage (fun () ->
             let setup = Lazy.force s in
             Pdf_paths.Histogram.of_lengths
               (List.map
                  (fun (e : Pdf_faults.Target_sets.entry) ->
                    e.Pdf_faults.Target_sets.length)
                  setup.target_sets.Pdf_faults.Target_sets.p)));
      (* Table 3: a single-fault justification (the basic ATPG kernel). *)
      Test.make ~name:"t3_justify_one_fault"
        (Staged.stage (fun () ->
             let setup = Lazy.force s in
             Pdf_core.Justify.run setup.engine ~rng:setup.rng
               ~reqs:setup.faults.(0).Pdf_core.Fault_sim.reqs));
      (* Table 4: value-based Delta scan over all candidates. *)
      Test.make ~name:"t4_value_based_delta"
        (Staged.stage (fun () -> delta_scan (Lazy.force s)));
      (* Table 5: robust fault simulation of one test over P. *)
      Test.make ~name:"t5_fault_sim_one_test"
        (Staged.stage (fun () ->
             let setup = Lazy.force s in
             Pdf_core.Fault_sim.detected_by_test setup.big setup.test
               setup.faults));
      (* Table 6: two-pattern simulation (the enrichment inner loop). *)
      Test.make ~name:"t6_two_pattern_sim"
        (Staged.stage (fun () ->
             let setup = Lazy.force s in
             Pdf_core.Test_pair.simulate setup.big setup.test));
      (* Table 7: the implication engine (undetectability + candidate
         filtering, the run-time-ratio driver). *)
      Test.make ~name:"t7_implication"
        (Staged.stage (fun () ->
             let setup = Lazy.force s in
             Pdf_sim.Implication.infer setup.big
               setup.faults.(0).Pdf_core.Fault_sim.reqs));
    ]

let () =
  hr "Bechamel micro-benchmarks (one per table kernel)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let cell =
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.sprintf "%12.1f ns/run" est
          | Some _ | None -> "(no estimate)"
        in
        (name, cell) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, cell) -> Printf.printf "%-32s %s\n" name cell) rows;
  print_newline ()

(* Phase profile of the whole suite (PDF_TRACE=1). *)
let () =
  match trace_agg with
  | None -> ()
  | Some agg ->
    Span.set_sink Span.Null;
    hr "Phase-span profile (PDF_TRACE)";
    Pdf_util.Table.print (Span.agg_table agg);
    Printf.printf "span self-time total %.3fs\n" (Span.agg_self_total agg)
