(* Observability overhead guard (DESIGN.md §9.4).

   The tracing layer's contract is that an uninstrumented run pays only
   the Null-sink check per span site.  Timing two full ATPG runs against
   each other is too noisy to gate CI on a small percentage, so the
   guard uses an overhead model instead:

     overhead% = spans_fired x per_span_null_cost / wall_null x 100

   where per_span_null_cost is measured by a tight microbenchmark of
   Span.with_ under the Null sink (millions of iterations, so the figure
   is stable), spans_fired is counted by an Emit sink during one
   instrumented run, and wall_null is the wall-clock of the run with the
   Null sink.  The tracing-on wall time is also recorded (informational:
   it includes collector allocation, which only traced runs pay).

   Exits non-zero when the modelled Null-sink overhead exceeds
   --max-overhead percent (default 2%). *)

module Span = Pdf_obs.Span
module Profiles = Pdf_synth.Profiles
module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Atpg = Pdf_core.Atpg

let usage = "obs_overhead_bench [--circuit NAME] [--n-p N] [--n-p0 N] \
             [--repeat N] [--out FILE] [--max-overhead PCT]"

let circuit_name = ref "b09"
let n_p = ref 400
let n_p0 = ref 80
let repeat = ref 3
let out_path = ref "BENCH_obs_overhead.json"
let max_overhead = ref 2.0
let seed = ref 2002

let () =
  Arg.parse
    [
      ("--circuit", Arg.Set_string circuit_name, "Profile to run (default b09)");
      ("--n-p", Arg.Set_int n_p, "Fault budget N_P (default 400)");
      ("--n-p0", Arg.Set_int n_p0, "Threshold N_P0 (default 80)");
      ("--repeat", Arg.Set_int repeat, "Timed repetitions, best-of (default 3)");
      ("--seed", Arg.Set_int seed, "ATPG seed (default 2002)");
      ("--out", Arg.Set_string out_path, "JSON result file");
      ( "--max-overhead",
        Arg.Set_float max_overhead,
        "Fail above this Null-sink overhead percentage (default 2.0)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage

let () =
  let profile =
    match Profiles.find !circuit_name with
    | Some p -> p
    | None ->
      Printf.eprintf "unknown profile %s\n" !circuit_name;
      exit 2
  in
  let c = Profiles.circuit profile in
  let model = Pdf_paths.Delay_model.lines c in
  let ts = Target_sets.build c model ~n_p:!n_p ~n_p0:!n_p0 in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  let n0 = List.length ts.Target_sets.p0 in
  let p0 = List.init n0 Fun.id in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let workload () =
    ignore (Atpg.enrich c ~seed:!seed ~faults ~p0 ~p1 : Atpg.result)
  in
  let best_of k f =
    let best = ref infinity in
    for _ = 1 to k do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  (* 1. Wall time with the Null sink (the uninstrumented configuration). *)
  Span.set_sink Span.Null;
  let wall_null = best_of !repeat workload in
  (* 2. Span count of one instrumented run. *)
  let spans = ref 0 in
  Span.set_sink (Span.Emit (fun _ -> incr spans));
  workload ();
  let spans = !spans in
  (* 3. Wall time with a real trace collector attached (informational). *)
  let wall_trace =
    best_of !repeat (fun () ->
        let coll = Pdf_obs.Trace.collector () in
        Span.set_sink (Pdf_obs.Trace.sink coll);
        workload ())
  in
  Span.set_sink Span.Null;
  (* 4. Per-span cost of a Null-sink span site: time a tight loop of
     wrapped calls against the same loop unwrapped.  [sink ()] keeps the
     payload from being optimised away. *)
  let iters = 2_000_000 in
  let tick = ref 0 in
  let payload () = if Span.sink () = Span.Null then incr tick in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    payload ()
  done;
  let plain = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    Span.with_ "overhead-probe" payload
  done;
  let wrapped = Unix.gettimeofday () -. t0 in
  let per_span = Float.max 0. ((wrapped -. plain) /. float_of_int iters) in
  let modelled_pct =
    if wall_null > 0. then
      100. *. float_of_int spans *. per_span /. wall_null
    else 0.
  in
  let measured_pct =
    if wall_null > 0. then 100. *. (wall_trace -. wall_null) /. wall_null
    else 0.
  in
  let json =
    Printf.sprintf
      "{\"circuit\":%S,\"n_p\":%d,\"n_p0\":%d,\"repeat\":%d,\n\
      \ \"wall_null_s\":%.6f,\"wall_trace_s\":%.6f,\"spans\":%d,\n\
      \ \"per_span_null_cost_s\":%.3e,\"null_overhead_model_pct\":%.4f,\n\
      \ \"trace_on_overhead_pct\":%.2f,\"max_overhead_pct\":%.2f}\n"
      !circuit_name !n_p !n_p0 !repeat wall_null wall_trace spans per_span
      modelled_pct measured_pct !max_overhead
  in
  let oc = open_out !out_path in
  output_string oc json;
  close_out oc;
  print_string json;
  if modelled_pct > !max_overhead then begin
    Printf.eprintf
      "FAIL: modelled Null-sink overhead %.4f%% exceeds the %.2f%% budget\n"
      modelled_pct !max_overhead;
    exit 1
  end
  else
    Printf.printf "OK: modelled Null-sink overhead %.4f%% <= %.2f%% budget\n"
      modelled_pct !max_overhead
