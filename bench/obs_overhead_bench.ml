(* Observability overhead guard (DESIGN.md §9.4).

   The tracing layer's contract is that an uninstrumented run pays only
   the Null-sink check per span site.  Timing two full ATPG runs against
   each other is too noisy to gate CI on a small percentage, so the
   guard uses an overhead model instead:

     overhead% = spans_fired x per_span_null_cost / wall_null x 100

   where per_span_null_cost is measured by a microbenchmark of
   Span.with_ under the Null sink, spans_fired is counted by an Emit
   sink during one instrumented run, and wall_null is the best
   wall-clock of the run with the Null sink.  The tracing-on wall time
   is also recorded (informational: it includes collector allocation,
   which only traced runs pay).

   All timing goes through Pdf_obs.Bstat (the shared statistical
   harness) and the JSON result is a unified pdf-bench-report/1 file
   (suite "obs_overhead"), so the report carries the same fingerprint,
   GC and throughput fields as every other BENCH_*.json.

   The effort-attribution layer (DESIGN.md §14) is gated the same way:

     attrib overhead% = events x per_bump_cost / wall_null x 100

   where events is the total number of counter bumps one attributed run
   performs (the merged sheet's grand semantic total plus the
   engine-variant incremental count) and per_bump_cost is a
   microbenchmark of the hot-path pattern — an option match plus an
   int-array increment.  The attribution-on wall time is also recorded
   (informational, like the trace-on time).

   Exits non-zero when either modelled overhead (Null-sink spans, or
   attribution bumps) exceeds --max-overhead percent (default 2%). *)

module Span = Pdf_obs.Span
module Bstat = Pdf_obs.Bstat
module Attrib = Pdf_obs.Attrib
module Benchmark = Pdf_experiments.Benchmark
module Profiles = Pdf_synth.Profiles
module Target_sets = Pdf_faults.Target_sets
module Fault_sim = Pdf_core.Fault_sim
module Atpg = Pdf_core.Atpg

let usage = "obs_overhead_bench [--circuit NAME] [--n-p N] [--n-p0 N] \
             [--repeat N] [--out FILE] [--max-overhead PCT]"

let circuit_name = ref "b09"
let n_p = ref 400
let n_p0 = ref 80
let repeat = ref 3
let out_path = ref "BENCH_obs_overhead.json"
let max_overhead = ref 2.0
let seed = ref 2002

let () =
  Arg.parse
    [
      ("--circuit", Arg.Set_string circuit_name, "Profile to run (default b09)");
      ("--n-p", Arg.Set_int n_p, "Fault budget N_P (default 400)");
      ("--n-p0", Arg.Set_int n_p0, "Threshold N_P0 (default 80)");
      ("--repeat", Arg.Set_int repeat, "Timed repetitions (default 3)");
      ("--seed", Arg.Set_int seed, "ATPG seed (default 2002)");
      ("--out", Arg.Set_string out_path, "JSON result file");
      ( "--max-overhead",
        Arg.Set_float max_overhead,
        "Fail above this Null-sink overhead percentage (default 2.0)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage

let () =
  let profile =
    match Benchmark.profiles_of_spec !circuit_name with
    | Ok [ p ] -> p
    | Ok _ ->
      Printf.eprintf "exactly one --circuit expected\n";
      exit 2
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let c = Profiles.circuit profile in
  let model = Pdf_paths.Delay_model.lines c in
  let ts = Target_sets.build c model ~n_p:!n_p ~n_p0:!n_p0 in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  let n0 = List.length ts.Target_sets.p0 in
  let p0 = List.init n0 Fun.id in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let workload () =
    ignore (Atpg.enrich c ~seed:!seed ~faults ~p0 ~p1 : Atpg.result)
  in
  (* 1. Wall time with the Null sink (the uninstrumented configuration);
     the best sample stands in for the old best-of loop. *)
  Span.set_sink Span.Null;
  let null_meas =
    Bstat.measure ~warmup:1 ~repeat:!repeat ~min_sample_s:0. workload
  in
  let null_stats = Bstat.summarize null_meas.Bstat.samples in
  let wall_null = null_stats.Bstat.min_s in
  (* 2. Span count of one instrumented run. *)
  let spans = ref 0 in
  Span.set_sink (Span.Emit (fun _ -> incr spans));
  workload ();
  let spans = !spans in
  (* 3. Wall time with a real trace collector attached (informational). *)
  Span.set_sink Span.Null;
  let trace_meas =
    Bstat.measure ~warmup:0 ~repeat:!repeat ~min_sample_s:0. (fun () ->
        let coll = Pdf_obs.Trace.collector () in
        Span.set_sink (Pdf_obs.Trace.sink coll);
        workload ();
        Span.set_sink Span.Null)
  in
  let trace_stats = Bstat.summarize trace_meas.Bstat.samples in
  let wall_trace = trace_stats.Bstat.min_s in
  (* 4. Per-span cost of a Null-sink span site: a calibrated sample of
     wrapped calls against the same payload unwrapped.  [sink ()] keeps
     the payload from being optimised away. *)
  let tick = ref 0 in
  let payload () = if Span.sink () = Span.Null then incr tick in
  let site_cfg f = Bstat.measure ~warmup:1 ~repeat:5 ~min_sample_s:0.02 f in
  let plain_meas = site_cfg payload in
  let wrapped_meas = site_cfg (fun () -> Span.with_ "overhead-probe" payload) in
  let plain_stats = Bstat.summarize plain_meas.Bstat.samples in
  let wrapped_stats = Bstat.summarize wrapped_meas.Bstat.samples in
  let per_span =
    Float.max 0.
      (wrapped_stats.Bstat.median_s -. plain_stats.Bstat.median_s)
  in
  let modelled_pct =
    if wall_null > 0. then
      100. *. float_of_int spans *. per_span /. wall_null
    else 0.
  in
  let measured_pct =
    if wall_null > 0. then 100. *. (wall_trace -. wall_null) /. wall_null
    else 0.
  in
  (* 5. Attribution: count one attributed run's counter bumps, measure
     the attributed wall time (informational), and microbench the
     hot-path bump pattern (option match + int-array increment). *)
  let attrib_events =
    let store = Attrib.create ~nets:(Pdf_circuit.Circuit.num_nets c) in
    ignore
      (Atpg.enrich ~attrib:store c ~seed:!seed ~faults ~p0 ~p1 : Atpg.result);
    let s = Attrib.snapshot store in
    Attrib.grand_total s + s.Attrib.t_inc_resims
  in
  let attrib_meas =
    Bstat.measure ~warmup:1 ~repeat:!repeat ~min_sample_s:0. (fun () ->
        let store = Attrib.create ~nets:(Pdf_circuit.Circuit.num_nets c) in
        ignore
          (Atpg.enrich ~attrib:store c ~seed:!seed ~faults ~p0 ~p1
            : Atpg.result))
  in
  let attrib_stats = Bstat.summarize attrib_meas.Bstat.samples in
  let wall_attrib = attrib_stats.Bstat.min_s in
  let bump_sheet = Attrib.make_sheet ~nets:16 in
  let bump_att = Some bump_sheet in
  let bump_payload () =
    (match bump_att with
    | Some (a : Attrib.sheet) ->
      a.Attrib.trials.(!tick land 15) <- a.Attrib.trials.(!tick land 15) + 1
    | None -> ());
    incr tick
  in
  let bump_plain_meas = site_cfg (fun () -> incr tick) in
  let bump_meas = site_cfg bump_payload in
  let bump_plain_stats = Bstat.summarize bump_plain_meas.Bstat.samples in
  let bump_stats = Bstat.summarize bump_meas.Bstat.samples in
  let per_bump =
    Float.max 0. (bump_stats.Bstat.median_s -. bump_plain_stats.Bstat.median_s)
  in
  let modelled_attrib_pct =
    if wall_null > 0. then
      100. *. float_of_int attrib_events *. per_bump /. wall_null
    else 0.
  in
  let measured_attrib_pct =
    if wall_null > 0. then 100. *. (wall_attrib -. wall_null) /. wall_null
    else 0.
  in
  let case name units meas stats =
    { Benchmark.r_case = name; r_units = units; r_meas = meas; r_stats = stats }
  in
  let report =
    {
      Benchmark.suite = "obs_overhead";
      fingerprint =
        Pdf_obs.Fingerprint.capture ~bitsim:(Fault_sim.packed_enabled ()) ();
      warmup = 1;
      repeat = !repeat;
      min_sample_s = 0.;
      params =
        {
          Benchmark.circuits = [ profile ];
          n_tests = 0;
          n_p = !n_p;
          n_p0 = !n_p0;
          seed = !seed;
        };
      results =
        [
          case
            (profile.Profiles.name ^ "/atpg_null_sink")
            [ ("spans", float_of_int spans) ]
            null_meas null_stats;
          case
            (profile.Profiles.name ^ "/atpg_trace_sink")
            [ ("spans", float_of_int spans) ]
            trace_meas trace_stats;
          case "span_site/plain" [] plain_meas plain_stats;
          case "span_site/null_wrapped" [] wrapped_meas wrapped_stats;
          case
            (profile.Profiles.name ^ "/atpg_attrib_on")
            [ ("events", float_of_int attrib_events) ]
            attrib_meas attrib_stats;
          case "attrib_site/plain" [] bump_plain_meas bump_plain_stats;
          case "attrib_site/bump" [] bump_meas bump_stats;
        ];
    }
  in
  Benchmark.write_report report !out_path;
  Printf.printf
    "wall_null %.6fs  wall_trace %.6fs  spans %d\n\
     per_span_null_cost %.3es  modelled null overhead %.4f%%  \
     trace-on overhead %.2f%%\n"
    wall_null wall_trace spans per_span modelled_pct measured_pct;
  Printf.printf
    "wall_attrib %.6fs  attrib events %d\n\
     per_bump_cost %.3es  modelled attrib overhead %.4f%%  \
     attrib-on overhead %.2f%%\n"
    wall_attrib attrib_events per_bump modelled_attrib_pct
    measured_attrib_pct;
  let failed = ref false in
  if modelled_pct > !max_overhead then begin
    Printf.eprintf
      "FAIL: modelled Null-sink overhead %.4f%% exceeds the %.2f%% budget\n"
      modelled_pct !max_overhead;
    failed := true
  end
  else
    Printf.printf "OK: modelled Null-sink overhead %.4f%% <= %.2f%% budget\n"
      modelled_pct !max_overhead;
  if modelled_attrib_pct > !max_overhead then begin
    Printf.eprintf
      "FAIL: modelled attribution overhead %.4f%% exceeds the %.2f%% budget\n"
      modelled_attrib_pct !max_overhead;
    failed := true
  end
  else
    Printf.printf
      "OK: modelled attribution overhead %.4f%% <= %.2f%% budget\n"
      modelled_attrib_pct !max_overhead;
  if !failed then exit 1
