(* Scalar-vs-packed fault-simulation microbench.

   For each selected circuit profile, build a fault list and a random
   test set, then time the detection-matrix workload (the dictionary /
   static-compaction kernel) once with the packed engine disabled and
   once with it enabled, on the same pool.  The two matrices are
   compared cell for cell and any mismatch is a hard failure — the
   benchmark doubles as the packed-vs-scalar equivalence smoke test in
   CI.  Results are written as JSON (BENCH_fault_sim.json).

   Usage:
     fault_sim_bench [--circuits s641,b09] [--tests 252] [--faults 300]
                     [--repeat 3] [--jobs 1] [--out BENCH_fault_sim.json]

   Defaults cover every table and star profile with 252 tests (four word
   batches) and report the best of 3 runs per engine. *)

module Circuit = Pdf_circuit.Circuit
module Pool = Pdf_par.Pool
module Fault_sim = Pdf_core.Fault_sim
module Test_pair = Pdf_core.Test_pair
module Target_sets = Pdf_faults.Target_sets
module Delay_model = Pdf_paths.Delay_model
module Profiles = Pdf_synth.Profiles

let circuits = ref ""
let n_tests = ref 252
let n_faults = ref 2000
let repeat = ref 3
let jobs = ref 1
let out = ref "BENCH_fault_sim.json"

let spec =
  [
    ("--circuits", Arg.Set_string circuits,
     "NAMES comma-separated profile names (default: all table/star rows)");
    ("--tests", Arg.Set_int n_tests,
     "N number of random two-pattern tests (default 252)");
    ("--faults", Arg.Set_int n_faults,
     "N enumeration bound N_P per circuit (default 2000)");
    ("--repeat", Arg.Set_int repeat,
     "R timed runs per engine, best kept (default 3)");
    ("--jobs", Arg.Set_int jobs, "J pool size (default 1)");
    ("--out", Arg.Set_string out,
     "PATH output JSON path (default BENCH_fault_sim.json)");
  ]

let usage = "fault_sim_bench [options]"

let random_tests c ~n ~seed =
  let rng = Pdf_util.Rng.create seed in
  List.init n (fun _ ->
      let pat () =
        Array.init c.Circuit.num_pis (fun _ -> Pdf_util.Rng.bool rng)
      in
      Test_pair.create (pat ()) (pat ()))

let time_best ~repeat f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeat do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (!best, Option.get !result)

type row = {
  name : string;
  gates : int;
  faults : int;
  scalar_s : float;
  packed_s : float;
  speedup : float;
}

let bench_profile pool (profile : Profiles.t) =
  let c = Profiles.circuit profile in
  let ts =
    Target_sets.build c (Delay_model.lines c) ~n_p:!n_faults
      ~n_p0:(max 1 (!n_faults / 4))
  in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  let tests = random_tests c ~n:!n_tests ~seed:(Hashtbl.hash profile.name) in
  let engine packed () =
    Fault_sim.set_packed packed;
    Fault_sim.detect_matrix ~pool c tests faults
  in
  let scalar_s, scalar = time_best ~repeat:!repeat (engine false) in
  let packed_s, packed = time_best ~repeat:!repeat (engine true) in
  Fault_sim.set_packed true;
  if scalar <> packed then begin
    Printf.eprintf "FAIL: %s packed detection differs from scalar\n"
      profile.name;
    exit 1
  end;
  let row =
    {
      name = profile.name;
      gates = Circuit.num_gates c;
      faults = Array.length faults;
      scalar_s;
      packed_s;
      speedup = scalar_s /. packed_s;
    }
  in
  Printf.printf "%-10s %5d gates %4d faults  scalar %8.4fs  packed %8.4fs  %6.1fx\n%!"
    row.name row.gates row.faults row.scalar_s row.packed_s row.speedup;
  row

let json_of_rows rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"bench\": \"fault_sim.detect_matrix\",\n";
  Printf.bprintf b "  \"tests\": %d,\n" !n_tests;
  Printf.bprintf b "  \"jobs\": %d,\n" !jobs;
  Printf.bprintf b "  \"repeat\": %d,\n" !repeat;
  Buffer.add_string b "  \"match\": true,\n";
  Buffer.add_string b "  \"circuits\": [\n";
  List.iteri
    (fun i r ->
      Printf.bprintf b
        "    {\"name\": %S, \"gates\": %d, \"faults\": %d, \
         \"scalar_s\": %.6f, \"packed_s\": %.6f, \"speedup\": %.2f}%s\n"
        r.name r.gates r.faults r.scalar_s r.packed_s r.speedup
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  if !n_tests < 63 then begin
    Printf.eprintf "--tests must be at least 63 (one full word batch)\n";
    exit 2
  end;
  let profiles =
    if !circuits = "" then Profiles.enrichment_rows
    else
      List.map
        (fun name ->
          match Profiles.find name with
          | Some p -> p
          | None ->
            Printf.eprintf "unknown circuit profile %s\n" name;
            exit 2)
        (String.split_on_char ',' !circuits)
  in
  let rows =
    Pool.with_pool ~jobs:!jobs (fun pool ->
        List.map (bench_profile pool) profiles)
  in
  let oc = open_out !out in
  output_string oc (json_of_rows rows);
  close_out oc;
  Printf.printf "wrote %s\n" !out
