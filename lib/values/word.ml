type t = { zero : int; one : int }

let lanes = 63

let lane_mask n =
  if n < 0 || n > lanes then invalid_arg "Word.lane_mask: lane count"
  else if n = lanes then -1
  else (1 lsl n) - 1

let all_x = { zero = 0; one = 0 }

let splat = function
  | Bit.Zero -> { zero = -1; one = 0 }
  | Bit.One -> { zero = 0; one = -1 }
  | Bit.X -> all_x

let valid t = t.zero land t.one = 0

let get t lane =
  let b = 1 lsl lane in
  if t.one land b <> 0 then Bit.One
  else if t.zero land b <> 0 then Bit.Zero
  else Bit.X

let set t lane v =
  let b = 1 lsl lane in
  match v with
  | Bit.Zero -> { zero = t.zero lor b; one = t.one land lnot b }
  | Bit.One -> { zero = t.zero land lnot b; one = t.one lor b }
  | Bit.X -> { zero = t.zero land lnot b; one = t.one land lnot b }

let init n f =
  if n < 0 || n > lanes then invalid_arg "Word.init: lane count";
  let zero = ref 0 and one = ref 0 in
  for lane = 0 to n - 1 do
    (match f lane with
    | Bit.Zero -> zero := !zero lor (1 lsl lane)
    | Bit.One -> one := !one lor (1 lsl lane)
    | Bit.X -> ())
  done;
  { zero = !zero; one = !one }

let of_bits a = init (Array.length a) (fun lane -> a.(lane))

let to_bits n t = Array.init n (fun lane -> get t lane)

let equal a b = a.zero = b.zero && a.one = b.one

let not_ t = { zero = t.one; one = t.zero }

let and_ a b = { zero = a.zero lor b.zero; one = a.one land b.one }

let or_ a b = { zero = a.zero land b.zero; one = a.one lor b.one }

let xor a b =
  {
    zero = (a.zero land b.zero) lor (a.one land b.one);
    one = (a.zero land b.one) lor (a.one land b.zero);
  }

let middle a b = { zero = a.zero land b.zero; one = a.one land b.one }

let popcount m =
  let n = ref 0 and m = ref m in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr n
  done;
  !n

let pp ppf t =
  Format.pp_print_char ppf '[';
  for lane = lanes - 1 downto 0 do
    Format.pp_print_char ppf (Bit.char (get t lane))
  done;
  Format.pp_print_char ppf ']'
