(** Dual-rail word-packed three-valued values: 63 independent lanes per
    word, one per usable bit of a native OCaml [int].

    Bit [k] of [zero] is set iff lane [k] holds a definite [0]; bit [k]
    of [one] is set iff it holds a definite [1]; both clear means [X].
    The representation invariant is [zero land one = 0] — every exported
    operation preserves it.

    One word therefore carries the same information as 63 {!Bit.t}
    values, and the gate operations below apply the three-valued truth
    tables of {!Bit} to all lanes in a constant number of integer
    instructions — the classic PPSFP trick, here for the three-valued
    two-pattern domain (see [Pdf_bitsim.Wsim]).

    Lanes above the packed count hold whatever the constructors put
    there (e.g. {!splat} fills all 63); consumers mask results with
    {!lane_mask} rather than relying on unused lanes being [X]. *)

type t = { zero : int; one : int }

val lanes : int
(** 63 — lanes per word. *)

val lane_mask : int -> int
(** [lane_mask n] has the low [n] lane bits set ([-1] when [n = 63]).
    Raises [Invalid_argument] outside [0..63]. *)

val all_x : t

val splat : Bit.t -> t
(** The same value in every lane. *)

val valid : t -> bool
(** The representation invariant: no lane is both [0] and [1]. *)

val get : t -> int -> Bit.t

val set : t -> int -> Bit.t -> t

val init : int -> (int -> Bit.t) -> t
(** [init n f] packs [f 0 .. f (n-1)] into lanes [0..n-1]; the remaining
    lanes are [X].  Raises [Invalid_argument] when [n] is outside
    [0..63]. *)

val of_bits : Bit.t array -> t
(** [init] over an array (length at most 63). *)

val to_bits : int -> t -> Bit.t array
(** First [n] lanes, unpacked. *)

val equal : t -> t -> bool

val not_ : t -> t

val and_ : t -> t -> t

val or_ : t -> t -> t

val xor : t -> t -> t

val middle : t -> t -> t
(** Lane-wise [Two_pattern.middle_of_pair]: a definite value
    where both operands agree on a definite value, [X] everywhere
    else.  (Equal to [zero land zero' / one land one'].) *)

val popcount : int -> int
(** Set bits in a mask (detection counting). *)

val pp : Format.formatter -> t -> unit
(** All 63 lanes, highest first, e.g. [[xx...x01]]. *)
