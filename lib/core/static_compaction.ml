let detection_rows c faults tests =
  Array.to_list (Fault_sim.detect_matrix c tests faults)

let reverse_order c faults tests =
  let rows = detection_rows c faults tests in
  let n = Array.length faults in
  let covered = Array.make n false in
  let kept_rev =
    List.fold_left
      (fun kept (test, row) ->
        let useful = ref false in
        Array.iteri
          (fun i d -> if d && not covered.(i) then useful := true)
          row;
        if !useful then begin
          Array.iteri (fun i d -> if d then covered.(i) <- true) row;
          (test, row) :: kept
        end
        else kept)
      []
      (List.rev (List.combine tests rows))
  in
  List.map fst kept_rev

let greedy_cover c faults tests =
  let rows = Array.of_list (detection_rows c faults tests) in
  let tests_arr = Array.of_list tests in
  let n = Array.length faults in
  let covered = Array.make n false in
  let used = Array.make (Array.length tests_arr) false in
  let gain row =
    let g = ref 0 in
    Array.iteri (fun i d -> if d && not covered.(i) then incr g) row;
    !g
  in
  let kept = ref [] in
  let continue = ref true in
  while !continue do
    let best = ref (-1) and best_gain = ref 0 in
    Array.iteri
      (fun t row ->
        if not used.(t) then begin
          let g = gain row in
          if g > !best_gain then begin
            best := t;
            best_gain := g
          end
        end)
      rows;
    if !best < 0 then continue := false
    else begin
      used.(!best) <- true;
      Array.iteri (fun i d -> if d then covered.(i) <- true) rows.(!best);
      kept := !best :: !kept
    end
  done;
  (* Restore generation order among the survivors. *)
  List.sort compare !kept |> List.map (fun t -> tests_arr.(t))

let coverage_preserved c faults ~original ~compacted =
  Fault_sim.detected_by_tests c original faults
  = Fault_sim.detected_by_tests c compacted faults
