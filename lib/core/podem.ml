module Bit = Pdf_values.Bit
module Req = Pdf_values.Req
module Circuit = Pdf_circuit.Circuit
module Two_pattern = Pdf_sim.Two_pattern
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span
module Attrib = Pdf_obs.Attrib

(* Engine-specific observability.  The structural engine has no trial
   simulations; its unit of search work is the PI decision and its unit
   of propagation work is the implication pass. *)
let m_runs = Metrics.counter "podem.runs"
let m_decisions = Metrics.counter "podem.decisions"
let m_backtracks = Metrics.counter "podem.backtracks"
let m_conflicts = Metrics.counter "podem.conflicts"
let m_conflict_hits = Metrics.counter "podem.conflict_hits"
let m_implications = Metrics.counter "podem.implications"
let m_imply_gates = Metrics.counter "podem.imply_gates"
let m_aborts = Metrics.counter "podem.aborts"

(* Shared justification-layer counters (registration is idempotent, so
   these are the same counters justify.ml declares).  PODEM charges the
   same semantic vocabulary the sim engine does — runs, backtracks,
   resimulation gates (an implication pass costs one full cone pass,
   exactly like [Justify]'s resim), conflict hits — so the attribution
   sheets stay conserved against the process-wide metrics whichever
   engine ran (the `attrib` oracle checks this under any PDF_JUSTIFY). *)
let mj_runs = Metrics.counter "justify.runs"
let mj_backtracks = Metrics.counter "justify.backtracks"
let mj_resim_gates = Metrics.counter "justify.resim_gates"
let mj_conflict_hits = Metrics.counter "justify.conflict_hits"

let h_backtrack_depth =
  Metrics.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
    "justify.backtrack_depth"

(* Seeded mutation hook for the differential oracles (DESIGN.md §10):
   when enabled, the second-pattern implication of multi-input gates
   reads the first-pattern value of fanin 0 — a copy-paste bug subtle
   enough to survive the engine's own final check (the corrupted state
   self-consistently "satisfies" the requirements) and therefore only
   catchable by an independent re-simulation, which is exactly what the
   `justify-podem` oracle does. *)
let injected_bug = Atomic.make false
let set_injected_bug b = Atomic.set injected_bug b
let injected_bug_enabled () = Atomic.get injected_bug

type t = {
  circuit : Circuit.t;
  att : Attrib.sheet option;
  mutable e_runs : int;
  mutable e_decisions : int;
  mutable e_backtracks : int;
  mutable e_imply_calls : int;
  mutable e_imply_gates : int;
  mutable e_aborts : int;
  (* Abort forensics, same shape and semantics as [Justify]'s: the most
     recent requirement-conflict net with its level, and the deepest
     conflict level since the last reset. *)
  mutable last_conflict_net : int;
  mutable last_conflict_level : int;
  mutable deepest_conflict_level : int;
}

let create ?attrib circuit =
  {
    circuit;
    att = attrib;
    e_runs = 0;
    e_decisions = 0;
    e_backtracks = 0;
    e_imply_calls = 0;
    e_imply_gates = 0;
    e_aborts = 0;
    last_conflict_net = -1;
    last_conflict_level = -1;
    deepest_conflict_level = -1;
  }

let runs t = t.e_runs
let decisions t = t.e_decisions
let backtracks t = t.e_backtracks
let imply_calls t = t.e_imply_calls
let imply_gates t = t.e_imply_gates
let aborts t = t.e_aborts

type forensics = { last_net : int; last_level : int; deepest_level : int }

let forensics t =
  {
    last_net = t.last_conflict_net;
    last_level = t.last_conflict_level;
    deepest_level = t.deepest_conflict_level;
  }

let reset_forensics t =
  t.last_conflict_net <- -1;
  t.last_conflict_level <- -1;
  t.deepest_conflict_level <- -1

let note_conflict eng net =
  Metrics.incr m_conflict_hits;
  Metrics.incr mj_conflict_hits;
  let level = eng.circuit.Circuit.level.(net) in
  eng.last_conflict_net <- net;
  eng.last_conflict_level <- level;
  if level > eng.deepest_conflict_level then
    eng.deepest_conflict_level <- level;
  match eng.att with
  | Some a ->
    a.Attrib.conflicts.(net) <- a.Attrib.conflicts.(net) + 1;
    a.Attrib.t_conflicts <- a.Attrib.t_conflicts + 1
  | None -> ()

let eval_gate_get = Pdf_sim.Logic_sim.eval_gate_get

(* ------------------------------------------------------------------ *)
(* Search state                                                        *)
(* ------------------------------------------------------------------ *)

(* The 5-valued algebra is carried as the (component-0, component-2)
   pair of each net — {stable 0, stable 1, rising (the classical D̄→D
   pair), falling, unassigned} — plus the conservatively hazard-aware
   intermediate component 1 (DESIGN.md §15).  PODEM assigns only PI
   pattern bits ([a1]/[a3]); everything else is implied forward. *)
type state = {
  c : Circuit.t;
  eng : t;
  r : Bit.t array array;  (* requirements, 3 x nets; X = unconstrained *)
  req_nets : int array;
  cone_gates : int array;  (* ascending gate indices, topological *)
  cone_pis : int array;
  a1 : Bit.t array;  (* per PI *)
  a3 : Bit.t array;
  s : Bit.t array array;  (* implied values, 3 x nets *)
  mutable implies : int;  (* implication passes, for deferred attribution *)
}

let mismatch req value =
  match req, value with
  | (Bit.Zero | Bit.One), (Bit.Zero | Bit.One) -> not (Bit.equal req value)
  | (Bit.Zero | Bit.One | Bit.X), (Bit.Zero | Bit.One | Bit.X) -> false

(* Fan-in cone of the requirement nets — identical to [Justify]'s. *)
let compute_cone c req_nets =
  let n = Circuit.num_nets c in
  let in_cone = Array.make n false in
  let rec visit net =
    if not in_cone.(net) then begin
      in_cone.(net) <- true;
      match Circuit.gate_of_net c net with
      | None -> ()
      | Some g -> Array.iter visit (c : Circuit.t).gates.(g).Circuit.fanins
    end
  in
  Array.iter visit req_nets;
  let cone_gates = ref [] in
  for g = Circuit.num_gates c - 1 downto 0 do
    if in_cone.(Circuit.net_of_gate c g) then cone_gates := g :: !cone_gates
  done;
  let cone_pis = ref [] in
  for pi = c.Circuit.num_pis - 1 downto 0 do
    if in_cone.(pi) then cone_pis := pi :: !cone_pis
  done;
  (Array.of_list !cone_gates, Array.of_list !cone_pis)

let merge_reqs reqs =
  let acc = Hashtbl.create 16 in
  let ok =
    List.for_all
      (fun (net, req) ->
        let current =
          match Hashtbl.find_opt acc net with Some r -> r | None -> Req.any
        in
        match Req.merge current req with
        | Some merged ->
          Hashtbl.replace acc net merged;
          true
        | None -> false)
      reqs
  in
  if ok then Some (Hashtbl.fold (fun net req l -> (net, req) :: l) acc [])
  else None

(* Forward implication: one pass over the cone in topological order,
   all three components evaluated with the shared scalar gate evaluator.
   A pure function of [a1]/[a3] — re-running it after restoring the
   assignment restores the implied state exactly, which is what makes
   chronological backtracking a plain unassign-and-reimply. *)
let imply st =
  let eng = st.eng in
  st.implies <- st.implies + 1;
  eng.e_imply_calls <- eng.e_imply_calls + 1;
  eng.e_imply_gates <- eng.e_imply_gates + Array.length st.cone_gates;
  Metrics.incr m_implications;
  Metrics.add m_imply_gates (Array.length st.cone_gates);
  Metrics.add mj_resim_gates (Array.length st.cone_gates);
  let bug = injected_bug_enabled () in
  let middle = Two_pattern.middle_of_pair in
  Array.iter
    (fun pi ->
      st.s.(0).(pi) <- st.a1.(pi);
      st.s.(2).(pi) <- st.a3.(pi);
      st.s.(1).(pi) <- middle st.a1.(pi) st.a3.(pi))
    st.cone_pis;
  Array.iter
    (fun gi ->
      let g = st.c.Circuit.gates.(gi) in
      let out = Circuit.net_of_gate st.c gi in
      for k = 0 to 2 do
        let read =
          if bug && k = 2 && Array.length g.Circuit.fanins > 1 then
            fun net ->
              if net = g.Circuit.fanins.(0) then st.s.(0).(net)
              else st.s.(2).(net)
          else fun net -> st.s.(k).(net)
        in
        st.s.(k).(out) <- eval_gate_get g read
      done)
    st.cone_gates

(* First requirement net whose implied definite value contradicts it. *)
let conflict_net st =
  let n = Array.length st.req_nets in
  let rec go i =
    if i >= n then None
    else
      let net = st.req_nets.(i) in
      if
        mismatch st.r.(0).(net) st.s.(0).(net)
        || mismatch st.r.(1).(net) st.s.(1).(net)
        || mismatch st.r.(2).(net) st.s.(2).(net)
      then Some net
      else go (i + 1)
  in
  go 0

let satisfied st =
  let ok k net =
    match st.r.(k).(net) with
    | Bit.X -> true
    | (Bit.Zero | Bit.One) as v -> Bit.equal st.s.(k).(net) v
  in
  Array.for_all (fun net -> ok 0 net && ok 1 net && ok 2 net) st.req_nets

(* The objective frontier: requirement components pinned to a definite
   value whose implied value is still X.  This is the two-pattern
   generalisation of the classical D-frontier — instead of a faulty
   machine's D/D̄ boundary there is a set of required line values the
   search still has to drive (DESIGN.md §15); until the test is found
   (and absent a conflict) it is never empty, because an unsatisfied
   requirement is either a definite mismatch (a conflict) or an X. *)
let frontier st =
  Array.to_list st.req_nets
  |> List.concat_map (fun net ->
         List.filter_map
           (fun k ->
             match st.r.(k).(net) with
             | Bit.X -> None
             | Bit.Zero | Bit.One ->
               if Bit.equal st.s.(k).(net) Bit.X then Some (net, k) else None)
           [ 0; 1; 2 ])

let objective st =
  match frontier st with
  | [] -> None
  | (net, k) :: _ ->
    let v =
      match st.r.(k).(net) with
      | Bit.One -> true
      | Bit.Zero -> false
      | Bit.X -> assert false
    in
    Some (net, k, v)

(* Desired value for fanin [f] so gate [g]'s component-[k] output moves
   toward [v]: probe the shared evaluator with the fanin forced each
   way.  When neither definite value settles the output (several X
   inputs on a non-controlled gate), the goal value is passed through
   unchanged — value quality only affects search order, never
   completeness, because the decision loop tries both PI values. *)
let probe_value st g k f v =
  let want = Bit.of_bool v in
  let eval b =
    eval_gate_get g (fun net -> if net = f then b else st.s.(k).(net))
  in
  if Bit.equal (eval Bit.One) want then true
  else if Bit.equal (eval Bit.Zero) want then false
  else v

(* Backtrace: depth-first walk backward from objective [(net, k, v)]
   through X-valued nets to an unassigned PI pattern bit; returns the
   PI, the pattern index (1 or 3) and the value to try.  An X gate
   output always has an X fanin (three-valued evaluation is definite on
   definite inputs), so for components 0 and 2 the walk always ends at
   a PI whose corresponding bit is unassigned.  Component-1 objectives
   can additionally dead-end at PIs whose two bits are assigned and
   unequal — their intermediate value is X for good.  [None] therefore
   means the objective's entire X backward cone is frozen: no completion
   of the current assignment can ever make the component definite, so
   the caller soundly treats [None] as a refutation of the branch. *)
let backtrace st (net0, k0, v0) =
  let seen = Array.make (Circuit.num_nets st.c) false in
  let rec go net v =
    if seen.(net) then None
    else begin
      seen.(net) <- true;
      match Circuit.gate_of_net st.c net with
      | None ->
        (* A PI with an X component-[k0] value. *)
        let pi = net in
        if k0 = 0 then Some (pi, 1, v)
        else if k0 = 2 then Some (pi, 3, v)
        else if Bit.equal st.a1.(pi) Bit.X then Some (pi, 1, v)
        else if Bit.equal st.a3.(pi) Bit.X then Some (pi, 3, v)
        else None (* assigned unequal: the middle is X permanently *)
      | Some gi ->
        let g = st.c.Circuit.gates.(gi) in
        let arity = Array.length g.Circuit.fanins in
        let rec try_fanins i =
          if i >= arity then None
          else
            let f = g.Circuit.fanins.(i) in
            if Bit.equal st.s.(k0).(f) Bit.X then
              match go f (probe_value st g k0 f v) with
              | Some r -> Some r
              | None -> try_fanins (i + 1)
            else try_fanins (i + 1)
        in
        try_fanins 0
    end
  in
  go net0 v0

let set_bit st pi j b =
  match j with
  | 1 -> st.a1.(pi) <- Bit.of_bool b
  | 3 -> st.a3.(pi) <- Bit.of_bool b
  | _ -> invalid_arg "pattern"

let clear_bit st pi j =
  match j with
  | 1 -> st.a1.(pi) <- Bit.X
  | 3 -> st.a3.(pi) <- Bit.X
  | _ -> invalid_arg "pattern"

let make_state eng merged =
  let c = eng.circuit in
  let n = Circuit.num_nets c in
  let req_nets = Array.of_list (List.map fst merged) in
  let r = Array.init 3 (fun _ -> Array.make n Bit.X) in
  List.iter
    (fun (net, (req : Req.t)) ->
      let comp_bit = function
        | Req.Any -> Bit.X
        | Req.Must b -> Bit.of_bool b
      in
      r.(0).(net) <- comp_bit req.Req.r1;
      r.(1).(net) <- comp_bit req.Req.r2;
      r.(2).(net) <- comp_bit req.Req.r3)
    merged;
  let cone_gates, cone_pis = compute_cone c req_nets in
  {
    c;
    eng;
    r;
    req_nets;
    cone_gates;
    cone_pis;
    a1 = Array.make c.Circuit.num_pis Bit.X;
    a3 = Array.make c.Circuit.num_pis Bit.X;
    s = Array.init 3 (fun _ -> Array.make n Bit.X);
    implies = 0;
  }

(* Deferred attribution flush, mirroring [Justify]'s [record_search]:
   every implication pass charged its full cone cost to every cone
   gate's output net, in one O(cone) pass at the end of the run. *)
let record_state st =
  match st.eng.att with
  | Some a when st.implies > 0 ->
    a.Attrib.t_resim_calls <- a.Attrib.t_resim_calls + st.implies;
    a.Attrib.t_resim_gates <-
      a.Attrib.t_resim_gates + (st.implies * Array.length st.cone_gates);
    Array.iter
      (fun gi ->
        let net = Circuit.net_of_gate st.c gi in
        a.Attrib.resim_cone.(net) <- a.Attrib.resim_cone.(net) + st.implies)
      st.cone_gates
  | Some _ | None -> ()

(* Fill unassigned bits with zeros, like [Justify.run_complete]: the
   implied values of assigned nets are monotone under completion
   (three-valued evaluation never turns a definite value back to X when
   inputs become more definite), so any fill preserves satisfaction. *)
let build_test st =
  let m = st.c.Circuit.num_pis in
  let v1 = Array.make m false and v3 = Array.make m false in
  Array.iter
    (fun pi ->
      (match Bit.to_bool st.a1.(pi) with
      | Some b -> v1.(pi) <- b
      | None -> ());
      match Bit.to_bool st.a3.(pi) with
      | Some b -> v3.(pi) <- b
      | None -> ())
    st.cone_pis;
  Test_pair.create v1 v3

type outcome =
  | Found of Test_pair.t
  | Proved_unsatisfiable
  | Gave_up

exception Budget_exhausted

type decision = {
  d_pi : int;
  d_j : int;
  mutable d_value : bool;
  mutable d_flipped : bool;
}

let note_run eng =
  Metrics.incr m_runs;
  Metrics.incr mj_runs;
  eng.e_runs <- eng.e_runs + 1;
  match eng.att with
  | Some a -> a.Attrib.t_runs <- a.Attrib.t_runs + 1
  | None -> ()

let run ?(max_backtracks = 10_000) eng ~reqs =
  Span.with_ "podem" @@ fun () ->
  note_run eng;
  let c = eng.circuit in
  match merge_reqs reqs with
  | None ->
    Metrics.incr m_conflicts;
    Proved_unsatisfiable
  | Some [] ->
    Found
      (Test_pair.create
         (Array.make c.Circuit.num_pis false)
         (Array.make c.Circuit.num_pis false))
  | Some merged ->
    let st = make_state eng merged in
    let stack = ref [] in
    let backtracks = ref 0 in
    let spend pi =
      incr backtracks;
      eng.e_backtracks <- eng.e_backtracks + 1;
      Metrics.incr m_backtracks;
      Metrics.incr mj_backtracks;
      Metrics.observe_int h_backtrack_depth (List.length !stack);
      (match eng.att with
      | Some a ->
        a.Attrib.backtracks.(pi) <- a.Attrib.backtracks.(pi) + 1;
        a.Attrib.t_backtracks <- a.Attrib.t_backtracks + 1
      | None -> ());
      if !backtracks > max_backtracks then raise Budget_exhausted
    in
    let decide pi j v =
      eng.e_decisions <- eng.e_decisions + 1;
      Metrics.incr m_decisions;
      stack := { d_pi = pi; d_j = j; d_value = v; d_flipped = false } :: !stack;
      set_bit st pi j v;
      imply st
    in
    (* Chronological backtracking over the decision stack: flip the most
       recent unflipped decision, discarding everything above it.  The
       decisions branch on both values of unassigned PI bits, so an
       exhausted stack is a proof of unsatisfiability (conflicts persist
       under completion by monotonicity, and a dead backtrace means the
       objective component is frozen at X). *)
    let rec step () =
      match conflict_net st with
      | Some net ->
        note_conflict eng net;
        backtrack ()
      | None ->
        if satisfied st then Some (build_test st)
        else begin
          match objective st with
          | None -> backtrack () (* unreachable: unmet => conflict or X *)
          | Some obj -> (
            match backtrace st obj with
            | None -> backtrack () (* frozen objective: branch refuted *)
            | Some (pi, j, v) ->
              decide pi j v;
              step ())
        end
    and backtrack () =
      match !stack with
      | [] -> None
      | d :: rest ->
        spend d.d_pi;
        if d.d_flipped then begin
          clear_bit st d.d_pi d.d_j;
          stack := rest;
          backtrack ()
        end
        else begin
          d.d_flipped <- true;
          d.d_value <- not d.d_value;
          set_bit st d.d_pi d.d_j d.d_value;
          imply st;
          step ()
        end
    in
    let outcome =
      try
        imply st;
        match step () with
        | Some test -> Found test
        | None ->
          Metrics.incr m_conflicts;
          Proved_unsatisfiable
      with Budget_exhausted ->
        eng.e_aborts <- eng.e_aborts + 1;
        Metrics.incr m_aborts;
        Gave_up
    in
    record_state st;
    outcome

(* ------------------------------------------------------------------ *)
(* Exposed internals for the property tests                            *)
(* ------------------------------------------------------------------ *)

module Internal = struct
  type nonrec state = state

  let prepare eng ~reqs =
    match merge_reqs reqs with
    | None -> None
    | Some merged ->
      let st = make_state eng merged in
      imply st;
      Some st

  let imply = imply
  let frontier = frontier
  let conflict = conflict_net
  let satisfied = satisfied
  let objective = objective
  let backtrace = backtrace
  let cone_pis st = st.cone_pis

  let assign st (pi, j, v) = set_bit st pi j v
  let unassign st (pi, j) = clear_bit st pi j

  let bit_char = function Bit.Zero -> '0' | Bit.One -> '1' | Bit.X -> 'x'

  let snapshot st =
    let buf = Buffer.create 256 in
    let row a = Array.iter (fun b -> Buffer.add_char buf (bit_char b)) a in
    row st.a1;
    Buffer.add_char buf '/';
    row st.a3;
    Buffer.add_char buf '|';
    Array.iter
      (fun comp ->
        row comp;
        Buffer.add_char buf ';')
      st.s;
    Buffer.contents buf
end
