(** Robust fault simulation for path delay faults.

    A two-pattern test robustly detects a fault iff the simulated line
    values satisfy the fault's condition set [A(p)] — detection checking
    is therefore a per-fault scan over one whole-circuit simulation.

    Two engines implement that scan.  The scalar engine simulates one
    test at a time ({!detected_by_test}); the packed engine
    ([Pdf_bitsim]) simulates up to 63 tests per pass, one lane per test,
    and is used automatically by the batch entry points whenever it is
    enabled and at least one full word of tests is available.  The
    scalar engine is the reference: packed results are byte-identical by
    construction and property test, and metric totals do not depend on
    which engine ran or how many jobs the pool has. *)

(** A fault with its precomputed, merged condition set, ready for
    simulation.  [id] is the fault's index in the prepared array and is
    the id every ATPG entry point works with. *)
type prepared = {
  id : int;  (** index in the array returned by {!prepare} *)
  fault : Pdf_faults.Fault.t;  (** the underlying path delay fault *)
  length : int;  (** path length under the experiment's delay model *)
  reqs : (int * Pdf_values.Req.t) list;  (** merged [A(p)] *)
}

val set_packed : bool -> unit
(** Override the packed-engine switch.  The initial value comes from the
    [PDF_BITSIM] environment variable: set it to [0]/[false]/[no]/[off]
    to force every batch entry point onto the scalar reference path. *)

val packed_enabled : unit -> bool

val conditions :
  ?criterion:Pdf_faults.Robust.criterion ->
  Pdf_circuit.Circuit.t ->
  Pdf_faults.Fault.t ->
  (int * Pdf_values.Req.t) list option
(** Memoising front end to {!Pdf_faults.Robust.conditions}: results are
    cached per circuit (by physical identity, a bounded number of
    circuits) and per (criterion, fault).  Safe to call from pool
    domains.  Used by {!prepare} and the diagnosis dictionaries, which
    repeatedly ask for the same condition sets. *)

val prepare :
  ?criterion:Pdf_faults.Robust.criterion ->
  Pdf_circuit.Circuit.t ->
  Pdf_faults.Target_sets.entry list ->
  prepared array
(** Precompute merged conditions; ids are array indices.  Entries whose
    conditions conflict directly (undetectable) are dropped — {!Pdf_faults.Target_sets}
    already filters them, so this is normally the identity. *)

val detects_values :
  Pdf_values.Triple.t array -> prepared -> bool
(** Check one fault against an existing simulation result. *)

val detected_by_test :
  Pdf_circuit.Circuit.t -> Test_pair.t -> prepared array -> bool array
(** One simulation, then all faults checked. *)

val detected_by_tests :
  ?pool:Pdf_par.Pool.t ->
  ?attrib:Pdf_obs.Attrib.t ->
  Pdf_circuit.Circuit.t ->
  Test_pair.t list ->
  prepared array ->
  bool array
(** Union over a whole test set.  When the packed engine is enabled and
    the set holds at least one full word of tests, the list is cut into
    word batches at fixed multiples of 63 (see [Wsim.batch_bounds]),
    each batch is simulated bit-parallel on a pool domain, and the
    per-batch flags are merged by OR.  Otherwise the scalar path runs:
    sequential for one job, contiguous per-domain chunks for more.  All
    three paths produce bit-identical flags, and the metric totals
    ([fault_sim.simulations], [fault_sim.detections], and for the packed
    path [fault_sim.word_batches]/[fault_sim.lanes_used]) are
    jobs-invariant.  [pool] defaults to {!Pdf_par.Pool.default}.

    When [attrib] is given and the packed incremental engine runs, each
    batch charges its dirty-cone gate re-evaluations to a fresh
    {!Pdf_obs.Attrib} sheet merged into the store — commutative sums,
    so the merged totals are jobs-invariant (the counts themselves are
    engine-variant; see {!Pdf_obs.Attrib}). *)

val detect_matrix :
  ?pool:Pdf_par.Pool.t ->
  ?attrib:Pdf_obs.Attrib.t ->
  Pdf_circuit.Circuit.t ->
  Test_pair.t list ->
  prepared array ->
  bool array array
(** Full test [x] fault detection matrix: row [t] is the detection flag
    of every fault under test [t] (same row shape as
    {!detected_by_test}).  Runs packed word batches when enabled and
    worthwhile, scalar per-test rows otherwise; rows are byte-identical
    either way.  This is the workhorse behind diagnosis dictionaries and
    static compaction delta scans. *)

val count : bool array -> int
(** Number of [true] flags, i.e. detected faults. *)
