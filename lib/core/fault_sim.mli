(** Robust fault simulation for path delay faults.

    A two-pattern test robustly detects a fault iff the simulated line
    values satisfy the fault's condition set [A(p)] — detection checking
    is therefore a per-fault scan over one whole-circuit simulation. *)

(** A fault with its precomputed, merged condition set, ready for
    simulation.  [id] is the fault's index in the prepared array and is
    the id every ATPG entry point works with. *)
type prepared = {
  id : int;  (** index in the array returned by {!prepare} *)
  fault : Pdf_faults.Fault.t;  (** the underlying path delay fault *)
  length : int;  (** path length under the experiment's delay model *)
  reqs : (int * Pdf_values.Req.t) list;  (** merged [A(p)] *)
}

val prepare :
  ?criterion:Pdf_faults.Robust.criterion ->
  Pdf_circuit.Circuit.t ->
  Pdf_faults.Target_sets.entry list ->
  prepared array
(** Precompute merged conditions; ids are array indices.  Entries whose
    conditions conflict directly (undetectable) are dropped — {!Pdf_faults.Target_sets}
    already filters them, so this is normally the identity. *)

val detects_values :
  Pdf_values.Triple.t array -> prepared -> bool
(** Check one fault against an existing simulation result. *)

val detected_by_test :
  Pdf_circuit.Circuit.t -> Test_pair.t -> prepared array -> bool array
(** One simulation, then all faults checked. *)

val detected_by_tests :
  ?pool:Pdf_par.Pool.t ->
  Pdf_circuit.Circuit.t ->
  Test_pair.t list ->
  prepared array ->
  bool array
(** Union over a whole test set.  When [pool] (default:
    {!Pdf_par.Pool.default}) has more than one job, the test list is cut
    into one contiguous chunk per job, each chunk is simulated on its own
    domain into a private detection array, and the arrays are merged by
    OR — bit-identical to the sequential scan, since detection flags only
    ever go from [false] to [true] and OR is commutative.  Metric totals
    ([fault_sim.simulations], [fault_sim.detections]) also match the
    sequential run exactly. *)

val count : bool array -> int
(** Number of [true] flags, i.e. detected faults. *)
