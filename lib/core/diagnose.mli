(** Path-delay fault diagnosis from pass/fail signatures.

    Given the applied two-pattern test set and the observed per-test
    pass/fail outcome of a failing device, rank the target faults by how
    well they explain the signature.  Two dictionaries are used:

    - {e robust} detection: if the device contains fault [f] (with delay
      large enough to violate the period) then every test that robustly
      detects [f] {e must} fail — a passing test therefore eliminates all
      faults it robustly detects;
    - {e non-robust} sensitization: a failing test non-robustly
      sensitizing [f] {e may} be failing because of [f] — it counts as a
      (weak) explanation.

    Candidates are ranked by how many observed failures they explain at
    least weakly, then by unexplained failures, then by strong (robust)
    explanations. *)

type verdict = {
  fault_id : int;
  explained : int;  (** failing tests robustly accounted for *)
  maybe_explained : int;
      (** failing tests accounted for at least non-robustly (includes
          [explained]) *)
  unexplained : int;  (** failing tests not accounted for at all *)
}

val dictionary :
  Pdf_circuit.Circuit.t ->
  Test_pair.t list ->
  Fault_sim.prepared array ->
  bool array array
(** [dictionary c tests faults] — [(List.length tests) x (faults)] robust
    detection matrix. *)

val weak_dictionary :
  Pdf_circuit.Circuit.t ->
  Test_pair.t list ->
  Fault_sim.prepared array ->
  bool array array
(** Same shape as {!dictionary}, under non-robust sensitization of the
    same faults; a fault whose non-robust conditions conflict directly
    yields an all-[false] column. *)

val diagnose :
  Pdf_circuit.Circuit.t ->
  Test_pair.t list ->
  Fault_sim.prepared array ->
  observed:bool list ->
  verdict list
(** [observed] gives one Boolean per test, [true] = the device FAILED the
    test.  Returns the surviving candidates, best first.  Faults
    contradicted by a passing robust test are excluded, as are faults
    explaining nothing when there are failures.  Raises
    [Invalid_argument] if [observed] and the test set disagree in
    length. *)
