(** Simulation-based justification (paper, Section 2.1).

    Given a set of required line values — the union of the [A(p)] of the
    faults a test under construction must detect — the engine searches for
    a fully specified two-pattern test that assigns all of them:

    + every primary-input bit starts unspecified;
    + {e necessary values}: for each unspecified input bit, both values are
      tried by simulation; a value whose implication contradicts a
      requirement is excluded, and if both are excluded the search fails;
    + when no more necessary values exist, a {e decision} is made — an
      input with exactly one specified pattern bit is made stable at it,
      otherwise a random unspecified bit gets a random value;
    + on full specification the requirements are checked exactly (a pinned
      intermediate value must simulate to that definite value — a
      potential glitch fails the check).

    Only inputs in the fan-in cone of the required lines are searched;
    the remaining inputs cannot affect any requirement and are filled
    randomly (equivalent to the paper's random decisions on them). *)

type t
(** A justification engine for one circuit.  Engines hold per-engine
    effort counters and scratch state: drive each engine from a single
    domain at a time (create one engine per concurrent ATPG run). *)

val create : Pdf_circuit.Circuit.t -> t
(** A fresh engine with zeroed {!runs}/{!trials} counters. *)

val run :
  t ->
  rng:Pdf_util.Rng.t ->
  reqs:(int * Pdf_values.Req.t) list ->
  Test_pair.t option
(** [run engine ~rng ~reqs] — [None] when a conflict is met or the final
    check fails.  [reqs] may list a net several times; entries are merged
    first (a direct conflict fails immediately). *)

val runs : t -> int
(** Number of [run]/[run_complete] invocations on {e this} engine.  The
    process-wide [justify.runs] counter in {!Pdf_obs.Metrics} also counts
    every invocation, but sums over all engines; the per-engine figure
    stays exact when other engines run concurrently on other domains. *)

val trials : t -> int
(** Trial simulations performed by {e this} engine (effort metric);
    per-engine, like {!runs} — the process-wide total is the
    [justify.trials] metric. *)

val backtracks : t -> int
(** Backtracks spent by {e this} engine's {!run_complete} searches;
    per-engine, like {!runs} — the process-wide total is the
    [justify.backtracks] metric. *)

(** {2 Complete search}

    The paper notes that the coverage variations caused by random value
    selection "can be eliminated by using a branch-and-bound procedure
    instead of a simulation-based procedure for justification".  This is
    that procedure: the same necessary-value machinery, but decisions are
    explored depth-first with backtracking, deterministically. *)

type complete_outcome =
  | Found of Test_pair.t
  | Proved_unsatisfiable  (** the whole decision tree was refuted *)
  | Gave_up  (** backtrack budget exhausted *)

val run_complete :
  ?max_backtracks:int ->
  t ->
  reqs:(int * Pdf_values.Req.t) list ->
  complete_outcome
(** Deterministic branch-and-bound justification.  Default budget is
    10000 backtracks.  Unsearched inputs (outside the requirement cone)
    are filled with zeros. *)
