(** Simulation-based justification (paper, Section 2.1).

    Given a set of required line values — the union of the [A(p)] of the
    faults a test under construction must detect — the engine searches for
    a fully specified two-pattern test that assigns all of them:

    + every primary-input bit starts unspecified;
    + {e necessary values}: for each unspecified input bit, both values are
      tried by simulation; a value whose implication contradicts a
      requirement is excluded, and if both are excluded the search fails;
    + when no more necessary values exist, a {e decision} is made — an
      input with exactly one specified pattern bit is made stable at it,
      otherwise a random unspecified bit gets a random value;
    + on full specification the requirements are checked exactly (a pinned
      intermediate value must simulate to that definite value — a
      potential glitch fails the check).

    Only inputs in the fan-in cone of the required lines are searched;
    the remaining inputs cannot affect any requirement and are filled
    randomly (equivalent to the paper's random decisions on them). *)

type t
(** A justification engine for one circuit.  Engines hold per-engine
    effort counters and scratch state: drive each engine from a single
    domain at a time (create one engine per concurrent ATPG run). *)

val create : ?attrib:Pdf_obs.Attrib.sheet -> Pdf_circuit.Circuit.t -> t
(** A fresh engine with zeroed {!runs}/{!trials} counters.  When
    [attrib] is given, the engine charges per-net effort to the sheet
    (DESIGN.md §14): trial simulations to the tried PI net, overlay
    gate evaluations to the evaluated gate's output net, resimulation
    calls to every cone gate (full-pass cost, engine-invariant),
    requirement conflicts to the mismatching net, and complete-search
    backtracks to the retracted decision input.  The sheet is bumped
    without synchronisation — drive the engine from one domain at a
    time, as always. *)

val run :
  t ->
  rng:Pdf_util.Rng.t ->
  reqs:(int * Pdf_values.Req.t) list ->
  Test_pair.t option
(** [run engine ~rng ~reqs] — [None] when a conflict is met or the final
    check fails.  [reqs] may list a net several times; entries are merged
    first (a direct conflict fails immediately). *)

val runs : t -> int
(** Number of [run]/[run_complete] invocations on {e this} engine.  The
    process-wide [justify.runs] counter in {!Pdf_obs.Metrics} also counts
    every invocation, but sums over all engines; the per-engine figure
    stays exact when other engines run concurrently on other domains. *)

val trials : t -> int
(** Trial simulations performed by {e this} engine (effort metric);
    per-engine, like {!runs} — the process-wide total is the
    [justify.trials] metric. *)

val backtracks : t -> int
(** Backtracks spent by {e this} engine's {!run_complete} searches;
    per-engine, like {!runs} — the process-wide total is the
    [justify.backtracks] metric. *)

val resim_calls : t -> int
(** Resimulation calls this engine performed (each brings the persistent
    cone state up to date with the current assignment). *)

val resim_gates : t -> int
(** Semantic resimulation effort: every resimulation call charged its
    full-pass cost (the requirement cone's gate count), whichever
    engine actually ran — byte-identical across [PDF_INCSIM] toggles.
    Process-wide counterpart: the [justify.resim_gates] metric. *)

(** {2 Abort forensics}

    Every requirement-conflict event — a trial overlay contradicting a
    required value, or an assignment's resimulation revealing a
    mismatch — records the blamed net.  All conflict detection is
    scalar, engine-independent code, so the forensics are byte-identical
    across engines and job counts.  [Atpg.generate] resets them before
    each targeted justification and persists them into the ledger's
    per-fault records, where [pdfatpg why] renders them. *)

type forensics = {
  last_net : int;  (** most recent conflicting net, [-1] when none *)
  last_level : int;  (** its circuit level, [-1] when none *)
  deepest_level : int;
      (** highest circuit level among all conflicting nets seen — how
          deep into the cone the search frontier reached before giving
          up; [-1] when none *)
}

val forensics : t -> forensics
(** Conflict forensics accumulated since creation or the last
    {!reset_forensics}. *)

val reset_forensics : t -> unit

(** {2 Complete search}

    The paper notes that the coverage variations caused by random value
    selection "can be eliminated by using a branch-and-bound procedure
    instead of a simulation-based procedure for justification".  This is
    that procedure: the same necessary-value machinery, but decisions are
    explored depth-first with backtracking, deterministically. *)

type complete_outcome =
  | Found of Test_pair.t
  | Proved_unsatisfiable  (** the whole decision tree was refuted *)
  | Gave_up  (** backtrack budget exhausted *)

val run_complete :
  ?max_backtracks:int ->
  t ->
  reqs:(int * Pdf_values.Req.t) list ->
  complete_outcome
(** Deterministic branch-and-bound justification.  Default budget is
    10000 backtracks.  Unsearched inputs (outside the requirement cone)
    are filled with zeros. *)

(** {2 Backend selection}

    The generation loop justifies through a dispatching {!Engine.t}
    that hosts one of three backends (DESIGN.md §15): the paper's
    simulation-based search, the structural {!Podem} engine, or a
    portfolio racing both (plus random-restart simulation members)
    across the {!Pdf_par.Pool}.  Selected by the [--justify] CLI flag /
    serve-protocol field, falling back to the [PDF_JUSTIFY] environment
    variable. *)

type kind = Sim | Podem | Portfolio

val kind_name : kind -> string
(** ["sim"] / ["podem"] / ["portfolio"] — the names used by the CLI
    flag, the [PDF_JUSTIFY] variable, the serve protocol's ["justify"]
    field and the ledger's engine records. *)

val kind_of_name : string -> kind option
(** Case-insensitive parse of {!kind_name} (["simulation"] also
    accepted). *)

val default_kind : unit -> kind
(** [PDF_JUSTIFY] when set and non-empty (raising [Invalid_argument] on
    an unknown value — a silently ignored engine selection would be a
    debugging trap), else {!Sim}. *)

(** The dispatching engine used by {!Atpg.generate}.  Counter and
    forensics accessors mirror the simulation engine's, summed over the
    backend members; in portfolio mode every member runs each request
    to completion ([run] is the synchronisation point) and the winner
    is the first successful member in the fixed priority order [podem;
    sim; sim-r1; sim-r2], so results, counters and the ledger are
    byte-identical across [--jobs]. *)
module Engine : sig
  type engine_kind := kind

  type t

  val create :
    ?attrib:Pdf_obs.Attrib.sheet ->
    ?kind:engine_kind ->
    Pdf_circuit.Circuit.t ->
    t
  (** [kind] defaults to {!default_kind}.  In portfolio mode each
      member charges a private attribution sheet (members run
      concurrently); call {!flush} once at the end of the run to fold
      them into [attrib] in fixed member order. *)

  val kind : t -> engine_kind

  val run :
    t ->
    rng:Pdf_util.Rng.t ->
    reqs:(int * Pdf_values.Req.t) list ->
    Test_pair.t option
  (** Justify through the selected backend.  [Sim] passes [rng]
      straight through (bit-identical to {!run} on a bare engine);
      [Podem] ignores it (the structural search is deterministic);
      [Portfolio] draws exactly one value from it per call and derives
      member seeds from that draw and the member index. *)

  val winner : t -> string
  (** Member label of the most recent successful {!run} (["sim"],
      ["podem"], ["sim-r1"], ...); [""] before the first success.  The
      generation loop persists it into the ledger's test and
      detected-fault records. *)

  val runs : t -> int
  val trials : t -> int
  (** Sim trials plus PODEM decisions: both count one unit of search
      work, so per-fault effort keeps one schema across backends. *)

  val backtracks : t -> int
  val resim_gates : t -> int
  (** Sim resimulation gate charges plus PODEM implication gate
      charges (the same full-cone-pass semantic unit). *)

  val aborts : t -> int
  (** PODEM budget exhaustions ({!Podem.Gave_up}) summed over members;
      0 for the pure simulation backend. *)

  val forensics : t -> forensics
  (** Deterministic combination over members: deepest conflict level is
      the maximum, the last-conflict net comes from the first member in
      priority order that recorded one. *)

  val reset_forensics : t -> unit

  val flush : t -> unit
  (** Fold portfolio members' private attribution sheets into the sheet
      passed to {!create}, in fixed member order.  No-op otherwise; safe
      to call exactly once, at the end of the run. *)
end
