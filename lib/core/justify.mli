(** Simulation-based justification (paper, Section 2.1).

    Given a set of required line values — the union of the [A(p)] of the
    faults a test under construction must detect — the engine searches for
    a fully specified two-pattern test that assigns all of them:

    + every primary-input bit starts unspecified;
    + {e necessary values}: for each unspecified input bit, both values are
      tried by simulation; a value whose implication contradicts a
      requirement is excluded, and if both are excluded the search fails;
    + when no more necessary values exist, a {e decision} is made — an
      input with exactly one specified pattern bit is made stable at it,
      otherwise a random unspecified bit gets a random value;
    + on full specification the requirements are checked exactly (a pinned
      intermediate value must simulate to that definite value — a
      potential glitch fails the check).

    Only inputs in the fan-in cone of the required lines are searched;
    the remaining inputs cannot affect any requirement and are filled
    randomly (equivalent to the paper's random decisions on them). *)

type t
(** A justification engine for one circuit.  Engines hold per-engine
    effort counters and scratch state: drive each engine from a single
    domain at a time (create one engine per concurrent ATPG run). *)

val create : ?attrib:Pdf_obs.Attrib.sheet -> Pdf_circuit.Circuit.t -> t
(** A fresh engine with zeroed {!runs}/{!trials} counters.  When
    [attrib] is given, the engine charges per-net effort to the sheet
    (DESIGN.md §14): trial simulations to the tried PI net, overlay
    gate evaluations to the evaluated gate's output net, resimulation
    calls to every cone gate (full-pass cost, engine-invariant),
    requirement conflicts to the mismatching net, and complete-search
    backtracks to the retracted decision input.  The sheet is bumped
    without synchronisation — drive the engine from one domain at a
    time, as always. *)

val run :
  t ->
  rng:Pdf_util.Rng.t ->
  reqs:(int * Pdf_values.Req.t) list ->
  Test_pair.t option
(** [run engine ~rng ~reqs] — [None] when a conflict is met or the final
    check fails.  [reqs] may list a net several times; entries are merged
    first (a direct conflict fails immediately). *)

val runs : t -> int
(** Number of [run]/[run_complete] invocations on {e this} engine.  The
    process-wide [justify.runs] counter in {!Pdf_obs.Metrics} also counts
    every invocation, but sums over all engines; the per-engine figure
    stays exact when other engines run concurrently on other domains. *)

val trials : t -> int
(** Trial simulations performed by {e this} engine (effort metric);
    per-engine, like {!runs} — the process-wide total is the
    [justify.trials] metric. *)

val backtracks : t -> int
(** Backtracks spent by {e this} engine's {!run_complete} searches;
    per-engine, like {!runs} — the process-wide total is the
    [justify.backtracks] metric. *)

val resim_calls : t -> int
(** Resimulation calls this engine performed (each brings the persistent
    cone state up to date with the current assignment). *)

val resim_gates : t -> int
(** Semantic resimulation effort: every resimulation call charged its
    full-pass cost (the requirement cone's gate count), whichever
    engine actually ran — byte-identical across [PDF_INCSIM] toggles.
    Process-wide counterpart: the [justify.resim_gates] metric. *)

(** {2 Abort forensics}

    Every requirement-conflict event — a trial overlay contradicting a
    required value, or an assignment's resimulation revealing a
    mismatch — records the blamed net.  All conflict detection is
    scalar, engine-independent code, so the forensics are byte-identical
    across engines and job counts.  [Atpg.generate] resets them before
    each targeted justification and persists them into the ledger's
    per-fault records, where [pdfatpg why] renders them. *)

type forensics = {
  last_net : int;  (** most recent conflicting net, [-1] when none *)
  last_level : int;  (** its circuit level, [-1] when none *)
  deepest_level : int;
      (** highest circuit level among all conflicting nets seen — how
          deep into the cone the search frontier reached before giving
          up; [-1] when none *)
}

val forensics : t -> forensics
(** Conflict forensics accumulated since creation or the last
    {!reset_forensics}. *)

val reset_forensics : t -> unit

(** {2 Complete search}

    The paper notes that the coverage variations caused by random value
    selection "can be eliminated by using a branch-and-bound procedure
    instead of a simulation-based procedure for justification".  This is
    that procedure: the same necessary-value machinery, but decisions are
    explored depth-first with backtracking, deterministically. *)

type complete_outcome =
  | Found of Test_pair.t
  | Proved_unsatisfiable  (** the whole decision tree was refuted *)
  | Gave_up  (** backtrack budget exhausted *)

val run_complete :
  ?max_backtracks:int ->
  t ->
  reqs:(int * Pdf_values.Req.t) list ->
  complete_outcome
(** Deterministic branch-and-bound justification.  Default budget is
    10000 backtracks.  Unsearched inputs (outside the requirement cone)
    are filled with zeros. *)
