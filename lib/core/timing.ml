module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate
module Path = Pdf_paths.Path
module Delay_model = Pdf_paths.Delay_model
module Heap = Pdf_util.Heap

type waveform = {
  initial : bool;
  changes : (int * bool) list;
}

type result = {
  waveforms : waveform array;
  settle_time : int;
}

type injection = {
  path : Path.t;
  extra : int;
}

(* Two event kinds: a net changing value, and a value arriving at one
   input pin of one gate.  Keeping pin arrivals explicit gives every
   (stem, branch) wire its own transport delay: a gate is always
   evaluated over the values that have actually reached it, never over
   instantaneous net values whose wire delays differ per pin.
   (Evaluating over net values and delaying by the triggering pin's
   delay — the obvious shortcut — schedules stale evaluations that can
   land after the correct one and corrupt even the settled value; the
   pdf_check fuzzer found exactly that on a NAND whose two fanins had
   different branch costs, see DESIGN.md §10.) *)
type action =
  | Net_change of int * bool  (** net, new value *)
  | Pin_arrival of int * int * bool  (** gate, pin, value *)

type event = { time : int; seq : int; action : action }

let max_events = 2_000_000

(* Two-valued gate evaluation over the values present at its pins. *)
let eval_pins (kind : Gate.kind) (pins : bool array) =
  match kind with
  | Gate.Not -> not pins.(0)
  | Gate.Buff -> pins.(0)
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    let op =
      match kind with
      | Gate.And | Gate.Nand -> ( && )
      | Gate.Or | Gate.Nor -> ( || )
      | Gate.Xor | Gate.Xnor | Gate.Not | Gate.Buff -> ( <> )
    in
    let acc = ref pins.(0) in
    for i = 1 to Array.length pins - 1 do
      acc := op !acc pins.(i)
    done;
    if Gate.inverting kind then not !acc else !acc

let injected_pins inject =
  let tbl = Hashtbl.create 16 in
  (match inject with
  | None -> ()
  | Some { path; extra } ->
    Array.iter
      (fun (h : Path.hop) ->
        Hashtbl.replace tbl (h.Path.gate, h.Path.pin) extra)
      path.Path.hops);
  tbl

let simulate ?inject c (model : Delay_model.t) (test : Test_pair.t) =
  let n = Circuit.num_nets c in
  let extra_at = injected_pins inject in
  let source_extra =
    match inject with
    | Some { path; extra } -> Some (path.Path.source, extra)
    | None -> None
  in
  (* Settle the first pattern. *)
  let current = Pdf_sim.Logic_sim.simulate_bool c test.Test_pair.v1 in
  let initial = Array.copy current in
  (* Values present at every gate input pin; start from the settled
     first pattern. *)
  let pin_vals =
    Array.map
      (fun (g : Circuit.gate) ->
        Array.map (fun f -> current.(f)) g.Circuit.fanins)
      c.Circuit.gates
  in
  let changes = Array.make n [] in
  let settle = ref 0 in
  let queue =
    Heap.create ~leq:(fun a b ->
        a.time < b.time || (a.time = b.time && a.seq <= b.seq))
  in
  let seq = ref 0 in
  let push time action =
    incr seq;
    Heap.push queue { time; seq = !seq; action }
  in
  (* Launch the second pattern: a changing input arrives after its own
     stem delay (plus the injected source slowdown for the faulty run). *)
  for pi = 0 to c.Circuit.num_pis - 1 do
    if test.Test_pair.v1.(pi) <> test.Test_pair.v3.(pi) then begin
      let extra =
        match source_extra with
        | Some (src, e) when src = pi -> e
        | Some _ | None -> 0
      in
      push
        (model.Delay_model.stem.(pi) + extra)
        (Net_change (pi, test.Test_pair.v3.(pi)))
    end
  done;
  let processed = ref 0 in
  let rec drain () =
    match Heap.pop queue with
    | None -> ()
    | Some ev ->
      incr processed;
      if !processed > max_events then
        failwith "Timing.simulate: event budget exceeded";
      (match ev.action with
      | Net_change (net, value) ->
        if current.(net) <> value then begin
          current.(net) <- value;
          changes.(net) <- (ev.time, value) :: changes.(net);
          if ev.time > !settle then settle := ev.time;
          (* The new value travels each branch separately: the wire
             delay is the stem's branch cost plus the injected slowdown
             of the branch entering the on-path pin. *)
          Array.iter
            (fun (g, pin) ->
              let extra =
                match Hashtbl.find_opt extra_at (g, pin) with
                | Some e -> e
                | None -> 0
              in
              let delay = Delay_model.branch_cost model c net + extra in
              push (ev.time + delay) (Pin_arrival (g, pin, value)))
            c.Circuit.fanouts.(net)
        end
      | Pin_arrival (g, pin, value) ->
        if pin_vals.(g).(pin) <> value then begin
          pin_vals.(g).(pin) <- value;
          let out = Circuit.net_of_gate c g in
          let v = eval_pins c.Circuit.gates.(g).Circuit.kind pin_vals.(g) in
          push (ev.time + model.Delay_model.stem.(out)) (Net_change (out, v))
        end);
      drain ()
  in
  drain ();
  let waveforms =
    Array.init n (fun net ->
        { initial = initial.(net); changes = List.rev changes.(net) })
  in
  { waveforms; settle_time = !settle }

let value_at w t =
  List.fold_left
    (fun acc (time, value) -> if time <= t then value else acc)
    w.initial w.changes

let final_value w =
  match List.rev w.changes with (_, v) :: _ -> v | [] -> w.initial

let detects c model ~t_sample ~inject test =
  let fault_free = simulate c model test in
  let faulty = simulate ~inject c model test in
  Array.exists
    (fun po ->
      let expected = final_value fault_free.waveforms.(po) in
      let sampled = value_at faulty.waveforms.(po) t_sample in
      sampled <> expected)
    c.Circuit.pos

let nominal_period c model = fst (Pdf_paths.Count.longest c model)
