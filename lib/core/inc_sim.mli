(** Scalar event-driven incremental two-pattern simulation.

    The thin scalar counterpart of {!Pdf_bitsim.Wsim.Inc} (DESIGN.md
    §13): a dirty-set worklist over the circuit's validated level
    buckets ({!Pdf_circuit.Circuit.level_gates}), maintaining a
    caller-owned three-component value state ([3 x num_nets] of
    {!Pdf_values.Bit.t}) in place.  {!set_pi} diffs an input assignment
    against the previous one and seeds only real changes; {!propagate}
    re-evaluates the affected fanout cone level by level, stopping a
    branch when a gate's three component values are unchanged.  Because
    gate functions are pure and evaluated in topological order, the
    state after [propagate] is exactly what a full re-simulation of the
    (mask-restricted) circuit would produce — the justify engine and
    [Atpg.generate] rely on this to stay byte-identical to their
    full-pass variants ([PDF_INCSIM=0]).

    An optional gate mask restricts propagation to a sub-circuit (the
    justify engine passes its fan-in cone, whose fanins are closed
    under the mask); nets outside the masked cone are never written. *)

type t

val create :
  ?attrib:Pdf_obs.Attrib.sheet ->
  ?gate_mask:bool array ->
  Pdf_circuit.Circuit.t ->
  s:Pdf_values.Bit.t array array ->
  t
(** [create ?attrib ?gate_mask c ~s] wraps the caller's state [s]
    (aliased, not copied).  [s] must be [3 x num_nets] and all-[X] — the
    fixpoint of the all-[X] input, matching the fresh remembered
    assignment.  [gate_mask], when given, must have one entry per gate;
    it is copied.  When [attrib] is given, every dirty-cone gate
    re-evaluation bumps the sheet's [inc_resims] counter for the gate's
    output net (engine-variant attribution, {!Pdf_obs.Attrib}).  Raises
    [Invalid_argument] on shape mismatches. *)

val set_pi : t -> int -> v1:Pdf_values.Bit.t -> v3:Pdf_values.Bit.t -> unit
(** Install PI [pi]'s two pattern values; the intermediate component is
    seeded with [Two_pattern.middle_of_pair].  A value equal to the
    previous call's is a no-op. *)

val propagate : t -> unit
(** Drain the dirty worklist in level order.  With no pending changes
    this is a no-op (plus one counted assign). *)

val stats : t -> Pdf_bitsim.Wsim.Inc.stats
(** A copy of the cumulative counters since creation or {!reset_stats}. *)

val reset_stats : t -> unit

val record : num_gates:int -> Pdf_bitsim.Wsim.Inc.stats -> unit
(** {!Pdf_bitsim.Wsim.record_inc}, re-exported so scalar callers account
    into the same [sim.inc.*] metrics. *)
