module Req = Pdf_values.Req
module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Word = Pdf_values.Word
module Wreq = Pdf_bitsim.Wreq
module Wsim = Pdf_bitsim.Wsim
module Circuit = Pdf_circuit.Circuit
module Rng = Pdf_util.Rng
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span
module Log = Pdf_obs.Log
module Ledger = Pdf_obs.Ledger
module Attrib = Pdf_obs.Attrib

let m_delta_evals = Metrics.counter "atpg.delta_evals"

type config = {
  ordering : Ordering.t;
  seed : int;
}

type result = {
  tests : Test_pair.t list;
  detected : bool array;
  primary_aborts : int;
  justification_runs : int;
  justification_trials : int;
  runtime_s : float;
}

(* [delta acc reqs] — the requirement values a candidate fault adds on top
   of the accumulated set: [None] on a direct conflict, otherwise the
   per-net merged updates together with [n_Delta], the number of newly
   pinned components (the paper's value-based selection metric). *)
let delta acc reqs =
  let count_new (current : Req.t) (want : Req.t) =
    let one cur_c want_c =
      match cur_c, want_c with
      | _, Req.Any -> Some 0
      | Req.Any, Req.Must _ -> Some 1
      | Req.Must a, Req.Must b -> if a = b then Some 0 else None
    in
    match
      one current.Req.r1 want.Req.r1, one current.Req.r2 want.Req.r2,
      one current.Req.r3 want.Req.r3
    with
    | Some a, Some b, Some c -> Some (a + b + c)
    | _, _, _ -> None
  in
  let exception Clash in
  Metrics.incr m_delta_evals;
  try
    (* Small hash table keyed by net: requirement lists repeat nets, and
       the assoc-list accumulator this replaces was quadratic in the
       requirement count on the hottest compaction path. *)
    let updates : (int, Req.t) Hashtbl.t = Hashtbl.create 16 in
    let n =
      List.fold_left
        (fun n (net, req) ->
          let current =
            match Hashtbl.find_opt updates net with
            | Some r -> r
            | None -> (
              match Hashtbl.find_opt acc net with
              | Some r -> r
              | None -> Req.any)
          in
          match count_new current req with
          | None -> raise Clash
          | Some added ->
            let merged =
              match Req.merge current req with
              | Some m -> m
              | None -> assert false (* count_new succeeded *)
            in
            Hashtbl.replace updates net merged;
            n + added)
        0 reqs
    in
    Some (Hashtbl.fold (fun net req l -> (net, req) :: l) updates [], n)
  with Clash -> None

let commit acc updates =
  List.iter (fun (net, req) -> Hashtbl.replace acc net req) updates

let reqs_with acc updates =
  Hashtbl.fold
    (fun net req l ->
      if List.mem_assoc net updates then l else (net, req) :: l)
    acc updates

let shuffle rng ids =
  let a = Array.of_list ids in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(* Rank of every fault under the configured ordering; lower rank is
   selected first (both as primary and when scanning secondaries). *)
let compute_ranks config (faults : Fault_sim.prepared array) =
  let n = Array.length faults in
  let ids = List.init n (fun i -> i) in
  let order =
    match config.ordering with
    | Ordering.Uncompacted | Ordering.Arbitrary ->
      shuffle (Rng.create (config.seed lxor 0x5eed)) ids
    | Ordering.Length_based | Ordering.Value_based ->
      List.sort
        (fun a b ->
          let la = faults.(a).Fault_sim.length
          and lb = faults.(b).Fault_sim.length in
          if la <> lb then Int.compare lb la else Int.compare a b)
        ids
  in
  let rank = Array.make n 0 in
  List.iteri (fun pos id -> rank.(id) <- pos) order;
  rank

type test_state = {
  mutable test : Test_pair.t;
  mutable values : Pdf_values.Triple.t array;
  acc : (int, Req.t) Hashtbl.t;
  mutable implied : Pdf_values.Triple.t array;
      (** line values implied by [acc]; candidates contradicting them are
          provably un-addable and are rejected without a search *)
  mutable det_masks : int array;
      (** packed detection state of the current test against every target
          (one word per 63 faults), refreshed whenever [values] changes;
          [[||]] when the packed engine is disabled *)
}

let recompute_implied c acc =
  let reqs = Hashtbl.fold (fun net req l -> (net, req) :: l) acc [] in
  match Pdf_sim.Implication.infer c reqs with
  | Pdf_sim.Implication.Consistent values -> values
  | Pdf_sim.Implication.Conflict _ ->
    (* [acc] is always witnessed satisfiable by the current test. *)
    assert false

(* A candidate's conditions contradict the values implied by the
   accumulated requirements: adding it can never succeed. *)
let contradicts_implied implied reqs =
  List.exists
    (fun (net, (req : Req.t)) ->
      let (v : Pdf_values.Triple.t) = implied.(net) in
      not
        (Req.compatible_bit v.Pdf_values.Triple.v1 req.Req.r1
        && Req.compatible_bit v.Pdf_values.Triple.v2 req.Req.r2
        && Req.compatible_bit v.Pdf_values.Triple.v3 req.Req.r3))
    reqs

let generate ?ledger ?attrib ?justify c config ~faults ~primaries
    ~secondary_pools =
  Span.with_ "atpg" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  (* One attribution sheet for everything this (single-domain) run owns:
     the justify engine, the incremental refresh state and the candidate
     delta scans all bump it unsynchronised; it is merged into the
     shared store once, at the end of the run (portfolio members charge
     private sheets that [Justify.Engine.flush] folds in first). *)
  let sheet = Option.map Attrib.fresh attrib in
  let jkind =
    match justify with Some k -> k | None -> Justify.default_kind ()
  in
  let engine = Justify.Engine.create ?attrib:sheet ~kind:jkind c in
  let runs0 = Justify.Engine.runs engine
  and trials0 = Justify.Engine.trials engine in
  (* Per-test value refresh.  Consecutive accepted tests within one
     compaction pass differ in a handful of PI bits, so with the
     incremental engine the refresh re-evaluates only the changed cone
     of one persistent scalar state instead of three full passes;
     the resulting triples are identical (PDF_INCSIM=0 restores the
     plain [Test_pair.simulate] reference). *)
  let inc_state =
    if Wsim.incsim_enabled () then
      let s = Array.init 3 (fun _ -> Array.make (Circuit.num_nets c) Bit.X) in
      Some (s, Inc_sim.create ?attrib:sheet c ~s)
    else None
  in
  (* Candidate-scan attribution: charge every delta evaluation to the
     candidate's requirement nets (shadowing the bare [delta]). *)
  let delta acc reqs =
    (match sheet with
    | Some a -> Attrib.note_cand_scan a reqs
    | None -> ());
    delta acc reqs
  in
  let simulate_test test =
    match inc_state with
    | None -> Test_pair.simulate c test
    | Some (s, inc) ->
      for pi = 0 to c.Circuit.num_pis - 1 do
        Inc_sim.set_pi inc pi
          ~v1:(Bit.of_bool test.Test_pair.v1.(pi))
          ~v3:(Bit.of_bool test.Test_pair.v3.(pi))
      done;
      Inc_sim.propagate inc;
      Array.init (Circuit.num_nets c) (fun net ->
          Triple.make s.(0).(net) s.(1).(net) s.(2).(net))
  in
  let ord_name = Ordering.name config.ordering in
  (* Provenance (DESIGN.md §9): everything recorded in the ledger is
     derived from the sequential generation loop and the seed — no
     timestamps, no schedule-dependent data — so the emitted JSONL is
     byte-identical across --jobs and scalar/packed simulation. *)
  let with_ledger f = Option.iter f ledger in
  let fault_name i = Pdf_faults.Fault.to_string c faults.(i).Fault_sim.fault in
  (* Per-ordering counters: the same pipeline run exercises several
     compaction heuristics, and their work must not be conflated. *)
  let cnt suffix =
    Metrics.counter ("atpg." ^ Ordering.name config.ordering ^ "." ^ suffix)
  in
  let m_primaries = cnt "primaries_attempted"
  and m_primary_aborts = cnt "primary_aborts"
  and m_tests = cnt "tests"
  and m_cand = cnt "secondary_attempted"
  and m_folded = cnt "secondary_folded"
  and m_free = cnt "secondary_free"
  and m_rej_conflict = cnt "secondary_rejected_conflict"
  and m_rej_implied = cnt "secondary_rejected_implied"
  and m_rej_search = cnt "secondary_rejected_search"
  and m_accidental = cnt "accidental_detections" in
  let h_folded_per_test =
    Metrics.histogram
      ~buckets:[| 0.; 1.; 2.; 5.; 10.; 20.; 50.; 100. |]
      ("atpg." ^ Ordering.name config.ordering ^ ".folded_per_test")
  in
  let folded_this_test = ref 0 in
  let rng = Rng.create config.seed in
  let n = Array.length faults in
  (* Word-packed condition sets of every target: one pass of
     [Wreq.fault_mask] over the current test's values answers "which of
     these 63 faults does the candidate assignment detect" for a whole
     word of faults, replacing the per-fault requirement-list walks in
     both the free check and the end-of-test drop scan.  The scalar
     [Fault_sim.detects_values] path is kept verbatim as the reference
     (PDF_BITSIM=0) and agrees lane for lane. *)
  let packs =
    if Fault_sim.packed_enabled () then
      Some (Wreq.pack_faults (Array.map (fun p -> p.Fault_sim.reqs) faults))
    else None
  in
  let refresh_masks st =
    match packs with
    | None -> ()
    | Some packs ->
      st.det_masks <- Array.map (fun fp -> Wreq.fault_mask fp st.values) packs
  in
  let detects st i =
    match packs with
    | None -> Fault_sim.detects_values st.values faults.(i)
    | Some _ ->
      st.det_masks.(i / Word.lanes) land (1 lsl (i mod Word.lanes)) <> 0
  in
  let detected = Array.make n false in
  let tried = Array.make n false in
  let rank = compute_ranks config faults in
  let by_rank ids =
    List.sort (fun a b -> Int.compare rank.(a) rank.(b)) ids
  in
  let primaries = by_rank primaries in
  let pools = List.map by_rank secondary_pools in
  let aborts = ref 0 in
  let tests = ref [] in
  with_ledger (fun l ->
      Ledger.record l ~kind:"run"
        [
          ("ordering", Ledger.S ord_name);
          ("seed", Ledger.I config.seed);
          ("justify", Ledger.S (Justify.kind_name jkind));
          ("faults", Ledger.I n);
          ("primaries", Ledger.I (List.length primaries));
          ( "pools",
            Ledger.L (List.map (fun p -> Ledger.I (List.length p)) pools) );
        ]);
  (* Per-fault provenance state.  [reject_reason] keeps the most recent
     rejection cause so an uncovered fault can be explained; [folded_at]
     and [detected_via] pin each fault to the test that absorbed or
     detected it. *)
  let reject_reason = Array.make n `Never in
  let folded_at = Array.make n (-1) in
  let detected_via : (int * string) option array = Array.make n None in
  (* Per-fault justification effort, accumulated over every search that
     targeted the fault — its primary attempt plus each candidate
     attempt — and the forensics of its most recent conflicting
     attempt.  All deltas come from the per-engine scalar counters, so
     the recorded figures are engine- and jobs-invariant like the rest
     of the ledger. *)
  let eff_runs = Array.make n 0
  and eff_trials = Array.make n 0
  and eff_backtracks = Array.make n 0
  and eff_resim_gates = Array.make n 0 in
  let last_conflict : Justify.forensics option array = Array.make n None in
  let targeted_run i f =
    let r0 = Justify.Engine.runs engine
    and t0 = Justify.Engine.trials engine
    and b0 = Justify.Engine.backtracks engine
    and g0 = Justify.Engine.resim_gates engine in
    Justify.Engine.reset_forensics engine;
    let res = f () in
    eff_runs.(i) <- eff_runs.(i) + (Justify.Engine.runs engine - r0);
    eff_trials.(i) <- eff_trials.(i) + (Justify.Engine.trials engine - t0);
    eff_backtracks.(i) <- eff_backtracks.(i) + (Justify.Engine.backtracks engine - b0);
    eff_resim_gates.(i) <-
      eff_resim_gates.(i) + (Justify.Engine.resim_gates engine - g0);
    let fo = Justify.Engine.forensics engine in
    if fo.Justify.last_net >= 0 then last_conflict.(i) <- Some fo;
    res
  in
  let next_test_id = ref 0 in
  let cur_test_id = ref (-1) in
  (* Winning engine per finalised test: every accepted test's assignment
     came from the engine's most recent successful dispatch (the primary
     justification, or the last accepted candidate re-justification). *)
  let test_engine : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let cur_folded = ref [] in
  let note_folded i via =
    folded_at.(i) <- !cur_test_id;
    with_ledger (fun _ ->
        cur_folded :=
          Ledger.O
            [
              ("id", Ledger.I i);
              ("fault", Ledger.S (fault_name i));
              ("step", Ledger.I !folded_this_test);
              ("via", Ledger.S via);
            ]
          :: !cur_folded)
  in
  (* Live progress: gauges a dashboard can scrape plus an Info-level
     event stream, both updated once per generated test. *)
  let ndet = ref 0 in
  let g_prog_tests = Metrics.gauge ("atpg." ^ ord_name ^ ".progress_tests")
  and g_prog_detected =
    Metrics.gauge ("atpg." ^ ord_name ^ ".progress_detected")
  in
  (* Try to add candidate [i] to the current test's fault set: free if the
     test already detects it, otherwise re-justify the enlarged
     requirement union.  Returns true when accepted. *)
  (* Attempt to add candidate [i] to the current test's fault set; on
     acceptance, return the requirement values newly pinned ([Delta]). *)
  let try_candidate st i =
    Metrics.incr m_cand;
    match delta st.acc faults.(i).Fault_sim.reqs with
    | None ->
      Metrics.incr m_rej_conflict;
      reject_reason.(i) <- `Conflict;
      None
    | Some (updates, _) ->
      if detects st i then begin
        commit st.acc updates;
        st.implied <- recompute_implied c st.acc;
        Metrics.incr m_free;
        Metrics.incr m_folded;
        incr folded_this_test;
        note_folded i "free";
        Some updates
      end
      else if contradicts_implied st.implied faults.(i).Fault_sim.reqs then begin
        Metrics.incr m_rej_implied;
        reject_reason.(i) <- `Implied;
        None
      end
      else begin
        match
          targeted_run i (fun () ->
              Justify.Engine.run engine ~rng ~reqs:(reqs_with st.acc updates))
        with
        | Some test ->
          st.test <- test;
          st.values <- simulate_test test;
          refresh_masks st;
          commit st.acc updates;
          st.implied <- recompute_implied c st.acc;
          Metrics.incr m_folded;
          incr folded_this_test;
          note_folded i "justified";
          Some updates
        | None ->
          Metrics.incr m_rej_search;
          reject_reason.(i) <- `Search;
          None
      end
  in
  let scan_pool_in_order st pool =
    List.iter
      (fun i ->
        if not detected.(i) then ignore (try_candidate st i))
      pool
  in
  (* Value-based scan: repeatedly attempt the candidate adding the fewest
     new required values.  [n_Delta] is cached per candidate and refreshed
     through a net -> candidates index only when an acceptance pins new
     values on one of the candidate's lines, so each pass is linear. *)
  let scan_pool_value_based st pool =
    let nf = Array.length faults in
    let in_pool = Array.make nf false in
    let nd = Array.make nf max_int in
    let buckets : (int, int list) Hashtbl.t = Hashtbl.create 256 in
    let refresh i =
      match delta st.acc faults.(i).Fault_sim.reqs with
      | None ->
        in_pool.(i) <- false (* direct conflict: rejected *);
        reject_reason.(i) <- `Conflict
      | Some (_, d) -> nd.(i) <- d
    in
    List.iter
      (fun i ->
        if not detected.(i) then begin
          in_pool.(i) <- true;
          refresh i;
          if in_pool.(i) then
            List.iter
              (fun (net, _) ->
                let ids =
                  match Hashtbl.find_opt buckets net with
                  | Some ids -> ids
                  | None -> []
                in
                Hashtbl.replace buckets net (i :: ids))
              faults.(i).Fault_sim.reqs
        end)
      pool;
    let argmin () =
      List.fold_left
        (fun best i ->
          if not in_pool.(i) then best
          else
            match best with
            | None -> Some i
            | Some j ->
              if
                nd.(i) < nd.(j)
                || (nd.(i) = nd.(j) && rank.(i) < rank.(j))
              then Some i
              else best)
        None pool
    in
    let continue = ref true in
    while !continue do
      match argmin () with
      | None -> continue := false
      | Some i ->
        in_pool.(i) <- false;
        (match try_candidate st i with
        | None -> ()
        | Some updates ->
          List.iter
            (fun (net, _) ->
              match Hashtbl.find_opt buckets net with
              | None -> ()
              | Some ids ->
                List.iter (fun j -> if in_pool.(j) then refresh j) ids)
            updates)
    done
  in
  let next_primary () =
    List.fold_left
      (fun acc i ->
        if detected.(i) || tried.(i) then acc
        else
          match acc with
          | Some j when rank.(j) <= rank.(i) -> acc
          | Some _ | None -> Some i)
      None primaries
  in
  let running = ref true in
  while !running do
    match next_primary () with
    | None -> running := false
    | Some p0 ->
      tried.(p0) <- true;
      Metrics.incr m_primaries;
      let j_runs0 = Justify.Engine.runs engine
      and j_trials0 = Justify.Engine.trials engine
      and j_bt0 = Justify.Engine.backtracks engine in
      (match
         targeted_run p0 (fun () ->
             Justify.Engine.run engine ~rng ~reqs:faults.(p0).Fault_sim.reqs)
       with
      | None ->
        incr aborts;
        Metrics.incr m_primary_aborts
      | Some test ->
        let st =
          {
            test;
            values = simulate_test test;
            acc = Hashtbl.create 64;
            implied = [||];
            det_masks = [||];
          }
        in
        refresh_masks st;
        commit st.acc
          (match delta st.acc faults.(p0).Fault_sim.reqs with
          | Some (updates, _) -> updates
          | None -> assert false);
        st.implied <- recompute_implied c st.acc;
        folded_this_test := 0;
        let id = !next_test_id in
        incr next_test_id;
        cur_test_id := id;
        cur_folded := [];
        Span.with_ "compact" (fun () ->
            match config.ordering with
            | Ordering.Uncompacted -> ()
            | Ordering.Arbitrary | Ordering.Length_based ->
              List.iter (fun pool -> scan_pool_in_order st pool) pools
            | Ordering.Value_based ->
              List.iter (fun pool -> scan_pool_value_based st pool) pools);
        Metrics.observe_int h_folded_per_test !folded_this_test;
        Hashtbl.replace test_engine id (Justify.Engine.winner engine);
        tests := st.test :: !tests;
        Metrics.incr m_tests;
        (* Fault simulation: drop everything the final test detects.  The
           packed masks were refreshed with the last accepted assignment,
           so this scan is a word-mask read per fault. *)
        Span.with_ "fault-sim" (fun () ->
            Array.iteri
              (fun i _ ->
                if (not detected.(i)) && detects st i then begin
                  detected.(i) <- true;
                  incr ndet;
                  let via =
                    if i = p0 then "primary"
                    else if folded_at.(i) = id then "folded"
                    else "accidental"
                  in
                  detected_via.(i) <- Some (id, via);
                  if i <> p0 then Metrics.incr m_accidental
                end)
              faults);
        with_ledger (fun l ->
            Ledger.record l ~kind:"test"
              [
                ("id", Ledger.I id);
                ("ordering", Ledger.S ord_name);
                ("primary", Ledger.I p0);
                ("primary_fault", Ledger.S (fault_name p0));
                ("pattern", Ledger.S (Test_pair.to_string st.test));
                ("engine", Ledger.S (Hashtbl.find test_engine id));
                ("folded", Ledger.L (List.rev !cur_folded));
                ( "justify",
                  Ledger.O
                    [
                      ("runs", Ledger.I (Justify.Engine.runs engine - j_runs0));
                      ("trials", Ledger.I (Justify.Engine.trials engine - j_trials0));
                      ( "backtracks",
                        Ledger.I (Justify.Engine.backtracks engine - j_bt0) );
                    ] );
              ]);
        Metrics.set_int g_prog_tests (id + 1);
        Metrics.set_int g_prog_detected !ndet;
        if Log.enabled Log.Info then
          Log.event ~fields:
            [ ("ordering", ord_name);
              ("tests", string_of_int (id + 1));
              ("detected", string_of_int !ndet);
              ("faults", string_of_int n) ]
            "atpg.progress")
  done;
  with_ledger (fun l ->
      Array.iteri
        (fun i _ ->
          let disposition =
            if detected.(i) then
              match detected_via.(i) with
              | Some (t, via) ->
                [
                  ("disposition", Ledger.S "detected");
                  ("test", Ledger.I t);
                  ("via", Ledger.S via);
                  ("engine", Ledger.S (Hashtbl.find test_engine t));
                ]
              | None -> assert false
            else if tried.(i) then [ ("disposition", Ledger.S "aborted") ]
            else
              let reason =
                match reject_reason.(i) with
                | `Never -> "never_targeted"
                | `Conflict -> "conflict"
                | `Implied -> "implied"
                | `Search -> "search"
              in
              [
                ("disposition", Ledger.S "uncovered");
                ("reason", Ledger.S reason);
              ]
          in
          let effort =
            [
              ( "effort",
                Ledger.O
                  [
                    ("runs", Ledger.I eff_runs.(i));
                    ("trials", Ledger.I eff_trials.(i));
                    ("backtracks", Ledger.I eff_backtracks.(i));
                    ("resim_gates", Ledger.I eff_resim_gates.(i));
                  ] );
            ]
          in
          let forensic =
            match last_conflict.(i) with
            | Some fo ->
              [
                ( "last_conflict",
                  Ledger.O
                    [
                      ("net", Ledger.I fo.Justify.last_net);
                      ( "name",
                        Ledger.S (Circuit.net_name c fo.Justify.last_net) );
                      ("level", Ledger.I fo.Justify.last_level);
                      ("deepest_level", Ledger.I fo.Justify.deepest_level);
                    ] );
              ]
            | None -> []
          in
          Ledger.record l ~kind:"fault"
            ([ ("id", Ledger.I i); ("fault", Ledger.S (fault_name i)) ]
            @ disposition @ effort @ forensic))
        faults);
  Option.iter
    (fun (_, inc) ->
      Inc_sim.record ~num_gates:(Circuit.num_gates c) (Inc_sim.stats inc))
    inc_state;
  Justify.Engine.flush engine;
  (match attrib, sheet with
  | Some store, Some sh -> Attrib.merge store sh
  | _ -> ());
  let result =
    {
      tests = List.rev !tests;
      detected;
      primary_aborts = !aborts;
      justification_runs = Justify.Engine.runs engine - runs0;
      justification_trials = Justify.Engine.trials engine - trials0;
      runtime_s = Unix.gettimeofday () -. t0;
    }
  in
  Log.debug "atpg(%s): %d tests, %d/%d detected, %d aborts"
    (Ordering.name config.ordering)
    (List.length result.tests)
    (Fault_sim.count detected) (Array.length faults) !aborts;
  result

let basic ?ledger ?attrib ?justify c config ~faults =
  let ids = List.init (Array.length faults) (fun i -> i) in
  let pools =
    match config.ordering with
    | Ordering.Uncompacted -> []
    | Ordering.Arbitrary | Ordering.Length_based | Ordering.Value_based ->
      [ ids ]
  in
  generate ?ledger ?attrib ?justify c config ~faults ~primaries:ids
    ~secondary_pools:pools

let enrich ?ledger ?attrib ?justify c ~seed ~faults ~p0 ~p1 =
  generate ?ledger ?attrib ?justify c
    { ordering = Ordering.Value_based; seed }
    ~faults ~primaries:p0 ~secondary_pools:[ p0; p1 ]

let enrich_multi ?ledger ?attrib ?justify c ~seed ~faults ~pools =
  match pools with
  | [] -> invalid_arg "Atpg.enrich_multi: no pools"
  | first :: _ ->
    generate ?ledger ?attrib ?justify c
      { ordering = Ordering.Value_based; seed }
      ~faults ~primaries:first ~secondary_pools:pools

let count_detected result ~ids =
  List.fold_left
    (fun acc i -> if result.detected.(i) then acc + 1 else acc)
    0 ids
