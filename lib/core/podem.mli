(** Structural PODEM justification (DESIGN.md §15).

    A second justification backend next to the simulation-based engine
    of {!Justify}: instead of trying values by trial simulation, PODEM
    works an explicit objective frontier.  The requirement set is
    carried as per-net value triples in the 5-valued two-pattern algebra
    — the (component-0, component-2) pair of a net is one of stable 0,
    stable 1, rising, falling or unassigned, with the hazard-aware
    intermediate component 1 implied alongside — and the search loop is
    the classical one:

    + {e imply}: one topological pass over the requirement cone,
      evaluating all three components with the shared
      {!Pdf_sim.Logic_sim.eval_gate_get};
    + {e objective}: the first requirement component still implied to X
      (the frontier generalises the classical D-frontier: until the test
      is found it is never empty, because an unsatisfied requirement is
      either a conflict or an X);
    + {e backtrace}: walk the objective backward through X-valued nets
      to an unassigned primary-input pattern bit, choosing per-gate
      target values by probing the evaluator;
    + {e decide / backtrack}: assign the bit, re-imply, and on a
      conflict flip the most recent unflipped decision (chronological
      backtracking, bounded by a backtrack budget).

    The engine is deterministic — no randomness anywhere — and complete
    up to its budget: {!Proved_unsatisfiable} means the whole decision
    tree over the cone's input bits was refuted. *)

type t
(** A PODEM engine for one circuit, holding per-engine effort counters
    and conflict forensics.  Drive each engine from a single domain at a
    time. *)

val create : ?attrib:Pdf_obs.Attrib.sheet -> Pdf_circuit.Circuit.t -> t
(** A fresh engine.  When [attrib] is given, effort is charged to the
    sheet with the same vocabulary as {!Justify}: implication passes as
    resimulation cone cost, conflicts to the mismatching net, backtracks
    to the retracted decision input — so attribution conservation holds
    whichever engine runs. *)

type outcome =
  | Found of Test_pair.t
  | Proved_unsatisfiable  (** the whole decision tree was refuted *)
  | Gave_up  (** backtrack budget exhausted *)

val run :
  ?max_backtracks:int ->
  t ->
  reqs:(int * Pdf_values.Req.t) list ->
  outcome
(** [run engine ~reqs] — deterministic structural search for a test
    assigning every required value.  [reqs] may repeat nets; entries are
    merged first (a direct conflict is {!Proved_unsatisfiable}).
    Unassigned input bits are filled with zeros, which cannot disturb
    satisfaction: implied definite values are monotone under completion.
    Default budget is 10000 backtracks. *)

(** {2 Effort counters} *)

val runs : t -> int
val decisions : t -> int
(** PI pattern-bit decisions made (the engine's unit of search work). *)

val backtracks : t -> int
val imply_calls : t -> int
val imply_gates : t -> int
(** Implication effort: every pass charged the full cone gate count —
    the same semantic unit as {!Justify.resim_gates}. *)

val aborts : t -> int
(** Runs that returned {!Gave_up}. *)

(** {2 Abort forensics}

    Same shape and semantics as {!Justify.forensics}; the dispatching
    engine layer converts between the two. *)

type forensics = { last_net : int; last_level : int; deepest_level : int }

val forensics : t -> forensics
val reset_forensics : t -> unit

(** {2 Differential-testing mutation hook}

    Mirrors {!Pdf_bitsim.Wsim.set_injected_bug}: a process-wide switch
    that corrupts the second-pattern implication of multi-input gates
    (it reads fanin 0's first-pattern value — a copy-paste bug the
    engine's own final check cannot see, because the corrupted implied
    state is self-consistent).  The [justify-podem] three-way oracle
    must catch it by independent re-simulation; [test_check.ml] proves
    it is caught and shrunk. *)

val set_injected_bug : bool -> unit
val injected_bug_enabled : unit -> bool

(** {2 Exposed internals}

    For the property tests in [test_core.ml] only: the search-state
    invariants (frontier non-empty until detection, backtrace reaching
    an unassigned PI, monotone implication, exact backtrack restore)
    are stated against these. *)

module Internal : sig
  type state

  val prepare :
    t -> reqs:(int * Pdf_values.Req.t) list -> state option
  (** Build a search state for the merged requirements and run the
      initial implication; [None] on a directly conflicting set. *)

  val imply : state -> unit
  val frontier : state -> (int * int) list
  (** Unsatisfied requirement components, as [(net, component)] pairs in
      deterministic order. *)

  val conflict : state -> int option
  val satisfied : state -> bool
  val objective : state -> (int * int * bool) option
  val backtrace : state -> int * int * bool -> (int * int * bool) option
  (** [(pi, pattern, value)] with [pattern] 1 or 3; the returned pattern
      bit is always unassigned. *)

  val cone_pis : state -> int array
  val assign : state -> int * int * bool -> unit
  (** Set a PI pattern bit without implying (call {!imply} after). *)

  val unassign : state -> int * int -> unit

  val snapshot : state -> string
  (** Canonical rendering of the full search state (assignment and
      implied values) for exact-equality assertions. *)
end
