module Robust = Pdf_faults.Robust

type verdict = {
  fault_id : int;
  explained : int;
  maybe_explained : int;
  unexplained : int;
}

let dictionary c tests faults = Fault_sim.detect_matrix c tests faults

(* The weak dictionary: non-robust sensitization of the same faults.
   Faults with consistent non-robust conditions are re-packed as a
   prepared array so the scan shares the (possibly word-parallel)
   detection matrix; faults without them contribute all-false columns. *)
let weak_dictionary c tests (faults : Fault_sim.prepared array) =
  let weak_reqs =
    Array.map
      (fun (p : Fault_sim.prepared) ->
        Fault_sim.conditions ~criterion:Robust.Non_robust c
          p.Fault_sim.fault)
      faults
  in
  let idx = ref [] in
  Array.iteri
    (fun i reqs -> if Option.is_some reqs then idx := i :: !idx)
    weak_reqs;
  let idx = Array.of_list (List.rev !idx) in
  let weak_faults =
    Array.mapi
      (fun j i ->
        {
          faults.(i) with
          Fault_sim.id = j;
          reqs = Option.get weak_reqs.(i);
        })
      idx
  in
  let rows = Fault_sim.detect_matrix c tests weak_faults in
  Array.map
    (fun row ->
      let full = Array.make (Array.length faults) false in
      Array.iteri (fun j d -> full.(idx.(j)) <- d) row;
      full)
    rows

let diagnose c tests faults ~observed =
  if List.length observed <> List.length tests then
    invalid_arg "Diagnose.diagnose: observed/test length mismatch";
  let strong = dictionary c tests faults in
  let weak = weak_dictionary c tests faults in
  let observed = Array.of_list observed in
  let num_failures =
    Array.fold_left (fun a f -> if f then a + 1 else a) 0 observed
  in
  let verdicts = ref [] in
  Array.iteri
    (fun fault_id _ ->
      let eliminated = ref false in
      let explained = ref 0 and maybe = ref 0 in
      Array.iteri
        (fun t failed ->
          if strong.(t).(fault_id) then
            if failed then begin
              incr explained;
              incr maybe
            end
            else eliminated := true
          else if weak.(t).(fault_id) && failed then incr maybe)
        observed;
      if (not !eliminated) && (num_failures = 0 || !maybe > 0) then
        verdicts :=
          {
            fault_id;
            explained = !explained;
            maybe_explained = !maybe;
            unexplained = num_failures - !maybe;
          }
          :: !verdicts)
    faults;
  List.sort
    (fun a b ->
      if a.maybe_explained <> b.maybe_explained then
        Int.compare b.maybe_explained a.maybe_explained
      else if a.unexplained <> b.unexplained then
        Int.compare a.unexplained b.unexplained
      else if a.explained <> b.explained then
        Int.compare b.explained a.explained
      else Int.compare a.fault_id b.fault_id)
    !verdicts
