module Bit = Pdf_values.Bit
module Req = Pdf_values.Req
module Circuit = Pdf_circuit.Circuit
module Rng = Pdf_util.Rng
module Two_pattern = Pdf_sim.Two_pattern
module Wsim = Pdf_bitsim.Wsim
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span
module Attrib = Pdf_obs.Attrib

(* All justification accounting lives in the pdf_obs metrics registry
   (process-wide, monotonic); [runs]/[trials] below read these. *)
let m_runs = Metrics.counter "justify.runs"
let m_trials = Metrics.counter "justify.trials"
let m_conflicts = Metrics.counter "justify.conflicts"
let m_backtracks = Metrics.counter "justify.backtracks"

(* Effort counters behind the attribution layer (DESIGN.md §14).  All
   three are semantic — defined by the search, not the engine — so they
   are byte-identical across the PDF_INCSIM/PDF_BITSIM toggles:
   [trial_evals] counts overlay gate evaluations (pure scalar code),
   [resim_gates] charges every resimulation call its full-pass cost
   (cone size), whichever engine actually ran, and [conflict_hits]
   counts requirement-mismatch events wherever they are detected.  The
   per-net counterparts live in {!Pdf_obs.Attrib} sheets; the attrib
   oracle checks conservation between the two. *)
let m_trial_evals = Metrics.counter "justify.trial_evals"
let m_resim_gates = Metrics.counter "justify.resim_gates"
let m_conflict_hits = Metrics.counter "justify.conflict_hits"

let h_backtrack_depth =
  Metrics.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
    "justify.backtrack_depth"

(* [e_runs]/[e_trials] mirror the process-wide metric counters but are
   per-engine, so callers measuring one phase get exact figures even
   when other engines run concurrently on other domains.  An engine is
   only ever driven from one domain at a time. *)
type t = {
  circuit : Circuit.t;
  att : Attrib.sheet option;
  mutable e_runs : int;
  mutable e_trials : int;
  mutable e_backtracks : int;
  mutable e_resim_calls : int;
  mutable e_resim_gates : int;
  (* Abort forensics, maintained unconditionally (cheap scalar writes):
     the most recent requirement-conflict net with its level, and the
     deepest (highest-level) conflict net seen since the last
     [reset_forensics].  Every conflict event is detected by scalar,
     engine-independent code, so these are byte-identical across
     engines and job counts. *)
  mutable last_conflict_net : int;
  mutable last_conflict_level : int;
  mutable deepest_conflict_level : int;
}

let create ?attrib circuit =
  {
    circuit;
    att = attrib;
    e_runs = 0;
    e_trials = 0;
    e_backtracks = 0;
    e_resim_calls = 0;
    e_resim_gates = 0;
    last_conflict_net = -1;
    last_conflict_level = -1;
    deepest_conflict_level = -1;
  }

let runs t = t.e_runs

let trials t = t.e_trials

let backtracks t = t.e_backtracks

let resim_calls t = t.e_resim_calls

let resim_gates t = t.e_resim_gates

type forensics = { last_net : int; last_level : int; deepest_level : int }

let forensics t =
  {
    last_net = t.last_conflict_net;
    last_level = t.last_conflict_level;
    deepest_level = t.deepest_conflict_level;
  }

let reset_forensics t =
  t.last_conflict_net <- -1;
  t.last_conflict_level <- -1;
  t.deepest_conflict_level <- -1

let note_conflict engine net =
  Metrics.incr m_conflict_hits;
  let level = engine.circuit.Circuit.level.(net) in
  engine.last_conflict_net <- net;
  engine.last_conflict_level <- level;
  if level > engine.deepest_conflict_level then
    engine.deepest_conflict_level <- level;
  match engine.att with
  | Some a ->
    a.Attrib.conflicts.(net) <- a.Attrib.conflicts.(net) + 1;
    a.Attrib.t_conflicts <- a.Attrib.t_conflicts + 1
  | None -> ()

exception No_test

(* Component indices: 0 = first pattern, 1 = intermediate, 2 = second. *)
let comp_of_pattern = function 1 -> 0 | 3 -> 2 | _ -> invalid_arg "pattern"

type search = {
  c : Circuit.t;
  eng : t; (* owning engine: effort accounting and forensics *)
  rng : Rng.t;
  r : Bit.t array array; (* requirements, 3 x nets; X = unconstrained *)
  req_nets : int array;
  cone_gates : int array; (* ascending gate indices, topological *)
  cone_pis : int array;
  a1 : Bit.t array; (* per PI *)
  a3 : Bit.t array;
  s : Bit.t array array; (* persistent simulation, 3 x nets *)
  inc : Inc_sim.t option; (* incremental maintainer of [s], cone-masked *)
  tval : Bit.t array array; (* trial overlay *)
  tstamp : int array array;
  mutable trial_id : int;
  mutable unspecified : int;
  mutable resims : int; (* resimulation calls, for deferred attribution *)
}

let mismatch req value =
  match req, value with
  | (Bit.Zero | Bit.One), (Bit.Zero | Bit.One) -> not (Bit.equal req value)
  | (Bit.Zero | Bit.One | Bit.X), (Bit.Zero | Bit.One | Bit.X) -> false

let eval_gate_get = Pdf_sim.Logic_sim.eval_gate_get

(* Fan-in cone of the requirement nets: only these gates can influence a
   requirement, and only these PIs are worth searching. *)
let compute_cone c req_nets =
  let n = Circuit.num_nets c in
  let in_cone = Array.make n false in
  let rec visit net =
    if not in_cone.(net) then begin
      in_cone.(net) <- true;
      match Circuit.gate_of_net c net with
      | None -> ()
      | Some g -> Array.iter visit (c : Circuit.t).gates.(g).Circuit.fanins
    end
  in
  Array.iter visit req_nets;
  let cone_gates = ref [] in
  for g = Circuit.num_gates c - 1 downto 0 do
    if in_cone.(Circuit.net_of_gate c g) then cone_gates := g :: !cone_gates
  done;
  let cone_pis = ref [] in
  for pi = c.Circuit.num_pis - 1 downto 0 do
    if in_cone.(pi) then cone_pis := pi :: !cone_pis
  done;
  (Array.of_list !cone_gates, Array.of_list !cone_pis)

(* Bring [st.s] up to date with [st.a1]/[st.a3].  Incrementally when the
   engine is enabled: only cone PIs whose assignment actually changed
   are seeded and only their dirty fanout cone is re-evaluated, instead
   of the full cone pass below — same fixpoint, so the search (and every
   test it emits) is byte-identical either way. *)
let resim st =
  (* Semantic cost: a full pass over the cone, whichever engine runs.
     Charged per call so the global counter, the per-engine counter and
     (via [record_search]) the per-net attribution stay conserved and
     engine-invariant. *)
  st.resims <- st.resims + 1;
  st.eng.e_resim_calls <- st.eng.e_resim_calls + 1;
  st.eng.e_resim_gates <- st.eng.e_resim_gates + Array.length st.cone_gates;
  Metrics.add m_resim_gates (Array.length st.cone_gates);
  match st.inc with
  | Some inc ->
    Array.iter
      (fun pi -> Inc_sim.set_pi inc pi ~v1:st.a1.(pi) ~v3:st.a3.(pi))
      st.cone_pis;
    Inc_sim.propagate inc
  | None ->
    let middle = Two_pattern.middle_of_pair in
    Array.iter
      (fun pi ->
        st.s.(0).(pi) <- st.a1.(pi);
        st.s.(2).(pi) <- st.a3.(pi);
        st.s.(1).(pi) <- middle st.a1.(pi) st.a3.(pi))
      st.cone_pis;
    Array.iter
      (fun gi ->
        let g = st.c.Circuit.gates.(gi) in
        let out = Circuit.net_of_gate st.c gi in
        for k = 0 to 2 do
          st.s.(k).(out) <- eval_gate_get g (fun net -> st.s.(k).(net))
        done)
      st.cone_gates

(* First requirement net whose persistent value contradicts it — the
   net blamed when an assignment's resimulation reveals a conflict. *)
let conflict_net st =
  let n = Array.length st.req_nets in
  let rec go i =
    if i >= n then None
    else
      let net = st.req_nets.(i) in
      if
        mismatch st.r.(0).(net) st.s.(0).(net)
        || mismatch st.r.(1).(net) st.s.(1).(net)
        || mismatch st.r.(2).(net) st.s.(2).(net)
      then Some net
      else go (i + 1)
  in
  go 0


let satisfied_now st =
  let ok k net =
    match st.r.(k).(net) with
    | Bit.X -> true
    | (Bit.Zero | Bit.One) as v -> Bit.equal st.s.(k).(net) v
  in
  Array.for_all (fun net -> ok 0 net && ok 1 net && ok 2 net) st.req_nets

exception Trial_conflict

(* Trial-assign pattern bit [j] of PI [pi] to [b] and propagate through the
   cone using an overlay (values stamped with the trial id); any definite
   value contradicting a requirement aborts with a conflict.  The
   persistent state is untouched. *)
let trial engine st pi j b =
  Metrics.incr m_trials;
  engine.e_trials <- engine.e_trials + 1;
  let att = engine.att in
  (match att with
  | Some a ->
    a.Attrib.trials.(pi) <- a.Attrib.trials.(pi) + 1;
    a.Attrib.t_trials <- a.Attrib.t_trials + 1
  | None -> ());
  st.trial_id <- st.trial_id + 1;
  let id = st.trial_id in
  let evals = ref 0 in
  let read k net =
    if st.tstamp.(k).(net) = id then st.tval.(k).(net) else st.s.(k).(net)
  in
  let write k net v =
    st.tval.(k).(net) <- v;
    st.tstamp.(k).(net) <- id;
    if mismatch st.r.(k).(net) v then begin
      note_conflict engine net;
      raise Trial_conflict
    end
  in
  let kj = comp_of_pattern j in
  let conflicted =
    try
      let newv = Bit.of_bool b in
      if not (Bit.equal st.s.(kj).(pi) newv) then write kj pi newv;
      let b1 = if j = 1 then newv else st.a1.(pi) in
      let b3 = if j = 3 then newv else st.a3.(pi) in
      let mid = Two_pattern.middle_of_pair b1 b3 in
      if not (Bit.equal st.s.(1).(pi) mid) then write 1 pi mid;
      let propagate k =
        Array.iter
          (fun gi ->
            let g = st.c.Circuit.gates.(gi) in
            let touched =
              Array.exists
                (fun fanin -> st.tstamp.(k).(fanin) = id)
                g.Circuit.fanins
            in
            if touched then begin
              let out = Circuit.net_of_gate st.c gi in
              incr evals;
              (match att with
              | Some a ->
                a.Attrib.trial_evals.(out) <- a.Attrib.trial_evals.(out) + 1;
                a.Attrib.t_trial_evals <- a.Attrib.t_trial_evals + 1
              | None -> ());
              let v = eval_gate_get g (read k) in
              if not (Bit.equal v st.s.(k).(out)) then write k out v
            end)
          st.cone_gates
      in
      propagate kj;
      propagate 1;
      false
    with Trial_conflict -> true
  in
  if !evals > 0 then Metrics.add m_trial_evals !evals;
  conflicted

let assign engine st pi j b =
  (match j with
  | 1 -> st.a1.(pi) <- Bit.of_bool b
  | 3 -> st.a3.(pi) <- Bit.of_bool b
  | _ -> invalid_arg "pattern");
  st.unspecified <- st.unspecified - 1;
  resim st;
  match conflict_net st with
  | Some net ->
    note_conflict engine net;
    raise No_test
  | None -> ()

(* One pass over all unspecified cone bits, excluding values whose trial
   conflicts; repeated until no new value is assigned. *)
let necessary_values engine st =
  let continue = ref true in
  while !continue do
    continue := false;
    Array.iter
      (fun pi ->
        List.iter
          (fun j ->
            let current = if j = 1 then st.a1.(pi) else st.a3.(pi) in
            if Bit.equal current Bit.X then begin
              let c0 = trial engine st pi j false in
              let c1 = trial engine st pi j true in
              if c0 && c1 then raise No_test
              else if c0 then begin
                assign engine st pi j true;
                continue := true
              end
              else if c1 then begin
                assign engine st pi j false;
                continue := true
              end
            end)
          [ 1; 3 ])
      st.cone_pis
  done

(* Decision step: prefer making a half-specified input stable (the paper's
   rule), otherwise specify a random unspecified bit randomly. *)
let decide engine st =
  let half_specified =
    Array.to_list st.cone_pis
    |> List.find_opt (fun pi ->
           Bit.is_definite st.a1.(pi) <> Bit.is_definite st.a3.(pi))
  in
  match half_specified with
  | Some pi ->
    if Bit.is_definite st.a1.(pi) then
      assign engine st pi 3 (Bit.equal st.a1.(pi) Bit.One)
    else assign engine st pi 1 (Bit.equal st.a3.(pi) Bit.One)
  | None ->
    let unspecified =
      Array.to_list st.cone_pis
      |> List.concat_map (fun pi ->
             let open_bits = ref [] in
             if Bit.equal st.a1.(pi) Bit.X then open_bits := (pi, 1) :: !open_bits;
             if Bit.equal st.a3.(pi) Bit.X then open_bits := (pi, 3) :: !open_bits;
             !open_bits)
    in
    (match unspecified with
    | [] -> ()
    | bits ->
      let pi, j = List.nth bits (Rng.int st.rng (List.length bits)) in
      assign engine st pi j (Rng.bool st.rng))

let merge_reqs reqs =
  let acc = Hashtbl.create 16 in
  let ok =
    List.for_all
      (fun (net, req) ->
        let current =
          match Hashtbl.find_opt acc net with Some r -> r | None -> Req.any
        in
        match Req.merge current req with
        | Some merged ->
          Hashtbl.replace acc net merged;
          true
        | None -> false)
      reqs
  in
  if ok then Some (Hashtbl.fold (fun net req l -> (net, req) :: l) acc [])
  else None

let random_pattern rng n = Array.init n (fun _ -> Rng.bool rng)

let build_test st =
  let m = st.c.Circuit.num_pis in
  let v1 = random_pattern st.rng m and v3 = random_pattern st.rng m in
  Array.iter
    (fun pi ->
      (match Bit.to_bool st.a1.(pi) with
      | Some b -> v1.(pi) <- b
      | None -> assert false);
      match Bit.to_bool st.a3.(pi) with
      | Some b -> v3.(pi) <- b
      | None -> assert false)
    st.cone_pis;
  Test_pair.create v1 v3

(* Shared state construction for both search strategies. *)
let make_search engine rng merged =
  let c = engine.circuit in
  let n = Circuit.num_nets c in
  let req_nets = Array.of_list (List.map fst merged) in
  let r = Array.init 3 (fun _ -> Array.make n Bit.X) in
  List.iter
    (fun (net, (req : Req.t)) ->
      let comp_bit = function
        | Req.Any -> Bit.X
        | Req.Must b -> Bit.of_bool b
      in
      r.(0).(net) <- comp_bit req.Req.r1;
      r.(1).(net) <- comp_bit req.Req.r2;
      r.(2).(net) <- comp_bit req.Req.r3)
    merged;
  let cone_gates, cone_pis = compute_cone c req_nets in
  let s = Array.init 3 (fun _ -> Array.make n Bit.X) in
  let inc =
    if Wsim.incsim_enabled () then begin
      let mask = Array.make (Circuit.num_gates c) false in
      Array.iter (fun gi -> mask.(gi) <- true) cone_gates;
      Some (Inc_sim.create ?attrib:engine.att ~gate_mask:mask c ~s)
    end
    else None
  in
  {
    c;
    eng = engine;
    rng;
    r;
    req_nets;
    cone_gates;
    cone_pis;
    a1 = Array.make c.Circuit.num_pis Bit.X;
    a3 = Array.make c.Circuit.num_pis Bit.X;
    s;
    inc;
    tval = Array.init 3 (fun _ -> Array.make n Bit.X);
    tstamp = Array.init 3 (fun _ -> Array.make n 0);
    trial_id = 0;
    unspecified = 2 * Array.length cone_pis;
    resims = 0;
  }

(* Fold this search's incremental-simulation work into the sim.inc.*
   metrics.  The denominator is the cone size — what the full-pass
   [resim] would have evaluated per call.  When the engine carries an
   attribution sheet, the search's resimulation effort is flushed here
   in one O(cone) pass — [resims x cone] charged to every cone gate's
   output net — instead of a per-call cone walk on the hot path. *)
let record_search st =
  (match st.eng.att with
  | Some a when st.resims > 0 ->
    a.Attrib.t_resim_calls <- a.Attrib.t_resim_calls + st.resims;
    a.Attrib.t_resim_gates <-
      a.Attrib.t_resim_gates + (st.resims * Array.length st.cone_gates);
    Array.iter
      (fun gi ->
        let net = Circuit.net_of_gate st.c gi in
        a.Attrib.resim_cone.(net) <- a.Attrib.resim_cone.(net) + st.resims)
      st.cone_gates
  | Some _ | None -> ());
  match st.inc with
  | Some inc ->
    Inc_sim.record ~num_gates:(Array.length st.cone_gates) (Inc_sim.stats inc)
  | None -> ()

type complete_outcome =
  | Found of Test_pair.t
  | Proved_unsatisfiable
  | Gave_up

exception Budget_exhausted

(* Deterministic branch-and-bound search over the cone input bits. *)
let note_run engine =
  Metrics.incr m_runs;
  engine.e_runs <- engine.e_runs + 1;
  match engine.att with
  | Some a -> a.Attrib.t_runs <- a.Attrib.t_runs + 1
  | None -> ()

let run_complete ?(max_backtracks = 10_000) engine ~reqs =
  Span.with_ "justify" @@ fun () ->
  note_run engine;
  let c = engine.circuit in
  match merge_reqs reqs with
  | None ->
    Metrics.incr m_conflicts;
    Proved_unsatisfiable
  | Some [] ->
    Found
      (Test_pair.create
         (Array.make c.Circuit.num_pis false)
         (Array.make c.Circuit.num_pis false))
  | Some merged -> (
    (* The rng is never consulted: decisions are deterministic and
       non-cone bits are filled with zeros. *)
    let st = make_search engine (Rng.create 0) merged in
    let backtracks = ref 0 in
    let snapshot () = (Array.copy st.a1, Array.copy st.a3, st.unspecified) in
    let restore (a1, a3, unspecified) =
      Array.blit a1 0 st.a1 0 (Array.length a1);
      Array.blit a3 0 st.a3 0 (Array.length a3);
      st.unspecified <- unspecified;
      resim st
    in
    (* [pi] is the decision input being retracted; the backtrack is
       charged to its net in the attribution sheet. *)
    let spend depth pi =
      incr backtracks;
      engine.e_backtracks <- engine.e_backtracks + 1;
      Metrics.incr m_backtracks;
      Metrics.observe_int h_backtrack_depth depth;
      (match engine.att with
      | Some a ->
        a.Attrib.backtracks.(pi) <- a.Attrib.backtracks.(pi) + 1;
        a.Attrib.t_backtracks <- a.Attrib.t_backtracks + 1
      | None -> ());
      if !backtracks > max_backtracks then raise Budget_exhausted
    in
    (* The paper's decision preference, made deterministic: stabilise a
       half-specified input first (copy value, then its complement), else
       take the first open bit with 0 before 1. *)
    let next_decision () =
      let half =
        Array.to_list st.cone_pis
        |> List.find_opt (fun pi ->
               Bit.is_definite st.a1.(pi) <> Bit.is_definite st.a3.(pi))
      in
      match half with
      | Some pi ->
        if Bit.is_definite st.a1.(pi) then
          let b = Bit.equal st.a1.(pi) Bit.One in
          Some (pi, 3, [ b; not b ])
        else
          let b = Bit.equal st.a3.(pi) Bit.One in
          Some (pi, 1, [ b; not b ])
      | None ->
        Array.to_list st.cone_pis
        |> List.find_map (fun pi ->
               if Bit.equal st.a1.(pi) Bit.X then Some (pi, 1, [ false; true ])
               else if Bit.equal st.a3.(pi) Bit.X then
                 Some (pi, 3, [ false; true ])
               else None)
    in
    let build_deterministic_test () =
      let m = st.c.Circuit.num_pis in
      let v1 = Array.make m false and v3 = Array.make m false in
      Array.iter
        (fun pi ->
          (match Bit.to_bool st.a1.(pi) with
          | Some b -> v1.(pi) <- b
          | None -> assert false);
          match Bit.to_bool st.a3.(pi) with
          | Some b -> v3.(pi) <- b
          | None -> assert false)
        st.cone_pis;
      Test_pair.create v1 v3
    in
    (* DFS: returns Some test on success, None when this subtree is
       refuted. *)
    let rec solve depth =
      match
        (try
           necessary_values engine st;
           `Ok
         with No_test -> `Conflict)
      with
      | `Conflict -> None
      | `Ok -> (
        if st.unspecified = 0 then
          if satisfied_now st then Some (build_deterministic_test ())
          else None
        else
          match next_decision () with
          | None -> None
          | Some (pi, j, values) ->
            let saved = snapshot () in
            let rec try_values = function
              | [] -> None
              | b :: rest -> (
                match
                  (try
                     assign engine st pi j b;
                     `Ok
                   with No_test -> `Conflict)
                with
                | `Conflict ->
                  spend depth pi;
                  restore saved;
                  try_values rest
                | `Ok -> (
                  match solve (depth + 1) with
                  | Some test -> Some test
                  | None ->
                    spend depth pi;
                    restore saved;
                    try_values rest))
            in
            try_values values)
    in
    let outcome =
      try
        resim st;
        match conflict_net st with
        | Some net ->
          note_conflict engine net;
          Metrics.incr m_conflicts;
          Proved_unsatisfiable
        | None -> (
          match solve 0 with
          | Some test -> Found test
          | None ->
            Metrics.incr m_conflicts;
            Proved_unsatisfiable)
      with Budget_exhausted -> Gave_up
    in
    record_search st;
    outcome)

let run engine ~rng ~reqs =
  Span.with_ "justify" @@ fun () ->
  note_run engine;
  let c = engine.circuit in
  match merge_reqs reqs with
  | None ->
    Metrics.incr m_conflicts;
    None
  | Some [] ->
    Some
      (Test_pair.create
         (random_pattern rng c.Circuit.num_pis)
         (random_pattern rng c.Circuit.num_pis))
  | Some merged ->
    let st = make_search engine rng merged in
    let result =
      try
        resim st;
        (match conflict_net st with
        | Some net ->
          note_conflict engine net;
          raise No_test
        | None -> ());
        while st.unspecified > 0 do
          necessary_values engine st;
          if st.unspecified > 0 then decide engine st
        done;
        if satisfied_now st then Some (build_test st) else None
      with No_test -> None
    in
    record_search st;
    if result = None then Metrics.incr m_conflicts;
    result

(* ------------------------------------------------------------------ *)
(* Backend selection and the dispatching engine                        *)
(* ------------------------------------------------------------------ *)

type kind = Sim | Podem | Portfolio

let kind_name = function
  | Sim -> "sim"
  | Podem -> "podem"
  | Portfolio -> "portfolio"

let kind_of_name s =
  match String.lowercase_ascii s with
  | "sim" | "simulation" -> Some Sim
  | "podem" -> Some Podem
  | "portfolio" -> Some Portfolio
  | _ -> None

let default_kind () =
  match Sys.getenv_opt "PDF_JUSTIFY" with
  | None | Some "" -> Sim
  | Some s -> (
    match kind_of_name s with
    | Some k -> k
    | None ->
      invalid_arg
        (Printf.sprintf "PDF_JUSTIFY=%S: expected sim, podem or portfolio" s))

module Engine = struct
  module Pool = Pdf_par.Pool

  (* Alias the simulation engine's type before [t] is shadowed below. *)
  type sim_engine = t

  type member_impl = Sim_member of sim_engine | Podem_member of Podem.t

  type member = {
    label : string;
    impl : member_impl;
    sheet : Attrib.sheet option;
        (* portfolio members charge a private sheet (they run
           concurrently); [flush] folds these into the run's sheet in
           member order.  [None] outside portfolio mode: the single
           member charges the run's sheet directly. *)
  }

  type t = {
    kind : kind;
    members : member array; (* fixed priority order *)
    parent : Attrib.sheet option;
    mutable last_winner : string;
  }

  (* Portfolio composition: the structural engine first (deterministic,
     complete up to budget), then the paper's simulation engine, then
     [restarts] random-restart simulation members.  The order is the
     winner priority. *)
  let restarts = 2

  let create ?attrib ?(kind = default_kind ()) circuit =
    let members =
      match kind with
      | Sim ->
        [| { label = "sim"; impl = Sim_member (create ?attrib circuit);
             sheet = None } |]
      | Podem ->
        [| { label = "podem"; impl = Podem_member (Podem.create ?attrib circuit);
             sheet = None } |]
      | Portfolio ->
        let member label mk =
          let sheet =
            Option.map
              (fun (a : Attrib.sheet) -> Attrib.make_sheet ~nets:a.Attrib.nets)
              attrib
          in
          { label; impl = mk sheet; sheet }
        in
        Array.of_list
          (member "podem" (fun sheet -> Podem_member (Podem.create ?attrib:sheet circuit))
          :: member "sim" (fun sheet -> Sim_member (create ?attrib:sheet circuit))
          :: List.init restarts (fun i ->
                 member
                   (Printf.sprintf "sim-r%d" (i + 1))
                   (fun sheet -> Sim_member (create ?attrib:sheet circuit))))
    in
    { kind; members; parent = attrib; last_winner = "" }

  let kind t = t.kind

  let run_member ~seed ~reqs m =
    match m.impl with
    | Sim_member e -> run e ~rng:(Rng.create seed) ~reqs
    | Podem_member p -> (
      match Podem.run p ~reqs with
      | Podem.Found test -> Some test
      | Podem.Proved_unsatisfiable | Podem.Gave_up -> None)

  let run t ~rng ~reqs =
    match t.kind with
    | Sim | Podem ->
      let m = t.members.(0) in
      let result =
        match m.impl with
        | Sim_member e -> run e ~rng ~reqs
        | Podem_member p -> (
          match Podem.run p ~reqs with
          | Podem.Found test -> Some test
          | Podem.Proved_unsatisfiable | Podem.Gave_up -> None)
      in
      if result <> None then t.last_winner <- m.label;
      result
    | Portfolio ->
      (* Exactly one draw from the caller's stream per call, whatever
         the member count or job count; the members derive their own
         seeds from it and their index, honouring the pool's
         no-shared-randomness rule. *)
      let base = Int64.to_int (Rng.next rng) land max_int in
      let pool = Pool.default () in
      let results =
        Pool.map_array pool
          (fun i ->
            let m = t.members.(i) in
            run_member ~seed:(base lxor (0x9e3779b9 * (i + 1))) ~reqs m)
          (Array.init (Array.length t.members) Fun.id)
      in
      (* Synchronisation point: every member ran to completion (their
         effort counters are therefore jobs-invariant); the winner is
         the first successful member in priority order. *)
      let rec pick i =
        if i >= Array.length results then None
        else
          match results.(i) with
          | Some test ->
            t.last_winner <- t.members.(i).label;
            Some test
          | None -> pick (i + 1)
      in
      pick 0

  let winner t = t.last_winner

  let sum t f_sim f_podem =
    Array.fold_left
      (fun acc m ->
        acc
        +
        match m.impl with
        | Sim_member e -> f_sim e
        | Podem_member p -> f_podem p)
      0 t.members

  let runs t = sum t runs Podem.runs

  (* The structural engine's unit of search work is the PI decision;
     it is reported in the [trials] column so per-fault effort stays
     one schema across backends (DESIGN.md §15). *)
  let trials t = sum t trials Podem.decisions

  let backtracks t = sum t backtracks Podem.backtracks

  let resim_gates t = sum t resim_gates Podem.imply_gates

  let aborts t = sum t (fun _ -> 0) Podem.aborts

  let member_forensics m =
    match m.impl with
    | Sim_member e -> forensics e
    | Podem_member p ->
      let f = Podem.forensics p in
      {
        last_net = f.Podem.last_net;
        last_level = f.Podem.last_level;
        deepest_level = f.Podem.deepest_level;
      }

  (* Deterministic combination: the deepest conflict level over all
     members, and the last-conflict net of the first member (in
     priority order) that recorded one — a fixed rule, so the ledger's
     forensic fields are jobs-invariant in portfolio mode too. *)
  let forensics t =
    let fs = Array.map member_forensics t.members in
    let deepest =
      Array.fold_left (fun acc f -> max acc f.deepest_level) (-1) fs
    in
    let last =
      let rec find i =
        if i >= Array.length fs then
          { last_net = -1; last_level = -1; deepest_level = deepest }
        else if fs.(i).last_net >= 0 then fs.(i)
        else find (i + 1)
      in
      find 0
    in
    { last with deepest_level = deepest }

  let reset_forensics t =
    Array.iter
      (fun m ->
        match m.impl with
        | Sim_member e -> reset_forensics e
        | Podem_member p -> Podem.reset_forensics p)
      t.members

  let flush t =
    match t.parent with
    | None -> ()
    | Some parent ->
      Array.iter
        (fun m ->
          match m.sheet with
          | Some sheet -> Attrib.add_sheet ~into:parent sheet
          | None -> ())
        t.members
end
