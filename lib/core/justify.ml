module Bit = Pdf_values.Bit
module Req = Pdf_values.Req
module Circuit = Pdf_circuit.Circuit
module Rng = Pdf_util.Rng
module Two_pattern = Pdf_sim.Two_pattern
module Wsim = Pdf_bitsim.Wsim
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span

(* All justification accounting lives in the pdf_obs metrics registry
   (process-wide, monotonic); [runs]/[trials] below read these. *)
let m_runs = Metrics.counter "justify.runs"
let m_trials = Metrics.counter "justify.trials"
let m_conflicts = Metrics.counter "justify.conflicts"
let m_backtracks = Metrics.counter "justify.backtracks"

let h_backtrack_depth =
  Metrics.histogram
    ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. |]
    "justify.backtrack_depth"

(* [e_runs]/[e_trials] mirror the process-wide metric counters but are
   per-engine, so callers measuring one phase get exact figures even
   when other engines run concurrently on other domains.  An engine is
   only ever driven from one domain at a time. *)
type t = {
  circuit : Circuit.t;
  mutable e_runs : int;
  mutable e_trials : int;
  mutable e_backtracks : int;
}

let create circuit = { circuit; e_runs = 0; e_trials = 0; e_backtracks = 0 }

let runs t = t.e_runs

let trials t = t.e_trials

let backtracks t = t.e_backtracks

exception No_test

(* Component indices: 0 = first pattern, 1 = intermediate, 2 = second. *)
let comp_of_pattern = function 1 -> 0 | 3 -> 2 | _ -> invalid_arg "pattern"

type search = {
  c : Circuit.t;
  rng : Rng.t;
  r : Bit.t array array; (* requirements, 3 x nets; X = unconstrained *)
  req_nets : int array;
  cone_gates : int array; (* ascending gate indices, topological *)
  cone_pis : int array;
  a1 : Bit.t array; (* per PI *)
  a3 : Bit.t array;
  s : Bit.t array array; (* persistent simulation, 3 x nets *)
  inc : Inc_sim.t option; (* incremental maintainer of [s], cone-masked *)
  tval : Bit.t array array; (* trial overlay *)
  tstamp : int array array;
  mutable trial_id : int;
  mutable unspecified : int;
}

let mismatch req value =
  match req, value with
  | (Bit.Zero | Bit.One), (Bit.Zero | Bit.One) -> not (Bit.equal req value)
  | (Bit.Zero | Bit.One | Bit.X), (Bit.Zero | Bit.One | Bit.X) -> false

let eval_gate_get = Pdf_sim.Logic_sim.eval_gate_get

(* Fan-in cone of the requirement nets: only these gates can influence a
   requirement, and only these PIs are worth searching. *)
let compute_cone c req_nets =
  let n = Circuit.num_nets c in
  let in_cone = Array.make n false in
  let rec visit net =
    if not in_cone.(net) then begin
      in_cone.(net) <- true;
      match Circuit.gate_of_net c net with
      | None -> ()
      | Some g -> Array.iter visit (c : Circuit.t).gates.(g).Circuit.fanins
    end
  in
  Array.iter visit req_nets;
  let cone_gates = ref [] in
  for g = Circuit.num_gates c - 1 downto 0 do
    if in_cone.(Circuit.net_of_gate c g) then cone_gates := g :: !cone_gates
  done;
  let cone_pis = ref [] in
  for pi = c.Circuit.num_pis - 1 downto 0 do
    if in_cone.(pi) then cone_pis := pi :: !cone_pis
  done;
  (Array.of_list !cone_gates, Array.of_list !cone_pis)

(* Bring [st.s] up to date with [st.a1]/[st.a3].  Incrementally when the
   engine is enabled: only cone PIs whose assignment actually changed
   are seeded and only their dirty fanout cone is re-evaluated, instead
   of the full cone pass below — same fixpoint, so the search (and every
   test it emits) is byte-identical either way. *)
let resim st =
  match st.inc with
  | Some inc ->
    Array.iter
      (fun pi -> Inc_sim.set_pi inc pi ~v1:st.a1.(pi) ~v3:st.a3.(pi))
      st.cone_pis;
    Inc_sim.propagate inc
  | None ->
    let middle = Two_pattern.middle_of_pair in
    Array.iter
      (fun pi ->
        st.s.(0).(pi) <- st.a1.(pi);
        st.s.(2).(pi) <- st.a3.(pi);
        st.s.(1).(pi) <- middle st.a1.(pi) st.a3.(pi))
      st.cone_pis;
    Array.iter
      (fun gi ->
        let g = st.c.Circuit.gates.(gi) in
        let out = Circuit.net_of_gate st.c gi in
        for k = 0 to 2 do
          st.s.(k).(out) <- eval_gate_get g (fun net -> st.s.(k).(net))
        done)
      st.cone_gates

let conflict_now st =
  Array.exists
    (fun net ->
      mismatch st.r.(0).(net) st.s.(0).(net)
      || mismatch st.r.(1).(net) st.s.(1).(net)
      || mismatch st.r.(2).(net) st.s.(2).(net))
    st.req_nets

let satisfied_now st =
  let ok k net =
    match st.r.(k).(net) with
    | Bit.X -> true
    | (Bit.Zero | Bit.One) as v -> Bit.equal st.s.(k).(net) v
  in
  Array.for_all (fun net -> ok 0 net && ok 1 net && ok 2 net) st.req_nets

exception Trial_conflict

(* Trial-assign pattern bit [j] of PI [pi] to [b] and propagate through the
   cone using an overlay (values stamped with the trial id); any definite
   value contradicting a requirement aborts with a conflict.  The
   persistent state is untouched. *)
let trial engine st pi j b =
  Metrics.incr m_trials;
  engine.e_trials <- engine.e_trials + 1;
  st.trial_id <- st.trial_id + 1;
  let id = st.trial_id in
  let read k net =
    if st.tstamp.(k).(net) = id then st.tval.(k).(net) else st.s.(k).(net)
  in
  let write k net v =
    st.tval.(k).(net) <- v;
    st.tstamp.(k).(net) <- id;
    if mismatch st.r.(k).(net) v then raise Trial_conflict
  in
  let kj = comp_of_pattern j in
  try
    let newv = Bit.of_bool b in
    if not (Bit.equal st.s.(kj).(pi) newv) then write kj pi newv;
    let b1 = if j = 1 then newv else st.a1.(pi) in
    let b3 = if j = 3 then newv else st.a3.(pi) in
    let mid = Two_pattern.middle_of_pair b1 b3 in
    if not (Bit.equal st.s.(1).(pi) mid) then write 1 pi mid;
    let propagate k =
      Array.iter
        (fun gi ->
          let g = st.c.Circuit.gates.(gi) in
          let touched =
            Array.exists
              (fun fanin -> st.tstamp.(k).(fanin) = id)
              g.Circuit.fanins
          in
          if touched then begin
            let out = Circuit.net_of_gate st.c gi in
            let v = eval_gate_get g (read k) in
            if not (Bit.equal v st.s.(k).(out)) then write k out v
          end)
        st.cone_gates
    in
    propagate kj;
    propagate 1;
    false
  with Trial_conflict -> true

let assign st pi j b =
  (match j with
  | 1 -> st.a1.(pi) <- Bit.of_bool b
  | 3 -> st.a3.(pi) <- Bit.of_bool b
  | _ -> invalid_arg "pattern");
  st.unspecified <- st.unspecified - 1;
  resim st;
  if conflict_now st then raise No_test

(* One pass over all unspecified cone bits, excluding values whose trial
   conflicts; repeated until no new value is assigned. *)
let necessary_values engine st =
  let continue = ref true in
  while !continue do
    continue := false;
    Array.iter
      (fun pi ->
        List.iter
          (fun j ->
            let current = if j = 1 then st.a1.(pi) else st.a3.(pi) in
            if Bit.equal current Bit.X then begin
              let c0 = trial engine st pi j false in
              let c1 = trial engine st pi j true in
              if c0 && c1 then raise No_test
              else if c0 then begin
                assign st pi j true;
                continue := true
              end
              else if c1 then begin
                assign st pi j false;
                continue := true
              end
            end)
          [ 1; 3 ])
      st.cone_pis
  done

(* Decision step: prefer making a half-specified input stable (the paper's
   rule), otherwise specify a random unspecified bit randomly. *)
let decide st =
  let half_specified =
    Array.to_list st.cone_pis
    |> List.find_opt (fun pi ->
           Bit.is_definite st.a1.(pi) <> Bit.is_definite st.a3.(pi))
  in
  match half_specified with
  | Some pi ->
    if Bit.is_definite st.a1.(pi) then
      assign st pi 3 (Bit.equal st.a1.(pi) Bit.One)
    else assign st pi 1 (Bit.equal st.a3.(pi) Bit.One)
  | None ->
    let unspecified =
      Array.to_list st.cone_pis
      |> List.concat_map (fun pi ->
             let open_bits = ref [] in
             if Bit.equal st.a1.(pi) Bit.X then open_bits := (pi, 1) :: !open_bits;
             if Bit.equal st.a3.(pi) Bit.X then open_bits := (pi, 3) :: !open_bits;
             !open_bits)
    in
    (match unspecified with
    | [] -> ()
    | bits ->
      let pi, j = List.nth bits (Rng.int st.rng (List.length bits)) in
      assign st pi j (Rng.bool st.rng))

let merge_reqs reqs =
  let acc = Hashtbl.create 16 in
  let ok =
    List.for_all
      (fun (net, req) ->
        let current =
          match Hashtbl.find_opt acc net with Some r -> r | None -> Req.any
        in
        match Req.merge current req with
        | Some merged ->
          Hashtbl.replace acc net merged;
          true
        | None -> false)
      reqs
  in
  if ok then Some (Hashtbl.fold (fun net req l -> (net, req) :: l) acc [])
  else None

let random_pattern rng n = Array.init n (fun _ -> Rng.bool rng)

let build_test st =
  let m = st.c.Circuit.num_pis in
  let v1 = random_pattern st.rng m and v3 = random_pattern st.rng m in
  Array.iter
    (fun pi ->
      (match Bit.to_bool st.a1.(pi) with
      | Some b -> v1.(pi) <- b
      | None -> assert false);
      match Bit.to_bool st.a3.(pi) with
      | Some b -> v3.(pi) <- b
      | None -> assert false)
    st.cone_pis;
  Test_pair.create v1 v3

(* Shared state construction for both search strategies. *)
let make_search c rng merged =
  let n = Circuit.num_nets c in
  let req_nets = Array.of_list (List.map fst merged) in
  let r = Array.init 3 (fun _ -> Array.make n Bit.X) in
  List.iter
    (fun (net, (req : Req.t)) ->
      let comp_bit = function
        | Req.Any -> Bit.X
        | Req.Must b -> Bit.of_bool b
      in
      r.(0).(net) <- comp_bit req.Req.r1;
      r.(1).(net) <- comp_bit req.Req.r2;
      r.(2).(net) <- comp_bit req.Req.r3)
    merged;
  let cone_gates, cone_pis = compute_cone c req_nets in
  let s = Array.init 3 (fun _ -> Array.make n Bit.X) in
  let inc =
    if Wsim.incsim_enabled () then begin
      let mask = Array.make (Circuit.num_gates c) false in
      Array.iter (fun gi -> mask.(gi) <- true) cone_gates;
      Some (Inc_sim.create ~gate_mask:mask c ~s)
    end
    else None
  in
  {
    c;
    rng;
    r;
    req_nets;
    cone_gates;
    cone_pis;
    a1 = Array.make c.Circuit.num_pis Bit.X;
    a3 = Array.make c.Circuit.num_pis Bit.X;
    s;
    inc;
    tval = Array.init 3 (fun _ -> Array.make n Bit.X);
    tstamp = Array.init 3 (fun _ -> Array.make n 0);
    trial_id = 0;
    unspecified = 2 * Array.length cone_pis;
  }

(* Fold this search's incremental-simulation work into the sim.inc.*
   metrics.  The denominator is the cone size — what the full-pass
   [resim] would have evaluated per call. *)
let record_search st =
  match st.inc with
  | Some inc ->
    Inc_sim.record ~num_gates:(Array.length st.cone_gates) (Inc_sim.stats inc)
  | None -> ()

type complete_outcome =
  | Found of Test_pair.t
  | Proved_unsatisfiable
  | Gave_up

exception Budget_exhausted

(* Deterministic branch-and-bound search over the cone input bits. *)
let run_complete ?(max_backtracks = 10_000) engine ~reqs =
  Span.with_ "justify" @@ fun () ->
  Metrics.incr m_runs;
  engine.e_runs <- engine.e_runs + 1;
  let c = engine.circuit in
  match merge_reqs reqs with
  | None ->
    Metrics.incr m_conflicts;
    Proved_unsatisfiable
  | Some [] ->
    Found
      (Test_pair.create
         (Array.make c.Circuit.num_pis false)
         (Array.make c.Circuit.num_pis false))
  | Some merged -> (
    (* The rng is never consulted: decisions are deterministic and
       non-cone bits are filled with zeros. *)
    let st = make_search c (Rng.create 0) merged in
    let backtracks = ref 0 in
    let snapshot () = (Array.copy st.a1, Array.copy st.a3, st.unspecified) in
    let restore (a1, a3, unspecified) =
      Array.blit a1 0 st.a1 0 (Array.length a1);
      Array.blit a3 0 st.a3 0 (Array.length a3);
      st.unspecified <- unspecified;
      resim st
    in
    let spend depth =
      incr backtracks;
      engine.e_backtracks <- engine.e_backtracks + 1;
      Metrics.incr m_backtracks;
      Metrics.observe_int h_backtrack_depth depth;
      if !backtracks > max_backtracks then raise Budget_exhausted
    in
    (* The paper's decision preference, made deterministic: stabilise a
       half-specified input first (copy value, then its complement), else
       take the first open bit with 0 before 1. *)
    let next_decision () =
      let half =
        Array.to_list st.cone_pis
        |> List.find_opt (fun pi ->
               Bit.is_definite st.a1.(pi) <> Bit.is_definite st.a3.(pi))
      in
      match half with
      | Some pi ->
        if Bit.is_definite st.a1.(pi) then
          let b = Bit.equal st.a1.(pi) Bit.One in
          Some (pi, 3, [ b; not b ])
        else
          let b = Bit.equal st.a3.(pi) Bit.One in
          Some (pi, 1, [ b; not b ])
      | None ->
        Array.to_list st.cone_pis
        |> List.find_map (fun pi ->
               if Bit.equal st.a1.(pi) Bit.X then Some (pi, 1, [ false; true ])
               else if Bit.equal st.a3.(pi) Bit.X then
                 Some (pi, 3, [ false; true ])
               else None)
    in
    let build_deterministic_test () =
      let m = st.c.Circuit.num_pis in
      let v1 = Array.make m false and v3 = Array.make m false in
      Array.iter
        (fun pi ->
          (match Bit.to_bool st.a1.(pi) with
          | Some b -> v1.(pi) <- b
          | None -> assert false);
          match Bit.to_bool st.a3.(pi) with
          | Some b -> v3.(pi) <- b
          | None -> assert false)
        st.cone_pis;
      Test_pair.create v1 v3
    in
    (* DFS: returns Some test on success, None when this subtree is
       refuted. *)
    let rec solve depth =
      match
        (try
           necessary_values engine st;
           `Ok
         with No_test -> `Conflict)
      with
      | `Conflict -> None
      | `Ok -> (
        if st.unspecified = 0 then
          if satisfied_now st then Some (build_deterministic_test ())
          else None
        else
          match next_decision () with
          | None -> None
          | Some (pi, j, values) ->
            let saved = snapshot () in
            let rec try_values = function
              | [] -> None
              | b :: rest -> (
                match
                  (try
                     assign st pi j b;
                     `Ok
                   with No_test -> `Conflict)
                with
                | `Conflict ->
                  spend depth;
                  restore saved;
                  try_values rest
                | `Ok -> (
                  match solve (depth + 1) with
                  | Some test -> Some test
                  | None ->
                    spend depth;
                    restore saved;
                    try_values rest))
            in
            try_values values)
    in
    let outcome =
      try
        resim st;
        if conflict_now st then begin
          Metrics.incr m_conflicts;
          Proved_unsatisfiable
        end
        else
          match solve 0 with
          | Some test -> Found test
          | None ->
            Metrics.incr m_conflicts;
            Proved_unsatisfiable
      with Budget_exhausted -> Gave_up
    in
    record_search st;
    outcome)

let run engine ~rng ~reqs =
  Span.with_ "justify" @@ fun () ->
  Metrics.incr m_runs;
  engine.e_runs <- engine.e_runs + 1;
  let c = engine.circuit in
  match merge_reqs reqs with
  | None ->
    Metrics.incr m_conflicts;
    None
  | Some [] ->
    Some
      (Test_pair.create
         (random_pattern rng c.Circuit.num_pis)
         (random_pattern rng c.Circuit.num_pis))
  | Some merged ->
    let st = make_search c rng merged in
    let result =
      try
        resim st;
        if conflict_now st then raise No_test;
        while st.unspecified > 0 do
          necessary_values engine st;
          if st.unspecified > 0 then decide st
        done;
        if satisfied_now st then Some (build_test st) else None
      with No_test -> None
    in
    record_search st;
    if result = None then Metrics.incr m_conflicts;
    result
