module Req = Pdf_values.Req
module Word = Pdf_values.Word
module Fault = Pdf_faults.Fault
module Robust = Pdf_faults.Robust
module Target_sets = Pdf_faults.Target_sets
module Circuit = Pdf_circuit.Circuit
module Wsim = Pdf_bitsim.Wsim
module Wreq = Pdf_bitsim.Wreq
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span

let m_simulations = Metrics.counter "fault_sim.simulations"
let m_detections = Metrics.counter "fault_sim.detections"
let m_word_batches = Metrics.counter "fault_sim.word_batches"
let m_lanes_used = Metrics.counter "fault_sim.lanes_used"
let g_prepared = Metrics.gauge "fault_sim.prepared"

(* ------------------------------------------------------------------ *)
(* Packed-path switch                                                  *)
(* ------------------------------------------------------------------ *)

let packed_state =
  Atomic.make
    (match Sys.getenv_opt "PDF_BITSIM" with
    | Some ("0" | "false" | "no" | "off") -> false
    | Some _ | None -> true)

let set_packed b = Atomic.set packed_state b

let packed_enabled () = Atomic.get packed_state

(* ------------------------------------------------------------------ *)
(* Condition cache                                                     *)
(* ------------------------------------------------------------------ *)

(* [Robust.conditions] is pure in (circuit, criterion, fault) and is
   recomputed for the same faults by every experiment phase (prepare,
   weak dictionaries, ablations), so results are memoised here.  Caches
   are keyed per circuit by physical identity and bounded; the inner
   table is keyed structurally (faults are plain ints/variants/arrays).
   The lock makes the cache safe from pool domains; the conditions
   themselves are computed outside the lock, so a rare duplicate
   computation is possible but harmless. *)
let cond_lock = Mutex.create ()

let cond_caches :
    (Circuit.t
    * (Robust.criterion * Fault.t, (int * Req.t) list option) Hashtbl.t)
    list
    ref =
  ref []

let max_cond_circuits = 8

let with_cond_lock f =
  Mutex.lock cond_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cond_lock) f

let conditions ?(criterion = Robust.Robust) c fault =
  let tbl =
    with_cond_lock (fun () ->
        match List.find_opt (fun (c', _) -> c' == c) !cond_caches with
        | Some (_, tbl) -> tbl
        | None ->
          let tbl = Hashtbl.create 1024 in
          let kept =
            List.filteri
              (fun i _ -> i < max_cond_circuits - 1)
              !cond_caches
          in
          cond_caches := (c, tbl) :: kept;
          tbl)
  in
  let key = (criterion, fault) in
  match with_cond_lock (fun () -> Hashtbl.find_opt tbl key) with
  | Some r -> r
  | None ->
    let r = Robust.conditions ~criterion c fault in
    with_cond_lock (fun () ->
        if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key r);
    r

(* ------------------------------------------------------------------ *)
(* Preparation and scalar detection                                    *)
(* ------------------------------------------------------------------ *)

type prepared = {
  id : int;
  fault : Fault.t;
  length : int;
  reqs : (int * Req.t) list;
}

let prepare ?(criterion = Robust.Robust) c entries =
  Span.with_ "prepare" @@ fun () ->
  let prepared =
    List.filter_map
      (fun (e : Target_sets.entry) ->
        match conditions ~criterion c e.Target_sets.fault with
        | Some reqs ->
          Some (fun id ->
              { id; fault = e.Target_sets.fault; length = e.Target_sets.length;
                reqs })
        | None -> None)
      entries
  in
  let a = Array.of_list (List.mapi (fun id make -> make id) prepared) in
  Metrics.set_int g_prepared (Array.length a);
  a

let detects_values values p =
  List.for_all (fun (net, req) -> Req.satisfied_by values.(net) req) p.reqs

let detected_by_test c test faults =
  Span.with_ "fault-sim" @@ fun () ->
  Metrics.incr m_simulations;
  let values = Test_pair.simulate c test in
  Array.map
    (fun p ->
      let d = detects_values values p in
      if d then Metrics.incr m_detections;
      d)
    faults

let count detected =
  Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected

(* ------------------------------------------------------------------ *)
(* Packed (word-parallel) detection                                    *)
(* ------------------------------------------------------------------ *)

(* Pack tests [lo .. hi-1] into per-PI dual-rail words, one lane per
   test.  Test pairs are fully specified, so every lane is definite. *)
let pack_batch c (tests : Test_pair.t array) (lo, hi) =
  let lanes = hi - lo in
  let np = c.Circuit.num_pis in
  let z1 = Array.make np 0 and o1 = Array.make np 0 in
  let z3 = Array.make np 0 and o3 = Array.make np 0 in
  for l = 0 to lanes - 1 do
    let t = tests.(lo + l) in
    let b = 1 lsl l in
    for pi = 0 to np - 1 do
      if t.Test_pair.v1.(pi) then o1.(pi) <- o1.(pi) lor b
      else z1.(pi) <- z1.(pi) lor b;
      if t.Test_pair.v3.(pi) then o3.(pi) <- o3.(pi) lor b
      else z3.(pi) <- z3.(pi) lor b
    done
  done;
  let w1 = Array.init np (fun pi -> { Word.zero = z1.(pi); one = o1.(pi) }) in
  let w3 = Array.init np (fun pi -> { Word.zero = z3.(pi); one = o3.(pi) }) in
  (w1, w3, lanes)

(* Simulate one packed batch, full-pass or event-driven.  A fresh
   incremental state per batch keeps the planes and the per-batch stats
   independent of which domain ran the batch; the stats travel back with
   the result and are folded into the sim.inc.* metrics centrally, in
   fixed batch order, so the metrics stay jobs-invariant. *)
let sim_batch ?attrib c ~w1 ~w3 ~lanes =
  if Wsim.incsim_enabled () then begin
    (* One attribution sheet per batch, merged immediately: merging is
       commutative integer addition under the store's lock, so the
       merged totals are identical whichever domain ran the batch and
       in whatever order batches finish. *)
    let sheet = Option.map Pdf_obs.Attrib.fresh attrib in
    let inc = Wsim.Inc.create ?attrib:sheet c ~lanes in
    Wsim.Inc.assign inc ~w1 ~w3;
    (match attrib, sheet with
    | Some store, Some sh -> Pdf_obs.Attrib.merge store sh
    | _ -> ());
    (Wsim.Inc.planes inc, Some (Wsim.Inc.stats inc))
  end
  else (Wsim.simulate c ~w1 ~w3 ~lanes, None)

let record_batch_stats c parts =
  Array.iter
    (fun (_, st) ->
      Option.iter (Wsim.record_inc ~num_gates:(Circuit.num_gates c)) st)
    parts

(* Word-parallel scan over one batch, metrics-free: the caller accounts
   centrally so totals are identical to the scalar path and independent
   of how batches are distributed over domains. *)
let detect_batch ?attrib c tests faults bound =
  let w1, w3, lanes = pack_batch c tests bound in
  let planes, inc_stats = sim_batch ?attrib c ~w1 ~w3 ~lanes in
  let detected = Array.make (Array.length faults) false in
  Array.iteri
    (fun i p ->
      if Wreq.satisfied_mask planes p.reqs <> 0 then detected.(i) <- true)
    faults;
  (detected, inc_stats)

(* Sequential scalar scan over [tests.(lo .. hi-1)], metrics-free (the
   jobs-independent reference for the packed path). *)
let detect_chunk c tests faults (lo, hi) =
  let detected = Array.make (Array.length faults) false in
  for t = lo to hi - 1 do
    let values = Test_pair.simulate c tests.(t) in
    Array.iteri
      (fun i p ->
        if (not detected.(i)) && detects_values values p then
          detected.(i) <- true)
      faults
  done;
  detected

let or_merge nf partials =
  let detected = Array.make nf false in
  Array.iter
    (fun part ->
      Array.iteri (fun i d -> if d then detected.(i) <- true) part)
    partials;
  detected

let detected_by_tests ?pool ?attrib c tests faults =
  Span.with_ "fault-sim" @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Pdf_par.Pool.default ()
  in
  let jobs = Pdf_par.Pool.jobs pool in
  let n_tests = List.length tests in
  if packed_enabled () && n_tests >= Word.lanes then begin
    (* Word batches at fixed multiples of [Word.lanes], distributed over
       the pool and OR-merged: flags, detection counts and the batch/lane
       counters are all identical whatever the job count. *)
    let tests = Array.of_list tests in
    let bounds = Wsim.batch_bounds n_tests in
    let partials =
      Pdf_par.Pool.map_array pool (detect_batch ?attrib c tests faults) bounds
    in
    record_batch_stats c partials;
    let detected = or_merge (Array.length faults) (Array.map fst partials) in
    Metrics.add m_simulations n_tests;
    Metrics.add m_word_batches (Array.length bounds);
    Metrics.add m_lanes_used n_tests;
    Metrics.add m_detections (count detected);
    detected
  end
  else if jobs = 1 || n_tests < 2 then begin
    let detected = Array.make (Array.length faults) false in
    List.iter
      (fun test ->
        Metrics.incr m_simulations;
        let values = Test_pair.simulate c test in
        Array.iteri
          (fun i p ->
            if (not detected.(i)) && detects_values values p then begin
              detected.(i) <- true;
              Metrics.incr m_detections
            end)
          faults)
      tests;
    detected
  end
  else begin
    (* Contiguous chunks, one per domain; OR is commutative so the merge
       order cannot affect the result, and the merged flags are
       bit-identical to the sequential scan. *)
    let tests = Array.of_list tests in
    let chunks = min jobs n_tests in
    let bounds =
      Array.init chunks (fun k ->
          (k * n_tests / chunks, (k + 1) * n_tests / chunks))
    in
    let partials =
      Pdf_par.Pool.map_array pool (detect_chunk c tests faults) bounds
    in
    let detected = or_merge (Array.length faults) partials in
    Metrics.add m_simulations n_tests;
    Metrics.add m_detections (count detected);
    detected
  end

(* ------------------------------------------------------------------ *)
(* Full detection matrix                                               *)
(* ------------------------------------------------------------------ *)

(* One word batch of matrix rows: simulate once, then scatter each
   fault's satisfaction mask into the per-test rows. *)
let matrix_batch ?attrib c tests faults (lo, hi) =
  let w1, w3, lanes = pack_batch c tests (lo, hi) in
  let planes, inc_stats = sim_batch ?attrib c ~w1 ~w3 ~lanes in
  let nf = Array.length faults in
  let rows = Array.init lanes (fun _ -> Array.make nf false) in
  Array.iteri
    (fun i p ->
      let m = Wreq.satisfied_mask planes p.reqs in
      if m <> 0 then
        for l = 0 to lanes - 1 do
          if m land (1 lsl l) <> 0 then rows.(l).(i) <- true
        done)
    faults;
  (rows, inc_stats)

let matrix_row c faults test =
  let values = Test_pair.simulate c test in
  Array.map (fun p -> detects_values values p) faults

let detect_matrix ?pool ?attrib c tests faults =
  Span.with_ "fault-sim" @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Pdf_par.Pool.default ()
  in
  let n_tests = List.length tests in
  let tests = Array.of_list tests in
  let rows =
    if packed_enabled () && n_tests >= Word.lanes then begin
      let bounds = Wsim.batch_bounds n_tests in
      let parts =
        Pdf_par.Pool.map_array pool (matrix_batch ?attrib c tests faults) bounds
      in
      record_batch_stats c parts;
      Metrics.add m_word_batches (Array.length bounds);
      Metrics.add m_lanes_used n_tests;
      Array.concat (Array.to_list (Array.map fst parts))
    end
    else Pdf_par.Pool.map_array pool (matrix_row c faults) tests
  in
  Metrics.add m_simulations n_tests;
  Metrics.add m_detections
    (Array.fold_left (fun acc row -> acc + count row) 0 rows);
  rows
