module Req = Pdf_values.Req
module Fault = Pdf_faults.Fault
module Robust = Pdf_faults.Robust
module Target_sets = Pdf_faults.Target_sets
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span

let m_simulations = Metrics.counter "fault_sim.simulations"
let m_detections = Metrics.counter "fault_sim.detections"
let g_prepared = Metrics.gauge "fault_sim.prepared"

type prepared = {
  id : int;
  fault : Fault.t;
  length : int;
  reqs : (int * Req.t) list;
}

let prepare ?(criterion = Robust.Robust) c entries =
  Span.with_ "prepare" @@ fun () ->
  let prepared =
    List.filter_map
      (fun (e : Target_sets.entry) ->
        match Robust.conditions ~criterion c e.Target_sets.fault with
        | Some reqs ->
          Some (fun id ->
              { id; fault = e.Target_sets.fault; length = e.Target_sets.length;
                reqs })
        | None -> None)
      entries
  in
  let a = Array.of_list (List.mapi (fun id make -> make id) prepared) in
  Metrics.set_int g_prepared (Array.length a);
  a

let detects_values values p =
  List.for_all (fun (net, req) -> Req.satisfied_by values.(net) req) p.reqs

let detected_by_test c test faults =
  Span.with_ "fault-sim" @@ fun () ->
  Metrics.incr m_simulations;
  let values = Test_pair.simulate c test in
  Array.map
    (fun p ->
      let d = detects_values values p in
      if d then Metrics.incr m_detections;
      d)
    faults

let count detected =
  Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 detected

(* Sequential scan over [tests.(lo .. hi-1)], metrics-free: the caller
   accounts for simulations and detections so parallel chunks add up to
   exactly the sequential totals. *)
let detect_chunk c tests faults (lo, hi) =
  let detected = Array.make (Array.length faults) false in
  for t = lo to hi - 1 do
    let values = Test_pair.simulate c tests.(t) in
    Array.iteri
      (fun i p ->
        if (not detected.(i)) && detects_values values p then
          detected.(i) <- true)
      faults
  done;
  detected

let detected_by_tests ?pool c tests faults =
  Span.with_ "fault-sim" @@ fun () ->
  let pool =
    match pool with Some p -> p | None -> Pdf_par.Pool.default ()
  in
  let jobs = Pdf_par.Pool.jobs pool in
  let n_tests = List.length tests in
  if jobs = 1 || n_tests < 2 then begin
    let detected = Array.make (Array.length faults) false in
    List.iter
      (fun test ->
        Metrics.incr m_simulations;
        let values = Test_pair.simulate c test in
        Array.iteri
          (fun i p ->
            if (not detected.(i)) && detects_values values p then begin
              detected.(i) <- true;
              Metrics.incr m_detections
            end)
          faults)
      tests;
    detected
  end
  else begin
    (* Contiguous chunks, one per domain; OR is commutative so the merge
       order cannot affect the result, and the merged flags are
       bit-identical to the sequential scan. *)
    let tests = Array.of_list tests in
    let chunks = min jobs n_tests in
    let bounds =
      Array.init chunks (fun k ->
          (k * n_tests / chunks, (k + 1) * n_tests / chunks))
    in
    let partials =
      Pdf_par.Pool.map_array pool (detect_chunk c tests faults) bounds
    in
    let detected = Array.make (Array.length faults) false in
    Array.iter
      (fun part ->
        Array.iteri (fun i d -> if d then detected.(i) <- true) part)
      partials;
    Metrics.add m_simulations n_tests;
    Metrics.add m_detections (count detected);
    detected
  end
