module Bit = Pdf_values.Bit
module Circuit = Pdf_circuit.Circuit
module Logic_sim = Pdf_sim.Logic_sim
module Two_pattern = Pdf_sim.Two_pattern
module Wsim = Pdf_bitsim.Wsim

(* Scalar counterpart of {!Wsim.Inc} (DESIGN.md §13): the same
   dirty-bucket worklist over {!Circuit.level_gates}, but over a
   caller-owned [Bit.t array array] of three components, so the justify
   engine's persistent cone state and Atpg's per-test values can be
   maintained in place instead of re-simulated from scratch.  Shares the
   stats record and the sim.inc.* accounting with the packed engine. *)

type t = {
  c : Circuit.t;
  s : Bit.t array array; (* caller's 3 x nets, aliased *)
  mask : bool array; (* gates the propagation may enter *)
  l1 : Bit.t array; (* remembered per-PI assignments, for diffing *)
  l3 : Bit.t array;
  bucket : int array array;
  blen : int array;
  queued : bool array;
  st : Wsim.Inc.stats;
  att : Pdf_obs.Attrib.sheet option;
  mutable lo : int;
  mutable hi : int;
}

let create ?attrib ?gate_mask c ~s =
  let n = Circuit.num_nets c in
  let ng = Circuit.num_gates c in
  let np = c.Circuit.num_pis in
  if Array.length s <> 3 || Array.exists (fun p -> Array.length p <> n) s then
    invalid_arg "Inc_sim.create: state must be 3 x num_nets";
  let mask =
    match gate_mask with
    | None -> Array.make ng true
    | Some m ->
      if Array.length m <> ng then
        invalid_arg "Inc_sim.create: gate mask length mismatch";
      Array.copy m
  in
  let lg = Circuit.level_gates c in
  {
    c;
    s;
    mask;
    l1 = Array.make np Bit.X;
    l3 = Array.make np Bit.X;
    bucket = Array.map (fun b -> Array.make (Array.length b) 0) lg;
    blen = Array.make (Array.length lg) 0;
    queued = Array.make ng false;
    st = { Wsim.Inc.assigns = 0; resim_gates = 0; early_stops = 0 };
    att = attrib;
    lo = max_int;
    hi = -1;
  }

let stats t =
  {
    Wsim.Inc.assigns = t.st.Wsim.Inc.assigns;
    resim_gates = t.st.Wsim.Inc.resim_gates;
    early_stops = t.st.Wsim.Inc.early_stops;
  }

let reset_stats t =
  t.st.Wsim.Inc.assigns <- 0;
  t.st.Wsim.Inc.resim_gates <- 0;
  t.st.Wsim.Inc.early_stops <- 0

let enqueue t gi =
  if t.mask.(gi) && not t.queued.(gi) then begin
    t.queued.(gi) <- true;
    let l = t.c.Circuit.level.(t.c.Circuit.num_pis + gi) in
    t.bucket.(l).(t.blen.(l)) <- gi;
    t.blen.(l) <- t.blen.(l) + 1;
    if l < t.lo then t.lo <- l;
    if l > t.hi then t.hi <- l
  end

let dirty_net t net =
  let fo = t.c.Circuit.fanouts.(net) in
  for i = 0 to Array.length fo - 1 do
    let g, _pin = fo.(i) in
    enqueue t g
  done

let set_pi t pi ~v1 ~v3 =
  if not (Bit.equal v1 t.l1.(pi) && Bit.equal v3 t.l3.(pi)) then begin
    t.l1.(pi) <- v1;
    t.l3.(pi) <- v3;
    t.s.(0).(pi) <- v1;
    t.s.(2).(pi) <- v3;
    t.s.(1).(pi) <- Two_pattern.middle_of_pair v1 v3;
    dirty_net t pi
  end

let propagate t =
  t.st.Wsim.Inc.assigns <- t.st.Wsim.Inc.assigns + 1;
  let l = ref t.lo in
  while !l <= t.hi do
    let b = t.bucket.(!l) and n = t.blen.(!l) in
    t.blen.(!l) <- 0;
    for i = 0 to n - 1 do
      let gi = b.(i) in
      t.queued.(gi) <- false;
      let g = t.c.Circuit.gates.(gi) in
      let out = t.c.Circuit.num_pis + gi in
      t.st.Wsim.Inc.resim_gates <- t.st.Wsim.Inc.resim_gates + 1;
      (match t.att with
      | Some a ->
        a.Pdf_obs.Attrib.inc_resims.(out) <-
          a.Pdf_obs.Attrib.inc_resims.(out) + 1;
        a.Pdf_obs.Attrib.t_inc_resims <- a.Pdf_obs.Attrib.t_inc_resims + 1
      | None -> ());
      let changed = ref false in
      for k = 0 to 2 do
        let sk = t.s.(k) in
        let v = Logic_sim.eval_gate_get g (fun net -> sk.(net)) in
        if not (Bit.equal v sk.(out)) then begin
          changed := true;
          sk.(out) <- v
        end
      done;
      if !changed then dirty_net t out
      else t.st.Wsim.Inc.early_stops <- t.st.Wsim.Inc.early_stops + 1
    done;
    incr l
  done;
  t.lo <- max_int;
  t.hi <- -1

let record = Wsim.record_inc
