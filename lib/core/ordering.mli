(** Compaction heuristics for primary/secondary target-fault selection
    (paper, Section 2.2). *)

type t =
  | Uncompacted
      (** one test per primary target fault, no secondary targets *)
  | Arbitrary  (** fault-list order for primaries and secondaries *)
  | Length_based
      (** longest-path-first for primaries and secondaries *)
  | Value_based
      (** longest-path-first primaries; secondaries minimise the number of
          new required values [n_Delta] *)

val name : t -> string
(** The paper's column labels: ["uncomp"], ["arbit"], ["length"],
    ["values"]. *)

val of_name : string -> t option
(** Inverse of {!name}; also accepts the long spellings
    ["uncompacted"], ["arbitrary"], ["length-based"], ["value-based"].
    [None] on anything else. *)

val all : t list
(** In the paper's column order. *)
