(** Test generation with primary and secondary target faults
    (paper, Sections 2.2 and 3.2).

    The engine is generic over one pool of primary target faults and an
    ordered list of secondary pools.  Each test starts from a primary
    target; secondary candidates are then scanned pool by pool — a
    candidate joins the test's fault set [P(t)] when a test detecting all
    of [P(t)] plus the candidate can be (re-)justified.  A candidate is
    accepted for free when the current test already detects it; it is
    rejected without search when its conditions conflict directly with
    the accumulated requirements.  After each test, fault simulation drops
    every fault the test detects accidentally.

    - The {e basic} procedure of the paper uses a single set [P0] for both
      roles (or no secondary pool at all for the uncompacted baseline).
    - The {e enrichment} procedure uses primaries from [P0] and secondary
      pools [P0] then [P1]: [P1] faults are only targeted with values left
      over after [P0], so the test count is fixed by [P0] alone. *)

(** Per-run configuration: which compaction heuristic orders the targets
    and the seed all of the run's randomness derives from.  Two runs with
    the same configuration and fault set produce identical results — the
    run never reads shared mutable state, so runs with different
    configurations may execute concurrently on separate domains (see
    DESIGN.md, "Architecture & concurrency model"). *)
type config = {
  ordering : Ordering.t;  (** target-ordering heuristic *)
  seed : int;  (** seeds the run's private RNG *)
}

(** Outcome of one generation run. *)
type result = {
  tests : Test_pair.t list;  (** in generation order *)
  detected : bool array;  (** over all prepared fault ids *)
  primary_aborts : int;
      (** primaries for which justification found no test *)
  justification_runs : int;
      (** justification searches this run performed (per-engine count) *)
  justification_trials : int;
      (** trial simulations this run performed (per-engine count) *)
  runtime_s : float;
      (** wall-clock seconds of this run only — meaningful even when
          several runs execute concurrently *)
}

val generate :
  ?ledger:Pdf_obs.Ledger.t ->
  ?attrib:Pdf_obs.Attrib.t ->
  ?justify:Justify.kind ->
  Pdf_circuit.Circuit.t ->
  config ->
  faults:Fault_sim.prepared array ->
  primaries:int list ->
  secondary_pools:int list list ->
  result
(** Fault ids in [primaries] and the pools index into [faults].

    [justify] selects the justification backend (DESIGN.md §15),
    defaulting to {!Justify.default_kind} (the [PDF_JUSTIFY]
    environment variable, else the paper's simulation-based search).
    The run record names the backend in a ["justify"] field, and every
    test / detected-fault record carries the ["engine"] member label
    that produced the winning assignment.

    When [ledger] is given the run appends provenance records
    (DESIGN.md §9): one ["run"] header, one ["test"] record per
    generated test (primary fault, secondary faults folded with their
    fold step and whether each came for free or needed justification,
    and the test's justification effort), and one ["fault"] record per
    prepared fault with its disposition — [detected] (by which test and
    via [primary]/[folded]/[accidental]), [aborted] (targeted as a
    primary, justification found no test) or [uncovered] (with the last
    rejection reason) — plus its accumulated justification [effort]
    (runs, trials, backtracks, semantic resim-gate total over every
    search that targeted it) and, when any targeted attempt hit a
    requirement conflict, a [last_conflict] object naming the blamed
    net, its level and the deepest conflict level reached (abort
    forensics, DESIGN.md §14).  Records carry no timestamps and are
    appended by the sequential generation loop only, so the ledger
    JSONL is byte-identical across [--jobs] values and the
    scalar/packed simulation engines.

    When [attrib] is given the run charges per-net effort — justify
    trial loop, incremental refreshes, candidate delta scans — to a
    fresh {!Pdf_obs.Attrib} sheet, merged into the store once at the
    end of the run. *)

val basic :
  ?ledger:Pdf_obs.Ledger.t ->
  ?attrib:Pdf_obs.Attrib.t ->
  ?justify:Justify.kind ->
  Pdf_circuit.Circuit.t ->
  config ->
  faults:Fault_sim.prepared array ->
  result
(** Single-set procedure over all of [faults]; {!Ordering.Uncompacted}
    uses no secondary pool. *)

val enrich :
  ?ledger:Pdf_obs.Ledger.t ->
  ?attrib:Pdf_obs.Attrib.t ->
  ?justify:Justify.kind ->
  Pdf_circuit.Circuit.t ->
  seed:int ->
  faults:Fault_sim.prepared array ->
  p0:int list ->
  p1:int list ->
  result
(** The proposed enrichment procedure (value-based ordering, as selected
    in the paper). *)

val enrich_multi :
  ?ledger:Pdf_obs.Ledger.t ->
  ?attrib:Pdf_obs.Attrib.t ->
  ?justify:Justify.kind ->
  Pdf_circuit.Circuit.t ->
  seed:int ->
  faults:Fault_sim.prepared array ->
  pools:int list list ->
  result
(** Enrichment with more than two target sets (paper, end of Sec. 3.1):
    primaries come from the first pool only; secondary candidates are
    scanned pool by pool in the given order, so later pools only consume
    the flexibility left by earlier ones.  [enrich] is the two-pool
    special case.  Raises [Invalid_argument] on an empty pool list. *)

val count_detected : result -> ids:int list -> int
(** Detected faults within an id subset (e.g. only [P1]). *)
