module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Word = Pdf_values.Word
module Req = Pdf_values.Req
module Circuit = Pdf_circuit.Circuit
module Two_pattern = Pdf_sim.Two_pattern
module Wsim = Pdf_bitsim.Wsim
module Fault = Pdf_faults.Fault
module Target_sets = Pdf_faults.Target_sets
module Delay_model = Pdf_paths.Delay_model
module Fault_sim = Pdf_core.Fault_sim
module Inc_sim = Pdf_core.Inc_sim
module Test_pair = Pdf_core.Test_pair
module Atpg = Pdf_core.Atpg
module Justify = Pdf_core.Justify
module Podem = Pdf_core.Podem
module Timing = Pdf_core.Timing
module Ordering = Pdf_core.Ordering
module Ledger = Pdf_obs.Ledger
module Pool = Pdf_par.Pool
module Rng = Pdf_util.Rng

type ctx = { circuit : Circuit.t; seed : int }

type outcome = Pass | Fail of string | Skip of string

type t = { name : string; doc : string; check : ctx -> outcome }

(* ------------------------------------------------------------------ *)
(* Shared reference oracles                                             *)
(* ------------------------------------------------------------------ *)

let max_brute_force_pis = 10

let brute_force c reqs =
  let n = c.Circuit.num_pis in
  if n > max_brute_force_pis then
    invalid_arg
      (Printf.sprintf "Oracle.brute_force: %d PIs exceeds the %d-PI cap" n
         max_brute_force_pis);
  let bits v =
    let a = Array.make n false in
    for i = 0 to n - 1 do
      a.(i) <- v land (1 lsl i) <> 0
    done;
    a
  in
  let limit = 1 lsl n in
  let found = ref None in
  let v1 = ref 0 in
  while !found = None && !v1 < limit do
    let b1 = bits !v1 in
    let v3 = ref 0 in
    while !found = None && !v3 < limit do
      let t = Test_pair.create b1 (bits !v3) in
      if Test_pair.satisfies c t reqs then found := Some t;
      incr v3
    done;
    incr v1
  done;
  !found

let brute_force_satisfiable c reqs = Option.is_some (brute_force c reqs)

(* ------------------------------------------------------------------ *)
(* Helpers                                                              *)
(* ------------------------------------------------------------------ *)

let with_packed enabled f =
  let saved = Fault_sim.packed_enabled () in
  Fault_sim.set_packed enabled;
  Fun.protect ~finally:(fun () -> Fault_sim.set_packed saved) f

let with_default_jobs jobs f =
  let saved = Pool.default_jobs () in
  Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs saved) f

let random_pattern rng n =
  let a = Array.make n false in
  for i = 0 to n - 1 do
    a.(i) <- Rng.bool rng
  done;
  a

let random_tests rng c n =
  let pis = c.Circuit.num_pis in
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      let v1 = random_pattern rng pis in
      let v3 = random_pattern rng pis in
      go (Test_pair.create v1 v3 :: acc) (k - 1)
  in
  go [] n

(* Small target sets keep every oracle subsecond on the generator grid
   while still exercising multi-pool enrichment.  The budget must reach
   well past the longest paths: in deep reconvergent circuits those are
   mostly robustly untestable, and a tight budget would leave every
   fault-based oracle with an empty pool (a permanent Skip). *)
let target_faults c =
  let model = Delay_model.lines c in
  let ts = Target_sets.build c model ~n_p:240 ~n_p0:40 in
  let faults = Fault_sim.prepare c ts.Target_sets.p in
  (model, ts, faults)

let describe_test c t = Printf.sprintf "%s on %s" (Test_pair.to_string t) c.Circuit.name

let bool_arrays_diff a b =
  if Array.length a <> Array.length b then Some (-1)
  else
    let d = ref None in
    Array.iteri (fun i x -> if !d = None && x <> b.(i) then d := Some i) a;
    !d

(* ------------------------------------------------------------------ *)
(* packed-sim: Wsim vs Two_pattern, lane for lane                       *)
(* ------------------------------------------------------------------ *)

let check_packed_sim { circuit = c; seed } =
  let rng = Rng.create seed in
  let n = c.Circuit.num_pis in
  let lanes = Word.lanes in
  (* Roughly one lane in five carries an X on each pattern bit, so both
     polarities of partially specified tests are exercised. *)
  let rand_bit () =
    if Rng.int rng 5 = 0 then Bit.X
    else if Rng.bool rng then Bit.One
    else Bit.Zero
  in
  let b1 = Array.init n (fun _ -> Array.make lanes Bit.X) in
  let b3 = Array.init n (fun _ -> Array.make lanes Bit.X) in
  for pi = 0 to n - 1 do
    for l = 0 to lanes - 1 do
      b1.(pi).(l) <- rand_bit ();
      b3.(pi).(l) <- rand_bit ()
    done
  done;
  let w1 = Array.map Word.of_bits b1 in
  let w3 = Array.map Word.of_bits b3 in
  let planes = Wsim.simulate c ~w1 ~w3 ~lanes in
  let violation = ref None in
  for l = 0 to lanes - 1 do
    if !violation = None then begin
      let pairs =
        Array.init n (fun pi ->
            { Two_pattern.b1 = b1.(pi).(l); b3 = b3.(pi).(l) })
      in
      let scalar = Two_pattern.simulate c pairs in
      for net = 0 to Circuit.num_nets c - 1 do
        if !violation = None then begin
          let packed = Wsim.triple planes ~net ~lane:l in
          if not (Triple.equal scalar.(net) packed) then
            violation :=
              Some
                (Printf.sprintf
                   "packed simulation diverges on %s: net %s lane %d: \
                    scalar %s, packed %s"
                   c.Circuit.name (Circuit.net_name c net) l
                   (Triple.to_string scalar.(net))
                   (Triple.to_string packed))
        end
      done
    end
  done;
  match !violation with Some m -> Fail m | None -> Pass

(* ------------------------------------------------------------------ *)
(* inc-sim: incremental engines vs the full-pass references             *)
(* ------------------------------------------------------------------ *)

(* A randomized flip sequence over persistent incremental state: step 0
   installs fresh random words on every PI, one step is a zero-flip
   no-op [assign], and each remaining step flips a few random PIs (first
   pattern only, second pattern only, or both — with X lanes at the
   usual one-in-five rate).  After every step the packed [Wsim.Inc]
   planes must be word-identical to a from-scratch full pass over the
   same words, and the scalar [Inc_sim] state must agree with the
   scalar reference on lane 0.  This is the oracle that catches the
   [Wsim.set_inc_injected_bug] mutation (a w3-only flip dropped on the
   incremental path) — the harness's self-test for incremental-path
   divergence. *)
let inc_sim_steps = 8

let check_inc_sim { circuit = c; seed } =
  let rng = Rng.create seed in
  let n = c.Circuit.num_pis in
  let lanes = Word.lanes in
  let rand_bit () =
    if Rng.int rng 5 = 0 then Bit.X
    else if Rng.bool rng then Bit.One
    else Bit.Zero
  in
  let rand_word () = Word.of_bits (Array.init lanes (fun _ -> rand_bit ())) in
  let w1 = Array.init n (fun _ -> rand_word ()) in
  let w3 = Array.init n (fun _ -> rand_word ()) in
  let inc = Wsim.Inc.create c ~lanes in
  let s = Array.init 3 (fun _ -> Array.make (Circuit.num_nets c) Bit.X) in
  let sinc = Inc_sim.create c ~s in
  let violation = ref None in
  let check_packed step =
    let full = Wsim.simulate c ~w1 ~w3 ~lanes in
    for net = 0 to Circuit.num_nets c - 1 do
      for comp = 0 to 2 do
        if
          !violation = None
          && not
               (Word.equal
                  (Wsim.word (Wsim.Inc.planes inc) ~comp ~net)
                  (Wsim.word full ~comp ~net))
        then
          violation :=
            Some
              (Printf.sprintf
                 "incremental packed simulation diverges from the full pass \
                  on %s: step %d, net %s, component %d"
                 c.Circuit.name step (Circuit.net_name c net) comp)
      done
    done
  in
  let check_scalar step =
    let pairs =
      Array.init n (fun pi ->
          { Two_pattern.b1 = Word.get w1.(pi) 0; b3 = Word.get w3.(pi) 0 })
    in
    let scalar = Two_pattern.simulate c pairs in
    for net = 0 to Circuit.num_nets c - 1 do
      if
        !violation = None
        && not
             (Triple.equal scalar.(net)
                (Triple.make s.(0).(net) s.(1).(net) s.(2).(net)))
      then
        violation :=
          Some
            (Printf.sprintf
               "incremental scalar simulation diverges from the reference \
                on %s: step %d, net %s"
               c.Circuit.name step (Circuit.net_name c net))
    done
  in
  for step = 0 to inc_sim_steps - 1 do
    if !violation = None then begin
      (* Step 0 touches every PI (fresh words are already installed);
         step 1 flips nothing — the no-op assign must also converge. *)
      if step >= 2 then begin
        let flips = 1 + Rng.int rng 3 in
        for _ = 1 to flips do
          let pi = Rng.int rng n in
          match Rng.int rng 3 with
          | 0 -> w1.(pi) <- rand_word ()
          | 1 -> w3.(pi) <- rand_word ()
          | _ ->
            w1.(pi) <- rand_word ();
            w3.(pi) <- rand_word ()
        done
      end;
      Wsim.Inc.assign inc ~w1 ~w3;
      check_packed step;
      if !violation = None then begin
        for pi = 0 to n - 1 do
          Inc_sim.set_pi sinc pi ~v1:(Word.get w1.(pi) 0)
            ~v3:(Word.get w3.(pi) 0)
        done;
        Inc_sim.propagate sinc;
        check_scalar step
      end
    end
  done;
  match !violation with Some m -> Fail m | None -> Pass

(* ------------------------------------------------------------------ *)
(* packed-detect / packed-matrix: Fault_sim packed vs scalar            *)
(* ------------------------------------------------------------------ *)

(* 70 tests crosses the 63-lane threshold, so the packed run really
   takes the word-batched path (plus a 7-test scalar tail). *)
let n_detect_tests = 70

let check_packed_detect { circuit = c; seed } =
  let _, _, faults = target_faults c in
  if Array.length faults = 0 then Skip "no detectable target faults"
  else
    let rng = Rng.create seed in
    let tests = random_tests rng c n_detect_tests in
    let packed = with_packed true (fun () -> Fault_sim.detected_by_tests c tests faults) in
    let scalar = with_packed false (fun () -> Fault_sim.detected_by_tests c tests faults) in
    match bool_arrays_diff packed scalar with
    | None -> Pass
    | Some i ->
      Fail
        (Printf.sprintf
           "detected_by_tests diverges on %s: fault %d %s: packed %b, \
            scalar %b"
           c.Circuit.name i
           (Fault.to_string c faults.(i).Fault_sim.fault)
           packed.(i) scalar.(i))

let check_packed_matrix { circuit = c; seed } =
  let _, _, faults = target_faults c in
  if Array.length faults = 0 then Skip "no detectable target faults"
  else
    let rng = Rng.create seed in
    let tests = random_tests rng c n_detect_tests in
    let packed = with_packed true (fun () -> Fault_sim.detect_matrix c tests faults) in
    let scalar = with_packed false (fun () -> Fault_sim.detect_matrix c tests faults) in
    let violation = ref None in
    Array.iteri
      (fun t row ->
        if !violation = None then
          match bool_arrays_diff row scalar.(t) with
          | None -> ()
          | Some i ->
            violation :=
              Some
                (Printf.sprintf
                   "detect_matrix diverges on %s: test %d fault %d: packed \
                    %b, scalar %b"
                   c.Circuit.name t i row.(i) scalar.(t).(i)))
      packed;
    match !violation with Some m -> Fail m | None -> Pass

(* ------------------------------------------------------------------ *)
(* jobs-det: pool parallelism must not change detection results         *)
(* ------------------------------------------------------------------ *)

let check_jobs_det { circuit = c; seed } =
  let _, _, faults = target_faults c in
  if Array.length faults = 0 then Skip "no detectable target faults"
  else
    let rng = Rng.create seed in
    let tests = random_tests rng c n_detect_tests in
    let seq_flags, seq_matrix =
      Pool.with_pool ~jobs:1 (fun pool ->
          ( Fault_sim.detected_by_tests ~pool c tests faults,
            Fault_sim.detect_matrix ~pool c tests faults ))
    in
    let par_flags, par_matrix =
      Pool.with_pool ~jobs:3 (fun pool ->
          ( Fault_sim.detected_by_tests ~pool c tests faults,
            Fault_sim.detect_matrix ~pool c tests faults ))
    in
    match bool_arrays_diff seq_flags par_flags with
    | Some i ->
      Fail
        (Printf.sprintf
           "detected_by_tests depends on jobs on %s: fault %d: 1-job %b, \
            3-job %b"
           c.Circuit.name i seq_flags.(i) par_flags.(i))
    | None ->
      let violation = ref None in
      Array.iteri
        (fun t row ->
          if !violation = None then
            match bool_arrays_diff row par_matrix.(t) with
            | None -> ()
            | Some i ->
              violation :=
                Some
                  (Printf.sprintf
                     "detect_matrix depends on jobs on %s: test %d fault %d"
                     c.Circuit.name t i))
        seq_matrix;
      (match !violation with Some m -> Fail m | None -> Pass)

(* ------------------------------------------------------------------ *)
(* atpg-engine / atpg-jobs: whole enrichment runs must be identical     *)
(* across simulation engines and pool sizes, down to the ledger bytes   *)
(* ------------------------------------------------------------------ *)

let enrich_run c seed faults n0 =
  let ledger = Ledger.create () in
  let p0 = List.init n0 (fun i -> i) in
  let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
  let res = Atpg.enrich ~ledger c ~seed ~faults ~p0 ~p1 in
  (res, Ledger.to_jsonl ledger)

let compare_runs what c (a : Atpg.result) ja (b : Atpg.result) jb =
  if List.length a.Atpg.tests <> List.length b.Atpg.tests then
    Fail
      (Printf.sprintf "%s on %s: test counts differ (%d vs %d)" what
         c.Circuit.name
         (List.length a.Atpg.tests)
         (List.length b.Atpg.tests))
  else if not (List.for_all2 Test_pair.equal a.Atpg.tests b.Atpg.tests) then
    Fail (Printf.sprintf "%s on %s: test patterns differ" what c.Circuit.name)
  else
    match bool_arrays_diff a.Atpg.detected b.Atpg.detected with
    | Some i ->
      Fail
        (Printf.sprintf "%s on %s: detection flag of fault %d differs" what
           c.Circuit.name i)
    | None ->
      if a.Atpg.primary_aborts <> b.Atpg.primary_aborts then
        Fail
          (Printf.sprintf "%s on %s: abort counts differ (%d vs %d)" what
             c.Circuit.name a.Atpg.primary_aborts b.Atpg.primary_aborts)
      else if not (String.equal ja jb) then
        Fail
          (Printf.sprintf "%s on %s: ledger JSONL bytes differ" what
             c.Circuit.name)
      else Pass

let check_atpg_engine { circuit = c; seed } =
  let _, ts, faults = target_faults c in
  if Array.length faults = 0 then Skip "no detectable target faults"
  else
    let n0 = min (List.length ts.Target_sets.p0) (Array.length faults) in
    if n0 = 0 then Skip "empty P0"
    else
      let rp, jp = with_packed true (fun () -> enrich_run c seed faults n0) in
      let rs, js = with_packed false (fun () -> enrich_run c seed faults n0) in
      compare_runs "packed vs scalar enrichment" c rp jp rs js

let check_atpg_jobs { circuit = c; seed } =
  let _, ts, faults = target_faults c in
  if Array.length faults = 0 then Skip "no detectable target faults"
  else
    let n0 = min (List.length ts.Target_sets.p0) (Array.length faults) in
    if n0 = 0 then Skip "empty P0"
    else
      let r1, j1 = with_default_jobs 1 (fun () -> enrich_run c seed faults n0) in
      let r3, j3 = with_default_jobs 3 (fun () -> enrich_run c seed faults n0) in
      compare_runs "1-job vs 3-job enrichment" c r1 j1 r3 j3

(* ------------------------------------------------------------------ *)
(* justify-brute: justification claims vs exhaustive enumeration        *)
(* ------------------------------------------------------------------ *)

let max_justify_pis = 8

let check_justify_brute { circuit = c; seed } =
  if c.Circuit.num_pis > max_justify_pis then
    Skip
      (Printf.sprintf "%d PIs exceeds the %d-PI brute-force cap"
         c.Circuit.num_pis max_justify_pis)
  else
    let _, _, faults = target_faults c in
    if Array.length faults = 0 then Skip "no detectable target faults"
    else begin
      let rng = Rng.create seed in
      let engine = Justify.create c in
      let violation = ref None in
      let n_checked = min 12 (Array.length faults) in
      for i = 0 to n_checked - 1 do
        if !violation = None then begin
          let reqs = faults.(i).Fault_sim.reqs in
          let fname = Fault.to_string c faults.(i).Fault_sim.fault in
          (match Justify.run engine ~rng ~reqs with
          | Some t when not (Test_pair.satisfies c t reqs) ->
            violation :=
              Some
                (Printf.sprintf
                   "justification returned an unsound test for %s on %s: %s"
                   fname c.Circuit.name (describe_test c t))
          | _ -> ());
          if !violation = None then
            match Justify.run_complete ~max_backtracks:2000 engine ~reqs with
            | Justify.Found t when not (Test_pair.satisfies c t reqs) ->
              violation :=
                Some
                  (Printf.sprintf
                     "complete justification returned an unsound test for \
                      %s on %s"
                     fname c.Circuit.name)
            | Justify.Proved_unsatisfiable when brute_force_satisfiable c reqs
              ->
              violation :=
                Some
                  (Printf.sprintf
                     "complete justification claimed %s unsatisfiable on %s \
                      but brute force found a test"
                     fname c.Circuit.name)
            | _ -> ()
        end
      done;
      match !violation with Some m -> Fail m | None -> Pass
    end

(* ------------------------------------------------------------------ *)
(* justify-podem: the structural engine vs the simulation engine vs     *)
(* brute force, three ways                                              *)
(* ------------------------------------------------------------------ *)

(* Both complete engines make hard claims (Found / Proved_unsatisfiable)
   about the same satisfiability question, so any Found/Proved pair
   across them is a bug in one of them — no reference needed.  On small
   circuits brute-force enumeration arbitrates which.  Found tests are
   re-simulated through the independent scalar simulator; PODEM never
   re-checks its own answer, so this is what catches the
   [Podem.set_injected_bug] implication mutation.  [Gave_up] makes no
   claim and is never a violation. *)
let check_justify_podem { circuit = c; seed } =
  let _, _, faults = target_faults c in
  if Array.length faults = 0 then Skip "no detectable target faults"
  else begin
    let pod = Podem.create c in
    let sim = Justify.create c in
    let portfolio = Justify.Engine.create ~kind:Justify.Portfolio c in
    let rng = Rng.create seed in
    let small = c.Circuit.num_pis <= max_justify_pis in
    let violation = ref None in
    let fail fmt = Printf.ksprintf (fun m -> violation := Some m) fmt in
    let n_checked = min 12 (Array.length faults) in
    for i = 0 to n_checked - 1 do
      if !violation = None then begin
        let reqs = faults.(i).Fault_sim.reqs in
        let fname = Fault.to_string c faults.(i).Fault_sim.fault in
        let pr = Podem.run pod ~reqs in
        (match pr with
        | Podem.Found t when not (Test_pair.satisfies c t reqs) ->
          fail "PODEM returned an unsound test for %s on %s: %s" fname
            c.Circuit.name (describe_test c t)
        | _ -> ());
        if !violation = None then begin
          let sr = Justify.run_complete ~max_backtracks:2000 sim ~reqs in
          match (pr, sr) with
          | Podem.Found _, Justify.Proved_unsatisfiable ->
            fail
              "PODEM found a test for %s on %s but the simulation engine \
               proved it unsatisfiable"
              fname c.Circuit.name
          | Podem.Proved_unsatisfiable, Justify.Found _ ->
            fail
              "PODEM proved %s unsatisfiable on %s but the simulation \
               engine found a test"
              fname c.Circuit.name
          | Podem.Proved_unsatisfiable, _
            when small && brute_force_satisfiable c reqs ->
            fail
              "PODEM proved %s unsatisfiable on %s but brute force found a \
               test"
              fname c.Circuit.name
          | Podem.Found _, _
            when small && not (brute_force_satisfiable c reqs) ->
            fail
              "PODEM found a test for %s on %s but brute force says the \
               requirements are unsatisfiable"
              fname c.Circuit.name
          | _ -> ()
        end;
        (* The racing engine must be as sound as its members. *)
        if !violation = None then
          match Justify.Engine.run portfolio ~rng ~reqs with
          | Some t when not (Test_pair.satisfies c t reqs) ->
            fail "portfolio returned an unsound test for %s on %s: %s" fname
              c.Circuit.name (describe_test c t)
          | _ -> ()
      end
    done;
    match !violation with Some m -> Fail m | None -> Pass
  end

(* ------------------------------------------------------------------ *)
(* robust-timing: robust detection implies physical detection           *)
(* ------------------------------------------------------------------ *)

let max_timing_pairs = 80

let check_robust_timing { circuit = c; seed } =
  let model, _, faults = target_faults c in
  if Array.length faults = 0 then Skip "no detectable target faults"
  else begin
    let period = Timing.nominal_period c model in
    (* ATPG tests detect their targets by construction, so they supply
       far more (fault, test) detection pairs than random patterns. *)
    let res =
      Atpg.basic c { Atpg.ordering = Ordering.Length_based; seed } ~faults
    in
    let rng = Rng.create seed in
    let tests = res.Atpg.tests @ random_tests rng c 8 in
    let checked = ref 0 in
    let violation = ref None in
    List.iter
      (fun t ->
        if !violation = None && !checked < max_timing_pairs then
          let triples = Test_pair.simulate c t in
          Array.iter
            (fun (f : Fault_sim.prepared) ->
              if
                !violation = None
                && !checked < max_timing_pairs
                && Fault_sim.detects_values triples f
              then begin
                incr checked;
                let slack = period - f.Fault_sim.length in
                let inject =
                  { Timing.path = f.Fault_sim.fault.Fault.path;
                    extra = slack + 1 }
                in
                if not (Timing.detects c model ~t_sample:period ~inject t)
                then
                  violation :=
                    Some
                      (Printf.sprintf
                         "robust detection of %s on %s not confirmed by \
                          timing simulation (slack %d, test %s)"
                         (Fault.to_string c f.Fault_sim.fault)
                         c.Circuit.name slack (Test_pair.to_string t))
              end)
            faults)
      tests;
    match !violation with
    | Some m -> Fail m
    | None -> if !checked = 0 then Skip "no robust detections to check" else Pass
  end

(* ------------------------------------------------------------------ *)
(* enrich-p0: a-posteriori invariants of one enrichment run             *)
(* ------------------------------------------------------------------ *)

(* A naive cross-run "enrichment covers at least what uncomp covers"
   comparison is unsound: the randomized justification draws different
   streams in the two runs, so per-fault outcomes legitimately differ.
   The machine-checkable forms of the paper's non-regression claim are
   (a) every justifiable primary stays detected, i.e. P0 coverage is at
   least |P0| - primary_aborts (aborted primaries may still be detected
   accidentally by later tests, so this is a lower bound, not an
   equality); (b) the incrementally maintained flags equal a
   from-scratch re-simulation of the final test set; and (c) the ledger
   dispositions agree with the flags.  See DESIGN.md §10. *)
let check_enrich_p0 { circuit = c; seed } =
  let _, ts, faults = target_faults c in
  if Array.length faults = 0 then Skip "no detectable target faults"
  else
    let n0 = min (List.length ts.Target_sets.p0) (Array.length faults) in
    if n0 = 0 then Skip "empty P0"
    else begin
      let ledger = Ledger.create () in
      let p0 = List.init n0 (fun i -> i) in
      let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
      let res = Atpg.enrich ~ledger c ~seed ~faults ~p0 ~p1 in
      let covered = Atpg.count_detected res ~ids:p0 in
      if covered < n0 - res.Atpg.primary_aborts then
        Fail
          (Printf.sprintf
             "P0 coverage invariant violated on %s: %d covered < |P0| = %d \
              minus %d abort(s)"
             c.Circuit.name covered n0 res.Atpg.primary_aborts)
      else
        let resim = Fault_sim.detected_by_tests c res.Atpg.tests faults in
        match bool_arrays_diff res.Atpg.detected resim with
        | Some i ->
          Fail
            (Printf.sprintf
               "incremental detection flags disagree with batch \
                re-simulation on %s: fault %d: incremental %b, batch %b"
               c.Circuit.name i res.Atpg.detected.(i) resim.(i))
        | None ->
          let bad = ref None in
          List.iter
            (fun r ->
              if !bad = None then
                match (Ledger.get_int r "id", Ledger.get_string r "disposition")
                with
                | Some id, Some d ->
                  let flag = res.Atpg.detected.(id) in
                  if flag <> String.equal d "detected" then
                    bad :=
                      Some
                        (Printf.sprintf
                           "ledger disposition %S of fault %d contradicts \
                            detection flag %b on %s"
                           d id flag c.Circuit.name)
                | _ -> bad := Some "fault record missing id or disposition")
            (Ledger.find ledger ~kind:"fault" (fun _ -> true));
          (match !bad with Some m -> Fail m | None -> Pass)
    end

(* ------------------------------------------------------------------ *)
(* attrib: effort conservation — per-net attribution sums equal the     *)
(* sheet totals, which equal the global justify.*/sim.inc.*/atpg.*      *)
(* metric deltas, at 1 and 3 jobs; the merged sheets are identical      *)
(* ------------------------------------------------------------------ *)

module Attrib = Pdf_obs.Attrib
module Metrics = Pdf_obs.Metrics

(* Every counter the attribution layer mirrors.  The first component
   names the metric, the second reads the matching sheet total, the
   third sums the matching per-net array (None for metrics with no
   per-net breakdown). *)
let attrib_ledger_lines (s : Attrib.sheet) =
  let sum a = Array.fold_left ( + ) 0 a in
  [
    ("justify.runs", s.Attrib.t_runs, None);
    ("justify.trials", s.Attrib.t_trials, Some (sum s.Attrib.trials));
    ("justify.trial_evals", s.Attrib.t_trial_evals,
     Some (sum s.Attrib.trial_evals));
    ("justify.resim_gates", s.Attrib.t_resim_gates,
     Some (sum s.Attrib.resim_cone));
    ("justify.conflict_hits", s.Attrib.t_conflicts,
     Some (sum s.Attrib.conflicts));
    ("justify.backtracks", s.Attrib.t_backtracks,
     Some (sum s.Attrib.backtracks));
    ("atpg.delta_evals", s.Attrib.t_cand_scans, None);
    ("sim.inc.resim_gates", s.Attrib.t_inc_resims,
     Some (sum s.Attrib.inc_resims));
  ]

let check_attrib { circuit = c; seed } =
  let _, ts, faults = target_faults c in
  if Array.length faults = 0 then Skip "no detectable target faults"
  else
    let n0 = min (List.length ts.Target_sets.p0) (Array.length faults) in
    if n0 = 0 then Skip "empty P0"
    else begin
      let metric name = Metrics.value (Metrics.counter name) in
      let run_with jobs =
        with_default_jobs jobs (fun () ->
            let attrib = Attrib.create ~nets:(Circuit.num_nets c) in
            let names = List.map (fun (n, _, _) -> n) (attrib_ledger_lines (Attrib.snapshot attrib)) in
            let before = List.map metric names in
            let p0 = List.init n0 (fun i -> i) in
            let p1 = List.init (Array.length faults - n0) (fun i -> n0 + i) in
            let res = Atpg.enrich ~attrib c ~seed ~faults ~p0 ~p1 in
            (* A batch fault-sim pass so the pool-merged packed path is
               part of the conservation window too. *)
            ignore (Fault_sim.detected_by_tests ~attrib c res.Atpg.tests faults);
            let after = List.map metric names in
            (Attrib.snapshot attrib, List.map2 ( - ) after before))
      in
      let s1, d1 = run_with 1 in
      let s3, d3 = run_with 3 in
      let violation = ref None in
      let check_run jobs (s : Attrib.sheet) deltas =
        List.iter2
          (fun (name, total, per_net) delta ->
            if !violation = None then
              if total <> delta then
                violation :=
                  Some
                    (Printf.sprintf
                       "effort not conserved on %s (%d jobs): sheet total \
                        %d <> %s delta %d"
                       c.Circuit.name jobs total name delta)
              else
                match per_net with
                | Some sum when sum <> total ->
                  violation :=
                    Some
                      (Printf.sprintf
                         "per-net attribution of %s does not sum to its \
                          total on %s (%d jobs): %d <> %d"
                         name c.Circuit.name jobs sum total)
                | _ -> ())
          (attrib_ledger_lines s) deltas
      in
      check_run 1 s1 d1;
      check_run 3 s3 d3;
      if !violation = None then begin
        (* Merged sheets must be jobs-invariant, engine-variant counters
           included: batch bounds are fixed, so even the incremental
           dirty-cone work is identical at any pool size. *)
        let arrays (s : Attrib.sheet) =
          [ s.Attrib.trials; s.Attrib.trial_evals; s.Attrib.resim_cone;
            s.Attrib.conflicts; s.Attrib.backtracks; s.Attrib.cand_evals;
            s.Attrib.inc_resims ]
        in
        List.iter2
          (fun a b ->
            if !violation = None && a <> b then
              violation :=
                Some
                  (Printf.sprintf
                     "merged attribution depends on the pool size on %s"
                     c.Circuit.name))
          (arrays s1) (arrays s3)
      end;
      match !violation with Some m -> Fail m | None -> Pass
    end

(* ------------------------------------------------------------------ *)
(* Registry                                                             *)
(* ------------------------------------------------------------------ *)

let all =
  [
    { name = "packed-sim";
      doc = "bit-parallel simulation agrees with the scalar reference";
      check = check_packed_sim };
    { name = "inc-sim";
      doc = "incremental simulation equals a full pass after any flip sequence";
      check = check_inc_sim };
    { name = "packed-detect";
      doc = "packed and scalar detected_by_tests flags are identical";
      check = check_packed_detect };
    { name = "packed-matrix";
      doc = "packed and scalar detect_matrix rows are identical";
      check = check_packed_matrix };
    { name = "jobs-det";
      doc = "detection results are independent of the pool size";
      check = check_jobs_det };
    { name = "atpg-engine";
      doc = "enrichment is identical under packed and scalar engines";
      check = check_atpg_engine };
    { name = "atpg-jobs";
      doc = "enrichment is identical under 1 and 3 jobs, ledger included";
      check = check_atpg_jobs };
    { name = "justify-brute";
      doc = "justification claims agree with brute-force enumeration";
      check = check_justify_brute };
    { name = "justify-podem";
      doc = "PODEM, simulation-based and brute-force justification agree; \
             portfolio answers re-simulate";
      check = check_justify_podem };
    { name = "robust-timing";
      doc = "robust detection implies event-driven timing detection";
      check = check_robust_timing };
    { name = "enrich-p0";
      doc = "P0 coverage, detection flags and ledger dispositions cohere";
      check = check_enrich_p0 };
    { name = "attrib";
      doc = "per-net effort attribution is conserved against the global \
             counters and jobs-invariant";
      check = check_attrib };
  ]

let find name = List.find_opt (fun o -> String.equal o.name name) all

let names () = List.map (fun o -> o.name) all

let run o ctx =
  try o.check ctx
  with e ->
    Fail
      (Printf.sprintf "oracle %s raised %s on %s" o.name
         (Printexc.to_string e) ctx.circuit.Circuit.name)
