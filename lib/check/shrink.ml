module Circuit = Pdf_circuit.Circuit
module Builder = Pdf_circuit.Builder

let size c = Circuit.num_gates c + c.Circuit.num_pis + Circuit.num_pos c

(* Rebuild [c] keeping only the primary outputs in [pos], with gate
   outputs in [alias] replaced by their image (and the gates deleted).
   Fanin nets precede gate outputs in the topological numbering, so
   alias resolution follows strictly decreasing net indices and
   terminates.  The rebuild prunes every gate outside the remaining
   output cones and every PI without remaining consumers; candidates
   whose rebuild fails structural validation are discarded by returning
   [None]. *)
let rebuild c ~alias ~pos =
  let rec resolve net =
    match Hashtbl.find_opt alias net with
    | Some n -> resolve n
    | None -> net
  in
  let pos = List.sort_uniq compare (List.map resolve pos) in
  if pos = [] then None
  else begin
    let needed = Array.make (Circuit.num_nets c) false in
    let rec visit net =
      let net = resolve net in
      if not needed.(net) then begin
        needed.(net) <- true;
        match Circuit.gate_of_net c net with
        | None -> ()
        | Some gi -> Array.iter visit c.Circuit.gates.(gi).Circuit.fanins
      end
    in
    List.iter visit pos;
    let name n = Circuit.net_name c n in
    let b = Builder.create c.Circuit.name in
    for pi = 0 to c.Circuit.num_pis - 1 do
      if needed.(pi) then Builder.add_pi b (name pi)
    done;
    Array.iteri
      (fun gi (g : Circuit.gate) ->
        let out = c.Circuit.num_pis + gi in
        if needed.(out) && not (Hashtbl.mem alias out) then
          Builder.add_gate b ~out:(name out) g.Circuit.kind
            (List.map
               (fun f -> name (resolve f))
               (Array.to_list g.Circuit.fanins)))
      c.Circuit.gates;
    List.iter (fun p -> Builder.add_po b (name p)) pos;
    match Builder.finish b with
    | Ok c' -> if Circuit.validate c' = Ok () then Some c' else None
    | Error _ -> None
  end

let no_alias : (int, int) Hashtbl.t = Hashtbl.create 1

(* Candidate transformations, as thunks, in the fixed order the greedy
   loop tries them: single-output cones first (largest jumps), then gate
   bypasses from the deepest gate down, then dropping one output at a
   time. *)
let candidates c =
  let pos = Array.to_list c.Circuit.pos in
  let keep_single =
    if List.length pos <= 1 then []
    else List.map (fun p () -> rebuild c ~alias:no_alias ~pos:[ p ]) pos
  in
  let bypass =
    List.concat
      (List.rev
         (List.mapi
            (fun gi (g : Circuit.gate) ->
              let out = c.Circuit.num_pis + gi in
              List.map
                (fun f () ->
                  let alias = Hashtbl.create 1 in
                  Hashtbl.add alias out f;
                  rebuild c ~alias ~pos)
                (Array.to_list g.Circuit.fanins))
            (Array.to_list c.Circuit.gates)))
  in
  let drop_one =
    if List.length pos <= 1 then []
    else
      List.mapi
        (fun i _ () ->
          rebuild c ~alias:no_alias
            ~pos:(List.filteri (fun j _ -> j <> i) pos))
        pos
  in
  keep_single @ bypass @ drop_one

let shrink ?(max_attempts = 800) ~prop c0 =
  let attempts = ref 0 in
  let rec improve c =
    let cur = size c in
    let rec try_next = function
      | [] -> c
      | mk :: rest ->
        if !attempts >= max_attempts then c
        else (
          match mk () with
          | Some c' when size c' < cur ->
            incr attempts;
            if prop c' then improve c' else try_next rest
          | _ -> try_next rest)
    in
    try_next (candidates c)
  in
  improve c0
