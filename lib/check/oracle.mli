(** Differential and metamorphic oracles over one circuit (DESIGN.md §10).

    An oracle is a named property that must hold on {e every} circuit the
    pipeline can process.  Each one compares two independent computations
    of the same fact — a fast engine against a reference engine, a claim
    against exhaustive enumeration, or a logical invariant against the
    run that is supposed to establish it:

    - [packed-sim] — bit-parallel {!Pdf_bitsim.Wsim} simulation against
      the scalar {!Pdf_sim.Two_pattern} reference, lane for lane and
      component for component, including [X] lanes;
    - [inc-sim] — the incremental engines ({!Pdf_bitsim.Wsim.Inc} and
      the scalar [Pdf_core.Inc_sim]) against the full-pass simulators
      after a randomized flip sequence over persistent state, including
      X lanes and a zero-flip no-op assign; this is the oracle that
      must catch the [Wsim.set_inc_injected_bug] mutation;
    - [packed-detect] / [packed-matrix] — packed vs scalar
      {!Pdf_core.Fault_sim.detected_by_tests} / [detect_matrix] flags;
    - [jobs-det] — detection flags and matrices with a 1-job pool vs a
      multi-domain pool (byte-identical by the DESIGN.md §8.3 contract);
    - [atpg-engine] — a full enrichment run under the packed engine vs
      the scalar engine: tests, detection flags, abort counts and the
      provenance-ledger JSONL bytes must all agree;
    - [atpg-jobs] — the same run under [--jobs 1] vs [--jobs 3],
      including ledger bytes;
    - [justify-brute] — justification soundness and completeness claims
      against brute-force enumeration of all PI pairs (small cones only);
    - [justify-podem] — the structural {!Pdf_core.Podem} engine against
      the simulation-based complete search and (on small circuits)
      brute force: a [Found]/[Proved_unsatisfiable] disagreement in any
      direction is a violation, every [Found] test must re-simulate to
      satisfy its requirements through the independent scalar
      simulator, and the racing portfolio engine's answers must
      re-simulate too; this is the oracle that must catch the
      [Podem.set_injected_bug] implication mutation;
    - [robust-timing] — robust detection per {!Pdf_core.Fault_sim}
      implies physical detection by the event-driven
      {!Pdf_core.Timing.detects} ground truth with [extra = slack + 1];
    - [enrich-p0] — a-posteriori invariants of the enrichment run: P0
      coverage equals [|P0| - primary_aborts], the incrementally
      maintained detection flags equal a from-scratch batch
      re-simulation, and ledger fault dispositions match the flags.

    Oracles are deterministic in [(circuit, seed)]; any engine toggles
    they flip are restored on exit (including on exceptions). *)

type ctx = {
  circuit : Pdf_circuit.Circuit.t;
  seed : int;  (** seeds every random draw the oracle makes *)
}

type outcome =
  | Pass
  | Fail of string  (** violation, with a human-readable diagnosis *)
  | Skip of string
      (** property not applicable (e.g. no detectable faults, or the
          circuit is too large for brute-force enumeration) *)

type t = {
  name : string;  (** stable identifier, used in reproducer files *)
  doc : string;
  check : ctx -> outcome;
}

val all : t list
(** The registry, cheapest first.  Order is part of the fuzz harness's
    determinism contract — a round's RNG draws depend on it. *)

val find : string -> t option
(** Look up an oracle by {!field-name}. *)

val names : unit -> string list

val run : t -> ctx -> outcome
(** Run one oracle, catching exceptions: an escaping exception is a
    [Fail] (oracles must not crash on any generator output). *)

(** {2 Shared reference oracles} *)

val brute_force :
  Pdf_circuit.Circuit.t ->
  (int * Pdf_values.Req.t) list ->
  Pdf_core.Test_pair.t option
(** Exhaustive search over all [4^num_pis] fully specified two-pattern
    tests for one satisfying the requirement set — the ground truth that
    justification engines are checked against.  Enumerates first
    patterns in the outer loop, second patterns in the inner loop, both
    in increasing binary order with PI 0 as the least significant bit,
    so the witness is deterministic.  Raises [Invalid_argument] when the
    circuit has more than {!max_brute_force_pis} inputs. *)

val brute_force_satisfiable :
  Pdf_circuit.Circuit.t -> (int * Pdf_values.Req.t) list -> bool
(** [Option.is_some] of {!brute_force}. *)

val max_brute_force_pis : int
(** 10 — ~1M simulations; oracles cap themselves well below this. *)
