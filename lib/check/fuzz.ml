module Circuit = Pdf_circuit.Circuit
module Bench_io = Pdf_circuit.Bench_io
module Generators = Pdf_synth.Generators
module Ledger = Pdf_obs.Ledger
module Metrics = Pdf_obs.Metrics
module Rng = Pdf_util.Rng

type profile = {
  profile_name : string;
  grid : Generators.dag_params list;
}

(* The grid spans the topology axes the oracles are sensitive to: depth
   (small windows), width (large windows, shallow logic), reconvergence
   (heavy reuse), and 3-input gates (the packed-simulation mutation hook
   only fires on >2-input AND/NAND gates). *)
let base =
  {
    Generators.num_pis = 6;
    num_gates = 30;
    window = 12;
    max_fanout = 3;
    reuse_pct = 10;
    restart_pct = 10;
    fanin3_pct = 20;
    inverter_pct = 25;
    po_taps = 1;
  }

let tiny =
  {
    profile_name = "tiny";
    grid =
      [
        { base with Generators.num_pis = 4; num_gates = 10; window = 6 };
        { base with Generators.num_pis = 5; num_gates = 14; window = 8 };
        { base with Generators.num_pis = 6; num_gates = 18; window = 8 };
      ];
  }

(* Depth is capped near the robust-testability frontier: path length ~20
   already leaves only about half the circuits with any robustly
   testable fault among the 240 longest (the deeper the path, the more
   side-input stability conditions must hold simultaneously), and far
   deeper circuits would make every fault-based oracle skip forever. *)
let deep =
  {
    profile_name = "deep";
    grid =
      [
        { base with Generators.num_gates = 30; window = 5; restart_pct = 5 };
        { base with Generators.num_gates = 35; window = 6; restart_pct = 5 };
      ];
  }

let wide =
  {
    profile_name = "wide";
    grid =
      [
        {
          base with
          Generators.num_pis = 12;
          num_gates = 50;
          window = 40;
          restart_pct = 40;
        };
        {
          base with
          Generators.num_pis = 16;
          num_gates = 70;
          window = 60;
          restart_pct = 50;
          po_taps = 3;
        };
      ];
  }

let reconv =
  {
    profile_name = "reconv";
    grid =
      [
        { base with Generators.reuse_pct = 30; max_fanout = 4 };
        {
          base with
          Generators.num_pis = 8;
          num_gates = 40;
          reuse_pct = 30;
          max_fanout = 4;
          po_taps = 2;
        };
      ];
  }

let fanin3 =
  {
    profile_name = "fanin3";
    grid =
      [
        {
          base with
          Generators.num_gates = 22;
          window = 10;
          fanin3_pct = 60;
          inverter_pct = 10;
        };
        {
          base with
          Generators.num_pis = 8;
          fanin3_pct = 60;
          inverter_pct = 10;
        };
      ];
  }

(* Incremental-simulation stress (DESIGN.md §13): bigger, bushier DAGs
   where one flipped input's fanout cone is a small fraction of the
   netlist — the regime Wsim.Inc / Inc_sim optimize, and where a stale
   dirty-set entry would go unnoticed on the tiny grids above.  Sized
   for the nightly time-budgeted campaign, deliberately not part of
   [default_profile]: the fault-based oracles take seconds per round
   at this scale. *)
let scale =
  {
    profile_name = "scale";
    grid =
      [
        {
          base with
          Generators.num_pis = 48;
          num_gates = 600;
          window = 300;
          restart_pct = 30;
          po_taps = 4;
        };
        {
          base with
          Generators.num_pis = 96;
          num_gates = 1_500;
          window = 800;
          max_fanout = 4;
          restart_pct = 30;
          po_taps = 4;
        };
      ];
  }

let default_profile =
  {
    profile_name = "default";
    grid = tiny.grid @ deep.grid @ wide.grid @ reconv.grid @ fanin3.grid;
  }

let profiles = [ default_profile; tiny; deep; wide; reconv; fanin3; scale ]

let profile_of_name n =
  List.find_opt (fun p -> String.equal p.profile_name n) profiles

type config = {
  seed : int;
  rounds : int;
  profile : profile;
  time_budget_s : float option;
  out_dir : string;
  emit : bool;
  max_violations : int;
  max_shrink_attempts : int;
  oracles : string list;
}

let default_config =
  {
    seed = 0;
    rounds = 50;
    profile = default_profile;
    time_budget_s = None;
    out_dir = "_fuzz";
    emit = true;
    max_violations = 5;
    max_shrink_attempts = 300;
    oracles = [];
  }

(* An unknown oracle name is a configuration error, not an empty
   campaign: a CI step fuzzing a misspelt oracle would silently check
   nothing. *)
let selected_oracles cfg =
  match cfg.oracles with
  | [] -> Oracle.all
  | names ->
    List.map
      (fun n ->
        match Oracle.find n with
        | Some o -> o
        | None -> invalid_arg (Printf.sprintf "Fuzz.run: unknown oracle %S" n))
      names

type violation = {
  round : int;
  oracle : string;
  circuit_seed : int;
  oracle_seed : int;
  message : string;
  circuit : Circuit.t;
  shrunk : Circuit.t;
  files : (string * string) option;
}

type summary = {
  rounds_run : int;
  checks : int;
  passes : int;
  skips : int;
  violations : violation list;
  elapsed_s : float;
}

let m_rounds = Metrics.counter "fuzz.rounds"

let m_checks = Metrics.counter "fuzz.checks"

let m_skips = Metrics.counter "fuzz.skips"

let m_violations = Metrics.counter "fuzz.violations"

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let first_line s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

(* One reproducer: the shrunk circuit as .bench plus a replayable
   key/value sidecar.  Paths in the sidecar are relative to its own
   directory so the pair can be moved or attached to a CI artifact. *)
let emit_reproducer cfg (v : violation) =
  ensure_dir cfg.out_dir;
  let stem = Printf.sprintf "%s-r%d" v.oracle v.round in
  let bench_name = stem ^ ".bench" in
  let bench_path = Filename.concat cfg.out_dir bench_name in
  let repro_path = Filename.concat cfg.out_dir (stem ^ ".repro") in
  write_file bench_path (Bench_io.to_string v.shrunk);
  write_file repro_path
    (String.concat "\n"
       [
         "# pdf_check reproducer (see DESIGN.md \xc2\xa710)";
         Printf.sprintf "oracle: %s" v.oracle;
         Printf.sprintf "seed: %d" v.oracle_seed;
         Printf.sprintf "bench: %s" bench_name;
         Printf.sprintf "message: %s" (first_line v.message);
         Printf.sprintf "# replay with: pdfatpg fuzz --replay %s" repro_path;
         "";
       ]);
  (bench_path, repro_path)

let run ?ledger cfg =
  let t0 = Unix.gettimeofday () in
  let master = Rng.create cfg.seed in
  let grid_len = List.length cfg.profile.grid in
  if grid_len = 0 then invalid_arg "Fuzz.run: empty profile grid";
  let oracles = selected_oracles cfg in
  Option.iter
    (fun l ->
      Ledger.record l ~kind:"fuzz_run"
        [
          ("seed", Ledger.I cfg.seed);
          ("rounds", Ledger.I cfg.rounds);
          ("profile", Ledger.S cfg.profile.profile_name);
          ("oracles",
           Ledger.L (List.map (fun (o : Oracle.t) -> Ledger.S o.Oracle.name) oracles));
        ])
    ledger;
  let checks = ref 0 and passes = ref 0 and skips = ref 0 in
  let violations = ref [] in
  let rounds_run = ref 0 in
  let stop = ref false in
  let r = ref 0 in
  while (not !stop) && !r < cfg.rounds do
    (* Draw both seeds unconditionally so the stream never depends on
       the outcome of previous rounds. *)
    let circuit_seed = Rng.int master 0x3FFFFFFF in
    let oracle_seed = Rng.int master 0x3FFFFFFF in
    let budget_left =
      match cfg.time_budget_s with
      | None -> true
      | Some b -> Unix.gettimeofday () -. t0 < b
    in
    if not budget_left then stop := true
    else begin
      incr rounds_run;
      Metrics.incr m_rounds;
      let params = List.nth cfg.profile.grid (!r mod grid_len) in
      let circuit =
        Generators.random_dag
          ~name:(Printf.sprintf "fuzz_r%d" !r)
          ~seed:circuit_seed params
      in
      Option.iter
        (fun l ->
          Ledger.record l ~kind:"fuzz_round"
            [
              ("round", Ledger.I !r);
              ("circuit_seed", Ledger.I circuit_seed);
              ("pis", Ledger.I circuit.Circuit.num_pis);
              ("gates", Ledger.I (Circuit.num_gates circuit));
            ])
        ledger;
      List.iteri
        (fun i (o : Oracle.t) ->
          if not !stop then begin
            incr checks;
            Metrics.incr m_checks;
            let seed = oracle_seed + i in
            match Oracle.run o { Oracle.circuit; seed } with
            | Oracle.Pass -> incr passes
            | Oracle.Skip _ ->
              incr skips;
              Metrics.incr m_skips
            | Oracle.Fail message ->
              Metrics.incr m_violations;
              let prop c =
                match Oracle.run o { Oracle.circuit = c; seed } with
                | Oracle.Fail _ -> true
                | Oracle.Pass | Oracle.Skip _ -> false
              in
              let shrunk =
                Shrink.shrink ~max_attempts:cfg.max_shrink_attempts ~prop
                  circuit
              in
              let v =
                {
                  round = !r;
                  oracle = o.Oracle.name;
                  circuit_seed;
                  oracle_seed = seed;
                  message;
                  circuit;
                  shrunk;
                  files = None;
                }
              in
              let v =
                if cfg.emit then { v with files = Some (emit_reproducer cfg v) }
                else v
              in
              Option.iter
                (fun l ->
                  Ledger.record l ~kind:"fuzz_violation"
                    [
                      ("round", Ledger.I v.round);
                      ("oracle", Ledger.S v.oracle);
                      ("circuit_seed", Ledger.I v.circuit_seed);
                      ("oracle_seed", Ledger.I v.oracle_seed);
                      ("message", Ledger.S (first_line v.message));
                      ("shrunk_gates", Ledger.I (Circuit.num_gates v.shrunk));
                    ])
                ledger;
              violations := v :: !violations;
              if List.length !violations >= cfg.max_violations then
                stop := true
          end)
        oracles
    end;
    incr r
  done;
  {
    rounds_run = !rounds_run;
    checks = !checks;
    passes = !passes;
    skips = !skips;
    violations = List.rev !violations;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)
(* ------------------------------------------------------------------ *)

let parse_repro path =
  let ic = open_in path in
  let fields = Hashtbl.create 8 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = String.trim (input_line ic) in
          if line <> "" && line.[0] <> '#' then
            match String.index_opt line ':' with
            | Some i ->
              let key = String.trim (String.sub line 0 i) in
              let value =
                String.trim
                  (String.sub line (i + 1) (String.length line - i - 1))
              in
              Hashtbl.replace fields key value
            | None -> ()
        done;
        assert false
      with End_of_file -> fields)

let replay path =
  match
    (try Ok (parse_repro path) with Sys_error m -> Error m)
  with
  | Error m -> Error (Printf.sprintf "cannot read %s: %s" path m)
  | Ok fields -> (
    let get k = Hashtbl.find_opt fields k in
    match (get "oracle", get "seed", get "bench") with
    | Some oracle_name, Some seed_s, Some bench -> (
      match (Oracle.find oracle_name, int_of_string_opt seed_s) with
      | None, _ -> Error (Printf.sprintf "unknown oracle %S" oracle_name)
      | _, None -> Error (Printf.sprintf "bad seed %S" seed_s)
      | Some oracle, Some seed -> (
        let bench_path =
          if Filename.is_relative bench then
            Filename.concat (Filename.dirname path) bench
          else bench
        in
        match Bench_io.parse_file bench_path with
        | Error e ->
          Error
            (Printf.sprintf "cannot parse %s: %s" bench_path
               (Bench_io.error_to_string e))
        | Ok circuit ->
          Ok (oracle_name, Oracle.run oracle { Oracle.circuit; seed })))
    | _ -> Error "missing oracle:, seed: or bench: field")
