(** Seeded differential fuzzing over the generator grid (DESIGN.md §10).

    Each round draws one random circuit from a profile's
    {!Pdf_synth.Generators.dag_params} grid (cycling through the grid)
    and runs every registered {!Oracle} on it.  A failing oracle
    triggers {!Shrink.shrink} with "the same oracle still fails" as the
    property, and — when emission is enabled — writes a two-file
    reproducer under the output directory:

    - [<oracle>-r<round>.bench] — the shrunk circuit, in ISCAS [.bench]
      format;
    - [<oracle>-r<round>.repro] — a [key: value] text file naming the
      oracle, the oracle seed, the bench file and the failure message,
      replayable with [pdfatpg fuzz --replay <file>] or {!replay}.

    Everything is deterministic in [(seed, profile, rounds)]: the master
    RNG hands each round a circuit seed and an oracle seed in a fixed
    order, oracles run in registry order, and shrinking tries candidates
    in a fixed order.  The optional time budget and the violation cap
    only truncate the round sequence, never reorder it. *)

type profile = {
  profile_name : string;
  grid : Pdf_synth.Generators.dag_params list;
      (** round [r] uses entry [r mod length] *)
}

val profiles : profile list
(** [default] (a mix of everything) plus the focused profiles [tiny],
    [deep], [wide], [reconv] and [fanin3], and the nightly-sized
    [scale] profile (600/1500-gate DAGs stressing the incremental
    simulators; not part of [default]). *)

val profile_of_name : string -> profile option

val default_profile : profile

type config = {
  seed : int;
  rounds : int;
  profile : profile;
  time_budget_s : float option;
      (** stop before a round once this much wall-clock has elapsed *)
  out_dir : string;  (** reproducer directory, created on first failure *)
  emit : bool;  (** write reproducer files for violations *)
  max_violations : int;  (** stop after this many violations *)
  max_shrink_attempts : int;
      (** property-evaluation budget per {!Shrink.shrink} call *)
  oracles : string list;
      (** restrict the campaign to these oracles, in the given order
          (the CLI's repeatable [--oracle] flag); [[]] means the full
          registry.  {!run} raises [Invalid_argument] on an unknown
          name — a misspelt selection must not silently check
          nothing. *)
}

val default_config : config
(** seed 0, 50 rounds, default profile, no time budget, [_fuzz] output,
    emission on, stop after 5 violations, 300 shrink attempts, every
    registered oracle. *)

type violation = {
  round : int;
  oracle : string;
  circuit_seed : int;  (** generator seed of the failing circuit *)
  oracle_seed : int;  (** the failing oracle's {!Oracle.ctx} seed *)
  message : string;  (** first failure message, on the original circuit *)
  circuit : Pdf_circuit.Circuit.t;  (** as drawn from the generator *)
  shrunk : Pdf_circuit.Circuit.t;
  files : (string * string) option;
      (** (bench, repro) paths when emitted *)
}

type summary = {
  rounds_run : int;
  checks : int;  (** oracle executions, skips included *)
  passes : int;
  skips : int;
  violations : violation list;  (** in discovery order *)
  elapsed_s : float;
}

val run : ?ledger:Pdf_obs.Ledger.t -> config -> summary
(** Run the campaign.  Updates the [fuzz.rounds] / [fuzz.checks] /
    [fuzz.skips] / [fuzz.violations] counters in
    {!Pdf_obs.Metrics.default}; when [ledger] is given, appends one
    [fuzz_run] header, one [fuzz_round] record per round and one
    [fuzz_violation] record per violation (no timestamps — the ledger
    stays byte-deterministic in the configuration). *)

val replay : string -> (string * Oracle.outcome, string) result
(** [replay path] re-runs the oracle recorded in a [.repro] file against
    its [.bench] circuit (resolved relative to the file's directory) and
    returns the oracle name with the outcome — [Fail] means the
    reproducer still reproduces.  [Error] on unreadable or malformed
    files. *)
