(** Greedy circuit shrinking for fuzz failures (DESIGN.md §10).

    Given a circuit on which a property holds (for the fuzz harness: "the
    oracle still fails"), the shrinker searches for a structurally
    smaller circuit on which it still holds, by repeatedly applying the
    first size-reducing transformation that preserves the property:

    + {e keep a single output} — rebuild the circuit around one primary
      output's fan-in cone (the big jumps);
    + {e drop one output} — remove a single primary output and prune
      whatever logic only it observed;
    + {e bypass a gate} — alias a gate's output net to one of its fan-in
      nets and delete the gate, rewiring every consumer.  A fan-in net
      always precedes the gate's output net in the topological
      numbering, so alias chains cannot form cycles and resolution
      terminates.

    After every transformation the circuit is rebuilt from scratch
    through {!Pdf_circuit.Builder}: dead gates outside the remaining
    output cones and primary inputs with no remaining consumers are
    dropped, and a transformation whose rebuild fails validation is
    simply discarded.  The loop runs to a fixpoint (no candidate both
    shrinks and preserves the property) or until the attempt budget is
    exhausted, and is fully deterministic: candidates are tried in a
    fixed order and the first acceptable one is taken. *)

val size : Pdf_circuit.Circuit.t -> int
(** Gates + primary inputs + primary outputs: the measure the shrinker
    reduces. *)

val shrink :
  ?max_attempts:int ->
  prop:(Pdf_circuit.Circuit.t -> bool) ->
  Pdf_circuit.Circuit.t ->
  Pdf_circuit.Circuit.t
(** [shrink ~prop c] — [prop c] must already be [true]; the result is a
    circuit no larger than [c] on which [prop] still holds.  [prop] is
    never called on an invalid circuit.  [max_attempts] bounds the total
    number of property evaluations (default 800). *)
