type t = {
  name : string;
  description : string;
  circuit : Pdf_circuit.Circuit.t Lazy.t;
}

let dag name seed params description =
  {
    name;
    description;
    circuit = lazy (Generators.random_dag ~name ~seed params);
  }

let mk ~pis ~gates ~window ?(max_fanout = 4) ?(reuse_pct = 0)
    ?(restart_pct = 0) ?(fanin3_pct = 10) ?(inverter_pct = 20)
    ?(po_taps = 4) () =
  {
    Generators.num_pis = pis;
    num_gates = gates;
    window;
    max_fanout;
    reuse_pct;
    restart_pct;
    fanin3_pct;
    inverter_pct;
    po_taps;
  }

(* Parameters are calibrated so each look-alike has the rough input/gate
   scale of its namesake and comfortably more than 1000 paths. *)
let table_rows =
  [
    dag "s641" 641
      (mk ~pis:54 ~gates:380 ~window:120 ~inverter_pct:35 ())
      "deep ISCAS-89-scale look-alike (380 gates, 54 inputs)";
    dag "s953" 953
      (mk ~pis:45 ~gates:440 ~window:200 ~inverter_pct:40 ())
      "highly testable ISCAS-89-scale look-alike (400 gates, 45 inputs)";
    dag "s1196" 1196
      (mk ~pis:32 ~gates:530 ~window:150 ~inverter_pct:28 ~reuse_pct:3 ~restart_pct:4 ())
      "ISCAS-89-scale look-alike with moderate testability (530 gates)";
    dag "s1423" 1423
      (mk ~pis:91 ~gates:660 ~window:120 ~inverter_pct:40 ())
      "deep ISCAS-89-scale look-alike (660 gates, 91 inputs)";
    dag "s1488" 1488
      (mk ~pis:18 ~gates:550 ~window:350 ~inverter_pct:45 ~restart_pct:10 ())
      "narrow-input ISCAS-89-scale look-alike (550 gates, 18 inputs)";
    dag "b03" 303
      (mk ~pis:34 ~gates:280 ~window:70 ~inverter_pct:30 ~reuse_pct:4 ())
      "ITC-99-scale look-alike (160 gates, 34 inputs)";
    dag "b04" 304
      (mk ~pis:77 ~gates:650 ~window:150 ~inverter_pct:22 ~reuse_pct:10 ())
      "ITC-99-scale look-alike with low robust testability (650 gates)";
    dag "b09" 309
      (mk ~pis:29 ~gates:240 ~window:55 ~inverter_pct:25 ~reuse_pct:7 ())
      "ITC-99-scale look-alike (170 gates, 29 inputs)";
  ]

(* The resynthesized circuits of the paper's reference [13]: more
   balanced, more testable versions.  Wider windows, more inverters and no
   deep side inputs give the flatter, more uniformly sensitizable
   structure that synthesis-for-testability produces.  s5378*/s9234* are
   scaled to keep laptop run times (documented in DESIGN.md). *)
let star_rows =
  [
    dag "s1423*" 11423
      (mk ~pis:91 ~gates:660 ~window:250 ~inverter_pct:40 ())
      "resynthesized-for-testability stand-in for s1423";
    dag "s5378*" 15378
      (mk ~pis:120 ~gates:1200 ~window:400 ~inverter_pct:40 ())
      "resynthesized stand-in for s5378 (scaled to 1200 gates)";
    dag "s9234*" 19234
      (mk ~pis:140 ~gates:1700 ~window:500 ~inverter_pct:40 ())
      "resynthesized stand-in for s9234 (scaled to 1700 gates)";
  ]

let enrichment_rows = table_rows @ star_rows

(* The huge tier (ROADMAP: event-driven simulation at 100k-gate scale):
   DAGs two orders of magnitude above the paper's circuits, where a
   changed input's fanout cone is a tiny fraction of the netlist — the
   regime the incremental simulators (Wsim.Inc, Inc_sim) exploit.
   Benchmark/fuzz material only, deliberately not in [enrichment_rows]:
   path enumeration and target-set preparation are not sized for them. *)
let huge_rows =
  [
    dag "huge50k" 50_000
      (mk ~pis:512 ~gates:50_000 ~window:2_000 ~max_fanout:6 ())
      "huge benchmark tier: 50k-gate DAG (cone-resim / scale runs only)";
    dag "huge100k" 100_000
      (mk ~pis:1_024 ~gates:100_000 ~window:3_000 ~max_fanout:6 ())
      "huge benchmark tier: 100k-gate DAG (cone-resim / scale runs only)";
    dag "huge200k" 200_000
      (mk ~pis:2_048 ~gates:200_000 ~window:4_000 ~max_fanout:6 ())
      "huge benchmark tier: 200k-gate DAG (cone-resim / scale runs only)";
  ]

let extras =
  [
    {
      name = "s27";
      description = "genuine ISCAS-89 s27 combinational logic (paper Fig. 1)";
      circuit = lazy (Iscas.s27 ());
    };
    {
      name = "c17";
      description = "genuine ISCAS-85 c17";
      circuit = lazy (Iscas.c17 ());
    };
    {
      name = "rca16";
      description = "16-bit ripple-carry adder";
      circuit = lazy (Generators.ripple_adder ~bits:16);
    };
    {
      name = "mux64";
      description = "64-to-1 multiplexer cascade";
      circuit = lazy (Generators.mux_cascade ~selects:6);
    };
    {
      name = "cmp16";
      description = "16-bit magnitude comparator";
      circuit = lazy (Generators.comparator ~bits:16);
    };
    {
      name = "parity32";
      description = "32-bit parity tree (XOR)";
      circuit = lazy (Generators.parity_tree ~width:32);
    };
    {
      name = "dec6";
      description = "6-to-64 one-hot decoder";
      circuit = lazy (Generators.decoder ~bits:6);
    };
    {
      name = "prio16";
      description = "16-bit priority encoder";
      circuit = lazy (Generators.priority_encoder ~width:16);
    };
    {
      name = "bshift32";
      description = "32-bit logarithmic barrel shifter";
      circuit = lazy (Generators.barrel_shifter ~selects:5);
    };
    {
      name = "mult8";
      description = "8x8 array multiplier";
      circuit = lazy (Generators.array_multiplier ~bits:8);
    };
  ]

let all = enrichment_rows @ extras @ huge_rows

let find name = List.find_opt (fun p -> p.name = name) all

let circuit p = Lazy.force p.circuit
