(** Named circuit profiles standing in for the paper's benchmark circuits.

    The paper evaluates on ISCAS-89 and ITC-99 netlists (plus three
    resynthesized variants from its reference [13]).  Those netlists are
    not redistributable data we have offline, so each table row is backed
    by a seeded synthetic look-alike of roughly the same input/gate scale
    with at least 1000 paths (see DESIGN.md, substitutions).  [s27] and
    [c17] are the genuine embedded netlists. *)

type t = {
  name : string;  (** paper row name, e.g. ["s1423"] or ["s1423*"] *)
  description : string;
  circuit : Pdf_circuit.Circuit.t Lazy.t;
}

val all : t list
(** Every profile, table rows first. *)

val table_rows : t list
(** The eight circuits of paper Tables 3-5 and 7, in paper order. *)

val star_rows : t list
(** The three resynthesized-circuit stand-ins of paper Table 6. *)

val enrichment_rows : t list
(** The eleven rows of paper Table 6 (adds the resynthesized stand-ins). *)

val huge_rows : t list
(** The huge benchmark tier: 50k/100k/200k-gate synthetic DAGs for the
    cone-resim benchmarks and scale fuzzing.  In {!all} (so
    [pdfatpg bench --circuits huge100k] resolves them) but not in
    {!enrichment_rows} — path enumeration and target-set preparation
    are not sized for 100k-gate netlists. *)

val find : string -> t option

val circuit : t -> Pdf_circuit.Circuit.t
