module Builder = Pdf_circuit.Builder
module Gate = Pdf_circuit.Gate
module Rng = Pdf_util.Rng

type dag_params = {
  num_pis : int;
  num_gates : int;
  window : int;
  max_fanout : int;
  reuse_pct : int;
  restart_pct : int;
  fanin3_pct : int;
  inverter_pct : int;
  po_taps : int;
}

let net_name i = Printf.sprintf "n%d" i

(* Pick a gate kind with an ISCAS-like mix: mostly NAND/NOR with some
   AND/OR, plus the configured share of inverters/buffers. *)
let pick_kind rng ~inverter_pct =
  if Rng.int rng 100 < inverter_pct then
    if Rng.int rng 100 < 70 then Gate.Not else Gate.Buff
  else
    match Rng.int rng 10 with
    | 0 | 1 | 2 -> Gate.Nand
    | 3 | 4 | 5 -> Gate.Nor
    | 6 | 7 -> Gate.And
    | 8 | 9 -> Gate.Or
    | _ -> Gate.Nand

(* Reject degenerate parameters up front with a field-specific message:
   0 PIs / 0 gates / a window below 2 would otherwise surface as an
   obscure [Rng.int] or [Builder] failure from deep inside the build
   loop (or, for a non-positive fanout cap, silently ignore the cap). *)
let validate_params (p : dag_params) =
  let fail fmt = Printf.ksprintf invalid_arg ("Generators.random_dag: " ^^ fmt) in
  if p.num_pis < 2 then fail "num_pis must be >= 2 (got %d)" p.num_pis;
  if p.num_gates < 1 then fail "num_gates must be >= 1 (got %d)" p.num_gates;
  if p.window < 2 then fail "window must be >= 2 (got %d)" p.window;
  if p.max_fanout < 1 then fail "max_fanout must be >= 1 (got %d)" p.max_fanout;
  let pct name v =
    if v < 0 || v > 100 then fail "%s must be in 0..100 (got %d)" name v
  in
  pct "reuse_pct" p.reuse_pct;
  pct "restart_pct" p.restart_pct;
  pct "fanin3_pct" p.fanin3_pct;
  pct "inverter_pct" p.inverter_pct;
  if p.po_taps < 0 then fail "po_taps must be >= 0 (got %d)" p.po_taps

let random_dag ~name ~seed (p : dag_params) =
  validate_params p;
  let rng = Rng.create seed in
  let b = Builder.create name in
  for i = 0 to p.num_pis - 1 do
    Builder.add_pi b (net_name i)
  done;
  let total = p.num_pis + p.num_gates in
  let fanout = Array.make total 0 in
  for g = 0 to p.num_gates - 1 do
    let out = p.num_pis + g in
    let kind = pick_kind rng ~inverter_pct:p.inverter_pct in
    let arity =
      match kind with
      | Gate.Not | Gate.Buff -> 1
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
        if Rng.int rng 100 < p.fanin3_pct then 3 else 2
    in
    let lo = max 0 (out - p.window) in
    let span = out - lo in
    (* Fan-in policy modelled on synthesized logic: the first input (the
       "spine") continues a recent chain, giving depth; the remaining side
       inputs are mostly drawn with a bias towards shallow nets (primary
       inputs and early logic), the way long real paths are gated by
       near-input control signals.  Deep, correlated side inputs — which
       make long paths robustly untestable — only appear with probability
       [reuse_pct]. *)
    let pick_with ~accept ~draw =
      let rec attempt tries best =
        let cand = draw () in
        if accept cand then cand
        else if tries >= 12 then best
        else
          let best = if fanout.(cand) < fanout.(best) then cand else best in
          attempt (tries + 1) best
      in
      let cand = attempt 0 (draw ()) in
      fanout.(cand) <- fanout.(cand) + 1;
      cand
    in
    let draw_spine () = lo + Rng.int rng span in
    let draw_shallow () =
      let a = Rng.int rng out and b = Rng.int rng out in
      min a b
    in
    let spine =
      if Rng.int rng 100 < p.restart_pct then
        (* Restart a chain from shallow logic (controls overall depth). *)
        pick_with
          ~accept:(fun cand -> fanout.(cand) < p.max_fanout)
          ~draw:draw_shallow
      else
        pick_with ~accept:(fun cand -> fanout.(cand) = 0) ~draw:draw_spine
    in
    let rec pick_sides chosen k =
      if k = 0 then chosen
      else begin
        let deep = Rng.int rng 100 < p.reuse_pct in
        let draw = if deep then draw_spine else draw_shallow in
        let accept cand =
          (not (List.mem cand chosen))
          && cand <> spine
          && fanout.(cand) < p.max_fanout
        in
        let cand = pick_with ~accept ~draw in
        pick_sides (cand :: chosen) (k - 1)
      end
    in
    let fanins = spine :: pick_sides [] (arity - 1) in
    Builder.add_gate b ~out:(net_name out) kind (List.map net_name fanins)
  done;
  (* Sink nets become primary outputs so every partial path can complete. *)
  for i = p.num_pis to total - 1 do
    if fanout.(i) = 0 then Builder.add_po b (net_name i)
  done;
  (* Expose a few driven internal nets as extra outputs (pseudo-POs). *)
  let taps = ref 0 and attempts = ref 0 in
  while !taps < p.po_taps && !attempts < 20 * p.po_taps do
    incr attempts;
    let cand = p.num_pis + Rng.int rng p.num_gates in
    if fanout.(cand) > 0 then begin
      Builder.add_po b (net_name cand);
      incr taps
    end
  done;
  Builder.finish_exn b

let full_adder b ~a ~bb ~cin ~sum ~cout =
  let axb = sum ^ "_axb" in
  Builder.add_gate b ~out:axb Gate.Xor [ a; bb ];
  Builder.add_gate b ~out:sum Gate.Xor [ axb; cin ];
  let ab = sum ^ "_ab" and cx = sum ^ "_cx" in
  Builder.add_gate b ~out:ab Gate.And [ a; bb ];
  Builder.add_gate b ~out:cx Gate.And [ axb; cin ];
  Builder.add_gate b ~out:cout Gate.Or [ ab; cx ]

let ripple_adder ~bits =
  if bits < 1 then invalid_arg "Generators.ripple_adder: bits < 1";
  let b = Builder.create (Printf.sprintf "rca%d" bits) in
  for i = 0 to bits - 1 do
    Builder.add_pi b (Printf.sprintf "a%d" i);
    Builder.add_pi b (Printf.sprintf "b%d" i)
  done;
  Builder.add_pi b "cin";
  let carry = ref "cin" in
  for i = 0 to bits - 1 do
    let sum = Printf.sprintf "s%d" i in
    let cout = Printf.sprintf "c%d" i in
    full_adder b ~a:(Printf.sprintf "a%d" i) ~bb:(Printf.sprintf "b%d" i)
      ~cin:!carry ~sum ~cout;
    Builder.add_po b sum;
    carry := cout
  done;
  Builder.add_po b !carry;
  Builder.finish_exn b

let mux2 b ~out ~sel ~a ~bb =
  let nsel = out ^ "_ns" and ta = out ^ "_ta" and tb = out ^ "_tb" in
  Builder.add_gate b ~out:nsel Gate.Not [ sel ];
  Builder.add_gate b ~out:ta Gate.And [ a; nsel ];
  Builder.add_gate b ~out:tb Gate.And [ bb; sel ];
  Builder.add_gate b ~out Gate.Or [ ta; tb ]

let mux_cascade ~selects =
  if selects < 1 || selects > 10 then
    invalid_arg "Generators.mux_cascade: selects out of range";
  let inputs = 1 lsl selects in
  let b = Builder.create (Printf.sprintf "mux%d" inputs) in
  for i = 0 to inputs - 1 do
    Builder.add_pi b (Printf.sprintf "d%d" i)
  done;
  for i = 0 to selects - 1 do
    Builder.add_pi b (Printf.sprintf "sel%d" i)
  done;
  let layer = ref (List.init inputs (fun i -> Printf.sprintf "d%d" i)) in
  for level = 0 to selects - 1 do
    let sel = Printf.sprintf "sel%d" level in
    let rec pair acc idx = function
      | [] -> List.rev acc
      | [ last ] -> List.rev (last :: acc)
      | a :: bb :: rest ->
        let out = Printf.sprintf "m%d_%d" level idx in
        mux2 b ~out ~sel ~a ~bb;
        pair (out :: acc) (idx + 1) rest
    in
    layer := pair [] 0 !layer
  done;
  (match !layer with
  | [ out ] -> Builder.add_po b out
  | outs -> List.iter (Builder.add_po b) outs);
  Builder.finish_exn b

let parity_tree ~width =
  if width < 2 then invalid_arg "Generators.parity_tree: width < 2";
  let b = Builder.create (Printf.sprintf "parity%d" width) in
  for i = 0 to width - 1 do
    Builder.add_pi b (Printf.sprintf "x%d" i)
  done;
  let counter = ref 0 in
  let rec reduce = function
    | [] -> assert false
    | [ last ] -> last
    | layer ->
      let rec pair acc = function
        | [] -> List.rev acc
        | [ last ] -> List.rev (last :: acc)
        | a :: bb :: rest ->
          let out = Printf.sprintf "p%d" !counter in
          incr counter;
          Builder.add_gate b ~out Gate.Xor [ a; bb ];
          pair (out :: acc) rest
      in
      reduce (pair [] layer)
  in
  let out = reduce (List.init width (fun i -> Printf.sprintf "x%d" i)) in
  Builder.add_po b out;
  Builder.finish_exn b

let comparator ~bits =
  if bits < 1 then invalid_arg "Generators.comparator: bits < 1";
  let b = Builder.create (Printf.sprintf "cmp%d" bits) in
  for i = 0 to bits - 1 do
    Builder.add_pi b (Printf.sprintf "a%d" i);
    Builder.add_pi b (Printf.sprintf "b%d" i)
  done;
  (* eq_i without XOR: eq = (a AND b) OR (NOT a AND NOT b). *)
  for i = 0 to bits - 1 do
    let a = Printf.sprintf "a%d" i and bb = Printf.sprintf "b%d" i in
    Builder.add_gate b ~out:(Printf.sprintf "na%d" i) Gate.Not [ a ];
    Builder.add_gate b ~out:(Printf.sprintf "nb%d" i) Gate.Not [ bb ];
    Builder.add_gate b ~out:(Printf.sprintf "both%d" i) Gate.And [ a; bb ];
    Builder.add_gate b
      ~out:(Printf.sprintf "neither%d" i)
      Gate.And
      [ Printf.sprintf "na%d" i; Printf.sprintf "nb%d" i ];
    Builder.add_gate b ~out:(Printf.sprintf "eq%d" i) Gate.Or
      [ Printf.sprintf "both%d" i; Printf.sprintf "neither%d" i ];
    Builder.add_gate b ~out:(Printf.sprintf "gt%d" i) Gate.And
      [ a; Printf.sprintf "nb%d" i ]
  done;
  (* eq chain (MSB down) and gt = OR of gt_i AND (eq of all higher bits). *)
  let eq_prefix = ref (Printf.sprintf "eq%d" (bits - 1)) in
  let gt_terms = ref [ Printf.sprintf "gt%d" (bits - 1) ] in
  for i = bits - 2 downto 0 do
    let masked = Printf.sprintf "gtm%d" i in
    Builder.add_gate b ~out:masked Gate.And
      [ Printf.sprintf "gt%d" i; !eq_prefix ];
    gt_terms := masked :: !gt_terms;
    let next = Printf.sprintf "eqp%d" i in
    Builder.add_gate b ~out:next Gate.And
      [ Printf.sprintf "eq%d" i; !eq_prefix ];
    eq_prefix := next
  done;
  Builder.add_po b !eq_prefix;
  let rec or_tree idx = function
    | [] -> assert false
    | [ last ] -> last
    | a :: bb :: rest ->
      let out = Printf.sprintf "or%d" idx in
      Builder.add_gate b ~out Gate.Or [ a; bb ];
      or_tree (idx + 1) (rest @ [ out ])
    in
  let gt = or_tree 0 !gt_terms in
  Builder.add_po b gt;
  Builder.finish_exn b

let decoder ~bits =
  if bits < 1 || bits > 8 then
    invalid_arg "Generators.decoder: bits out of range";
  let b = Builder.create (Printf.sprintf "dec%d" bits) in
  for i = 0 to bits - 1 do
    Builder.add_pi b (Printf.sprintf "a%d" i);
    Builder.add_gate b ~out:(Printf.sprintf "na%d" i) Gate.Not
      [ Printf.sprintf "a%d" i ]
  done;
  for v = 0 to (1 lsl bits) - 1 do
    let literals =
      List.init bits (fun i ->
          if (v lsr i) land 1 = 1 then Printf.sprintf "a%d" i
          else Printf.sprintf "na%d" i)
    in
    let out = Printf.sprintf "y%d" v in
    (if bits = 1 then
       Builder.add_gate b ~out Gate.Buff literals
     else Builder.add_gate b ~out Gate.And literals);
    Builder.add_po b out
  done;
  Builder.finish_exn b

let priority_encoder ~width =
  if width < 2 then invalid_arg "Generators.priority_encoder: width < 2";
  let b = Builder.create (Printf.sprintf "prio%d" width) in
  for i = 0 to width - 1 do
    Builder.add_pi b (Printf.sprintf "x%d" i)
  done;
  (* none_above(i) = no input above bit i is set; computed as a chain of
     NORs folded with ANDs from the top down. *)
  for i = 0 to width - 1 do
    Builder.add_gate b ~out:(Printf.sprintf "nx%d" i) Gate.Not
      [ Printf.sprintf "x%d" i ]
  done;
  let grant_top = Printf.sprintf "g%d" (width - 1) in
  Builder.add_gate b ~out:grant_top Gate.Buff
    [ Printf.sprintf "x%d" (width - 1) ];
  Builder.add_po b grant_top;
  let above = ref (Printf.sprintf "nx%d" (width - 1)) in
  for i = width - 2 downto 0 do
    let out = Printf.sprintf "g%d" i in
    Builder.add_gate b ~out Gate.And [ Printf.sprintf "x%d" i; !above ];
    Builder.add_po b out;
    if i > 0 then begin
      let next = Printf.sprintf "none_above%d" i in
      Builder.add_gate b ~out:next Gate.And
        [ !above; Printf.sprintf "nx%d" i ];
      above := next
    end
  done;
  (* valid = OR of all inputs *)
  let rec or_tree idx = function
    | [] -> assert false
    | [ last ] -> last
    | a :: bb :: rest ->
      let out = Printf.sprintf "v%d" idx in
      Builder.add_gate b ~out Gate.Or [ a; bb ];
      or_tree (idx + 1) (rest @ [ out ])
  in
  let valid = or_tree 0 (List.init width (fun i -> Printf.sprintf "x%d" i)) in
  (* [valid] may coincide with an input when width folds oddly; tap it
     through a buffer so the PO has a dedicated name. *)
  Builder.add_gate b ~out:"valid" Gate.Buff [ valid ];
  Builder.add_po b "valid";
  Builder.finish_exn b

let barrel_shifter ~selects =
  if selects < 1 || selects > 6 then
    invalid_arg "Generators.barrel_shifter: selects out of range";
  let width = 1 lsl selects in
  let b = Builder.create (Printf.sprintf "bshift%d" width) in
  for i = 0 to width - 1 do
    Builder.add_pi b (Printf.sprintf "d%d" i)
  done;
  for s = 0 to selects - 1 do
    Builder.add_pi b (Printf.sprintf "sh%d" s)
  done;
  Builder.add_pi b "zero";
  (* Stage s shifts left by 2^s when sh_s is set; vacated positions take
     the [zero] input (a real shifter would tie them low; the extra input
     keeps the netlist constant-free). *)
  let layer = ref (Array.init width (fun i -> Printf.sprintf "d%d" i)) in
  for s = 0 to selects - 1 do
    let sel = Printf.sprintf "sh%d" s in
    let shift = 1 lsl s in
    let next =
      Array.init width (fun i ->
          let out = Printf.sprintf "l%d_%d" s i in
          let from = if i >= shift then !layer.(i - shift) else "zero" in
          mux2 b ~out ~sel ~a:!layer.(i) ~bb:from;
          out)
    in
    layer := next
  done;
  Array.iter (Builder.add_po b) !layer;
  Builder.finish_exn b

let array_multiplier ~bits =
  if bits < 2 || bits > 8 then
    invalid_arg "Generators.array_multiplier: bits out of range";
  let b = Builder.create (Printf.sprintf "mult%d" bits) in
  for i = 0 to bits - 1 do
    Builder.add_pi b (Printf.sprintf "a%d" i);
    Builder.add_pi b (Printf.sprintf "b%d" i)
  done;
  (* Partial products. *)
  for i = 0 to bits - 1 do
    for j = 0 to bits - 1 do
      Builder.add_gate b ~out:(Printf.sprintf "pp%d_%d" i j) Gate.And
        [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" j ]
    done
  done;
  (* Row-by-row ripple reduction: acc holds the running sum shifted so
     acc.(k) is weight k.  Row j adds pp_*,j at weight i+j. *)
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  let half_adder ~a ~bb ~sum ~carry =
    Builder.add_gate b ~out:sum Gate.Xor [ a; bb ];
    Builder.add_gate b ~out:carry Gate.And [ a; bb ]
  in
  let acc = Array.make (2 * bits) None in
  for j = 0 to bits - 1 do
    let carry = ref None in
    for i = 0 to bits - 1 do
      let k = i + j in
      let pp = Printf.sprintf "pp%d_%d" i j in
      (* Add pp, acc.(k) and carry at weight k. *)
      let operands =
        List.filter_map Fun.id [ Some pp; acc.(k); !carry ]
      in
      match operands with
      | [ one ] ->
        acc.(k) <- Some one;
        carry := None
      | [ x; y ] ->
        let sum = fresh "s" and cout = fresh "c" in
        half_adder ~a:x ~bb:y ~sum ~carry:cout;
        acc.(k) <- Some sum;
        carry := Some cout
      | [ x; y; z ] ->
        let sum = fresh "s" and cout = fresh "c" in
        full_adder b ~a:x ~bb:y ~cin:z ~sum ~cout;
        acc.(k) <- Some sum;
        carry := Some cout
      | _ -> assert false
    done;
    (* Propagate the final carry of the row upward. *)
    let k = ref (bits + j) in
    while !carry <> None do
      let cin = match !carry with Some c -> c | None -> assert false in
      (match acc.(!k) with
      | None ->
        acc.(!k) <- Some cin;
        carry := None
      | Some existing ->
        let sum = fresh "s" and cout = fresh "c" in
        half_adder ~a:existing ~bb:cin ~sum ~carry:cout;
        acc.(!k) <- Some sum;
        carry := Some cout);
      incr k
    done
  done;
  Array.iteri
    (fun k slot ->
      match slot with
      | Some net ->
        let out = Printf.sprintf "p%d" k in
        Builder.add_gate b ~out Gate.Buff [ net ];
        Builder.add_po b out
      | None -> ())
    acc;
  Builder.finish_exn b
