(** Synthetic circuit generators.

    The random DAG generator produces ISCAS-like combinational logic with
    controllable size, depth and reconvergence; the structured generators
    build classic arithmetic/selection blocks.  All generators are
    deterministic in their parameters (seeded). *)

type dag_params = {
  num_pis : int;
  num_gates : int;
  window : int;
      (** fan-in locality: inputs of a gate are drawn from the most recent
          [window] nets — smaller windows give deeper, narrower logic *)
  max_fanout : int;
      (** soft fanout cap per net; keeps reconvergence realistic (heavily
          shared nets make most long paths robustly untestable) *)
  reuse_pct : int;
      (** probability (percent) that a side input is drawn from recent deep
          logic instead of the shallow-biased pool; deep side inputs create
          the correlated reconvergence that makes long paths robustly
          untestable, so this directly tunes testability. *)
  restart_pct : int;
      (** probability (percent) that a gate's spine input restarts from the
          shallow pool instead of continuing a recent chain; controls logic
          depth (roughly [window/2] chains of expected length
          [100/restart_pct]). *)
  fanin3_pct : int;  (** percentage of 3-input gates *)
  inverter_pct : int;  (** percentage of NOT/BUFF gates *)
  po_taps : int;
      (** internal nets additionally exposed as outputs (pseudo-POs of
          extracted sequential logic) *)
}

val random_dag :
  name:string -> seed:int -> dag_params -> Pdf_circuit.Circuit.t
(** Every net without fanout becomes a primary output, so no path dead
    ends.  Raises [Invalid_argument] with a field-specific message on
    degenerate parameters: [num_pis < 2], [num_gates < 1], [window < 2],
    [max_fanout < 1], any percentage outside [0..100], or
    [po_taps < 0]. *)

val ripple_adder : bits:int -> Pdf_circuit.Circuit.t
(** [a + b + cin] with sum and carry-out outputs, AND/OR/XOR full adders. *)

val mux_cascade : selects:int -> Pdf_circuit.Circuit.t
(** A [2^selects]-to-1 multiplexer built from 2-to-1 stages. *)

val parity_tree : width:int -> Pdf_circuit.Circuit.t
(** Balanced XOR tree. *)

val comparator : bits:int -> Pdf_circuit.Circuit.t
(** Equality and greater-than of two unsigned words (no XOR gates, long
    AND/OR chains — a good path-delay workload). *)

val decoder : bits:int -> Pdf_circuit.Circuit.t
(** [bits]-to-[2^bits] one-hot decoder (wide, shallow AND plane). *)

val priority_encoder : width:int -> Pdf_circuit.Circuit.t
(** Highest-set-bit encoder: outputs [width] grant lines (one-hot) plus a
    valid flag; grant [i] is high iff input [i] is the highest set bit. *)

val barrel_shifter : selects:int -> Pdf_circuit.Circuit.t
(** Logarithmic left shifter over a [2^selects]-bit word built from
    2-to-1 mux layers; shift amount has [selects] control bits. *)

val array_multiplier : bits:int -> Pdf_circuit.Circuit.t
(** Unsigned [bits x bits] array multiplier (AND partial products reduced
    by ripple adders) — deep, heavily reconvergent arithmetic. *)
