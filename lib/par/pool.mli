(** Deterministic domain pool for the ATPG pipeline.

    A pool runs independent units of work on OCaml 5 domains (stdlib
    [Domain] + [Mutex]/[Condition]; no dependencies beyond the standard
    library) while keeping every observable result identical to a
    sequential run:

    - {b ordered results} — {!map} and {!map_array} return results in
      input order, whatever order the workers finish in;
    - {b deterministic failure} — when several tasks raise, the exception
      of the {e smallest input index} is re-raised (with its backtrace)
      after every task of the batch has completed, so the surfaced error
      does not depend on scheduling;
    - {b nested-use safety} — a task that calls back into [map] on any
      pool runs that inner map inline (sequentially) on its own domain,
      so nesting can neither deadlock nor oversubscribe the machine;
    - {b no shared randomness} — the pool never touches RNG state; the
      determinism contract (DESIGN.md, "Architecture & concurrency
      model") requires each task to derive any randomness from the run
      seed and the task's own identity only.

    A pool with [jobs = 1] spawns no domains and runs everything inline:
    the sequential paths of the pipeline are byte-for-byte unchanged when
    parallelism is off (the default).  With [jobs = n > 1] the pool keeps
    [n - 1] worker domains; the submitting domain executes queued tasks
    itself while it waits, so a batch uses exactly [n] domains. *)

type t
(** A pool of worker domains with a shared task queue.  Values of this
    type are safe to share across domains; submitting from several
    domains concurrently is permitted (tasks interleave in the shared
    queue) but the pipeline only ever submits from one domain at a
    time. *)

val create : jobs:int -> t
(** [create ~jobs] makes a pool that runs batches on [jobs] domains
    ([jobs - 1] spawned workers plus the submitter).  [jobs = 1] spawns
    nothing and makes {!map} run inline.  Raises [Invalid_argument] when
    [jobs < 1]. *)

val jobs : t -> int
(** The parallelism degree the pool was created with. *)

val worker_rank : unit -> int
(** Rank of the calling domain: [0] for the main / submitting domain,
    [i + 1] for the [i]-th spawned worker of its pool.  Loading this
    module registers the rank as the {!Pdf_obs.Span} track provider, so
    Chrome-trace exports render one track per pool domain. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs], running the
    applications on the pool's domains, and returns the results in input
    order.  Inline (sequential, left to right) when the pool has one
    job, when [xs] has fewer than two elements, or when called from
    inside a pool task.  If one or more applications raise, every task
    still runs to completion and the exception raised by the
    smallest-index element is re-raised. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}; same ordering, inlining and
    exception-propagation contract. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Outstanding tasks
    are completed first; calling {!map} after [shutdown] raises
    [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts the pool
    down when [f] returns or raises. *)

(** {2 The process default pool}

    Library entry points that accept [?pool] fall back to a lazily
    created process-wide pool, so the CLI flag [--jobs]/the [PDF_JOBS]
    environment variable reach every layer without explicit plumbing. *)

val default_jobs : unit -> int
(** The parallelism the default pool will use (or uses): the value set
    by {!set_default_jobs} if any, else [PDF_JOBS] when it parses as a
    positive integer, else [1]. *)

val set_default_jobs : int -> unit
(** Override the default parallelism (the CLI's [--jobs]).  If the
    default pool already exists with a different degree it is shut down
    and recreated on next use.  Raises [Invalid_argument] when the
    argument is [< 1]. *)

val default : unit -> t
(** The process-wide pool, created on first use with {!default_jobs}
    domains and shut down automatically at exit. *)
