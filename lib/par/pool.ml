(* Worker domains block on a Condition over a shared queue; the
   submitting domain executes queued tasks itself while its batch is
   outstanding, so [jobs] counts the submitter.  Determinism comes from
   (a) results being written to per-index slots and (b) failure
   selection by smallest index — never from completion order. *)

type batch = {
  b_mutex : Mutex.t;
  b_cond : Condition.t;
  mutable remaining : int;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
}

type t = {
  pool_jobs : int;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

(* Set while a domain is executing a pool task: nested [map] calls then
   run inline instead of waiting on workers that may all be busy. *)
let in_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

(* Rank of the current domain for observability: 0 for the main /
   submitting domain, i+1 for the i-th spawned worker of the pool it
   belongs to.  Registered as the span track provider so trace exports
   render one track per pool domain. *)
let rank_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let worker_rank () = Domain.DLS.get rank_key

let () = Pdf_obs.Span.set_track_provider worker_rank

let run_task task =
  let flag = Domain.DLS.get in_task in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) task

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.cond pool.mutex
  done;
  match Queue.take_opt pool.queue with
  | None -> Mutex.unlock pool.mutex (* closed and drained *)
  | Some task ->
    Mutex.unlock pool.mutex;
    run_task task;
    worker_loop pool

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      pool_jobs = jobs;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set rank_key (i + 1);
            worker_loop pool));
  pool

let jobs pool = pool.pool_jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.closed <- true;
  pool.workers <- [];
  Condition.broadcast pool.cond;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Record a failure, keeping the smallest task index so the propagated
   exception does not depend on which domain lost the race. *)
let record_failure batch i exn bt =
  Mutex.lock batch.b_mutex;
  (match batch.failed with
  | Some (j, _, _) when j <= i -> ()
  | Some _ | None -> batch.failed <- Some (i, exn, bt));
  Mutex.unlock batch.b_mutex

let finish_one batch =
  Mutex.lock batch.b_mutex;
  batch.remaining <- batch.remaining - 1;
  if batch.remaining = 0 then Condition.broadcast batch.b_cond;
  Mutex.unlock batch.b_mutex

(* The submitter helps: drain the queue, then sleep until the last
   outstanding task (running on a worker) signals the batch done. *)
let rec help_until_done pool batch =
  Mutex.lock pool.mutex;
  match Queue.take_opt pool.queue with
  | Some task ->
    Mutex.unlock pool.mutex;
    run_task task;
    help_until_done pool batch
  | None ->
    Mutex.unlock pool.mutex;
    Mutex.lock batch.b_mutex;
    while batch.remaining > 0 do
      Condition.wait batch.b_cond batch.b_mutex
    done;
    Mutex.unlock batch.b_mutex

let map_array pool f xs =
  let n = Array.length xs in
  if pool.pool_jobs = 1 || n < 2 || !(Domain.DLS.get in_task) then
    Array.map f xs
  else begin
    let results = Array.make n None in
    let batch =
      {
        b_mutex = Mutex.create ();
        b_cond = Condition.create ();
        remaining = n;
        failed = None;
      }
    in
    let task i () =
      (match f xs.(i) with
      | v -> results.(i) <- Some v
      | exception exn ->
        record_failure batch i exn (Printexc.get_raw_backtrace ()));
      finish_one batch
    in
    Mutex.lock pool.mutex;
    if pool.closed then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task i) pool.queue
    done;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    help_until_done pool batch;
    match batch.failed with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.map
        (function Some v -> v | None -> assert false (* remaining = 0 *))
        results
  end

let map pool f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs -> Array.to_list (map_array pool f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Process default pool                                                *)
(* ------------------------------------------------------------------ *)

let env_jobs () =
  match Sys.getenv_opt "PDF_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      Pdf_obs.Log.warn "ignoring invalid PDF_JOBS %S (want an int >= 1)" s;
      1)

let default_mutex = Mutex.create ()
let configured_jobs = ref None
let default_pool = ref None

let default_jobs () =
  Mutex.lock default_mutex;
  let jobs =
    match !configured_jobs with
    | Some jobs -> jobs
    | None ->
      let jobs = env_jobs () in
      configured_jobs := Some jobs;
      jobs
  in
  Mutex.unlock default_mutex;
  jobs

let set_default_jobs jobs =
  if jobs < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock default_mutex;
  let stale =
    match !default_pool with
    | Some pool when pool.pool_jobs <> jobs ->
      default_pool := None;
      Some pool
    | Some _ | None -> None
  in
  configured_jobs := Some jobs;
  Mutex.unlock default_mutex;
  Option.iter shutdown stale

let default () =
  Mutex.lock default_mutex;
  let pool =
    match !default_pool with
    | Some pool -> pool
    | None ->
      let jobs =
        match !configured_jobs with
        | Some jobs -> jobs
        | None ->
          let jobs = env_jobs () in
          configured_jobs := Some jobs;
          jobs
      in
      let pool = create ~jobs in
      default_pool := Some pool;
      at_exit (fun () -> shutdown pool);
      pool
  in
  Mutex.unlock default_mutex;
  pool
