(** Structured event log with severity levels.

    The threshold is initialised from the [PDF_LOG] environment variable
    ([debug], [info], [warn], [error] or [quiet]; default [warn]) and can
    be tightened or relaxed programmatically (the CLI's [--verbose]).
    Events go to [stderr] with a run-relative timestamp, a level tag and
    optional [key=value] fields, one event per line. *)

type level = Debug | Info | Warn | Error | Quiet

val of_string : string -> level option

val to_string : level -> string

val set_level : level -> unit

val level : unit -> level

val enabled : level -> bool
(** [enabled l] — would an event at level [l] be emitted?  Use to guard
    expensive message construction on hot paths. *)

val event : ?level:level -> ?fields:(string * string) list -> string -> unit
(** Structured event: a name plus [key=value] fields (default level
    [Info]). *)

val raw_line : string -> unit
(** Write one line to [stderr] through the log's mutex-protected writer,
    unconditionally (no level filter, no prefix).  Drivers that print
    their own progress lines from pool tasks must use this instead of
    [Printf.eprintf] so lines never interleave mid-line under
    [--jobs > 1]. *)

val debug : ('a, unit, string, unit) format4 -> 'a

val info : ('a, unit, string, unit) format4 -> 'a

val warn : ('a, unit, string, unit) format4 -> 'a

val error : ('a, unit, string, unit) format4 -> 'a
