type record = {
  name : string;
  depth : int;
  track : int;
  start_s : float;
  wall_s : float;
  self_s : float;
  alloc_words : float;
  seq_open : int;
  seq_close : int;
}

type sink = Null | Emit of (record -> unit)

let current_sink = ref Null

let set_sink s = current_sink := s

let sink () = !current_sink

let tee a b =
  match a, b with
  | Null, s | s, Null -> s
  | Emit f, Emit g -> Emit (fun r -> f r; g r)

(* Process epoch for [start_s]; shared by every domain so traces from
   pool workers land on one common time axis. *)
let t0 = Unix.gettimeofday ()

let epoch () = t0

(* Which trace track the current domain's spans belong to.  The default
   provider puts everything on track 0; [Pdf_par.Pool] installs a
   provider that returns the worker's rank so parallel phases render as
   one track per pool domain. *)
let track_provider = ref (fun () -> 0)

let set_track_provider f = track_provider := f

let current_track () = !track_provider ()

type frame = { frame_id : int; mutable child_s : float }

(* Stack of open spans; only touched when a sink is installed.  The
   stack is domain-local so spans opened by pool workers nest correctly
   within their own domain and never corrupt another domain's stack;
   child time is attributed within one domain only (a parent span on the
   main domain does not see time spent in worker spans — see
   EXPERIMENTS.md on reading trace profiles of parallel runs). *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let next_id = Atomic.make 0

(* Allocation accounting is per-domain by design.  [Gc.quick_stat]'s
   word counters are global accumulators that other domains fold into
   whenever they run a collection, so a quick_stat delta taken around a
   span that fans work out to a pool would charge the closing domain
   with every worker's allocation (measured: a 3-domain pool allocating
   ~1.2e7 words inflates the main domain's quick_stat delta by ~1.8e7
   words).  [Gc.minor_words] reads the calling domain's own allocation
   counter only, which is exactly the self-domain semantics documented
   in span.mli — a span reports the words its own domain allocated
   while it was open; worker allocation appears in the workers' own
   spans.  Blocks larger than the minor-heap threshold are allocated
   directly on the major heap and are not counted. *)
let allocated_words () = Gc.minor_words ()

let with_ name f =
  match !current_sink with
  | Null -> f ()
  | Emit emit ->
    let stack = Domain.DLS.get stack_key in
    let fr = { frame_id = Atomic.fetch_and_add next_id 1 + 1; child_s = 0. } in
    let depth = List.length !stack in
    stack := fr :: !stack;
    let a0 = allocated_words () in
    let t_open = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let wall = Unix.gettimeofday () -. t_open in
        let alloc = Float.max 0. (allocated_words () -. a0) in
        (* Pop back to (and including) our frame even if an exception
           skipped nested [finally] handlers. *)
        let rec pop = function
          | top :: rest when top.frame_id >= fr.frame_id ->
            if top.frame_id = fr.frame_id then rest else pop rest
          | rest -> rest
        in
        stack := pop !stack;
        (match !stack with
        | parent :: _ -> parent.child_s <- parent.child_s +. wall
        | [] -> ());
        emit
          {
            name;
            depth;
            track = !track_provider ();
            start_s = t_open -. t0;
            wall_s = wall;
            self_s = Float.max 0. (wall -. fr.child_s);
            alloc_words = alloc;
            seq_open = fr.frame_id;
            (* Same counter as [seq_open]: open and close events of one
               track are totally ordered by sequence number, which is what
               the Chrome-trace writer sorts on (timestamps alone can tie
               at microsecond resolution). *)
            seq_close = Atomic.fetch_and_add next_id 1 + 1;
          })
      f

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type acc = {
  acc_name : string;
  mutable acc_count : int;
  mutable acc_total : float;
  mutable acc_self : float;
  mutable acc_alloc : float;
}

(* Aggregators are fed from every domain that fires spans, so the fold
   into the hash table is serialised by a per-aggregator mutex. *)
type agg = { agg_tbl : (string, acc) Hashtbl.t; agg_mutex : Mutex.t }

type agg_row = {
  row_name : string;
  count : int;
  total_s : float;
  agg_self_s : float;
  alloc_mw : float;
}

let agg () : agg = { agg_tbl = Hashtbl.create 16; agg_mutex = Mutex.create () }

let agg_sink (a : agg) =
  Emit
    (fun r ->
      Mutex.lock a.agg_mutex;
      let acc =
        match Hashtbl.find_opt a.agg_tbl r.name with
        | Some acc -> acc
        | None ->
          let acc =
            {
              acc_name = r.name;
              acc_count = 0;
              acc_total = 0.;
              acc_self = 0.;
              acc_alloc = 0.;
            }
          in
          Hashtbl.replace a.agg_tbl r.name acc;
          acc
      in
      acc.acc_count <- acc.acc_count + 1;
      acc.acc_total <- acc.acc_total +. r.wall_s;
      acc.acc_self <- acc.acc_self +. r.self_s;
      acc.acc_alloc <- acc.acc_alloc +. r.alloc_words;
      Mutex.unlock a.agg_mutex)

let agg_rows (a : agg) =
  Mutex.lock a.agg_mutex;
  let rows =
    Hashtbl.fold
      (fun _ acc rows ->
        {
          row_name = acc.acc_name;
          count = acc.acc_count;
          total_s = acc.acc_total;
          agg_self_s = acc.acc_self;
          alloc_mw = acc.acc_alloc /. 1e6;
        }
        :: rows)
      a.agg_tbl []
  in
  Mutex.unlock a.agg_mutex;
  List.sort (fun x y -> Float.compare y.total_s x.total_s) rows

let agg_self_total (a : agg) =
  Mutex.lock a.agg_mutex;
  let t = Hashtbl.fold (fun _ acc t -> t +. acc.acc_self) a.agg_tbl 0. in
  Mutex.unlock a.agg_mutex;
  t

let agg_table ?wall_s (a : agg) =
  let columns =
    [
      ("span", Pdf_util.Table.Left); ("count", Pdf_util.Table.Right);
      ("total s", Pdf_util.Table.Right); ("self s", Pdf_util.Table.Right);
      ("alloc Mw", Pdf_util.Table.Right);
    ]
    @
    match wall_s with
    | Some _ -> [ ("% wall", Pdf_util.Table.Right) ]
    | None -> []
  in
  let t = Pdf_util.Table.create columns in
  List.iter
    (fun r ->
      let base =
        [
          r.row_name; string_of_int r.count;
          Printf.sprintf "%.3f" r.total_s;
          Printf.sprintf "%.3f" r.agg_self_s;
          Printf.sprintf "%.2f" r.alloc_mw;
        ]
      in
      let extra =
        match wall_s with
        | Some w when w > 0. ->
          [ Printf.sprintf "%.1f" (100. *. r.agg_self_s /. w) ]
        | Some _ -> [ "-" ]
        | None -> []
      in
      Pdf_util.Table.add_row t (base @ extra))
    (agg_rows a);
  t
