(* Domain safety: counters and gauges are Atomic cells (lock-free hot
   path); histograms guard their bucket array with a per-histogram mutex;
   the registry hash table itself is guarded by a per-registry mutex so
   concurrent registration (e.g. per-ordering ATPG counters created from
   pool workers) is safe.  Snapshots lock the same mutexes, so a snapshot
   taken while workers run is internally consistent per metric. *)

type counter = { c_name : string; count : int Atomic.t }

type gauge = { g_name : string; gauge_v : float Atomic.t }

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;
  bounds : float array;
  counts : int array; (* length = Array.length bounds + 1; last = overflow *)
  mutable sum : float;
  mutable total : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { entries : (string, metric) Hashtbl.t; r_mutex : Mutex.t }

let create () = { entries = Hashtbl.create 64; r_mutex = Mutex.create () }

let default = create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let clash name existing want =
  invalid_arg
    (Printf.sprintf "Metrics.%s: %S is already registered as a %s" want name
       (kind_name existing))

(* Look up or register under the registry mutex; [make] must not lock. *)
let intern registry name ~want ~match_ ~make =
  Mutex.lock registry.r_mutex;
  let result =
    match Hashtbl.find_opt registry.entries name with
    | Some m -> (
      match match_ m with
      | Some v -> Ok v
      | None -> Error (fun () -> clash name m want))
    | None ->
      let v, m = make () in
      Hashtbl.replace registry.entries name m;
      Ok v
  in
  Mutex.unlock registry.r_mutex;
  match result with Ok v -> v | Error raise_clash -> raise_clash ()

let counter ?(registry = default) name =
  intern registry name ~want:"counter"
    ~match_:(function Counter c -> Some c | _ -> None)
    ~make:(fun () ->
      let c = { c_name = name; count = Atomic.make 0 } in
      (c, Counter c))

let incr c = Atomic.incr c.count

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  ignore (Atomic.fetch_and_add c.count n)

let value c = Atomic.get c.count

let gauge ?(registry = default) name =
  intern registry name ~want:"gauge"
    ~match_:(function Gauge g -> Some g | _ -> None)
    ~make:(fun () ->
      let g = { g_name = name; gauge_v = Atomic.make 0. } in
      (g, Gauge g))

let set g v = Atomic.set g.gauge_v v

let set_int g v = Atomic.set g.gauge_v (float_of_int v)

let gauge_value g = Atomic.get g.gauge_v

let histogram ?(registry = default) ~buckets name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  for i = 1 to Array.length buckets - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done;
  intern registry name ~want:"histogram"
    ~match_:(function
      | Histogram h ->
        if h.bounds <> buckets then
          invalid_arg
            (Printf.sprintf
               "Metrics.histogram: %S already registered with other buckets"
               name);
        Some h
      | _ -> None)
    ~make:(fun () ->
      let h =
        {
          h_name = name;
          h_mutex = Mutex.create ();
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          sum = 0.;
          total = 0;
        }
      in
      (h, Histogram h))

let observe h v =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  Mutex.lock h.h_mutex;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1;
  Mutex.unlock h.h_mutex

let observe_int h v = observe h (float_of_int v)

type hist_data = {
  bounds : float array;
  counts : int array;
  sum : float;
  total : int;
}

type data = Counter_v of int | Gauge_v of float | Histogram_v of hist_data

let snapshot ?(registry = default) () =
  Mutex.lock registry.r_mutex;
  let entries =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry.entries []
  in
  Mutex.unlock registry.r_mutex;
  List.map
    (fun (name, m) ->
      let d =
        match m with
        | Counter c -> Counter_v (Atomic.get c.count)
        | Gauge g -> Gauge_v (Atomic.get g.gauge_v)
        | Histogram h ->
          Mutex.lock h.h_mutex;
          let d =
            Histogram_v
              {
                bounds = Array.copy h.bounds;
                counts = Array.copy h.counts;
                sum = h.sum;
                total = h.total;
              }
          in
          Mutex.unlock h.h_mutex;
          d
      in
      (name, d))
    entries
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset ?(registry = default) () =
  Mutex.lock registry.r_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c.count 0
      | Gauge g -> Atomic.set g.gauge_v 0.
      | Histogram h ->
        Mutex.lock h.h_mutex;
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.;
        h.total <- 0;
        Mutex.unlock h.h_mutex)
    registry.entries;
  Mutex.unlock registry.r_mutex

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let float_cell v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* One histogram encoding for every renderer: cumulative counts per
   upper bound, closed by a [+Inf] bucket equal to [total] — exactly the
   Prometheus exposition semantics.  The table/CSV detail cell, the
   JSONL export and Prom.render all consume this. *)
let cumulative (h : hist_data) =
  let acc = ref 0 in
  List.init
    (Array.length h.counts)
    (fun i ->
      acc := !acc + h.counts.(i);
      let bound =
        if i < Array.length h.bounds then Some h.bounds.(i) else None
      in
      (bound, !acc))

let bound_label = function
  | Some b -> float_cell b
  | None -> "+Inf"

let hist_detail (h : hist_data) =
  let parts =
    List.map
      (fun (bound, n) -> Printf.sprintf "le%s=%d" (bound_label bound) n)
      (cumulative h)
  in
  Printf.sprintf "sum=%s;%s" (float_cell h.sum) (String.concat ";" parts)

let row_of = function
  | name, Counter_v v -> [ name; "counter"; string_of_int v; "" ]
  | name, Gauge_v v -> [ name; "gauge"; float_cell v; "" ]
  | name, Histogram_v h ->
    [ name; "histogram"; string_of_int h.total; hist_detail h ]

let to_table ?(registry = default) () =
  let t =
    Pdf_util.Table.create
      [
        ("metric", Pdf_util.Table.Left); ("kind", Pdf_util.Table.Left);
        ("value", Pdf_util.Table.Right); ("detail", Pdf_util.Table.Left);
      ]
  in
  List.iter (fun e -> Pdf_util.Table.add_row t (row_of e)) (snapshot ~registry ());
  t

let to_csv ?(registry = default) () =
  let csv = Pdf_util.Csv.create ~header:[ "metric"; "kind"; "value"; "detail" ] in
  List.iter (fun e -> Pdf_util.Csv.add_row csv (row_of e)) (snapshot ~registry ());
  csv

let write_csv ?(registry = default) path =
  Pdf_util.Csv.write_file (to_csv ~registry ()) path

let json_escape = Json_text.escape

let json_float = Json_text.float

let jsonl_line (name, d) =
  match d with
  | Counter_v v ->
    Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"counter\",\"value\":%d}"
      (json_escape name) v
  | Gauge_v v ->
    Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"gauge\",\"value\":%s}"
      (json_escape name) (json_float v)
  | Histogram_v h ->
    (* Cumulative buckets with a closing +Inf, mirroring the Prometheus
       exposition (one encoding, two renderers). *)
    let bucket (bound, n) =
      let le =
        match bound with Some b -> json_float b | None -> "\"+Inf\""
      in
      Printf.sprintf "{\"le\":%s,\"n\":%d}" le n
    in
    let buckets = String.concat "," (List.map bucket (cumulative h)) in
    Printf.sprintf
      "{\"metric\":\"%s\",\"kind\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
      (json_escape name) h.total (json_float h.sum) buckets

let write_jsonl ?(registry = default) ?(append = false) path =
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  let oc = open_out_gen flags 0o644 path in
  List.iter
    (fun e ->
      output_string oc (jsonl_line e);
      output_char oc '\n')
    (snapshot ~registry ());
  close_out oc
