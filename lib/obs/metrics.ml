type counter = { c_name : string; mutable count : int }

type gauge = { g_name : string; mutable gauge_v : float }

type histogram = {
  h_name : string;
  bounds : float array;
  counts : int array; (* length = Array.length bounds + 1; last = overflow *)
  mutable sum : float;
  mutable total : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = { entries : (string, metric) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }

let default = create ()

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let clash name existing want =
  invalid_arg
    (Printf.sprintf "Metrics.%s: %S is already registered as a %s" want name
       (kind_name existing))

let counter ?(registry = default) name =
  match Hashtbl.find_opt registry.entries name with
  | Some (Counter c) -> c
  | Some m -> clash name m "counter"
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace registry.entries name (Counter c);
    c

let incr c = c.count <- c.count + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c.count <- c.count + n

let value c = c.count

let gauge ?(registry = default) name =
  match Hashtbl.find_opt registry.entries name with
  | Some (Gauge g) -> g
  | Some m -> clash name m "gauge"
  | None ->
    let g = { g_name = name; gauge_v = 0. } in
    Hashtbl.replace registry.entries name (Gauge g);
    g

let set g v = g.gauge_v <- v

let set_int g v = g.gauge_v <- float_of_int v

let gauge_value g = g.gauge_v

let histogram ?(registry = default) ~buckets name =
  if Array.length buckets = 0 then
    invalid_arg "Metrics.histogram: empty bucket list";
  for i = 1 to Array.length buckets - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done;
  match Hashtbl.find_opt registry.entries name with
  | Some (Histogram h) ->
    if h.bounds <> buckets then
      invalid_arg
        (Printf.sprintf
           "Metrics.histogram: %S already registered with other buckets" name);
    h
  | Some m -> clash name m "histogram"
  | None ->
    let h =
      {
        h_name = name;
        bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        sum = 0.;
        total = 0;
      }
    in
    Hashtbl.replace registry.entries name (Histogram h);
    h

let observe h v =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1

let observe_int h v = observe h (float_of_int v)

type hist_data = {
  bounds : float array;
  counts : int array;
  sum : float;
  total : int;
}

type data = Counter_v of int | Gauge_v of float | Histogram_v of hist_data

let snapshot ?(registry = default) () =
  Hashtbl.fold
    (fun name m acc ->
      let d =
        match m with
        | Counter c -> Counter_v c.count
        | Gauge g -> Gauge_v g.gauge_v
        | Histogram h ->
          Histogram_v
            {
              bounds = Array.copy h.bounds;
              counts = Array.copy h.counts;
              sum = h.sum;
              total = h.total;
            }
      in
      (name, d) :: acc)
    registry.entries []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset ?(registry = default) () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.gauge_v <- 0.
      | Histogram h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.sum <- 0.;
        h.total <- 0)
    registry.entries

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let float_cell v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let hist_detail (h : hist_data) =
  let parts = ref [] in
  Array.iteri
    (fun i n ->
      let label =
        if i < Array.length h.bounds then
          Printf.sprintf "le%s" (float_cell h.bounds.(i))
        else "inf"
      in
      parts := Printf.sprintf "%s=%d" label n :: !parts)
    h.counts;
  Printf.sprintf "sum=%s;%s" (float_cell h.sum)
    (String.concat ";" (List.rev !parts))

let row_of = function
  | name, Counter_v v -> [ name; "counter"; string_of_int v; "" ]
  | name, Gauge_v v -> [ name; "gauge"; float_cell v; "" ]
  | name, Histogram_v h ->
    [ name; "histogram"; string_of_int h.total; hist_detail h ]

let to_table ?(registry = default) () =
  let t =
    Pdf_util.Table.create
      [
        ("metric", Pdf_util.Table.Left); ("kind", Pdf_util.Table.Left);
        ("value", Pdf_util.Table.Right); ("detail", Pdf_util.Table.Left);
      ]
  in
  List.iter (fun e -> Pdf_util.Table.add_row t (row_of e)) (snapshot ~registry ());
  t

let to_csv ?(registry = default) () =
  let csv = Pdf_util.Csv.create ~header:[ "metric"; "kind"; "value"; "detail" ] in
  List.iter (fun e -> Pdf_util.Csv.add_row csv (row_of e)) (snapshot ~registry ());
  csv

let write_csv ?(registry = default) path =
  Pdf_util.Csv.write_file (to_csv ~registry ()) path

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let jsonl_line (name, d) =
  match d with
  | Counter_v v ->
    Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"counter\",\"value\":%d}"
      (json_escape name) v
  | Gauge_v v ->
    Printf.sprintf "{\"metric\":\"%s\",\"kind\":\"gauge\",\"value\":%s}"
      (json_escape name) (json_float v)
  | Histogram_v h ->
    let bucket i n =
      let le =
        if i < Array.length h.bounds then json_float h.bounds.(i)
        else "\"inf\""
      in
      Printf.sprintf "{\"le\":%s,\"n\":%d}" le n
    in
    let buckets =
      String.concat "," (List.mapi bucket (Array.to_list h.counts))
    in
    Printf.sprintf
      "{\"metric\":\"%s\",\"kind\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
      (json_escape name) h.total (json_float h.sum) buckets

let write_jsonl ?(registry = default) ?(append = false) path =
  let flags =
    if append then [ Open_wronly; Open_creat; Open_append ]
    else [ Open_wronly; Open_creat; Open_trunc ]
  in
  let oc = open_out_gen flags 0o644 path in
  List.iter
    (fun e ->
      output_string oc (jsonl_line e);
      output_char oc '\n')
    (snapshot ~registry ());
  close_out oc
