(** Span-based tracing: wall-clock + allocation per pipeline phase.

    [with_ name f] runs [f] inside a named span.  Spans nest; each
    completed span is delivered to the installed {!sink} as a {!record}
    carrying its inclusive wall time, its self time (inclusive minus the
    time spent in child spans) and the words it allocated.

    {b Allocation accounting is per-domain.}  [alloc_words] is the delta
    of [Gc.minor_words] — the {e closing domain's own} minor-heap
    allocation counter — between span open and close.  A span that fans
    work out to a {!Pdf_par.Pool} therefore reports only what its own
    domain allocated while waiting (plus any queued tasks the submitting
    domain executed itself); allocation performed by worker domains is
    attributed to the spans {e those} domains open, never to the parent.
    [Gc.quick_stat]'s word counters are unsuitable here: they are global
    accumulators that other domains fold into on every collection, so a
    cross-domain span would be charged with the whole pool's allocation.
    Blocks exceeding the minor-heap allocation threshold go straight to
    the major heap and are not counted.  The delta is clamped at [0].

    The default sink is {!Null}: a span then costs a single match on the
    sink reference, so instrumented hot paths are essentially free when
    tracing is off. *)

type record = {
  name : string;
  depth : int;  (** nesting depth at entry; 0 = top level *)
  track : int;  (** trace track of the emitting domain (see {!set_track_provider}) *)
  start_s : float;  (** seconds from the process {!epoch} to span open *)
  wall_s : float;  (** inclusive wall-clock seconds *)
  self_s : float;  (** [wall_s] minus the time spent in child spans *)
  alloc_words : float;
      (** minor-heap words the {e closing domain} allocated while the
          span was open (self-domain only, [>= 0]; see the module
          preamble) *)
  seq_open : int;  (** global sequence number taken at span open *)
  seq_close : int;
      (** global sequence number taken at span close; open/close events of
          one track are totally ordered by these (timestamps can tie at
          microsecond resolution) *)
}

type sink = Null | Emit of (record -> unit)

val set_sink : sink -> unit
(** Install a sink process-wide.  {!Null} disables tracing. *)

val sink : unit -> sink

val tee : sink -> sink -> sink
(** Deliver every record to both sinks ({!Null} is the neutral element);
    lets the CLI combine the aggregating profile with the Chrome-trace
    collector. *)

val epoch : unit -> float
(** [Unix.gettimeofday] at module initialisation — the zero point of
    every {!record.start_s}. *)

val set_track_provider : (unit -> int) -> unit
(** Install the function that names the current domain's trace track.
    The default provider returns [0] for every domain; [Pdf_par.Pool]
    installs one that returns the pool worker's rank ([0] = the
    submitting/main domain), giving the Chrome-trace exporter one track
    per pool domain. *)

val current_track : unit -> int
(** The track the installed provider assigns to the calling domain. *)

val with_ : string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span.  The record is emitted even when
    the thunk raises (the exception is re-raised). *)

(** {2 Aggregation}

    An aggregator is a sink that folds records into one row per span
    name — bounded memory no matter how many spans fire — and renders the
    result as a profile table. *)

type agg

type agg_row = {
  row_name : string;
  count : int;
  total_s : float;  (** summed inclusive wall time *)
  agg_self_s : float;  (** summed self time *)
  alloc_mw : float;  (** summed allocation, in millions of words *)
}

val agg : unit -> agg

val agg_sink : agg -> sink

val agg_rows : agg -> agg_row list
(** Sorted by decreasing total time. *)

val agg_self_total : agg -> float
(** Sum of self time over every span — total instrumented wall time,
    with no double counting across nesting levels. *)

val agg_table : ?wall_s:float -> agg -> Pdf_util.Table.t
(** Profile table: span, count, total/self seconds, allocation; when
    [wall_s] is given, a percent-of-wall-clock column (from self time)
    is included. *)
