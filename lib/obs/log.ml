type level = Debug | Info | Warn | Error | Quiet

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3 | Quiet -> 4

let of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | "quiet" | "silent" | "none" -> Some Quiet
  | _ -> None

let to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Quiet -> "quiet"

(* Every stderr line the pipeline emits — events, formatted log
   messages, and the raw progress lines of the drivers — goes through
   this one mutex-protected writer, so lines from concurrent pool
   workers never interleave mid-line. *)
let emit_mutex = Mutex.create ()

let raw_line line =
  Mutex.lock emit_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock emit_mutex) @@ fun () ->
  Printf.eprintf "%s\n%!" line

let initial =
  match Sys.getenv_opt "PDF_LOG" with
  | Some s -> (
    match of_string s with
    | Some l -> l
    | None ->
      raw_line (Printf.sprintf "[pdf] ignoring unknown PDF_LOG %S" s);
      Warn)
  | None -> Warn

let current = ref initial

let set_level l = current := l

let level () = !current

let enabled l = l <> Quiet && rank l >= rank !current

let t0 = Unix.gettimeofday ()

let emit l msg fields =
  let fields_s =
    match fields with
    | [] -> ""
    | fs ->
      " " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) fs)
  in
  raw_line
    (Printf.sprintf "[pdf %8.3f] %-5s %s%s"
       (Unix.gettimeofday () -. t0)
       (match l with
       | Debug -> "DEBUG"
       | Info -> "INFO"
       | Warn -> "WARN"
       | Error -> "ERROR"
       | Quiet -> "QUIET")
       msg fields_s)

let event ?(level = Info) ?(fields = []) name =
  if enabled level then emit level name fields

let logf l fmt =
  Printf.ksprintf (fun s -> if enabled l then emit l s []) fmt

let debug fmt = logf Debug fmt

let info fmt = logf Info fmt

let warn fmt = logf Warn fmt

let error fmt = logf Error fmt
