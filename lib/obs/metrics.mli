(** Metrics registry: named monotonic counters, gauges and fixed-bucket
    histograms for the ATPG pipeline.

    Metrics are registered by name in a registry (the shared {!default}
    registry unless one is passed explicitly); registration is
    idempotent — asking for an existing name returns the existing
    instance, so modules can declare their metrics at load time and
    hot paths pay only a single mutable-field update per increment.

    Snapshots are taken on demand and can be rendered as an aligned text
    table, a CSV ({!Pdf_util.Csv}) or a JSON-lines file, so experiment
    drivers can persist one row per metric next to their outputs. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t
(** A fresh, empty registry (used by tests for isolation). *)

val default : t
(** The process-wide registry all library instrumentation uses. *)

(** {2 Counters} *)

val counter : ?registry:t -> string -> counter
(** Get or create the named monotonic counter.  Raises [Invalid_argument]
    if the name is already registered as a different metric kind. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** [add c n] with [n < 0] raises [Invalid_argument] (counters are
    monotonic). *)

val value : counter -> int

(** {2 Gauges} *)

val gauge : ?registry:t -> string -> gauge

val set : gauge -> float -> unit

val set_int : gauge -> int -> unit

val gauge_value : gauge -> float

(** {2 Histograms} *)

val histogram : ?registry:t -> buckets:float array -> string -> histogram
(** Fixed upper-bound buckets, strictly increasing; an implicit overflow
    bucket collects everything above the last bound.  Re-registering the
    same name with different buckets raises [Invalid_argument]. *)

val observe : histogram -> float -> unit

val observe_int : histogram -> int -> unit

(** {2 Snapshot, reset, export} *)

type hist_data = {
  bounds : float array;
  counts : int array;  (** length [Array.length bounds + 1]; last = overflow *)
  sum : float;
  total : int;
}

type data =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_data

val snapshot : ?registry:t -> unit -> (string * data) list
(** Current values, sorted by metric name. *)

val cumulative : hist_data -> (float option * int) list
(** The histogram's buckets as cumulative counts per upper bound, closed
    by an implicit [+Inf] bucket ([None]) whose count equals
    [hist_data.total] — the Prometheus exposition semantics.  Every
    renderer (table/CSV detail, JSONL, {!Prom}) consumes this one
    encoding. *)

val bound_label : float option -> string
(** Compact rendering of a {!cumulative} upper bound; [None] renders as
    ["+Inf"]. *)

val reset : ?registry:t -> unit -> unit
(** Zero every metric in the registry (registrations are kept). *)

val to_table : ?registry:t -> unit -> Pdf_util.Table.t
(** Columns [metric | kind | value | detail]; histograms render their
    bucket counts in [detail]. *)

val to_csv : ?registry:t -> unit -> Pdf_util.Csv.t
(** Same columns as {!to_table}. *)

val write_csv : ?registry:t -> string -> unit

val write_jsonl : ?registry:t -> ?append:bool -> string -> unit
(** One JSON object per metric per line, e.g.
    [{"metric":"justify.runs","kind":"counter","value":1234}]. *)
