(** Run provenance ledger: append-only structured records describing the
    pipeline's decisions — one record per generated test (primary fault,
    folded secondaries with their fold step, justification effort) and
    one per fault disposition (detected-by, undetectable class, aborted
    or uncovered), plus the undetectability verdicts of the target-set
    filter.

    The ledger layer is vocabulary-agnostic: payloads are assembled by
    the layers that own the data ({!Pdf_faults.Target_sets},
    {!Pdf_core.Atpg}); the schema is documented in DESIGN.md §9.

    {b Determinism.}  Records never carry timestamps or other
    schedule-dependent data, and one generation run appends in program
    order, so {!to_jsonl} is byte-identical across [--jobs] values and
    scalar/packed simulation engines — the extension of the DESIGN.md
    §7.3/§8.3 contract that CI diffs on every push. *)

(** Structured field values (JSON-shaped, but floats are deliberately
    absent: everything the provenance schema needs is integral, and
    float formatting is where byte-determinism goes to die). *)
type value =
  | S of string
  | I of int
  | B of bool
  | L of value list
  | O of (string * value) list

type record = { kind : string; fields : (string * value) list }

type t

val create : unit -> t

val record : t -> kind:string -> (string * value) list -> unit
(** Append one record (mutex-protected; field order is preserved). *)

val size : t -> int

val records : t -> record list
(** In append order. *)

(** {2 Queries} *)

val field : record -> string -> value option

val get_string : record -> string -> string option
(** [None] when absent or not an {!S}. *)

val get_int : record -> string -> int option

val find : t -> kind:string -> (record -> bool) -> record list
(** Records of one kind satisfying a predicate, in append order. *)

(** {2 Export} *)

val to_jsonl : t -> string
(** One JSON object per record per line, [kind] first. *)

val write_jsonl : t -> string -> unit
