type t = {
  version : string;
  git_rev : string;
  git_dirty : bool;
  ocaml_version : string;
  hostname : string;
  os_type : string;
  word_size : int;
  jobs : int;
  bitsim : bool;
}

let version = "1.0.0"

(* One short-lived subprocess per question, memoised for the process
   lifetime: the fingerprint is embedded in every bench report and in
   the --version string, and git's answer cannot change mid-run. *)
let command_line cmd =
  try
    let ic = Unix.open_process_in cmd in
    let line = try Some (input_line ic) with End_of_file -> None in
    (* Drain so git never blocks on a full pipe. *)
    (try
       while true do
         ignore (input_line ic)
       done
     with End_of_file -> ());
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some l when String.trim l <> "" -> Some (String.trim l)
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let git_rev =
  lazy
    (match command_line "git rev-parse HEAD 2>/dev/null" with
    | Some rev -> rev
    | None -> "unknown")

let git_dirty =
  lazy
    (match command_line "git status --porcelain 2>/dev/null | head -1" with
    | Some _ -> true
    | None -> false)

let env_jobs () =
  match Sys.getenv_opt "PDF_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let env_bitsim () =
  match Sys.getenv_opt "PDF_BITSIM" with
  | Some ("0" | "false" | "no" | "off") -> false
  | Some _ | None -> true

let capture ?jobs ?bitsim () =
  {
    version;
    git_rev = Lazy.force git_rev;
    git_dirty = (Lazy.force git_rev <> "unknown") && Lazy.force git_dirty;
    ocaml_version = Sys.ocaml_version;
    hostname = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    os_type = Sys.os_type;
    word_size = Sys.word_size;
    jobs = (match jobs with Some j -> j | None -> env_jobs ());
    bitsim = (match bitsim with Some b -> b | None -> env_bitsim ());
  }

let to_json f =
  Printf.sprintf
    "{\"version\":%s,\"git_rev\":%s,\"git_dirty\":%b,\"ocaml_version\":%s,\
     \"hostname\":%s,\"os_type\":%s,\"word_size\":%d,\"jobs\":%d,\
     \"bitsim\":%b}"
    (Json_text.quote f.version) (Json_text.quote f.git_rev) f.git_dirty
    (Json_text.quote f.ocaml_version) (Json_text.quote f.hostname)
    (Json_text.quote f.os_type) f.word_size f.jobs f.bitsim

let short_rev f =
  if f.git_rev = "unknown" then "unknown"
  else String.sub f.git_rev 0 (min 7 (String.length f.git_rev))

let summary_line f =
  Printf.sprintf "%s (git %s%s, ocaml %s, %d-bit)" f.version (short_rev f)
    (if f.git_dirty then "+dirty" else "")
    f.ocaml_version f.word_size

let to_table_lines f =
  [
    ("version", f.version);
    ("git revision", f.git_rev ^ if f.git_dirty then " (dirty)" else "");
    ("ocaml", f.ocaml_version);
    ("hostname", f.hostname);
    ("os type", f.os_type);
    ("word size", string_of_int f.word_size);
    ("jobs", string_of_int f.jobs);
    ("bitsim", if f.bitsim then "packed" else "scalar");
  ]
