(** Prometheus text-exposition exporter for the {!Metrics} registry.

    Counters render as [<name>_total], gauges bare, histograms as
    cumulative [<name>_bucket{le="..."}] series closed by [le="+Inf"]
    plus [<name>_sum] / [<name>_count] — the cumulative counts come from
    {!Metrics.cumulative}, the same encoding the table/CSV/JSONL
    renderers use.  Names are sanitised to the Prometheus grammar and
    prefixed with [pdf_]. *)

val sanitize : string -> string
(** [sanitize "justify.runs"] is ["pdf_justify_runs"]. *)

val render : ?registry:Metrics.t -> unit -> string

val write : ?registry:Metrics.t -> string -> unit
(** Overwrite [path] with {!render}'s output — the node-exporter
    textfile-collector convention. *)

val start_periodic_flush :
  ?registry:Metrics.t -> period_s:float -> string -> unit -> unit
(** [start_periodic_flush ~period_s path] spawns a helper domain that
    rewrites [path] every [period_s] seconds (for watching long runs);
    the returned thunk stops the domain and performs one final write.
    Calling the thunk twice is harmless.  Raises [Invalid_argument] if
    [period_s <= 0]. *)
