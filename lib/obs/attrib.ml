(* Structural effort attribution (DESIGN.md §14).

   A [sheet] is a set of plain int arrays indexed by net id — the
   cheapest store the hot loops can bump (one bounds-checked load, add,
   store; no hashing, no boxing).  Sheets are domain-local: each engine
   or worker batch owns one and bumps it without synchronisation; the
   shared store [t] only sees whole sheets through [merge], under a
   mutex.  Because every field is an integer sum, merging is commutative
   and associative, so the merged store is identical whatever order the
   pool's sheets arrive in — attribution output is jobs-invariant by
   construction.

   Two families of counters live side by side:

   - {e semantic} counters (trials, trial_evals, resim_cone, conflicts,
     backtracks, cand_evals) measure work defined by the search itself —
     what a full-pass engine would do — and are byte-identical across
     the PDF_INCSIM / PDF_BITSIM engine toggles.  Only these are
     exported by profile renderers.
   - the {e engine-variant} counter (inc_resims) measures the actual
     dirty-cone gate re-evaluations of the incremental engines.  It
     feeds the effort-conservation oracle (sum == sim.inc.resim_gates)
     but is excluded from every byte-compared output. *)

type sheet = {
  nets : int;
  trials : int array;  (* per PI net: trial simulations rooted there *)
  trial_evals : int array;  (* per gate-output net: overlay evaluations *)
  resim_cone : int array;  (* per gate-output net: resim calls x cone *)
  conflicts : int array;  (* per net: requirement conflicts hit there *)
  backtracks : int array;  (* per decision-PI net: backtracks charged *)
  cand_evals : int array;  (* per req net: candidate delta scans *)
  inc_resims : int array;  (* per gate-output net: incremental resims *)
  mutable t_runs : int;
  mutable t_trials : int;
  mutable t_trial_evals : int;
  mutable t_resim_calls : int;
  mutable t_resim_gates : int;
  mutable t_conflicts : int;
  mutable t_backtracks : int;
  mutable t_cand_scans : int;
  mutable t_inc_resims : int;
}

let make_sheet ~nets =
  {
    nets;
    trials = Array.make nets 0;
    trial_evals = Array.make nets 0;
    resim_cone = Array.make nets 0;
    conflicts = Array.make nets 0;
    backtracks = Array.make nets 0;
    cand_evals = Array.make nets 0;
    inc_resims = Array.make nets 0;
    t_runs = 0;
    t_trials = 0;
    t_trial_evals = 0;
    t_resim_calls = 0;
    t_resim_gates = 0;
    t_conflicts = 0;
    t_backtracks = 0;
    t_cand_scans = 0;
    t_inc_resims = 0;
  }

type t = { nets : int; merged : sheet; lock : Mutex.t }

let create ~nets = { nets; merged = make_sheet ~nets; lock = Mutex.create () }

let nets t = t.nets

let fresh t = make_sheet ~nets:t.nets

let add_into (dst : sheet) (src : sheet) =
  if dst.nets <> src.nets then invalid_arg "Attrib.merge: net count mismatch";
  let arr d s =
    for i = 0 to dst.nets - 1 do
      d.(i) <- d.(i) + s.(i)
    done
  in
  arr dst.trials src.trials;
  arr dst.trial_evals src.trial_evals;
  arr dst.resim_cone src.resim_cone;
  arr dst.conflicts src.conflicts;
  arr dst.backtracks src.backtracks;
  arr dst.cand_evals src.cand_evals;
  arr dst.inc_resims src.inc_resims;
  dst.t_runs <- dst.t_runs + src.t_runs;
  dst.t_trials <- dst.t_trials + src.t_trials;
  dst.t_trial_evals <- dst.t_trial_evals + src.t_trial_evals;
  dst.t_resim_calls <- dst.t_resim_calls + src.t_resim_calls;
  dst.t_resim_gates <- dst.t_resim_gates + src.t_resim_gates;
  dst.t_conflicts <- dst.t_conflicts + src.t_conflicts;
  dst.t_backtracks <- dst.t_backtracks + src.t_backtracks;
  dst.t_cand_scans <- dst.t_cand_scans + src.t_cand_scans;
  dst.t_inc_resims <- dst.t_inc_resims + src.t_inc_resims

let add_sheet ~into src = add_into into src

let merge t sheet =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> add_into t.merged sheet)

let snapshot t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      let copy = make_sheet ~nets:t.nets in
      add_into copy t.merged;
      copy)

(* One candidate delta scan: the scan reads every requirement net of the
   candidate once, whatever the accumulated set holds. *)
let note_cand_scan (sheet : sheet) reqs =
  sheet.t_cand_scans <- sheet.t_cand_scans + 1;
  List.iter
    (fun (net, _) -> sheet.cand_evals.(net) <- sheet.cand_evals.(net) + 1)
    reqs

(* Engine-invariant effort charged to one net (excludes [inc_resims]). *)
let semantic_total (sheet : sheet) net =
  sheet.trials.(net) + sheet.trial_evals.(net) + sheet.resim_cone.(net)
  + sheet.conflicts.(net) + sheet.backtracks.(net) + sheet.cand_evals.(net)

let grand_total (sheet : sheet) =
  let sum = ref 0 in
  for net = 0 to sheet.nets - 1 do
    sum := !sum + semantic_total sheet net
  done;
  !sum
