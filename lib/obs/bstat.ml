type gc_delta = {
  minor_collections : int;
  major_collections : int;
  promoted_words : float;
  top_heap_words : int;
}

type measurement = {
  samples : float array;
  iters : int;
  gc : gc_delta;
}

let max_calibrated_iters = 10_000

let measure ?(warmup = 1) ?(repeat = 5) ?(min_sample_s = 0.01) f =
  if repeat < 1 then invalid_arg "Bstat.measure: repeat < 1";
  if warmup < 0 then invalid_arg "Bstat.measure: warmup < 0";
  for _ = 1 to warmup do
    f ()
  done;
  let iters =
    if min_sample_s <= 0. then 1
    else begin
      (* One probe execution sizes the inner loop; it doubles as a last
         warmup run.  A probe too fast for the clock (t = 0) maxes the
         loop out. *)
      let t0 = Unix.gettimeofday () in
      f ();
      let t = Unix.gettimeofday () -. t0 in
      if t <= 0. then max_calibrated_iters
      else max 1 (min max_calibrated_iters (int_of_float (ceil (min_sample_s /. t))))
    end
  in
  let g0 = Gc.quick_stat () in
  let samples =
    Array.init repeat (fun _ ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to iters do
          f ()
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int iters)
  in
  let g1 = Gc.quick_stat () in
  {
    samples;
    iters;
    gc =
      {
        minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
        major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
        promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
        top_heap_words = g1.Gc.top_heap_words;
      };
  }

type summary = {
  n_raw : int;
  outliers : int;
  mean_s : float;
  median_s : float;
  min_s : float;
  max_s : float;
  stddev_s : float;
  q1_s : float;
  q3_s : float;
  iqr_s : float;
}

let quantile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Bstat.quantile: empty array";
  if n = 1 then sorted.(0)
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize samples =
  let n_raw = Array.length samples in
  if n_raw = 0 then invalid_arg "Bstat.summarize: empty sample vector";
  let sorted = Array.copy samples in
  Array.sort Float.compare sorted;
  let q1 = quantile sorted 0.25 and q3 = quantile sorted 0.75 in
  let iqr = q3 -. q1 in
  let lo_fence = q1 -. (1.5 *. iqr) and hi_fence = q3 +. (1.5 *. iqr) in
  let kept =
    Array.of_list
      (List.filter
         (fun s -> s >= lo_fence && s <= hi_fence)
         (Array.to_list sorted))
  in
  (* The fences always retain the quartiles themselves, so [kept] is
     never empty. *)
  let n = Array.length kept in
  let mean = Array.fold_left ( +. ) 0. kept /. float_of_int n in
  let var =
    Array.fold_left (fun acc s -> acc +. ((s -. mean) ** 2.)) 0. kept
    /. float_of_int n
  in
  {
    n_raw;
    outliers = n_raw - n;
    mean_s = mean;
    median_s = quantile kept 0.5;
    min_s = kept.(0);
    max_s = kept.(n - 1);
    stddev_s = sqrt var;
    q1_s = quantile kept 0.25;
    q3_s = quantile kept 0.75;
    iqr_s = quantile kept 0.75 -. quantile kept 0.25;
  }

let noise_pct s = if s.median_s = 0. then 0. else 100. *. s.iqr_s /. s.median_s

type verdict =
  | Same
  | Faster of float
  | Slower of float

let compare_medians ?(min_effect_pct = 5.) ~baseline ~current () =
  if baseline.median_s = 0. then Same
  else begin
    let shift =
      100. *. (current.median_s -. baseline.median_s) /. baseline.median_s
    in
    let noise = Float.max (noise_pct baseline) (noise_pct current) in
    if Float.abs shift <= Float.max min_effect_pct noise then Same
    else if shift > 0. then Slower shift
    else Faster (-.shift)
  end

let verdict_to_string = function
  | Same -> "same"
  | Faster pct -> Printf.sprintf "faster (%.1f%%)" pct
  | Slower pct -> Printf.sprintf "SLOWER (%.1f%%)" pct
