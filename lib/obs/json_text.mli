(** JSON text encoding shared by the pdf_obs exporters.  Encoding only —
    nothing in the pipeline parses JSON back. *)

val escape : string -> string
(** Escape for inclusion inside a JSON string literal (no quotes added). *)

val quote : string -> string
(** [escape] wrapped in double quotes. *)

val float : float -> string
(** Compact float rendering: integral values without a fraction, [null]
    for NaN, [%.17g] (round-trippable) otherwise. *)
