(** JSON text encoding shared by the pdf_obs exporters, plus a minimal
    parser.  The pipeline itself only encodes; the parser exists for the
    one consumer that must read JSON back — the benchmark harness
    loading a baseline [BENCH_*.json] for regression comparison
    (DESIGN.md §11). *)

val escape : string -> string
(** Escape for inclusion inside a JSON string literal (no quotes added). *)

val quote : string -> string
(** [escape] wrapped in double quotes. *)

val float : float -> string
(** Compact float rendering: integral values without a fraction, [null]
    for NaN, [%.17g] (round-trippable) otherwise. *)

(** {2 Parsing}

    A by-the-book recursive-descent parser over the JSON value model —
    enough to read back anything the exporters emit.  Numbers are kept
    as [float] (every emitted number fits), object fields keep file
    order, duplicate keys keep the last binding on {!member} lookups. *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

val parse : string -> (v, string) result
(** Parse one JSON document; trailing non-whitespace is an error.  The
    error string carries a character offset. *)

val parse_file : string -> (v, string) result
(** {!parse} on a whole file's contents; I/O errors map to [Error]. *)

val member : string -> v -> v option
(** Field lookup on an [Obj] (last binding wins); [None] otherwise. *)

val to_num : v -> float option
val to_str : v -> string option

