(** Structural effort attribution: per-net counters for the
    justification and simulation hot loops (DESIGN.md §14).

    A {!sheet} is a block of plain int arrays indexed by net id — cheap
    enough for the trial loop and the dirty-cone walks to bump inline.
    Sheets are domain-local and unsynchronised; a shared store {!t}
    accumulates whole sheets under a mutex via {!merge}.  All fields are
    integer sums, so merging is commutative: the merged store is
    identical whatever order the pool's sheets arrive in.

    The [inc_resims] family measures the incremental engines' actual
    per-gate work and therefore varies with [PDF_INCSIM]/[PDF_BITSIM];
    every other counter is {e semantic} (defined by the search, not the
    engine) and byte-identical across engine toggles.  Renderers must
    export only semantic counters; [inc_resims] exists for the
    effort-conservation oracle. *)

type sheet = {
  nets : int;
  trials : int array;
      (** per PI net: trial simulations rooted at this input *)
  trial_evals : int array;
      (** per gate-output net: overlay gate evaluations *)
  resim_cone : int array;
      (** per gate-output net: resimulation calls × cone membership
          (the full-pass cost, engine-invariant) *)
  conflicts : int array;
      (** per net: requirement conflicts detected at this net *)
  backtracks : int array;
      (** per decision-PI net: complete-search backtracks charged *)
  cand_evals : int array;
      (** per requirement net: candidate delta-scan touches *)
  inc_resims : int array;
      (** per gate-output net: incremental dirty-cone re-evaluations —
          engine-variant, never exported *)
  mutable t_runs : int;
  mutable t_trials : int;
  mutable t_trial_evals : int;
  mutable t_resim_calls : int;
  mutable t_resim_gates : int;
  mutable t_conflicts : int;
  mutable t_backtracks : int;
  mutable t_cand_scans : int;
  mutable t_inc_resims : int;
}
(** Scalar [t_*] totals mirror the process-wide [justify.*] /
    [atpg.delta_evals] / [sim.inc.resim_gates] metric counters, but
    per-sheet; the conservation oracle checks both against each other
    and against the per-net array sums. *)

type t
(** A merge store sized for one circuit's nets. *)

val create : nets:int -> t

val nets : t -> int

val make_sheet : nets:int -> sheet
(** A zeroed standalone sheet. *)

val fresh : t -> sheet
(** A zeroed sheet sized for [t]'s circuit, ready for one engine or one
    worker batch to bump without synchronisation. *)

val merge : t -> sheet -> unit
(** Add every counter of the sheet into the store, under the store's
    lock.  The sheet is not modified and may be discarded. *)

val add_sheet : into:sheet -> sheet -> unit
(** Unsynchronised sheet-into-sheet accumulate (both sheets must be
    owned by the calling domain).  Used by the portfolio justification
    engine to fold its members' per-member sheets into the run's sheet
    in fixed member order at the flush point. *)

val snapshot : t -> sheet
(** A deep copy of the merged totals, taken under the lock. *)

val note_cand_scan : sheet -> (int * 'a) list -> unit
(** Charge one candidate delta scan: bumps [t_cand_scans] once and
    [cand_evals] for every requirement net in the list. *)

val semantic_total : sheet -> int -> int
(** Engine-invariant effort charged to one net — the sum of all
    per-net counters except [inc_resims]. *)

val grand_total : sheet -> int
(** Sum of {!semantic_total} over all nets. *)
