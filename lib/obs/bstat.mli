(** Statistical benchmarking core (DESIGN.md §11).

    Three concerns, deliberately separated from any workload knowledge:

    - {b measurement} — {!measure} runs a thunk [warmup] times untimed,
      auto-calibrates an inner iteration count so each sample lasts at
      least [min_sample_s], then records [repeat] wall-clock samples and
      the GC activity of the timed region;
    - {b summary} — {!summarize} reduces a sample vector to
      median/mean/min/max/stddev and quartiles, after rejecting
      outliers outside the Tukey fences [q1 - 1.5*IQR, q3 + 1.5*IQR];
    - {b comparison} — {!compare_medians} is the noise-aware
      changed-vs-same verdict CI regression gates are built on: a median
      shift only counts when it clears both the configured minimum
      effect and the noise band of the two sample sets. *)

(** GC activity across the timed repetitions (deltas of
    [Gc.quick_stat], whole-process; [top_heap_words] is the high-water
    mark at the end of the measurement, not a delta). *)
type gc_delta = {
  minor_collections : int;
  major_collections : int;
  promoted_words : float;
  top_heap_words : int;
}

type measurement = {
  samples : float array;
      (** seconds per single execution of the thunk, one per repetition
          (each sample is an inner-loop average when calibration chose
          [iters > 1]) *)
  iters : int;  (** executions per sample chosen by calibration *)
  gc : gc_delta;  (** GC activity summed over all timed executions *)
}

val measure :
  ?warmup:int ->
  ?repeat:int ->
  ?min_sample_s:float ->
  (unit -> unit) ->
  measurement
(** Defaults: [warmup = 1], [repeat = 5], [min_sample_s = 0.01].
    Calibration runs the thunk once more (untimed) to size the inner
    loop as [ceil (min_sample_s / t)], capped at [10_000]; pass
    [min_sample_s = 0.] to force one execution per sample.  Raises
    [Invalid_argument] when [repeat < 1] or [warmup < 0]. *)

(** Summary statistics of one sample vector.  All figures except [n_raw]
    and [outliers] are computed on the samples that survive the Tukey
    fence. *)
type summary = {
  n_raw : int;  (** samples before outlier rejection *)
  outliers : int;  (** samples outside [q1 - 1.5*IQR, q3 + 1.5*IQR] *)
  mean_s : float;
  median_s : float;
  min_s : float;
  max_s : float;
  stddev_s : float;  (** population standard deviation *)
  q1_s : float;
  q3_s : float;
  iqr_s : float;  (** [q3_s - q1_s] *)
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty vector.  The input is not
    mutated.  Quartiles use linear interpolation; the fences are
    computed on the raw vector, the remaining statistics on the
    retained samples. *)

val quantile : float array -> float -> float
(** [quantile sorted p] with [p] in [[0, 1]], linear interpolation
    between order statistics.  The array must be sorted ascending. *)

val noise_pct : summary -> float
(** Relative noise of a sample set: [100 * iqr_s / median_s] ([0] when
    the median is [0]).  This is the half-width of the band inside which
    a median shift is indistinguishable from run-to-run jitter. *)

type verdict =
  | Same
  | Faster of float  (** median improved by this percentage *)
  | Slower of float  (** median regressed by this percentage *)

val compare_medians :
  ?min_effect_pct:float ->
  baseline:summary ->
  current:summary ->
  unit ->
  verdict
(** Noise-aware comparison.  Let [shift = 100 * (current.median_s -
    baseline.median_s) / baseline.median_s].  The verdict is {!Same}
    unless [|shift|] exceeds {e both} [min_effect_pct] (default [5.])
    and the larger of the two sets' {!noise_pct} — so a noisy pair of
    runs needs a proportionally larger shift before it counts as a
    change, and a quiet pair still needs a material effect.  A zero
    baseline median compares as {!Same} (nothing meaningful to gate
    on). *)

val verdict_to_string : verdict -> string
(** ["same"], ["faster (12.3%)"], ["SLOWER (12.3%)"]. *)
