(* Shared JSON text encoding for the pdf_obs exporters (metrics JSONL,
   the provenance ledger and the Chrome trace writer).  Encoding only:
   none of the exporters ever needs to parse JSON back. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

let float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v
