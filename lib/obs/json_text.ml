(* Shared JSON text encoding for the pdf_obs exporters (metrics JSONL,
   the provenance ledger and the Chrome trace writer).  Encoding only:
   none of the exporters ever needs to parse JSON back. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let quote s = "\"" ^ escape s ^ "\""

let float v =
  if Float.is_nan v then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* ------------------------------------------------------------------ *)
(* Parsing (for the benchmark baseline loader)                         *)
(* ------------------------------------------------------------------ *)

type v =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of v list
  | Obj of (string * v) list

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some ch when ch = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        match e with
        | '"' | '\\' | '/' ->
          Buffer.add_char buf e;
          go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "bad \\u escape"
          in
          (* Exporters only ever emit \u00xx control escapes; decode the
             BMP code point as UTF-8 and keep it simple. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end;
          go ()
        | _ -> fail "bad escape character")
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          (key, value)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let value = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    value
  with
  | value -> Ok value
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    contents
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

let member key = function
  | Obj fields ->
    List.fold_left
      (fun acc (k, v) -> if k = key then Some v else acc)
      None fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None
