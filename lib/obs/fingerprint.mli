(** Environment fingerprint: the identity of the build and machine a
    run executed on.

    Every benchmark report ([BENCH_*.json], DESIGN.md §11) embeds one so
    that a baseline comparison can tell "the code got slower" apart from
    "this is a different machine / compiler / engine"; [pdfatpg version]
    prints the same record, so the bench artifacts and the CLI agree on
    what was measured. *)

type t = {
  version : string;  (** library/CLI version (see {!version}) *)
  git_rev : string;  (** [git rev-parse HEAD] of the working tree, or ["unknown"] *)
  git_dirty : bool;  (** uncommitted changes present (false when unknown) *)
  ocaml_version : string;  (** [Sys.ocaml_version] *)
  hostname : string;  (** [Unix.gethostname] *)
  os_type : string;  (** [Sys.os_type] *)
  word_size : int;  (** [Sys.word_size] *)
  jobs : int;  (** pool parallelism the run was configured with *)
  bitsim : bool;  (** packed simulation engine enabled *)
}

val version : string
(** The library version string (kept in sync with [Cmd.info ~version]). *)

val capture : ?jobs:int -> ?bitsim:bool -> unit -> t
(** Capture the current environment.  [jobs] defaults to the [PDF_JOBS]
    environment variable (or 1) — pass {!Pdf_par.Pool.default_jobs}'s
    value when a pool is in play; [bitsim] defaults to the [PDF_BITSIM]
    environment variable's verdict (enabled unless [0/false/no/off]) —
    pass [Fault_sim.packed_enabled ()] when the engine switch may have
    been overridden programmatically.  The git revision is read once per
    process and memoised. *)

val to_json : t -> string
(** One-line JSON object (the ["fingerprint"] field of the unified
    benchmark schema). *)

val summary_line : t -> string
(** Compact one-liner, e.g.
    ["1.0.0 (git 4dc1382, ocaml 5.1.1, 64-bit)"] — the string behind
    [pdfatpg --version]. *)

val to_table_lines : t -> (string * string) list
(** Key/value rows for [pdfatpg version]'s aligned output. *)
