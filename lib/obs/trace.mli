(** Chrome trace-event exporter.

    A {!collector} is a {!Span.sink} that records every completed span;
    {!write} renders them in the Chrome trace-event JSON format (an
    object with a [traceEvents] array), loadable in Perfetto or
    [chrome://tracing].  Each span becomes a ["B"]/["E"] event pair on
    the track of the pool domain that ran it (track 0 is the main /
    submitting domain; workers are tracks 1..jobs-1, see
    {!Span.set_track_provider}), and ["M"] metadata events name the
    process and each track.

    Because spans are only reported at close, events of one track are
    reconstructed in open/close sequence order — a total order per
    domain — and timestamps are clamped to be non-decreasing within a
    track, so the per-track streams are balanced and correctly nested
    even when microsecond timestamps tie. *)

type t

val collector : unit -> t

val sink : t -> Span.sink
(** Install with [Span.set_sink (Trace.sink c)] — or tee with the
    previous sink via {!Span.tee} to keep aggregation running. *)

val size : t -> int
(** Number of events (spans and counter samples) collected so far. *)

val counter :
  t -> name:string -> ?track:int -> ts_us:float -> value:int -> unit -> unit
(** Record one Chrome counter-track ("C") sample: [name] becomes the
    counter track's title, [value] its height at [ts_us].  Samples are
    written after the span events, in insertion order, so callers that
    add them deterministically get byte-identical trace files.  The
    profile exporter uses this to draw per-level justification effort
    as a counter track next to the span timeline. *)

type phase = B | E

type event = { ph : phase; name : string; track : int; ts_us : float }

val sorted_events : t -> event list
(** The begin/end events as they will be emitted: grouped by ascending
    track, sequence-ordered and timestamp-clamped within each track.
    Exposed for tests. *)

val to_json : ?process_name:string -> t -> string

val write : ?process_name:string -> t -> string -> unit
