(* Chrome trace-event exporter (Perfetto-loadable).

   A collector is a span sink that keeps one entry per completed span:
   its track (pool-domain rank), open/close timestamps relative to the
   span epoch, and the open/close sequence numbers.  At write time every
   span becomes a begin/end ("B"/"E") event pair; events of one track
   are ordered by sequence number — within a domain, spans open and
   close in program order, so the sequence order is exactly the balanced
   nesting order even when microsecond timestamps tie — and timestamps
   are then clamped to be non-decreasing per track. *)

type span_ev = {
  sp_name : string;
  sp_track : int;
  b_us : float;
  e_us : float;
  seq_b : int;
  seq_e : int;
}

type counter_ev = {
  c_name : string;
  c_track : int;
  c_ts_us : float;
  c_value : int;
}

type t = {
  mutable rev_spans : span_ev list;
  mutable rev_counters : counter_ev list;
  mutable count : int;
  mutex : Mutex.t;
}

let collector () =
  { rev_spans = []; rev_counters = []; count = 0; mutex = Mutex.create () }

let sink t =
  Span.Emit
    (fun (r : Span.record) ->
      let ev =
        {
          sp_name = r.Span.name;
          sp_track = r.Span.track;
          b_us = r.Span.start_s *. 1e6;
          e_us = (r.Span.start_s +. r.Span.wall_s) *. 1e6;
          seq_b = r.Span.seq_open;
          seq_e = r.Span.seq_close;
        }
      in
      Mutex.lock t.mutex;
      t.rev_spans <- ev :: t.rev_spans;
      t.count <- t.count + 1;
      Mutex.unlock t.mutex)

(* Counter ("C") events: one sample of a named value on a track, used by
   the profile exporter to draw per-level effort as a counter track.
   Insertion order is preserved at write time, so callers adding samples
   in a deterministic order get byte-identical trace files. *)
let counter t ~name ?(track = 0) ~ts_us ~value () =
  let ev = { c_name = name; c_track = track; c_ts_us = ts_us; c_value = value } in
  Mutex.lock t.mutex;
  t.rev_counters <- ev :: t.rev_counters;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let size t = t.count

type phase = B | E

type event = { ph : phase; name : string; track : int; ts_us : float }

(* Begin/end events per track, sequence-ordered, timestamps clamped
   monotonic per track; tracks in ascending order. *)
let sorted_events t =
  Mutex.lock t.mutex;
  let spans = List.rev t.rev_spans in
  Mutex.unlock t.mutex;
  let by_track : (int, (int * event) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun sp ->
      let bucket =
        match Hashtbl.find_opt by_track sp.sp_track with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add by_track sp.sp_track b;
          b
      in
      bucket :=
        ( sp.seq_e,
          { ph = E; name = sp.sp_name; track = sp.sp_track; ts_us = sp.e_us } )
        :: ( sp.seq_b,
             { ph = B; name = sp.sp_name; track = sp.sp_track;
               ts_us = sp.b_us } )
        :: !bucket)
    spans;
  let tracks =
    Hashtbl.fold (fun track b acc -> (track, !b) :: acc) by_track []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.concat_map
    (fun (_, evs) ->
      let ordered =
        List.sort (fun (sa, _) (sb, _) -> Int.compare sa sb) evs
      in
      let last = ref neg_infinity in
      List.map
        (fun (_, ev) ->
          let ts = Float.max ev.ts_us !last in
          last := ts;
          { ev with ts_us = ts })
        ordered)
    tracks

let to_json ?(process_name = "pdfatpg") t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let add_event s =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf s
  in
  add_event
    (Printf.sprintf
       "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":%s}}"
       (Json_text.quote process_name));
  let events = sorted_events t in
  let tracks =
    List.sort_uniq Int.compare (List.map (fun ev -> ev.track) events)
  in
  List.iter
    (fun track ->
      let label =
        if track = 0 then "domain 0 (main)"
        else Printf.sprintf "domain %d" track
      in
      add_event
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}"
           track (Json_text.quote label)))
    tracks;
  List.iter
    (fun ev ->
      add_event
        (Printf.sprintf
           "{\"name\":%s,\"cat\":\"span\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
           (Json_text.quote ev.name)
           (match ev.ph with B -> "B" | E -> "E")
           ev.ts_us ev.track))
    events;
  let counters =
    Mutex.lock t.mutex;
    let cs = List.rev t.rev_counters in
    Mutex.unlock t.mutex;
    cs
  in
  List.iter
    (fun cv ->
      add_event
        (Printf.sprintf
           "{\"name\":%s,\"cat\":\"profile\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"value\":%d}}"
           (Json_text.quote cv.c_name) cv.c_ts_us cv.c_track cv.c_value))
    counters;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write ?process_name t path =
  let oc = open_out path in
  output_string oc (to_json ?process_name t);
  close_out oc
