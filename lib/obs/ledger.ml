(* Run provenance ledger: an append-only list of structured records
   describing what the pipeline decided and why (which secondary faults
   were folded into which test, why a fault stayed undetected, ...).

   The ledger is generic — record payloads are built by the layers that
   own the vocabulary (Target_sets, Atpg) — and deterministic: records
   carry no timestamps or other schedule-dependent data, and appends
   from a single generation run happen in program order, so the emitted
   JSONL is byte-identical across `--jobs` and scalar/packed bitsim
   (DESIGN.md §9).  Appends are mutex-protected so a ledger shared with
   pool workers is still memory-safe; byte-determinism is only promised
   for ledgers fed from one domain (the ATPG generation loop is
   sequential). *)

type value =
  | S of string
  | I of int
  | B of bool
  | L of value list
  | O of (string * value) list

type record = { kind : string; fields : (string * value) list }

type t = {
  mutable rev_records : record list;
  mutable count : int;
  mutex : Mutex.t;
}

let create () = { rev_records = []; count = 0; mutex = Mutex.create () }

let record t ~kind fields =
  Mutex.lock t.mutex;
  t.rev_records <- { kind; fields } :: t.rev_records;
  t.count <- t.count + 1;
  Mutex.unlock t.mutex

let size t = t.count

let records t =
  Mutex.lock t.mutex;
  let rev = t.rev_records in
  Mutex.unlock t.mutex;
  List.rev rev

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let field r name = List.assoc_opt name r.fields

let get_string r name =
  match field r name with Some (S s) -> Some s | _ -> None

let get_int r name = match field r name with Some (I i) -> Some i | _ -> None

let find t ~kind pred =
  List.filter (fun r -> r.kind = kind && pred r) (records t)

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let rec value_to_json = function
  | S s -> Json_text.quote s
  | I i -> string_of_int i
  | B b -> if b then "true" else "false"
  | L vs -> "[" ^ String.concat "," (List.map value_to_json vs) ^ "]"
  | O kvs -> "{" ^ String.concat "," (List.map member kvs) ^ "}"

and member (k, v) = Json_text.quote k ^ ":" ^ value_to_json v

let record_to_json r =
  "{" ^ String.concat "," (List.map member (("kind", S r.kind) :: r.fields))
  ^ "}"

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf (record_to_json r);
      Buffer.add_char buf '\n')
    (records t);
  Buffer.contents buf

let write_jsonl t path =
  let oc = open_out path in
  output_string oc (to_jsonl t);
  close_out oc
