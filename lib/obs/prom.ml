(* Prometheus text-exposition renderer for the metrics registry.

   Metric names are sanitised to the Prometheus grammar (runs of
   non-alphanumeric characters become one '_') and prefixed with "pdf_"
   so the pipeline's series never collide with a scraper's own.
   Counters get the conventional "_total" suffix; histograms emit
   cumulative "_bucket{le=...}" series closed by le="+Inf", plus "_sum"
   and "_count" — all derived from Metrics.cumulative, the single
   cumulative encoding shared with the table/CSV/JSONL renderers. *)

let sanitize name =
  let buf = Buffer.create (String.length name + 4) in
  Buffer.add_string buf "pdf_";
  let last_us = ref false in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' ->
        Buffer.add_char buf c;
        last_us := false
      | _ ->
        if not !last_us then Buffer.add_char buf '_';
        last_us := true)
    name;
  Buffer.contents buf

(* %.17g round-trips every float; integral values render bare for
   readability (Prometheus accepts both). *)
let number = Json_text.float

let render ?registry () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  List.iter
    (fun (name, data) ->
      let p = sanitize name in
      match (data : Metrics.data) with
      | Metrics.Counter_v v ->
        line "# TYPE %s_total counter\n" p;
        line "%s_total %d\n" p v
      | Metrics.Gauge_v v ->
        line "# TYPE %s gauge\n" p;
        line "%s %s\n" p (number v)
      | Metrics.Histogram_v h ->
        line "# TYPE %s histogram\n" p;
        List.iter
          (fun (bound, cum) ->
            line "%s_bucket{le=\"%s\"} %d\n" p
              (Metrics.bound_label bound)
              cum)
          (Metrics.cumulative h);
        line "%s_sum %s\n" p (number h.Metrics.sum);
        line "%s_count %d\n" p h.Metrics.total)
    (Metrics.snapshot ?registry ());
  Buffer.contents buf

let write ?registry path =
  let oc = open_out path in
  output_string oc (render ?registry ());
  close_out oc

(* Periodic flush for long runs: a helper domain rewrites [path] every
   [period_s] seconds until the returned stop function is called, which
   also performs one final write so the file always reflects the end
   state.  Naps are short so stop never blocks for a full period. *)
let start_periodic_flush ?registry ~period_s path =
  if period_s <= 0. then invalid_arg "Prom.start_periodic_flush: period <= 0";
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let rec sleep_until deadline =
          if not (Atomic.get stop) then begin
            let now = Unix.gettimeofday () in
            if now >= deadline then begin
              write ?registry path;
              sleep_until (now +. period_s)
            end
            else begin
              Unix.sleepf (Float.min 0.2 (deadline -. now));
              sleep_until deadline
            end
          end
        in
        sleep_until (Unix.gettimeofday () +. period_s))
  in
  fun () ->
    if not (Atomic.exchange stop true) then begin
      Domain.join d;
      write ?registry path
    end
