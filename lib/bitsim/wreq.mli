(** Packed requirement checking, in both lane directions.

    {b Test lanes.}  {!satisfied_mask} checks one fault's condition set
    [A(p)] against a {!Wsim.planes} simulation of up to 63 tests: bit
    [l] of the result is set iff test [l] satisfies every requirement —
    the packed equivalent of folding {!Pdf_values.Req.satisfied_by}
    over the requirement list, with the same semantics for [X] (an [X]
    simulated component never satisfies a pinned component).

    {b Fault lanes.}  {!pack_faults}/{!fault_mask} transpose the trick:
    up to 63 condition sets are packed into per-net pin masks so that
    one scalar simulation result (a candidate test assignment) can be
    evaluated against all of them in a single pass over the constrained
    nets — this is what makes the ATPG secondary-target scan's
    detection checks word-parallel. *)

val satisfied_mask :
  Wsim.planes -> (int * Pdf_values.Req.t) list -> int
(** Lanes (tests) satisfying every requirement of the list.  Starts
    from {!Wsim.mask}, so unused high lanes are always clear.  Early
    exits once no lane survives. *)

type fault_pack
(** Up to 63 condition sets, packed per constrained net. *)

val pack_faults :
  (int * Pdf_values.Req.t) list array -> fault_pack array
(** [pack_faults reqs] packs [reqs.(i)] into lane [i - 63*b] of batch
    [b = i / 63] (fixed {!Wsim.batch_bounds} boundaries). *)

val base : fault_pack -> int
(** Index of the fault in lane 0. *)

val lanes : fault_pack -> int

val fault_mask : fault_pack -> Pdf_values.Triple.t array -> int
(** Lanes (faults) whose whole condition set is satisfied by the given
    scalar simulation values — bit [l] set iff fault [base + l] is
    detected.  Agrees with [Fault_sim.detects_values] lane
    for lane. *)
