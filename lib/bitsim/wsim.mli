(** Word-level (bit-parallel) two-pattern simulation.

    One call to {!simulate} evaluates the circuit for up to 63
    two-pattern tests at once: each net carries three dual-rail words
    (see {!Pdf_values.Word}) — the first-pattern plane [v1], the
    hazard/intermediate plane [v2] and the second-pattern plane [v3] —
    and lane [l] of every word belongs to test [l].  The [v2] plane is
    seeded at the primary inputs with the lane-wise
    [Two_pattern.middle_of_pair] of the two patterns, exactly
    like the scalar simulator, so lane [l] of the result equals
    [Two_pattern.simulate] of test [l] component for
    component.

    Gates are evaluated once per plane in the circuit's levelized
    (topological) order; each gate costs a handful of integer
    instructions per plane regardless of how many lanes are occupied.

    The scalar simulator remains the reference implementation: the
    packed result is required (and property-tested) to agree with it
    lane for lane, including [X] lanes. *)

type planes = {
  p_lanes : int;  (** occupied lanes *)
  p_mask : int;  (** [Word.lane_mask p_lanes] *)
  z : int array array;  (** zero rail, [3 x num_nets]: [z.(comp).(net)] *)
  o : int array array;  (** one rail, [3 x num_nets] *)
}
(** Simulation result, struct-of-arrays so requirement scans touch flat
    integer arrays.  Component indices: 0 = first pattern, 1 =
    intermediate, 2 = second pattern. *)

val simulate :
  Pdf_circuit.Circuit.t ->
  w1:Pdf_values.Word.t array ->
  w3:Pdf_values.Word.t array ->
  lanes:int ->
  planes
(** [simulate c ~w1 ~w3 ~lanes] — [w1.(pi)]/[w3.(pi)] pack the first and
    second pattern of PI [pi] across tests.  Emits a ["bitsim"] span.
    Raises [Invalid_argument] on a PI-count mismatch or [lanes] outside
    [1..63]. *)

val batch_bounds : int -> (int * int) array
(** [batch_bounds n] cuts [0..n-1] into word batches [(lo, hi)] of at
    most 63 lanes each, at fixed multiples of 63 — independent of any
    parallelism, so batch-derived metrics are jobs-invariant. *)

val set_injected_bug : bool -> unit
(** Mutation-testing hook for the [Pdf_check] fuzz harness (DESIGN.md
    §10): when enabled, the packed evaluation of AND/NAND gates with
    three or more inputs deliberately ignores the last fanin, while the
    scalar reference simulator stays correct.  The differential oracles
    must then report a violation and shrink it to a small reproducer —
    the harness's own self-test.  Never enable outside tests. *)

val injected_bug_enabled : unit -> bool

val lanes : planes -> int

val mask : planes -> int

val word : planes -> comp:int -> net:int -> Pdf_values.Word.t

val get : planes -> comp:int -> net:int -> lane:int -> Pdf_values.Bit.t

val triple : planes -> net:int -> lane:int -> Pdf_values.Triple.t
(** One lane of one net re-assembled as a scalar value triple. *)
