(** Word-level (bit-parallel) two-pattern simulation.

    One call to {!simulate} evaluates the circuit for up to 63
    two-pattern tests at once: each net carries three dual-rail words
    (see {!Pdf_values.Word}) — the first-pattern plane [v1], the
    hazard/intermediate plane [v2] and the second-pattern plane [v3] —
    and lane [l] of every word belongs to test [l].  The [v2] plane is
    seeded at the primary inputs with the lane-wise
    [Two_pattern.middle_of_pair] of the two patterns, exactly
    like the scalar simulator, so lane [l] of the result equals
    [Two_pattern.simulate] of test [l] component for
    component.

    Gates are evaluated once per plane in the circuit's levelized
    (topological) order; each gate costs a handful of integer
    instructions per plane regardless of how many lanes are occupied.

    The scalar simulator remains the reference implementation: the
    packed result is required (and property-tested) to agree with it
    lane for lane, including [X] lanes. *)

type planes = {
  p_lanes : int;  (** occupied lanes *)
  p_mask : int;  (** [Word.lane_mask p_lanes] *)
  z : int array array;  (** zero rail, [3 x num_nets]: [z.(comp).(net)] *)
  o : int array array;  (** one rail, [3 x num_nets] *)
}
(** Simulation result, struct-of-arrays so requirement scans touch flat
    integer arrays.  Component indices: 0 = first pattern, 1 =
    intermediate, 2 = second pattern. *)

val simulate :
  Pdf_circuit.Circuit.t ->
  w1:Pdf_values.Word.t array ->
  w3:Pdf_values.Word.t array ->
  lanes:int ->
  planes
(** [simulate c ~w1 ~w3 ~lanes] — [w1.(pi)]/[w3.(pi)] pack the first and
    second pattern of PI [pi] across tests.  Emits a ["bitsim"] span.
    Raises [Invalid_argument] on a PI-count mismatch or [lanes] outside
    [1..63]. *)

val batch_bounds : int -> (int * int) array
(** [batch_bounds n] cuts [0..n-1] into word batches [(lo, hi)] of at
    most 63 lanes each, at fixed multiples of 63 — independent of any
    parallelism, so batch-derived metrics are jobs-invariant. *)

val set_injected_bug : bool -> unit
(** Mutation-testing hook for the [Pdf_check] fuzz harness (DESIGN.md
    §10): when enabled, the packed evaluation of AND/NAND gates with
    three or more inputs deliberately ignores the last fanin, while the
    scalar reference simulator stays correct.  The differential oracles
    must then report a violation and shrink it to a small reproducer —
    the harness's own self-test.  Never enable outside tests. *)

val injected_bug_enabled : unit -> bool

val set_incsim : bool -> unit
(** Master switch for the incremental engines ({!Inc} and the scalar
    [Pdf_sim.Inc_sim]), initialised from [PDF_INCSIM] (["0"], ["false"],
    ["no"], ["off"] disable; anything else, or unset, enables).  Every
    rewired caller falls back to the verbatim full-pass simulators when
    disabled — the differential reference for CI and the fuzz oracles.
    Results are byte-identical either way; only the work done per call
    changes. *)

val incsim_enabled : unit -> bool

val set_inc_injected_bug : bool -> unit
(** Mutation-testing hook for the incremental path only (DESIGN.md §10):
    when enabled, {!Inc.assign} ignores PI words whose second pattern
    changed while the first did not, so incremental planes drift from
    the full-pass reference.  The inc-vs-full oracle must catch and
    shrink it.  Never enable outside tests. *)

val inc_injected_bug_enabled : unit -> bool

(** Event-driven incremental simulation (DESIGN.md §13).

    An {!Inc.t} holds the three planes persistently plus a dirty-set
    worklist over the circuit's validated level buckets
    ({!Pdf_circuit.Circuit.level_gates}).  {!Inc.assign} diffs the new
    PI words against the previous call, seeds only the changed inputs,
    and re-evaluates the affected fanout cone level by level, stopping a
    branch as soon as a gate's three output words are unchanged.  Gate
    functions are pure and evaluated in topological order, so the planes
    after [assign] are bit-for-bit the full-pass {!simulate} result for
    the same words — the hard determinism contract the property tests
    and the [inc-sim] oracle enforce.  Zero allocation per gate on the
    hot path; a zero-flip [assign] is a no-op sweep. *)
module Inc : sig
  type t

  type stats = {
    mutable assigns : int;
    mutable resim_gates : int;  (** gate (re-)evaluations, all planes *)
    mutable early_stops : int;
        (** dirty gates whose outputs were unchanged, cutting their cone *)
  }

  val create :
    ?attrib:Pdf_obs.Attrib.sheet -> Pdf_circuit.Circuit.t -> lanes:int -> t
  (** Fresh state: all-X planes (the full-pass fixpoint for all-X
      inputs) and all-X remembered PI words.  Raises [Invalid_argument]
      if [lanes] is outside [1..63].  When [attrib] is given, every
      dirty-cone gate re-evaluation bumps the sheet's [inc_resims]
      counter for the gate's output net (engine-variant attribution,
      see {!Pdf_obs.Attrib}). *)

  val assign : t -> w1:Pdf_values.Word.t array -> w3:Pdf_values.Word.t array -> unit
  (** Install new PI words and propagate the difference.  Raises
      [Invalid_argument] on a PI-count mismatch. *)

  val planes : t -> planes
  (** The live planes — aliased, not copied; valid until the next
      {!assign}. *)

  val circuit : t -> Pdf_circuit.Circuit.t

  val stats : t -> stats
  (** A copy of the cumulative per-state counters since creation or the
      last {!reset_stats}. *)

  val reset_stats : t -> unit
end

val record_inc : num_gates:int -> Inc.stats -> unit
(** Fold a per-state {!Inc.stats} delta into the process-wide metrics
    [sim.inc.assigns], [sim.inc.resim_gates], [sim.inc.early_stops],
    [sim.inc.fullpass_gates] ([assigns * num_gates], what a full pass
    would have evaluated) and the gauge [sim.inc.resim_fraction] =
    [resim_gates / fullpass_gates], cumulative over all records.  The
    totals are commutative sums updated under one lock, so every
    sim.inc.* value — including the gauge — is jobs-invariant however
    the recording calls are scheduled. *)

val lanes : planes -> int

val mask : planes -> int

val word : planes -> comp:int -> net:int -> Pdf_values.Word.t

val get : planes -> comp:int -> net:int -> lane:int -> Pdf_values.Bit.t

val triple : planes -> net:int -> lane:int -> Pdf_values.Triple.t
(** One lane of one net re-assembled as a scalar value triple. *)
