module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Word = Pdf_values.Word
module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate
module Span = Pdf_obs.Span

type planes = {
  p_lanes : int;
  p_mask : int;
  z : int array array;
  o : int array array;
}

let lanes t = t.p_lanes

let mask t = t.p_mask

let word t ~comp ~net = { Word.zero = t.z.(comp).(net); one = t.o.(comp).(net) }

let get t ~comp ~net ~lane =
  let b = 1 lsl lane in
  if t.o.(comp).(net) land b <> 0 then Bit.One
  else if t.z.(comp).(net) land b <> 0 then Bit.Zero
  else Bit.X

let triple t ~net ~lane =
  Triple.make (get t ~comp:0 ~net ~lane) (get t ~comp:1 ~net ~lane)
    (get t ~comp:2 ~net ~lane)

let batch_bounds n =
  let nb = (n + Word.lanes - 1) / Word.lanes in
  Array.init nb (fun b -> (b * Word.lanes, min n ((b + 1) * Word.lanes)))

(* Mutation-testing hook (DESIGN.md §10): with the bug injected, packed
   evaluation of AND/NAND gates with three or more fanins silently drops
   the last fanin.  The scalar simulator is untouched, so the
   differential oracles in Pdf_check must flag the discrepancy — this is
   how test_check.ml proves the fuzz harness catches real simulator
   bugs.  The extra check costs one branch on >2-input gates only. *)
let injected_bug = Atomic.make false

let set_injected_bug b = Atomic.set injected_bug b

let injected_bug_enabled () = Atomic.get injected_bug

(* One plane of one gate, all lanes at once.  The dual-rail formulas are
   the {!Pdf_values.Word} operations inlined over the plane arrays so the
   inner loop allocates nothing. *)
let eval_gate_plane (g : Circuit.gate) (z : int array) (o : int array) =
  let fanins = g.Circuit.fanins in
  let f0 = fanins.(0) in
  match g.Circuit.kind with
  | Gate.Not -> (o.(f0), z.(f0))
  | Gate.Buff -> (z.(f0), o.(f0))
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    let zv = ref z.(f0) and ov = ref o.(f0) in
    (match g.Circuit.kind with
    | Gate.And | Gate.Nand ->
      let last =
        let n = Array.length fanins - 1 in
        if n > 1 && Atomic.get injected_bug then n - 1 else n
      in
      for i = 1 to last do
        let f = fanins.(i) in
        zv := !zv lor z.(f);
        ov := !ov land o.(f)
      done
    | Gate.Or | Gate.Nor ->
      for i = 1 to Array.length fanins - 1 do
        let f = fanins.(i) in
        zv := !zv land z.(f);
        ov := !ov lor o.(f)
      done
    | Gate.Xor | Gate.Xnor ->
      for i = 1 to Array.length fanins - 1 do
        let f = fanins.(i) in
        let za = !zv and oa = !ov in
        zv := (za land z.(f)) lor (oa land o.(f));
        ov := (za land o.(f)) lor (oa land z.(f))
      done
    | Gate.Not | Gate.Buff -> ());
    if Gate.inverting g.Circuit.kind then (!ov, !zv) else (!zv, !ov)

let simulate c ~(w1 : Word.t array) ~(w3 : Word.t array) ~lanes =
  if
    Array.length w1 <> c.Circuit.num_pis
    || Array.length w3 <> c.Circuit.num_pis
  then invalid_arg "Wsim.simulate: wrong number of PI words";
  if lanes < 1 || lanes > Word.lanes then
    invalid_arg "Wsim.simulate: lane count out of range";
  Span.with_ "bitsim" @@ fun () ->
  let n = Circuit.num_nets c in
  let z = Array.init 3 (fun _ -> Array.make n 0) in
  let o = Array.init 3 (fun _ -> Array.make n 0) in
  for pi = 0 to c.Circuit.num_pis - 1 do
    z.(0).(pi) <- w1.(pi).Word.zero;
    o.(0).(pi) <- w1.(pi).Word.one;
    z.(2).(pi) <- w3.(pi).Word.zero;
    o.(2).(pi) <- w3.(pi).Word.one;
    (* Lane-wise Two_pattern.middle_of_pair: definite only where both
       patterns agree on a definite value. *)
    z.(1).(pi) <- w1.(pi).Word.zero land w3.(pi).Word.zero;
    o.(1).(pi) <- w1.(pi).Word.one land w3.(pi).Word.one
  done;
  for k = 0 to 2 do
    let zk = z.(k) and ok = o.(k) in
    Array.iteri
      (fun gi g ->
        let out = c.Circuit.num_pis + gi in
        let zv, ov = eval_gate_plane g zk ok in
        zk.(out) <- zv;
        ok.(out) <- ov)
      c.Circuit.gates
  done;
  { p_lanes = lanes; p_mask = Word.lane_mask lanes; z; o }
