module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Word = Pdf_values.Word
module Circuit = Pdf_circuit.Circuit
module Gate = Pdf_circuit.Gate
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span

type planes = {
  p_lanes : int;
  p_mask : int;
  z : int array array;
  o : int array array;
}

let lanes t = t.p_lanes

let mask t = t.p_mask

let word t ~comp ~net = { Word.zero = t.z.(comp).(net); one = t.o.(comp).(net) }

let get t ~comp ~net ~lane =
  let b = 1 lsl lane in
  if t.o.(comp).(net) land b <> 0 then Bit.One
  else if t.z.(comp).(net) land b <> 0 then Bit.Zero
  else Bit.X

let triple t ~net ~lane =
  Triple.make (get t ~comp:0 ~net ~lane) (get t ~comp:1 ~net ~lane)
    (get t ~comp:2 ~net ~lane)

let batch_bounds n =
  let nb = (n + Word.lanes - 1) / Word.lanes in
  Array.init nb (fun b -> (b * Word.lanes, min n ((b + 1) * Word.lanes)))

(* Mutation-testing hook (DESIGN.md §10): with the bug injected, packed
   evaluation of AND/NAND gates with three or more fanins silently drops
   the last fanin.  The scalar simulator is untouched, so the
   differential oracles in Pdf_check must flag the discrepancy — this is
   how test_check.ml proves the fuzz harness catches real simulator
   bugs.  The extra check costs one branch on >2-input gates only. *)
let injected_bug = Atomic.make false

let set_injected_bug b = Atomic.set injected_bug b

let injected_bug_enabled () = Atomic.get injected_bug

(* One plane of one gate, all lanes at once, computed into a scratch
   cell.  The dual-rail formulas are the {!Pdf_values.Word} operations
   inlined over the plane arrays; the result goes into two mutable int
   fields instead of a returned pair so the incremental hot path
   allocates nothing per gate. *)
type scratch = { mutable sz : int; mutable so : int }

let eval_gate_plane_into (s : scratch) (g : Circuit.gate) (z : int array)
    (o : int array) =
  let fanins = g.Circuit.fanins in
  let f0 = fanins.(0) in
  match g.Circuit.kind with
  | Gate.Not ->
    s.sz <- o.(f0);
    s.so <- z.(f0)
  | Gate.Buff ->
    s.sz <- z.(f0);
    s.so <- o.(f0)
  | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
    let zv = ref z.(f0) and ov = ref o.(f0) in
    (match g.Circuit.kind with
    | Gate.And | Gate.Nand ->
      let last =
        let n = Array.length fanins - 1 in
        if n > 1 && Atomic.get injected_bug then n - 1 else n
      in
      for i = 1 to last do
        let f = fanins.(i) in
        zv := !zv lor z.(f);
        ov := !ov land o.(f)
      done
    | Gate.Or | Gate.Nor ->
      for i = 1 to Array.length fanins - 1 do
        let f = fanins.(i) in
        zv := !zv land z.(f);
        ov := !ov lor o.(f)
      done
    | Gate.Xor | Gate.Xnor ->
      for i = 1 to Array.length fanins - 1 do
        let f = fanins.(i) in
        let za = !zv and oa = !ov in
        zv := (za land z.(f)) lor (oa land o.(f));
        ov := (za land o.(f)) lor (oa land z.(f))
      done
    | Gate.Not | Gate.Buff -> ());
    if Gate.inverting g.Circuit.kind then begin
      s.sz <- !ov;
      s.so <- !zv
    end
    else begin
      s.sz <- !zv;
      s.so <- !ov
    end

let eval_gate_plane (g : Circuit.gate) (z : int array) (o : int array) =
  let s = { sz = 0; so = 0 } in
  eval_gate_plane_into s g z o;
  (s.sz, s.so)

(* PDF_INCSIM mirrors PDF_BITSIM: the incremental engines are on by
   default and every rewired caller falls back to the verbatim full-pass
   simulator when disabled, which is the differential reference used by
   CI and the pdf_check oracles. *)
let incsim_state =
  Atomic.make
    (match Sys.getenv_opt "PDF_INCSIM" with
    | Some ("0" | "false" | "no" | "off") -> false
    | _ -> true)

let set_incsim b = Atomic.set incsim_state b

let incsim_enabled () = Atomic.get incsim_state

(* Incremental-path-only mutation hook (DESIGN.md §10): with the bug
   injected, [Inc.assign] ignores PI words whose second pattern changed
   but whose first pattern did not, so the incremental planes drift from
   the full-pass reference exactly when only [w3] moves.  The full-pass
   simulator is untouched; the inc-vs-full oracle must flag it and the
   shrinker must minimize it.  Never enable outside tests. *)
let inc_injected_bug = Atomic.make false

let set_inc_injected_bug b = Atomic.set inc_injected_bug b

let inc_injected_bug_enabled () = Atomic.get inc_injected_bug

module Inc = struct
  type stats = {
    mutable assigns : int;
    mutable resim_gates : int;
    mutable early_stops : int;
  }

  type t = {
    ic : Circuit.t;
    p : planes;
    (* Last-assigned PI words, both rails, so [assign] can diff. *)
    z1 : int array;
    o1 : int array;
    z3 : int array;
    o3 : int array;
    (* Dirty worklist: one bucket per circuit level, sized from
       [Circuit.level_gates] so enqueueing never allocates. *)
    bucket : int array array;
    blen : int array;
    queued : bool array;
    scratch : scratch;
    st : stats;
    att : Pdf_obs.Attrib.sheet option;
  }

  let create ?attrib c ~lanes =
    if lanes < 1 || lanes > Word.lanes then
      invalid_arg "Wsim.Inc.create: lane count out of range";
    let n = Circuit.num_nets c in
    let np = c.Circuit.num_pis in
    let lg = Circuit.level_gates c in
    {
      ic = c;
      p =
        {
          p_lanes = lanes;
          p_mask = Word.lane_mask lanes;
          z = Array.init 3 (fun _ -> Array.make n 0);
          o = Array.init 3 (fun _ -> Array.make n 0);
        };
      z1 = Array.make np 0;
      o1 = Array.make np 0;
      z3 = Array.make np 0;
      o3 = Array.make np 0;
      bucket = Array.map (fun b -> Array.make (Array.length b) 0) lg;
      blen = Array.make (Array.length lg) 0;
      queued = Array.make (Array.length c.Circuit.gates) false;
      scratch = { sz = 0; so = 0 };
      st = { assigns = 0; resim_gates = 0; early_stops = 0 };
      att = attrib;
    }

  let circuit t = t.ic

  let planes t = t.p

  let stats t =
    {
      assigns = t.st.assigns;
      resim_gates = t.st.resim_gates;
      early_stops = t.st.early_stops;
    }

  let reset_stats t =
    t.st.assigns <- 0;
    t.st.resim_gates <- 0;
    t.st.early_stops <- 0

  (* A fresh state holds all-X planes, which is exactly the full-pass
     result for all-X PI words (every dual-rail gate function maps all-X
     inputs to X), so the first real [assign] starts from a consistent
     fixpoint and only the nets its flips reach are re-evaluated. *)
  let assign t ~(w1 : Word.t array) ~(w3 : Word.t array) =
    let c = t.ic in
    let np = c.Circuit.num_pis in
    if Array.length w1 <> np || Array.length w3 <> np then
      invalid_arg "Wsim.Inc.assign: wrong number of PI words";
    let lo = ref max_int and hi = ref (-1) in
    let enqueue gi =
      if not t.queued.(gi) then begin
        t.queued.(gi) <- true;
        let l = c.Circuit.level.(np + gi) in
        t.bucket.(l).(t.blen.(l)) <- gi;
        t.blen.(l) <- t.blen.(l) + 1;
        if l < !lo then lo := l;
        if l > !hi then hi := l
      end
    in
    let dirty_net net =
      let fo = c.Circuit.fanouts.(net) in
      for i = 0 to Array.length fo - 1 do
        let g, _pin = fo.(i) in
        enqueue g
      done
    in
    let bug = Atomic.get inc_injected_bug in
    for pi = 0 to np - 1 do
      let nz1 = w1.(pi).Word.zero and no1 = w1.(pi).Word.one in
      let nz3 = w3.(pi).Word.zero and no3 = w3.(pi).Word.one in
      let ch1 = nz1 <> t.z1.(pi) || no1 <> t.o1.(pi) in
      let ch3 = nz3 <> t.z3.(pi) || no3 <> t.o3.(pi) in
      let ch3 = ch3 && not (bug && not ch1) in
      if ch1 || ch3 then begin
        if ch1 then begin
          t.z1.(pi) <- nz1;
          t.o1.(pi) <- no1;
          t.p.z.(0).(pi) <- nz1;
          t.p.o.(0).(pi) <- no1
        end;
        if ch3 then begin
          t.z3.(pi) <- nz3;
          t.o3.(pi) <- no3;
          t.p.z.(2).(pi) <- nz3;
          t.p.o.(2).(pi) <- no3
        end;
        (* Lane-wise Two_pattern.middle_of_pair, as in [simulate]. *)
        t.p.z.(1).(pi) <- t.z1.(pi) land t.z3.(pi);
        t.p.o.(1).(pi) <- t.o1.(pi) land t.o3.(pi);
        dirty_net pi
      end
    done;
    t.st.assigns <- t.st.assigns + 1;
    (* Sweep the dirty buckets in level order.  A gate's fanouts always
       live at strictly higher levels, so [hi] can only grow ahead of
       the sweep and nothing is ever enqueued at or below the level
       being drained; gates within one level are independent, so the
       resulting planes (and the resim/early-stop counts) are the same
       whatever order the bucket was filled in. *)
    let s = t.scratch in
    let l = ref !lo in
    while !l <= !hi do
      let b = t.bucket.(!l) and n = t.blen.(!l) in
      t.blen.(!l) <- 0;
      for i = 0 to n - 1 do
        let gi = b.(i) in
        t.queued.(gi) <- false;
        let g = c.Circuit.gates.(gi) in
        let out = np + gi in
        t.st.resim_gates <- t.st.resim_gates + 1;
        (match t.att with
        | Some a ->
          a.Pdf_obs.Attrib.inc_resims.(out) <-
            a.Pdf_obs.Attrib.inc_resims.(out) + 1;
          a.Pdf_obs.Attrib.t_inc_resims <- a.Pdf_obs.Attrib.t_inc_resims + 1
        | None -> ());
        let changed = ref false in
        for k = 0 to 2 do
          let zk = t.p.z.(k) and ok = t.p.o.(k) in
          eval_gate_plane_into s g zk ok;
          if s.sz <> zk.(out) || s.so <> ok.(out) then begin
            changed := true;
            zk.(out) <- s.sz;
            ok.(out) <- s.so
          end
        done;
        if !changed then dirty_net out
        else t.st.early_stops <- t.st.early_stops + 1
      done;
      incr l
    done
end

(* sim.inc.* metrics: jobs-invariant by construction — worker domains
   never touch the registry; they return per-state {!Inc.stats} deltas
   with their results and the sequential caller records them in fixed
   batch order through {!record_inc}. *)
let inc_assigns_m = Metrics.counter "sim.inc.assigns"

let inc_resim_gates_m = Metrics.counter "sim.inc.resim_gates"

let inc_early_stops_m = Metrics.counter "sim.inc.early_stops"

let inc_resim_fraction_m = Metrics.gauge "sim.inc.resim_fraction"

(* Denominator of the fraction gauge: gate evaluations an equivalent
   full pass would have performed for the same assigns.  A registry
   counter, so Metrics.reset clears it together with the numerator. *)
let inc_fullpass_gates_m = Metrics.counter "sim.inc.fullpass_gates"

(* All updates happen under one lock so the last recorder computes the
   gauge from the complete totals: whatever order deltas arrive in (the
   totals are commutative sums), the final gauge value is the cumulative
   fraction over everything recorded — deterministic at any --jobs. *)
let record_lock = Mutex.create ()

let record_inc ~num_gates (st : Inc.stats) =
  Mutex.lock record_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock record_lock) @@ fun () ->
  Metrics.add inc_assigns_m st.Inc.assigns;
  Metrics.add inc_resim_gates_m st.Inc.resim_gates;
  Metrics.add inc_early_stops_m st.Inc.early_stops;
  Metrics.add inc_fullpass_gates_m (st.Inc.assigns * num_gates);
  let possible = Metrics.value inc_fullpass_gates_m in
  if possible > 0 then
    Metrics.set inc_resim_fraction_m
      (float_of_int (Metrics.value inc_resim_gates_m)
      /. float_of_int possible)

let simulate c ~(w1 : Word.t array) ~(w3 : Word.t array) ~lanes =
  if
    Array.length w1 <> c.Circuit.num_pis
    || Array.length w3 <> c.Circuit.num_pis
  then invalid_arg "Wsim.simulate: wrong number of PI words";
  if lanes < 1 || lanes > Word.lanes then
    invalid_arg "Wsim.simulate: lane count out of range";
  Span.with_ "bitsim" @@ fun () ->
  let n = Circuit.num_nets c in
  let z = Array.init 3 (fun _ -> Array.make n 0) in
  let o = Array.init 3 (fun _ -> Array.make n 0) in
  for pi = 0 to c.Circuit.num_pis - 1 do
    z.(0).(pi) <- w1.(pi).Word.zero;
    o.(0).(pi) <- w1.(pi).Word.one;
    z.(2).(pi) <- w3.(pi).Word.zero;
    o.(2).(pi) <- w3.(pi).Word.one;
    (* Lane-wise Two_pattern.middle_of_pair: definite only where both
       patterns agree on a definite value. *)
    z.(1).(pi) <- w1.(pi).Word.zero land w3.(pi).Word.zero;
    o.(1).(pi) <- w1.(pi).Word.one land w3.(pi).Word.one
  done;
  for k = 0 to 2 do
    let zk = z.(k) and ok = o.(k) in
    Array.iteri
      (fun gi g ->
        let out = c.Circuit.num_pis + gi in
        let zv, ov = eval_gate_plane g zk ok in
        zk.(out) <- zv;
        ok.(out) <- ov)
      c.Circuit.gates
  done;
  { p_lanes = lanes; p_mask = Word.lane_mask lanes; z; o }
