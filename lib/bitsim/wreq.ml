module Bit = Pdf_values.Bit
module Triple = Pdf_values.Triple
module Word = Pdf_values.Word
module Req = Pdf_values.Req

(* ------------------------------------------------------------------ *)
(* Test-lane direction: one fault's requirements against packed tests  *)
(* ------------------------------------------------------------------ *)

let component_mask (p : Wsim.planes) k net m = function
  | Req.Any -> m
  | Req.Must true -> m land p.Wsim.o.(k).(net)
  | Req.Must false -> m land p.Wsim.z.(k).(net)

let satisfied_mask (p : Wsim.planes) reqs =
  let rec go m = function
    | [] -> m
    | (net, (r : Req.t)) :: rest ->
      if m = 0 then 0
      else
        let m = component_mask p 0 net m r.Req.r1 in
        let m = component_mask p 1 net m r.Req.r2 in
        let m = component_mask p 2 net m r.Req.r3 in
        go m rest
  in
  go p.Wsim.p_mask reqs

(* ------------------------------------------------------------------ *)
(* Fault-lane direction: packed requirement sets against scalar values *)
(* ------------------------------------------------------------------ *)

type constrained_net = {
  cn_net : int;
  cn_must0 : int array;  (* per component: lanes pinning it to 0 *)
  cn_must1 : int array;  (* per component: lanes pinning it to 1 *)
}

type fault_pack = {
  fp_base : int;
  fp_lanes : int;
  fp_mask : int;
  fp_nets : constrained_net array;
}

let base t = t.fp_base

let lanes t = t.fp_lanes

let pack_faults (reqs : (int * Req.t) list array) =
  let pack_one (lo, hi) =
    let nets : (int, int array * int array) Hashtbl.t = Hashtbl.create 64 in
    for f = lo to hi - 1 do
      let lane_bit = 1 lsl (f - lo) in
      List.iter
        (fun (net, (r : Req.t)) ->
          let must0, must1 =
            match Hashtbl.find_opt nets net with
            | Some masks -> masks
            | None ->
              let masks = (Array.make 3 0, Array.make 3 0) in
              Hashtbl.add nets net masks;
              masks
          in
          let pin k = function
            | Req.Any -> ()
            | Req.Must false -> must0.(k) <- must0.(k) lor lane_bit
            | Req.Must true -> must1.(k) <- must1.(k) lor lane_bit
          in
          pin 0 r.Req.r1;
          pin 1 r.Req.r2;
          pin 2 r.Req.r3)
        reqs.(f)
    done;
    let fp_nets =
      Hashtbl.fold
        (fun net (must0, must1) acc ->
          { cn_net = net; cn_must0 = must0; cn_must1 = must1 } :: acc)
        nets []
      |> List.sort (fun a b -> Int.compare a.cn_net b.cn_net)
      |> Array.of_list
    in
    {
      fp_base = lo;
      fp_lanes = hi - lo;
      fp_mask = Word.lane_mask (hi - lo);
      fp_nets;
    }
  in
  Array.map pack_one (Wsim.batch_bounds (Array.length reqs))

let fault_mask fp (values : Triple.t array) =
  let violated (cn : constrained_net) k = function
    | Bit.One -> cn.cn_must0.(k)
    | Bit.Zero -> cn.cn_must1.(k)
    | Bit.X -> cn.cn_must0.(k) lor cn.cn_must1.(k)
  in
  let m = ref fp.fp_mask in
  let n = Array.length fp.fp_nets in
  let i = ref 0 in
  while !m <> 0 && !i < n do
    let cn = fp.fp_nets.(!i) in
    let (v : Triple.t) = values.(cn.cn_net) in
    m :=
      !m
      land lnot (violated cn 0 v.Triple.v1)
      land lnot (violated cn 1 v.Triple.v2)
      land lnot (violated cn 2 v.Triple.v3);
    incr i
  done;
  !m
