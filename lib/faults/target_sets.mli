(** Selection of the target fault sets [P], [P0] and [P1]
    (paper, Section 3.1).

    [P] holds the faults of the [N_P / 2] longest enumerated paths with
    undetectable faults removed.  [P0] holds all faults on paths of length
    [>= L_{i0}], where [i0] is the smallest rank whose cumulative fault
    count reaches [N_P0]; [P1 = P - P0]. *)

type entry = { fault : Fault.t; length : int }

type t = {
  p : entry list;  (** all of [P], longest paths first *)
  p0 : entry list;
  p1 : entry list;
  i0 : int;  (** selected rank *)
  cutoff_length : int;  (** [L_{i0}] *)
  histogram : Pdf_paths.Histogram.t;  (** fault-granularity histogram of [P] *)
  undetectable : Undetectable.stats;
  enumeration : Pdf_paths.Enumerate.result;
}

val build :
  ?mode:Pdf_paths.Enumerate.mode ->
  ?criterion:Robust.criterion ->
  ?ledger:Pdf_obs.Ledger.t ->
  Pdf_circuit.Circuit.t ->
  Pdf_paths.Delay_model.t ->
  n_p:int ->
  n_p0:int ->
  t
(** [build c model ~n_p ~n_p0].  [n_p] bounds the number of faults in [P]
    during enumeration (two faults per path); [n_p0] is the [N_P0]
    threshold.  Default mode is {!Pdf_paths.Enumerate.Distance_pruned}.
    [ledger] is passed through to {!Undetectable.filter} so eliminated
    faults get provenance records. *)

val paper_n_p : int
(** 10000 — the paper's implementation constant. *)

val paper_n_p0 : int
(** 1000. *)

val split_multi : t -> thresholds:int list -> entry list list
(** Partition [P] into more than two target sets (the paper notes the
    possibility at the end of Section 3.1 but evaluates only two).
    [thresholds] are cumulative fault-count targets: each gives the
    smallest length rank whose cumulative count reaches it, in the same
    way [N_P0] defines [P0].  With [thresholds = [a; b]] the result is
    [[P0; P1; P2]] where [P0] has at least [a] faults (all longest),
    [P0 u P1] at least [b], and [P2] holds the rest.  Thresholds must be
    strictly increasing and positive; empty trailing sets are kept so the
    result always has [List.length thresholds + 1] elements. *)
