module Enumerate = Pdf_paths.Enumerate
module Histogram = Pdf_paths.Histogram
module Metrics = Pdf_obs.Metrics
module Span = Pdf_obs.Span
module Log = Pdf_obs.Log

let g_p = Metrics.gauge "target_sets.p_size"
let g_p0 = Metrics.gauge "target_sets.p0_size"
let g_p1 = Metrics.gauge "target_sets.p1_size"
let g_cutoff = Metrics.gauge "target_sets.cutoff_length"
let g_i0 = Metrics.gauge "target_sets.i0"
let m_undet_direct = Metrics.counter "target_sets.undetectable_direct"
let m_undet_implication = Metrics.counter "target_sets.undetectable_implication"

type entry = { fault : Fault.t; length : int }

type t = {
  p : entry list;
  p0 : entry list;
  p1 : entry list;
  i0 : int;
  cutoff_length : int;
  histogram : Histogram.t;
  undetectable : Undetectable.stats;
  enumeration : Enumerate.result;
}

let paper_n_p = 10_000

let paper_n_p0 = 1_000

let build ?(mode = Enumerate.Distance_pruned) ?(criterion = Robust.Robust)
    ?ledger c model ~n_p ~n_p0 =
  if n_p < 2 then invalid_arg "Target_sets.build: n_p < 2";
  Span.with_ "target-sets" (fun () ->
  let enumeration =
    Enumerate.enumerate ~mode c model ~max_paths:(n_p / 2)
  in
  let all_faults =
    List.concat_map
      (fun (path, length) ->
        List.map (fun fault -> (fault, length)) (Fault.both path))
      enumeration.Enumerate.paths
  in
  let kept, undetectable =
    Span.with_ "undetectable" (fun () ->
    let faults = List.map fst all_faults in
    let kept_faults, stats = Undetectable.filter ~criterion ?ledger c faults in
    let lengths = Hashtbl.create 64 in
    List.iter
      (fun (f, l) -> Hashtbl.replace lengths f.Fault.path l)
      all_faults;
    ( List.map
        (fun f -> { fault = f; length = Hashtbl.find lengths f.Fault.path })
        kept_faults,
      stats ))
  in
  let p =
    List.sort
      (fun a b ->
        if a.length <> b.length then Int.compare b.length a.length
        else Fault.compare a.fault b.fault)
      kept
  in
  let histogram = Histogram.of_lengths (List.map (fun e -> e.length) p) in
  let i0 =
    match Histogram.select_i0 histogram ~threshold:n_p0 with
    | Some i -> i
    | None -> max 0 (List.length histogram - 1)
  in
  let cutoff_length =
    if histogram = [] then 0 else Histogram.cutoff_length histogram ~rank:i0
  in
  let p0 = List.filter (fun e -> e.length >= cutoff_length) p in
  let p1 = List.filter (fun e -> e.length < cutoff_length) p in
  Metrics.set_int g_p (List.length p);
  Metrics.set_int g_p0 (List.length p0);
  Metrics.set_int g_p1 (List.length p1);
  Metrics.set_int g_cutoff cutoff_length;
  Metrics.set_int g_i0 i0;
  Metrics.add m_undet_direct
    undetectable.Undetectable.direct_conflicts;
  Metrics.add m_undet_implication
    undetectable.Undetectable.implication_conflicts;
  Log.event ~fields:
    [ ("p", string_of_int (List.length p));
      ("p0", string_of_int (List.length p0));
      ("p1", string_of_int (List.length p1));
      ("cutoff", string_of_int cutoff_length);
      ("undet_direct",
       string_of_int undetectable.Undetectable.direct_conflicts);
      ("undet_implication",
       string_of_int undetectable.Undetectable.implication_conflicts) ]
    "target_sets.build";
  { p; p0; p1; i0; cutoff_length; histogram; undetectable; enumeration })

let split_multi t ~thresholds =
  let rec check_increasing prev = function
    | [] -> ()
    | th :: rest ->
      if th <= prev then
        invalid_arg "Target_sets.split_multi: thresholds must increase";
      check_increasing th rest
  in
  check_increasing 0 thresholds;
  (* Convert each cumulative threshold into a length cutoff using the
     same rule as the [N_P0] selection, then slice [P] by length. *)
  let cutoff_for threshold =
    match Histogram.select_i0 t.histogram ~threshold with
    | Some rank -> Histogram.cutoff_length t.histogram ~rank
    | None -> min_int (* everything qualifies *)
  in
  let cutoffs = List.map cutoff_for thresholds in
  let rec slice remaining = function
    | [] -> [ remaining ]
    | cutoff :: rest ->
      let inside, outside =
        List.partition (fun e -> e.length >= cutoff) remaining
      in
      inside :: slice outside rest
  in
  slice t.p cutoffs
