(** Elimination of undetectable path delay faults (paper, Section 3.1).

    Two sound filters are applied:
    + {b Direct conflict}: [A(p)] pins a line to two different values.
    + {b Implication conflict}: propagating the values of [A(p)] through
      the circuit (forward and backward) assigns conflicting values to
      some line.

    Both only remove provably undetectable faults; faults that survive may
    still turn out untestable during test generation. *)

type verdict =
  | Maybe_detectable
  | Direct_conflict
  | Implication_conflict of { net : int; component : int }

val classify :
  ?criterion:Robust.criterion -> Pdf_circuit.Circuit.t -> Fault.t -> verdict
(** Default criterion is {!Robust.Robust}. *)

type stats = {
  kept : int;
  direct_conflicts : int;
  implication_conflicts : int;
}

val filter :
  ?criterion:Robust.criterion ->
  ?ledger:Pdf_obs.Ledger.t ->
  Pdf_circuit.Circuit.t ->
  Fault.t list ->
  Fault.t list * stats
(** Keep only faults classified {!Maybe_detectable}, preserving order.
    When [ledger] is given, one ["undetectable"] record is appended per
    eliminated fault (its name, conflict class, and for implication
    conflicts the conflicting net and pattern component) — the
    disposition side of [pdfatpg explain] (DESIGN.md §9). *)
