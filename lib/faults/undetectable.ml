module Implication = Pdf_sim.Implication

type verdict =
  | Maybe_detectable
  | Direct_conflict
  | Implication_conflict of { net : int; component : int }

let classify ?(criterion = Robust.Robust) c fault =
  match Robust.conditions ~criterion c fault with
  | None -> Direct_conflict
  | Some reqs -> (
    match Implication.infer c reqs with
    | Implication.Consistent _ -> Maybe_detectable
    | Implication.Conflict { net; component } ->
      Implication_conflict { net; component })

type stats = {
  kept : int;
  direct_conflicts : int;
  implication_conflicts : int;
}

(* One provenance record per eliminated fault; "component" is the
   pattern component (0 = first pattern, 1 = intermediate, 2 = second)
   whose implied value conflicted. *)
let record_eliminated ledger c f = function
  | Maybe_detectable -> ()
  | Direct_conflict ->
    Pdf_obs.Ledger.record ledger ~kind:"undetectable"
      [
        ("fault", Pdf_obs.Ledger.S (Fault.to_string c f));
        ("class", Pdf_obs.Ledger.S "direct_conflict");
      ]
  | Implication_conflict { net; component } ->
    Pdf_obs.Ledger.record ledger ~kind:"undetectable"
      [
        ("fault", Pdf_obs.Ledger.S (Fault.to_string c f));
        ("class", Pdf_obs.Ledger.S "implication_conflict");
        ("net", Pdf_obs.Ledger.S (Pdf_circuit.Circuit.net_name c net));
        ("component", Pdf_obs.Ledger.I component);
      ]

let filter ?(criterion = Robust.Robust) ?ledger c faults =
  let direct = ref 0 and implied = ref 0 in
  let kept =
    List.filter
      (fun f ->
        let verdict = classify ~criterion c f in
        Option.iter (fun l -> record_eliminated l c f verdict) ledger;
        match verdict with
        | Maybe_detectable -> true
        | Direct_conflict ->
          incr direct;
          false
        | Implication_conflict _ ->
          incr implied;
          false)
      faults
  in
  ( kept,
    {
      kept = List.length kept;
      direct_conflicts = !direct;
      implication_conflicts = !implied;
    } )
